// Command hetops is the federation's live terminal dashboard: it polls a
// coordinator's cluster endpoints (/cluster, /cluster/alerts,
// /cluster/queries — served when hetserve runs with -cluster-scrape) and
// renders per-site QPS/p50/p99/degraded%, each replica's anti-entropy
// repair state (the REPAIR column, from the "antientropy:state" /healthz
// condition — suspect mapping classes show up red), breaker/resync/WAL
// conditions, firing SLO alerts, and the slowest queries federation-wide
// with their trace IDs. Plain ANSI, stdlib only.
//
//	hetops -cluster http://127.0.0.1:8100            # live, refreshed in place
//	hetops -cluster http://127.0.0.1:8100 -once      # one render, no clearing
//	hetops -cluster http://127.0.0.1:8100 -once -json # combined JSON for scripts
//
// The -json document nests the three endpoints' payloads verbatim
// ({"cluster": ..., "alerts": ..., "queries": ...}), so it round-trips
// through encoding/json and jq.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hetfed/hetfed/internal/obs/agg"
	"github.com/hetfed/hetfed/internal/obs/slo"
	"github.com/hetfed/hetfed/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hetops:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hetops", flag.ContinueOnError)
	var (
		cluster     = fs.String("cluster", "http://127.0.0.1:8100", "base URL of the coordinator's observability surface")
		interval    = fs.Duration("interval", 2*time.Second, "refresh interval in live mode")
		once        = fs.Bool("once", false, "render one snapshot and exit")
		asJSON      = fs.Bool("json", false, "emit the combined snapshot as JSON (implies -once)")
		topN        = fs.Int("n", 10, "slow queries to show")
		noColor     = fs.Bool("no-color", false, "disable ANSI colors")
		showVersion = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(out, "hetops", version.String())
		return nil
	}
	base := strings.TrimSuffix(*cluster, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}

	if *asJSON || *once {
		snap, err := fetch(context.Background(), client, base, *topN)
		if err != nil {
			return err
		}
		if *asJSON {
			data, err := json.MarshalIndent(snap, "", " ")
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(data))
			return nil
		}
		render(out, snap, base, false)
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	color := !*noColor && isTerminal(out)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		snap, err := fetch(ctx, client, base, *topN)
		fmt.Fprint(out, "\x1b[H\x1b[2J") // cursor home + clear screen
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			fmt.Fprintf(out, "hetops: %v (retrying every %s)\n", err, *interval)
		} else {
			render(out, snap, base, color)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}

// snapshot is the combined dashboard document: the three cluster
// endpoints' payloads, verbatim.
type snapshot struct {
	Cluster agg.Rollup         `json:"cluster"`
	Alerts  []slo.Alert        `json:"alerts"`
	Queries []agg.QuerySummary `json:"queries"`
}

func fetch(ctx context.Context, client *http.Client, base string, n int) (snapshot, error) {
	var snap snapshot
	if err := getJSON(ctx, client, base+"/cluster?format=json", &snap.Cluster); err != nil {
		return snap, err
	}
	if err := getJSON(ctx, client, base+"/cluster/alerts?format=json", &snap.Alerts); err != nil {
		return snap, err
	}
	url := fmt.Sprintf("%s/cluster/queries?format=json&n=%d", base, n)
	if err := getJSON(ctx, client, url, &snap.Queries); err != nil {
		return snap, err
	}
	return snap, nil
}

func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	return nil
}

// ANSI palette; the color helper no-ops when disabled so -once output and
// pipes stay clean.
const (
	ansiReset  = "\x1b[0m"
	ansiRed    = "\x1b[31m"
	ansiGreen  = "\x1b[32m"
	ansiYellow = "\x1b[33m"
	ansiBold   = "\x1b[1m"
)

func render(w io.Writer, s snapshot, base string, color bool) {
	paint := func(code, text string) string {
		if !color {
			return text
		}
		return code + text + ansiReset
	}

	fmt.Fprintf(w, "%s  %s  %s\n", paint(ansiBold, "HETFED CLUSTER"), base,
		s.Cluster.Time.Format("2006-01-02 15:04:05"))
	fw := s.Cluster.Fed.Window
	liveness := fmt.Sprintf("%d/%d", s.Cluster.Fed.SitesLive, s.Cluster.Fed.SitesTotal)
	if s.Cluster.Fed.SitesLive < s.Cluster.Fed.SitesTotal {
		liveness = paint(ansiRed, liveness)
	} else {
		liveness = paint(ansiGreen, liveness)
	}
	fmt.Fprintf(w, "federation: %s sites live   qps %.1f   p50 %.2fms   p99 %.2fms   degraded %.2f%%   window %.0fs\n\n",
		liveness, fw.QPS, fw.P50Ms, fw.P99Ms, fw.DegradedPct, s.Cluster.WindowS)

	fmt.Fprintf(w, "%-6s %-12s %-12s %8s %9s %9s %7s %7s %-14s %s\n",
		"SITE", "STATE", "STATUS", "QPS", "P50", "P99", "DEGR%", "RESETS", "REPAIR", "CONDITIONS")
	for _, site := range s.Cluster.Sites {
		state := paint(ansiGreen, "live")
		if !site.Live {
			if site.StaleS < 0 {
				state = paint(ansiRed, "NEVER SEEN")
			} else {
				state = paint(ansiRed, fmt.Sprintf("STALE %.0fs", site.StaleS))
			}
		}
		status := site.Status
		if status != "ok" {
			status = paint(ansiYellow, status)
		}
		repair, suspect := repairState(site.Conditions)
		if suspect {
			repair = paint(ansiRed, repair)
		}
		fmt.Fprintf(w, "%-6s %-12s %-12s %8.1f %8.2fm %8.2fm %7.2f %7d %-14s %s\n",
			site.Site, state, status, site.Window.QPS, site.Window.P50Ms,
			site.Window.P99Ms, site.Window.DegradedPct, site.Resets, repair,
			conditionsLine(site.Conditions))
	}

	fmt.Fprintf(w, "\n%s\n", paint(ansiBold, "ALERTS"))
	if len(s.Alerts) == 0 {
		fmt.Fprintln(w, "  (no SLO rules configured)")
	}
	for _, a := range s.Alerts {
		state := strings.ToUpper(a.State)
		switch a.State {
		case "firing":
			state = paint(ansiRed, state)
		case "warn":
			state = paint(ansiYellow, state)
		default:
			state = paint(ansiGreen, state)
		}
		fmt.Fprintf(w, "  %-16s %-40s value %s  short %s  threshold %s  since %s\n",
			state, a.Rule, formatUnit(a.Value, a.Unit), formatUnit(a.Short, a.Unit),
			formatUnit(a.Threshold, a.Unit), a.Since.Format("15:04:05"))
	}

	fmt.Fprintf(w, "\n%s\n", paint(ansiBold, "SLOW QUERIES"))
	if len(s.Queries) == 0 {
		fmt.Fprintln(w, "  (none recorded)")
	}
	for _, q := range s.Queries {
		status := q.Status
		if status != "ok" {
			status = paint(ansiYellow, status)
		}
		fmt.Fprintf(w, "  %-14s %-8s %-10s %9.3fms  c%d/m%d  %-12s %s/debug/trace/%s.json\n",
			q.ID, q.Alg, status, q.WallMicros/1e3, q.Certain, q.Maybe,
			strings.Join(q.Sources, ","), base, q.ID)
	}
}

// repairState compacts a site's anti-entropy condition (the
// "antientropy:state" /healthz entry) for the REPAIR column: a clean
// replica renders as "ok r<round>", a diverged one keeps its suspect class
// list ("SUSPECT(Teacher)"), and a site reporting no anti-entropy state at
// all shows "-".
func repairState(conds map[string]string) (text string, suspect bool) {
	v, ok := conds["antientropy:state"]
	if !ok {
		return "-", false
	}
	if rest, found := strings.CutPrefix(v, "ok(round="); found {
		if i := strings.IndexAny(rest, ",)"); i >= 0 {
			rest = rest[:i]
		}
		return "ok r" + rest, false
	}
	if rest, found := strings.CutPrefix(v, "suspect"); found {
		if i := strings.Index(rest, ")"); i >= 0 {
			rest = rest[:i+1]
		}
		return "SUSPECT" + rest, true
	}
	return v, true
}

func conditionsLine(conds map[string]string) string {
	if len(conds) == 0 {
		return "-"
	}
	var bad []string
	ok := 0
	for k, v := range conds {
		if k == "antientropy:state" {
			continue // broken out into the REPAIR column
		}
		if v == "closed" || v == "ok" || strings.HasPrefix(v, "ok(") {
			ok++
		} else {
			bad = append(bad, k+"="+v)
		}
	}
	if len(bad) == 0 {
		return fmt.Sprintf("%d ok", ok)
	}
	return strings.Join(bad, " ")
}

func formatUnit(v float64, unit string) string {
	if unit == "us" {
		return fmt.Sprintf("%.2fms", v/1e3)
	}
	return fmt.Sprintf("%.2f%%", v*100)
}

// isTerminal reports whether w is an interactive terminal (a character
// device) — the only case worth coloring.
func isTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
