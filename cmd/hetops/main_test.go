package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/obs/agg"
	"github.com/hetfed/hetfed/internal/obs/slo"
)

// fixture is a representative combined snapshot: one live site, one stale,
// a firing alert, a degraded slow query.
func fixture() snapshot {
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return snapshot{
		Cluster: agg.Rollup{
			Site: "G", Time: at, IntervalS: 2, WindowS: 60,
			Fed: agg.FedStats{SitesLive: 1, SitesTotal: 2,
				Window: agg.WindowStats{SpanS: 60, Queries: 120, QPS: 2,
					P50Ms: 1.2, P99Ms: 8.4, DegradedPct: 5}},
			Sites: []agg.SiteStatus{
				{Site: "G", Live: true, StaleS: 0.5, Status: "ok",
					Conditions: map[string]string{"DB1": "closed", "wal:engine": "ok(seq=9)",
						"antientropy:state": "ok(round=4, repaired=123B)"},
					UptimeS: 100,
					Window: agg.WindowStats{SpanS: 60, Queries: 120, QPS: 2,
						P50Ms: 1.2, P99Ms: 8.4, DegradedPct: 5}},
				{Site: "DB1", URL: "http://127.0.0.1:8101", Live: false, StaleS: 12,
					ConsecFails: 6, LastError: "connection refused",
					Status: "unreachable", Resets: 1},
			},
		},
		Alerts: []slo.Alert{{
			Rule: "availability >= 0.99", Raw: "availability >= 0.99",
			State: "firing", Since: at, LastEval: at,
			Value: 0.5, Short: 0.5, Threshold: 0.99, Unit: "ratio",
		}},
		Queries: []agg.QuerySummary{{
			ID: "rq3-00001f", Alg: "BL", Status: "degraded", WallMicros: 12345,
			Certain: 5, Maybe: 2, Unavailable: []string{"DB1"},
			Sources: []string{"G"},
		}},
	}
}

// fakeCoordinator serves the three cluster endpoints from a fixture the
// way the real coordinator does.
func fakeCoordinator(t *testing.T, snap snapshot) *httptest.Server {
	t.Helper()
	serve := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			t.Errorf("encode: %v", err)
		}
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/cluster":
			serve(w, snap.Cluster)
		case "/cluster/alerts":
			serve(w, snap.Alerts)
		case "/cluster/queries":
			serve(w, snap.Queries)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// The -once -json document must round-trip: fetch → marshal → unmarshal
// reproduces the exact snapshot, so scripts can consume and re-emit it.
func TestOnceJSONRoundTrip(t *testing.T) {
	want := fixture()
	srv := fakeCoordinator(t, want)

	var out bytes.Buffer
	if err := run([]string{"-cluster", srv.URL, "-once", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var got snapshot
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("hetops -once -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// And the emitted document itself re-marshals byte-identically.
	again, err := json.MarshalIndent(got, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(again)) != strings.TrimSpace(out.String()) {
		t.Errorf("re-marshal differs from emitted document")
	}
}

func TestOnceTextRender(t *testing.T) {
	srv := fakeCoordinator(t, fixture())
	var out bytes.Buffer
	if err := run([]string{"-cluster", srv.URL, "-once"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"HETFED CLUSTER", "1/2 sites live",
		"G", "live", "DB1", "STALE 12s", "unreachable",
		"REPAIR", "ok r4",
		"FIRING", "availability >= 0.99",
		"rq3-00001f", "/debug/trace/rq3-00001f.json",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "\x1b[") {
		t.Errorf("-once output contains ANSI escapes:\n%s", text)
	}
}

// TestRepairStateColumn pins the REPAIR column's compaction of the
// "antientropy:state" healthz condition, and that conditionsLine hands the
// entry off to the column instead of repeating it.
func TestRepairStateColumn(t *testing.T) {
	cases := []struct {
		conds   map[string]string
		want    string
		suspect bool
	}{
		{nil, "-", false},
		{map[string]string{"antientropy:state": "ok(round=7, repaired=42B)"}, "ok r7", false},
		{map[string]string{"antientropy:state": "suspect(Teacher,Student) round=3 repaired=0B"},
			"SUSPECT(Teacher,Student)", true},
		{map[string]string{"antientropy:state": "weird"}, "weird", true},
	}
	for _, tc := range cases {
		got, suspect := repairState(tc.conds)
		if got != tc.want || suspect != tc.suspect {
			t.Errorf("repairState(%v) = (%q, %v), want (%q, %v)",
				tc.conds, got, suspect, tc.want, tc.suspect)
		}
	}
	line := conditionsLine(map[string]string{
		"antientropy:state": "suspect(Teacher) round=1 repaired=0B",
		"DB2":               "open",
	})
	if strings.Contains(line, "antientropy") {
		t.Errorf("conditions line repeats the repair column: %q", line)
	}
	if !strings.Contains(line, "DB2=open") {
		t.Errorf("conditions line lost the breaker condition: %q", line)
	}
}

func TestFetchPropagatesErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no aggregator here", http.StatusNotFound)
	}))
	defer srv.Close()
	client := &http.Client{Timeout: time.Second}
	if _, err := fetch(context.Background(), client, srv.URL, 5); err == nil {
		t.Error("404 surface accepted")
	}
	var out bytes.Buffer
	if err := run([]string{"-cluster", srv.URL, "-once"}, &out); err == nil {
		t.Error("run -once against a 404 surface succeeded")
	}
}
