// Command hetsim runs the paper's performance study: it regenerates the
// series behind Figures 9, 10 and 11 (and the repository's two extra
// ablations) by executing the CA, BL and PL strategies on randomized
// Table 2 workloads inside the discrete-event simulator.
//
// Usage:
//
//	hetsim -figure 9                 # objects-per-class sweep (Fig. 9a/9b)
//	hetsim -figure 10 -samples 50    # component-database sweep (Fig. 10a/10b)
//	hetsim -figure 11 -csv out.csv   # selectivity sweep (Fig. 11a/11b)
//	hetsim -figure signatures        # E7: signature-assisted variants
//	hetsim -figure network           # E8: network-rate sensitivity
//	hetsim -figure planner           # E9: cost-based strategy selection
//	hetsim -figure indexes           # E10: secondary-index ablation
//	hetsim -figure concurrency       # E13: concurrent-client throughput
//	hetsim -figure all -scale 0.2    # everything, scaled-down extents
//
// -figure concurrency (E13) measures wall-clock throughput and latency of
// concurrent clients over one shared engine on the Real runtime; its
// numbers depend on the host, so it is the one figure excluded from
// -figure all, which stays bit-for-bit deterministic.
//
//	hetsim -trace -metrics           # instrumented demo query, no sweep
//
// The -scale flag multiplies the Table 2 extent sizes (5000–6000 objects
// per constituent class) so the full study fits any time budget; shapes are
// stable under scaling.
//
// -trace and -metrics skip the sweeps and instead run the school example's
// Q1 under every strategy inside the simulator, printing the span tree
// (virtual times) and the per-strategy metrics deltas — a quick way to see
// what one simulated execution does.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/sim"
	"github.com/hetfed/hetfed/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hetsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hetsim", flag.ContinueOnError)
	var (
		figure  = fs.String("figure", "all", "experiment: 9, 10, 11, signatures, network, indexes, faults, planner, concurrency, or all")
		samples = fs.Int("samples", 25, "randomized Table 2 samples per swept point (paper: 500)")
		seed    = fs.Int64("seed", 1, "base random seed")
		scale   = fs.Float64("scale", 1.0, "multiplier on the Table 2 extent sizes")
		csvPath = fs.String("csv", "", "also write the series to this CSV file")
		doTrace = fs.Bool("trace", false, "run an instrumented demo query and print its span tree")
		doMetrs = fs.Bool("metrics", false, "run an instrumented demo query and print its metrics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *doTrace || *doMetrs {
		return runInstrumentedDemo(*doTrace, *doMetrs)
	}

	cfg := sim.DefaultConfig()
	cfg.Samples = *samples
	cfg.Seed = *seed
	if *scale != 1.0 {
		lo := int(float64(cfg.Ranges.NObjects[0]) * *scale)
		hi := int(float64(cfg.Ranges.NObjects[1]) * *scale)
		if lo < 1 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		cfg.Ranges.NObjects = [2]int{lo, hi}
	}

	type runner struct {
		name string
		run  func() (*sim.Experiment, error)
	}
	runners := map[string]runner{
		"9": {"figure 9", func() (*sim.Experiment, error) {
			return sim.Figure9(cfg, scaledCounts(*scale, []int{1000, 2000, 3000, 4000, 5000, 6000}))
		}},
		"10": {"figure 10", func() (*sim.Experiment, error) {
			return sim.Figure10(cfg, nil)
		}},
		"11": {"figure 11", func() (*sim.Experiment, error) {
			c := cfg
			return sim.Figure11(c, nil)
		}},
		"signatures": {"signature ablation", func() (*sim.Experiment, error) {
			return sim.SignatureAblation(cfg, scaledCounts(*scale, []int{1000, 2000, 4000, 6000}))
		}},
		"network": {"network sweep", func() (*sim.Experiment, error) {
			return sim.NetworkSweep(cfg, nil)
		}},
		"indexes": {"index ablation", func() (*sim.Experiment, error) {
			return sim.IndexAblation(cfg, nil)
		}},
		"faults": {"fault sweep", func() (*sim.Experiment, error) {
			return sim.FaultSweep(cfg, nil)
		}},
	}

	var order []string
	switch strings.ToLower(*figure) {
	case "planner":
		report, err := sim.PlannerAccuracy(cfg)
		if err != nil {
			return err
		}
		fmt.Print(report)
		return nil
	case "concurrency":
		// E13 measures wall-clock throughput at increasing client counts,
		// so it is not part of -figure all (whose output stays bit-for-bit
		// deterministic run to run).
		report, err := sim.ConcurrencySweep(cfg, exec.BL, nil, 0, 0)
		if err != nil {
			return err
		}
		fmt.Print(report.Table())
		if *csvPath != "" {
			if err := os.WriteFile(*csvPath, []byte(report.CSV()), 0o644); err != nil {
				return fmt.Errorf("write csv: %w", err)
			}
			fmt.Printf("\nwrote %s\n", *csvPath)
		}
		return nil
	case "all":
		order = []string{"9", "10", "11", "signatures", "network", "indexes", "faults"}
	default:
		if _, ok := runners[*figure]; !ok {
			return fmt.Errorf("unknown figure %q (want 9, 10, 11, signatures, network, indexes, faults, planner, concurrency, all)", *figure)
		}
		order = []string{*figure}
	}

	var csv strings.Builder
	for i, key := range order {
		ex, err := runners[key].run()
		if err != nil {
			return fmt.Errorf("%s: %w", runners[key].name, err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(ex.Table())
		if csv.Len() == 0 {
			csv.WriteString(ex.CSV())
		} else {
			// Skip the repeated header.
			body := ex.CSV()
			if idx := strings.IndexByte(body, '\n'); idx >= 0 {
				csv.WriteString(body[idx+1:])
			}
		}
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}

// runInstrumentedDemo executes the school example's Q1 under every strategy
// on the discrete-event simulator with the observability layer wired in,
// printing what -trace/-metrics print elsewhere in the toolset.
func runInstrumentedDemo(doTrace, doMetrics bool) error {
	fx := school.New()
	var tracer trace.Tracer
	reg := metrics.New()
	engine, err := exec.New(exec.Config{
		Global:      fx.Global,
		Coordinator: "G",
		Databases:   fx.Databases,
		Tables:      fx.Mapping,
		Tracer:      &tracer,
		Metrics:     reg,
		Signatures:  signature.Build(fx.Databases),
	})
	if err != nil {
		return err
	}
	q, err := query.Parse(school.Q1)
	if err != nil {
		return err
	}
	b, err := query.Bind(q, fx.Global)
	if err != nil {
		return err
	}
	fmt.Printf("demo query: %s\n", q)
	prev := reg.Snapshot()
	for _, alg := range exec.Algorithms() {
		tracer.Reset()
		ans, m, err := engine.Run(fabric.NewSim(fabric.DefaultRates(), engine.Sites()), alg, b)
		if err != nil {
			return fmt.Errorf("%v: %w", alg, err)
		}
		fmt.Printf("\n=== %v ===  certain %d, maybe %d, simulated response %.2f ms\n",
			alg, len(ans.Certain), len(ans.Maybe), m.ResponseMicros/1e3)
		if doTrace {
			fmt.Println("span tree:")
			fmt.Print(tracer.RenderTree())
		}
		if doMetrics {
			cur := reg.Snapshot()
			fmt.Println("metrics:")
			fmt.Print(cur.Delta(prev).Text())
			prev = cur
		}
	}
	return nil
}

func scaledCounts(scale float64, base []int) []int {
	if scale == 1.0 {
		return base
	}
	out := make([]int, len(base))
	for i, n := range base {
		v := int(float64(n) * scale)
		if v < 10 {
			v = 10
		}
		out[i] = v
	}
	return out
}
