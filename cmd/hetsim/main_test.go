package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

// tinyArgs keeps CLI tests fast: one sample, 2 % extents.
func tinyArgs(extra ...string) []string {
	return append([]string{"-samples", "1", "-scale", "0.02"}, extra...)
}

func TestRunFigure9(t *testing.T) {
	out, err := capture(t, func() error { return run(tinyArgs("-figure", "9")) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"total execution time", "response time", "CA", "BL", "PL"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFigure11WithCSV(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "out.csv")
	out, err := capture(t, func() error {
		return run(tinyArgs("-figure", "11", "-csv", csvPath))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "selectivity") {
		t.Errorf("output missing selectivity sweep:\n%s", out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	if !strings.HasPrefix(string(data), "figure,x,algorithm,") {
		t.Errorf("csv header wrong: %.40s", data)
	}
	if !strings.Contains(string(data), "figure11,") {
		t.Error("csv missing figure11 rows")
	}
}

func TestRunSignatures(t *testing.T) {
	out, err := capture(t, func() error { return run(tinyArgs("-figure", "signatures")) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"SBL", "SPL"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunPlanner(t *testing.T) {
	out, err := capture(t, func() error { return run(tinyArgs("-figure", "planner", "-samples", "2")) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "picked the fastest strategy") {
		t.Errorf("output missing planner report:\n%s", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-figure", "99"}) }); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestScaledCounts(t *testing.T) {
	got := scaledCounts(0.5, []int{1000, 2000})
	if got[0] != 500 || got[1] != 1000 {
		t.Errorf("scaledCounts = %v", got)
	}
	got = scaledCounts(0.001, []int{1000})
	if got[0] != 10 {
		t.Errorf("floor = %v", got)
	}
	base := []int{100}
	if &scaledCounts(1.0, base)[0] != &base[0] {
		t.Error("identity scale should not copy")
	}
}
