// Command hetbench runs the scenario-matrix benchmark harness: it sweeps
// execution strategy × workload × concurrency × fault plan × serving
// config, drives each cell with a seeded load generator, and reports both
// the client-observed latency distribution and the servers' own truth
// (scraped /metrics deltas: bytes moved, cache hits, degraded/maybe
// fractions). Reports are stable, diffable BENCH_<topic>.json files.
//
// Run a matrix and write the report:
//
//	hetbench run -topic strategies -out BENCH_strategies.json \
//	    -runtimes live -strategies CA,BL,PL -workloads school,table2 \
//	    -clients 1,4 -faults none,kill:DB3 -queries 40 -seed 42
//
// Gate a fresh run against a committed baseline (exit 1 on regression):
//
//	hetbench run -topic smoke -runtimes sim -strategies CA,BL,PL \
//	    -queries 8 -seed 42 -check BENCH_smoke.json -tolerance 10%
//
// Compare two existing reports:
//
//	hetbench check -old BENCH_smoke.json -new /tmp/BENCH_new.json -tolerance 10%
//
// Answer an SLO question (exit 1 when any cell misses it, naming the
// limiting metric):
//
//	hetbench slo -qps 2000 -p99 50ms -max-maybe-frac 0.2 \
//	    -runtimes live -strategies BL -workloads school -clients 8 -queries 200
//
// Measure what the cluster observability plane costs the cluster it
// watches (live TCP, gated on relative overhead):
//
//	hetbench obs -queries 1200 -clients 4 -max-overhead 1.05
//
// Fault specs: none, kill:SITE, drop:SITE:N, delay:SITE:MICROS. Serving
// specs: plain, cached, batch:WINDOW, cached+batch:WINDOW. On the sim
// runtime identical seeds reproduce byte-identical cell results; the live
// runtime spawns real TCP site servers per cell and tears them down after.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/hetfed/hetfed/internal/bench"
	"github.com/hetfed/hetfed/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: hetbench run|check|slo|durability|chaos|obs [flags] (-h for help)")
	}
	switch args[0] {
	case "run":
		return runCmd(args[1:])
	case "check":
		return checkCmd(args[1:])
	case "slo":
		return sloCmd(args[1:])
	case "durability":
		return durabilityCmd(args[1:])
	case "chaos":
		return chaosCmd(args[1:])
	case "obs":
		return obsCmd(args[1:])
	case "-version", "--version", "version":
		fmt.Println("hetbench", version.String())
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want run, check, slo, durability, chaos or obs)", args[0])
	}
}

// obsCmd measures the observability plane's cost: the identical live
// school workload with and without the cluster scraper + SLO engine
// polling the serving processes, written as BENCH_obs.json. The run gates
// itself — -max-overhead bounds the scraped mode's wall clock over the
// bare baseline's — so the command is CI-safe without a baseline diff.
func obsCmd(args []string) error {
	fs := flag.NewFlagSet("hetbench obs", flag.ContinueOnError)
	var (
		queries  = fs.Int("queries", 400, "queries driven per cell (both modes)")
		clients  = fs.Int("clients", 4, "closed-loop client count")
		rounds   = fs.Int("rounds", 0, "rounds per mode, best kept (0 = default 5)")
		seed     = fs.Int64("seed", 42, "seed for the generated query stream")
		interval = fs.Duration("interval", 100*time.Millisecond, "scrape cadence in the scraped mode")
		maxOver  = fs.Float64("max-overhead", 0, "fail if the scraped mode's wall clock exceeds this multiple of the baseline (0 = report only)")
		out      = fs.String("out", "BENCH_obs.json", "output path (\"-\" for stdout only)")
		quiet    = fs.Bool("q", false, "suppress per-cell progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}
	report, err := bench.RunObs(ctx, bench.ObsSpec{
		Queries:        *queries,
		Clients:        *clients,
		Rounds:         *rounds,
		Seed:           *seed,
		ScrapeInterval: *interval,
		MaxOverhead:    *maxOver,
	}, progress)
	if err != nil {
		return err
	}
	if *out == "-" {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		return nil
	}
	if err := report.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cells)\n", *out, len(report.Cells))
	return nil
}

// durabilityCmd measures the storage engines against each other — identical
// school-style insert streams through mem, wal and wal-fsync plus a timed
// cold-start recovery of each durable directory — and writes
// BENCH_durability.json. The run gates itself: recovery must reproduce
// every inserted object, and -max-overhead bounds the buffered WAL's write
// overhead over the in-memory baseline. Wall-clock fields in the report are
// machine-dependent; the gates are the run's own invariants, so the command
// is CI-safe without a baseline diff.
func durabilityCmd(args []string) error {
	fs := flag.NewFlagSet("hetbench durability", flag.ContinueOnError)
	var (
		objects   = fs.Int("objects", 20000, "objects inserted per engine cell")
		snapEvery = fs.Int("snapshot-every", 0, "WAL snapshot cadence in appends (0 = engine default, negative = never)")
		seed      = fs.Int64("seed", 42, "seed for the generated insert stream")
		rounds    = fs.Int("rounds", 0, "rounds per engine, best kept (0 = default 3)")
		maxOver   = fs.Float64("max-overhead", 0, "fail if the buffered WAL's write overhead exceeds this multiple of mem (0 = report only)")
		out       = fs.String("out", "BENCH_durability.json", "output path (\"-\" for stdout only)")
		dir       = fs.String("dir", "", "scratch directory for the WAL cells (default: a fresh temp dir, removed after)")
		quiet     = fs.Bool("q", false, "suppress per-cell progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scratch := *dir
	if scratch == "" {
		tmp, err := os.MkdirTemp("", "hetbench-durability-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		scratch = tmp
	}
	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}
	report, err := bench.RunDurability(bench.DurabilitySpec{
		Objects:       *objects,
		SnapshotEvery: *snapEvery,
		Seed:          *seed,
		Rounds:        *rounds,
		MaxOverhead:   *maxOver,
	}, scratch, progress)
	if err != nil {
		return err
	}
	if *out == "-" {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		return nil
	}
	if err := report.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cells)\n", *out, len(report.Cells))
	return nil
}

// chaosCmd runs the partition/kill/restart chaos schedule against a
// WAL-durable live cluster and writes BENCH_chaos.json. The run gates
// itself — no certain row under faults may contradict the fault-free
// ground truth, and the replicas must converge within -max-rounds
// anti-entropy rounds after everything heals — so the command is CI-safe
// without a baseline diff.
func chaosCmd(args []string) error {
	fs := flag.NewFlagSet("hetbench chaos", flag.ContinueOnError)
	var (
		steps     = fs.Int("steps", 60, "length of the seeded chaos schedule")
		seed      = fs.Int64("seed", 42, "seed for the chaos schedule")
		maxRounds = fs.Int("max-rounds", 5, "fail if convergence needs more repair rounds than this")
		out       = fs.String("out", "BENCH_chaos.json", "output path (\"-\" for stdout only)")
		dir       = fs.String("dir", "", "scratch directory for the site WALs (default: a fresh temp dir, removed after)")
		quiet     = fs.Bool("q", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scratch := *dir
	if scratch == "" {
		tmp, err := os.MkdirTemp("", "hetbench-chaos-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		scratch = tmp
	}
	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}
	report, err := bench.RunChaos(bench.ChaosSpec{
		Steps:                *steps,
		Seed:                 *seed,
		MaxConvergenceRounds: *maxRounds,
	}, scratch, progress)
	if err != nil {
		return err
	}
	if *out == "-" {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		return nil
	}
	if err := report.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d steps, converged in %d rounds)\n", *out, report.Spec.Steps, report.ConvergenceRounds)
	return nil
}

// matrixFlags registers the sweep-dimension flags shared by run and slo.
func matrixFlags(fs *flag.FlagSet) (get func() (bench.MatrixSpec, error)) {
	var (
		runtimes   = fs.String("runtimes", "sim", "comma-separated runtimes: sim (deterministic DES), live (real TCP servers)")
		strategies = fs.String("strategies", "CA,BL,PL", "comma-separated strategies: CA, BL, PL, SBL, SPL")
		workloads  = fs.String("workloads", "school", "comma-separated workloads: school, table2, table2eq")
		clients    = fs.String("clients", "1", "comma-separated concurrency levels")
		faults     = fs.String("faults", "none", "comma-separated fault plans: none, kill:SITE, drop:SITE:N, delay:SITE:MICROS")
		serving    = fs.String("serving", "plain", "comma-separated serving configs: plain, cached, batch:WINDOW, cached+batch:WINDOW")
		queries    = fs.Int("queries", 20, "queries per cell")
		rate       = fs.Float64("rate", 0, "open-loop arrival rate in qps per client (0 = closed loop); live runtime only")
		zipf       = fs.Float64("zipf", 0.9, "Zipfian skew over query variants (0 = uniform)")
		variants   = fs.Int("variants", 3, "number of query variants under the skew")
		maxConc    = fs.Int("concurrency", 0, "coordinator admission bound (0 = unbounded)")
		deadline   = fs.Duration("deadline", 0, "per-query end-to-end budget (live runtime; 0 = none)")
		scale      = fs.Float64("scale", 0.02, "Table 2 extent scale for the table2 workloads (1 = paper scale)")
		seed       = fs.Int64("seed", 42, "root seed: workload draws, arrivals, variant skew")
	)
	return func() (bench.MatrixSpec, error) {
		cl, err := parseInts(*clients)
		if err != nil {
			return bench.MatrixSpec{}, fmt.Errorf("bad -clients: %w", err)
		}
		srv, err := parseServing(*serving)
		if err != nil {
			return bench.MatrixSpec{}, err
		}
		return bench.MatrixSpec{
			Runtimes:      splitList(*runtimes),
			Strategies:    splitList(*strategies),
			Workloads:     splitList(*workloads),
			Clients:       cl,
			Faults:        splitList(*faults),
			Serving:       srv,
			Queries:       *queries,
			RateQPS:       *rate,
			Zipf:          *zipf,
			Variants:      *variants,
			MaxConcurrent: *maxConc,
			Deadline:      *deadline,
			Scale:         *scale,
			Seed:          *seed,
		}, nil
	}
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("hetbench run", flag.ContinueOnError)
	get := matrixFlags(fs)
	var (
		topic     = fs.String("topic", "bench", "report topic (names the BENCH_<topic>.json)")
		out       = fs.String("out", "", "output path (default BENCH_<topic>.json; \"-\" for stdout only)")
		checkPath = fs.String("check", "", "baseline report to gate against; regressions exit non-zero")
		tolerance = fs.String("tolerance", "10%", "relative regression tolerance for -check (e.g. 10% or 0.1)")
		quiet     = fs.Bool("q", false, "suppress per-cell progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := get()
	if err != nil {
		return err
	}
	report, err := runMatrix(spec, *topic, *quiet)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *topic + ".json"
	}
	if path == "-" {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
	} else {
		if err := report.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d cells)\n", path, len(report.Cells))
	}
	if *checkPath == "" {
		return nil
	}
	tol, err := bench.ParseTolerance(*tolerance)
	if err != nil {
		return err
	}
	baseline, err := bench.ReadReport(*checkPath)
	if err != nil {
		return err
	}
	if violations := bench.Check(baseline, report, tol); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "regression:", v)
		}
		return fmt.Errorf("%d regression(s) vs %s at tolerance %s", len(violations), *checkPath, *tolerance)
	}
	fmt.Printf("no regressions vs %s (tolerance %s)\n", *checkPath, *tolerance)
	return nil
}

func checkCmd(args []string) error {
	fs := flag.NewFlagSet("hetbench check", flag.ContinueOnError)
	var (
		oldPath   = fs.String("old", "", "baseline report")
		newPath   = fs.String("new", "", "candidate report")
		tolerance = fs.String("tolerance", "10%", "relative regression tolerance (e.g. 10% or 0.1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("check needs -old and -new")
	}
	tol, err := bench.ParseTolerance(*tolerance)
	if err != nil {
		return err
	}
	baseline, err := bench.ReadReport(*oldPath)
	if err != nil {
		return err
	}
	candidate, err := bench.ReadReport(*newPath)
	if err != nil {
		return err
	}
	if violations := bench.Check(baseline, candidate, tol); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "regression:", v)
		}
		return fmt.Errorf("%d regression(s) at tolerance %s", len(violations), *tolerance)
	}
	fmt.Printf("no regressions (tolerance %s)\n", *tolerance)
	return nil
}

func sloCmd(args []string) error {
	fs := flag.NewFlagSet("hetbench slo", flag.ContinueOnError)
	get := matrixFlags(fs)
	var (
		in          = fs.String("in", "", "evaluate an existing report instead of running the matrix")
		minQPS      = fs.Float64("qps", 0, "throughput floor per cell (0 = unset)")
		p99         = fs.Duration("p99", 0, "client p99 latency cap (0 = unset)")
		maxMaybe    = fs.Float64("max-maybe-frac", -1, "cap on the maybe share of returned rows (-1 = unset)")
		maxDegraded = fs.Float64("max-degraded-frac", -1, "cap on the degraded share of queries (-1 = unset)")
		allowErrors = fs.Bool("allow-errors", false, "tolerate client errors/sheds (default: any error fails)")
		quiet       = fs.Bool("q", false, "suppress per-cell progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slo := bench.SLO{
		MinQPS:          *minQPS,
		P99:             *p99,
		MaxMaybeFrac:    *maxMaybe,
		MaxDegradedFrac: *maxDegraded,
		NoErrors:        !*allowErrors,
	}
	var report *bench.Report
	if *in != "" {
		var err error
		if report, err = bench.ReadReport(*in); err != nil {
			return err
		}
	} else {
		spec, err := get()
		if err != nil {
			return err
		}
		if report, err = runMatrix(spec, "slo", *quiet); err != nil {
			return err
		}
	}
	failed := 0
	for _, cell := range report.Cells {
		v := bench.EvaluateSLO(cell, slo)
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %s  (limiting: %s)\n", status, v.Cell, v.Limiting)
		for _, c := range v.Checks {
			fmt.Printf("    %s\n", c)
		}
	}
	if failed > 0 {
		return fmt.Errorf("SLO missed in %d of %d cells", failed, len(report.Cells))
	}
	fmt.Printf("SLO met in all %d cells\n", len(report.Cells))
	return nil
}

// runMatrix executes the matrix under signal cancellation with progress on
// stderr.
func runMatrix(spec bench.MatrixSpec, topic string, quiet bool) (*bench.Report, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if quiet {
		progress = nil
	}
	return bench.Run(ctx, spec, topic, progress)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseServing reads the serving sweep: each entry is "plain", "cached",
// "batch:WINDOW" or "cached+batch:WINDOW"; the entry string names the cell.
func parseServing(s string) ([]bench.ServingSpec, error) {
	var out []bench.ServingSpec
	for _, part := range splitList(s) {
		spec := bench.ServingSpec{Name: part}
		rest := part
		if strings.HasPrefix(rest, "cached") {
			spec.Cache = true
			rest = strings.TrimPrefix(rest, "cached")
			rest = strings.TrimPrefix(rest, "+")
		}
		if strings.HasPrefix(rest, "batch:") {
			w, err := time.ParseDuration(strings.TrimPrefix(rest, "batch:"))
			if err != nil || w < 0 {
				return nil, fmt.Errorf("bad serving spec %q (batch window)", part)
			}
			spec.BatchWindow = w
			rest = ""
		}
		if rest != "" && rest != "plain" {
			return nil, fmt.Errorf("bad serving spec %q (want plain, cached, batch:WINDOW or cached+batch:WINDOW)", part)
		}
		out = append(out, spec)
	}
	return out, nil
}
