// Command hetserve deploys the example federation over real TCP: it runs a
// component-database site server, or acts as the global processing site
// (coordinator) querying a running cluster.
//
// Start the three school sites (each in its own terminal or with &):
//
//	hetserve -site DB1 -listen 127.0.0.1:7101 \
//	    -peers DB2=127.0.0.1:7102,DB3=127.0.0.1:7103 \
//	    -metrics-addr 127.0.0.1:8101
//	hetserve -site DB2 -listen 127.0.0.1:7102 \
//	    -peers DB1=127.0.0.1:7101,DB3=127.0.0.1:7103
//	hetserve -site DB3 -listen 127.0.0.1:7103 \
//	    -peers DB1=127.0.0.1:7101,DB2=127.0.0.1:7102
//
// Then query the cluster:
//
//	hetserve -coordinator \
//	    -peers DB1=127.0.0.1:7101,DB2=127.0.0.1:7102,DB3=127.0.0.1:7103 \
//	    -alg BL -trace -metrics
//
// With -metrics-addr a process (site or coordinator) also serves the
// observability surface: /metrics, /healthz (version, uptime, peer
// circuit-breaker states — "degraded" when any breaker is open),
// /debug/queries (the flight recorder's profile listing), /debug/trace/{id}
// and /debug/trace/{id}.json (per-query Chrome trace-event export for
// chrome://tracing or ui.perfetto.dev), and /debug/pprof. -slow-query
// logs queries at/over the threshold and pins their profiles in the
// recorder. -trace and -metrics print the coordinator's span tree and
// metrics snapshot after the query.
//
// A coordinator started with -cluster-scrape SITE=HOST:PORT,... also runs
// the federation aggregator: every listed observability surface (plus the
// coordinator itself, in process) is polled each -scrape-interval and
// folded into a rollup over a trailing -scrape-window; /cluster,
// /cluster/queries and /cluster/alerts then serve the federation rollup,
// the merged slow-query log (deduped by trace ID), and the SLO alert
// state for rules given with -slo ("query_latency p99 < 50ms over 1m;
// availability >= 0.67"). cmd/hetops renders the same three endpoints as
// a live terminal dashboard.
//
// Fault-tolerance policy flags (both modes): -retries, -retry-backoff,
// -call-timeout, -dial-timeout, -pool, -breaker-failures,
// -breaker-cooldown. A coordinator queried against a partially-down
// cluster returns a degraded partial answer instead of failing: results
// that depended on the dead site are reported as maybe.
//
// Deadlines and overload: -deadline budgets each coordinator query end to
// end — the remaining budget travels with every request, sites abort
// over-budget work mid-phase, and the query returns its sound partial
// answer instead of an error; ctrl-C cancels in-flight queries the same
// way. Sites protect themselves with -max-frame (oversized request
// frames), -idle-timeout (dead-client connection reaping) and
// -write-timeout (wedged readers); -inject-delay, -inject-down and
// -inject-partition (cut the links to listed peers, both directions)
// inject site faults for resilience drills.
//
// Self-healing replication: -anti-entropy runs a background digest
// exchange against the peers at the given cadence (jittered by
// -anti-entropy-jitter), detecting and repairing mapping-table divergence;
// the repair state surfaces on /healthz as the "antientropy:state"
// condition ("ok(round=N, repaired=NB)", or "suspect(...)" when a replica
// disagrees with the quorum or sits on the minority side of a partition).
//
// Multi-tenant serving: a site started with -cache keeps a read-through
// lookup cache (GOid mappings, checked assistant verdicts; invalidated by
// the Insert replication path), and -batch-window coalesces the check
// traffic of concurrent queries into one RPC per peer per flush window
// (-batch-bytes and -batch-inflight bound batch and in-flight sizes). A
// coordinator run with -clients N -repeat M drives N concurrent query
// streams of M queries each under -concurrency admission control and
// prints the measured throughput and latency distribution.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/hetfed/hetfed/internal/adapt"
	"github.com/hetfed/hetfed/internal/bench"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/fedfile"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/obs/agg"
	"github.com/hetfed/hetfed/internal/obs/slo"
	"github.com/hetfed/hetfed/internal/planner"
	"github.com/hetfed/hetfed/internal/remote"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/store/wal"
	"github.com/hetfed/hetfed/internal/trace"
	"github.com/hetfed/hetfed/internal/version"
)

// spanLimit bounds a long-running server's tracer so /debug/trace/last stays
// cheap and memory stays flat.
const spanLimit = 4096

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hetserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hetserve", flag.ContinueOnError)
	defaults := remote.DefaultCallConfig()
	var (
		siteName    = fs.String("site", "", "serve this component site (DB1, DB2 or DB3)")
		listen      = fs.String("listen", "127.0.0.1:0", "listen address for -site mode")
		metricsAddr = fs.String("metrics-addr", "", "serve the observability surface (/metrics, /healthz, /debug/queries, /debug/trace/…, /debug/pprof/…) on this address")
		coordinator = fs.Bool("coordinator", false, "act as the global processing site")
		peersFlag   = fs.String("peers", "", "comma-separated SITE=ADDR pairs")
		queryText   = fs.String("query", school.Q1, "query to run in -coordinator mode")
		algName     = fs.String("alg", "BL", "strategy for -coordinator mode: CA, BL, PL, SBL, SPL, or adaptive (calibrating selector fed by measured profiles and breaker states)")
		fedPath     = fs.String("fed", "", "serve/query this JSON federation instead of the built-in example")
		showTrace   = fs.Bool("trace", false, "print the query's span tree in -coordinator mode")
		showMetrics = fs.Bool("metrics", false, "print the coordinator's metrics snapshot in -coordinator mode")

		retries         = fs.Int("retries", defaults.Attempts-1, "transport retries per remote call (0 = single attempt)")
		retryBackoff    = fs.Duration("retry-backoff", defaults.BackoffBase, "base sleep before the first retry (doubles per retry, jittered)")
		callTimeout     = fs.Duration("call-timeout", defaults.CallTimeout, "deadline for one full request/response exchange")
		dialTimeout     = fs.Duration("dial-timeout", defaults.DialTimeout, "deadline for connecting to a peer")
		poolSize        = fs.Int("pool", defaults.PoolSize, "max idle pooled connections per peer")
		breakerFails    = fs.Int("breaker-failures", defaults.BreakerThreshold, "consecutive call failures that open a peer's circuit breaker (0 = disabled)")
		breakerCooldown = fs.Duration("breaker-cooldown", defaults.BreakerCooldown, "how long an open breaker waits before a half-open probe")

		useCache      = fs.Bool("cache", false, "enable the site's read-through lookup cache (GOid mappings + assistant verdicts)")
		batchWindow   = fs.Duration("batch-window", 0, "coalesce outbound check RPCs per peer across this flush window (0 = no batching)")
		batchBytes    = fs.Int("batch-bytes", 0, "flush a peer's check batch early at this many queued bytes (0 = default 64KiB)")
		batchInflight = fs.Int("batch-inflight", 0, "cap on total check-batch bytes in flight (0 = default 1MiB)")
		concurrency   = fs.Int("concurrency", 0, "max concurrently executing queries in -coordinator mode (0 = unbounded)")
		clients       = fs.Int("clients", 1, "concurrent query streams in -coordinator mode")
		repeat        = fs.Int("repeat", 1, "queries per stream in -coordinator mode")

		deadline     = fs.Duration("deadline", 0, "end-to-end budget per query in -coordinator mode; the remaining budget travels to every site and an over-budget query returns its sound partial answer (0 = none)")
		maxFrame     = fs.Int("max-frame", 0, "reject request frames larger than this many bytes in -site mode (0 = default 8MiB, negative = unlimited)")
		idleTimeout  = fs.Duration("idle-timeout", 0, "reap site connections idle longer than this (0 = default 5m, negative = never)")
		writeTimeout = fs.Duration("write-timeout", 0, "per-response write deadline in -site mode (0 = default 30s, negative = none)")
		injectDelay  = fs.Duration("inject-delay", 0, "fault injection: stall every served operation at this site by this long")
		injectDown   = fs.Bool("inject-down", false, "fault injection: answer every non-ping request with site-unavailable")
		injectPart   = fs.String("inject-partition", "", "fault injection: cut this process's links to these comma-separated peer sites in both directions, as if a network partition separated them")

		antiEntropy       = fs.Duration("anti-entropy", 0, "run a background anti-entropy round against the peers at this cadence, repairing mapping-table divergence (0 = disabled; digest/repair requests are served either way)")
		antiEntropyJitter = fs.Float64("anti-entropy-jitter", 0, "spread each anti-entropy wait by ±interval·jitter so the cluster's loops decorrelate (0 = default 0.2, negative = none)")

		slowQuery   = fs.Duration("slow-query", 0, "log queries at/over this latency and always retain their profiles in the flight recorder (0 = percentile-based tail retention only)")
		recorderLen = fs.Int("recorder-size", obs.DefaultRecorderSize, "flight-recorder ring capacity (profiles kept for /debug/queries)")
		showVersion = fs.Bool("version", false, "print the build version and exit")

		clusterScrape  = fs.String("cluster-scrape", "", "coordinator: poll these obs surfaces (SITE=HOST:PORT,...) into a federation rollup served at /cluster, /cluster/queries and /cluster/alerts on -metrics-addr; the coordinator observes itself in process as site G")
		scrapeInterval = fs.Duration("scrape-interval", 2*time.Second, "polling interval for -cluster-scrape")
		scrapeWindow   = fs.Duration("scrape-window", time.Minute, "trailing window for the /cluster rollup's rates")
		sloRules       = fs.String("slo", "", "semicolon-separated SLO rules evaluated against the cluster rollup after every scrape (e.g. 'query_latency p99 < 50ms over 1m; availability >= 0.67'); requires -cluster-scrape")

		dataDir   = fs.String("data-dir", "", "durable storage root: state is recovered from <data-dir>/<site> on boot (WAL+snapshot) and every mutation is logged; empty = in-memory only")
		fsync     = fs.Bool("fsync", false, "with -data-dir, fsync the WAL after every append (each acked write survives power loss; off = buffered, a crash loses only the unsynced tail)")
		snapEvery = fs.Int("snapshot-every", 0, "with -data-dir, compact the WAL into a snapshot every N appends (0 = default, negative = never)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println("hetserve", version.String())
		return nil
	}

	call := remote.CallConfig{
		DialTimeout:      *dialTimeout,
		CallTimeout:      *callTimeout,
		Attempts:         *retries + 1,
		BackoffBase:      *retryBackoff,
		BackoffMax:       defaults.BackoffMax,
		PoolSize:         *poolSize,
		BreakerThreshold: *breakerFails,
		BreakerCooldown:  *breakerCooldown,
	}
	batch := remote.BatchConfig{
		Window:           *batchWindow,
		MaxBytes:         *batchBytes,
		MaxInflightBytes: *batchInflight,
	}

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	fed, err := loadFederation(*fedPath)
	if err != nil {
		return err
	}
	cutPeers, err := parseSiteList(*injectPart)
	if err != nil {
		return fmt.Errorf("bad -inject-partition: %w", err)
	}
	ae := remote.AntiEntropyConfig{Interval: *antiEntropy, Jitter: *antiEntropyJitter}

	switch {
	case *coordinator:
		return runCoordinator(fed, peers, *queryText, *algName, coordOpts{
			Trace: *showTrace, Metrics: *showMetrics, Call: call,
			Concurrency: *concurrency, Clients: *clients, Repeat: *repeat,
			Deadline:  *deadline,
			SlowQuery: *slowQuery, RecorderSize: *recorderLen, MetricsAddr: *metricsAddr,
			ClusterScrape: *clusterScrape, ScrapeInterval: *scrapeInterval,
			ScrapeWindow: *scrapeWindow, SLO: *sloRules,
			DataDir: *dataDir, Fsync: *fsync, SnapshotEvery: *snapEvery,
			AntiEntropy: ae, InjectPartition: cutPeers,
		})
	case *siteName != "":
		return runSite(fed, object.SiteID(*siteName), *listen, *metricsAddr, peers,
			siteOpts{Call: call, Batch: batch, Cache: *useCache,
				MaxFrameBytes: *maxFrame, IdleTimeout: *idleTimeout, WriteTimeout: *writeTimeout,
				InjectDelay: *injectDelay, InjectDown: *injectDown, InjectPartition: cutPeers,
				SlowQuery: *slowQuery, RecorderSize: *recorderLen,
				DataDir: *dataDir, Fsync: *fsync, SnapshotEvery: *snapEvery,
				AntiEntropy: ae})
	default:
		return fmt.Errorf("pass -site NAME or -coordinator")
	}
}

// federationBundle is what both modes need, from either source.
type federationBundle struct {
	Global    *schema.Global
	Databases map[object.SiteID]*store.Database
	Mapping   *gmap.Tables
}

func loadFederation(path string) (*federationBundle, error) {
	if path == "" {
		fx := school.New()
		return &federationBundle{Global: fx.Global, Databases: fx.Databases, Mapping: fx.Mapping}, nil
	}
	fed, err := fedfile.Load(path)
	if err != nil {
		return nil, err
	}
	return &federationBundle{Global: fed.Global, Databases: fed.Databases, Mapping: fed.Tables}, nil
}

// parseSiteList reads a comma-separated list of site names.
func parseSiteList(s string) ([]object.SiteID, error) {
	var out []object.SiteID
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, object.SiteID(name))
		} else if s != "" {
			return nil, fmt.Errorf("empty site name in %q", s)
		}
	}
	return out, nil
}

func parsePeers(s string) (map[object.SiteID]string, error) {
	peers := make(map[object.SiteID]string)
	if s == "" {
		return peers, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want SITE=ADDR)", pair)
		}
		peers[object.SiteID(name)] = addr
	}
	return peers, nil
}

// siteRuntime is one running instrumented site: the query server plus its
// tracer, metrics registry and (optional) observability endpoint.
type siteRuntime struct {
	Server   *remote.Server
	Obs      *obs.Server // nil unless a metrics address was given
	Tracer   *trace.Tracer
	Metrics  *metrics.Registry
	Recorder *obs.Recorder
	Engine   *wal.Engine // nil unless the site is durable (-data-dir)
}

// Close stops the site's servers and flushes its durable engine.
func (rt *siteRuntime) Close() error {
	err := rt.Server.Close()
	if rt.Obs != nil {
		if cerr := rt.Obs.Close(); err == nil {
			err = cerr
		}
	}
	if rt.Engine != nil {
		if cerr := rt.Engine.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// breakerHealth adapts a breaker-state snapshot (peer site → state) to the
// obs health surface.
func breakerHealth(states func() map[object.SiteID]string) obs.Health {
	return func() map[string]string {
		m := states()
		out := make(map[string]string, len(m))
		for site, st := range m {
			out[string(site)] = st
		}
		return out
	}
}

// mergeHealth folds several health sources into one conditions map — the
// aggregator's local self-target view of what /healthz would report.
func mergeHealth(srcs []obs.Health) func() map[string]string {
	return func() map[string]string {
		out := make(map[string]string)
		for _, src := range srcs {
			for k, v := range src() {
				out[k] = v
			}
		}
		return out
	}
}

// profileSummaries maps the flight recorder's listing into the
// aggregator's slow-query rows (same fields the remote sites serve on
// /debug/queries).
func profileSummaries(rec *obs.Recorder) []agg.QuerySummary {
	profiles := rec.Profiles()
	out := make([]agg.QuerySummary, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, agg.QuerySummary{
			ID:          p.ID,
			Alg:         p.Alg,
			Status:      p.Status,
			WallMicros:  p.WallMicros,
			Certain:     p.Certain,
			Maybe:       p.Maybe,
			Unavailable: p.Unavailable,
		})
	}
	return out
}

// parseScrapeTargets parses the -cluster-scrape flag: SITE=HOST:PORT (or
// SITE=http://...) pairs naming each site's observability surface.
func parseScrapeTargets(s string) ([]agg.Target, error) {
	var out []agg.Target
	for _, pair := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad -cluster-scrape entry %q (want SITE=HOST:PORT)", pair)
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		out = append(out, agg.Target{Site: name, URL: strings.TrimSuffix(addr, "/")})
	}
	return out, nil
}

// siteOpts bundles a site's serving policy: networking, check batching,
// the lookup cache, and the flight recorder's retention knobs.
type siteOpts struct {
	Call  remote.CallConfig
	Batch remote.BatchConfig
	Cache bool
	// MaxFrameBytes, IdleTimeout and WriteTimeout are the server's
	// self-protection bounds (see remote.ServerConfig).
	MaxFrameBytes int
	IdleTimeout   time.Duration
	WriteTimeout  time.Duration
	// InjectDelay, InjectDown and InjectPartition inject faults at this
	// site: every served operation stalls by InjectDelay (cancellable by
	// the request's budget), InjectDown answers every non-ping request
	// site-unavailable, and InjectPartition cuts this site's links to the
	// listed peers in both directions.
	InjectDelay     time.Duration
	InjectDown      bool
	InjectPartition []object.SiteID
	// AntiEntropy configures the background digest-exchange repair loop
	// (zero Interval disables it; the repair wire kinds are served either
	// way).
	AntiEntropy remote.AntiEntropyConfig
	// SlowQuery marks served requests at/over this latency slow: logged and
	// always retained in the flight recorder (0 = percentile retention only).
	SlowQuery time.Duration
	// RecorderSize bounds the flight-recorder ring (0 = default).
	RecorderSize int
	// DataDir, Fsync and SnapshotEvery configure durable storage: with a
	// DataDir the site recovers its state from <DataDir>/<site> before
	// serving (seeding the federation fixture on first boot) and logs
	// every mutation through a WAL+snapshot engine.
	DataDir       string
	Fsync         bool
	SnapshotEvery int
}

// startSite builds and starts one fully instrumented component-site server;
// runSite adds the signal-wait around it.
func startSite(fed *federationBundle, site object.SiteID, listen, metricsAddr string,
	peers map[object.SiteID]string, opts siteOpts, log *slog.Logger) (*siteRuntime, error) {
	db, ok := fed.Databases[site]
	if !ok {
		return nil, fmt.Errorf("unknown site %q in this federation", site)
	}
	tr := &trace.Tracer{}
	tr.SetLimit(spanLimit)
	reg := metrics.New()
	rec := obs.NewRecorder(obs.RecorderConfig{
		Site:          string(site),
		Size:          opts.RecorderSize,
		SlowThreshold: opts.SlowQuery,
		Log:           log,
		Metrics:       reg,
	})
	var faults *fabric.FaultPlan
	if opts.InjectDelay > 0 || opts.InjectDown || len(opts.InjectPartition) > 0 {
		faults = fabric.NewFaultPlan()
		if opts.InjectDelay > 0 {
			faults.Delay(site, float64(opts.InjectDelay.Microseconds()))
		}
		if opts.InjectDown {
			faults.Kill(site)
		}
		for _, peer := range opts.InjectPartition {
			faults.DropLink(site, peer)
			faults.DropLink(peer, site)
		}
	}
	// Durable mode: recover this site's state from its WAL+snapshot
	// directory, merge any fixture entries the recovered store doesn't have
	// yet (first boot seeds everything), and serve the recovered database
	// and mapping tables with every further mutation logged through the
	// engine.
	tables := fed.Mapping
	var eng *wal.Engine
	if opts.DataDir != "" {
		var rdb *store.Database
		var err error
		eng, rdb, tables, err = wal.Open(db.Schema(), wal.Options{
			Dir:           filepath.Join(opts.DataDir, string(site)),
			Fsync:         opts.Fsync,
			SnapshotEvery: opts.SnapshotEvery,
			Site:          string(site),
			Metrics:       reg,
			Tracer:        tr,
			Log:           log,
		})
		if err != nil {
			return nil, err
		}
		if err := eng.Import(db, fed.Mapping); err != nil {
			eng.Close()
			return nil, err
		}
		log.Info("durable store ready",
			slog.String("dir", filepath.Join(opts.DataDir, string(site))),
			slog.Uint64("seq", eng.Seq()),
			slog.Bool("fsync", opts.Fsync))
		db = rdb
	}
	cfg := remote.ServerConfig{
		DB:            db,
		Global:        fed.Global,
		Tables:        tables,
		Peers:         peers,
		Signatures:    signature.Build(fed.Databases),
		Tracer:        tr,
		Metrics:       reg,
		Recorder:      rec,
		Log:           log,
		Call:          opts.Call,
		Batch:         opts.Batch,
		Cache:         opts.Cache,
		MaxFrameBytes: opts.MaxFrameBytes,
		IdleTimeout:   opts.IdleTimeout,
		WriteTimeout:  opts.WriteTimeout,
		Faults:        faults,
		AntiEntropy:   opts.AntiEntropy,
	}
	if eng != nil {
		cfg.Engine = eng
	}
	srv, err := remote.NewServer(cfg)
	if err != nil {
		if eng != nil {
			eng.Close()
		}
		return nil, err
	}
	if err := srv.Listen(listen); err != nil {
		if eng != nil {
			eng.Close()
		}
		return nil, err
	}
	rt := &siteRuntime{Server: srv, Tracer: tr, Metrics: reg, Recorder: rec, Engine: eng}
	if metricsAddr != "" {
		// The divergence tracker reports on /healthz ("antientropy:state" →
		// "ok(round=N, repaired=NB)" or "suspect(C1,C2) …") so the cluster
		// rollup and hetops show each replica's repair state.
		health := []obs.Health{
			breakerHealth(srv.PeerBreakers),
			obs.PrefixHealth("antientropy", srv.Tracker().Health),
		}
		if eng != nil {
			// Durable sites surface their storage engine on /healthz
			// ("wal:engine" → "ok(seq=N)") so the cluster rollup shows WAL
			// state per site.
			health = append(health, obs.PrefixHealth("wal", eng.Health))
		}
		o, err := obs.Serve(metricsAddr, string(site), reg, tr, rec, health...)
		if err != nil {
			srv.Close()
			return nil, err
		}
		rt.Obs = o
	}
	return rt, nil
}

func runSite(fed *federationBundle, site object.SiteID, listen, metricsAddr string, peers map[object.SiteID]string, opts siteOpts) error {
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	rt, err := startSite(fed, site, listen, metricsAddr, peers, opts, log)
	if err != nil {
		return err
	}
	attrs := []any{
		slog.String("site", string(site)),
		slog.String("addr", rt.Server.Addr()),
		slog.Int("objects", fed.Databases[site].Len()),
	}
	if rt.Obs != nil {
		attrs = append(attrs, slog.String("metrics_addr", rt.Obs.Addr()))
	}
	log.Info("site serving", attrs...)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Info("shutting down", slog.String("site", string(site)))
	return rt.Close()
}

// coordOpts selects the coordinator's diagnostic output, call policy, and
// load-generation shape.
type coordOpts struct {
	// Trace prints the query's span tree as seen from the coordinator.
	Trace bool
	// Metrics prints the coordinator's metrics snapshot (text form).
	Metrics bool
	// Call is the retry/pool/breaker policy for coordinator RPCs.
	Call remote.CallConfig
	// Concurrency bounds concurrently executing queries (0 = unbounded).
	Concurrency int
	// Clients and Repeat shape load generation: Clients concurrent streams
	// of Repeat queries each. Clients*Repeat > 1 switches to the load
	// report (throughput + latency distribution) instead of result rows.
	Clients int
	Repeat  int
	// Deadline caps each query's end-to-end time (0 = none).
	Deadline time.Duration
	// SlowQuery and RecorderSize configure the coordinator's flight
	// recorder (see siteOpts).
	SlowQuery    time.Duration
	RecorderSize int
	// MetricsAddr, when non-empty, serves the coordinator's observability
	// surface (/metrics, /healthz, /debug/queries, /debug/trace/…) while the
	// queries run.
	MetricsAddr string
	// ClusterScrape ("SITE=HOST:PORT,..."), when non-empty, runs the
	// federation aggregator: every listed obs surface (plus the
	// coordinator itself, in process) is polled each ScrapeInterval and
	// folded into the /cluster rollup over a trailing ScrapeWindow. SLO,
	// when also non-empty, evaluates burn-rate alert rules against the
	// rollup after every scrape and serves them at /cluster/alerts.
	ClusterScrape  string
	ScrapeInterval time.Duration
	ScrapeWindow   time.Duration
	SLO            string
	// DataDir, Fsync and SnapshotEvery make the coordinator durable: the
	// global mapping table and its bind-delta log are recovered from
	// <DataDir>/G on boot, every accepted bind is logged before it is
	// applied, and an overflowed replica-resync queue is rebuilt by
	// replaying the log instead of dropping deltas.
	DataDir       string
	Fsync         bool
	SnapshotEvery int
	// AntiEntropy configures the coordinator's background repair loop
	// against the site replicas (zero Interval disables it).
	AntiEntropy remote.AntiEntropyConfig
	// InjectPartition cuts the coordinator's links to the listed sites in
	// both directions — a partition drill from the global site's side.
	InjectPartition []object.SiteID
}

func runCoordinator(fed *federationBundle, peers map[object.SiteID]string, queryText, algName string, opts coordOpts) error {
	alg, err := exec.ParseAlgorithm(algName)
	if err != nil {
		return err
	}
	tr := &trace.Tracer{}
	tr.SetLimit(spanLimit)
	reg := metrics.New()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("site", "G")
	rec := obs.NewRecorder(obs.RecorderConfig{
		Site:          "G",
		Size:          opts.RecorderSize,
		SlowThreshold: opts.SlowQuery,
		Log:           log,
		Metrics:       reg,
	})
	// Durable mode: recover the global mapping tables and bind-delta log
	// from <DataDir>/G, merge fixture bindings the log doesn't have yet, and
	// hand the coordinator the recovered tables plus the log itself (every
	// accepted bind is appended before it is applied; the resync path
	// replays the log instead of dropping deltas on overflow).
	tables := fed.Mapping
	var deltaLog *wal.Engine
	if opts.DataDir != "" {
		var err error
		deltaLog, tables, err = wal.OpenLog(wal.Options{
			Dir:           filepath.Join(opts.DataDir, "G"),
			Fsync:         opts.Fsync,
			SnapshotEvery: opts.SnapshotEvery,
			Site:          "G",
			Metrics:       reg,
			Tracer:        tr,
			Log:           log,
		})
		if err != nil {
			return err
		}
		defer deltaLog.Close()
		if err := deltaLog.Import(nil, fed.Mapping); err != nil {
			return err
		}
		log.Info("durable delta log ready",
			slog.String("dir", filepath.Join(opts.DataDir, "G")),
			slog.Uint64("seq", deltaLog.Seq()),
			slog.Bool("fsync", opts.Fsync))
	}
	call := opts.Call
	if len(opts.InjectPartition) > 0 {
		plan := fabric.NewFaultPlan()
		for _, peer := range opts.InjectPartition {
			plan.DropLink("G", peer)
			plan.DropLink(peer, "G")
		}
		call.Faults = plan
	}
	coord := &remote.Coordinator{
		ID:            "G",
		Global:        fed.Global,
		Tables:        tables,
		Sites:         peers,
		Tracer:        tr,
		Metrics:       reg,
		Recorder:      rec,
		Log:           log,
		Call:          call,
		MaxConcurrent: opts.Concurrency,
		Deadline:      opts.Deadline,
		AntiEntropy:   opts.AntiEntropy,
	}
	if deltaLog != nil {
		coord.DeltaLog = deltaLog
	}
	defer coord.Close()
	// The repair loop stops before Close (LIFO defer order).
	defer coord.StartAntiEntropy()()
	// Adaptive mode: the selector plans over the bundle's catalog (the
	// coordinator holds the same federation document the sites serve from),
	// calibrated by each query's measured profile and steered by the live
	// peer breaker states.
	var selector *adapt.Selector
	if alg == exec.Adaptive {
		cat := planner.BuildCatalog(fed.Global, fed.Databases, tables)
		selector = adapt.NewSelector(cat,
			adapt.NewCalibrator(adapt.Config{Coordinator: "G"}), coord.BreakerStates)
		coord.Selector = selector
	}
	// /healthz merges the peer breaker states with the replica-resync
	// backlog ("resync:DB2" → "pending(3)"/"needs-rebuild") and, in durable
	// mode, the WAL engine's state, so a coordinator holding undelivered
	// bind deltas or a stopped log reports degraded.
	healthSrcs := []obs.Health{
		breakerHealth(coord.BreakerStates),
		obs.PrefixHealth("resync", breakerHealth(coord.ResyncStates)),
		obs.PrefixHealth("antientropy", coord.Tracker().Health),
	}
	if deltaLog != nil {
		healthSrcs = append(healthSrcs, obs.PrefixHealth("wal", deltaLog.Health))
	}
	if opts.ClusterScrape != "" && opts.MetricsAddr == "" {
		return fmt.Errorf("-cluster-scrape serves /cluster on the observability surface; pass -metrics-addr too")
	}
	if opts.SLO != "" && opts.ClusterScrape == "" {
		return fmt.Errorf("-slo judges the cluster rollup; pass -cluster-scrape too")
	}
	switch {
	case opts.MetricsAddr != "" && opts.ClusterScrape != "":
		targets, err := parseScrapeTargets(opts.ClusterScrape)
		if err != nil {
			return err
		}
		// The coordinator observes itself in process: no HTTP round-trip,
		// and its row carries the end-to-end query metrics.
		targets = append([]agg.Target{{
			Site:         "G",
			Local:        reg.Snapshot,
			LocalHealth:  mergeHealth(healthSrcs),
			LocalQueries: func() []agg.QuerySummary { return profileSummaries(rec) },
		}}, targets...)
		scraper, err := agg.New(agg.Config{
			Site:     "G",
			Targets:  targets,
			Interval: opts.ScrapeInterval,
			Window:   opts.ScrapeWindow,
			Metrics:  reg,
			Log:      log,
		})
		if err != nil {
			return err
		}
		var alerts http.Handler
		if opts.SLO != "" {
			rules, err := slo.ParseRules(opts.SLO)
			if err != nil {
				return err
			}
			engine, err := slo.New(slo.Config{
				Site: "G", Source: scraper, Rules: rules, Metrics: reg, Log: log,
			})
			if err != nil {
				return err
			}
			scraper.SetOnScrape(engine.Evaluate)
			alerts = engine.Handler()
		}
		mux := obs.NewMux("G", reg, tr, time.Now(), rec, healthSrcs...)
		scraper.Register(mux, alerts)
		o, err := obs.ServeHandler(opts.MetricsAddr, "G", reg, mux)
		if err != nil {
			return err
		}
		defer o.Close()
		scraper.Start()
		defer scraper.Stop()
		log.Info("observability serving",
			slog.String("addr", o.Addr()),
			slog.Int("scrape_targets", len(targets)),
			slog.Bool("slo", opts.SLO != ""))
	case opts.MetricsAddr != "":
		o, err := obs.Serve(opts.MetricsAddr, "G", reg, tr, rec, healthSrcs...)
		if err != nil {
			return err
		}
		defer o.Close()
		log.Info("observability serving", slog.String("addr", o.Addr()))
	}
	if err := coord.Ping(); err != nil {
		// Unreachable sites no longer abort the query: execution degrades
		// and the affected results come back as maybe.
		log.Warn("some sites unreachable, proceeding degraded", slog.Any("err", err))
	}
	// Ctrl-C cancels in-flight queries (in-flight exchanges cut, admission
	// slots released, partial answers printed) instead of killing the process.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if opts.Clients*opts.Repeat > 1 {
		return runLoad(ctx, coord, queryText, alg, opts, reg)
	}
	ans, elapsed, err := coord.QueryContext(ctx, queryText, alg)
	if err != nil {
		return err
	}
	algLabel := alg.String()
	if selector != nil {
		if d := selector.LastDecision(); d != nil {
			algLabel = fmt.Sprintf("adaptive → %v", d.Alg)
		}
	}
	fmt.Printf("query: %s\nstrategy: %s  (%.2f ms over TCP)\n", queryText, algLabel,
		float64(elapsed.Microseconds())/1e3)
	if ans.Interrupted() {
		fmt.Printf("INTERRUPTED (%s): sound partial answer\n", ans.Outcome)
	}
	if ans.Degraded {
		fmt.Printf("DEGRADED: partial answer, %d site(s) unavailable:\n", len(ans.Unavailable))
		for _, f := range ans.Unavailable {
			fmt.Printf("  %s: %s\n", f.Site, f.Reason)
		}
	}
	fmt.Printf("certain results (%d):\n", len(ans.Certain))
	for _, r := range ans.Certain {
		fmt.Printf("  %s\n", r)
	}
	fmt.Printf("maybe results (%d):\n", len(ans.Maybe))
	for _, r := range ans.Maybe {
		fmt.Printf("  %s\n", r)
	}
	if opts.Trace {
		fmt.Printf("\nspan tree (coordinator view):\n%s", tr.RenderTree())
	}
	if opts.Metrics {
		fmt.Printf("\ncoordinator metrics:\n%s", reg.Snapshot().Text())
	}
	return nil
}

// runLoad drives Clients concurrent streams of Repeat queries each through
// the coordinator and prints the measured throughput and latency
// distribution — the multi-tenant serving path exercised end to end. The
// driving and the statistics are internal/bench's closed-loop generator and
// exact-percentile summary, the same machinery hetbench measures with.
func runLoad(ctx context.Context, coord *remote.Coordinator, queryText string, alg exec.Algorithm, opts coordOpts, reg *metrics.Registry) error {
	clients, repeat := opts.Clients, opts.Repeat
	if clients < 1 {
		clients = 1
	}
	if repeat < 1 {
		repeat = 1
	}
	var firstErr atomic.Value
	fn := func(ctx context.Context, _ int) bench.Result {
		ans, elapsed, err := coord.QueryContext(ctx, queryText, alg)
		if err != nil {
			if !remote.IsInterrupted(err) {
				firstErr.CompareAndSwap(nil, err)
			}
			return bench.Result{Err: err, Shed: errors.Is(err, exec.ErrShed)}
		}
		return bench.Result{
			Micros:      float64(elapsed.Nanoseconds()) / 1e3,
			Degraded:    ans.Degraded,
			Interrupted: ans.Interrupted(),
		}
	}
	start := time.Now()
	results := bench.RunClosed(ctx, clients, make([]int, clients*repeat), fn)
	st := bench.Summarize(results, float64(time.Since(start).Nanoseconds())/1e3)

	fmt.Printf("load: %d clients x %d queries (%v, concurrency %d)\n",
		clients, repeat, alg, opts.Concurrency)
	fmt.Printf("completed %d/%d in %.2f ms  →  %.1f queries/s\n",
		st.Completed, st.Queries, st.WallMillis, st.QPS)
	if st.Completed > 0 {
		fmt.Printf("latency: mean %.2f ms  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
			st.MeanMicros/1e3, st.P50Micros/1e3, st.P95Micros/1e3,
			st.P99Micros/1e3, st.MaxMicros/1e3)
	}
	if st.Degraded > 0 {
		fmt.Printf("degraded answers: %d\n", st.Degraded)
	}
	if st.Shed > 0 {
		fmt.Printf("shed at admission: %d\n", st.Shed)
	}
	if opts.Metrics {
		fmt.Printf("\ncoordinator metrics:\n%s", reg.Snapshot().Text())
	}
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}
