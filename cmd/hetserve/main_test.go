package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/remote"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("DB1=127.0.0.1:7101, DB2=127.0.0.1:7102")
	if err != nil {
		t.Fatalf("parsePeers: %v", err)
	}
	if peers["DB1"] != "127.0.0.1:7101" || peers["DB2"] != "127.0.0.1:7102" {
		t.Errorf("peers = %v", peers)
	}
	if p, err := parsePeers(""); err != nil || len(p) != 0 {
		t.Errorf("empty peers = %v, %v", p, err)
	}
	for _, bad := range []string{"DB1", "=addr", "DB1=", "DB1=a,=b"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-site", "DB9"}); err == nil {
		t.Error("unknown site accepted")
	}
	if err := run([]string{"-coordinator", "-alg", "NOPE"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-peers", "garbage"}); err == nil {
		t.Error("bad peers accepted")
	}
}

// TestCoordinatorAgainstCluster starts the school sites in-process (via the
// remote package, as runSite would) and drives runCoordinator against them.
func TestCoordinatorAgainstCluster(t *testing.T) {
	fx := school.New()
	sigs := signature.Build(fx.Databases)
	addrs := make(map[object.SiteID]string)
	var servers []*remote.Server
	for _, site := range school.Sites {
		srv, err := remote.NewServer(remote.ServerConfig{
			DB: fx.Databases[site], Global: fx.Global, Tables: fx.Mapping, Signatures: sigs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		addrs[site] = srv.Addr()
	}
	for _, srv := range servers {
		srv.SetPeers(addrs)
	}

	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	bundle := &federationBundle{Global: fx.Global, Databases: fx.Databases, Mapping: fx.Mapping}
	err := runCoordinator(bundle, addrs, school.Q1, "BL")
	w.Close()
	os.Stdout = old
	out := <-done

	if err != nil {
		t.Fatalf("runCoordinator: %v", err)
	}
	if !strings.Contains(out, "Hedy, Kelly") || !strings.Contains(out, "Tony, Haley") {
		t.Errorf("coordinator output wrong:\n%s", out)
	}

	// Unreachable cluster errors out.
	bad := map[object.SiteID]string{"DB1": "127.0.0.1:1", "DB2": "127.0.0.1:1", "DB3": "127.0.0.1:1"}
	if err := runCoordinator(bundle, bad, school.Q1, "BL"); err == nil {
		t.Error("unreachable cluster accepted")
	}
}
