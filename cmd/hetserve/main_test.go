package main

import (
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/remote"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("DB1=127.0.0.1:7101, DB2=127.0.0.1:7102")
	if err != nil {
		t.Fatalf("parsePeers: %v", err)
	}
	if peers["DB1"] != "127.0.0.1:7101" || peers["DB2"] != "127.0.0.1:7102" {
		t.Errorf("peers = %v", peers)
	}
	if p, err := parsePeers(""); err != nil || len(p) != 0 {
		t.Errorf("empty peers = %v, %v", p, err)
	}
	for _, bad := range []string{"DB1", "=addr", "DB1=", "DB1=a,=b"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-site", "DB9"}); err == nil {
		t.Error("unknown site accepted")
	}
	if err := run([]string{"-coordinator", "-alg", "NOPE"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-peers", "garbage"}); err == nil {
		t.Error("bad peers accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed alongside fn's error.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func httpGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestCoordinatorAgainstCluster starts the school sites in-process (via the
// remote package, as runSite would) and drives runCoordinator against them.
func TestCoordinatorAgainstCluster(t *testing.T) {
	fx := school.New()
	sigs := signature.Build(fx.Databases)
	addrs := make(map[object.SiteID]string)
	var servers []*remote.Server
	for _, site := range school.Sites {
		srv, err := remote.NewServer(remote.ServerConfig{
			DB: fx.Databases[site], Global: fx.Global, Tables: fx.Mapping, Signatures: sigs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		addrs[site] = srv.Addr()
	}
	for _, srv := range servers {
		srv.SetPeers(addrs)
	}

	bundle := &federationBundle{Global: fx.Global, Databases: fx.Databases, Mapping: fx.Mapping}
	out, err := captureStdout(t, func() error {
		return runCoordinator(bundle, addrs, school.Q1, "BL", coordOpts{})
	})
	if err != nil {
		t.Fatalf("runCoordinator: %v", err)
	}
	if !strings.Contains(out, "Hedy, Kelly") || !strings.Contains(out, "Tony, Haley") {
		t.Errorf("coordinator output wrong:\n%s", out)
	}

	// An unreachable cluster no longer errors out: the query degrades to a
	// fully-maybe partial answer (every student's root copies are behind
	// dead sites, so they all come back as synthesized all-unknown rows).
	bad := map[object.SiteID]string{"DB1": "127.0.0.1:1", "DB2": "127.0.0.1:1", "DB3": "127.0.0.1:1"}
	out, err = captureStdout(t, func() error {
		return runCoordinator(bundle, bad, school.Q1, "BL",
			coordOpts{Call: remote.CallConfig{Attempts: 1}})
	})
	if err != nil {
		t.Fatalf("unreachable cluster failed instead of degrading: %v", err)
	}
	if !strings.Contains(out, "DEGRADED") || !strings.Contains(out, "certain results (0)") {
		t.Errorf("unreachable-cluster output not degraded:\n%s", out)
	}
}

// TestCoordinatorLoad drives the multi-client serving path (-clients,
// -repeat, -concurrency) against a cluster running with check batching and
// the lookup cache enabled, and checks the printed throughput summary.
func TestCoordinatorLoad(t *testing.T) {
	fx := school.New()
	addrs := make(map[object.SiteID]string)
	var servers []*remote.Server
	for _, site := range school.Sites {
		srv, err := remote.NewServer(remote.ServerConfig{
			DB: fx.Databases[site], Global: fx.Global, Tables: fx.Mapping,
			Batch: remote.BatchConfig{Window: 2 * time.Millisecond},
			Cache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		addrs[site] = srv.Addr()
	}
	for _, srv := range servers {
		srv.SetPeers(addrs)
	}

	bundle := &federationBundle{Global: fx.Global, Databases: fx.Databases, Mapping: fx.Mapping}
	out, err := captureStdout(t, func() error {
		return runCoordinator(bundle, addrs, school.Q1, "BL",
			coordOpts{Clients: 4, Repeat: 3, Concurrency: 2})
	})
	if err != nil {
		t.Fatalf("runCoordinator load: %v", err)
	}
	if !strings.Contains(out, "completed 12/12") || !strings.Contains(out, "queries/s") {
		t.Errorf("load output missing throughput summary:\n%s", out)
	}
}

// TestObservabilitySurface is the end-to-end observability check: three
// instrumented sites with live /metrics endpoints, a BL query driven through
// the hetserve coordinator path, and then the span trees, per-site metrics
// and HTTP surface are all inspected.
func TestObservabilitySurface(t *testing.T) {
	fx := school.New()
	bundle := &federationBundle{Global: fx.Global, Databases: fx.Databases, Mapping: fx.Mapping}
	logger := slog.New(slog.DiscardHandler)

	addrs := make(map[object.SiteID]string)
	rts := make(map[object.SiteID]*siteRuntime)
	for _, site := range school.Sites {
		rt, err := startSite(bundle, site, "127.0.0.1:0", "127.0.0.1:0", nil, siteOpts{}, logger)
		if err != nil {
			t.Fatalf("startSite %s: %v", site, err)
		}
		defer rt.Close()
		rts[site] = rt
		addrs[site] = rt.Server.Addr()
	}
	for _, rt := range rts {
		rt.Server.SetPeers(addrs)
	}

	// (c) /healthz answers 200 on every site before any query.
	for site, rt := range rts {
		code, body := httpGet(t, rt.Obs.Addr(), "/healthz")
		if code != http.StatusOK {
			t.Errorf("healthz %s: status %d", site, code)
		}
		if !strings.Contains(body, `"status":"ok"`) || !strings.Contains(body, string(site)) {
			t.Errorf("healthz %s: body %q", site, body)
		}
	}

	// Counters start at zero.
	before := rts["DB1"].Metrics.Snapshot()
	if n := before.CounterValue("requests_total", metrics.Labels{Site: "DB1", Alg: "BL"}); n != 0 {
		t.Errorf("requests_total before query = %d, want 0", n)
	}

	// Drive a BL query through the hetserve coordinator path with the
	// diagnostic flags on.
	var peerList []string
	for _, site := range school.Sites {
		peerList = append(peerList, string(site)+"="+addrs[site])
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-coordinator", "-peers", strings.Join(peerList, ","),
			"-alg", "BL", "-trace", "-metrics"})
	})
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	for _, want := range []string{
		"Hedy, Kelly", "Tony, Haley", // the paper's Q1 answer still comes out
		"span tree", "@G", "rpc:local", "[I]", // -trace: tree with the certify (I) phase
		"coordinator metrics:", "queries_total", // -metrics: snapshot text
	} {
		if !strings.Contains(out, want) {
			t.Errorf("coordinator output missing %q:\n%s", want, out)
		}
	}

	// (a) Every site recorded query-scoped serve spans parented on the
	// coordinator's (or a dispatching peer's) remote span, and the O and P
	// phases show up site-side; I is the coordinator's certify span,
	// asserted on stdout above.
	sitesWithSpans := map[object.SiteID]bool{}
	phases := map[byte]bool{}
	for site, rt := range rts {
		for _, sp := range rt.Tracer.Spans() {
			if sp.Query == "" {
				continue // ping: no trace context
			}
			if !strings.HasPrefix(sp.Name, "serve:") {
				t.Errorf("site %s: unexpected span name %q", site, sp.Name)
			}
			if sp.Parent == 0 {
				t.Errorf("site %s: span %s not parented on the caller's span", site, sp.Name)
			}
			sitesWithSpans[site] = true
			for i := 0; i < len(sp.Phases); i++ {
				phases[sp.Phases[i]] = true
			}
		}
	}
	if len(sitesWithSpans) < 3 {
		t.Errorf("query spans reached %d sites, want at least 3 (%v)", len(sitesWithSpans), sitesWithSpans)
	}
	if !phases['O'] || !phases['P'] {
		t.Errorf("site-side phase coverage = %v, want O and P", phases)
	}

	// (b) Each site's registry holds a nonzero per-algorithm latency
	// histogram and nonzero per-site-pair byte counters, and the /metrics
	// endpoint serves them.
	for site, rt := range rts {
		snap := rt.Metrics.Snapshot()
		s, ok := snap.Get("request_latency_us", metrics.Labels{Site: string(site), Alg: "BL"})
		if !ok || s.Hist == nil || s.Hist.Count == 0 {
			t.Errorf("site %s: no BL request latency histogram (ok=%v)", site, ok)
		}
		var pairBytes int64
		for _, sample := range snap.Samples {
			if sample.Name == "net_bytes_total" && sample.Labels.Site == string(site) &&
				sample.Labels.Peer != "" && sample.Labels.Alg == "BL" {
				pairBytes += int64(sample.Value)
			}
		}
		if pairBytes == 0 {
			t.Errorf("site %s: no per-site-pair bytes recorded", site)
		}

		code, body := httpGet(t, rt.Obs.Addr(), "/metrics?format=text")
		if code != http.StatusOK {
			t.Errorf("metrics %s: status %d", site, code)
		}
		for _, want := range []string{"requests_total", "request_latency_us", "net_bytes_total"} {
			if !strings.Contains(body, want) {
				t.Errorf("metrics %s: missing %q in:\n%s", site, want, body)
			}
		}
		code, body = httpGet(t, rt.Obs.Addr(), "/metrics")
		if code != http.StatusOK || !strings.Contains(body, `"samples"`) {
			t.Errorf("metrics %s: JSON form status %d body %.200q", site, code, body)
		}
	}

	// Counters advanced after the query (satellite: the surface is live).
	after := rts["DB1"].Metrics.Snapshot()
	if n := after.CounterValue("requests_total", metrics.Labels{Site: "DB1", Alg: "BL"}); n == 0 {
		t.Error("requests_total did not advance after the query")
	}

	// The last-query span tree is browsable over HTTP.
	code, body := httpGet(t, rts["DB1"].Obs.Addr(), "/debug/trace/last")
	if code != http.StatusOK || !strings.Contains(body, "serve:") {
		t.Errorf("debug/trace/last: status %d body %q", code, body)
	}
}
