// Command hetql runs global queries against the paper's example federation
// (the school databases DB1, DB2, DB3 of Figures 1–5) under any of the
// execution strategies, printing certain and maybe results, cost metrics,
// and optionally the executed step flow (the paper's Figure 8).
//
// Usage:
//
//	hetql                              # run the paper's Q1 under CA, BL, PL
//	hetql -alg BL -trace               # one strategy, with its step flow
//	hetql -query 'select name from Student where age > 25'
//	hetql -show                        # print the federation's contents
//	hetql -export > my.json            # dump the federation as JSON
//	hetql -fed my.json -alg auto       # query a JSON-defined federation
//	hetql -fail-sites DB3              # degrade: kill DB3, partial answer
//	hetql -site-delay DB2=5ms          # wedge DB2 by 5ms per operation
//	hetql -explain                     # EXPLAIN ANALYZE: predicted vs measured
//	hetql -alg adaptive -repeat 5      # calibrating selector, fed by each run's profile
//	hetql -deadline 50ms               # budgeted: over-deadline → partial answer
//	hetql -version                     # print the build version
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/hetfed/hetfed/internal/adapt"
	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/fedfile"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/planner"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/store/wal"
	"github.com/hetfed/hetfed/internal/trace"
	"github.com/hetfed/hetfed/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hetql:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hetql", flag.ContinueOnError)
	var (
		queryText   = fs.String("query", school.Q1, "global query (SQL/X-like)")
		algName     = fs.String("alg", "all", "strategy: CA, BL, PL, SBL, SPL, auto (planner), adaptive (calibrating selector), or all")
		repeat      = fs.Int("repeat", 1, "run the query this many times per strategy (lets -alg adaptive calibrate)")
		showTrace   = fs.Bool("trace", false, "print the executed step flow (Figure 8) and the span tree")
		showMetrics = fs.Bool("metrics", false, "print each strategy's metrics (snapshot delta)")
		show        = fs.Bool("show", false, "print the federation's schemas and objects, then exit")
		export      = fs.Bool("export", false, "dump the federation as a JSON document, then exit")
		stats       = fs.Bool("stats", false, "print the planner's catalog statistics, then exit")
		fedPath     = fs.String("fed", "", "load the federation from this JSON document instead of the built-in example")
		failSites   = fs.String("fail-sites", "", "comma-separated sites to kill (fault injection; the query degrades)")
		siteDelay   = fs.String("site-delay", "", "comma-separated SITE=DURATION pairs of extra per-operation latency")
		explain     = fs.Bool("explain", false, "EXPLAIN ANALYZE: print the planner's predicted per-site/per-phase cost against the measured profile (runs the planner's choice unless -alg names a strategy)")
		deadline    = fs.Duration("deadline", 0, "end-to-end wall-clock budget per query; an over-budget query returns its sound partial answer (0 = none)")
		dataDir     = fs.String("data-dir", "", "query the durable state under this root (WAL+snapshot directories as written by hetserve) instead of the in-memory fixture; missing directories are seeded from the fixture")
		obsBase     = fs.String("obs", "", "coordinator observability base URL; with -trace the footer prints a full /debug/trace/{id}.json link (e.g. http://127.0.0.1:8100)")
		showVersion = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println("hetql", version.String())
		return nil
	}

	faults, err := parseFaults(*failSites, *siteDelay)
	if err != nil {
		return err
	}

	// The federation: the paper's school example by default, or a
	// user-supplied JSON document.
	var (
		schemas   map[object.SiteID]*schema.Schema
		global    *schema.Global
		databases map[object.SiteID]*store.Database
		tables    *gmap.Tables
	)
	if *fedPath != "" {
		fed, err := fedfile.Load(*fedPath)
		if err != nil {
			return err
		}
		schemas, global, databases, tables = fed.Schemas, fed.Global, fed.Databases, fed.Tables
	} else {
		fx := school.New()
		schemas, global, databases, tables = fx.Schemas, fx.Global, fx.Databases, fx.Mapping
	}

	// -data-dir: query the durable state hetserve wrote, not the in-memory
	// fixture. Each site's database is recovered from <data-dir>/<site> and
	// the global mapping from <data-dir>/G; fixture entries the recovered
	// state doesn't hold yet are merged in, so the flag also works against a
	// fresh or partially-populated root. -show/-stats/-export then report
	// the recovered federation.
	if *dataDir != "" {
		for site, db := range databases {
			eng, rdb, _, err := wal.Open(db.Schema(), wal.Options{
				Dir:  filepath.Join(*dataDir, string(site)),
				Site: string(site),
			})
			if err != nil {
				return err
			}
			defer eng.Close()
			if err := eng.Import(db, tables); err != nil {
				return err
			}
			databases[site] = rdb
		}
		gx, rtables, err := wal.OpenLog(wal.Options{Dir: filepath.Join(*dataDir, "G"), Site: "G"})
		if err != nil {
			return err
		}
		defer gx.Close()
		if err := gx.Import(nil, tables); err != nil {
			return err
		}
		tables = rtables
	}

	if *export {
		data, err := fedfile.Export(schemas, global, databases)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if *show {
		printFederation(global, databases)
		return nil
	}
	if *stats {
		printCatalog(global, databases, tables)
		return nil
	}

	q, err := query.Parse(*queryText)
	if err != nil {
		return err
	}
	b, err := query.Bind(q, global)
	if err != nil {
		return err
	}

	// -explain without an explicit single strategy runs the planner's choice,
	// like -alg auto.
	useAuto := strings.EqualFold(*algName, "auto") ||
		(*explain && strings.EqualFold(*algName, "all"))
	adaptive := strings.EqualFold(*algName, exec.Adaptive.String())

	// One catalog build serves planning, the EXPLAIN baseline, and the
	// adaptive selector alike.
	var (
		ests     []planner.Estimate
		selector *adapt.Selector
	)
	if useAuto || *explain || adaptive {
		cat := planner.BuildCatalog(global, databases, tables)
		ests = planner.Estimates(cat, b, fabric.DefaultRates())
		if adaptive {
			selector = adapt.NewSelector(cat,
				adapt.NewCalibrator(adapt.Config{Coordinator: "G"}), nil)
		}
	}

	var tracer trace.Tracer
	reg := metrics.New()
	rec := obs.NewRecorder(obs.RecorderConfig{Site: "G", Metrics: reg})
	cfg := exec.Config{
		Global:      global,
		Coordinator: "G",
		Databases:   databases,
		Tables:      tables,
		Tracer:      &tracer,
		Metrics:     reg,
		Signatures:  signature.Build(databases),
		Recorder:    rec,
		Deadline:    *deadline,
	}
	if selector != nil {
		cfg.Selector = selector
	}
	engine, err := exec.New(cfg)
	if err != nil {
		return err
	}

	// Ctrl-C cancels the running query instead of killing the process: the
	// strategy unwinds at its next checkpoint and the partial answer prints
	// with its outcome. A second interrupt kills the process as usual.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var algs []exec.Algorithm
	switch {
	case useAuto:
		chosen := planner.ChooseFrom(ests).Alg
		fmt.Printf("planner chose %v:\n", chosen)
		for _, est := range ests {
			fmt.Printf("  %-3v predicted response %8.2f ms, total %8.2f ms\n",
				est.Alg, est.ResponseMicros/1e3, est.TotalMicros/1e3)
		}
		algs = []exec.Algorithm{chosen}
	case adaptive:
		algs = []exec.Algorithm{exec.Adaptive}
	default:
		algs, err = pickAlgorithms(*algName)
		if err != nil {
			return err
		}
	}

	fmt.Printf("query: %s\n", q)
	prev := reg.Snapshot()
	for _, alg := range algs {
		for run := 0; run < *repeat; run++ {
			tracer.Reset()
			rt := fabric.NewSim(fabric.DefaultRates(), engine.Sites())
			if faults != nil {
				// A fresh plan per run: drop-after budgets are stateful.
				rt = rt.WithFaults(faults())
			}
			ans, m, err := engine.RunContext(ctx, rt, alg, b)
			if err != nil {
				return fmt.Errorf("%v: %w", alg, err)
			}
			executed := alg
			header := alg.String()
			if alg == exec.Adaptive {
				if d := selector.LastDecision(); d != nil {
					executed = d.Alg
					header = fmt.Sprintf("adaptive → %v", d.Alg)
				}
			}
			if *repeat > 1 {
				header = fmt.Sprintf("%s (run %d/%d)", header, run+1, *repeat)
			}
			fmt.Printf("\n=== %s ===\n", header)
			printAnswer(ans, b)
			fmt.Printf("simulated: response %.2f ms, total execution %.2f ms "+
				"(disk %d B, cpu %d ops, net %d B)\n",
				m.ResponseMicros/1e3, m.TotalBusyMicros/1e3, m.DiskBytes, m.CPUOps, m.NetBytes)
			if *explain {
				var calibrated []planner.Estimate
				if alg == exec.Adaptive {
					if d := selector.LastDecision(); d != nil {
						calibrated = d.Estimates
					}
				}
				printExplain(ests, calibrated, executed, rec.Last())
			}
			if *showTrace {
				fmt.Println("\nstep flow:")
				fmt.Print(tracer.Render())
				fmt.Println("\nspan tree:")
				fmt.Print(tracer.RenderTree())
				// The footer makes a slow query one click from its Perfetto
				// trace: the recorded profile's ID is the trace ID every
				// obs surface serves under /debug/trace/{id}.json.
				if p := rec.Last(); p != nil {
					fmt.Printf("\ntrace: %s  →  %s\n", p.ID, traceURL(*obsBase, p.ID))
				}
			}
			if *showMetrics {
				cur := reg.Snapshot()
				fmt.Println("\nmetrics:")
				fmt.Print(cur.Delta(prev).Text())
				prev = cur
			}
		}
	}
	return nil
}

// traceURL builds the link to a query's full trace on the coordinator's
// observability surface. Without a base it stays a path, so the footer is
// useful even when no coordinator is running.
func traceURL(base, id string) string {
	path := "/debug/trace/" + id + ".json"
	if base == "" {
		return path
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimSuffix(base, "/") + path
}

// parseFaults turns the -fail-sites and -site-delay flags into a fault-plan
// factory (nil when no faults are requested). A factory, not a plan: plans
// carry per-run state, so every strategy run gets a fresh one.
func parseFaults(failSites, siteDelay string) (func() *fabric.FaultPlan, error) {
	var kills []object.SiteID
	for _, name := range strings.Split(failSites, ",") {
		if name = strings.TrimSpace(name); name != "" {
			kills = append(kills, object.SiteID(name))
		}
	}
	delays := make(map[object.SiteID]time.Duration)
	for _, pair := range strings.Split(siteDelay, ",") {
		if pair = strings.TrimSpace(pair); pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -site-delay entry %q (want SITE=DURATION)", pair)
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return nil, fmt.Errorf("bad -site-delay entry %q: %v", pair, err)
		}
		delays[object.SiteID(name)] = d
	}
	if len(kills) == 0 && len(delays) == 0 {
		return nil, nil
	}
	return func() *fabric.FaultPlan {
		fp := fabric.NewFaultPlan()
		for _, site := range kills {
			fp.Kill(site)
		}
		for site, d := range delays {
			fp.Delay(site, float64(d.Microseconds()))
		}
		return fp
	}, nil
}

// estimateFor finds the planner estimate matching a strategy; the
// signature-assisted variants read their base strategy's estimate (the
// planner models CA, BL and PL).
func estimateFor(ests []planner.Estimate, alg exec.Algorithm) *planner.Estimate {
	want := alg
	switch alg {
	case exec.SBL:
		want = exec.BL
	case exec.SPL:
		want = exec.PL
	}
	for i := range ests {
		if ests[i].Alg == want {
			return &ests[i]
		}
	}
	return nil
}

// printExplain lays the planner's predicted per-site/per-phase cost against
// the measured profile of the run that just finished — EXPLAIN ANALYZE.
// With a calibrated estimate set (the adaptive selector's decision) the
// table grows a third column: Table 1 prediction, calibrated prediction,
// measured.
func printExplain(table1, calibrated []planner.Estimate, alg exec.Algorithm, p *trace.Profile) {
	fmt.Printf("\nEXPLAIN ANALYZE (%v):\n", alg)
	var (
		labels []string
		bds    []*cost.Breakdown
	)
	predictedLabel := "predicted"
	if calibrated != nil {
		predictedLabel = "table1"
	}
	var predicted *cost.Breakdown
	if est := estimateFor(table1, alg); est != nil {
		fmt.Printf("%s: response %.3f ms, total %.3f ms\n",
			predictedLabel, est.ResponseMicros/1e3, est.TotalMicros/1e3)
		predicted = est.Details
		predicted.Relabel(planner.CoordSite, "G")
	}
	labels, bds = append(labels, predictedLabel), append(bds, predicted)
	if est := estimateFor(calibrated, alg); est != nil {
		fmt.Printf("calibrated: response %.3f ms, total %.3f ms\n",
			est.ResponseMicros/1e3, est.TotalMicros/1e3)
		cb := est.Details
		cb.Relabel(planner.CoordSite, "G")
		labels, bds = append(labels, "calibrated"), append(bds, cb)
	}
	var measured *cost.Breakdown
	if p != nil {
		fmt.Printf("measured:  response %.3f ms, status %s, %d certain, %d maybe\n",
			p.WallMicros/1e3, p.Status, p.Certain, p.Maybe)
		measured = p.Phases
	}
	labels, bds = append(labels, "measured"), append(bds, measured)
	fmt.Print(cost.RenderColumns(labels, bds))
	if p != nil && len(p.Counters) > 0 {
		names := make([]string, 0, len(p.Counters))
		for name := range p.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("counters:")
		for _, name := range names {
			fmt.Printf("  %-20s %d\n", name, p.Counters[name])
		}
	}
}

func pickAlgorithms(name string) ([]exec.Algorithm, error) {
	if strings.EqualFold(name, "all") {
		return exec.Algorithms(), nil
	}
	alg, err := exec.ParseAlgorithm(name)
	if err != nil {
		return nil, err
	}
	return []exec.Algorithm{alg}, nil
}

func printAnswer(ans *federation.Answer, b *query.Bound) {
	if ans.Interrupted() {
		fmt.Printf("INTERRUPTED (%s): sound partial answer\n", ans.Outcome)
	}
	if ans.Degraded {
		fmt.Printf("DEGRADED: partial answer, %d site(s) unavailable:\n", len(ans.Unavailable))
		for _, f := range ans.Unavailable {
			fmt.Printf("  %s: %s\n", f.Site, f.Reason)
		}
	}
	fmt.Printf("certain results (%d):\n", len(ans.Certain))
	for _, r := range ans.Certain {
		fmt.Printf("  %s\n", r)
	}
	fmt.Printf("maybe results (%d):\n", len(ans.Maybe))
	for _, r := range ans.Maybe {
		fmt.Printf("  %s\n", r)
		if len(r.Unknown) > 0 {
			var parts []string
			for _, i := range r.Unknown {
				parts = append(parts, b.Preds[i].Predicate().String())
			}
			fmt.Printf("    unknown: %s\n", strings.Join(parts, "; "))
		}
	}
}

func printCatalog(global *schema.Global, databases map[object.SiteID]*store.Database, tables *gmap.Tables) {
	cat := planner.BuildCatalog(global, databases, tables)
	for _, class := range global.ClassNames() {
		gc := global.Class(class)
		cs := cat.Classes[class]
		fmt.Printf("%s: %d entities, %.2f avg copies, %.0f%% isomeric\n",
			class, cs.Entities, cs.AvgCopies, 100*cs.IsomericRatio)
		for _, site := range gc.Sites() {
			ext := cat.Extents[schema.Constituent{Site: site, Class: class}]
			fmt.Printf("  %s: %d objects, %d bytes\n", site, ext.Objects, ext.Bytes)
			for _, attr := range gc.AttrNames() {
				if !gc.Holds(site, attr) {
					continue
				}
				s := ext.Attrs[attr]
				if s.Numeric {
					fmt.Printf("    %-12s non-null %d/%d, distinct %d, range [%g, %g]\n",
						attr, s.NonNull, ext.Objects, s.Distinct, s.Min, s.Max)
				} else {
					fmt.Printf("    %-12s non-null %d/%d, distinct %d\n",
						attr, s.NonNull, ext.Objects, s.Distinct)
				}
			}
		}
	}
}

func printFederation(global *schema.Global, databases map[object.SiteID]*store.Database) {
	sites := make([]string, 0, len(databases))
	for site := range databases {
		sites = append(sites, string(site))
	}
	sort.Strings(sites)
	for _, site := range sites {
		db := databases[object.SiteID(site)]
		fmt.Printf("=== %s ===\n", site)
		for _, class := range db.Schema().ClassNames() {
			ext := db.Extent(class)
			fmt.Printf("%s (%d objects):\n", class, ext.Len())
			ext.Scan(func(o *object.Object) bool {
				fmt.Printf("  %s\n", o)
				return true
			})
		}
	}
	fmt.Println("=== global schema ===")
	for _, name := range global.ClassNames() {
		gc := global.Class(name)
		fmt.Printf("%s(%s)\n", name, strings.Join(gc.AttrNames(), ", "))
		for _, site := range gc.Sites() {
			miss := gc.MissingAttrs(site)
			if len(miss) > 0 {
				fmt.Printf("  missing at %s: %s\n", site, strings.Join(miss, ", "))
			}
		}
	}
}
