package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestRunDefaultQ1(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-alg", "BL"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"gs4(Hedy, Kelly)", "gs2(Tony, Haley)", "unknown:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	out, err := capture(t, func() error { return run(nil) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"=== CA ===", "=== BL ===", "=== PL ==="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTrace(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-alg", "PL", "-trace"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"step flow:", "PL_C1", "PL_C2", "PL_G2"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// The footer links the run to its full trace document.
	for _, want := range []string{"trace: q", "/debug/trace/q"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace footer missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceObsURL(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-alg", "PL", "-trace", "-obs", "127.0.0.1:8100"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "http://127.0.0.1:8100/debug/trace/q") {
		t.Errorf("footer missing full coordinator URL:\n%s", out)
	}
}

func TestTraceURL(t *testing.T) {
	for _, tc := range []struct{ base, want string }{
		{"", "/debug/trace/rq1.json"},
		{"127.0.0.1:8100", "http://127.0.0.1:8100/debug/trace/rq1.json"},
		{"http://coord:8100/", "http://coord:8100/debug/trace/rq1.json"},
		{"https://coord", "https://coord/debug/trace/rq1.json"},
	} {
		if got := traceURL(tc.base, "rq1"); got != tc.want {
			t.Errorf("traceURL(%q) = %q, want %q", tc.base, got, tc.want)
		}
	}
}

func TestRunAuto(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-alg", "auto"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "planner chose") {
		t.Errorf("output missing planner line:\n%s", out)
	}
}

func TestRunShow(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-show"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"=== DB1 ===", "missing at DB1: speciality", "global schema"} {
		if !strings.Contains(out, want) {
			t.Errorf("show missing %q", want)
		}
	}
}

func TestRunExportAndReload(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-export"}) })
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	path := filepath.Join(t.TempDir(), "fed.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, err := capture(t, func() error { return run([]string{"-fed", path, "-alg", "CA"}) })
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if !strings.Contains(out2, "Hedy, Kelly") {
		t.Errorf("reloaded federation answered wrong:\n%s", out2)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-alg", "NOPE"}) }); err == nil {
		t.Error("bad algorithm accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"-query", "not a query"}) }); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"-fed", "/nonexistent.json"}) }); err == nil {
		t.Error("missing federation file accepted")
	}
}
