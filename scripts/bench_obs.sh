#!/bin/sh
# bench_obs.sh — the observability-overhead smoke: the identical live
# school workload driven twice, once bare and once with the full cluster
# observability plane (scraper polling every site's /metrics + /healthz
# over HTTP at 100ms — 20x the production cadence — SLO engine evaluating
# each pass) watching the serving processes, written to BENCH_obs.json.
# Wall clocks are machine-dependent,
# so there is no cross-run baseline diff: the run gates itself — the
# scraped mode's wall clock must stay within 1.05x the bare baseline's
# (judged on the best same-round ratio of five interleaved rounds with
# alternating order, so a transient load spike can't fail the gate on
# its own).
#
# Usage:
#   scripts/bench_obs.sh          run and gate; report to /tmp
#   scripts/bench_obs.sh regen    regenerate the committed report
#
# BENCH_OUT overrides where the gated run writes its report
# (default /tmp/BENCH_obs.json).
set -eu
cd "$(dirname "$0")/.."

run() {
    go run ./cmd/hetbench obs \
        -queries 1200 -clients 4 -seed 42 -interval 100ms -max-overhead 1.05 "$@"
}

if [ "${1:-}" = "regen" ]; then
    run -out BENCH_obs.json
    echo "report regenerated: BENCH_obs.json"
else
    run -out "${BENCH_OUT:-/tmp/BENCH_obs.json}"
fi
