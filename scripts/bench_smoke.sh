#!/bin/sh
# bench_smoke.sh — the benchmark regression smoke: a tiny deterministic
# sim matrix (static CA and BL plus the adaptive selector, over the school
# federation) checked against the committed baseline BENCH_smoke.json. The
# static/adaptive cell pair gates the feedback loop too: calibration runs
# on the DES's virtual time, so the same seed reproduces byte-identical
# results — including the selector's choice sequence — on any machine.
# A >10% drift means the code changed the measured behaviour.
#
# Usage:
#   scripts/bench_smoke.sh          run the matrix and gate against baseline
#   scripts/bench_smoke.sh regen    regenerate the committed baseline
#
# BENCH_OUT overrides where the gated run writes its report
# (default /tmp/BENCH_smoke.json).
set -eu
cd "$(dirname "$0")/.."

run_matrix() {
    go run ./cmd/hetbench run -topic smoke \
        -runtimes sim -strategies CA,BL,adaptive -workloads school \
        -clients 1 -faults none -serving plain \
        -queries 6 -zipf 0.8 -variants 3 -seed 42 \
        "$@"
}

if [ "${1:-}" = "regen" ]; then
    run_matrix -out BENCH_smoke.json
    echo "baseline regenerated: BENCH_smoke.json"
else
    run_matrix -out "${BENCH_OUT:-/tmp/BENCH_smoke.json}" \
        -check BENCH_smoke.json -tolerance 10%
fi
