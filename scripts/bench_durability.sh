#!/bin/sh
# bench_durability.sh — the storage-engine durability smoke: identical
# school-style insert streams through the mem, wal and wal-fsync engines
# plus a timed cold-start recovery of each durable directory, written to
# BENCH_durability.json. Unlike the sim smoke, wall clocks here are
# machine-dependent, so there is no cross-run baseline diff: the run gates
# itself on its own invariants — recovery must reproduce every inserted
# object, and the buffered WAL's write path must stay within 1.25x the
# in-memory engine's (each engine's best of three interleaved rounds, so
# a transient load spike can't fail the gate on its own).
#
# Usage:
#   scripts/bench_durability.sh          run and gate; report to /tmp
#   scripts/bench_durability.sh regen    regenerate the committed report
#
# BENCH_OUT overrides where the gated run writes its report
# (default /tmp/BENCH_durability.json).
set -eu
cd "$(dirname "$0")/.."

run() {
    go run ./cmd/hetbench durability \
        -objects 20000 -seed 42 -max-overhead 1.25 "$@"
}

if [ "${1:-}" = "regen" ]; then
    run -out BENCH_durability.json
    echo "report regenerated: BENCH_durability.json"
else
    run -out "${BENCH_OUT:-/tmp/BENCH_durability.json}"
fi
