#!/bin/sh
# check.sh — the repository's verification gate: formatting, vet, build,
# unit tests, the full test suite under the race detector, and a one-shot
# compile-and-run smoke of the observability-overhead benchmarks.
#
# Usage: scripts/check.sh [package-pattern]   (default ./...)
set -eu
cd "$(dirname "$0")/.."
pkgs="${1:-./...}"

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet $pkgs"
go vet "$pkgs"

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck $pkgs"
    staticcheck "$pkgs"
else
    echo "== staticcheck (skipped: not installed)"
fi

echo "== go build $pkgs"
go build "$pkgs"

# -timeout 120s: a wedged cancellation/deadline test must fail the gate
# with a goroutine dump, not hang it for the default 10 minutes.
echo "== go test $pkgs"
go test -timeout 120s "$pkgs"

echo "== go test -race $pkgs"
go test -race -timeout 120s "$pkgs"

echo "== bench smoke (1 iteration)"
go test -run - -bench 'BenchmarkTraceOverhead|BenchmarkProfileOverhead' -benchtime 1x .

# The recovery torture runs inside the package tests above, but a fresh
# -count=1 pass here keeps the crash-recovery gate immune to test caching.
echo "== recovery torture (kill -9, fresh run)"
go test -count 1 -timeout 120s -run 'TestKillNineMidInsert' ./internal/store/wal/

# BENCH_SMOKE=1 additionally runs the hetbench regression smoke: a tiny
# deterministic sim matrix gated against the committed BENCH_smoke.json.
if [ "${BENCH_SMOKE:-0}" = "1" ]; then
    echo "== hetbench smoke (vs committed BENCH_smoke.json)"
    scripts/bench_smoke.sh
fi

# BENCH_DURABILITY=1 additionally runs the storage-engine durability
# smoke: it gates on its own invariants (recovery completeness and the
# buffered WAL's write overhead vs the in-memory engine).
if [ "${BENCH_DURABILITY:-0}" = "1" ]; then
    echo "== hetbench durability (self-gating)"
    scripts/bench_durability.sh
fi

# BENCH_OBS=1 additionally runs the observability-overhead smoke: the
# live cluster measured bare and under the scraper + SLO plane, gated on
# the relative wall-clock overhead.
if [ "${BENCH_OBS:-0}" = "1" ]; then
    echo "== hetbench obs (self-gating)"
    scripts/bench_obs.sh
fi

# BENCH_CHAOS=1 additionally runs the partition-tolerance chaos smoke: a
# seeded partition/kill/restart schedule over a durable live cluster,
# gated on zero certain-answer contradictions and bounded anti-entropy
# convergence.
if [ "${BENCH_CHAOS:-0}" = "1" ]; then
    echo "== hetbench chaos (self-gating)"
    scripts/bench_chaos.sh
fi

echo "ok"
