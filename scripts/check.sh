#!/bin/sh
# check.sh — the repository's verification gate: vet, build, unit tests,
# and the full test suite under the race detector.
#
# Usage: scripts/check.sh [package-pattern]   (default ./...)
set -eu
cd "$(dirname "$0")/.."
pkgs="${1:-./...}"

echo "== go vet $pkgs"
go vet "$pkgs"

echo "== go build $pkgs"
go build "$pkgs"

echo "== go test $pkgs"
go test "$pkgs"

echo "== go test -race $pkgs"
go test -race "$pkgs"

echo "ok"
