#!/bin/sh
# bench_chaos.sh — the partition-tolerance chaos smoke: a WAL-durable
# school cluster over real TCP driven by a seeded schedule of partitions,
# heals, site kills, restarts, inserts and queries, written to
# BENCH_chaos.json. Wall clocks here are machine-dependent, so there is no
# cross-run baseline diff: the run gates itself on its own invariants — no
# certain row returned under faults may contradict the fault-free ground
# truth, and once everything heals the replicas must converge within 5
# anti-entropy repair rounds (the documented bound; one round moves a
# binding one hop across the full repair mesh).
#
# Usage:
#   scripts/bench_chaos.sh          run and gate; report to /tmp
#   scripts/bench_chaos.sh regen    regenerate the committed report
#
# BENCH_OUT overrides where the gated run writes its report
# (default /tmp/BENCH_chaos.json).
set -eu
cd "$(dirname "$0")/.."

run() {
    go run ./cmd/hetbench chaos \
        -steps 60 -seed 42 -max-rounds 5 "$@"
}

if [ "${1:-}" = "regen" ]; then
    run -out BENCH_chaos.json
    echo "report regenerated: BENCH_chaos.json"
else
    run -out "${BENCH_OUT:-/tmp/BENCH_chaos.json}"
fi
