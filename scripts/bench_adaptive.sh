#!/bin/sh
# bench_adaptive.sh — the static-vs-adaptive A/B scenario behind
# BENCH_adaptive.json: every static strategy (CA, BL, PL) against the
# calibrating adaptive selector, over the Zipf-skewed school workload,
# healthy and with one site killed. Deterministic sim cells, so the
# committed baseline is byte-stable.
#
# The claim the baseline records (see EXPERIMENTS.md E16): on the skewed
# healthy workload adaptive's p50 stays within tolerance of the best
# static cell, and under kill-one-site it beats the worst static cell
# outright (the selector steers away from check-shipping plans once the
# dead site shows up in the profiles).
#
# Usage:
#   scripts/bench_adaptive.sh          run the matrix and gate against baseline
#   scripts/bench_adaptive.sh regen    regenerate the committed baseline
#
# BENCH_OUT overrides where the gated run writes its report
# (default /tmp/BENCH_adaptive.json).
set -eu
cd "$(dirname "$0")/.."

run_matrix() {
    go run ./cmd/hetbench run -topic adaptive \
        -runtimes sim -strategies CA,BL,PL,adaptive -workloads school \
        -clients 1 -faults none,kill:DB3 -serving plain \
        -queries 40 -zipf 0.8 -variants 3 -seed 42 \
        "$@"
}

if [ "${1:-}" = "regen" ]; then
    run_matrix -out BENCH_adaptive.json
    echo "baseline regenerated: BENCH_adaptive.json"
else
    run_matrix -out "${BENCH_OUT:-/tmp/BENCH_adaptive.json}" \
        -check BENCH_adaptive.json -tolerance 10%
fi
