package metrics

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// scrapeTimeout bounds one /metrics exchange; a wedged observability
// endpoint must not wedge the measurement harness scraping it.
const scrapeTimeout = 10 * time.Second

// Scrape fetches a /metrics endpoint (the obs package's JSON form) and
// parses it into a Snapshot — the client half of scrape-based measurement:
// snapshot a server before a run, again after it, and Delta the two so the
// server's own truth (bytes moved, cache hits, degraded counts) is measured
// without trusting the client's view.
//
// url is the full endpoint URL, e.g. "http://127.0.0.1:8101/metrics". The
// request carries ctx (cancellation) and a 10s default deadline when ctx
// has none.
func Scrape(ctx context.Context, url string) (Snapshot, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, scrapeTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Snapshot{}, fmt.Errorf("metrics: scrape %s: %w", url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return Snapshot{}, fmt.Errorf("metrics: scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Snapshot{}, fmt.Errorf("metrics: scrape %s: status %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return Snapshot{}, fmt.Errorf("metrics: scrape %s: read: %w", url, err)
	}
	return ParseSnapshot(body)
}

// ParseSnapshot decodes the JSON form rendered by Snapshot.JSON (and served
// on /metrics). The empty or "null" body parses to an empty snapshot.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if len(data) == 0 {
		return s, nil
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: parse snapshot: %w", err)
	}
	return s, nil
}
