package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestLabelsString(t *testing.T) {
	if got := (Labels{}).String(); got != "" {
		t.Errorf("empty labels = %q", got)
	}
	l := Labels{Site: "DB1", Peer: "G", Alg: "BL", Phase: "O"}
	want := `{site="DB1",peer="G",alg="BL",phase="O"}`
	if got := l.String(); got != want {
		t.Errorf("labels = %q, want %q", got, want)
	}
	if got := (Labels{Alg: "CA"}).String(); got != `{alg="CA"}` {
		t.Errorf("alg-only labels = %q", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x", Labels{}).Inc()
	r.Gauge("y", Labels{}).Set(3)
	r.Histogram("z", Labels{}).Observe(1)
	if snap := r.Snapshot(); len(snap.Samples) != 0 {
		t.Errorf("nil registry snapshot has %d samples", len(snap.Samples))
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("reqs", Labels{Site: "DB1"})
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotone
	g := r.Gauge("depth", Labels{Site: "DB1"})
	g.Set(7)
	g.Add(-2)

	snap := r.Snapshot()
	if n := snap.CounterValue("reqs", Labels{Site: "DB1"}); n != 5 {
		t.Errorf("counter = %d, want 5", n)
	}
	s, ok := snap.Get("depth", Labels{Site: "DB1"})
	if !ok || s.Value != 5 || s.Kind != "gauge" {
		t.Errorf("gauge sample = %+v, ok=%v", s, ok)
	}
	// Same (name, labels) returns the same instrument.
	r.Counter("reqs", Labels{Site: "DB1"}).Inc()
	if n := r.Snapshot().CounterValue("reqs", Labels{Site: "DB1"}); n != 6 {
		t.Errorf("counter after re-fetch = %d, want 6", n)
	}
	// Absent counter reads as zero.
	if n := snap.CounterValue("reqs", Labels{Site: "DB9"}); n != 0 {
		t.Errorf("absent counter = %d", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", Labels{Alg: "BL"})
	for _, v := range []float64{10, 60, 60, 99999, 1e9} {
		h.Observe(v)
	}
	s, ok := r.Snapshot().Get("lat", Labels{Alg: "BL"})
	if !ok || s.Hist == nil {
		t.Fatalf("histogram sample missing (ok=%v)", ok)
	}
	hs := s.Hist
	if hs.Count != 5 {
		t.Errorf("count = %d, want 5", hs.Count)
	}
	if len(hs.Counts) != len(hs.Bounds)+1 {
		t.Fatalf("counts len %d, bounds len %d", len(hs.Counts), len(hs.Bounds))
	}
	// 10 → le50; 60,60 → le100; 99999 → le100000; 1e9 → overflow.
	if hs.Counts[0] != 1 || hs.Counts[1] != 2 {
		t.Errorf("low buckets = %v", hs.Counts)
	}
	if hs.Counts[len(hs.Counts)-1] != 1 {
		t.Errorf("overflow bucket = %v", hs.Counts)
	}
	wantSum := 10 + 60 + 60 + 99999 + 1e9
	if hs.Sum != wantSum {
		t.Errorf("sum = %g, want %g", hs.Sum, wantSum)
	}
	if got := hs.Mean(); got != wantSum/5 {
		t.Errorf("mean = %g", got)
	}
	var empty *HistogramSnapshot
	if empty.Mean() != 0 {
		t.Error("nil snapshot mean != 0")
	}
}

func TestSnapshotOrderingAndDelta(t *testing.T) {
	r := New()
	r.Counter("b_total", Labels{Site: "DB2"}).Add(2)
	r.Counter("b_total", Labels{Site: "DB1"}).Add(1)
	r.Counter("a_total", Labels{}).Add(9)
	r.Gauge("g", Labels{}).Set(4)
	r.Histogram("h", Labels{}).Observe(100)
	first := r.Snapshot()

	var names []string
	for _, s := range first.Samples {
		names = append(names, s.Name+s.Labels.String())
	}
	want := []string{"a_total", "b_total{site=\"DB1\"}", "b_total{site=\"DB2\"}", "g", "h"}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("snapshot order = %v, want %v", names, want)
		}
	}

	r.Counter("a_total", Labels{}).Add(1)
	r.Gauge("g", Labels{}).Set(11)
	r.Histogram("h", Labels{}).Observe(300)
	second := r.Snapshot()
	d := second.Delta(first)
	if n := d.CounterValue("a_total", Labels{}); n != 1 {
		t.Errorf("delta counter = %d, want 1", n)
	}
	if s, _ := d.Get("g", Labels{}); s.Value != 11 {
		t.Errorf("delta gauge = %d, want current value 11", s.Value)
	}
	if s, _ := d.Get("h", Labels{}); s.Hist.Count != 1 || s.Hist.Sum != 300 {
		t.Errorf("delta histogram = %+v", s.Hist)
	}
	// Unchanged counters difference to zero.
	if n := d.CounterValue("b_total", Labels{Site: "DB1"}); n != 0 {
		t.Errorf("unchanged counter delta = %d", n)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("n", Labels{Site: "DB1"}).Add(3)
	b.Counter("n", Labels{Site: "DB1"}).Add(4)
	b.Counter("n", Labels{Site: "DB2"}).Add(5)
	a.Histogram("h", Labels{}).Observe(100)
	b.Histogram("h", Labels{}).Observe(200)
	a.Gauge("g", Labels{}).Set(1)
	b.Gauge("g", Labels{}).Set(2)

	m := a.Snapshot().Merge(b.Snapshot())
	if n := m.CounterValue("n", Labels{Site: "DB1"}); n != 7 {
		t.Errorf("merged counter = %d, want 7", n)
	}
	if n := m.CounterValue("n", Labels{Site: "DB2"}); n != 5 {
		t.Errorf("one-sided counter = %d, want 5", n)
	}
	if s, _ := m.Get("h", Labels{}); s.Hist.Count != 2 || s.Hist.Sum != 300 {
		t.Errorf("merged histogram = %+v", s.Hist)
	}
	if s, _ := m.Get("g", Labels{}); s.Value != 2 {
		t.Errorf("merged gauge = %d, want other's value 2", s.Value)
	}
}

func TestTextAndJSON(t *testing.T) {
	r := New()
	r.Counter("queries_total", Labels{Site: "G", Alg: "BL"}).Add(2)
	r.Histogram("query_latency_us", Labels{Site: "G", Alg: "BL"}).Observe(120)
	snap := r.Snapshot()

	text := snap.Text()
	for _, want := range []string{
		`queries_total{site="G",alg="BL"} 2`,
		"query_latency_us", "count=1", "mean=120.0µs",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}

	data, err := snap.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(decoded.Samples) != 2 {
		t.Errorf("decoded %d samples, want 2", len(decoded.Samples))
	}
	if decoded.CounterValue("queries_total", Labels{Site: "G", Alg: "BL"}) != 2 {
		t.Error("counter lost in JSON round-trip")
	}
}

// TestConcurrentAccess exercises registration and recording from many
// goroutines; run under -race this is the registry's thread-safety test.
func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	sites := []string{"DB1", "DB2", "DB3", "G"}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l := Labels{Site: sites[j%len(sites)], Alg: "BL"}
				r.Counter("requests_total", l).Inc()
				r.Gauge("inflight", l).Add(1)
				r.Histogram("latency_us", l).Observe(float64(j))
				if j%17 == 0 {
					r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, s := range snap.Samples {
		if s.Name == "requests_total" {
			total += s.Value
		}
	}
	if total != 8*200 {
		t.Errorf("requests_total sum = %d, want %d", total, 8*200)
	}
}
