package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestLabelsString(t *testing.T) {
	if got := (Labels{}).String(); got != "" {
		t.Errorf("empty labels = %q", got)
	}
	l := Labels{Site: "DB1", Peer: "G", Alg: "BL", Phase: "O"}
	want := `{site="DB1",peer="G",alg="BL",phase="O"}`
	if got := l.String(); got != want {
		t.Errorf("labels = %q, want %q", got, want)
	}
	if got := (Labels{Alg: "CA"}).String(); got != `{alg="CA"}` {
		t.Errorf("alg-only labels = %q", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x", Labels{}).Inc()
	r.Gauge("y", Labels{}).Set(3)
	r.Histogram("z", Labels{}).Observe(1)
	if snap := r.Snapshot(); len(snap.Samples) != 0 {
		t.Errorf("nil registry snapshot has %d samples", len(snap.Samples))
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("reqs", Labels{Site: "DB1"})
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotone
	g := r.Gauge("depth", Labels{Site: "DB1"})
	g.Set(7)
	g.Add(-2)

	snap := r.Snapshot()
	if n := snap.CounterValue("reqs", Labels{Site: "DB1"}); n != 5 {
		t.Errorf("counter = %d, want 5", n)
	}
	s, ok := snap.Get("depth", Labels{Site: "DB1"})
	if !ok || s.Value != 5 || s.Kind != "gauge" {
		t.Errorf("gauge sample = %+v, ok=%v", s, ok)
	}
	// Same (name, labels) returns the same instrument.
	r.Counter("reqs", Labels{Site: "DB1"}).Inc()
	if n := r.Snapshot().CounterValue("reqs", Labels{Site: "DB1"}); n != 6 {
		t.Errorf("counter after re-fetch = %d, want 6", n)
	}
	// Absent counter reads as zero.
	if n := snap.CounterValue("reqs", Labels{Site: "DB9"}); n != 0 {
		t.Errorf("absent counter = %d", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", Labels{Alg: "BL"})
	for _, v := range []float64{10, 60, 60, 99999, 1e9} {
		h.Observe(v)
	}
	s, ok := r.Snapshot().Get("lat", Labels{Alg: "BL"})
	if !ok || s.Hist == nil {
		t.Fatalf("histogram sample missing (ok=%v)", ok)
	}
	hs := s.Hist
	if hs.Count != 5 {
		t.Errorf("count = %d, want 5", hs.Count)
	}
	if len(hs.Counts) != len(hs.Bounds)+1 {
		t.Fatalf("counts len %d, bounds len %d", len(hs.Counts), len(hs.Bounds))
	}
	// 10 → le50; 60,60 → le100; 99999 → le100000; 1e9 → overflow.
	if hs.Counts[0] != 1 || hs.Counts[1] != 2 {
		t.Errorf("low buckets = %v", hs.Counts)
	}
	if hs.Counts[len(hs.Counts)-1] != 1 {
		t.Errorf("overflow bucket = %v", hs.Counts)
	}
	wantSum := 10 + 60 + 60 + 99999 + 1e9
	if hs.Sum != wantSum {
		t.Errorf("sum = %g, want %g", hs.Sum, wantSum)
	}
	if got := hs.Mean(); got != wantSum/5 {
		t.Errorf("mean = %g", got)
	}
	var empty *HistogramSnapshot
	if empty.Mean() != 0 {
		t.Error("nil snapshot mean != 0")
	}
}

func TestSnapshotOrderingAndDelta(t *testing.T) {
	r := New()
	r.Counter("b_total", Labels{Site: "DB2"}).Add(2)
	r.Counter("b_total", Labels{Site: "DB1"}).Add(1)
	r.Counter("a_total", Labels{}).Add(9)
	r.Gauge("g", Labels{}).Set(4)
	r.Histogram("h", Labels{}).Observe(100)
	first := r.Snapshot()

	var names []string
	for _, s := range first.Samples {
		names = append(names, s.Name+s.Labels.String())
	}
	want := []string{"a_total", "b_total{site=\"DB1\"}", "b_total{site=\"DB2\"}", "g", "h"}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("snapshot order = %v, want %v", names, want)
		}
	}

	r.Counter("a_total", Labels{}).Add(1)
	r.Gauge("g", Labels{}).Set(11)
	r.Histogram("h", Labels{}).Observe(300)
	second := r.Snapshot()
	d := second.Delta(first)
	if n := d.CounterValue("a_total", Labels{}); n != 1 {
		t.Errorf("delta counter = %d, want 1", n)
	}
	if s, _ := d.Get("g", Labels{}); s.Value != 11 {
		t.Errorf("delta gauge = %d, want current value 11", s.Value)
	}
	if s, _ := d.Get("h", Labels{}); s.Hist.Count != 1 || s.Hist.Sum != 300 {
		t.Errorf("delta histogram = %+v", s.Hist)
	}
	// Unchanged counters difference to zero.
	if n := d.CounterValue("b_total", Labels{Site: "DB1"}); n != 0 {
		t.Errorf("unchanged counter delta = %d", n)
	}
}

// A durable site that restarts starts a fresh registry: its counters come
// back smaller than the previous scrape saw. The delta must treat the new
// value as the whole delta (not go negative) and report the reset.
func TestDeltaCounterReset(t *testing.T) {
	before := New()
	before.Counter("requests_total", Labels{Site: "DB1"}).Add(100)
	before.Counter("steady_total", Labels{Site: "DB1"}).Add(5)
	before.Histogram("lat_us", Labels{Site: "DB1"}).Observe(400)
	before.Histogram("lat_us", Labels{Site: "DB1"}).Observe(900)
	prev := before.Snapshot()

	// "Restarted" process: same series names, smaller values.
	after := New()
	after.Counter("requests_total", Labels{Site: "DB1"}).Add(3)
	after.Counter("steady_total", Labels{Site: "DB1"}).Add(7) // grew: normal
	after.Histogram("lat_us", Labels{Site: "DB1"}).Observe(250)
	cur := after.Snapshot()

	d, resets := cur.DeltaWithResets(prev)
	if resets != 2 {
		t.Errorf("resets = %d, want 2 (counter + histogram)", resets)
	}
	if n := d.CounterValue("requests_total", Labels{Site: "DB1"}); n != 3 {
		t.Errorf("reset counter delta = %d, want the new value 3", n)
	}
	if n := d.CounterValue("steady_total", Labels{Site: "DB1"}); n != 2 {
		t.Errorf("grown counter delta = %d, want 2", n)
	}
	s, ok := d.Get("lat_us", Labels{Site: "DB1"})
	if !ok || s.Hist == nil {
		t.Fatalf("lat_us missing from delta")
	}
	if s.Hist.Count != 1 || s.Hist.Sum != 250 {
		t.Errorf("reset histogram delta = count %d sum %.0f, want the new snapshot (1, 250)",
			s.Hist.Count, s.Hist.Sum)
	}

	// Delta (without reset reporting) must agree and never go negative.
	plain := cur.Delta(prev)
	if n := plain.CounterValue("requests_total", Labels{Site: "DB1"}); n != 3 {
		t.Errorf("Delta reset counter = %d, want 3", n)
	}

	// No resets on a normal monotone pair.
	after.Counter("requests_total", Labels{Site: "DB1"}).Add(500)
	if _, r := after.Snapshot().DeltaWithResets(cur); r != 0 {
		t.Errorf("monotone growth counted %d resets", r)
	}
}

// A histogram whose total count held steady but whose buckets moved
// (impossible without a restart plus coincidental growth) still counts as
// a reset: any shrinking bucket is the tell.
func TestDeltaHistogramBucketReset(t *testing.T) {
	a := New()
	a.Histogram("h", Labels{}).Observe(50) // lands in a low bucket
	prev := a.Snapshot()

	b := New()
	b.Histogram("h", Labels{}).Observe(5_000_000) // one obs, but a different bucket
	d, resets := b.Snapshot().DeltaWithResets(prev)
	if resets != 1 {
		t.Errorf("resets = %d, want 1 (bucket shrank at equal count)", resets)
	}
	if s, _ := d.Get("h", Labels{}); s.Hist.Count != 1 || s.Hist.Sum != 5_000_000 {
		t.Errorf("delta = %+v, want the new snapshot whole", s.Hist)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("n", Labels{Site: "DB1"}).Add(3)
	b.Counter("n", Labels{Site: "DB1"}).Add(4)
	b.Counter("n", Labels{Site: "DB2"}).Add(5)
	a.Histogram("h", Labels{}).Observe(100)
	b.Histogram("h", Labels{}).Observe(200)
	a.Gauge("g", Labels{}).Set(1)
	b.Gauge("g", Labels{}).Set(2)

	m := a.Snapshot().Merge(b.Snapshot())
	if n := m.CounterValue("n", Labels{Site: "DB1"}); n != 7 {
		t.Errorf("merged counter = %d, want 7", n)
	}
	if n := m.CounterValue("n", Labels{Site: "DB2"}); n != 5 {
		t.Errorf("one-sided counter = %d, want 5", n)
	}
	if s, _ := m.Get("h", Labels{}); s.Hist.Count != 2 || s.Hist.Sum != 300 {
		t.Errorf("merged histogram = %+v", s.Hist)
	}
	if s, _ := m.Get("g", Labels{}); s.Value != 2 {
		t.Errorf("merged gauge = %d, want other's value 2", s.Value)
	}
}

func TestTextAndJSON(t *testing.T) {
	r := New()
	r.Counter("queries_total", Labels{Site: "G", Alg: "BL"}).Add(2)
	r.Histogram("query_latency_us", Labels{Site: "G", Alg: "BL"}).Observe(120)
	snap := r.Snapshot()

	text := snap.Text()
	for _, want := range []string{
		`queries_total{site="G",alg="BL"} 2`,
		"query_latency_us", "count=1", "mean=120.0µs",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}

	data, err := snap.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(decoded.Samples) != 2 {
		t.Errorf("decoded %d samples, want 2", len(decoded.Samples))
	}
	if decoded.CounterValue("queries_total", Labels{Site: "G", Alg: "BL"}) != 2 {
		t.Error("counter lost in JSON round-trip")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var empty *HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("nil snapshot quantile = %g, want 0", got)
	}
	if got := NewHistogram().Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}

	// 100 observations spread uniformly inside the (100, 250] bucket: the
	// interpolated median must land mid-bucket, and the extremes must stay
	// inside the bucket bounds.
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(150)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got < 100 || got > 250 {
		t.Errorf("median = %g, want within (100, 250]", got)
	}
	// All mass in one bucket: q=1 is the bucket's upper bound. q=0 walks to
	// the first bucket and reports its bound (rank 0 is satisfied there).
	if got := s.Quantile(1); got != 250 {
		t.Errorf("q=1 = %g, want 250", got)
	}
	if got := s.Quantile(0); got != DefaultBuckets[0] {
		t.Errorf("q=0 = %g, want first bound %g", got, DefaultBuckets[0])
	}
	// Out-of-range q clamps rather than panicking.
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Errorf("q=-1 = %g, want clamp to q=0", got)
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Errorf("q=2 = %g, want clamp to q=1", got)
	}

	// Two buckets, 90/10 split: p50 in the first, p95 in the second.
	h2 := NewHistogram()
	for i := 0; i < 90; i++ {
		h2.Observe(80) // (50, 100]
	}
	for i := 0; i < 10; i++ {
		h2.Observe(2000) // (1000, 2500]
	}
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.5); got < 50 || got > 100 {
		t.Errorf("p50 = %g, want within (50, 100]", got)
	}
	if got := s2.Quantile(0.95); got < 1000 || got > 2500 {
		t.Errorf("p95 = %g, want within (1000, 2500]", got)
	}

	// Overflow-bucket targets report the largest finite bound.
	h3 := NewHistogram()
	h3.Observe(1e9)
	top := DefaultBuckets[len(DefaultBuckets)-1]
	if got := h3.Snapshot().Quantile(0.99); got != top {
		t.Errorf("overflow quantile = %g, want %g", got, top)
	}
}

func TestHistogramExemplar(t *testing.T) {
	r := New()
	h := r.Histogram("query_latency_us", Labels{Site: "G", Alg: "PL"})
	h.ObserveWithExemplar(120, "q7")
	h.Observe(80) // plain Observe must not attach or clobber an exemplar
	h.ObserveWithExemplar(99000, "q9")

	s, ok := r.Snapshot().Get("query_latency_us", Labels{Site: "G", Alg: "PL"})
	if !ok || s.Hist == nil {
		t.Fatalf("histogram sample missing (ok=%v)", ok)
	}
	hs := s.Hist
	e := hs.ExemplarFor(120)
	if e == nil || e.TraceID != "q7" || e.Value != 120 {
		t.Errorf("ExemplarFor(120) = %+v, want q7/120", e)
	}
	if e := hs.ExemplarFor(99000); e == nil || e.TraceID != "q9" {
		t.Errorf("ExemplarFor(99000) = %+v, want q9", e)
	}
	// A bucket that never saw an exemplar resolves to nil.
	if e := hs.ExemplarFor(3); e != nil {
		t.Errorf("ExemplarFor(3) = %+v, want nil", e)
	}
	// Last write wins within a bucket.
	h.ObserveWithExemplar(130, "q8")
	if e := r.Snapshot().Samples[0].Hist.ExemplarFor(120); e == nil || e.TraceID != "q8" {
		t.Errorf("after overwrite, exemplar = %+v, want q8", e)
	}
	// Empty trace ID attaches nothing.
	h2 := NewHistogram()
	h2.ObserveWithExemplar(10, "")
	if h2.Snapshot().Exemplars != nil {
		t.Error("empty trace ID attached an exemplar")
	}
	// Text() marks exemplared buckets with #traceID.
	text := r.Snapshot().Text()
	if !strings.Contains(text, "#q8") || !strings.Contains(text, "#q9") {
		t.Errorf("text missing exemplar markers:\n%s", text)
	}
	// Exemplars survive JSON round-trips (the /metrics?format=json surface).
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	ds, _ := decoded.Get("query_latency_us", Labels{Site: "G", Alg: "PL"})
	if e := ds.Hist.ExemplarFor(120); e == nil || e.TraceID != "q8" {
		t.Errorf("exemplar lost in JSON round-trip: %+v", e)
	}
}

// TestConcurrentExemplars hammers ObserveWithExemplar and Snapshot from many
// goroutines; under -race this is the exemplar path's thread-safety test.
func TestConcurrentExemplars(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.ObserveWithExemplar(float64(j%3000), "q"+string(rune('0'+i)))
				if j%29 == 0 {
					h.Snapshot().ExemplarFor(float64(j % 3000))
				}
			}
		}(i)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8*500 {
		t.Errorf("count = %d, want %d", s.Count, 8*500)
	}
	if s.ExemplarFor(100) == nil {
		t.Error("no exemplar survived concurrent writes")
	}
}

// TestConcurrentAccess exercises registration and recording from many
// goroutines; run under -race this is the registry's thread-safety test.
func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	sites := []string{"DB1", "DB2", "DB3", "G"}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l := Labels{Site: sites[j%len(sites)], Alg: "BL"}
				r.Counter("requests_total", l).Inc()
				r.Gauge("inflight", l).Add(1)
				r.Histogram("latency_us", l).Observe(float64(j))
				if j%17 == 0 {
					r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, s := range snap.Samples {
		if s.Name == "requests_total" {
			total += s.Value
		}
	}
	if total != 8*200 {
		t.Errorf("requests_total sum = %d, want %d", total, 8*200)
	}
}
