// Package metrics is the federation's lock-cheap metrics registry:
// counters, gauges, and fixed-bucket latency histograms keyed by a small
// label set (site, peer site, algorithm, phase), with point-in-time
// snapshots that support delta (between two snapshots of one registry) and
// merge (across registries of several sites), rendered as text or JSON.
//
// Instruments are cheap on the hot path: registration takes a mutex only on
// first use of a (name, labels) pair; recording is a handful of atomic
// operations. That keeps the overhead budget of the instrumented execution
// path honest (see BenchmarkTraceOverhead).
//
// Metric names used across the system:
//
//	queries_total{site,alg}            queries executed by a coordinator
//	query_latency_us{site,alg}         end-to-end query latency histogram
//	results_certain_total{alg}         certain answers produced
//	results_maybe_total{alg}           maybe answers produced
//	maybe_certified_total{alg}         maybe results certified into certain
//	maybe_eliminated_total{alg}        maybe results eliminated by checks
//	checks_dispatched_total{site,alg}  assistant checks sent on behalf of site
//	phase_time_us{site,alg,phase}      per-phase span durations (O/I/P)
//	disk_bytes_total{site,alg}         disk bytes charged to site
//	cpu_ops_total{site,alg}            CPU comparisons charged to site
//	net_bytes_total{site,peer,alg}     bytes shipped from site to peer
//	requests_total{site,alg}           remote requests served by site
//	request_errors_total{site}         remote requests rejected or failed
//	request_latency_us{site,alg}       remote request service time
//
// Fault-tolerance metrics (see the remote package):
//
//	call_retries_total{site,peer}          transport retries of remote calls
//	call_failures_total{site,peer}         calls that exhausted all attempts
//	breaker_transitions_total{site,peer,phase}  breaker state changes (phase = new state)
//	breaker_state{site,peer}               gauge: 0 closed, 1 half-open, 2 open
//	breaker_fastfail_total{site,peer}      calls failed fast by an open breaker
//	site_unavailable_total{site,peer,alg}  fan-out legs lost to a dead site
//	degraded_queries_total{site,alg}       queries answered partially
//	replica_stale_total{site,peer}         replicas an insert could not reach
//	pool_stale_total{site,peer}            pooled conns found dead and redialed free
//
// Concurrent-serving metrics (admission, check batching, lookup cache):
//
//	queries_inflight{site}             gauge: queries currently admitted
//	queries_queued_total{site}         admissions that had to wait for a slot
//	admission_wait_us{site,alg}        wall-clock wait for an admission slot
//	check_batches_total{site,peer}     coalesced checkbatch RPCs sent
//	check_batch_groups{site}           histogram: query groups per batch
//	check_batch_bytes{site}            histogram: request bytes per batch
//	cache_hits_total{site,phase}       lookup-cache hits (phase: gmap|verdict)
//	cache_misses_total{site,phase}     lookup-cache misses
//	cache_invalidations_total{site}    class invalidations from the Insert path
//	cache_evicted_total{site}          entries dropped by invalidations
//
// Profile / flight-recorder metrics (see the obs package):
//
//	profiles_recorded_total{site}      query profiles admitted to the recorder
//	profiles_evicted_total{site}       profiles dropped by ring eviction
//	slow_queries_total{site,alg}       profiles at/over the slow-query threshold
//
// Go runtime gauges, refreshed on each /metrics scrape (see the obs package):
//
//	go_goroutines{site}                live goroutines
//	go_gomaxprocs{site}                GOMAXPROCS
//	go_heap_alloc_bytes{site}          bytes of allocated heap objects
//	go_gc_runs_total{site}             completed GC cycles (gauge: set, not added)
//
// Cluster-observability metrics (see the obs/agg and obs/slo packages;
// site = the aggregating coordinator, peer = the scraped site):
//
//	scrape_total{site,peer}            scrape attempts against peer
//	scrape_failures_total{site,peer}   scrapes that failed or timed out
//	scrape_resets_total{site,peer}     scrapes that saw counters go backwards (peer restarted)
//	scrape_duration_us{site}           wall time of one full scrape pass
//	cluster_sites{site}                gauge: sites the aggregator tracks
//	cluster_sites_live{site}           gauge: sites scraped within the staleness bound
//	alerts_state{site,phase}           gauge per SLO rule (phase = rule name): 0 ok, 1 warn, 2 firing
//	alerts_firing{site}                gauge: rules currently in the firing state
//	alerts_transitions_total{site,phase}  alert state-machine transitions (phase = rule name)
//
// Histograms additionally carry per-bucket exemplars (last trace ID + value)
// when fed through ObserveWithExemplar, so a latency bucket on /metrics
// links to a recorded query profile.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels identify one instrument of a named metric. Unused fields stay
// empty; the struct is comparable and keys the registry directly.
type Labels struct {
	Site  string `json:"site,omitempty"`
	Peer  string `json:"peer,omitempty"`
	Alg   string `json:"alg,omitempty"`
	Phase string `json:"phase,omitempty"`
}

// String renders the labels in {k="v",...} form, empty for no labels.
func (l Labels) String() string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, fmt.Sprintf("%s=%q", k, v))
		}
	}
	add("site", l.Site)
	add("peer", l.Peer)
	add("alg", l.Alg)
	add("phase", l.Phase)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

type key struct {
	name   string
	labels Labels
}

// Counter is a monotonically increasing value.
type Counter struct{ v *atomic.Int64 }

// Add increases the counter. Negative deltas are ignored.
func (c Counter) Add(n int64) {
	if c.v != nil && n > 0 {
		c.v.Add(n)
	}
}

// Inc increases the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Gauge is a value that can move both ways.
type Gauge struct{ v *atomic.Int64 }

// Set replaces the gauge's value.
func (g Gauge) Set(n int64) {
	if g.v != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by a (possibly negative) delta.
func (g Gauge) Add(n int64) {
	if g.v != nil {
		g.v.Add(n)
	}
}

// DefaultBuckets are the latency histogram bounds in microseconds, spanning
// sub-millisecond local work up to multi-second distributed queries.
var DefaultBuckets = []float64{
	50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
	50000, 100000, 250000, 500000, 1e6, 2.5e6, 5e6,
}

// Exemplar links one observed value to the trace (query) that produced it,
// so a histogram bucket on /metrics resolves to a recorded profile in the
// flight recorder. Each bucket keeps its most recent exemplar.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// Histogram is a fixed-bucket histogram of microsecond values. Observations
// are lock-free; the bucket layout is immutable after creation.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum       atomic.Uint64  // float64 bits, CAS-accumulated
	count     atomic.Int64
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, last-write-wins
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// NewHistogram returns a standalone histogram with DefaultBuckets, attached
// to no registry — for callers that need the distribution estimator alone
// (the flight recorder's latency tail).
func NewHistogram() *Histogram { return newHistogram(DefaultBuckets) }

// Snapshot captures the histogram's current state. Nil-safe: a nil
// histogram yields an empty snapshot.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	if h == nil {
		return &HistogramSnapshot{}
	}
	return h.snapshot()
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveWithExemplar records one value and attaches the producing trace ID
// as the bucket's exemplar (last write wins — the freshest query is the one
// worth debugging).
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" {
		i := sort.SearchFloat64s(h.bounds, v)
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		if e := h.exemplars[i].Load(); e != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]*Exemplar, len(h.counts))
			}
			s.Exemplars[i] = e
		}
	}
	return s
}

// Registry holds the instruments of one process (a site server or a
// coordinator). The zero value is not usable; call New.
type Registry struct {
	mu       sync.RWMutex
	counters map[key]*atomic.Int64
	gauges   map[key]*atomic.Int64
	hists    map[key]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[key]*atomic.Int64),
		gauges:   make(map[key]*atomic.Int64),
		hists:    make(map[key]*Histogram),
	}
}

// Counter returns (creating on first use) the counter for the given name
// and labels. A nil registry returns a no-op instrument.
func (r *Registry) Counter(name string, l Labels) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{v: getOrCreate(r, r.counters, key{name, l}, func() *atomic.Int64 { return new(atomic.Int64) })}
}

// Gauge returns (creating on first use) the gauge for the given name and
// labels. A nil registry returns a no-op instrument.
func (r *Registry) Gauge(name string, l Labels) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{v: getOrCreate(r, r.gauges, key{name, l}, func() *atomic.Int64 { return new(atomic.Int64) })}
}

// Histogram returns (creating on first use) the histogram for the given
// name and labels, with DefaultBuckets. A nil registry returns nil, whose
// Observe is a no-op.
func (r *Registry) Histogram(name string, l Labels) *Histogram {
	if r == nil {
		return nil
	}
	return getOrCreate(r, r.hists, key{name, l}, func() *Histogram { return newHistogram(DefaultBuckets) })
}

func getOrCreate[T any](r *Registry, m map[key]*T, k key, mk func() *T) *T {
	r.mu.RLock()
	v, ok := m[k]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := m[k]; ok {
		return v
	}
	v = mk()
	m[k] = v
	return v
}

// HistogramSnapshot is the state of one histogram at snapshot time.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds (µs); Counts has one extra entry
	// for the overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
	// Exemplars, when present, is bucket-aligned with Counts: the last
	// observation's trace ID per bucket (nil entries for buckets without
	// one). Absent entirely when no exemplar was ever attached.
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// Mean is the average observed value, 0 for an empty histogram.
func (h *HistogramSnapshot) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank — the standard fixed-bucket
// estimate (what Prometheus's histogram_quantile computes). The overflow
// bucket has no upper bound, so targets landing there return the largest
// finite bound. Returns 0 for an empty histogram.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// ExemplarFor returns the exemplar of the bucket that the value v falls
// into, nil when none is attached.
func (h *HistogramSnapshot) ExemplarFor(v float64) *Exemplar {
	if h == nil || h.Exemplars == nil {
		return nil
	}
	i := sort.SearchFloat64s(h.Bounds, v)
	if i >= len(h.Exemplars) {
		return nil
	}
	return h.Exemplars[i]
}

// Sample is one instrument's value at snapshot time.
type Sample struct {
	Name   string             `json:"name"`
	Labels Labels             `json:"labels"`
	Kind   string             `json:"kind"` // "counter", "gauge", "histogram"
	Value  int64              `json:"value,omitempty"`
	Hist   *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, ordered by name then
// labels.
type Snapshot struct {
	Samples []Sample `json:"samples"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	samples := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k, v := range r.counters {
		samples = append(samples, Sample{Name: k.name, Labels: k.labels, Kind: "counter", Value: v.Load()})
	}
	for k, v := range r.gauges {
		samples = append(samples, Sample{Name: k.name, Labels: k.labels, Kind: "gauge", Value: v.Load()})
	}
	for k, h := range r.hists {
		samples = append(samples, Sample{Name: k.name, Labels: k.labels, Kind: "histogram", Hist: h.snapshot()})
	}
	sortSamples(samples)
	return Snapshot{Samples: samples}
}

func sortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return samples[i].Labels.String() < samples[j].Labels.String()
	})
}

// Get finds the sample for a name and label set.
func (s Snapshot) Get(name string, l Labels) (Sample, bool) {
	for _, smp := range s.Samples {
		if smp.Name == name && smp.Labels == l {
			return smp, true
		}
	}
	return Sample{}, false
}

// CounterValue returns the value of a counter sample, 0 when absent.
func (s Snapshot) CounterValue(name string, l Labels) int64 {
	smp, ok := s.Get(name, l)
	if !ok {
		return 0
	}
	return smp.Value
}

// Sum totals a counter (or gauge) metric across every label set it was
// recorded under — e.g. net_bytes_total over all site pairs. Absent
// metrics sum to 0.
func (s Snapshot) Sum(name string) int64 {
	var total int64
	for _, smp := range s.Samples {
		if smp.Name == name && smp.Kind != "histogram" {
			total += smp.Value
		}
	}
	return total
}

// HistTotals aggregates a histogram metric across every label set,
// returning the total observation count and value sum. Absent metrics
// and nil histogram snapshots yield zeros.
func (s Snapshot) HistTotals(name string) (count int64, sum float64) {
	for _, smp := range s.Samples {
		if smp.Name == name && smp.Kind == "histogram" && smp.Hist != nil {
			count += smp.Hist.Count
			sum += smp.Hist.Sum
		}
	}
	return count, sum
}

// MergedHist sums a histogram metric's buckets across every label set into
// one HistogramSnapshot (for quantile estimates over the whole cluster).
// Returns nil when the metric was never observed.
func (s Snapshot) MergedHist(name string) *HistogramSnapshot {
	var out *HistogramSnapshot
	for _, smp := range s.Samples {
		if smp.Name != name || smp.Kind != "histogram" || smp.Hist == nil {
			continue
		}
		if out == nil {
			out = &HistogramSnapshot{
				Bounds: smp.Hist.Bounds,
				Counts: append([]int64(nil), smp.Hist.Counts...),
				Sum:    smp.Hist.Sum,
				Count:  smp.Hist.Count,
			}
			continue
		}
		out = histSum(out, smp.Hist)
	}
	return out
}

// Delta captures the registry's current values minus a previous snapshot
// of it — the scrape-based measurement primitive: take a Snapshot before a
// run, Delta after it, and long-lived instruments (a server that has
// already served other runs) never double-count. Nil-safe: a nil registry
// yields an empty snapshot regardless of prev.
func (r *Registry) Delta(prev Snapshot) Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.Snapshot().Delta(prev)
}

// Delta returns s minus prev: counters and histograms are differenced,
// gauges keep their current value. Samples absent from prev pass through
// unchanged (a series born between the snapshots starts from zero, so its
// full value IS its delta); series present only in prev are dropped.
//
// Delta is reset-aware: when a counter's current value is below its
// previous value — the signature of the process restarting and its
// registry starting over — the current value IS the delta (everything the
// new process counted happened since the previous snapshot). Histograms
// reset when their total count or any bucket shrank. Without this, a
// durable site restarting between two scrapes would yield negative deltas
// that silently corrupt windowed rates. Use DeltaWithResets to learn how
// many series reset.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d, _ := s.DeltaWithResets(prev)
	return d
}

// DeltaWithResets is Delta plus the number of series whose counter (or
// histogram) was observed to have reset — gone backwards — since prev.
// Scrapers feed this into scrape_resets_total so operators can tell a
// restarted site from a quiet one.
func (s Snapshot) DeltaWithResets(prev Snapshot) (Snapshot, int) {
	base := make(map[key]Sample, len(prev.Samples))
	for _, smp := range prev.Samples {
		base[key{smp.Name, smp.Labels}] = smp
	}
	resets := 0
	out := make([]Sample, 0, len(s.Samples))
	for _, smp := range s.Samples {
		old, ok := base[key{smp.Name, smp.Labels}]
		if ok && old.Kind == smp.Kind {
			switch smp.Kind {
			case "counter":
				if smp.Value < old.Value {
					resets++ // counter went backwards: process restarted
				} else {
					smp.Value -= old.Value
				}
			case "histogram":
				var reset bool
				smp.Hist, reset = histDelta(smp.Hist, old.Hist)
				if reset {
					resets++
				}
			}
		}
		out = append(out, smp)
	}
	return Snapshot{Samples: out}, resets
}

// histDelta differences two histogram snapshots. When the current
// histogram shrank — fewer total observations, or any bucket with fewer
// entries than before — the source process restarted, so the current
// snapshot is returned whole and reset reports true.
func histDelta(cur, old *HistogramSnapshot) (_ *HistogramSnapshot, reset bool) {
	if cur == nil || old == nil || len(cur.Counts) != len(old.Counts) {
		return cur, false
	}
	if cur.Count < old.Count {
		return cur, true
	}
	for i := range cur.Counts {
		if cur.Counts[i] < old.Counts[i] {
			return cur, true
		}
	}
	d := &HistogramSnapshot{
		Bounds:    cur.Bounds,
		Counts:    make([]int64, len(cur.Counts)),
		Sum:       cur.Sum - old.Sum,
		Count:     cur.Count - old.Count,
		Exemplars: cur.Exemplars,
	}
	for i := range cur.Counts {
		d.Counts[i] = cur.Counts[i] - old.Counts[i]
	}
	return d, false
}

// Merge combines two snapshots (e.g. from different sites): counters and
// histograms are summed, gauges take the other snapshot's value when both
// carry the same instrument.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	merged := make(map[key]Sample, len(s.Samples)+len(other.Samples))
	for _, smp := range s.Samples {
		merged[key{smp.Name, smp.Labels}] = smp
	}
	for _, smp := range other.Samples {
		k := key{smp.Name, smp.Labels}
		old, ok := merged[k]
		if !ok || old.Kind != smp.Kind {
			merged[k] = smp
			continue
		}
		switch smp.Kind {
		case "counter":
			smp.Value += old.Value
		case "histogram":
			smp.Hist = histSum(smp.Hist, old.Hist)
		}
		merged[k] = smp
	}
	out := make([]Sample, 0, len(merged))
	for _, smp := range merged {
		out = append(out, smp)
	}
	sortSamples(out)
	return Snapshot{Samples: out}
}

func histSum(a, b *HistogramSnapshot) *HistogramSnapshot {
	if a == nil {
		return b
	}
	if b == nil || len(a.Counts) != len(b.Counts) {
		return a
	}
	d := &HistogramSnapshot{
		Bounds: a.Bounds,
		Counts: make([]int64, len(a.Counts)),
		Sum:    a.Sum + b.Sum,
		Count:  a.Count + b.Count,
	}
	for i := range a.Counts {
		d.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	// Per-bucket exemplars: keep a's (the receiver's view), fall back to b's.
	if a.Exemplars != nil || b.Exemplars != nil {
		d.Exemplars = make([]*Exemplar, len(d.Counts))
		for i := range d.Exemplars {
			if a.Exemplars != nil && a.Exemplars[i] != nil {
				d.Exemplars[i] = a.Exemplars[i]
			} else if b.Exemplars != nil {
				d.Exemplars[i] = b.Exemplars[i]
			}
		}
	}
	return d
}

// Text renders the snapshot one instrument per line. Histograms print
// count, sum, mean, and the nonzero buckets.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, smp := range s.Samples {
		switch smp.Kind {
		case "counter", "gauge":
			fmt.Fprintf(&b, "%s%s %d\n", smp.Name, smp.Labels, smp.Value)
		case "histogram":
			h := smp.Hist
			fmt.Fprintf(&b, "%s%s count=%d sum=%.1fµs mean=%.1fµs",
				smp.Name, smp.Labels, h.Count, h.Sum, h.Mean())
			for i, c := range h.Counts {
				if c == 0 {
					continue
				}
				if i < len(h.Bounds) {
					fmt.Fprintf(&b, " le%.0f:%d", h.Bounds[i], c)
				} else {
					fmt.Fprintf(&b, " inf:%d", c)
				}
				if h.Exemplars != nil && h.Exemplars[i] != nil {
					fmt.Fprintf(&b, "#%s", h.Exemplars[i].TraceID)
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
