package metrics

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestRegistryDelta: the registry-level convenience never double-counts
// across measurement windows and survives nil/missing-series edge cases.
func TestRegistryDelta(t *testing.T) {
	r := New()
	c := r.Counter("ops_total", Labels{Site: "DB1"})
	h := r.Histogram("lat_us", Labels{Site: "DB1"})
	c.Add(5)
	h.Observe(100)

	prev := r.Snapshot()

	// Work after the first window: only it must appear in the delta.
	c.Add(3)
	h.Observe(300)
	// A series born between the snapshots: its full value is its delta.
	r.Counter("ops_total", Labels{Site: "DB2"}).Add(7)

	d := r.Delta(prev)
	if got := d.CounterValue("ops_total", Labels{Site: "DB1"}); got != 3 {
		t.Errorf("DB1 delta = %d, want 3", got)
	}
	if got := d.CounterValue("ops_total", Labels{Site: "DB2"}); got != 7 {
		t.Errorf("DB2 (new series) delta = %d, want 7", got)
	}
	smp, ok := d.Get("lat_us", Labels{Site: "DB1"})
	if !ok || smp.Hist == nil {
		t.Fatal("histogram sample missing from delta")
	}
	if smp.Hist.Count != 1 || smp.Hist.Sum != 300 {
		t.Errorf("histogram delta count=%d sum=%.0f, want 1/300", smp.Hist.Count, smp.Hist.Sum)
	}

	// A second window against the same prev would double-count; against a
	// fresh snapshot it must not.
	prev2 := r.Snapshot()
	d2 := r.Delta(prev2)
	if got := d2.CounterValue("ops_total", Labels{Site: "DB1"}); got != 0 {
		t.Errorf("idle window delta = %d, want 0", got)
	}

	// Nil registry: empty snapshot, no panic.
	var nilReg *Registry
	if got := nilReg.Delta(prev); len(got.Samples) != 0 {
		t.Errorf("nil registry delta has %d samples", len(got.Samples))
	}
	// Delta against a zero-value prev passes everything through.
	if got := r.Delta(Snapshot{}).CounterValue("ops_total", Labels{Site: "DB1"}); got != 8 {
		t.Errorf("delta vs empty prev = %d, want 8", got)
	}
}

func TestSnapshotSumAndHistTotals(t *testing.T) {
	r := New()
	r.Counter("net_bytes_total", Labels{Site: "DB1", Peer: "G"}).Add(100)
	r.Counter("net_bytes_total", Labels{Site: "DB2", Peer: "G"}).Add(250)
	r.Histogram("lat_us", Labels{Site: "DB1"}).Observe(100)
	r.Histogram("lat_us", Labels{Site: "DB2"}).Observe(200)
	r.Histogram("lat_us", Labels{Site: "DB2"}).Observe(400)
	s := r.Snapshot()

	if got := s.Sum("net_bytes_total"); got != 350 {
		t.Errorf("Sum = %d, want 350", got)
	}
	if got := s.Sum("absent_total"); got != 0 {
		t.Errorf("Sum(absent) = %d, want 0", got)
	}
	n, sum := s.HistTotals("lat_us")
	if n != 3 || sum != 700 {
		t.Errorf("HistTotals = (%d, %.0f), want (3, 700)", n, sum)
	}
	if n, _ := s.HistTotals("absent"); n != 0 {
		t.Errorf("HistTotals(absent) count = %d, want 0", n)
	}
	merged := s.MergedHist("lat_us")
	if merged == nil || merged.Count != 3 {
		t.Fatalf("MergedHist = %+v, want count 3", merged)
	}
	if s.MergedHist("absent") != nil {
		t.Error("MergedHist(absent) should be nil")
	}
}

// TestScrapeRoundTrip: a snapshot served as JSON (the obs /metrics form)
// scrapes back into an equivalent snapshot.
func TestScrapeRoundTrip(t *testing.T) {
	r := New()
	r.Counter("queries_total", Labels{Site: "G", Alg: "BL"}).Add(9)
	r.Gauge("queries_inflight", Labels{Site: "G"}).Set(2)
	r.Histogram("query_latency_us", Labels{Site: "G", Alg: "BL"}).ObserveWithExemplar(1234, "rq1")
	want := r.Snapshot()

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		data, err := want.JSON()
		if err != nil {
			t.Errorf("JSON: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	}))
	defer srv.Close()

	got, err := Scrape(context.Background(), srv.URL+"/metrics")
	if err != nil {
		t.Fatalf("Scrape: %v", err)
	}
	if got.CounterValue("queries_total", Labels{Site: "G", Alg: "BL"}) != 9 {
		t.Errorf("scraped counter = %d, want 9", got.CounterValue("queries_total", Labels{Site: "G", Alg: "BL"}))
	}
	smp, ok := got.Get("query_latency_us", Labels{Site: "G", Alg: "BL"})
	if !ok || smp.Hist == nil || smp.Hist.Count != 1 {
		t.Fatalf("scraped histogram = %+v", smp)
	}
	if ex := smp.Hist.ExemplarFor(1234); ex == nil || ex.TraceID != "rq1" {
		t.Errorf("scraped exemplar = %+v, want rq1", ex)
	}
	// Deltas over scraped snapshots: the double-count guard works across
	// the wire too.
	d := got.Delta(want)
	if d.Sum("queries_total") != 0 {
		t.Errorf("scraped self-delta = %d, want 0", d.Sum("queries_total"))
	}
}

func TestScrapeErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	if _, err := Scrape(context.Background(), srv.URL); err == nil {
		t.Error("non-200 scrape should fail")
	}
	if _, err := Scrape(context.Background(), "http://127.0.0.1:1/metrics"); err == nil {
		t.Error("unreachable scrape should fail")
	}
	if _, err := ParseSnapshot([]byte("{not json")); err == nil {
		t.Error("bad JSON should fail")
	}
	if s, err := ParseSnapshot(nil); err != nil || len(s.Samples) != 0 {
		t.Errorf("empty body: %v, %d samples", err, len(s.Samples))
	}
}
