package store

import (
	"fmt"
	"strings"
	"testing"

	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/schema"
)

func testSchema() *schema.Schema {
	s := schema.NewSchema("DB1")
	s.MustAddClass(schema.MustClass("Department", []schema.Attribute{
		schema.Prim("name", object.KindString),
	}, "name"))
	s.MustAddClass(schema.MustClass("Teacher", []schema.Attribute{
		schema.Prim("name", object.KindString),
		schema.Prim("salary", object.KindFloat),
		schema.Complex("department", "Department"),
		{Name: "courses", Prim: object.KindString, MultiValued: true},
	}, "name"))
	return s
}

func TestNewDatabaseRejectsInvalidSchema(t *testing.T) {
	s := schema.NewSchema("DBX")
	s.MustAddClass(schema.MustClass("A", []schema.Attribute{schema.Complex("b", "Missing")}))
	if _, err := NewDatabase(s); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestInsertAndGet(t *testing.T) {
	db := MustNewDatabase(testSchema())
	d := object.New("d1", "Department", map[string]object.Value{"name": object.Str("CS")})
	if err := db.Insert(d); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	tch := object.New("t1", "Teacher", map[string]object.Value{
		"name":       object.Str("Jeffery"),
		"salary":     object.Int(50000), // int into float attr is fine
		"department": object.Ref("d1"),
		"courses":    object.List(object.Str("db"), object.Str("os")),
	})
	if err := db.Insert(tch); err != nil {
		t.Fatalf("Insert teacher: %v", err)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
	if got := db.Extent("Teacher").Get("t1"); got != tch {
		t.Error("Get returned wrong object")
	}
	if got, ok := db.Deref("d1"); !ok || got != d {
		t.Error("Deref failed")
	}
	if _, ok := db.Deref("zzz"); ok {
		t.Error("Deref of unknown LOid succeeded")
	}
	if db.Site() != "DB1" || db.Schema() == nil {
		t.Error("accessors wrong")
	}
}

func TestInsertErrors(t *testing.T) {
	db := MustNewDatabase(testSchema())
	cases := []struct {
		name string
		obj  *object.Object
		want string
	}{
		{"unknown class", object.New("x", "Nope", nil), "no class"},
		{"empty LOid", object.New("", "Department", nil), "empty LOid"},
		{"unknown attr", object.New("d9", "Department", map[string]object.Value{
			"zzz": object.Int(1)}), "no attribute"},
		{"kind mismatch", object.New("d8", "Department", map[string]object.Value{
			"name": object.Int(1)}), "want string"},
		{"ref into primitive", object.New("d7", "Department", map[string]object.Value{
			"name": object.Ref("x")}), "want string"},
		{"primitive into complex", object.New("t9", "Teacher", map[string]object.Value{
			"department": object.Str("d1")}), "wants a ref"},
		{"bad list element", object.New("t8", "Teacher", map[string]object.Value{
			"courses": object.List(object.Int(1))}), "want string"},
	}
	for _, c := range cases {
		err := db.Insert(c.obj)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}

	db.MustInsert(object.New("d1", "Department", map[string]object.Value{"name": object.Str("CS")}))
	if err := db.Insert(object.New("d1", "Department", nil)); err == nil {
		t.Error("duplicate LOid accepted")
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	db := MustNewDatabase(testSchema())
	for _, id := range []object.LOid{"d3", "d1", "d2"} {
		db.MustInsert(object.New(id, "Department", map[string]object.Value{"name": object.Str(string(id))}))
	}
	var seen []object.LOid
	db.Extent("Department").Scan(func(o *object.Object) bool {
		seen = append(seen, o.LOid)
		return true
	})
	if len(seen) != 3 || seen[0] != "d3" || seen[1] != "d1" || seen[2] != "d2" {
		t.Errorf("scan order = %v", seen)
	}
	n := 0
	db.Extent("Department").Scan(func(*object.Object) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop scanned %d", n)
	}
	all := db.Extent("Department").All()
	if len(all) != 3 || all[0].LOid != "d3" {
		t.Errorf("All = %v", all)
	}
}

func TestExtentBytes(t *testing.T) {
	db := MustNewDatabase(testSchema())
	db.MustInsert(object.New("d1", "Department", map[string]object.Value{"name": object.Str("CS")}))
	want := object.LOidWireSize + object.AttrWireSize
	if got := db.Extent("Department").Bytes(); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
}

// TestExtentBytesIncremental pins the incremental byte count: Bytes is
// maintained on Insert (O(1) to read), and must equal the recomputed
// per-object wire-size sum at every step, including after failed inserts.
func TestExtentBytesIncremental(t *testing.T) {
	db := MustNewDatabase(testSchema())
	ext := db.Extent("Teacher")
	recompute := func() int {
		var sum int
		ext.Scan(func(o *object.Object) bool { sum += o.WireSize(nil); return true })
		return sum
	}
	for i := 0; i < 10; i++ {
		attrs := map[string]object.Value{"name": object.Str(fmt.Sprintf("teacher-%d", i))}
		if i%2 == 0 { // vary the payload so sizes differ per object
			attrs["courses"] = object.List(object.Str("db"), object.Str(strings.Repeat("x", i)))
		}
		db.MustInsert(object.New(object.LOid(fmt.Sprintf("t%d", i)), "Teacher", attrs))
		if got, want := ext.Bytes(), recompute(); got != want {
			t.Fatalf("after %d inserts: Bytes = %d, recomputed %d", i+1, got, want)
		}
	}
	// A rejected insert must not disturb the count.
	before := ext.Bytes()
	if err := db.Insert(object.New("t0", "Teacher", nil)); err == nil {
		t.Fatal("duplicate LOid accepted")
	}
	if got := ext.Bytes(); got != before {
		t.Errorf("Bytes after failed insert = %d, want %d", got, before)
	}
}

func TestCheckRefs(t *testing.T) {
	db := MustNewDatabase(testSchema())
	db.MustInsert(object.New("d1", "Department", map[string]object.Value{"name": object.Str("CS")}))
	db.MustInsert(object.New("t1", "Teacher", map[string]object.Value{
		"name": object.Str("A"), "department": object.Ref("d1"),
	}))
	if err := db.CheckRefs(); err != nil {
		t.Errorf("CheckRefs: %v", err)
	}
	db.MustInsert(object.New("t2", "Teacher", map[string]object.Value{
		"name": object.Str("B"), "department": object.Ref("ghost"),
	}))
	if err := db.CheckRefs(); err == nil {
		t.Error("dangling ref accepted")
	}
}

func TestCheckRefsWrongClass(t *testing.T) {
	db := MustNewDatabase(testSchema())
	db.MustInsert(object.New("t0", "Teacher", map[string]object.Value{"name": object.Str("Z")}))
	db.MustInsert(object.New("t1", "Teacher", map[string]object.Value{
		"name": object.Str("A"), "department": object.Ref("t0"),
	}))
	err := db.CheckRefs()
	if err == nil || !strings.Contains(err.Error(), "class") {
		t.Errorf("wrong-class ref: %v", err)
	}
}

func TestCheckRefsMultiValued(t *testing.T) {
	s := schema.NewSchema("DBX")
	s.MustAddClass(schema.MustClass("Item", []schema.Attribute{schema.Prim("n", object.KindInt)}))
	s.MustAddClass(schema.MustClass("Box", []schema.Attribute{
		{Name: "items", Domain: "Item", MultiValued: true},
	}))
	db := MustNewDatabase(s)
	db.MustInsert(object.New("i1", "Item", map[string]object.Value{"n": object.Int(1)}))
	db.MustInsert(object.New("b1", "Box", map[string]object.Value{
		"items": object.List(object.Ref("i1"), object.Ref("missing")),
	}))
	if err := db.CheckRefs(); err == nil {
		t.Error("dangling list ref accepted")
	}
}

func indexedDB(t *testing.T) *Database {
	t.Helper()
	s := schema.NewSchema("DBX")
	s.MustAddClass(schema.MustClass("P", []schema.Attribute{
		schema.Prim("n", object.KindInt),
		schema.Prim("s", object.KindString),
	}))
	db := MustNewDatabase(s)
	for i, n := range []int64{30, 10, 20, 10} {
		db.MustInsert(object.New(object.LOid(fmt.Sprintf("p%d", i)), "P", map[string]object.Value{
			"n": object.Int(n), "s": object.Str(fmt.Sprintf("v%d", i)),
		}))
	}
	// p4 has a null n.
	db.MustInsert(object.New("p4", "P", map[string]object.Value{"s": object.Str("v4")}))
	return db
}

func TestCreateIndexAndLookups(t *testing.T) {
	db := indexedDB(t)
	ix, err := db.CreateIndex("P", "n")
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	if ix.Attr() != "n" || ix.Len() != 4 {
		t.Fatalf("index = %s/%d", ix.Attr(), ix.Len())
	}
	if got := ix.Nulls(); len(got) != 1 || got[0] != "p4" {
		t.Errorf("nulls = %v", got)
	}
	if got := ix.EqualTo(object.Int(10)); len(got) != 2 {
		t.Errorf("EqualTo(10) = %v", got)
	}
	if got := ix.EqualTo(object.Int(99)); len(got) != 0 {
		t.Errorf("EqualTo(99) = %v", got)
	}
	if got := ix.Range(object.Int(20), true, false); len(got) != 2 { // < 20
		t.Errorf("Range(<20) = %v", got)
	}
	if got := ix.Range(object.Int(20), true, true); len(got) != 3 { // <= 20
		t.Errorf("Range(<=20) = %v", got)
	}
	if got := ix.Range(object.Int(20), false, false); len(got) != 1 { // > 20
		t.Errorf("Range(>20) = %v", got)
	}
	if got := ix.Range(object.Int(20), false, true); len(got) != 2 { // >= 20
		t.Errorf("Range(>=20) = %v", got)
	}
	if got := ix.NotEqualTo(object.Int(10)); len(got) != 2 {
		t.Errorf("NotEqualTo(10) = %v", got)
	}
	if ix.ProbeCost(2) <= 0 {
		t.Error("ProbeCost must be positive")
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	db := indexedDB(t)
	ix, err := db.CreateIndex("P", "n")
	if err != nil {
		t.Fatal(err)
	}
	db.MustInsert(object.New("p5", "P", map[string]object.Value{"n": object.Int(15)}))
	if got := ix.Range(object.Int(20), true, false); len(got) != 3 {
		t.Errorf("after insert Range(<20) = %v", got)
	}
	db.MustInsert(object.New("p6", "P", map[string]object.Value{"s": object.Str("x")}))
	if len(ix.Nulls()) != 2 {
		t.Errorf("nulls after insert = %v", ix.Nulls())
	}
}

func TestCreateIndexErrors(t *testing.T) {
	db := indexedDB(t)
	if _, err := db.CreateIndex("Nope", "n"); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := db.CreateIndex("P", "nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
	s := schema.NewSchema("DBY")
	s.MustAddClass(schema.MustClass("C", []schema.Attribute{
		schema.Complex("d", "C"),
		{Name: "m", Prim: object.KindInt, MultiValued: true},
	}))
	db2 := MustNewDatabase(s)
	if _, err := db2.CreateIndex("C", "d"); err == nil {
		t.Error("complex attribute accepted")
	}
	if _, err := db2.CreateIndex("C", "m"); err == nil {
		t.Error("multi-valued attribute accepted")
	}
}

func TestIndexLookupViaExtent(t *testing.T) {
	db := indexedDB(t)
	if db.Extent("P").Index("n") != nil {
		t.Error("index exists before CreateIndex")
	}
	if _, err := db.CreateIndex("P", "n"); err != nil {
		t.Fatal(err)
	}
	if db.Extent("P").Index("n") == nil {
		t.Error("index missing after CreateIndex")
	}
}
