package store

import (
	"fmt"
	"sort"

	"github.com/hetfed/hetfed/internal/object"
)

// Index is a sorted secondary index over one primitive, single-valued
// attribute of an extent. Objects whose attribute is null are kept in a
// separate null list: under three-valued semantics they are candidates for
// every predicate on the attribute (they evaluate to unknown, becoming
// maybe results), so an index scan must surface them alongside the
// value matches.
type Index struct {
	attr    string
	entries []indexEntry // sorted by value
	nulls   []object.LOid
}

type indexEntry struct {
	value object.Value
	loid  object.LOid
}

// Attr returns the indexed attribute.
func (ix *Index) Attr() string { return ix.attr }

// Len returns the number of value entries (nulls excluded).
func (ix *Index) Len() int { return len(ix.entries) }

// Nulls returns the objects whose indexed attribute is null. The slice is
// shared; do not modify.
func (ix *Index) Nulls() []object.LOid { return ix.nulls }

// EntryWireSize is the modeled byte size of one index entry (value + LOid),
// used to charge disk for index probes.
const EntryWireSize = object.AttrWireSize + object.LOidWireSize

// ProbeCost returns the modeled disk bytes of one index probe: a
// logarithmic descent plus one entry per result.
func (ix *Index) ProbeCost(results int) int {
	depth := 1
	for n := len(ix.entries); n > 1; n /= 2 {
		depth++
	}
	return (depth + results) * EntryWireSize
}

// less orders index values: numerics before strings before bools, each
// kind ordered internally (total order for sort stability).
func less(a, b object.Value) bool {
	ka, kb := kindRank(a), kindRank(b)
	if ka != kb {
		return ka < kb
	}
	if cmp, ok := a.Compare(b); ok {
		return cmp < 0
	}
	return false
}

func kindRank(v object.Value) int {
	switch v.Kind() {
	case object.KindInt, object.KindFloat:
		return 0
	case object.KindString:
		return 1
	case object.KindBool:
		return 2
	default:
		return 3
	}
}

// EqualTo returns the objects whose indexed value equals v, in index order.
func (ix *Index) EqualTo(v object.Value) []object.LOid {
	lo := sort.Search(len(ix.entries), func(i int) bool { return !less(ix.entries[i].value, v) })
	var out []object.LOid
	for i := lo; i < len(ix.entries) && ix.entries[i].value.Equal(v); i++ {
		out = append(out, ix.entries[i].loid)
	}
	return out
}

// Range returns the objects whose indexed value v' satisfies the half-open
// comparison against v selected by the flags: below selects v' < v (or
// v' <= v with inclusive), otherwise v' > v (or v' >= v).
func (ix *Index) Range(v object.Value, below, inclusive bool) []object.LOid {
	// Position of the first entry >= v.
	lo := sort.Search(len(ix.entries), func(i int) bool { return !less(ix.entries[i].value, v) })
	// Position after the last entry == v.
	hi := lo
	for hi < len(ix.entries) && ix.entries[hi].value.Equal(v) {
		hi++
	}
	var from, to int
	if below {
		from = 0
		to = lo
		if inclusive {
			to = hi
		}
	} else {
		from = hi
		if inclusive {
			from = lo
		}
		to = len(ix.entries)
	}
	out := make([]object.LOid, 0, to-from)
	for i := from; i < to; i++ {
		// Range comparisons only apply within comparable kinds.
		if _, ok := ix.entries[i].value.Compare(v); ok {
			out = append(out, ix.entries[i].loid)
		}
	}
	return out
}

// NotEqualTo returns the objects whose indexed value differs from v.
func (ix *Index) NotEqualTo(v object.Value) []object.LOid {
	out := make([]object.LOid, 0, len(ix.entries))
	for _, e := range ix.entries {
		if !e.value.Equal(v) {
			out = append(out, e.loid)
		}
	}
	return out
}

func (ix *Index) insert(v object.Value, loid object.LOid) {
	if v.IsNull() {
		ix.nulls = append(ix.nulls, loid)
		return
	}
	i := sort.Search(len(ix.entries), func(i int) bool { return !less(ix.entries[i].value, v) })
	ix.entries = append(ix.entries, indexEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = indexEntry{value: v, loid: loid}
}

// CreateIndex builds (or rebuilds) a secondary index over a primitive,
// single-valued attribute of the class. Future inserts maintain it.
func (db *Database) CreateIndex(class, attr string) (*Index, error) {
	e := db.extents[class]
	if e == nil {
		return nil, fmt.Errorf("index: site %s has no class %q", db.site, class)
	}
	a, ok := e.class.Attr(attr)
	if !ok {
		return nil, fmt.Errorf("index: class %s has no attribute %q", class, attr)
	}
	if a.IsComplex() || a.MultiValued {
		return nil, fmt.Errorf("index: attribute %s.%s is not a primitive single-valued attribute", class, attr)
	}
	if db.engine != nil {
		if err := db.engine.LogCreateIndex(class, attr); err != nil {
			return nil, fmt.Errorf("index %s.%s: %w", class, attr, err)
		}
	}
	ix := &Index{attr: attr}
	e.Scan(func(o *object.Object) bool {
		ix.insert(o.Attr(attr), o.LOid)
		return true
	})
	if e.indexes == nil {
		e.indexes = make(map[string]*Index)
	}
	e.indexes[attr] = ix
	return ix, nil
}

// Index returns the extent's index on the attribute, or nil.
func (e *Extent) Index(attr string) *Index {
	return e.indexes[attr]
}

// IndexAttrs returns the attributes with secondary indexes, sorted. Used by
// storage engines to enumerate indexes into a snapshot.
func (e *Extent) IndexAttrs() []string {
	out := make([]string, 0, len(e.indexes))
	for attr := range e.indexes {
		out = append(out, attr)
	}
	sort.Strings(out)
	return out
}
