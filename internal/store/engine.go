package store

import "github.com/hetfed/hetfed/internal/object"

// StorageEngine is the durability layer behind a component database. Every
// state mutation — object insert (which covers extent membership, the
// database-wide LOid index, and secondary-index maintenance), secondary
// index creation, and GOid mapping-table binds — is offered to the engine
// BEFORE it is applied in memory, so a persistent engine can write it ahead
// to stable storage (write-ahead logging). If the engine returns an error
// the mutation is not applied.
//
// The in-memory engine is Mem (a no-op); the persistent WAL+snapshot engine
// lives in internal/store/wal. Implementations do not need to be
// concurrency-safe against the state they snapshot: callers serialize
// mutations against reads (the TCP server with its state lock, fixtures by
// being single-threaded), and the wal engine snapshots under that same
// exclusion.
type StorageEngine interface {
	// LogInsert records an object insert. The object has already been
	// validated against the schema and is immutable from here on.
	LogInsert(o *object.Object) error
	// LogCreateIndex records the creation of a secondary index over a
	// primitive single-valued attribute. Replaying it twice rebuilds the
	// index, which is idempotent.
	LogCreateIndex(class, attr string) error
	// LogBind records a GOid mapping-table binding. Replay tolerates
	// exact duplicates (same class/goid/site/loid), so logged-but-
	// unapplied binds are harmless after a crash.
	LogBind(class string, goid object.GOid, site object.SiteID, loid object.LOid) error
	// Sync forces everything logged so far to stable storage.
	Sync() error
	// Close flushes and releases the engine. Idempotent.
	Close() error
}

// Mem is the in-memory storage engine: mutations live only in the process
// and a restart loses them. It is the zero-cost default — a Database with
// no engine attached behaves identically.
type Mem struct{}

// LogInsert implements StorageEngine as a no-op.
func (Mem) LogInsert(*object.Object) error { return nil }

// LogCreateIndex implements StorageEngine as a no-op.
func (Mem) LogCreateIndex(string, string) error { return nil }

// LogBind implements StorageEngine as a no-op.
func (Mem) LogBind(string, object.GOid, object.SiteID, object.LOid) error { return nil }

// Sync implements StorageEngine as a no-op.
func (Mem) Sync() error { return nil }

// Close implements StorageEngine as a no-op.
func (Mem) Close() error { return nil }
