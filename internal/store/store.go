// Package store implements the object storage of one component database:
// one extent per class, indexed by LOid, with deterministic scan order and
// reference dereferencing across the class composition hierarchy.
//
// The store itself is cost-free; the federation layer charges simulated disk
// and CPU time for the operations it performs, using the byte sizes the
// store reports.
package store

import (
	"fmt"

	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/schema"
)

// Extent holds the objects of one class in one component database.
type Extent struct {
	class   *schema.Class
	objects map[object.LOid]*object.Object
	order   []object.LOid
	indexes map[string]*Index
	bytes   int // incrementally maintained sum of WireSize(nil) over objects
}

func newExtent(c *schema.Class) *Extent {
	return &Extent{class: c, objects: make(map[object.LOid]*object.Object)}
}

// Class returns the extent's class descriptor.
func (e *Extent) Class() *schema.Class { return e.class }

// Len returns the number of stored objects.
func (e *Extent) Len() int { return len(e.order) }

// Get returns the object with the given LOid, or nil.
func (e *Extent) Get(id object.LOid) *object.Object { return e.objects[id] }

// Scan calls fn for every object in insertion order; a false return stops
// the scan early.
func (e *Extent) Scan(fn func(*object.Object) bool) {
	for _, id := range e.order {
		if !fn(e.objects[id]) {
			return
		}
	}
}

// All returns the objects in insertion order. The objects are shared, the
// slice is fresh.
func (e *Extent) All() []*object.Object {
	out := make([]*object.Object, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.objects[id])
	}
	return out
}

// Bytes returns the total stored size of the extent under the paper's cost
// model (every object, all attributes). The count is maintained
// incrementally on Insert, so this is O(1) — it sits on the planner's
// catalog path and is called once per involved extent per query.
func (e *Extent) Bytes() int { return e.bytes }

// Database is one component database: a schema plus one extent per class and
// a database-wide LOid index used to dereference complex attribute values.
type Database struct {
	site    object.SiteID
	schema  *schema.Schema
	extents map[string]*Extent
	byLOid  map[object.LOid]*object.Object
	engine  StorageEngine // nil means in-memory (equivalent to Mem)
}

// NewDatabase returns an empty database over the given schema. The schema
// must validate.
func NewDatabase(s *schema.Schema) (*Database, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("new database: %w", err)
	}
	db := &Database{
		site:    s.Site,
		schema:  s,
		extents: make(map[string]*Extent, len(s.ClassNames())),
		byLOid:  make(map[object.LOid]*object.Object),
	}
	for _, name := range s.ClassNames() {
		db.extents[name] = newExtent(s.Class(name))
	}
	return db, nil
}

// MustNewDatabase is NewDatabase that panics on error; intended for fixtures.
func MustNewDatabase(s *schema.Schema) *Database {
	db, err := NewDatabase(s)
	if err != nil {
		panic(err)
	}
	return db
}

// WithEngine attaches a storage engine: from here on every mutation is
// logged to the engine before being applied. Attach AFTER recovery replay
// (replay applies mutations without re-logging them) and before serving.
// Returns db for chaining.
func (db *Database) WithEngine(e StorageEngine) *Database {
	db.engine = e
	return db
}

// Engine returns the attached storage engine, or nil.
func (db *Database) Engine() StorageEngine { return db.engine }

// Site returns the owning site.
func (db *Database) Site() object.SiteID { return db.site }

// Schema returns the component schema.
func (db *Database) Schema() *schema.Schema { return db.schema }

// Extent returns the extent of the named class, or nil.
func (db *Database) Extent(class string) *Extent { return db.extents[class] }

// Insert validates and stores an object. The object's class must exist, its
// LOid must be unique database-wide, and every attribute must be defined by
// the class with a matching kind. Missing attributes are simply absent.
func (db *Database) Insert(o *object.Object) error {
	e := db.extents[o.Class]
	if e == nil {
		return fmt.Errorf("insert %s: site %s has no class %q", o.LOid, db.site, o.Class)
	}
	if o.LOid == "" {
		return fmt.Errorf("insert into %s@%s: empty LOid", o.Class, db.site)
	}
	if _, dup := db.byLOid[o.LOid]; dup {
		return fmt.Errorf("insert %s into %s@%s: duplicate LOid", o.LOid, o.Class, db.site)
	}
	for name, v := range o.Attrs {
		a, ok := e.class.Attr(name)
		if !ok {
			return fmt.Errorf("insert %s: class %s@%s has no attribute %q", o.LOid, o.Class, db.site, name)
		}
		if err := checkKind(a, v); err != nil {
			return fmt.Errorf("insert %s attribute %s: %w", o.LOid, name, err)
		}
	}
	if db.engine != nil {
		if err := db.engine.LogInsert(o); err != nil {
			return fmt.Errorf("insert %s into %s@%s: %w", o.LOid, o.Class, db.site, err)
		}
	}
	e.objects[o.LOid] = o
	e.order = append(e.order, o.LOid)
	e.bytes += o.WireSize(nil)
	db.byLOid[o.LOid] = o
	for attr, ix := range e.indexes {
		ix.insert(o.Attr(attr), o.LOid)
	}
	return nil
}

// MustInsert is Insert that panics on error; intended for fixtures.
func (db *Database) MustInsert(o *object.Object) {
	if err := db.Insert(o); err != nil {
		panic(err)
	}
}

func checkKind(a schema.Attribute, v object.Value) error {
	if a.MultiValued && v.Kind() == object.KindList {
		for _, e := range v.Elems() {
			if err := checkScalarKind(a, e); err != nil {
				return err
			}
		}
		return nil
	}
	return checkScalarKind(a, v)
}

func checkScalarKind(a schema.Attribute, v object.Value) error {
	if a.IsComplex() {
		if v.Kind() != object.KindRef {
			return fmt.Errorf("complex attribute wants a ref, got %s", v.Kind())
		}
		return nil
	}
	if v.Kind() != a.Prim {
		// Ints are acceptable where floats are declared.
		if a.Prim == object.KindFloat && v.Kind() == object.KindInt {
			return nil
		}
		return fmt.Errorf("want %s, got %s", a.Prim, v.Kind())
	}
	return nil
}

// Deref resolves a local object reference anywhere in the database.
func (db *Database) Deref(id object.LOid) (*object.Object, bool) {
	o, ok := db.byLOid[id]
	return o, ok
}

// Len returns the total number of objects stored across all extents.
func (db *Database) Len() int { return len(db.byLOid) }

// CheckRefs verifies that every complex attribute value references an
// existing object of the attribute's domain class (referential integrity).
func (db *Database) CheckRefs() error {
	for _, name := range db.schema.ClassNames() {
		e := db.extents[name]
		var err error
		e.Scan(func(o *object.Object) bool {
			for attr, v := range o.Attrs {
				a, _ := e.class.Attr(attr)
				err = checkRefValue(db, o, a, attr, v)
				if err != nil {
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func checkRefValue(db *Database, o *object.Object, a schema.Attribute, attr string, v object.Value) error {
	if !a.IsComplex() {
		return nil
	}
	refs := []object.Value{v}
	if v.Kind() == object.KindList {
		refs = v.Elems()
	}
	for _, r := range refs {
		target, ok := db.Deref(r.RefLOid())
		if !ok {
			return fmt.Errorf("%s.%s references missing object %s", o.LOid, attr, r.RefLOid())
		}
		if target.Class != a.Domain {
			return fmt.Errorf("%s.%s references %s of class %s, want %s",
				o.LOid, attr, target.LOid, target.Class, a.Domain)
		}
	}
	return nil
}
