package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/trace"
)

const (
	walFile      = "wal.log"
	snapFile     = "snapshot.snap"
	snapTmpFile  = "snapshot.tmp"
	writerBufLen = 64 << 10
)

// DefaultSnapshotEvery is the append count between snapshots when Options
// leaves SnapshotEvery zero.
const DefaultSnapshotEvery = 4096

// Options configures a durable engine.
type Options struct {
	// Dir is the engine's directory; created if missing. One engine per
	// directory — there is no locking against concurrent opens.
	Dir string
	// Fsync syncs the log after every append (each acknowledged mutation
	// survives power loss). Off, appends are buffered and flushed on
	// Sync/snapshot/Close: a process crash loses at most the buffered
	// tail, which recovery truncates cleanly.
	Fsync bool
	// SnapshotEvery is the minimum number of appends between snapshots
	// (DefaultSnapshotEvery if zero, negative disables snapshots). A due
	// snapshot is further deferred until the log holds at least as many
	// appends as the last snapshot holds records, so total snapshot work
	// stays proportional to total appends however large the state grows.
	SnapshotEvery int
	// Site labels metrics, spans, and log lines.
	Site string
	// Metrics receives wal_*/snapshot_*/recovery_* series; nil is a
	// valid no-op.
	Metrics *metrics.Registry
	// Tracer records a recovery span on open; nil is a valid no-op.
	Tracer *trace.Tracer
	// Log receives recovery and snapshot INFO lines; nil discards.
	Log *slog.Logger
}

// Engine is the persistent storage engine: it implements
// store.StorageEngine over a WAL+snapshot directory and doubles as the
// coordinator's durable bind-delta log (AppendBind/ReplayBinds).
type Engine struct {
	opts   Options
	labels metrics.Labels
	log    *slog.Logger

	// Hot-path counter handles, resolved once at open: appends must not
	// pay a registry lookup each.
	cAppends metrics.Counter
	cBytes   metrics.Counter
	cSyncs   metrics.Counter

	mu          sync.Mutex
	f           *os.File // wal.log, positioned at its end
	w           *bufio.Writer
	off         int64  // current wal.log length (all buffered frames included)
	seq         uint64 // last assigned sequence number
	baseSeq     uint64 // sequence covered by snapshot.snap (0 = none)
	sinceSnap   int    // appends since the last snapshot
	snapRecords int64  // records in the last snapshot (defers the next one)
	buf         []byte // reusable payload-encoding scratch
	frame       []byte // reusable frame-encoding scratch (distinct from buf)
	snapBuf     []byte // snapshot payload scratch; buf holds the in-flight
	// append's payload while a due snapshot cuts, so snapshots need their own
	closed bool

	// Snapshot sources; either may be nil (a pure bind log has no
	// database). Set before serving; the engine reads them only inside
	// append calls, which callers already serialize against state reads.
	db     *store.Database
	tables *gmap.Tables
}

// Open opens (creating if needed) a durable component database: it
// recovers the directory's snapshot+log into a fresh database over the
// schema and a fresh mapping-table replica, attaches the engine to the
// database, and returns all three. The returned database logs every
// subsequent Insert/CreateIndex through the engine; mapping-table binds
// must go through the engine's LogBind (the TCP server does).
func Open(s *schema.Schema, opts Options) (*Engine, *store.Database, *gmap.Tables, error) {
	db, err := store.NewDatabase(s)
	if err != nil {
		return nil, nil, nil, err
	}
	tables := gmap.NewTables()
	e, err := open(opts, db, tables)
	if err != nil {
		return nil, nil, nil, err
	}
	db.WithEngine(e)
	return e, db, tables, nil
}

// OpenLog opens a pure durable bind log with no object state — the
// coordinator's delta log. Bind records recover into the returned Tables;
// insert/index records in the directory (there are none in coordinator
// use) are ignored.
func OpenLog(opts Options) (*Engine, *gmap.Tables, error) {
	tables := gmap.NewTables()
	e, err := open(opts, nil, tables)
	if err != nil {
		return nil, nil, err
	}
	return e, tables, nil
}

func open(opts Options, db *store.Database, tables *gmap.Tables) (*Engine, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// A leftover half-written snapshot from a crash is garbage.
	if err := os.Remove(filepath.Join(opts.Dir, snapTmpFile)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("wal: %w", err)
	}
	e := &Engine{
		opts:   opts,
		labels: metrics.Labels{Site: opts.Site},
		log:    opts.Log,
		db:     db,
		tables: tables,
	}
	if e.log == nil {
		e.log = slog.New(slog.DiscardHandler)
	}
	e.cAppends = opts.Metrics.Counter("wal_appends_total", e.labels)
	e.cBytes = opts.Metrics.Counter("wal_bytes_total", e.labels)
	e.cSyncs = opts.Metrics.Counter("wal_syncs_total", e.labels)
	if err := e.recover(); err != nil {
		return nil, err
	}
	return e, nil
}

// recover loads snapshot.snap, replays wal.log past it, truncates any torn
// tail, and leaves e.f positioned for appends.
func (e *Engine) recover() error {
	start := time.Now()
	span := e.opts.Tracer.StartSpan(0, object.SiteID(e.opts.Site), "wal:recover")
	defer span.End()

	var replayed, skipped int64
	apply := func(rec record) error {
		applied, err := e.apply(rec)
		if err != nil {
			return err
		}
		if applied {
			replayed++
		} else {
			skipped++
		}
		return nil
	}

	// Snapshot first: its header sets baseSeq, its records rebuild the
	// compacted state. A snapshot is written in one atomic rename, so any
	// torn frame here is real corruption, not a crash artifact.
	snapPath := filepath.Join(e.opts.Dir, snapFile)
	if sf, err := os.Open(snapPath); err == nil {
		st, err := sf.Stat()
		if err != nil {
			sf.Close()
			return fmt.Errorf("wal: %w", err)
		}
		first := true
		res, err := scanFrames(bufio.NewReader(sf), st.Size(), func(rec record) error {
			e.snapRecords++
			if first {
				first = false
				if rec.kind != recHeader {
					return fmt.Errorf("wal: snapshot %s does not start with a header record", snapPath)
				}
				e.baseSeq = rec.base
				return nil
			}
			return apply(rec)
		})
		sf.Close()
		if err != nil {
			return err
		}
		if res.torn {
			return fmt.Errorf("wal: snapshot %s is corrupt (%d trailing bytes unreadable)", snapPath, res.tornBytes)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("wal: %w", err)
	}
	e.seq = e.baseSeq

	// Then the log: replay frames past the snapshot, truncate a torn tail.
	f, err := os.OpenFile(filepath.Join(e.opts.Dir, walFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	res, err := scanFrames(bufio.NewReader(f), st.Size(), func(rec record) error {
		if rec.seq <= e.baseSeq {
			// Crash window between snapshot rename and log truncation:
			// the snapshot already covers this frame.
			skipped++
			return nil
		}
		if rec.seq > e.seq {
			e.seq = rec.seq
		}
		return apply(rec)
	})
	if err != nil {
		f.Close()
		return err
	}
	if res.torn {
		if err := f.Truncate(res.good); err != nil {
			f.Close()
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		e.opts.Metrics.Counter("recovery_truncated_total", e.labels).Add(1)
		e.opts.Metrics.Counter("recovery_truncated_bytes_total", e.labels).Add(res.tornBytes)
		e.log.Warn("wal: truncated torn tail record", "site", e.opts.Site, "bytes", res.tornBytes, "offset", res.good)
	}
	if _, err := f.Seek(res.good, 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	e.f = f
	e.w = bufio.NewWriterSize(f, writerBufLen)
	e.off = res.good

	micros := time.Since(start).Microseconds()
	e.opts.Metrics.Counter("recovery_replayed_total", e.labels).Add(replayed)
	e.opts.Metrics.Counter("recovery_skipped_total", e.labels).Add(skipped)
	e.opts.Metrics.Gauge("recovery_last_micros", e.labels).Set(micros)
	span.Add("replayed", replayed).Add("skipped", skipped).Detailf("dir=%s baseSeq=%d seq=%d", e.opts.Dir, e.baseSeq, e.seq)
	e.log.Info("wal: recovered", "site", e.opts.Site, "dir", e.opts.Dir,
		"replayed", replayed, "skipped", skipped, "base_seq", e.baseSeq, "seq", e.seq, "micros", micros)
	return nil
}

// apply replays one record into the recovering state. The database has no
// engine attached yet, so nothing is re-logged. Exact-duplicate inserts
// and binds are skipped (false, nil): write-ahead discipline means a crash
// can leave a logged-but-unapplied record that an earlier snapshot or a
// resync replay later duplicates. Any other error is real corruption or
// schema drift and aborts recovery.
func (e *Engine) apply(rec record) (bool, error) {
	switch rec.kind {
	case recInsert:
		if e.db == nil {
			return false, nil
		}
		if ext := e.db.Extent(rec.obj.Class); ext != nil && ext.Get(rec.obj.LOid) != nil {
			return false, nil
		}
		if err := e.db.Insert(rec.obj); err != nil {
			return false, fmt.Errorf("wal: replay seq %d: %w", rec.seq, err)
		}
	case recIndex:
		if e.db == nil {
			return false, nil
		}
		if _, err := e.db.CreateIndex(rec.class, rec.attr); err != nil {
			return false, fmt.Errorf("wal: replay seq %d: %w", rec.seq, err)
		}
	case recBind:
		if e.tables == nil {
			return false, nil
		}
		t := e.tables.Table(rec.class)
		if t.Bound(rec.goid, rec.site, rec.loid) {
			return false, nil
		}
		if err := t.Bind(rec.goid, rec.site, rec.loid); err != nil {
			return false, fmt.Errorf("wal: replay seq %d: %w", rec.seq, err)
		}
	case recHeader:
		return false, fmt.Errorf("wal: replay seq %d: header record outside snapshot", rec.seq)
	}
	return true, nil
}

// LogInsert implements store.StorageEngine.
func (e *Engine) LogInsert(o *object.Object) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	payload, err := encodeInsert(e.buf[:0], o)
	if err != nil {
		return err
	}
	e.buf = payload[:0]
	_, err = e.appendLocked(recInsert, payload)
	return err
}

// LogCreateIndex implements store.StorageEngine.
func (e *Engine) LogCreateIndex(class, attr string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	payload := encodeIndex(e.buf[:0], class, attr)
	e.buf = payload[:0]
	_, err := e.appendLocked(recIndex, payload)
	return err
}

// LogBind implements store.StorageEngine.
func (e *Engine) LogBind(class string, goid object.GOid, site object.SiteID, loid object.LOid) error {
	_, err := e.AppendBind(class, goid, site, loid)
	return err
}

// AppendBind logs one bind delta and returns its log sequence number —
// the durable cursor the coordinator's replica-resync rebuild replays
// from (remote.DeltaLog).
func (e *Engine) AppendBind(class string, goid object.GOid, site object.SiteID, loid object.LOid) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	payload := encodeBind(e.buf[:0], class, goid, site, loid)
	e.buf = payload[:0]
	return e.appendLocked(recBind, payload)
}

// appendLocked writes one frame under write-ahead discipline. The caller
// applies the mutation in memory only after it returns, so at entry the
// in-memory state covers exactly sequences 1..e.seq — which is why a due
// snapshot is cut BEFORE assigning this record's sequence: the snapshot's
// baseSeq then never covers an unapplied record.
func (e *Engine) appendLocked(kind byte, payload []byte) (uint64, error) {
	if e.closed {
		return 0, fmt.Errorf("wal: engine is closed")
	}
	// A due snapshot also waits until the log has grown to the size of the
	// last snapshot: cutting one re-encodes the whole state, so a fixed
	// cadence would cost O(state²) over the life of a growing store, while
	// this geometric deferral keeps total snapshot work proportional to
	// total appends (and recovery replay bounded by ~2x the state size).
	if e.opts.SnapshotEvery > 0 && e.sinceSnap >= e.opts.SnapshotEvery &&
		int64(e.sinceSnap) >= e.snapRecords && (e.db != nil || e.tables != nil) {
		if err := e.snapshotLocked(); err != nil {
			return 0, err
		}
	}
	e.seq++
	frame := appendFrame(e.frame[:0], e.seq, kind, payload)
	n, err := e.w.Write(frame)
	e.off += int64(n)
	e.frame = frame[:0]
	if err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if e.opts.Fsync {
		if err := e.syncLocked(); err != nil {
			return 0, err
		}
	}
	e.sinceSnap++
	e.cAppends.Add(1)
	e.cBytes.Add(int64(len(frame)))
	return e.seq, nil
}

func (e *Engine) syncLocked() error {
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := e.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	e.cSyncs.Add(1)
	return nil
}

// Sync implements store.StorageEngine: flush buffered frames and fsync.
func (e *Engine) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("wal: engine is closed")
	}
	return e.syncLocked()
}

// Close flushes, syncs, and releases the log file. Idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	err := e.w.Flush()
	if serr := e.f.Sync(); err == nil {
		err = serr
	}
	if cerr := e.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Seq returns the last assigned log sequence number.
func (e *Engine) Seq() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}

// Health reports the engine's state for an /healthz source (wire through
// obs.PrefixHealth("wal", ...)): "ok(seq=N)" while the log is open,
// "closed" tagged unhealthy as "stopped" once Close ran. Nil-safe so a
// site without durability can pass its engine through unconditionally.
func (e *Engine) Health() map[string]string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return map[string]string{"engine": "stopped"}
	}
	return map[string]string{"engine": fmt.Sprintf("ok(seq=%d)", e.seq)}
}

// snapshotLocked writes the current state as a compacted log to
// snapshot.tmp, atomically renames it over snapshot.snap, syncs the
// directory, and truncates wal.log. State records carry sequence 0 — the
// header's baseSeq, not per-record sequences, scopes a snapshot.
func (e *Engine) snapshotLocked() error {
	start := time.Now()
	path := filepath.Join(e.opts.Dir, snapTmpFile)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, writerBufLen)
	var records, bytes int64
	emit := func(kind byte, payload []byte) error {
		frame := appendFrame(e.frame[:0], 0, kind, payload)
		e.frame = frame[:0]
		n, err := w.Write(frame)
		records++
		bytes += int64(n)
		return err
	}

	err = func() error {
		hdr := binary.AppendUvarint(make([]byte, 0, 10), e.seq)
		if err := emit(recHeader, hdr); err != nil {
			return err
		}
		if e.db != nil {
			for _, class := range e.db.Schema().ClassNames() {
				ext := e.db.Extent(class)
				for _, attr := range ext.IndexAttrs() {
					if err := emit(recIndex, encodeIndex(e.snapBuf[:0], class, attr)); err != nil {
						return err
					}
				}
				var scanErr error
				ext.Scan(func(o *object.Object) bool {
					payload, err := encodeInsert(e.snapBuf[:0], o)
					if err == nil {
						e.snapBuf = payload[:0]
						err = emit(recInsert, payload)
					}
					scanErr = err
					return err == nil
				})
				if scanErr != nil {
					return scanErr
				}
			}
		}
		if e.tables != nil {
			for _, class := range e.tables.Classes() {
				t := e.tables.Table(class)
				for _, goid := range t.GOids() {
					for _, loc := range t.Locations(goid) {
						if err := emit(recBind, encodeBind(e.snapBuf[:0], class, goid, loc.Site, loc.LOid)); err != nil {
							return err
						}
					}
				}
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(path, filepath.Join(e.opts.Dir, snapFile)); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := syncDir(e.opts.Dir); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}

	// The snapshot now owns sequences 1..e.seq; restart the log. A crash
	// before the truncate lands is covered by the seq<=baseSeq replay
	// filter.
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := e.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := e.f.Seek(0, 0); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := e.f.Sync(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	e.w.Reset(e.f)
	e.off = 0
	e.baseSeq = e.seq
	e.sinceSnap = 0
	e.snapRecords = records

	micros := time.Since(start).Microseconds()
	e.opts.Metrics.Counter("snapshots_total", e.labels).Add(1)
	e.opts.Metrics.Counter("snapshot_records_total", e.labels).Add(records)
	e.opts.Metrics.Counter("snapshot_bytes_total", e.labels).Add(bytes)
	e.opts.Metrics.Gauge("snapshot_last_micros", e.labels).Set(micros)
	e.log.Info("wal: snapshot", "site", e.opts.Site, "records", records, "bytes", bytes,
		"base_seq", e.seq, "micros", micros)
	return nil
}

// ReplayBinds streams every durable bind with sequence >= from to fn, in
// log order (snapshot state first when from predates the snapshot).
// Implements remote.DeltaLog: the coordinator rebuilds an overflowed
// replica by replaying the gap from here instead of losing it.
//
// The binds are collected under the engine lock first and delivered to fn
// unlocked: fn is typically a network send per bind (replica rebuild), and
// holding the lock across the stream would stall every concurrent append —
// and deadlock outright if a delivery ever re-entered the engine (a
// snapshot compaction triggered by an append mid-replay). The collected
// set is a consistent cut at call time; binds appended afterwards are the
// caller's to deliver by other means (they are, by construction, in the
// coordinator's pending queue or a later replay).
func (e *Engine) ReplayBinds(from uint64, fn func(class string, goid object.GOid, site object.SiteID, loid object.LOid) error) error {
	binds, err := e.collectBinds(from)
	if err != nil {
		return err
	}
	for _, rec := range binds {
		if err := fn(rec.class, rec.goid, rec.site, rec.loid); err != nil {
			return err
		}
	}
	return nil
}

// collectBinds gathers the bind records with sequence >= from, in log
// order, under the engine lock.
func (e *Engine) collectBinds(from uint64) ([]record, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("wal: engine is closed")
	}
	if err := e.w.Flush(); err != nil {
		return nil, fmt.Errorf("wal: flush: %w", err)
	}
	var binds []record
	emit := func(rec record) error {
		if rec.kind != recBind {
			return nil
		}
		binds = append(binds, rec)
		return nil
	}
	if from <= e.baseSeq {
		// The gap predates the snapshot: individual frames are gone, so
		// replay the full compacted state (binds only). Snapshot state
		// records carry seq 0, which is fine — receivers apply binds
		// idempotently.
		snapPath := filepath.Join(e.opts.Dir, snapFile)
		sf, err := os.Open(snapPath)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err == nil {
			st, err := sf.Stat()
			if err == nil {
				first := true
				_, err = scanFrames(bufio.NewReader(sf), st.Size(), func(rec record) error {
					if first {
						first = false
						return nil
					}
					return emit(rec)
				})
			}
			sf.Close()
			if err != nil {
				return nil, err
			}
		}
	}
	rf, err := os.Open(filepath.Join(e.opts.Dir, walFile))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer rf.Close()
	if _, err := scanFrames(bufio.NewReader(rf), e.off, func(rec record) error {
		if rec.seq <= e.baseSeq || rec.seq < from {
			return nil
		}
		return emit(rec)
	}); err != nil {
		return nil, err
	}
	return binds, nil
}

// Import merges an in-memory fixture into the durable store: every
// secondary index, object, and mapping-table binding of src/mapping not
// already present is logged through the engine and applied to the
// recovered database and tables, then synced. Idempotent — on first boot
// over an empty directory it seeds everything; on later boots the
// recovered state wins and only new fixture entries land. A fixture
// object whose LOid is already stored is skipped without comparison
// (the durable copy is authoritative).
func (e *Engine) Import(src *store.Database, mapping *gmap.Tables) error {
	if e.db != nil && src != nil {
		for _, class := range src.Schema().ClassNames() {
			ext, dst := src.Extent(class), e.db.Extent(class)
			if dst == nil {
				return fmt.Errorf("wal: import: recovered schema has no class %q", class)
			}
			for _, attr := range ext.IndexAttrs() {
				if dst.Index(attr) == nil {
					if _, err := e.db.CreateIndex(class, attr); err != nil {
						return err
					}
				}
			}
			for _, o := range ext.All() {
				if dst.Get(o.LOid) == nil {
					if err := e.db.Insert(o); err != nil {
						return err
					}
				}
			}
		}
	}
	if e.tables != nil && mapping != nil {
		for _, class := range mapping.Classes() {
			src, dst := mapping.Table(class), e.tables.Table(class)
			for _, goid := range src.GOids() {
				for _, loc := range src.Locations(goid) {
					if dst.Bound(goid, loc.Site, loc.LOid) {
						continue
					}
					if err := e.LogBind(class, goid, loc.Site, loc.LOid); err != nil {
						return err
					}
					if err := dst.Bind(goid, loc.Site, loc.LOid); err != nil {
						return err
					}
				}
			}
		}
	}
	return e.Sync()
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
