package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/store"
)

// dump renders the full recoverable state — extents in scan order,
// secondary indexes, GOid mapping tables — as one canonical string, the
// byte-identical comparison basis for recovery tests.
func dump(db *store.Database, tables *gmap.Tables) string {
	var b strings.Builder
	if db != nil {
		for _, class := range db.Schema().ClassNames() {
			ext := db.Extent(class)
			fmt.Fprintf(&b, "extent %s (%d objects, %d bytes)\n", class, ext.Len(), ext.Bytes())
			for _, attr := range ext.IndexAttrs() {
				ix := ext.Index(attr)
				fmt.Fprintf(&b, "  index %s: %d entries, %d nulls\n", attr, ix.Len(), len(ix.Nulls()))
			}
			ext.Scan(func(o *object.Object) bool {
				fmt.Fprintf(&b, "  %s\n", o)
				return true
			})
		}
	}
	if tables != nil {
		for _, class := range tables.Classes() {
			t := tables.Table(class)
			fmt.Fprintf(&b, "gmap %s\n", class)
			for _, goid := range t.GOids() {
				for _, loc := range t.Locations(goid) {
					fmt.Fprintf(&b, "  %s -> %s@%s\n", goid, loc.LOid, loc.Site)
				}
			}
		}
	}
	return b.String()
}

// seedSome opens an engine over the DB1 school schema, creates an index,
// inserts n students, and binds each to a GOid. Returns the engine and the
// live state.
func seedSome(t *testing.T, dir string, n int, opts Options) (*Engine, *store.Database, *gmap.Tables) {
	t.Helper()
	opts.Dir = dir
	if opts.Site == "" {
		opts.Site = "DB1"
	}
	eng, db, tables, err := Open(school.Schemas()["DB1"], opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if db.Len() == 0 {
		if _, err := db.CreateIndex("Student", "age"); err != nil {
			t.Fatalf("CreateIndex: %v", err)
		}
	}
	start := db.Extent("Student").Len()
	for i := start; i < start+n; i++ {
		o := &object.Object{Class: "Student", LOid: object.LOid(fmt.Sprintf("s%04d", i)), Attrs: map[string]object.Value{
			"s-no": object.Int(int64(i)),
			"name": object.Str(fmt.Sprintf("student-%d", i)),
			"age":  object.Int(int64(18 + i%30)),
			"sex":  object.Str([]string{"F", "M"}[i%2]),
		}}
		if err := db.Insert(o); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		goid := object.GOid(fmt.Sprintf("gs%04d", i))
		if err := eng.LogBind("Student", goid, "DB1", o.LOid); err != nil {
			t.Fatalf("LogBind %d: %v", i, err)
		}
		if err := tables.Table("Student").Bind(goid, "DB1", o.LOid); err != nil {
			t.Fatalf("Bind %d: %v", i, err)
		}
	}
	return eng, db, tables
}

func reopen(t *testing.T, dir string, opts Options) (*Engine, *store.Database, *gmap.Tables) {
	t.Helper()
	opts.Dir = dir
	if opts.Site == "" {
		opts.Site = "DB1"
	}
	eng, db, tables, err := Open(school.Schemas()["DB1"], opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return eng, db, tables
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	eng, db, tables := seedSome(t, dir, 25, Options{})
	want := dump(db, tables)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	eng2, db2, tables2 := reopen(t, dir, Options{})
	defer eng2.Close()
	if got := dump(db2, tables2); got != want {
		t.Fatalf("recovered state differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if err := db2.CheckRefs(); err != nil {
		t.Fatalf("CheckRefs after recovery: %v", err)
	}
}

// TestTornTailSweep crashes the log at every byte offset inside the tail
// region and asserts recovery always succeeds, recovering exactly the
// longest prefix of complete records.
func TestTornTailSweep(t *testing.T) {
	src := t.TempDir()
	eng, _, _ := seedSome(t, src, 8, Options{})
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	logBytes, err := os.ReadFile(filepath.Join(src, walFile))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, and the reference dump after each complete prefix.
	var bounds []int64
	res, err := scanFrames(strings.NewReader(string(logBytes)), int64(len(logBytes)), func(rec record) error {
		return nil
	})
	if err != nil || res.torn {
		t.Fatalf("reference scan: err=%v torn=%v", err, res.torn)
	}
	off := int64(0)
	for off < int64(len(logBytes)) {
		bodyLen := int64(logBytes[off]) | int64(logBytes[off+1])<<8 | int64(logBytes[off+2])<<16 | int64(logBytes[off+3])<<24
		off += frameHeaderSize + bodyLen
		bounds = append(bounds, off)
	}

	refDump := func(upto int64) string {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), logBytes[:upto], 0o644); err != nil {
			t.Fatal(err)
		}
		eng, db, tables := reopen(t, dir, Options{})
		defer eng.Close()
		return dump(db, tables)
	}

	// Sweep truncation points across the last three frames plus a
	// garbage-appended tail.
	from := int64(0)
	if len(bounds) > 3 {
		from = bounds[len(bounds)-4]
	}
	for cut := from; cut < int64(len(logBytes)); cut += 3 {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		eng, db, tables := reopen(t, dir, Options{})
		// The recovered state must equal the longest complete prefix.
		prefix := int64(0)
		for _, b := range bounds {
			if b <= cut {
				prefix = b
			}
		}
		got := dump(db, tables)
		eng.Close()
		if want := refDump(prefix); got != want {
			t.Fatalf("cut=%d: recovered state != prefix state (prefix=%d)\nwant:\n%s\ngot:\n%s", cut, prefix, want, got)
		}
	}

	// Corrupt tail: flip a byte inside the last frame's body.
	corrupt := append([]byte(nil), logBytes...)
	corrupt[len(corrupt)-1] ^= 0xFF
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFile), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	eng2, db2, tables2 := reopen(t, dir, Options{})
	got := dump(db2, tables2)
	eng2.Close()
	if want := refDump(bounds[len(bounds)-2]); got != want {
		t.Fatalf("corrupt tail: recovered state mismatch\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Garbage appended past a valid log must be dropped.
	garbage := append(append([]byte(nil), logBytes...), 0xDE, 0xAD, 0xBE)
	dir = t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFile), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	eng3, db3, tables3 := reopen(t, dir, Options{})
	got = dump(db3, tables3)
	eng3.Close()
	if want := refDump(int64(len(logBytes))); got != want {
		t.Fatalf("garbage tail: recovered state mismatch")
	}
}

// TestSnapshotRotation drives enough appends to cut snapshots, then
// verifies reopen recovers identical state from snapshot+log, and that
// stale log frames from the snapshot crash window are skipped by sequence.
func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	eng, db, tables := seedSome(t, dir, 40, Options{SnapshotEvery: 16})
	want := dump(db, tables)
	seq := eng.Seq()
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapFile)); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	// Simulate the crash window: re-append an already-snapshotted frame
	// (stale sequence) to the log; recovery must skip it.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	stale := appendFrame(nil, 1, recBind, encodeBind(nil, "Student", "gs0000", "DB1", "s0000"))
	if _, err := f.Write(stale); err != nil {
		t.Fatal(err)
	}
	f.Close()

	eng2, db2, tables2 := reopen(t, dir, Options{SnapshotEvery: 16})
	defer eng2.Close()
	if got := dump(db2, tables2); got != want {
		t.Fatalf("recovered state differs after snapshot:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if eng2.Seq() < seq {
		t.Fatalf("sequence went backwards: %d < %d", eng2.Seq(), seq)
	}
}

// TestReplayBinds checks the delta-log contract: replay from a mid-log
// cursor yields exactly the binds at or past it, and a cursor behind the
// snapshot replays the full compacted state.
func TestReplayBinds(t *testing.T) {
	dir := t.TempDir()
	eng, tables, err := OpenLog(Options{Dir: dir, Site: "G"})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer eng.Close()
	var seqs []uint64
	for i := 0; i < 10; i++ {
		loid := object.LOid(fmt.Sprintf("s%d", i))
		goid := object.GOid(fmt.Sprintf("g%d", i))
		seq, err := eng.AppendBind("Student", goid, "DB2", loid)
		if err != nil {
			t.Fatalf("AppendBind: %v", err)
		}
		tables.Table("Student").MustBind(goid, "DB2", loid)
		seqs = append(seqs, seq)
	}
	var got []string
	err = eng.ReplayBinds(seqs[6], func(class string, goid object.GOid, site object.SiteID, loid object.LOid) error {
		got = append(got, string(goid))
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayBinds: %v", err)
	}
	if want := []string{"g6", "g7", "g8", "g9"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ReplayBinds from %d = %v, want %v", seqs[6], got, want)
	}

	// Reopen recovers the bind state too.
	eng.Close()
	eng2, tables2, err := OpenLog(Options{Dir: dir, Site: "G"})
	if err != nil {
		t.Fatalf("reopen log: %v", err)
	}
	defer eng2.Close()
	if got, want := dump(nil, tables2), dump(nil, tables); got != want {
		t.Fatalf("recovered bind log differs:\nwant:\n%s\ngot:\n%s", want, got)
	}

	// from=0 replays everything even once a snapshot compacts the log.
	n := 0
	if err := eng2.ReplayBinds(0, func(string, object.GOid, object.SiteID, object.LOid) error {
		n++
		return nil
	}); err != nil {
		t.Fatalf("ReplayBinds(0): %v", err)
	}
	if n != 10 {
		t.Fatalf("ReplayBinds(0) yielded %d binds, want 10", n)
	}
}

func TestImportSeedsFixture(t *testing.T) {
	dir := t.TempDir()
	fx := school.New()
	eng, db, tables, err := Open(fx.Schemas["DB2"], Options{Dir: dir, Site: "DB2"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := eng.Import(fx.Databases["DB2"], fx.Mapping); err != nil {
		t.Fatalf("Import: %v", err)
	}
	want := dump(db, tables)
	eng.Close()
	eng2, db2, tables2, err := Open(fx.Schemas["DB2"], Options{Dir: dir, Site: "DB2"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	if got := dump(db2, tables2); got != want {
		t.Fatalf("imported state did not survive reopen:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if db2.Len() != fx.Databases["DB2"].Len() {
		t.Fatalf("recovered %d objects, fixture has %d", db2.Len(), fx.Databases["DB2"].Len())
	}
}

// TestReplayBindsConcurrentAppends pins the collect-then-deliver contract:
// delivery happens outside the engine lock, so appends proceed while a
// replay is mid-stream (the coordinator's rebuild replay does one network
// call per bind — holding the lock across it would stall every insert).
// The replay yields the consistent cut at call time; the concurrent
// appends show up in the next replay.
func TestReplayBindsConcurrentAppends(t *testing.T) {
	eng, tables, err := OpenLog(Options{Dir: t.TempDir(), Site: "G"})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer eng.Close()
	for i := 0; i < 8; i++ {
		goid := object.GOid(fmt.Sprintf("g%02d", i))
		loid := object.LOid(fmt.Sprintf("s%02d", i))
		if _, err := eng.AppendBind("Student", goid, "DB2", loid); err != nil {
			t.Fatalf("AppendBind: %v", err)
		}
		tables.Table("Student").MustBind(goid, "DB2", loid)
	}

	gate := make(chan struct{})     // holds the first delivery open
	parked := make(chan struct{})   // closed once the replay is mid-delivery
	appended := make(chan struct{}) // closed once the concurrent append lands
	var replayed []string
	done := make(chan error, 1)
	go func() {
		first := true
		done <- eng.ReplayBinds(0, func(class string, goid object.GOid, site object.SiteID, loid object.LOid) error {
			if first {
				first = false
				close(parked)
				<-gate // replay parked mid-stream, lock must be free
			}
			replayed = append(replayed, string(goid))
			return nil
		})
	}()
	go func() {
		// Wait for the replay to park mid-delivery: its cut is collected,
		// so this append must land after it — and must complete while the
		// replay is open (if delivery held the engine lock, this would
		// deadlock the test).
		<-parked
		if _, err := eng.AppendBind("Student", "g99", "DB2", "s99"); err != nil {
			t.Errorf("concurrent AppendBind: %v", err)
		}
		close(appended)
	}()
	select {
	case <-appended:
	case <-time.After(5 * time.Second):
		t.Fatal("append blocked behind a mid-stream replay delivery")
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("ReplayBinds: %v", err)
	}
	if len(replayed) != 8 {
		t.Fatalf("replay yielded %d binds, want the 8-bind cut at call time (got %v)", len(replayed), replayed)
	}
	// The concurrently-appended bind is durable and visible to the next cut.
	n := 0
	if err := eng.ReplayBinds(0, func(string, object.GOid, object.SiteID, object.LOid) error {
		n++
		return nil
	}); err != nil {
		t.Fatalf("second ReplayBinds: %v", err)
	}
	if n != 9 {
		t.Fatalf("second replay yielded %d binds, want 9", n)
	}
}

// TestReplayBindsMidStreamCompaction: a snapshot compaction triggered by
// appends while a replay is delivering must neither deadlock nor corrupt
// the replay's cut — the records were collected before the compaction
// rewrote the files.
func TestReplayBindsMidStreamCompaction(t *testing.T) {
	eng, tables, err := OpenLog(Options{Dir: t.TempDir(), Site: "G", SnapshotEvery: 4})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer eng.Close()
	bind := func(i int) {
		goid := object.GOid(fmt.Sprintf("g%03d", i))
		loid := object.LOid(fmt.Sprintf("s%03d", i))
		if _, err := eng.AppendBind("Student", goid, "DB2", loid); err != nil {
			t.Fatalf("AppendBind(%d): %v", i, err)
		}
		tables.Table("Student").MustBind(goid, "DB2", loid)
	}
	for i := 0; i < 6; i++ {
		bind(i)
	}

	gate := make(chan struct{})
	parked := make(chan struct{})
	var replayed []string
	done := make(chan error, 1)
	go func() {
		first := true
		done <- eng.ReplayBinds(0, func(class string, goid object.GOid, site object.SiteID, loid object.LOid) error {
			if first {
				first = false
				close(parked)
				<-gate
			}
			replayed = append(replayed, string(goid))
			return nil
		})
	}()
	// Enough appends to cross SnapshotEvery and compact the log while the
	// replay sits parked mid-delivery. Waiting for the park guarantees the
	// replay's cut was collected before any of these land.
	compacted := make(chan struct{})
	go func() {
		<-parked
		for i := 6; i < 20; i++ {
			bind(i)
		}
		close(compacted)
	}()
	select {
	case <-compacted:
	case <-time.After(5 * time.Second):
		t.Fatal("appends (and the snapshot they trigger) blocked behind a mid-stream replay")
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("ReplayBinds across compaction: %v", err)
	}
	if len(replayed) != 6 {
		t.Fatalf("replay yielded %d binds, want the 6-bind cut at call time (got %v)", len(replayed), replayed)
	}
	// The post-compaction log still replays the complete state.
	n := 0
	if err := eng.ReplayBinds(0, func(string, object.GOid, object.SiteID, object.LOid) error {
		n++
		return nil
	}); err != nil {
		t.Fatalf("post-compaction ReplayBinds: %v", err)
	}
	if n != 20 {
		t.Fatalf("post-compaction replay yielded %d binds, want 20", n)
	}
}
