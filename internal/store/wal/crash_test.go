package wal

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
)

// TestCrashHelper is not a test: it is the child process of
// TestKillNineMidInsert. It opens the durable engine with per-append fsync,
// resumes inserting where the recovered state left off, and prints
// "acked N" after each applied insert+bind until it is SIGKILLed.
func TestCrashHelper(t *testing.T) {
	dir := os.Getenv("WAL_CRASH_DIR")
	if dir == "" {
		t.Skip("helper process for TestKillNineMidInsert")
	}
	eng, db, tables, err := Open(school.Schemas()["DB1"], Options{
		Dir: dir, Site: "DB1", Fsync: true, SnapshotEvery: 32,
	})
	if err != nil {
		fmt.Printf("open failed: %v\n", err)
		os.Exit(1)
	}
	if db.Extent("Student").Index("age") == nil {
		if _, err := db.CreateIndex("Student", "age"); err != nil {
			fmt.Printf("index failed: %v\n", err)
			os.Exit(1)
		}
	}
	out := bufio.NewWriter(os.Stdout)
	for i := db.Extent("Student").Len(); ; i++ {
		o := &object.Object{Class: "Student", LOid: object.LOid(fmt.Sprintf("s%05d", i)), Attrs: map[string]object.Value{
			"s-no": object.Int(int64(i)),
			"name": object.Str(fmt.Sprintf("student-%d", i)),
			"age":  object.Int(int64(18 + i%30)),
		}}
		if err := db.Insert(o); err != nil {
			fmt.Printf("insert failed: %v\n", err)
			os.Exit(1)
		}
		goid := object.GOid(fmt.Sprintf("gs%05d", i))
		if err := eng.LogBind("Student", goid, "DB1", o.LOid); err != nil {
			fmt.Printf("logbind failed: %v\n", err)
			os.Exit(1)
		}
		if err := tables.Table("Student").Bind(goid, "DB1", o.LOid); err != nil {
			fmt.Printf("bind failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "acked %d\n", i)
		out.Flush()
	}
}

// TestKillNineMidInsert SIGKILLs a durable site mid-append across several
// restart rounds and asserts the recovered state covers every acked write
// and is internally consistent: scan order, LOid index, secondary indexes,
// incremental byte counts, and GOid bindings all agree.
func TestKillNineMidInsert(t *testing.T) {
	dir := t.TempDir()
	lastAcked := -1
	startIdx := 0 // first index the helper inserts (and binds) this round
	for round := 0; round < 3; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelper$", "-test.v")
		cmd.Env = append(os.Environ(), "WAL_CRASH_DIR="+dir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Kill mid-stream after a round-dependent number of acks so each
		// round crashes at a different log/snapshot position.
		target := lastAcked + 20 + round*17
		sc := bufio.NewScanner(stdout)
		deadline := time.After(30 * time.Second)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "acked ") {
				continue
			}
			n, err := strconv.Atoi(strings.TrimPrefix(line, "acked "))
			if err != nil {
				t.Fatalf("bad ack line %q", line)
			}
			lastAcked = n
			if n >= target {
				break
			}
			select {
			case <-deadline:
				t.Fatal("helper did not reach ack target in time")
			default:
			}
		}
		if lastAcked < target {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("helper exited early (last acked %d, want %d)", lastAcked, target)
		}
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait()

		eng, db, tables := reopen(t, dir, Options{Fsync: true, SnapshotEvery: 32})
		ext := db.Extent("Student")
		if ext.Len() < lastAcked+1 {
			t.Fatalf("round %d: recovered %d students, %d were acked", round, ext.Len(), lastAcked+1)
		}
		// Internal consistency: insertion order covers exactly the extent,
		// each object resolves through the LOid index, the age index and
		// byte count match an from-scratch recomputation, and every
		// recovered object keeps its GOid binding.
		seen := make(map[object.LOid]bool, ext.Len())
		bytes := 0
		n := 0
		ext.Scan(func(o *object.Object) bool {
			if seen[o.LOid] {
				t.Fatalf("round %d: %s appears twice in scan order", round, o.LOid)
			}
			seen[o.LOid] = true
			if got, ok := db.Deref(o.LOid); !ok || got != o {
				t.Fatalf("round %d: LOid index misses %s", round, o.LOid)
			}
			bytes += o.WireSize(nil)
			want := object.LOid(fmt.Sprintf("s%05d", n))
			if o.LOid != want {
				t.Fatalf("round %d: scan position %d holds %s, want %s", round, n, o.LOid, want)
			}
			n++
			return true
		})
		if got := ext.Bytes(); got != bytes {
			t.Fatalf("round %d: incremental Bytes()=%d, recomputed %d", round, got, bytes)
		}
		ix := ext.Index("age")
		if ix == nil {
			t.Fatalf("round %d: age index lost", round)
		}
		if ix.Len()+len(ix.Nulls()) != ext.Len() {
			t.Fatalf("round %d: age index has %d+%d entries for %d objects",
				round, ix.Len(), len(ix.Nulls()), ext.Len())
		}
		// Bindings are checked for this round's acked range only: a kill
		// between an insert and its bind legitimately leaves the trailing
		// object unbound, and the next round resumes past it.
		tbl := tables.Table("Student")
		for i := startIdx; i <= lastAcked; i++ {
			loid := object.LOid(fmt.Sprintf("s%05d", i))
			goid, ok := tbl.GOidOf("DB1", loid)
			if !ok || goid != object.GOid(fmt.Sprintf("gs%05d", i)) {
				t.Fatalf("round %d: binding for %s missing or wrong (%q, %v)", round, loid, goid, ok)
			}
		}
		lastAcked = ext.Len() - 1 // an unacked trailing insert may have survived
		startIdx = ext.Len()
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
