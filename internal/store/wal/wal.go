// Package wal implements the persistent storage engine behind
// store.StorageEngine: an append-only, length-prefixed, CRC-checked
// write-ahead log with periodic snapshots and crash-recovery replay.
//
// # On-disk layout
//
// An engine owns one directory with at most three files:
//
//	wal.log       the append-only log of mutations since the last snapshot
//	snapshot.snap the compacted state at some log sequence number (baseSeq)
//	snapshot.tmp  an in-progress snapshot (removed on open; never read)
//
// Both files are sequences of frames:
//
//	[u32 body length][u32 CRC32-IEEE of body][body]
//	body = [u64 sequence number][u8 kind][payload]
//
// All fixed-width integers are little-endian; payload fields are
// uvarint-length-prefixed strings and values (object attribute values use
// object.Value's binary encoding). Record kinds are insert (one object),
// index (secondary index creation), bind (one GOid mapping-table entry),
// and header (snapshot files only: carries baseSeq, the log sequence the
// snapshot state includes up to).
//
// # Crash safety
//
// Appends follow write-ahead discipline: the frame is logged (and, under
// -fsync, synced) before the mutation is applied in memory. Recovery loads
// the snapshot (if any), then replays wal.log frames with seq > baseSeq. A
// torn or CRC-corrupt tail frame — the signature of a crash mid-append —
// is truncated away rather than failing recovery; everything before it is
// kept. Snapshots are written to snapshot.tmp, synced, renamed over
// snapshot.snap, and the directory synced, so a crash at any point leaves
// either the old or the new snapshot intact; the seq>baseSeq replay filter
// makes the crash window between rename and log truncation harmless
// (duplicate frames are skipped by sequence number).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/hetfed/hetfed/internal/object"
)

// Record kinds.
const (
	recInsert = byte(1) // payload: class, loid, nattrs, (name, value)...
	recIndex  = byte(2) // payload: class, attr
	recBind   = byte(3) // payload: class, goid, site, loid
	recHeader = byte(4) // payload: baseSeq (first frame of a snapshot file)
)

// frameHeaderSize is the fixed prefix of every frame: body length + CRC.
const frameHeaderSize = 8

// maxFrameBytes bounds a single record; a length prefix beyond it is
// treated as corruption (it would otherwise make recovery attempt a huge
// allocation from a few flipped bits).
const maxFrameBytes = 16 << 20

// record is one decoded WAL record.
type record struct {
	seq  uint64
	kind byte

	obj *object.Object // recInsert

	class string // recInsert, recIndex, recBind
	attr  string // recIndex

	goid object.GOid   // recBind
	site object.SiteID // recBind
	loid object.LOid   // recBind

	base uint64 // recHeader
}

// appendFrame encodes a full frame (header + body) into dst.
func appendFrame(dst []byte, seq uint64, kind byte, payload []byte) []byte {
	bodyLen := 8 + 1 + len(payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bodyLen))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder
	bodyAt := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = append(dst, kind)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[bodyAt:])
	binary.LittleEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return "", nil, fmt.Errorf("wal: corrupt string field")
	}
	return string(b[w : w+int(n)]), b[w+int(n):], nil
}

// encodeInsert encodes an insert payload into dst: class, loid, attribute
// count, then (name, value-bytes) pairs in deterministic order.
func encodeInsert(dst []byte, o *object.Object) ([]byte, error) {
	dst = appendString(dst, o.Class)
	dst = appendString(dst, string(o.LOid))
	names := o.AttrNames()
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, name := range names {
		dst = appendString(dst, name)
		// The value is encoded in place and its uvarint length prefix
		// spliced in front afterwards — the prefix width isn't known until
		// the value is encoded, and a scratch buffer per value would put an
		// allocation on every logged insert.
		at := len(dst)
		var err error
		dst, err = o.Attrs[name].AppendBinary(dst)
		if err != nil {
			return nil, fmt.Errorf("wal: encode %s.%s: %w", o.LOid, name, err)
		}
		var pre [binary.MaxVarintLen64]byte
		n := len(dst) - at
		w := binary.PutUvarint(pre[:], uint64(n))
		dst = append(dst, pre[:w]...)
		copy(dst[at+w:], dst[at:at+n])
		copy(dst[at:], pre[:w])
	}
	return dst, nil
}

func decodeInsert(b []byte) (*object.Object, error) {
	class, b, err := readString(b)
	if err != nil {
		return nil, err
	}
	loid, b, err := readString(b)
	if err != nil {
		return nil, err
	}
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, fmt.Errorf("wal: corrupt attribute count")
	}
	b = b[w:]
	o := &object.Object{Class: class, LOid: object.LOid(loid), Attrs: make(map[string]object.Value, n)}
	for i := uint64(0); i < n; i++ {
		var name string
		name, b, err = readString(b)
		if err != nil {
			return nil, err
		}
		vlen, w := binary.Uvarint(b)
		if w <= 0 || vlen > uint64(len(b)-w) {
			return nil, fmt.Errorf("wal: corrupt value field for %s.%s", loid, name)
		}
		var v object.Value
		if err := v.UnmarshalBinary(b[w : w+int(vlen)]); err != nil {
			return nil, fmt.Errorf("wal: decode %s.%s: %w", loid, name, err)
		}
		b = b[w+int(vlen):]
		o.Attrs[name] = v
	}
	return o, nil
}

func encodeIndex(dst []byte, class, attr string) []byte {
	dst = appendString(dst, class)
	return appendString(dst, attr)
}

func encodeBind(dst []byte, class string, goid object.GOid, site object.SiteID, loid object.LOid) []byte {
	dst = appendString(dst, class)
	dst = appendString(dst, string(goid))
	dst = appendString(dst, string(site))
	return appendString(dst, string(loid))
}

// decodeRecord decodes one frame body (seq + kind already split off by the
// scanner) into a record.
func decodeRecord(seq uint64, kind byte, payload []byte) (record, error) {
	rec := record{seq: seq, kind: kind}
	var err error
	switch kind {
	case recInsert:
		rec.obj, err = decodeInsert(payload)
		if rec.obj != nil {
			rec.class = rec.obj.Class
		}
	case recIndex:
		rec.class, payload, err = readString(payload)
		if err == nil {
			rec.attr, _, err = readString(payload)
		}
	case recBind:
		var g, s, l string
		rec.class, payload, err = readString(payload)
		if err == nil {
			g, payload, err = readString(payload)
		}
		if err == nil {
			s, payload, err = readString(payload)
		}
		if err == nil {
			l, _, err = readString(payload)
		}
		rec.goid, rec.site, rec.loid = object.GOid(g), object.SiteID(s), object.LOid(l)
	case recHeader:
		n, w := binary.Uvarint(payload)
		if w <= 0 {
			err = fmt.Errorf("wal: corrupt snapshot header")
		}
		rec.base = n
	default:
		err = fmt.Errorf("wal: unknown record kind %d", kind)
	}
	return rec, err
}

// scanResult reports how a file scan ended.
type scanResult struct {
	good      int64 // offset just past the last fully valid frame
	torn      bool  // the scan hit a partial or CRC-corrupt tail
	tornBytes int64 // bytes from the torn point to end of file
}

// scanFrames reads frames from r (a file positioned at 0, size known),
// calling fn for each decoded record. It stops cleanly at EOF, or at the
// first partial/CRC-corrupt frame — reported as a torn tail, never an
// error. Decode errors inside a CRC-valid frame and fn errors abort the
// scan (they indicate real corruption or schema drift, not a torn append).
func scanFrames(r io.Reader, size int64, fn func(record) error) (scanResult, error) {
	res := scanResult{}
	hdr := make([]byte, frameHeaderSize)
	var body []byte
	for res.good < size {
		if size-res.good < frameHeaderSize {
			res.torn, res.tornBytes = true, size-res.good
			return res, nil
		}
		if _, err := io.ReadFull(r, hdr); err != nil {
			return res, fmt.Errorf("wal: read frame header: %w", err)
		}
		bodyLen := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if bodyLen < 9 || bodyLen > maxFrameBytes || bodyLen > size-res.good-frameHeaderSize {
			res.torn, res.tornBytes = true, size-res.good
			return res, nil
		}
		if int64(cap(body)) < bodyLen {
			body = make([]byte, bodyLen)
		}
		body = body[:bodyLen]
		if _, err := io.ReadFull(r, body); err != nil {
			return res, fmt.Errorf("wal: read frame body: %w", err)
		}
		if crc32.ChecksumIEEE(body) != crc {
			res.torn, res.tornBytes = true, size-res.good
			return res, nil
		}
		seq := binary.LittleEndian.Uint64(body[0:8])
		rec, err := decodeRecord(seq, body[8], body[9:])
		if err != nil {
			return res, err
		}
		if err := fn(rec); err != nil {
			return res, err
		}
		res.good += frameHeaderSize + bodyLen
	}
	return res, nil
}
