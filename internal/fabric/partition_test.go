package fabric

import (
	"strings"
	"testing"

	"github.com/hetfed/hetfed/internal/object"
)

func sites(ids ...string) []object.SiteID {
	out := make([]object.SiteID, len(ids))
	for i, id := range ids {
		out[i] = object.SiteID(id)
	}
	return out
}

func TestPartitionCutsBothDirections(t *testing.T) {
	fp := NewFaultPlan().Partition(Partition{A: sites("G", "DB1"), B: sites("DB2", "DB3")})
	for _, pair := range [][2]object.SiteID{
		{"G", "DB2"}, {"DB2", "G"}, {"DB1", "DB3"}, {"DB3", "DB1"},
	} {
		if !fp.LinkDown(pair[0], pair[1]) {
			t.Fatalf("partition did not cut %s→%s", pair[0], pair[1])
		}
		if fp.BeginLinkOp(pair[0], pair[1]) {
			t.Fatalf("BeginLinkOp let %s→%s through a partition", pair[0], pair[1])
		}
		if r := fp.LinkReason(pair[0], pair[1]); !strings.Contains(r, "partition") {
			t.Fatalf("LinkReason(%s→%s) = %q", pair[0], pair[1], r)
		}
	}
	// Same-side and uninvolved traffic flows.
	for _, pair := range [][2]object.SiteID{
		{"G", "DB1"}, {"DB2", "DB3"}, {"G", "DB9"}, {"DB9", "DB2"},
	} {
		if fp.LinkDown(pair[0], pair[1]) || !fp.BeginLinkOp(pair[0], pair[1]) {
			t.Fatalf("partition wrongly cut %s→%s", pair[0], pair[1])
		}
	}
	// Site-level views are unaffected: the processes are alive.
	if fp.Unavailable("DB2") || !fp.BeginOp("DB2") {
		t.Fatalf("partition killed a process")
	}
	fp.HealPartitions()
	if fp.LinkDown("G", "DB2") {
		t.Fatalf("HealPartitions left the link down")
	}
}

func TestPartitionHealAfterOps(t *testing.T) {
	fp := NewFaultPlan().Partition(Partition{A: sites("G"), B: sites("DB1"), HealAfterOps: 3})
	for i := 0; i < 3; i++ {
		if fp.BeginLinkOp("G", "DB1") {
			t.Fatalf("op %d went through before heal budget was spent", i)
		}
	}
	if !fp.BeginLinkOp("G", "DB1") || !fp.BeginLinkOp("DB1", "G") {
		t.Fatalf("partition did not self-heal after its op budget")
	}
}

func TestAsymmetricLinkLoss(t *testing.T) {
	fp := NewFaultPlan().DropLink("G", "DB1")
	if fp.BeginLinkOp("G", "DB1") {
		t.Fatalf("dropped link let traffic through")
	}
	if !fp.BeginLinkOp("DB1", "G") {
		t.Fatalf("DropLink cut the reverse direction too")
	}
	if r := fp.LinkReason("G", "DB1"); !strings.Contains(r, "dropped") {
		t.Fatalf("LinkReason = %q", r)
	}
	fp.HealLink("G", "DB1")
	if !fp.BeginLinkOp("G", "DB1") {
		t.Fatalf("HealLink did not restore the edge")
	}
}

func TestDuplicateAndDelayLink(t *testing.T) {
	fp := NewFaultPlan().DuplicateLink("G", "DB1", 2).DelayLink("G", "DB1", 500)
	if got := fp.TransferCopies("G", "DB1"); got != 1 {
		t.Fatalf("first transfer copies = %d, want 1", got)
	}
	if got := fp.TransferCopies("G", "DB1"); got != 2 {
		t.Fatalf("second transfer copies = %d, want 2 (every 2nd duplicates)", got)
	}
	if got := fp.TransferCopies("DB1", "G"); got != 1 {
		t.Fatalf("reverse direction duplicated: %d", got)
	}
	if d := fp.LinkDelayMicros("G", "DB1"); d != 500 {
		t.Fatalf("LinkDelayMicros = %g", d)
	}
	if d := fp.LinkDelayMicros("DB1", "G"); d != 0 {
		t.Fatalf("reverse direction delayed: %g", d)
	}
	fp.Heal()
	if fp.TransferCopies("G", "DB1") != 1 || fp.LinkDelayMicros("G", "DB1") != 0 {
		t.Fatalf("Heal left link faults behind")
	}
}

func TestNilPlanLinkOps(t *testing.T) {
	var fp *FaultPlan
	if !fp.BeginLinkOp("G", "DB1") || fp.LinkDown("G", "DB1") ||
		fp.TransferCopies("G", "DB1") != 1 || fp.LinkDelayMicros("G", "DB1") != 0 ||
		fp.LinkReason("G", "DB1") != "" {
		t.Fatalf("nil plan injected link faults")
	}
	// Callers without link identity are never partitioned.
	fp = NewFaultPlan().Partition(Partition{A: sites("G"), B: sites("DB1")})
	if !fp.BeginLinkOp("", "DB1") || fp.LinkDown("", "DB1") {
		t.Fatalf("anonymous caller was partitioned")
	}
}

func TestFaultPlanStringWithLinks(t *testing.T) {
	fp := NewFaultPlan().
		Partition(Partition{A: sites("G"), B: sites("DB1", "DB2")}).
		DropLink("DB1", "DB2").
		DuplicateLink("G", "DB1", 3)
	s := fp.String()
	for _, want := range []string{"partition(G|DB1,DB2)", "droplink(DB1→DB2)", "dup(G→DB1,3)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}
