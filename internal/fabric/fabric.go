// Package fabric abstracts the execution environment the query strategies
// run on. Algorithm code is written once against Proc — structured
// spawn/join parallelism, per-site metered cost sinks, and network
// transfers — and executes on two runtimes:
//
//   - Real: goroutines and wall-clock time; cost events are counted.
//   - Sim: the discrete-event simulator of package des; cost events
//     additionally block the calling process for the virtual time they take
//     under the paper's Table 1 rates, with per-site CPU and disk resources
//     and a shared network medium.
//
// Both runtimes account the same byte and operation counts, which is tested
// as an invariant: an execution strategy performs identical work on either
// runtime.
package fabric

import (
	"context"
	"fmt"

	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/object"
)

// Rates are the cost-model parameters of the paper's Table 1.
type Rates struct {
	// DiskPerByte is the average disk access time, µs per byte (T_d).
	DiskPerByte float64
	// NetPerByte is the average network transfer time, µs per byte (T_net).
	NetPerByte float64
	// CPUPerOp is the average CPU processing time, µs per comparison (T_c).
	CPUPerOp float64
}

// DefaultRates are the Table 1 settings: 15 µs/byte disk, 8 µs/byte
// network, 0.5 µs/comparison.
func DefaultRates() Rates {
	return Rates{DiskPerByte: 15, NetPerByte: 8, CPUPerOp: 0.5}
}

// Scale multiplies every rate by f — the shape of a calibrated observation:
// "this site behaves like Table 1, f× slower". f below zero is treated as
// zero.
func (r Rates) Scale(f float64) Rates {
	if f < 0 {
		f = 0
	}
	return Rates{
		DiskPerByte: r.DiskPerByte * f,
		NetPerByte:  r.NetPerByte * f,
		CPUPerOp:    r.CPUPerOp * f,
	}
}

// Work converts event counts into modeled execution time (µs).
func (r Rates) Work(diskBytes, cpuOps, netBytes int64) float64 {
	return float64(diskBytes)*r.DiskPerByte +
		float64(cpuOps)*r.CPUPerOp +
		float64(netBytes)*r.NetPerByte
}

// Handle identifies a spawned task for Wait.
type Handle interface{ isHandle() }

// Proc is the execution context of one logical task (a coordinator step or
// a component-site step).
type Proc interface {
	// Go spawns a concurrent task. Every spawned task must be waited on
	// (directly or transitively) before the root task returns.
	Go(name string, fn func(Proc)) Handle
	// Wait blocks until the given tasks complete.
	Wait(hs ...Handle)
	// Fork runs the functions concurrently and waits for all of them.
	Fork(fns ...func(Proc))
	// Sink returns the cost sink charging CPU and disk work to the given
	// site, bound to this task.
	Sink(site object.SiteID) cost.Sink
	// Transfer charges a network transfer of the given size between sites.
	// On the simulated runtime the task blocks while the shared medium is
	// occupied.
	Transfer(from, to object.SiteID, bytes int)
	// Now is the runtime's clock in microseconds: virtual time on the
	// simulated runtime, time since Run started on the real runtime. Span
	// timestamps taken from Now are comparable within one Run.
	Now() float64
	// Sleep pauses the task for the given number of microseconds: virtual
	// delay on the simulated runtime, wall-clock sleep on the real one.
	// Fault plans use it to model slow sites.
	Sleep(micros float64)
	// Faults returns the runtime's injected fault plan, nil when no faults
	// are configured. Strategy code consults it to skip dead sites and
	// degrade the answer instead of failing.
	Faults() *FaultPlan
	// Context returns the execution's context (context.Background when the
	// runtime was given none). Strategy code checks it at phase boundaries
	// and before per-site work so a cancelled or over-deadline query unwinds
	// instead of running to completion; Sleep honors it, so injected Delay
	// faults cannot outlive the query's budget.
	Context() context.Context
}

// SiteCost is the local work charged to one site during an execution.
type SiteCost struct {
	DiskBytes int64
	CPUOps    int64
}

// Pair is a directed site pair, keying network-transfer accounting.
type Pair struct {
	From object.SiteID
	To   object.SiteID
}

// Metrics summarizes one execution.
type Metrics struct {
	// ResponseMicros is the end-to-end time: virtual makespan on the
	// simulated runtime, wall-clock time on the real runtime.
	ResponseMicros float64
	// TotalBusyMicros is the summed modeled work across all resources —
	// the paper's "total execution time".
	TotalBusyMicros float64
	// Event counts underlying the modeled work.
	DiskBytes int64
	CPUOps    int64
	NetBytes  int64
	// PerSite breaks DiskBytes and CPUOps down by the site they were
	// charged to.
	PerSite map[object.SiteID]SiteCost
	// NetPairs breaks NetBytes down by directed site pair.
	NetPairs map[Pair]int64
}

// Runtime executes a root task and reports metrics.
type Runtime interface {
	// Run executes fn to completion, including all tasks it spawned.
	Run(name string, fn func(Proc)) (Metrics, error)
}

// ContextRuntime is a Runtime that can bind a context consulted by its
// Procs (both Real and Sim implement it). Callers that hold a context
// type-assert against it; a runtime without context support simply runs to
// completion, which stays correct — cancellation is an optimization of how
// fast a doomed query unwinds, never of what it answers.
type ContextRuntime interface {
	Runtime
	// BindContext returns a runtime whose Procs return ctx from Context.
	// The receiver is not mutated: a shared runtime serving concurrent runs
	// hands each caller its own context-bound view.
	BindContext(ctx context.Context) Runtime
}

func forkImpl(p Proc, fns []func(Proc)) {
	hs := make([]Handle, len(fns))
	for i, fn := range fns {
		hs[i] = p.Go(fmt.Sprintf("fork-%d", i), fn)
	}
	p.Wait(hs...)
}
