package fabric

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/hetfed/hetfed/internal/object"
)

// FaultPlan injects deterministic site faults into a runtime: a site can be
// killed outright (unavailable from the start), dropped after serving a
// fixed number of operations (a mid-query crash), or delayed by a fixed
// extra latency per operation (a wedged-but-alive site). Execution
// strategies consult the plan through Proc.Faults and degrade instead of
// failing: a dead site is a coarser missingness mechanism, so the affected
// results stay maybe rather than aborting the query.
//
// The plan is safe for concurrent use (the real runtime evaluates site
// steps on goroutines) and deterministic: the same plan against the same
// workload produces the same degraded answer.
type FaultPlan struct {
	mu      sync.Mutex
	killed  map[object.SiteID]bool
	dropAt  map[object.SiteID]int // ops remaining before the site goes dark
	served  map[object.SiteID]int
	delayUS map[object.SiteID]float64

	// Link-level faults (partition.go). Partitions block traffic between
	// two site sets symmetrically; links are individual directed edges for
	// asymmetric loss; dups/linkDelay model duplication and reorder.
	parts     []*partitionState
	links     map[Pair]bool
	dups      map[Pair]int // duplicate every nth transfer
	dupSeen   map[Pair]int
	linkDelay map[Pair]float64
}

// NewFaultPlan returns an empty plan (no faults).
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{
		killed:    make(map[object.SiteID]bool),
		dropAt:    make(map[object.SiteID]int),
		served:    make(map[object.SiteID]int),
		delayUS:   make(map[object.SiteID]float64),
		links:     make(map[Pair]bool),
		dups:      make(map[Pair]int),
		dupSeen:   make(map[Pair]int),
		linkDelay: make(map[Pair]float64),
	}
}

// Kill marks the site dead for the whole execution.
func (f *FaultPlan) Kill(site object.SiteID) *FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.killed[site] = true
	return f
}

// DropAfter lets the site serve n operations, then kills it: operation
// n+1 and later find the site unavailable.
func (f *FaultPlan) DropAfter(site object.SiteID, n int) *FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropAt[site] = n
	return f
}

// Delay adds the given extra latency (µs) to every operation served by the
// site.
func (f *FaultPlan) Delay(site object.SiteID, micros float64) *FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delayUS[site] = micros
	return f
}

// BeginOp records one operation against the site and reports whether the
// site is still alive to serve it. A nil plan always reports alive.
func (f *FaultPlan) BeginOp(site object.SiteID) bool {
	if f == nil {
		return true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed[site] {
		return false
	}
	if limit, ok := f.dropAt[site]; ok {
		if f.served[site] >= limit {
			return false
		}
		f.served[site]++
	}
	return true
}

// Unavailable reports whether the site is dead right now (killed, or past
// its drop budget) without consuming an operation. A nil plan reports
// false.
func (f *FaultPlan) Unavailable(site object.SiteID) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed[site] {
		return true
	}
	limit, ok := f.dropAt[site]
	return ok && f.served[site] >= limit
}

// DelayMicros returns the extra per-operation latency injected at the site
// (0 without a fault). A nil plan returns 0.
func (f *FaultPlan) DelayMicros(site object.SiteID) float64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delayUS[site]
}

// Reason describes the site's fault for degradation reports.
func (f *FaultPlan) Reason(site object.SiteID) string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case f.killed[site]:
		return "injected fault: site killed"
	case hasKey(f.dropAt, site) && f.served[site] >= f.dropAt[site]:
		return fmt.Sprintf("injected fault: site dropped after %d operations", f.dropAt[site])
	default:
		return ""
	}
}

func hasKey(m map[object.SiteID]int, k object.SiteID) bool {
	_, ok := m[k]
	return ok
}

// String renders the plan for logs and flags.
func (f *FaultPlan) String() string {
	if f == nil {
		return "none"
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var parts []string
	for site := range f.killed {
		parts = append(parts, fmt.Sprintf("kill(%s)", site))
	}
	for site, n := range f.dropAt {
		parts = append(parts, fmt.Sprintf("drop(%s,%d)", site, n))
	}
	for site, d := range f.delayUS {
		parts = append(parts, fmt.Sprintf("delay(%s,%gµs)", site, d))
	}
	for _, p := range f.parts {
		if !p.blocked {
			continue
		}
		parts = append(parts, fmt.Sprintf("partition(%s|%s)", joinSites(p.a), joinSites(p.b)))
	}
	for pair, down := range f.links {
		if down {
			parts = append(parts, fmt.Sprintf("droplink(%s→%s)", pair.From, pair.To))
		}
	}
	for pair, n := range f.dups {
		parts = append(parts, fmt.Sprintf("dup(%s→%s,%d)", pair.From, pair.To, n))
	}
	for pair, d := range f.linkDelay {
		parts = append(parts, fmt.Sprintf("delaylink(%s→%s,%gµs)", pair.From, pair.To, d))
	}
	if len(parts) == 0 {
		return "none"
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
