package fabric

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hetfed/hetfed/internal/object"
)

// Network-level fault injection: partitions, asymmetric link loss, message
// duplication, and link delay. Site faults (fault.go) model a process being
// dead or slow; link faults model the network between live processes —
// partitioned replicas keep serving local work and diverge silently, which
// is the failure mode anti-entropy exists to repair.
//
// Both runtimes consult the same plan. The real runtime checks
// BeginLinkOp in the remote client before dialing and in the server before
// dispatch (covering both directions of an asymmetric cut); the sim runtime
// additionally applies TransferCopies and LinkDelayMicros inside Transfer,
// so duplication and reorder are reproducible in virtual time.

// Partition declares a network partition: traffic between the A side and
// the B side fails in both directions until healed. HealAfterOps > 0 heals
// the partition automatically after that many blocked operations (a
// transient cut); 0 means the partition holds until Heal or HealPartitions.
// Sites in neither set are unaffected; a site in both sets is
// unreachable from everyone in either set, which is almost never what a
// schedule means — keep the sets disjoint.
type Partition struct {
	A            []object.SiteID
	B            []object.SiteID
	HealAfterOps int
}

// partitionState is one active partition's mutable state.
type partitionState struct {
	a, b      map[object.SiteID]bool
	healAfter int // blocked ops until self-heal; 0 = manual heal only
	blocked   bool
}

func (p *partitionState) cuts(from, to object.SiteID) bool {
	if !p.blocked {
		return false
	}
	return (p.a[from] && p.b[to]) || (p.b[from] && p.a[to])
}

// Partition installs a partition into the plan. Multiple partitions
// compose: a link is down if any active partition (or DropLink) cuts it.
func (f *FaultPlan) Partition(p Partition) *FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := &partitionState{
		a:         make(map[object.SiteID]bool, len(p.A)),
		b:         make(map[object.SiteID]bool, len(p.B)),
		healAfter: p.HealAfterOps,
		blocked:   true,
	}
	for _, s := range p.A {
		st.a[s] = true
	}
	for _, s := range p.B {
		st.b[s] = true
	}
	f.parts = append(f.parts, st)
	return f
}

// HealPartitions heals every active partition, leaving individual link
// faults (DropLink, DuplicateLink, DelayLink) in place.
func (f *FaultPlan) HealPartitions() *FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.parts = nil
	return f
}

// Heal removes every network fault: partitions, dropped links, duplication
// and link delays. Site faults (Kill, DropAfter, Delay) are untouched — a
// healed network does not resurrect a dead process.
func (f *FaultPlan) Heal() *FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.parts = nil
	f.links = make(map[Pair]bool)
	f.dups = make(map[Pair]int)
	f.dupSeen = make(map[Pair]int)
	f.linkDelay = make(map[Pair]float64)
	return f
}

// DropLink cuts the single directed edge from→to (asymmetric loss: to can
// still reach from).
func (f *FaultPlan) DropLink(from, to object.SiteID) *FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links[Pair{From: from, To: to}] = true
	return f
}

// HealLink restores a directed edge cut by DropLink. Partitions covering
// the edge keep it down.
func (f *FaultPlan) HealLink(from, to object.SiteID) *FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.links, Pair{From: from, To: to})
	return f
}

// LinkDown reports whether traffic from→to is currently blocked, without
// consuming an operation or advancing self-heal budgets. A nil plan
// reports false, as does an empty from (callers without link identity,
// e.g. an operator CLI, are never partitioned).
func (f *FaultPlan) LinkDown(from, to object.SiteID) bool {
	if f == nil || from == "" || to == "" {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.linkDownLocked(from, to)
}

func (f *FaultPlan) linkDownLocked(from, to object.SiteID) bool {
	if f.links[Pair{From: from, To: to}] {
		return true
	}
	for _, p := range f.parts {
		if p.cuts(from, to) {
			return true
		}
	}
	return false
}

// BeginLinkOp records one attempted operation over the directed edge
// from→to and reports whether it goes through. A blocked attempt charges
// the cutting partition's heal-after budget; when the budget reaches zero
// the partition heals (the transient-cut model: the schedule's next
// operations find the network whole again). A nil plan, or a caller
// without link identity, always goes through.
func (f *FaultPlan) BeginLinkOp(from, to object.SiteID) bool {
	if f == nil || from == "" || to == "" {
		return true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.links[Pair{From: from, To: to}] {
		return false
	}
	ok := true
	for _, p := range f.parts {
		if !p.cuts(from, to) {
			continue
		}
		ok = false
		if p.healAfter > 0 {
			p.healAfter--
			if p.healAfter == 0 {
				p.blocked = false
			}
		}
	}
	return ok
}

// LinkReason describes why the edge from→to is down, for degradation
// reports ("" when it is up).
func (f *FaultPlan) LinkReason(from, to object.SiteID) string {
	if f == nil || from == "" || to == "" {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.links[Pair{From: from, To: to}] {
		return fmt.Sprintf("injected fault: link %s→%s dropped", from, to)
	}
	for _, p := range f.parts {
		if p.cuts(from, to) {
			return fmt.Sprintf("injected fault: partition %s|%s", joinSites(p.a), joinSites(p.b))
		}
	}
	return ""
}

// DuplicateLink duplicates every nth transfer on the directed edge
// (n ≥ 2; n = 1 doubles everything). The sim runtime charges the extra
// copy's bytes and latency, exercising idempotent apply paths.
func (f *FaultPlan) DuplicateLink(from, to object.SiteID, every int) *FaultPlan {
	if every < 1 {
		every = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dups[Pair{From: from, To: to}] = every
	return f
}

// TransferCopies reports how many copies of the next transfer on the edge
// to charge (1 normally, 2 when the duplication fault fires for this
// transfer) and consumes one transfer against the duplication cadence.
func (f *FaultPlan) TransferCopies(from, to object.SiteID) int {
	if f == nil {
		return 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	pair := Pair{From: from, To: to}
	every, ok := f.dups[pair]
	if !ok {
		return 1
	}
	f.dupSeen[pair]++
	if f.dupSeen[pair]%every == 0 {
		return 2
	}
	return 1
}

// DelayLink adds the given extra latency (µs) to every transfer on the
// directed edge. On the sim runtime the sender sleeps before the transfer,
// so deltas on a delayed link arrive after later deltas on fast links —
// deterministic message reorder in virtual time.
func (f *FaultPlan) DelayLink(from, to object.SiteID, micros float64) *FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.linkDelay[Pair{From: from, To: to}] = micros
	return f
}

// LinkDelayMicros returns the extra latency injected on the edge (0
// without a fault). A nil plan returns 0.
func (f *FaultPlan) LinkDelayMicros(from, to object.SiteID) float64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.linkDelay[Pair{From: from, To: to}]
}

func joinSites(set map[object.SiteID]bool) string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, string(s))
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}
