package fabric

import (
	"context"
	"fmt"

	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/des"
	"github.com/hetfed/hetfed/internal/object"
)

// Sim is the simulated runtime: tasks are discrete-event processes, every
// site has a CPU and a disk resource, and all sites share one network
// medium (the paper's observation that "the transfer time gets longer when
// more component databases transfer data simultaneously" follows from the
// shared medium). Virtual time advances per the Table 1 rates.
//
// A Sim value is single-use: create one per execution.
type Sim struct {
	rates  Rates
	faults *FaultPlan
	ctx    context.Context
	sim    *des.Simulator
	cpu    map[object.SiteID]*des.Resource
	disk   map[object.SiteID]*des.Resource
	net    *des.Resource

	// Event counters. Plain (unlocked) fields are safe here: DES processes
	// run one at a time under the simulator's channel handshakes, which
	// establish happens-before edges the race detector accepts.
	diskBytes int64
	cpuOps    int64
	netBytes  int64
	perSite   map[object.SiteID]SiteCost
	pairs     map[Pair]int64
	used      bool
}

var (
	_ Runtime        = (*Sim)(nil)
	_ ContextRuntime = (*Sim)(nil)
)

// NewSim returns a simulated runtime for the given sites (component
// databases plus the global processing site).
func NewSim(rates Rates, sites []object.SiteID) *Sim {
	s := &Sim{
		rates: rates,
		sim:   des.New(),
		cpu:   make(map[object.SiteID]*des.Resource, len(sites)),
		disk:  make(map[object.SiteID]*des.Resource, len(sites)),

		perSite: make(map[object.SiteID]SiteCost),
		pairs:   make(map[Pair]int64),
	}
	for _, site := range sites {
		s.cpu[site] = s.sim.NewResource(string(site) + ".cpu")
		s.disk[site] = s.sim.NewResource(string(site) + ".disk")
	}
	s.net = s.sim.NewResource("net")
	return s
}

// WithFaults installs a fault plan consulted by strategy code through
// Proc.Faults. Call before Run.
func (s *Sim) WithFaults(fp *FaultPlan) *Sim {
	s.faults = fp
	return s
}

// WithContext binds a context consulted by Proc.Context. The simulator runs
// in virtual time, so cancellation is checked (Sleep skips its delay and
// strategy code unwinds at its next checkpoint) rather than interrupting a
// running event. Call before Run.
func (s *Sim) WithContext(ctx context.Context) *Sim {
	s.ctx = ctx
	return s
}

// BindContext implements ContextRuntime. A Sim is single-use and never
// shared, so binding in place is safe.
func (s *Sim) BindContext(ctx context.Context) Runtime { return s.WithContext(ctx) }

// Run implements Runtime.
func (s *Sim) Run(name string, fn func(Proc)) (Metrics, error) {
	if s.used {
		return Metrics{}, fmt.Errorf("fabric: Sim is single-use; create a new one per Run")
	}
	s.used = true
	s.sim.Spawn(name, func(p *des.Proc) {
		fn(&simProc{rt: s, p: p})
	})
	if err := s.sim.Run(); err != nil {
		return Metrics{}, err
	}
	return Metrics{
		ResponseMicros:  s.sim.Now(),
		TotalBusyMicros: s.sim.TotalBusy(),
		DiskBytes:       s.diskBytes,
		CPUOps:          s.cpuOps,
		NetBytes:        s.netBytes,
		PerSite:         s.perSite,
		NetPairs:        s.pairs,
	}, nil
}

// BusyBySite returns per-resource busy time grouped by site, available
// after Run.
func (s *Sim) BusyBySite() map[string]float64 {
	return des.BusyByPrefix(s.sim.Resources())
}

type simProc struct {
	rt *Sim
	p  *des.Proc
}

var _ Proc = (*simProc)(nil)

type simHandle struct{ p *des.Proc }

func (*simHandle) isHandle() {}

// Go implements Proc.
func (sp *simProc) Go(name string, fn func(Proc)) Handle {
	child := sp.p.Spawn(name, func(p *des.Proc) {
		fn(&simProc{rt: sp.rt, p: p})
	})
	return &simHandle{p: child}
}

// Wait implements Proc.
func (sp *simProc) Wait(hs ...Handle) {
	procs := make([]*des.Proc, len(hs))
	for i, h := range hs {
		sh, ok := h.(*simHandle)
		if !ok {
			panic("fabric: foreign handle passed to sim runtime")
		}
		procs[i] = sh.p
	}
	sp.p.Join(procs...)
}

// Fork implements Proc.
func (sp *simProc) Fork(fns ...func(Proc)) { forkImpl(sp, fns) }

// Sink implements Proc.
func (sp *simProc) Sink(site object.SiteID) cost.Sink {
	cpu, okC := sp.rt.cpu[site]
	disk, okD := sp.rt.disk[site]
	if !okC || !okD {
		panic(fmt.Sprintf("fabric: unregistered site %s", site))
	}
	return &simSink{rt: sp.rt, p: sp.p, site: site, cpu: cpu, disk: disk}
}

// Transfer implements Proc. Link faults apply here: a delayed link sleeps
// the sender first (so its payloads land after later sends on fast links —
// reorder in virtual time), and a duplicating link charges the transfer
// twice, modeling the retransmit the receiver must absorb idempotently.
func (sp *simProc) Transfer(from, to object.SiteID, bytes int) {
	if bytes < 0 {
		panic(fmt.Sprintf("fabric: negative transfer %d", bytes))
	}
	if d := sp.rt.faults.LinkDelayMicros(from, to); d > 0 {
		sp.Sleep(d)
	}
	copies := sp.rt.faults.TransferCopies(from, to)
	for i := 0; i < copies; i++ {
		sp.rt.netBytes += int64(bytes)
		sp.rt.pairs[Pair{From: from, To: to}] += int64(bytes)
		sp.p.Use(sp.rt.net, float64(bytes)*sp.rt.rates.NetPerByte)
	}
}

// Now implements Proc: the current virtual time.
func (sp *simProc) Now() float64 { return sp.p.Now() }

// Sleep implements Proc: a virtual-time delay, skipped once the runtime's
// context is done (a cancelled query stops accumulating injected Delay
// faults in virtual time).
func (sp *simProc) Sleep(micros float64) {
	if micros <= 0 {
		return
	}
	if ctx := sp.rt.ctx; ctx != nil && ctx.Err() != nil {
		return
	}
	sp.p.Delay(micros)
}

// Faults implements Proc.
func (sp *simProc) Faults() *FaultPlan { return sp.rt.faults }

// Context implements Proc.
func (sp *simProc) Context() context.Context {
	if sp.rt.ctx != nil {
		return sp.rt.ctx
	}
	return context.Background()
}

// simSink charges CPU and disk events as virtual time on the site's
// resources. It is bound to one process and must not be shared.
type simSink struct {
	rt   *Sim
	p    *des.Proc
	site object.SiteID
	cpu  *des.Resource
	disk *des.Resource
}

var _ cost.Sink = (*simSink)(nil)

// DiskRead implements cost.Sink.
func (s *simSink) DiskRead(bytes int) {
	s.rt.diskBytes += int64(bytes)
	sc := s.rt.perSite[s.site]
	sc.DiskBytes += int64(bytes)
	s.rt.perSite[s.site] = sc
	s.p.Use(s.disk, float64(bytes)*s.rt.rates.DiskPerByte)
}

// CPU implements cost.Sink.
func (s *simSink) CPU(ops int) {
	s.rt.cpuOps += int64(ops)
	sc := s.rt.perSite[s.site]
	sc.CPUOps += int64(ops)
	s.rt.perSite[s.site] = sc
	s.p.Use(s.cpu, float64(ops)*s.rt.rates.CPUPerOp)
}
