package fabric

import (
	"fmt"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/object"
)

// Real is the goroutine-backed runtime: spawned tasks are goroutines, cost
// events are counted atomically, and the response time is wall-clock. Use
// it for functional execution (examples, correctness tests, the TCP
// deployment); use Sim for the paper's timing experiments.
type Real struct {
	rates  Rates
	faults *FaultPlan

	mu    sync.Mutex
	sinks map[object.SiteID]*cost.Counter
	net   int64
	pairs map[Pair]int64
	start time.Time
	err   error
}

var _ Runtime = (*Real)(nil)

// NewReal returns a real runtime with the given cost rates (used only to
// convert counts into modeled work for Metrics).
func NewReal(rates Rates) *Real {
	return &Real{rates: rates, sinks: make(map[object.SiteID]*cost.Counter)}
}

// WithFaults installs a fault plan consulted by strategy code through
// Proc.Faults. Call before Run.
func (r *Real) WithFaults(fp *FaultPlan) *Real {
	r.faults = fp
	return r
}

// Run implements Runtime.
func (r *Real) Run(name string, fn func(Proc)) (Metrics, error) {
	r.mu.Lock()
	r.sinks = make(map[object.SiteID]*cost.Counter)
	r.net = 0
	r.pairs = make(map[Pair]int64)
	r.start = time.Now()
	r.err = nil
	r.mu.Unlock()

	start := time.Now()
	var wg sync.WaitGroup
	root := &realProc{rt: r, wg: &wg}
	wg.Add(1)
	go root.exec(name, fn)
	wg.Wait()
	elapsed := time.Since(start)

	r.mu.Lock()
	defer r.mu.Unlock()
	m := Metrics{
		ResponseMicros: float64(elapsed.Nanoseconds()) / 1e3,
		PerSite:        make(map[object.SiteID]SiteCost, len(r.sinks)),
		NetPairs:       make(map[Pair]int64, len(r.pairs)),
	}
	for site, c := range r.sinks {
		m.DiskBytes += c.DiskBytes()
		m.CPUOps += c.CPUOps()
		m.PerSite[site] = SiteCost{DiskBytes: c.DiskBytes(), CPUOps: c.CPUOps()}
	}
	m.NetBytes = r.net
	for pair, bytes := range r.pairs {
		m.NetPairs[pair] = bytes
	}
	m.TotalBusyMicros = r.rates.Work(m.DiskBytes, m.CPUOps, m.NetBytes)
	return m, r.err
}

func (r *Real) sink(site object.SiteID) *cost.Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.sinks[site]
	if c == nil {
		c = &cost.Counter{}
		r.sinks[site] = c
	}
	return c
}

func (r *Real) fail(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.err = err
	}
}

type realProc struct {
	rt *Real
	wg *sync.WaitGroup
}

var _ Proc = (*realProc)(nil)

type realHandle struct{ done chan struct{} }

func (*realHandle) isHandle() {}

func (p *realProc) exec(name string, fn func(Proc)) {
	defer p.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			p.rt.fail(fmt.Errorf("fabric: task %s panicked: %v", name, rec))
		}
	}()
	fn(p)
}

// Go implements Proc.
func (p *realProc) Go(name string, fn func(Proc)) Handle {
	h := &realHandle{done: make(chan struct{})}
	child := &realProc{rt: p.rt, wg: p.wg}
	p.wg.Add(1)
	go func() {
		defer close(h.done)
		child.exec(name, fn)
	}()
	return h
}

// Wait implements Proc.
func (p *realProc) Wait(hs ...Handle) {
	for _, h := range hs {
		rh, ok := h.(*realHandle)
		if !ok {
			panic("fabric: foreign handle passed to real runtime")
		}
		<-rh.done
	}
}

// Fork implements Proc.
func (p *realProc) Fork(fns ...func(Proc)) { forkImpl(p, fns) }

// Sink implements Proc.
func (p *realProc) Sink(site object.SiteID) cost.Sink { return p.rt.sink(site) }

// Transfer implements Proc.
func (p *realProc) Transfer(from, to object.SiteID, bytes int) {
	p.rt.mu.Lock()
	p.rt.net += int64(bytes)
	p.rt.pairs[Pair{From: from, To: to}] += int64(bytes)
	p.rt.mu.Unlock()
}

// Now implements Proc: wall-clock microseconds since Run started.
func (p *realProc) Now() float64 {
	p.rt.mu.Lock()
	start := p.rt.start
	p.rt.mu.Unlock()
	return float64(time.Since(start).Nanoseconds()) / 1e3
}

// Sleep implements Proc: a wall-clock sleep.
func (p *realProc) Sleep(micros float64) {
	if micros > 0 {
		time.Sleep(time.Duration(micros * float64(time.Microsecond)))
	}
}

// Faults implements Proc.
func (p *realProc) Faults() *FaultPlan { return p.rt.faults }
