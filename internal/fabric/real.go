package fabric

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/object"
)

// Real is the goroutine-backed runtime: spawned tasks are goroutines, cost
// events are counted atomically, and the response time is wall-clock. Use
// it for functional execution (examples, correctness tests, the TCP
// deployment); use Sim for the paper's timing experiments.
//
// A single Real may be shared by concurrent Run calls: all per-run state
// (cost sinks, network counters, the start time) lives in a run-scoped
// struct, so overlapping queries account their work independently.
type Real struct {
	rates  Rates
	faults *FaultPlan
	ctx    context.Context
}

var (
	_ Runtime        = (*Real)(nil)
	_ ContextRuntime = (*Real)(nil)
)

// NewReal returns a real runtime with the given cost rates (used only to
// convert counts into modeled work for Metrics).
func NewReal(rates Rates) *Real {
	return &Real{rates: rates}
}

// WithFaults installs a fault plan consulted by strategy code through
// Proc.Faults. Call before Run.
func (r *Real) WithFaults(fp *FaultPlan) *Real {
	r.faults = fp
	return r
}

// WithContext returns a copy of the runtime bound to ctx, consulted by
// Proc.Context and honored by Sleep (a cancelled context cuts injected
// delays short). The receiver is left untouched so a Real shared by
// concurrent Runs can bind a different context per query.
func (r *Real) WithContext(ctx context.Context) *Real {
	r2 := *r
	r2.ctx = ctx
	return &r2
}

// BindContext implements ContextRuntime.
func (r *Real) BindContext(ctx context.Context) Runtime { return r.WithContext(ctx) }

// realRun holds the state of one Run invocation. Concurrent Runs over a
// shared Real each get their own realRun, so their sinks, byte counters
// and clocks never interleave.
type realRun struct {
	rt    *Real
	mu    sync.Mutex
	sinks map[object.SiteID]*cost.Counter
	net   int64
	pairs map[Pair]int64
	start time.Time
	err   error
}

// Run implements Runtime.
func (r *Real) Run(name string, fn func(Proc)) (Metrics, error) {
	run := &realRun{
		rt:    r,
		sinks: make(map[object.SiteID]*cost.Counter),
		pairs: make(map[Pair]int64),
		start: time.Now(),
	}

	var wg sync.WaitGroup
	root := &realProc{run: run, wg: &wg}
	wg.Add(1)
	go root.exec(name, fn)
	wg.Wait()
	elapsed := time.Since(run.start)

	run.mu.Lock()
	defer run.mu.Unlock()
	m := Metrics{
		ResponseMicros: float64(elapsed.Nanoseconds()) / 1e3,
		PerSite:        make(map[object.SiteID]SiteCost, len(run.sinks)),
		NetPairs:       make(map[Pair]int64, len(run.pairs)),
	}
	for site, c := range run.sinks {
		m.DiskBytes += c.DiskBytes()
		m.CPUOps += c.CPUOps()
		m.PerSite[site] = SiteCost{DiskBytes: c.DiskBytes(), CPUOps: c.CPUOps()}
	}
	m.NetBytes = run.net
	for pair, bytes := range run.pairs {
		m.NetPairs[pair] = bytes
	}
	m.TotalBusyMicros = r.rates.Work(m.DiskBytes, m.CPUOps, m.NetBytes)
	return m, run.err
}

func (run *realRun) sink(site object.SiteID) *cost.Counter {
	run.mu.Lock()
	defer run.mu.Unlock()
	c := run.sinks[site]
	if c == nil {
		c = &cost.Counter{}
		run.sinks[site] = c
	}
	return c
}

func (run *realRun) fail(err error) {
	run.mu.Lock()
	defer run.mu.Unlock()
	if run.err == nil {
		run.err = err
	}
}

type realProc struct {
	run *realRun
	wg  *sync.WaitGroup
}

var _ Proc = (*realProc)(nil)

type realHandle struct{ done chan struct{} }

func (*realHandle) isHandle() {}

func (p *realProc) exec(name string, fn func(Proc)) {
	defer p.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			p.run.fail(fmt.Errorf("fabric: task %s panicked: %v", name, rec))
		}
	}()
	fn(p)
}

// Go implements Proc.
func (p *realProc) Go(name string, fn func(Proc)) Handle {
	h := &realHandle{done: make(chan struct{})}
	child := &realProc{run: p.run, wg: p.wg}
	p.wg.Add(1)
	go func() {
		defer close(h.done)
		child.exec(name, fn)
	}()
	return h
}

// Wait implements Proc.
func (p *realProc) Wait(hs ...Handle) {
	for _, h := range hs {
		rh, ok := h.(*realHandle)
		if !ok {
			panic("fabric: foreign handle passed to real runtime")
		}
		<-rh.done
	}
}

// Fork implements Proc.
func (p *realProc) Fork(fns ...func(Proc)) { forkImpl(p, fns) }

// Sink implements Proc.
func (p *realProc) Sink(site object.SiteID) cost.Sink { return p.run.sink(site) }

// Transfer implements Proc. A duplicating link fault charges the transfer
// twice (the retransmit the receiver absorbs); link delay is injected by
// the remote client on this runtime, not here, so it shows up in measured
// wall-clock latency rather than as a second accounting entry.
func (p *realProc) Transfer(from, to object.SiteID, bytes int) {
	copies := p.run.rt.faults.TransferCopies(from, to)
	p.run.mu.Lock()
	for i := 0; i < copies; i++ {
		p.run.net += int64(bytes)
		p.run.pairs[Pair{From: from, To: to}] += int64(bytes)
	}
	p.run.mu.Unlock()
}

// Now implements Proc: wall-clock microseconds since Run started.
func (p *realProc) Now() float64 {
	return float64(time.Since(p.run.start).Nanoseconds()) / 1e3
}

// Sleep implements Proc: a wall-clock sleep, cut short when the runtime's
// context is done — a wedged (Delay-faulted) site step must not outlive the
// query's deadline or cancellation.
func (p *realProc) Sleep(micros float64) {
	if micros <= 0 {
		return
	}
	d := time.Duration(micros * float64(time.Microsecond))
	ctx := p.run.rt.ctx
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Faults implements Proc.
func (p *realProc) Faults() *FaultPlan { return p.run.rt.faults }

// Context implements Proc.
func (p *realProc) Context() context.Context {
	if p.run.rt.ctx != nil {
		return p.run.rt.ctx
	}
	return context.Background()
}
