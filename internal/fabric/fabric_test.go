package fabric

import (
	"strings"
	"sync/atomic"
	"testing"

	"github.com/hetfed/hetfed/internal/object"
)

var testSites = []object.SiteID{"A", "B", "G"}

func TestRatesWork(t *testing.T) {
	r := DefaultRates()
	if r.DiskPerByte != 15 || r.NetPerByte != 8 || r.CPUPerOp != 0.5 {
		t.Errorf("DefaultRates = %+v", r)
	}
	if got := r.Work(10, 4, 2); got != 150+2+16 {
		t.Errorf("Work = %g", got)
	}
}

// runBoth executes the same task graph on both runtimes and returns the
// metrics pair.
func runBoth(t *testing.T, fn func(Proc)) (Metrics, Metrics) {
	t.Helper()
	mReal, err := NewReal(DefaultRates()).Run("t", fn)
	if err != nil {
		t.Fatalf("real: %v", err)
	}
	mSim, err := NewSim(DefaultRates(), testSites).Run("t", fn)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return mReal, mSim
}

func TestWorkParity(t *testing.T) {
	fn := func(p Proc) {
		p.Fork(
			func(p Proc) {
				p.Sink("A").DiskRead(100)
				p.Sink("A").CPU(10)
				p.Transfer("A", "G", 50)
			},
			func(p Proc) {
				p.Sink("B").DiskRead(200)
				p.Transfer("B", "G", 70)
			},
		)
		p.Sink("G").CPU(5)
	}
	mReal, mSim := runBoth(t, fn)
	if mReal.DiskBytes != 300 || mReal.CPUOps != 15 || mReal.NetBytes != 120 {
		t.Errorf("real metrics = %+v", mReal)
	}
	if mSim.DiskBytes != mReal.DiskBytes || mSim.CPUOps != mReal.CPUOps ||
		mSim.NetBytes != mReal.NetBytes {
		t.Errorf("parity broken: %+v vs %+v", mReal, mSim)
	}
	if mReal.TotalBusyMicros != mSim.TotalBusyMicros {
		t.Errorf("modeled work differs: %g vs %g", mReal.TotalBusyMicros, mSim.TotalBusyMicros)
	}
}

func TestSimParallelismShortensResponse(t *testing.T) {
	serial := func(p Proc) {
		p.Sink("A").DiskRead(1000)
		p.Sink("B").DiskRead(1000)
	}
	parallel := func(p Proc) {
		p.Fork(
			func(p Proc) { p.Sink("A").DiskRead(1000) },
			func(p Proc) { p.Sink("B").DiskRead(1000) },
		)
	}
	mSerial, err := NewSim(DefaultRates(), testSites).Run("s", serial)
	if err != nil {
		t.Fatal(err)
	}
	mParallel, err := NewSim(DefaultRates(), testSites).Run("p", parallel)
	if err != nil {
		t.Fatal(err)
	}
	if mSerial.ResponseMicros != 30000 {
		t.Errorf("serial response = %g", mSerial.ResponseMicros)
	}
	if mParallel.ResponseMicros != 15000 {
		t.Errorf("parallel response = %g", mParallel.ResponseMicros)
	}
	if mSerial.TotalBusyMicros != mParallel.TotalBusyMicros {
		t.Error("total work should not depend on parallelism")
	}
}

func TestSimNetworkContention(t *testing.T) {
	m, err := NewSim(DefaultRates(), testSites).Run("n", func(p Proc) {
		p.Fork(
			func(p Proc) { p.Transfer("A", "G", 100) },
			func(p Proc) { p.Transfer("B", "G", 100) },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The shared medium serializes the transfers: 2 × 100 B × 8 µs.
	if m.ResponseMicros != 1600 {
		t.Errorf("response = %g, want 1600", m.ResponseMicros)
	}
}

func TestGoAndWait(t *testing.T) {
	var order atomic.Int32
	_, err := NewSim(DefaultRates(), testSites).Run("g", func(p Proc) {
		h := p.Go("child", func(p Proc) {
			p.Sink("A").CPU(10) // 5 µs
			order.CompareAndSwap(0, 1)
		})
		p.Sink("B").CPU(2) // 1 µs: finishes before the child
		p.Wait(h)
		order.CompareAndSwap(1, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if order.Load() != 2 {
		t.Errorf("order = %d", order.Load())
	}
}

func TestRealPanicPropagates(t *testing.T) {
	_, err := NewReal(DefaultRates()).Run("boom", func(p Proc) {
		p.Fork(func(Proc) { panic("child exploded") })
	})
	if err == nil || !strings.Contains(err.Error(), "child exploded") {
		t.Errorf("err = %v", err)
	}
}

func TestSimPanicPropagates(t *testing.T) {
	_, err := NewSim(DefaultRates(), testSites).Run("boom", func(p Proc) {
		panic("sim exploded")
	})
	if err == nil || !strings.Contains(err.Error(), "sim exploded") {
		t.Errorf("err = %v", err)
	}
}

func TestSimUnregisteredSite(t *testing.T) {
	_, err := NewSim(DefaultRates(), testSites).Run("bad", func(p Proc) {
		p.Sink("NOPE").CPU(1)
	})
	if err == nil || !strings.Contains(err.Error(), "unregistered site") {
		t.Errorf("err = %v", err)
	}
}

func TestSimSingleUse(t *testing.T) {
	s := NewSim(DefaultRates(), testSites)
	if _, err := s.Run("a", func(Proc) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("b", func(Proc) {}); err == nil {
		t.Error("second Run accepted")
	}
}

func TestSimBusyBySite(t *testing.T) {
	s := NewSim(DefaultRates(), testSites)
	if _, err := s.Run("b", func(p Proc) {
		p.Sink("A").CPU(2)      // 1 µs
		p.Sink("A").DiskRead(1) // 15 µs
		p.Transfer("A", "G", 1) // 8 µs
	}); err != nil {
		t.Fatal(err)
	}
	by := s.BusyBySite()
	if by["A"] != 16 {
		t.Errorf("A busy = %g", by["A"])
	}
	if by["net"] != 8 {
		t.Errorf("net busy = %g", by["net"])
	}
}

func TestRealRuntimeIsReusable(t *testing.T) {
	rt := NewReal(DefaultRates())
	for i := 0; i < 2; i++ {
		m, err := rt.Run("r", func(p Proc) { p.Sink("A").CPU(1) })
		if err != nil {
			t.Fatal(err)
		}
		if m.CPUOps != 1 {
			t.Errorf("run %d: CPUOps = %d (state leaked)", i, m.CPUOps)
		}
	}
}
