// Package fedfile loads and saves federations as JSON documents, so the
// query tools can run against user-defined data rather than only the
// built-in fixtures. A document declares each component database's classes
// (with entity keys), its objects, and the class correspondences that form
// the global schema; the GOid mapping tables are derived by key-based
// isomerism identification on load.
//
// Value encoding: JSON numbers become ints when integral (floats
// otherwise), strings and booleans map directly, {"$ref": "loid"} is a
// local object reference, arrays are multi-valued attributes, and null (or
// omission) is missing data.
package fedfile

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/store"
)

// Federation is a loaded, validated federation ready for an exec.Engine.
type Federation struct {
	Schemas   map[object.SiteID]*schema.Schema
	Global    *schema.Global
	Databases map[object.SiteID]*store.Database
	Tables    *gmap.Tables
}

// Document is the JSON shape.
type Document struct {
	Sites  map[string]SiteDoc `json:"sites"`
	Global []GlobalClassDoc   `json:"global"`
}

// SiteDoc describes one component database.
type SiteDoc struct {
	Classes map[string]ClassDoc `json:"classes"`
	Objects []ObjectDoc         `json:"objects"`
}

// ClassDoc describes one class.
type ClassDoc struct {
	Attrs []AttrDoc `json:"attrs"`
	Key   []string  `json:"key,omitempty"`
}

// AttrDoc describes one attribute: either a primitive type ("int", "float",
// "string", "bool") or a referenced class.
type AttrDoc struct {
	Name  string `json:"name"`
	Type  string `json:"type,omitempty"`
	Class string `json:"class,omitempty"`
	Multi bool   `json:"multi,omitempty"`
}

// ObjectDoc describes one stored object.
type ObjectDoc struct {
	ID    string                     `json:"id"`
	Class string                     `json:"class"`
	Attrs map[string]json.RawMessage `json:"attrs"`
}

// GlobalClassDoc declares one global class's constituents.
type GlobalClassDoc struct {
	Class   string           `json:"class"`
	Members []ConstituentDoc `json:"members"`
}

// ConstituentDoc names one constituent class.
type ConstituentDoc struct {
	Site  string `json:"site"`
	Class string `json:"class"`
}

// Load reads and parses a federation document from a file.
func Load(path string) (*Federation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fedfile: %w", err)
	}
	return Parse(data)
}

// Parse builds a federation from a JSON document: schemas, integration,
// objects (with referential-integrity checking) and derived mapping tables.
func Parse(data []byte) (*Federation, error) {
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("fedfile: parse: %w", err)
	}
	if len(doc.Sites) == 0 {
		return nil, fmt.Errorf("fedfile: no sites declared")
	}
	if len(doc.Global) == 0 {
		return nil, fmt.Errorf("fedfile: no global classes declared")
	}

	fed := &Federation{
		Schemas:   make(map[object.SiteID]*schema.Schema, len(doc.Sites)),
		Databases: make(map[object.SiteID]*store.Database, len(doc.Sites)),
	}

	siteNames := make([]string, 0, len(doc.Sites))
	for name := range doc.Sites {
		siteNames = append(siteNames, name)
	}
	sort.Strings(siteNames)

	for _, name := range siteNames {
		site := object.SiteID(name)
		siteDoc := doc.Sites[name]
		s := schema.NewSchema(site)

		classNames := make([]string, 0, len(siteDoc.Classes))
		for cn := range siteDoc.Classes {
			classNames = append(classNames, cn)
		}
		sort.Strings(classNames)
		for _, cn := range classNames {
			cls, err := buildClass(cn, siteDoc.Classes[cn])
			if err != nil {
				return nil, fmt.Errorf("fedfile: site %s: %w", name, err)
			}
			if err := s.AddClass(cls); err != nil {
				return nil, fmt.Errorf("fedfile: %w", err)
			}
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("fedfile: site %s: %w", name, err)
		}
		fed.Schemas[site] = s

		db, err := store.NewDatabase(s)
		if err != nil {
			return nil, fmt.Errorf("fedfile: %w", err)
		}
		for _, od := range siteDoc.Objects {
			o, err := buildObject(od)
			if err != nil {
				return nil, fmt.Errorf("fedfile: site %s object %s: %w", name, od.ID, err)
			}
			if err := db.Insert(o); err != nil {
				return nil, fmt.Errorf("fedfile: site %s: %w", name, err)
			}
		}
		if err := db.CheckRefs(); err != nil {
			return nil, fmt.Errorf("fedfile: site %s: %w", name, err)
		}
		fed.Databases[site] = db
	}

	corrs := make([]schema.Correspondence, len(doc.Global))
	for i, g := range doc.Global {
		corrs[i] = schema.Correspondence{GlobalClass: g.Class}
		for _, m := range g.Members {
			corrs[i].Members = append(corrs[i].Members,
				schema.Constituent{Site: object.SiteID(m.Site), Class: m.Class})
		}
	}
	global, err := schema.Integrate(fed.Schemas, corrs)
	if err != nil {
		return nil, fmt.Errorf("fedfile: %w", err)
	}
	fed.Global = global

	tables, err := isomer.Identify(global, fed.Databases)
	if err != nil {
		return nil, fmt.Errorf("fedfile: %w", err)
	}
	fed.Tables = tables
	return fed, nil
}

func buildClass(name string, doc ClassDoc) (*schema.Class, error) {
	attrs := make([]schema.Attribute, 0, len(doc.Attrs))
	for _, a := range doc.Attrs {
		switch {
		case a.Class != "" && a.Type != "":
			return nil, fmt.Errorf("class %s attribute %s: both type and class given", name, a.Name)
		case a.Class != "":
			attrs = append(attrs, schema.Attribute{Name: a.Name, Domain: a.Class, MultiValued: a.Multi})
		default:
			kind, err := kindOf(a.Type)
			if err != nil {
				return nil, fmt.Errorf("class %s attribute %s: %w", name, a.Name, err)
			}
			attrs = append(attrs, schema.Attribute{Name: a.Name, Prim: kind, MultiValued: a.Multi})
		}
	}
	return schema.NewClass(name, attrs, doc.Key...)
}

func kindOf(t string) (object.Kind, error) {
	switch t {
	case "int":
		return object.KindInt, nil
	case "float":
		return object.KindFloat, nil
	case "string":
		return object.KindString, nil
	case "bool":
		return object.KindBool, nil
	default:
		return 0, fmt.Errorf("unknown primitive type %q", t)
	}
}

func buildObject(doc ObjectDoc) (*object.Object, error) {
	attrs := make(map[string]object.Value, len(doc.Attrs))
	for name, raw := range doc.Attrs {
		v, err := decodeValue(raw)
		if err != nil {
			return nil, fmt.Errorf("attribute %s: %w", name, err)
		}
		if v.Kind() != 0 {
			attrs[name] = v
		}
	}
	return object.New(object.LOid(doc.ID), doc.Class, attrs), nil
}

// decodeValue maps a JSON value to an object value. It returns the zero
// Value for JSON null (missing data).
func decodeValue(raw json.RawMessage) (object.Value, error) {
	var any interface{}
	if err := json.Unmarshal(raw, &any); err != nil {
		return object.Value{}, err
	}
	return fromAny(any)
}

func fromAny(any interface{}) (object.Value, error) {
	switch v := any.(type) {
	case nil:
		return object.Value{}, nil
	case bool:
		return object.Bool(v), nil
	case float64:
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			return object.Int(int64(v)), nil
		}
		return object.Float(v), nil
	case string:
		return object.Str(v), nil
	case map[string]interface{}:
		ref, ok := v["$ref"].(string)
		if !ok || len(v) != 1 {
			return object.Value{}, fmt.Errorf("objects must be {\"$ref\": \"loid\"}, got %v", v)
		}
		return object.Ref(object.LOid(ref)), nil
	case []interface{}:
		elems := make([]object.Value, 0, len(v))
		for _, e := range v {
			ev, err := fromAny(e)
			if err != nil {
				return object.Value{}, err
			}
			if ev.Kind() != 0 {
				elems = append(elems, ev)
			}
		}
		return object.List(elems...), nil
	default:
		return object.Value{}, fmt.Errorf("unsupported JSON value %T", any)
	}
}

// Export renders a federation back into the document form (inverse of
// Parse, up to attribute ordering). Mapping tables are not exported — they
// are re-derived on load.
func Export(schemas map[object.SiteID]*schema.Schema, global *schema.Global,
	dbs map[object.SiteID]*store.Database) ([]byte, error) {
	doc := Document{Sites: make(map[string]SiteDoc, len(schemas))}

	for site, s := range schemas {
		sd := SiteDoc{Classes: make(map[string]ClassDoc)}
		for _, cn := range s.ClassNames() {
			cls := s.Class(cn)
			cd := ClassDoc{Key: cls.Key}
			for _, a := range cls.Attrs {
				ad := AttrDoc{Name: a.Name, Multi: a.MultiValued}
				if a.IsComplex() {
					ad.Class = a.Domain
				} else {
					ad.Type = a.Prim.String()
				}
				cd.Attrs = append(cd.Attrs, ad)
			}
			sd.Classes[cn] = cd

			var exportErr error
			dbs[site].Extent(cn).Scan(func(o *object.Object) bool {
				od := ObjectDoc{ID: string(o.LOid), Class: o.Class,
					Attrs: make(map[string]json.RawMessage, len(o.Attrs))}
				for _, name := range o.AttrNames() {
					raw, err := encodeValue(o.Attrs[name])
					if err != nil {
						exportErr = err
						return false
					}
					od.Attrs[name] = raw
				}
				sd.Objects = append(sd.Objects, od)
				return true
			})
			if exportErr != nil {
				return nil, fmt.Errorf("fedfile: export: %w", exportErr)
			}
		}
		doc.Sites[string(site)] = sd
	}

	for _, gn := range global.ClassNames() {
		gc := global.Class(gn)
		gd := GlobalClassDoc{Class: gn}
		for _, site := range gc.Sites() {
			gd.Members = append(gd.Members, ConstituentDoc{
				Site: string(site), Class: gc.Constituents[site]})
		}
		doc.Global = append(doc.Global, gd)
	}
	return json.MarshalIndent(doc, "", "  ")
}

func encodeValue(v object.Value) (json.RawMessage, error) {
	switch v.Kind() {
	case object.KindInt:
		return json.Marshal(v.Int64())
	case object.KindFloat:
		return json.Marshal(v.Float64())
	case object.KindString:
		return json.Marshal(v.Text())
	case object.KindBool:
		return json.Marshal(v.BoolVal())
	case object.KindRef:
		return json.Marshal(map[string]string{"$ref": string(v.RefLOid())})
	case object.KindList:
		parts := make([]json.RawMessage, 0, len(v.Elems()))
		for _, e := range v.Elems() {
			raw, err := encodeValue(e)
			if err != nil {
				return nil, err
			}
			parts = append(parts, raw)
		}
		return json.Marshal(parts)
	default:
		return nil, fmt.Errorf("unencodable value kind %s", v.Kind())
	}
}
