package fedfile

import (
	"strings"
	"testing"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/school"
)

const sampleDoc = `{
  "sites": {
    "A": {
      "classes": {
        "Book": {
          "attrs": [
            {"name": "isbn", "type": "int"},
            {"name": "title", "type": "string"},
            {"name": "pages", "type": "int"},
            {"name": "author", "class": "Author"},
            {"name": "tags", "type": "string", "multi": true}
          ],
          "key": ["isbn"]
        },
        "Author": {
          "attrs": [{"name": "name", "type": "string"}],
          "key": ["name"]
        }
      },
      "objects": [
        {"id": "a1", "class": "Author", "attrs": {"name": "Le Guin"}},
        {"id": "b1", "class": "Book", "attrs": {
          "isbn": 1, "title": "Dispossessed", "pages": 341,
          "author": {"$ref": "a1"}, "tags": ["sf", "classic"]
        }},
        {"id": "b2", "class": "Book", "attrs": {
          "isbn": 2, "title": "Unknown Pages", "pages": null,
          "author": {"$ref": "a1"}
        }}
      ]
    },
    "B": {
      "classes": {
        "Book": {
          "attrs": [
            {"name": "isbn", "type": "int"},
            {"name": "title", "type": "string"},
            {"name": "rating", "type": "float"}
          ],
          "key": ["isbn"]
        }
      },
      "objects": [
        {"id": "x2", "class": "Book", "attrs": {"isbn": 2, "title": "Unknown Pages", "rating": 4.5}}
      ]
    }
  },
  "global": [
    {"class": "Book", "members": [
      {"site": "A", "class": "Book"}, {"site": "B", "class": "Book"}
    ]},
    {"class": "Author", "members": [{"site": "A", "class": "Author"}]}
  ]
}`

func TestParseSample(t *testing.T) {
	fed, err := Parse([]byte(sampleDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(fed.Databases) != 2 {
		t.Fatalf("databases = %d", len(fed.Databases))
	}
	book := fed.Global.Class("Book")
	if book == nil || !book.Has("rating") || !book.Has("author") {
		t.Fatalf("global Book = %+v", book)
	}
	if got := book.MissingAttrs("B"); len(got) != 3 { // author, pages, tags
		t.Errorf("missing at B = %v", got)
	}
	// Isomerism: isbn 2 exists at both sites.
	iso := fed.Tables.Table("Book").IsomericsOf("A", "b2")
	if len(iso) != 1 || iso[0].Site != "B" || iso[0].LOid != "x2" {
		t.Errorf("isomerics of b2 = %v", iso)
	}
	// Values decoded correctly.
	b1, _ := fed.Databases["A"].Deref("b1")
	if !b1.Attr("pages").Equal(object.Int(341)) {
		t.Errorf("pages = %v", b1.Attr("pages"))
	}
	if b1.Attr("tags").Kind() != object.KindList {
		t.Errorf("tags = %v", b1.Attr("tags"))
	}
	b2, _ := fed.Databases["A"].Deref("b2")
	if !b2.Attr("pages").IsNull() {
		t.Errorf("null pages = %v", b2.Attr("pages"))
	}
	x2, _ := fed.Databases["B"].Deref("x2")
	if !x2.Attr("rating").Equal(object.Float(4.5)) {
		t.Errorf("rating = %v", x2.Attr("rating"))
	}
}

// TestParsedFederationAnswersQueries runs the three strategies over a
// loaded federation: the missing pages of isbn 2 stay missing (maybe), the
// rating predicate is resolved through the isomeric record at B.
func TestParsedFederationAnswersQueries(t *testing.T) {
	fed, err := Parse([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := exec.New(exec.Config{
		Global:      fed.Global,
		Coordinator: "G",
		Databases:   fed.Databases,
		Tables:      fed.Tables,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := query.MustBind(query.MustParse(
		`select title from Book where pages > 100 and rating > 4`), fed.Global)
	for _, alg := range exec.Algorithms() {
		ans, _, err := engine.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		// b1: pages 341 true, rating missing everywhere -> maybe.
		// b2: pages null everywhere -> unknown; rating 4.5 via B -> maybe.
		if len(ans.Certain) != 0 || len(ans.Maybe) != 2 {
			t.Errorf("%v: certain=%v maybe=%v", alg, ans.Certain, ans.Maybe)
		}
	}
}

// TestExportRoundTripSchool exports the paper's school federation and loads
// it back; Q1 must still produce the paper's answer.
func TestExportRoundTripSchool(t *testing.T) {
	fx := school.New()
	data, err := Export(fx.Schemas, fx.Global, fx.Databases)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	fed, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse(exported): %v", err)
	}
	engine, err := exec.New(exec.Config{
		Global:      fed.Global,
		Coordinator: "G",
		Databases:   fed.Databases,
		Tables:      fed.Tables,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := query.MustBind(query.MustParse(school.Q1), fed.Global)
	for _, alg := range exec.Algorithms() {
		ans, _, err := engine.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		// GOids are re-derived by isomerism identification, so compare the
		// target values rather than identifiers.
		if len(ans.Certain) != 1 || !ans.Certain[0].Targets[0].Equal(object.Str("Hedy")) {
			t.Errorf("%v certain = %v", alg, ans.Certain)
		}
		if len(ans.Maybe) != 1 || !ans.Maybe[0].Targets[0].Equal(object.Str("Tony")) {
			t.Errorf("%v maybe = %v", alg, ans.Maybe)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"bad json", `{`, "parse"},
		{"no sites", `{"global":[{"class":"X","members":[]}]}`, "no sites"},
		{"no global", `{"sites":{"A":{"classes":{},"objects":[]}}}`, "no global"},
		{"bad type", `{"sites":{"A":{"classes":{"C":{"attrs":[{"name":"x","type":"blob"}]}},"objects":[]}},
			"global":[{"class":"C","members":[{"site":"A","class":"C"}]}]}`, "unknown primitive"},
		{"type and class", `{"sites":{"A":{"classes":{"C":{"attrs":[{"name":"x","type":"int","class":"D"}]}},"objects":[]}},
			"global":[{"class":"C","members":[{"site":"A","class":"C"}]}]}`, "both type and class"},
		{"dangling ref", `{"sites":{"A":{"classes":{
			"C":{"attrs":[{"name":"d","class":"D"}]},
			"D":{"attrs":[{"name":"x","type":"int"}]}},
			"objects":[{"id":"c1","class":"C","attrs":{"d":{"$ref":"ghost"}}}]}},
			"global":[{"class":"C","members":[{"site":"A","class":"C"}]},
			          {"class":"D","members":[{"site":"A","class":"D"}]}]}`, "missing object"},
		{"bad ref object", `{"sites":{"A":{"classes":{"C":{"attrs":[{"name":"d","class":"C"}]}},
			"objects":[{"id":"c1","class":"C","attrs":{"d":{"wat":1}}}]}},
			"global":[{"class":"C","members":[{"site":"A","class":"C"}]}]}`, "$ref"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/federation.json"); err == nil {
		t.Error("missing file accepted")
	}
}
