// Package eval implements three-valued predicate evaluation over component
// databases: navigating nested predicate paths through locally stored
// objects, classifying each predicate as true, false or unknown, and — for
// unknown predicates — extracting the *unsolved point*: the object that
// lacks the data (because of a missing attribute or a null value) together
// with the unsolved predicate rooted at that object's global class.
//
// The unsolved points are what the localized strategies feed into phase O:
// the assistant objects of an unsolved point's item are checked against its
// suffix predicate.
package eval

import (
	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/tvl"
)

// Source resolves object references during path navigation and charges the
// cost of each access. A component database charges a disk read per fetch;
// Cached wraps it with a buffer pool that charges disk only on first touch;
// the coordinator's materialized view charges a CPU operation (it lives in
// memory).
type Source interface {
	Fetch(id object.LOid, sink cost.Sink) (*object.Object, bool)
}

// DiskSource adapts a component database (or anything dereferencing LOids)
// into a Source that charges one full-object disk read per fetch.
type DiskSource struct {
	DB interface {
		Deref(object.LOid) (*object.Object, bool)
	}
}

// Fetch implements Source.
func (d DiskSource) Fetch(id object.LOid, sink cost.Sink) (*object.Object, bool) {
	o, ok := d.DB.Deref(id)
	if !ok {
		return nil, false
	}
	sink.DiskRead(o.WireSize(nil))
	return o, true
}

// Cached wraps a Source with a buffer pool: the first fetch of an object
// pays the underlying cost, further fetches cost one CPU operation (a
// buffer hit). Create one per site operation (the paper's component DBMSs
// have per-query buffers, not cross-query caches).
type Cached struct {
	src  Source
	seen map[object.LOid]bool
}

// NewCached returns an empty-buffer cache over src.
func NewCached(src Source) *Cached {
	return &Cached{src: src, seen: make(map[object.LOid]bool)}
}

// Warm marks an object as already buffered (e.g. just scanned from the
// extent) without charging anything.
func (c *Cached) Warm(id object.LOid) { c.seen[id] = true }

// Fetch implements Source.
func (c *Cached) Fetch(id object.LOid, sink cost.Sink) (*object.Object, bool) {
	if c.seen[id] {
		o, ok := c.src.Fetch(id, cost.Discard)
		if ok {
			sink.CPU(1) // buffer hit
		}
		return o, ok
	}
	o, ok := c.src.Fetch(id, sink)
	if ok {
		c.seen[id] = true
	}
	return o, ok
}

// Compare applies a comparison operator under three-valued logic: any null
// operand yields Unknown. Values of incomparable kinds are unequal; ordered
// comparisons between incomparable kinds are false.
func Compare(op query.Op, a, b object.Value) tvl.Truth {
	if a.IsNull() || b.IsNull() {
		return tvl.Unknown
	}
	switch op {
	case query.OpEq:
		return tvl.Of(a.Equal(b))
	case query.OpNe:
		return tvl.Of(!a.Equal(b))
	default:
		cmp, ok := a.Compare(b)
		if !ok {
			return tvl.False
		}
		switch op {
		case query.OpLt:
			return tvl.Of(cmp < 0)
		case query.OpLe:
			return tvl.Of(cmp <= 0)
		case query.OpGt:
			return tvl.Of(cmp > 0)
		case query.OpGe:
			return tvl.Of(cmp >= 0)
		default:
			return tvl.False
		}
	}
}

// Unsolved is an unsolved predicate on a particular stored object: the item
// that lacks the data and the predicate that remains to be evaluated on it
// (or on its assistant objects at other sites).
type Unsolved struct {
	// ItemLOid is the object lacking the data; it may be the range object
	// itself or an object reached through complex attributes.
	ItemLOid object.LOid
	// ItemClass is the item's *global* class name.
	ItemClass string
	// Suffix is the unsolved predicate, rooted at ItemClass.
	Suffix query.Predicate
	// SourceIdx is the index of the originating predicate in the bound
	// query's predicate list.
	SourceIdx int
	// Multi marks unsolved points reached through a multi-valued
	// attribute: the predicate holds if ANY element satisfies it, so a
	// single violating assistant does not falsify the predicate.
	Multi bool
}

// Outcome is the result of navigating a predicate path. For scalar paths
// without missing data, Value holds the reached value awaiting the
// comparison; when Done is set the verdict is already determined — either
// the path hit missing data (Unknown plus the unsolved points) or it passed
// through a multi-valued attribute (the elements were evaluated under ANY
// semantics).
type Outcome struct {
	Done     bool
	Verdict  tvl.Truth
	Value    object.Value
	Unsolved []Unsolved
}

// Navigate walks a predicate's path from the range object, charging one CPU
// operation per step and a disk read per dereferenced object, but — on
// plain scalar paths — not the final comparison. The parallel localized
// strategy uses Navigate in its phase O; EvalPredicate composes it with the
// comparison.
func Navigate(src Source, bp query.BoundPredicate, root *object.Object, sourceIdx int, sink cost.Sink) Outcome {
	return navigate(src, bp, root, 0, sourceIdx, sink, false)
}

// EvalPredicate evaluates one bound predicate on a range object. When the
// verdict is Unknown the returned unsolved points locate the missing data;
// a path through a multi-valued attribute may produce several (one per
// element lacking data), marked Multi.
func EvalPredicate(src Source, bp query.BoundPredicate, root *object.Object, sourceIdx int, sink cost.Sink) (tvl.Truth, []Unsolved) {
	out := navigate(src, bp, root, 0, sourceIdx, sink, true)
	return out.Verdict, out.Unsolved
}

func unsolvedAt(bp query.BoundPredicate, cur *object.Object, i, sourceIdx int, multi bool) Unsolved {
	return Unsolved{
		ItemLOid:  cur.LOid,
		ItemClass: bp.Classes[i],
		Suffix:    query.Predicate{Path: bp.Path.Suffix(i), Op: bp.Op, Literal: bp.Literal},
		SourceIdx: sourceIdx,
		Multi:     multi,
	}
}

// navigate walks the path from step i. compare forces full evaluation;
// multi-valued attributes force it regardless (ANY semantics needs the
// element verdicts).
func navigate(src Source, bp query.BoundPredicate, cur *object.Object, start, sourceIdx int, sink cost.Sink, compare bool) Outcome {
	for i := start; i < len(bp.Path); i++ {
		v := cur.Attr(bp.Path[i])
		sink.CPU(1)
		if v.IsNull() {
			return Outcome{Done: true, Verdict: tvl.Unknown,
				Unsolved: []Unsolved{unsolvedAt(bp, cur, i, sourceIdx, false)}}
		}
		last := i == len(bp.Path)-1
		if v.Kind() == object.KindList {
			return evalList(src, bp, cur, v, i, sourceIdx, sink)
		}
		if last {
			if !compare {
				return Outcome{Value: v}
			}
			sink.CPU(1)
			return Outcome{Done: true, Verdict: Compare(bp.Op, v, bp.Literal)}
		}
		next, ok := src.Fetch(v.RefLOid(), sink)
		if !ok {
			// Dangling reference: treat as missing data rather than
			// failing the whole query.
			return Outcome{Done: true, Verdict: tvl.Unknown,
				Unsolved: []Unsolved{unsolvedAt(bp, cur, i, sourceIdx, false)}}
		}
		cur = next
	}
	panic("unreachable: empty predicate path")
}

// evalList evaluates a predicate across a multi-valued attribute's elements
// under ANY semantics: true if some element satisfies, false if every
// element violates, unknown otherwise (with one unsolved point per element
// lacking data).
func evalList(src Source, bp query.BoundPredicate, cur *object.Object, v object.Value,
	i, sourceIdx int, sink cost.Sink) Outcome {
	verdict := tvl.False
	var unsolved []Unsolved
	last := i == len(bp.Path)-1
	for _, elem := range v.Elems() {
		var ev tvl.Truth
		var eu []Unsolved
		if last {
			sink.CPU(1)
			ev = Compare(bp.Op, elem, bp.Literal)
		} else {
			next, ok := src.Fetch(elem.RefLOid(), sink)
			if !ok {
				ev = tvl.Unknown
				eu = []Unsolved{unsolvedAt(bp, cur, i, sourceIdx, true)}
			} else {
				out := navigate(src, bp, next, i+1, sourceIdx, sink, true)
				ev = out.Verdict
				eu = out.Unsolved
			}
		}
		if ev == tvl.True {
			return Outcome{Done: true, Verdict: tvl.True}
		}
		if ev == tvl.Unknown {
			verdict = tvl.Unknown
			for j := range eu {
				eu[j].Multi = true
			}
			unsolved = append(unsolved, eu...)
		}
	}
	if verdict != tvl.Unknown {
		unsolved = nil
	}
	return Outcome{Done: true, Verdict: verdict, Unsolved: unsolved}
}

// EvalTarget navigates a target path on a range object, returning the
// reached value or null when any step's data is missing. A final complex
// step yields the local reference value.
func EvalTarget(src Source, tp query.BoundPath, root *object.Object, sink cost.Sink) object.Value {
	cur := root
	for i, step := range tp.Path {
		v := cur.Attr(step)
		sink.CPU(1)
		if v.IsNull() || i == len(tp.Path)-1 {
			return v
		}
		next, ok := src.Fetch(v.RefLOid(), sink)
		if !ok {
			return object.Null()
		}
		cur = next
	}
	return object.Null()
}

// Result is the evaluation of all query predicates on one range object.
type Result struct {
	// Verdicts holds the per-predicate truth values, aligned with the
	// bound query's predicate list.
	Verdicts []tvl.Truth
	// Unsolved holds one entry per Unknown verdict.
	Unsolved []Unsolved
}

// Verdict folds the per-predicate verdicts into the object's classification
// under the conjunctive query: True (certain), Unknown (maybe) or False.
func (r *Result) Verdict() tvl.Truth {
	return tvl.All(r.Verdicts...)
}

// EvalObject evaluates the given subset of the bound query's predicates
// (identified by index) on one range object. Verdict slots of predicates
// outside the subset are left zero.
func EvalObject(src Source, b *query.Bound, predIdx []int, root *object.Object, sink cost.Sink) Result {
	r := Result{Verdicts: make([]tvl.Truth, len(b.Preds))}
	for _, i := range predIdx {
		verdict, uns := EvalPredicate(src, b.Preds[i], root, i, sink)
		r.Verdicts[i] = verdict
		r.Unsolved = append(r.Unsolved, uns...)
	}
	return r
}

// AllPredIdx returns [0..n) for evaluating every predicate.
func AllPredIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// SplitPredIdx partitions the bound query's predicate indexes for one site
// into local predicates (every path step held by the site's constituent
// classes) and removed predicates (some step is a missing attribute there).
// This is the runtime counterpart of query.Localize.
func SplitPredIdx(b *query.Bound, site object.SiteID) (local, removed []int) {
	for i, bp := range b.Preds {
		if missingAt(b, bp.BoundPath, site) {
			removed = append(removed, i)
		} else {
			local = append(local, i)
		}
	}
	return local, removed
}

func missingAt(b *query.Bound, bp query.BoundPath, site object.SiteID) bool {
	for i, step := range bp.Path {
		if !b.Global.Class(bp.Classes[i]).Holds(site, step) {
			return true
		}
	}
	return false
}

// BindAt binds a suffix predicate rooted at an arbitrary global class, as
// needed by a site checking assistant objects against an unsolved
// predicate.
func BindAt(b *query.Bound, class string, pred query.Predicate) (query.BoundPredicate, error) {
	return query.BindPredicateAt(b.Global, class, pred)
}
