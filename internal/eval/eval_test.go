package eval

import (
	"reflect"
	"testing"

	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/tvl"
)

func TestCompare(t *testing.T) {
	cases := []struct {
		op   query.Op
		a, b object.Value
		want tvl.Truth
	}{
		{query.OpEq, object.Int(1), object.Int(1), tvl.True},
		{query.OpEq, object.Int(1), object.Int(2), tvl.False},
		{query.OpEq, object.Null(), object.Int(1), tvl.Unknown},
		{query.OpEq, object.Int(1), object.Null(), tvl.Unknown},
		{query.OpNe, object.Int(1), object.Int(2), tvl.True},
		{query.OpNe, object.Null(), object.Int(2), tvl.Unknown},
		{query.OpLt, object.Int(1), object.Int(2), tvl.True},
		{query.OpLt, object.Int(2), object.Int(2), tvl.False},
		{query.OpLe, object.Int(2), object.Int(2), tvl.True},
		{query.OpGt, object.Str("b"), object.Str("a"), tvl.True},
		{query.OpGe, object.Str("a"), object.Str("b"), tvl.False},
		{query.OpGe, object.Null(), object.Null(), tvl.Unknown},
		{query.OpLt, object.Str("a"), object.Int(1), tvl.False},
		{query.OpEq, object.Str("1"), object.Int(1), tvl.False},
	}
	for _, c := range cases {
		if got := Compare(c.op, c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func q1Bound(t *testing.T) (*school.Fixture, *query.Bound) {
	t.Helper()
	fx := school.New()
	return fx, query.MustBind(query.MustParse(school.Q1), fx.Global)
}

// TestEvalPredicateDB1 walks the paper's example: evaluating Q1's
// predicates on DB1's students.
func TestEvalPredicateDB1(t *testing.T) {
	fx, b := q1Bound(t)
	db1 := fx.Databases["DB1"]

	// Predicate 0: address.city = "Taipei" — address is a missing
	// attribute of Student@DB1, so every student is unsolved at itself.
	s1 := db1.Extent("Student").Get("s1")
	verdict, unss := EvalPredicate(DiskSource{DB: db1}, b.Preds[0], s1, 0, cost.Discard)
	if verdict != tvl.Unknown || len(unss) != 1 {
		t.Fatalf("pred0 on s1 = %v, %v", verdict, unss)
	}
	uns := unss[0]
	if uns.ItemLOid != "s1" || uns.ItemClass != "Student" ||
		!uns.Suffix.Path.Equal(query.Path{"address", "city"}) || uns.SourceIdx != 0 {
		t.Errorf("unsolved = %+v", uns)
	}

	// Predicate 1: advisor.speciality = "database" — speciality missing on
	// Teacher@DB1; the advisor is the unsolved item.
	verdict, unss = EvalPredicate(DiskSource{DB: db1}, b.Preds[1], s1, 1, cost.Discard)
	if verdict != tvl.Unknown || len(unss) != 1 {
		t.Fatalf("pred1 on s1 = %v, %v", verdict, unss)
	}
	uns = unss[0]
	if uns.ItemLOid != "t1" || uns.ItemClass != "Teacher" ||
		!uns.Suffix.Path.Equal(query.Path{"speciality"}) {
		t.Errorf("unsolved = %+v", uns)
	}

	// Predicate 2: advisor.department.name = "CS" — fully held at DB1;
	// true for s1 (t1 → d1 → CS).
	verdict, unss = EvalPredicate(DiskSource{DB: db1}, b.Preds[2], s1, 2, cost.Discard)
	if verdict != tvl.True || len(unss) != 0 {
		t.Errorf("pred2 on s1 = %v, %v", verdict, unss)
	}

	// s3's advisor t2 has a null department: unknown with item t2.
	s3 := db1.Extent("Student").Get("s3")
	verdict, unss = EvalPredicate(DiskSource{DB: db1}, b.Preds[2], s3, 2, cost.Discard)
	if verdict != tvl.Unknown || len(unss) != 1 {
		t.Fatalf("pred2 on s3 = %v, %v", verdict, unss)
	}
	uns = unss[0]
	if uns.ItemLOid != "t2" || uns.ItemClass != "Teacher" ||
		!uns.Suffix.Path.Equal(query.Path{"department", "name"}) {
		t.Errorf("unsolved = %+v", uns)
	}
}

func TestEvalPredicateDB2(t *testing.T) {
	fx, b := q1Bound(t)
	db2 := fx.Databases["DB2"]

	// s1' (Hedy): address.city = Taipei → true; speciality database → true;
	// department missing → unknown at t1'.
	s1p := db2.Extent("Student").Get("s1'")
	if v, _ := EvalPredicate(DiskSource{DB: db2}, b.Preds[0], s1p, 0, cost.Discard); v != tvl.True {
		t.Errorf("pred0 on s1' = %v", v)
	}
	if v, _ := EvalPredicate(DiskSource{DB: db2}, b.Preds[1], s1p, 1, cost.Discard); v != tvl.True {
		t.Errorf("pred1 on s1' = %v", v)
	}
	v, unss := EvalPredicate(DiskSource{DB: db2}, b.Preds[2], s1p, 2, cost.Discard)
	if v != tvl.Unknown || len(unss) != 1 || unss[0].ItemLOid != "t1'" || unss[0].ItemClass != "Teacher" {
		t.Errorf("pred2 on s1' = %v, %+v", v, unss)
	}
	if !unss[0].Suffix.Path.Equal(query.Path{"department", "name"}) {
		t.Errorf("suffix = %v", unss[0].Suffix)
	}

	// s2' (John): address.city = HsinChu → false.
	s2p := db2.Extent("Student").Get("s2'")
	if v, _ := EvalPredicate(DiskSource{DB: db2}, b.Preds[0], s2p, 0, cost.Discard); v != tvl.False {
		t.Errorf("pred0 on s2' = %v", v)
	}
}

func TestEvalPredicateCosts(t *testing.T) {
	fx, b := q1Bound(t)
	db1 := fx.Databases["DB1"]
	s1 := db1.Extent("Student").Get("s1")

	var c cost.Counter
	// advisor.department.name: 3 steps + 1 comparison → 4 CPU ops,
	// 2 derefs (t1, d1).
	EvalPredicate(DiskSource{DB: db1}, b.Preds[2], s1, 2, &c)
	if c.CPUOps() != 4 {
		t.Errorf("CPUOps = %d, want 4", c.CPUOps())
	}
	t1 := db1.Extent("Teacher").Get("t1")
	d1 := db1.Extent("Department").Get("d1")
	wantDisk := int64(t1.WireSize(nil) + d1.WireSize(nil))
	if c.DiskBytes() != wantDisk {
		t.Errorf("DiskBytes = %d, want %d", c.DiskBytes(), wantDisk)
	}
}

func TestEvalTarget(t *testing.T) {
	fx, b := q1Bound(t)
	db1 := fx.Databases["DB1"]
	s1 := db1.Extent("Student").Get("s1")

	// Target 0: name.
	if v := EvalTarget(DiskSource{DB: db1}, b.Targets[0], s1, cost.Discard); !v.Equal(object.Str("John")) {
		t.Errorf("target name = %v", v)
	}
	// Target 1: advisor.name.
	if v := EvalTarget(DiskSource{DB: db1}, b.Targets[1], s1, cost.Discard); !v.Equal(object.Str("Jeffery")) {
		t.Errorf("target advisor.name = %v", v)
	}
	// Missing data yields null: address.city on DB1 students.
	bp, err := query.BindPredicateAt(fx.Global, "Student", query.Predicate{
		Path: query.Path{"address", "city"}, Op: query.OpEq, Literal: object.Str("x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := EvalTarget(DiskSource{DB: db1}, bp.BoundPath, s1, cost.Discard); !v.IsNull() {
		t.Errorf("missing target = %v", v)
	}
}

func TestEvalObjectAndVerdict(t *testing.T) {
	fx, b := q1Bound(t)
	db1 := fx.Databases["DB1"]
	s3 := db1.Extent("Student").Get("s3")

	r := EvalObject(DiskSource{DB: db1}, b, AllPredIdx(len(b.Preds)), s3, cost.Discard)
	if len(r.Unsolved) != 3 {
		t.Errorf("unsolved = %+v", r.Unsolved)
	}
	if r.Verdict() != tvl.Unknown {
		t.Errorf("verdict = %v", r.Verdict())
	}

	// Subset evaluation leaves other verdict slots zero.
	r2 := EvalObject(DiskSource{DB: db1}, b, []int{2}, s3, cost.Discard)
	if r2.Verdicts[0] != 0 || r2.Verdicts[1] != 0 {
		t.Error("subset eval touched other slots")
	}
	if r2.Verdicts[2] != tvl.Unknown {
		t.Errorf("verdict[2] = %v", r2.Verdicts[2])
	}
}

func TestSplitPredIdx(t *testing.T) {
	fx, b := q1Bound(t)
	_ = fx

	local, removed := SplitPredIdx(b, "DB1")
	if !reflect.DeepEqual(local, []int{2}) || !reflect.DeepEqual(removed, []int{0, 1}) {
		t.Errorf("DB1 split = %v / %v", local, removed)
	}
	local, removed = SplitPredIdx(b, "DB2")
	if !reflect.DeepEqual(local, []int{0, 1}) || !reflect.DeepEqual(removed, []int{2}) {
		t.Errorf("DB2 split = %v / %v", local, removed)
	}
}

func TestSplitMatchesLocalize(t *testing.T) {
	fx, b := q1Bound(t)
	_ = fx
	for _, site := range []object.SiteID{"DB1", "DB2"} {
		lq, err := b.Localize(site)
		if err != nil {
			t.Fatal(err)
		}
		local, removed := SplitPredIdx(b, site)
		if len(local) != len(lq.Local) || len(removed) != len(lq.Unsolved) {
			t.Errorf("%s: split (%d,%d) vs localize (%d,%d)",
				site, len(local), len(removed), len(lq.Local), len(lq.Unsolved))
		}
	}
}

func TestDanglingRefTreatedAsMissing(t *testing.T) {
	fx, b := q1Bound(t)
	db1 := fx.Databases["DB1"]
	// Bypass Insert validation by mutating a stored object directly.
	s1 := db1.Extent("Student").Get("s1")
	s1.Set("advisor", object.Ref("ghost"))
	v, unss := EvalPredicate(DiskSource{DB: db1}, b.Preds[2], s1, 2, cost.Discard)
	if v != tvl.Unknown || len(unss) != 1 || unss[0].ItemLOid != "s1" {
		t.Errorf("dangling ref: %v, %+v", v, unss)
	}
	if vt := EvalTarget(DiskSource{DB: db1}, b.Targets[1], s1, cost.Discard); !vt.IsNull() {
		t.Errorf("dangling target = %v", vt)
	}
}

func TestBindAt(t *testing.T) {
	fx, b := q1Bound(t)
	_ = fx
	bp, err := BindAt(b, "Teacher", query.Predicate{
		Path: query.Path{"department", "name"}, Op: query.OpEq, Literal: object.Str("CS"),
	})
	if err != nil {
		t.Fatalf("BindAt: %v", err)
	}
	if !reflect.DeepEqual(bp.Classes, []string{"Teacher", "Department"}) {
		t.Errorf("Classes = %v", bp.Classes)
	}
	if _, err := BindAt(b, "Teacher", query.Predicate{
		Path: query.Path{"nope"}, Op: query.OpEq, Literal: object.Str("x"),
	}); err == nil {
		t.Error("bad suffix accepted")
	}
}

func TestCachedChargesOnce(t *testing.T) {
	fx, b := q1Bound(t)
	db1 := fx.Databases["DB1"]
	s1 := db1.Extent("Student").Get("s1")

	src := NewCached(DiskSource{DB: db1})
	var c1 cost.Counter
	EvalPredicate(src, b.Preds[2], s1, 2, &c1) // reads t1, d1 from disk
	var c2 cost.Counter
	EvalPredicate(src, b.Preds[2], s1, 2, &c2) // buffer hits only
	if c2.DiskBytes() != 0 {
		t.Errorf("second evaluation read %d disk bytes", c2.DiskBytes())
	}
	if c1.DiskBytes() == 0 {
		t.Error("first evaluation read nothing")
	}
	// Buffer hits still cost CPU.
	if c2.CPUOps() <= 0 {
		t.Error("buffer hits charged no CPU")
	}
}

func TestCachedWarm(t *testing.T) {
	fx, _ := q1Bound(t)
	db1 := fx.Databases["DB1"]
	src := NewCached(DiskSource{DB: db1})
	src.Warm("t1")
	var c cost.Counter
	if _, ok := src.Fetch("t1", &c); !ok {
		t.Fatal("Fetch failed")
	}
	if c.DiskBytes() != 0 {
		t.Errorf("warmed object read %d bytes", c.DiskBytes())
	}
	if _, ok := src.Fetch("ghost", &c); ok {
		t.Error("Fetch of missing object succeeded")
	}
}

// listFixture stores one root object with a multi-valued complex attribute
// and list-valued primitives for exercising ANY semantics directly.
func listFixture(t *testing.T) (Source, *object.Object, *query.Bound) {
	t.Helper()
	s := schema.NewSchema("L1")
	s.MustAddClass(schema.MustClass("Part", []schema.Attribute{
		schema.Prim("weight", object.KindInt),
	}, "weight"))
	s.MustAddClass(schema.MustClass("Kit", []schema.Attribute{
		schema.Prim("name", object.KindString),
		{Name: "parts", Domain: "Part", MultiValued: true},
		{Name: "labels", Prim: object.KindString, MultiValued: true},
	}, "name"))
	db := store.MustNewDatabase(s)
	db.MustInsert(object.New("pa", "Part", map[string]object.Value{"weight": object.Int(5)}))
	db.MustInsert(object.New("pb", "Part", nil)) // weight null
	db.MustInsert(object.New("pc", "Part", map[string]object.Value{"weight": object.Int(9)}))
	db.MustInsert(object.New("k1", "Kit", map[string]object.Value{
		"name":   object.Str("kit"),
		"parts":  object.List(object.Ref("pa"), object.Ref("pb"), object.Ref("pc")),
		"labels": object.List(object.Str("red"), object.Str("blue")),
	}))
	g, err := schema.Integrate(map[object.SiteID]*schema.Schema{"L1": s},
		[]schema.Correspondence{
			{GlobalClass: "Kit", Members: []schema.Constituent{{Site: "L1", Class: "Kit"}}},
			{GlobalClass: "Part", Members: []schema.Constituent{{Site: "L1", Class: "Part"}}},
		})
	if err != nil {
		t.Fatal(err)
	}
	b := query.MustBind(query.MustParse(`select name from Kit where parts.weight = 5`), g)
	return DiskSource{DB: db}, db.Extent("Kit").Get("k1"), b
}

func TestListAnyTrueShortCircuits(t *testing.T) {
	src, k1, b := listFixture(t)
	v, uns := EvalPredicate(src, b.Preds[0], k1, 0, cost.Discard)
	if v != tvl.True || len(uns) != 0 {
		t.Errorf("parts.weight = 5 -> %v, %v", v, uns)
	}
}

func TestListUnknownCollectsMultiUnsolved(t *testing.T) {
	src, k1, b := listFixture(t)
	bp, err := query.BindPredicateAt(b.Global, "Kit", query.Predicate{
		Path: query.Path{"parts", "weight"}, Op: query.OpEq, Literal: object.Int(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	v, uns := EvalPredicate(src, bp, k1, 0, cost.Discard)
	if v != tvl.Unknown {
		t.Fatalf("verdict = %v", v)
	}
	// Only pb lacks the weight; it is the single unsolved item, marked Multi.
	if len(uns) != 1 || uns[0].ItemLOid != "pb" || !uns[0].Multi {
		t.Errorf("unsolved = %+v", uns)
	}
}

func TestListAllFalse(t *testing.T) {
	src, k1, b := listFixture(t)
	bp, err := query.BindPredicateAt(b.Global, "Kit", query.Predicate{
		Path: query.Path{"parts", "weight"}, Op: query.OpGt, Literal: object.Int(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	// pb's weight is null -> unknown, so the whole list predicate stays
	// unknown even though pa and pc definitively fail.
	if v, _ := EvalPredicate(src, bp, k1, 0, cost.Discard); v != tvl.Unknown {
		t.Errorf("verdict = %v", v)
	}
	// Against the primitive list with no nulls, all-false is definitive.
	bp2, err := query.BindPredicateAt(b.Global, "Kit", query.Predicate{
		Path: query.Path{"labels"}, Op: query.OpEq, Literal: object.Str("green"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, uns := EvalPredicate(src, bp2, k1, 0, cost.Discard); v != tvl.False || len(uns) != 0 {
		t.Errorf("labels = green -> %v, %v", v, uns)
	}
}

func TestListPrimitiveAnyTrue(t *testing.T) {
	src, k1, b := listFixture(t)
	bp, err := query.BindPredicateAt(b.Global, "Kit", query.Predicate{
		Path: query.Path{"labels"}, Op: query.OpEq, Literal: object.Str("blue"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := EvalPredicate(src, bp, k1, 0, cost.Discard); v != tvl.True {
		t.Errorf("labels = blue -> %v", v)
	}
}

func TestNavigateDoneForListPaths(t *testing.T) {
	src, k1, b := listFixture(t)
	out := Navigate(src, b.Preds[0], k1, 0, cost.Discard)
	if !out.Done || out.Verdict != tvl.True {
		t.Errorf("Navigate over list = %+v", out)
	}
	// Scalar paths stay undone with the reached value.
	bp, err := query.BindPredicateAt(b.Global, "Kit", query.Predicate{
		Path: query.Path{"name"}, Op: query.OpEq, Literal: object.Str("kit"),
	})
	if err != nil {
		t.Fatal(err)
	}
	out = Navigate(src, bp, k1, 0, cost.Discard)
	if out.Done || !out.Value.Equal(object.Str("kit")) {
		t.Errorf("Navigate over scalar = %+v", out)
	}
}
