// Package version carries the build's version string, stamped at link time:
//
//	go build -ldflags "-X github.com/hetfed/hetfed/internal/version.Version=v1.2.3" ./...
//
// Unstamped builds report a sane development default.
package version

import "runtime/debug"

// Version is the stamped release version, overridden via -ldflags -X.
var Version = "dev"

// String returns the version, annotated with the VCS revision when the
// binary was built from a checkout and no release version was stamped.
func String() string {
	if Version != "dev" {
		return Version
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return Version + "+" + s.Value[:12]
			}
		}
	}
	return Version
}
