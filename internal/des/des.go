// Package des is a deterministic process-based discrete-event simulation
// kernel, in the style of SimPy: simulated processes are goroutines that the
// scheduler runs one at a time, alternating through channel handshakes, so a
// simulation with the same inputs always produces the same virtual-time
// trajectory.
//
// Processes block on three primitives: Delay (advance virtual time), Use
// (hold a FIFO resource for a duration, modelling a CPU, a disk, or a shared
// network), and Join (wait for child processes). Per-resource busy time is
// accumulated, which is how the experiment harness computes the paper's
// "total execution time" (sum of work) alongside "response time" (the
// virtual makespan).
package des

import (
	"container/heap"
	"fmt"
	"sort"
)

// Simulator owns the virtual clock, the event queue and the resources.
// Create one with New; it is not safe for concurrent use (the concurrency
// happens inside Run, one process at a time).
type Simulator struct {
	now       float64
	seq       int
	events    eventHeap
	resources []*Resource
	alive     int
	failure   error
	yield     chan struct{}
	shutdown  chan struct{}
	running   bool
}

// New returns an empty simulator at virtual time zero.
func New() *Simulator {
	return &Simulator{
		yield:    make(chan struct{}),
		shutdown: make(chan struct{}),
	}
}

// Now returns the current virtual time (in the unit the caller charges
// durations in; hetfed uses microseconds).
func (s *Simulator) Now() float64 { return s.now }

// NewResource registers a FIFO resource (capacity one).
func (s *Simulator) NewResource(name string) *Resource {
	r := &Resource{name: name}
	s.resources = append(s.resources, r)
	return r
}

// Resources returns the registered resources in creation order.
func (s *Simulator) Resources() []*Resource {
	return append([]*Resource(nil), s.resources...)
}

// TotalBusy returns the summed busy time over all resources — the paper's
// total execution time metric.
func (s *Simulator) TotalBusy() float64 {
	t := 0.0
	for _, r := range s.resources {
		t += r.busy
	}
	return t
}

// Spawn schedules a new process to start at the current virtual time.
func (s *Simulator) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.alive++
	go p.run(fn)
	s.schedule(s.now, p)
	return p
}

// Run executes events until none remain. It returns an error when a process
// panicked or when processes are still blocked with an empty event queue
// (deadlock).
func (s *Simulator) Run() error {
	if s.running {
		return fmt.Errorf("des: Run called re-entrantly")
	}
	s.running = true
	defer func() { s.running = false }()

	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		if ev.t < s.now {
			return fmt.Errorf("des: time went backwards (%g < %g)", ev.t, s.now)
		}
		s.now = ev.t
		ev.p.resume <- struct{}{}
		<-s.yield
		if s.failure != nil {
			s.abort()
			return s.failure
		}
	}
	if s.alive > 0 {
		s.abort()
		return fmt.Errorf("des: deadlock: %d process(es) blocked with no pending events", s.alive)
	}
	return nil
}

// abort unwinds every parked process goroutine so none leaks.
func (s *Simulator) abort() {
	close(s.shutdown)
}

func (s *Simulator) schedule(t float64, p *Proc) {
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, p: p})
}

type event struct {
	t   float64
	seq int
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// errShutdown unwinds process goroutines when the simulation aborts.
type errShutdown struct{}

// Proc is a simulated process. Its methods may only be called from within
// the process's own function.
type Proc struct {
	sim      *Simulator
	name     string
	resume   chan struct{}
	finished bool
	waiters  []*Proc
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.sim.now }

func (p *Proc) run(fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, isShutdown := r.(errShutdown); isShutdown {
				return // simulation aborted; exit quietly
			}
			p.sim.failure = fmt.Errorf("des: process %s panicked: %v", p.name, r)
		}
		p.finished = true
		p.sim.alive--
		for _, w := range p.waiters {
			p.sim.schedule(p.sim.now, w)
		}
		p.waiters = nil
		p.sim.yield <- struct{}{}
	}()
	// Wait for the first scheduling event.
	p.block()
	fn(p)
}

// park yields to the scheduler and blocks until resumed.
func (p *Proc) park() {
	p.sim.yield <- struct{}{}
	p.block()
}

func (p *Proc) block() {
	select {
	case <-p.resume:
	case <-p.sim.shutdown:
		panic(errShutdown{})
	}
}

// Delay advances the process by d units of virtual time.
func (p *Proc) Delay(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %g", d))
	}
	p.sim.schedule(p.sim.now+d, p)
	p.park()
}

// Spawn starts a child process at the current virtual time.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc {
	return p.sim.Spawn(name, fn)
}

// Join blocks until every given process has finished.
func (p *Proc) Join(children ...*Proc) {
	for _, c := range children {
		for !c.finished {
			c.waiters = append(c.waiters, p)
			p.park()
		}
	}
}

// Acquire takes the resource, queueing FIFO behind current holders.
func (p *Proc) Acquire(r *Resource) {
	if !r.held {
		r.held = true
		return
	}
	r.queue = append(r.queue, p)
	p.park()
	// Ownership was transferred to us by the releaser.
}

// Release returns the resource, handing it to the next queued process.
func (p *Proc) Release(r *Resource) {
	if !r.held {
		panic(fmt.Sprintf("des: release of idle resource %s", r.name))
	}
	if len(r.queue) == 0 {
		r.held = false
		return
	}
	next := r.queue[0]
	r.queue = r.queue[1:]
	p.sim.schedule(p.sim.now, next) // resource stays held; ownership moves
}

// Use holds the resource for d units of virtual time (acquire, delay,
// release) and accounts the duration as resource busy time.
func (p *Proc) Use(r *Resource, d float64) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative use %g on %s", d, r.name))
	}
	p.Acquire(r)
	r.busy += d
	if d > 0 {
		p.Delay(d)
	}
	p.Release(r)
}

// Resource is a capacity-one FIFO resource: a site CPU, a site disk, or the
// shared network medium.
type Resource struct {
	name  string
	held  bool
	queue []*Proc
	busy  float64
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// BusyTime returns the accumulated time the resource was held via Use.
func (r *Resource) BusyTime() float64 { return r.busy }

// BusyByPrefix sums resource busy times grouped by the prefix of the
// resource name up to the first '.', a convenience for per-site reporting.
func BusyByPrefix(rs []*Resource) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range rs {
		name := r.name
		for i := 0; i < len(name); i++ {
			if name[i] == '.' {
				name = name[:i]
				break
			}
		}
		out[name] += r.busy
	}
	return out
}

// SortedNames returns resource names sorted, for deterministic reporting.
func SortedNames(rs []*Resource) []string {
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.name
	}
	sort.Strings(names)
	return names
}
