package des

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDelayAdvancesClock(t *testing.T) {
	sim := New()
	var at float64
	sim.Spawn("p", func(p *Proc) {
		p.Delay(10)
		p.Delay(5)
		at = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 15 || sim.Now() != 15 {
		t.Errorf("time = %g / %g, want 15", at, sim.Now())
	}
}

func TestParallelProcessesOverlap(t *testing.T) {
	sim := New()
	sim.Spawn("a", func(p *Proc) { p.Delay(10) })
	sim.Spawn("b", func(p *Proc) { p.Delay(7) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sim.Now() != 10 {
		t.Errorf("makespan = %g, want 10 (parallel)", sim.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	sim := New()
	r := sim.NewResource("disk")
	ends := make([]float64, 2)
	sim.Spawn("a", func(p *Proc) { p.Use(r, 10); ends[0] = p.Now() })
	sim.Spawn("b", func(p *Proc) { p.Use(r, 10); ends[1] = p.Now() })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ends[0] != 10 || ends[1] != 20 {
		t.Errorf("ends = %v, want [10 20]", ends)
	}
	if r.BusyTime() != 20 {
		t.Errorf("busy = %g, want 20", r.BusyTime())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	sim := New()
	r := sim.NewResource("r")
	var order []string
	spawnUser := func(name string, startDelay float64) {
		sim.Spawn(name, func(p *Proc) {
			p.Delay(startDelay)
			p.Use(r, 5)
			order = append(order, name)
		})
	}
	spawnUser("first", 0)
	spawnUser("second", 1)
	spawnUser("third", 2)
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestJoinWaitsForChildren(t *testing.T) {
	sim := New()
	var joined float64
	sim.Spawn("parent", func(p *Proc) {
		a := p.Spawn("a", func(c *Proc) { c.Delay(10) })
		b := p.Spawn("b", func(c *Proc) { c.Delay(20) })
		p.Join(a, b)
		joined = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if joined != 20 {
		t.Errorf("joined at %g, want 20", joined)
	}
}

func TestJoinFinishedChild(t *testing.T) {
	sim := New()
	sim.Spawn("parent", func(p *Proc) {
		a := p.Spawn("a", func(c *Proc) {})
		p.Delay(5)
		p.Join(a) // already finished
		if p.Now() != 5 {
			t.Errorf("join of finished child advanced time to %g", p.Now())
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		sim := New()
		cpu := sim.NewResource("cpu")
		net := sim.NewResource("net")
		for i := 0; i < 5; i++ {
			d := float64(i + 1)
			sim.Spawn("w", func(p *Proc) {
				p.Use(cpu, d)
				p.Use(net, 2*d)
				p.Delay(d / 2)
			})
		}
		if err := sim.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sim.Now(), sim.TotalBusy()
	}
	n1, b1 := run()
	n2, b2 := run()
	if n1 != n2 || b1 != b2 {
		t.Errorf("nondeterministic: (%g,%g) vs (%g,%g)", n1, b1, n2, b2)
	}
	if math.Abs(b1-45) > 1e-9 { // cpu 15 + net 30
		t.Errorf("TotalBusy = %g, want 45", b1)
	}
}

func TestPanicPropagates(t *testing.T) {
	sim := New()
	sim.Spawn("boom", func(p *Proc) {
		p.Delay(1)
		panic("kaboom")
	})
	// A second process parked on a long delay must not leak.
	sim.Spawn("sleeper", func(p *Proc) { p.Delay(1000) })
	err := sim.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("Run err = %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	sim := New()
	r := sim.NewResource("r")
	sim.Spawn("holder", func(p *Proc) {
		p.Acquire(r)
		// Never releases, never delays again after this.
	})
	sim.Spawn("waiter", func(p *Proc) {
		p.Delay(1)
		p.Acquire(r) // blocks forever
	})
	err := sim.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("Run err = %v", err)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	sim := New()
	r := sim.NewResource("r")
	sim.Spawn("p", func(p *Proc) { p.Release(r) })
	if err := sim.Run(); err == nil {
		t.Error("release of idle resource accepted")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	sim := New()
	sim.Spawn("p", func(p *Proc) { p.Delay(-1) })
	if err := sim.Run(); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestZeroDurationUse(t *testing.T) {
	sim := New()
	r := sim.NewResource("r")
	sim.Spawn("p", func(p *Proc) { p.Use(r, 0) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sim.Now() != 0 {
		t.Errorf("Now = %g", sim.Now())
	}
}

func TestBusyByPrefixAndNames(t *testing.T) {
	sim := New()
	c1 := sim.NewResource("DB1.cpu")
	d1 := sim.NewResource("DB1.disk")
	n := sim.NewResource("net")
	sim.Spawn("p", func(p *Proc) {
		p.Use(c1, 5)
		p.Use(d1, 7)
		p.Use(n, 3)
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	by := BusyByPrefix(sim.Resources())
	if by["DB1"] != 12 || by["net"] != 3 {
		t.Errorf("BusyByPrefix = %v", by)
	}
	names := SortedNames(sim.Resources())
	if len(names) != 3 || names[0] != "DB1.cpu" {
		t.Errorf("SortedNames = %v", names)
	}
	if sim.TotalBusy() != 15 {
		t.Errorf("TotalBusy = %g", sim.TotalBusy())
	}
}

func TestProcName(t *testing.T) {
	sim := New()
	sim.Spawn("xyz", func(p *Proc) {
		if p.Name() != "xyz" {
			t.Errorf("Name = %q", p.Name())
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestManyProcessesStress exercises the scheduler with a fan-out/fan-in of
// hundreds of processes contending on shared resources.
func TestManyProcessesStress(t *testing.T) {
	sim := New()
	net := sim.NewResource("net")
	cpus := make([]*Resource, 8)
	for i := range cpus {
		cpus[i] = sim.NewResource("cpu")
	}
	sim.Spawn("root", func(p *Proc) {
		var children []*Proc
		for i := 0; i < 400; i++ {
			cpu := cpus[i%len(cpus)]
			children = append(children, p.Spawn("w", func(c *Proc) {
				c.Use(cpu, 1)
				c.Use(net, 0.5)
			}))
		}
		p.Join(children...)
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Network is the bottleneck: 400 × 0.5 = 200 plus initial cpu latency.
	if sim.Now() < 200 || sim.Now() > 202 {
		t.Errorf("makespan = %g, want about 200–202", sim.Now())
	}
	if math.Abs(sim.TotalBusy()-600) > 1e-6 {
		t.Errorf("TotalBusy = %g, want 600", sim.TotalBusy())
	}
}

// TestBusyBoundedByMakespanProperty: with R resources, total busy time can
// never exceed R times the makespan (a resource is busy at most the whole
// run), and the makespan can never be less than the busiest resource.
func TestBusyBoundedByMakespanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := New()
		nRes := 1 + rng.Intn(4)
		res := make([]*Resource, nRes)
		for i := range res {
			res[i] = sim.NewResource(fmt.Sprintf("r%d", i))
		}
		nProcs := 1 + rng.Intn(10)
		for i := 0; i < nProcs; i++ {
			steps := 1 + rng.Intn(5)
			plan := make([]struct {
				r *Resource
				d float64
			}, steps)
			for j := range plan {
				plan[j].r = res[rng.Intn(nRes)]
				plan[j].d = rng.Float64() * 10
			}
			sim.Spawn("w", func(p *Proc) {
				for _, st := range plan {
					p.Use(st.r, st.d)
				}
			})
		}
		if err := sim.Run(); err != nil {
			return false
		}
		total := sim.TotalBusy()
		makespan := sim.Now()
		if total > makespan*float64(nRes)+1e-9 {
			return false
		}
		for _, r := range res {
			if r.BusyTime() > makespan+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
