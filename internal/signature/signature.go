// Package signature implements object signatures, the auxiliary structure
// the paper proposes (Section 5) for reducing the data transfer of the
// localized approaches: a compact hash summary of every stored object's
// primitive attribute values, replicated alongside the GOid mapping tables.
//
// Before a site dispatches an assistant-object check for a single-step
// equality predicate, it probes the assistant's signature. The probe has
// one-sided error: when it proves the assistant's value both present and
// different from the literal, the check verdict is false without any
// network traffic; otherwise (possible match, or possibly null) the real
// check is dispatched. Signatures therefore never change answers, only
// costs — the paper's R_ss is the probability a probe keeps an assistant.
package signature

import (
	"hash/fnv"

	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/store"
)

// Size is the signature size in bytes (Table 1's S_s).
const Size = object.SignatureWireSize

// Signature is a Bloom-style summary of an object's primitive attribute
// values. Null values are summarized under an explicit null marker, so a
// probe can also rule out null (needed to synthesize a definitive false
// verdict rather than an unknown one).
type Signature [Size]byte

// Compute builds the signature of an object of the given class: every
// declared single-valued primitive attribute contributes two bits derived
// from the attribute name and its value — the null value included.
func Compute(class *schema.Class, o *object.Object) Signature {
	var s Signature
	for _, a := range class.Attrs {
		if a.IsComplex() || a.MultiValued {
			continue
		}
		h1, h2 := hashAttr(a.Name, o.Attr(a.Name))
		s.set(h1)
		s.set(h2)
	}
	return s
}

func (s *Signature) set(h uint32) {
	bit := h % (Size * 8)
	s[bit/8] |= 1 << (bit % 8)
}

func (s Signature) has(h uint32) bool {
	bit := h % (Size * 8)
	return s[bit/8]&(1<<(bit%8)) != 0
}

// MightEqual reports whether the summarized object's attribute could hold
// the value. False is definitive (the stored value differs); true may be a
// false positive.
func (s Signature) MightEqual(attr string, v object.Value) bool {
	h1, h2 := hashAttr(attr, v)
	return s.has(h1) && s.has(h2)
}

// MightBeNull reports whether the summarized object's attribute could be
// null. False is definitive; true may be a false positive.
func (s Signature) MightBeNull(attr string) bool {
	return s.MightEqual(attr, object.Null())
}

// RulesOutEquality reports whether the probe proves the attribute value is
// present and differs from v — the one case a false check verdict can be
// synthesized locally.
func (s Signature) RulesOutEquality(attr string, v object.Value) bool {
	return !s.MightEqual(attr, v) && !s.MightBeNull(attr)
}

func hashAttr(attr string, v object.Value) (uint32, uint32) {
	h := fnv.New64a()
	h.Write([]byte(attr))              //nolint:errcheck // fnv never fails
	h.Write([]byte{0})                 //nolint:errcheck
	h.Write([]byte(v.Kind().String())) //nolint:errcheck
	h.Write([]byte{0})                 //nolint:errcheck
	h.Write([]byte(v.String()))        //nolint:errcheck
	sum := h.Sum64()
	return uint32(sum), uint32(sum >> 32)
}

// Index is the replicated signature store: the signature of every object of
// every component database, keyed by site and LOid.
type Index struct {
	bySite map[object.SiteID]map[object.LOid]Signature
}

// Build computes the signature index over a federation's databases.
func Build(dbs map[object.SiteID]*store.Database) *Index {
	ix := &Index{bySite: make(map[object.SiteID]map[object.LOid]Signature, len(dbs))}
	for site, db := range dbs {
		m := make(map[object.LOid]Signature, db.Len())
		for _, class := range db.Schema().ClassNames() {
			ext := db.Extent(class)
			ext.Scan(func(o *object.Object) bool {
				m[o.LOid] = Compute(ext.Class(), o)
				return true
			})
		}
		ix.bySite[site] = m
	}
	return ix
}

// Lookup returns the signature of the object stored at (site, loid).
func (ix *Index) Lookup(site object.SiteID, loid object.LOid) (Signature, bool) {
	s, ok := ix.bySite[site][loid]
	return s, ok
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int {
	n := 0
	for _, m := range ix.bySite {
		n += len(m)
	}
	return n
}

// Bytes returns the modeled storage size of the index (one signature per
// object), the replication cost driver.
func (ix *Index) Bytes() int { return ix.Len() * Size }
