package signature

import (
	"testing"

	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
)

func TestComputeAndProbe(t *testing.T) {
	fx := school.New()
	db2 := fx.Databases["DB2"]
	teacher := db2.Schema().Class("Teacher")
	t1p := db2.Extent("Teacher").Get("t1'") // Kelly, speciality database

	sig := Compute(teacher, t1p)
	if !sig.MightEqual("speciality", object.Str("database")) {
		t.Error("signature misses the stored value (false negative)")
	}
	if !sig.MightEqual("name", object.Str("Kelly")) {
		t.Error("signature misses the stored name")
	}
	if sig.MightBeNull("speciality") {
		t.Error("non-null attribute probes as possibly null")
	}
	if !sig.RulesOutEquality("speciality", object.Str("network")) {
		t.Error("signature fails to rule out a different value")
	}
	if sig.RulesOutEquality("speciality", object.Str("database")) {
		t.Error("signature rules out the stored value")
	}
}

func TestNullAttributesProbeAsNull(t *testing.T) {
	fx := school.New()
	db1 := fx.Databases["DB1"]
	student := db1.Schema().Class("Student")
	s1 := db1.Extent("Student").Get("s1") // sex is null

	sig := Compute(student, s1)
	if !sig.MightBeNull("sex") {
		t.Error("null attribute does not probe as null")
	}
	// A null value can never be ruled out as unequal: the real verdict
	// would be unknown, not false.
	if sig.RulesOutEquality("sex", object.Str("male")) {
		t.Error("null attribute ruled out — would synthesize a wrong false verdict")
	}
}

func TestComplexAttributesNotSummarized(t *testing.T) {
	fx := school.New()
	db1 := fx.Databases["DB1"]
	teacher := db1.Schema().Class("Teacher")
	t1 := db1.Extent("Teacher").Get("t1") // department = d1

	sig := Compute(teacher, t1)
	// The complex attribute contributes nothing, so even its stored
	// reference value probes as possibly-anything only via collisions;
	// what matters is we never synthesize verdicts on complex attributes,
	// which the federation layer guarantees by probing only single-step
	// primitive suffixes.
	_ = sig
}

func TestBuildAndLookup(t *testing.T) {
	fx := school.New()
	ix := Build(fx.Databases)
	wantObjects := 0
	for _, db := range fx.Databases {
		wantObjects += db.Len()
	}
	if ix.Len() != wantObjects {
		t.Errorf("Len = %d, want %d", ix.Len(), wantObjects)
	}
	if ix.Bytes() != wantObjects*Size {
		t.Errorf("Bytes = %d", ix.Bytes())
	}
	sig, ok := ix.Lookup("DB2", "t1'")
	if !ok {
		t.Fatal("Lookup failed")
	}
	if !sig.MightEqual("speciality", object.Str("database")) {
		t.Error("indexed signature wrong")
	}
	if _, ok := ix.Lookup("DB9", "x"); ok {
		t.Error("Lookup of unknown object succeeded")
	}
}

func TestFalsePositiveRateBounded(t *testing.T) {
	fx := school.New()
	db2 := fx.Databases["DB2"]
	teacher := db2.Schema().Class("Teacher")
	t1p := db2.Extent("Teacher").Get("t1'")
	sig := Compute(teacher, t1p)

	fp := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		v := object.Int(int64(i) + 1_000_000)
		if sig.MightEqual("speciality", v) {
			fp++
		}
	}
	// With ~3 summarized attributes (6 bits set of 256) the false-positive
	// rate should be far below 1%.
	if fp > trials/100 {
		t.Errorf("false positives: %d / %d", fp, trials)
	}
}
