package schema

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hetfed/hetfed/internal/object"
)

// randomFederationSchemas builds nSites component schemas for one class,
// each holding a random subset of a global attribute pool (every attribute
// held somewhere).
func randomFederationSchemas(rng *rand.Rand, nSites, nAttrs int) (map[object.SiteID]*Schema, []Correspondence, [][]bool) {
	held := make([][]bool, nSites)
	for i := range held {
		held[i] = make([]bool, nAttrs)
		for j := range held[i] {
			held[i][j] = rng.Intn(2) == 0
		}
	}
	for j := 0; j < nAttrs; j++ {
		covered := false
		for i := range held {
			covered = covered || held[i][j]
		}
		if !covered {
			held[rng.Intn(nSites)][j] = true
		}
	}

	schemas := make(map[object.SiteID]*Schema, nSites)
	corr := Correspondence{GlobalClass: "C"}
	for i := 0; i < nSites; i++ {
		site := object.SiteID(fmt.Sprintf("DB%d", i+1))
		s := NewSchema(site)
		var attrs []Attribute
		for j := 0; j < nAttrs; j++ {
			if held[i][j] {
				attrs = append(attrs, Prim(fmt.Sprintf("a%d", j), object.KindInt))
			}
		}
		// Every constituent needs at least one attribute.
		if len(attrs) == 0 {
			attrs = append(attrs, Prim("a0", object.KindInt))
			held[i][0] = true
		}
		s.MustAddClass(MustClass("C", attrs))
		schemas[site] = s
		corr.Members = append(corr.Members, Constituent{Site: site, Class: "C"})
	}
	return schemas, []Correspondence{corr}, held
}

// TestIntegrateUnionComplementProperty: for random attribute distributions,
// the global class is the union of the constituents' attributes, and each
// constituent's missing attributes are exactly the complement of what it
// holds.
func TestIntegrateUnionComplementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSites := 2 + rng.Intn(4)
		nAttrs := 1 + rng.Intn(6)
		schemas, corrs, held := randomFederationSchemas(rng, nSites, nAttrs)

		g, err := Integrate(schemas, corrs)
		if err != nil {
			return false
		}
		gc := g.Class("C")

		// Union: every held attribute appears globally.
		heldAnywhere := map[string]bool{}
		for i := range held {
			for j, h := range held[i] {
				if h {
					heldAnywhere[fmt.Sprintf("a%d", j)] = true
				}
			}
		}
		if len(gc.Attrs) != len(heldAnywhere) {
			return false
		}
		for a := range heldAnywhere {
			if !gc.Has(a) {
				return false
			}
		}

		// Complement: Holds ⊕ MissingAttrs per site.
		for i := range held {
			site := object.SiteID(fmt.Sprintf("DB%d", i+1))
			missing := map[string]bool{}
			for _, m := range gc.MissingAttrs(site) {
				missing[m] = true
			}
			for _, a := range gc.AttrNames() {
				if gc.Holds(site, a) == missing[a] {
					return false
				}
			}
			if len(missing)+countHeld(schemas[site].Class("C")) != len(gc.Attrs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func countHeld(c *Class) int { return len(c.Attrs) }
