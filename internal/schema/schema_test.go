package schema

import (
	"reflect"
	"strings"
	"testing"

	"github.com/hetfed/hetfed/internal/object"
)

func db1Schema() *Schema {
	s := NewSchema("DB1")
	s.MustAddClass(MustClass("Student", []Attribute{
		Prim("s-no", object.KindInt),
		Prim("name", object.KindString),
		Prim("age", object.KindInt),
		Complex("advisor", "Teacher"),
		Prim("sex", object.KindString),
	}, "s-no"))
	s.MustAddClass(MustClass("Teacher", []Attribute{
		Prim("name", object.KindString),
		Complex("department", "Department"),
	}, "name"))
	s.MustAddClass(MustClass("Department", []Attribute{
		Prim("name", object.KindString),
	}, "name"))
	return s
}

func db2Schema() *Schema {
	s := NewSchema("DB2")
	s.MustAddClass(MustClass("Student", []Attribute{
		Prim("s-no", object.KindInt),
		Prim("name", object.KindString),
		Prim("sex", object.KindString),
		Complex("address", "Address"),
		Complex("advisor", "Teacher"),
	}, "s-no"))
	s.MustAddClass(MustClass("Teacher", []Attribute{
		Prim("name", object.KindString),
		Prim("speciality", object.KindString),
	}, "name"))
	s.MustAddClass(MustClass("Address", []Attribute{
		Prim("city", object.KindString),
		Prim("street", object.KindString),
		Prim("zipcode", object.KindInt),
	}, "city", "street"))
	return s
}

func db3Schema() *Schema {
	s := NewSchema("DB3")
	s.MustAddClass(MustClass("Department", []Attribute{
		Prim("name", object.KindString),
		Prim("location", object.KindString),
	}, "name"))
	s.MustAddClass(MustClass("Teacher", []Attribute{
		Prim("name", object.KindString),
		Complex("department", "Department"),
	}, "name"))
	return s
}

func schoolCorrs() []Correspondence {
	return []Correspondence{
		{GlobalClass: "Student", Members: []Constituent{
			{Site: "DB1", Class: "Student"}, {Site: "DB2", Class: "Student"},
		}},
		{GlobalClass: "Teacher", Members: []Constituent{
			{Site: "DB1", Class: "Teacher"}, {Site: "DB2", Class: "Teacher"}, {Site: "DB3", Class: "Teacher"},
		}},
		{GlobalClass: "Department", Members: []Constituent{
			{Site: "DB1", Class: "Department"}, {Site: "DB3", Class: "Department"},
		}},
		{GlobalClass: "Address", Members: []Constituent{
			{Site: "DB2", Class: "Address"},
		}},
	}
}

func schoolGlobal(t *testing.T) *Global {
	t.Helper()
	g, err := Integrate(map[object.SiteID]*Schema{
		"DB1": db1Schema(), "DB2": db2Schema(), "DB3": db3Schema(),
	}, schoolCorrs())
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	return g
}

func TestNewClassErrors(t *testing.T) {
	if _, err := NewClass("C", []Attribute{Prim("a", object.KindInt), Prim("a", object.KindInt)}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewClass("C", []Attribute{{Name: "a"}}); err == nil {
		t.Error("untyped attribute accepted")
	}
	if _, err := NewClass("C", []Attribute{{Name: "a", Domain: "D", Prim: object.KindInt}}); err == nil {
		t.Error("primitive+complex attribute accepted")
	}
	if _, err := NewClass("C", []Attribute{{Name: ""}}); err == nil {
		t.Error("empty attribute name accepted")
	}
	if _, err := NewClass("C", []Attribute{Prim("a", object.KindInt)}, "nope"); err == nil {
		t.Error("unknown key attribute accepted")
	}
}

func TestClassAccessors(t *testing.T) {
	c := MustClass("Student", []Attribute{
		Prim("name", object.KindString),
		Complex("advisor", "Teacher"),
	}, "name")
	a, ok := c.Attr("advisor")
	if !ok || !a.IsComplex() || a.Domain != "Teacher" {
		t.Errorf("Attr(advisor) = %+v, %v", a, ok)
	}
	if _, ok := c.Attr("nope"); ok {
		t.Error("Attr on unknown name returned ok")
	}
	if !c.Has("name") || c.Has("nope") {
		t.Error("Has wrong")
	}
	if got := c.AttrNames(); !reflect.DeepEqual(got, []string{"name", "advisor"}) {
		t.Errorf("AttrNames = %v", got)
	}
}

func TestSchemaValidate(t *testing.T) {
	s := NewSchema("DB1")
	s.MustAddClass(MustClass("A", []Attribute{Complex("b", "B")}))
	if err := s.Validate(); err == nil {
		t.Error("dangling domain accepted")
	}
	s.MustAddClass(MustClass("B", []Attribute{Prim("x", object.KindInt)}))
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := s.AddClass(MustClass("A", nil)); err == nil {
		t.Error("duplicate class accepted")
	}
	if got := s.ClassNames(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("ClassNames = %v", got)
	}
}

func TestSchemaResolvePath(t *testing.T) {
	s := db1Schema()
	a, err := s.ResolvePath("Student", []string{"advisor", "department", "name"})
	if err != nil {
		t.Fatalf("ResolvePath: %v", err)
	}
	if a.IsComplex() || a.Prim != object.KindString {
		t.Errorf("resolved attribute = %+v", a)
	}
	if _, err := s.ResolvePath("Student", []string{"name", "x"}); err == nil {
		t.Error("primitive mid-path accepted")
	}
	if _, err := s.ResolvePath("Student", []string{"nope"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := s.ResolvePath("Nope", []string{"a"}); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := s.ResolvePath("Student", nil); err == nil {
		t.Error("empty path accepted")
	}
}

func TestIntegrateSchoolAttributeUnion(t *testing.T) {
	g := schoolGlobal(t)

	student := g.Class("Student")
	if student == nil {
		t.Fatal("no global Student")
	}
	want := []string{"s-no", "name", "age", "advisor", "sex", "address"}
	if got := student.AttrNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("Student attrs = %v, want %v", got, want)
	}

	teacher := g.Class("Teacher")
	wantT := []string{"name", "department", "speciality"}
	if got := teacher.AttrNames(); !reflect.DeepEqual(got, wantT) {
		t.Errorf("Teacher attrs = %v, want %v", got, wantT)
	}
}

func TestIntegrateSchoolMissingAttrs(t *testing.T) {
	g := schoolGlobal(t)
	cases := []struct {
		class string
		site  object.SiteID
		want  []string
	}{
		{"Student", "DB1", []string{"address"}},
		{"Student", "DB2", []string{"age"}},
		{"Teacher", "DB1", []string{"speciality"}},
		{"Teacher", "DB2", []string{"department"}},
		{"Teacher", "DB3", []string{"speciality"}},
		{"Department", "DB1", []string{"location"}},
		{"Department", "DB3", []string{}},
	}
	for _, c := range cases {
		got := g.Class(c.class).MissingAttrs(c.site)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("MissingAttrs(%s@%s) = %v, want %v", c.class, c.site, got, c.want)
		}
	}
	if g.Class("Student").MissingAttrs("DB3") != nil {
		t.Error("MissingAttrs for absent constituent should be nil")
	}
}

func TestGlobalClassHolds(t *testing.T) {
	g := schoolGlobal(t)
	teacher := g.Class("Teacher")
	if teacher.Holds("DB1", "speciality") {
		t.Error("DB1 Teacher should not hold speciality")
	}
	if !teacher.Holds("DB2", "speciality") {
		t.Error("DB2 Teacher should hold speciality")
	}
	if teacher.Holds("DB9", "name") {
		t.Error("unknown site should hold nothing")
	}
}

func TestGlobalClassSites(t *testing.T) {
	g := schoolGlobal(t)
	got := g.Class("Teacher").Sites()
	want := []object.SiteID{"DB1", "DB2", "DB3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Sites = %v, want %v", got, want)
	}
}

func TestGlobalForAndDomainRewrite(t *testing.T) {
	g := schoolGlobal(t)
	if gc := g.GlobalFor("DB2", "Address"); gc == nil || gc.Name != "Address" {
		t.Error("GlobalFor(DB2, Address) wrong")
	}
	if g.GlobalFor("DB1", "Address") != nil {
		t.Error("GlobalFor for absent constituent should be nil")
	}
	a, _ := g.Class("Student").Attr("advisor")
	if a.Domain != "Teacher" {
		t.Errorf("advisor domain = %s", a.Domain)
	}
}

func TestGlobalResolvePathAndPathClasses(t *testing.T) {
	g := schoolGlobal(t)
	a, err := g.ResolvePath("Student", []string{"advisor", "speciality"})
	if err != nil {
		t.Fatalf("ResolvePath: %v", err)
	}
	if a.Prim != object.KindString {
		t.Errorf("attribute = %+v", a)
	}
	cls, err := g.PathClasses("Student", []string{"advisor", "department", "name"})
	if err != nil {
		t.Fatalf("PathClasses: %v", err)
	}
	want := []string{"Student", "Teacher", "Department"}
	if !reflect.DeepEqual(cls, want) {
		t.Errorf("PathClasses = %v, want %v", cls, want)
	}
	cls, err = g.PathClasses("Student", []string{"advisor"})
	if err != nil {
		t.Fatalf("PathClasses(advisor): %v", err)
	}
	want = []string{"Student", "Teacher"}
	if !reflect.DeepEqual(cls, want) {
		t.Errorf("PathClasses(advisor) = %v, want %v", cls, want)
	}
	if _, err := g.PathClasses("Student", []string{"name", "x"}); err == nil {
		t.Error("primitive mid-path accepted")
	}
}

func TestIntegrateErrors(t *testing.T) {
	schemas := map[object.SiteID]*Schema{
		"DB1": db1Schema(), "DB2": db2Schema(), "DB3": db3Schema(),
	}
	// Unknown site.
	_, err := Integrate(schemas, []Correspondence{
		{GlobalClass: "X", Members: []Constituent{{Site: "DB9", Class: "Student"}}},
	})
	if err == nil || !strings.Contains(err.Error(), "no schema") {
		t.Errorf("unknown site: %v", err)
	}
	// Unknown class.
	_, err = Integrate(schemas, []Correspondence{
		{GlobalClass: "X", Members: []Constituent{{Site: "DB1", Class: "Nope"}}},
	})
	if err == nil || !strings.Contains(err.Error(), "no class") {
		t.Errorf("unknown class: %v", err)
	}
	// Unintegrated domain class.
	_, err = Integrate(schemas, []Correspondence{
		{GlobalClass: "Student", Members: []Constituent{{Site: "DB1", Class: "Student"}}},
	})
	if err == nil {
		t.Error("unintegrated domain accepted")
	}
	// Empty constituents.
	_, err = Integrate(schemas, []Correspondence{{GlobalClass: "X"}})
	if err == nil {
		t.Error("empty correspondence accepted")
	}
	// Type conflict.
	bad := NewSchema("DB4")
	bad.MustAddClass(MustClass("Student", []Attribute{Prim("name", object.KindInt)}))
	schemas["DB4"] = bad
	_, err = Integrate(schemas, []Correspondence{
		{GlobalClass: "Student", Members: []Constituent{
			{Site: "DB1", Class: "Student"}, {Site: "DB4", Class: "Student"},
		}},
		{GlobalClass: "Teacher", Members: []Constituent{{Site: "DB1", Class: "Teacher"}}},
		{GlobalClass: "Department", Members: []Constituent{{Site: "DB1", Class: "Department"}}},
	})
	if err == nil || !strings.Contains(err.Error(), "type conflict") {
		t.Errorf("type conflict: %v", err)
	}
	delete(schemas, "DB4")
	// Duplicate global class.
	_, err = Integrate(schemas, []Correspondence{
		{GlobalClass: "D", Members: []Constituent{{Site: "DB1", Class: "Department"}}},
		{GlobalClass: "D", Members: []Constituent{{Site: "DB3", Class: "Department"}}},
	})
	if err == nil {
		t.Error("duplicate global class accepted")
	}
	// Constituent claimed twice.
	_, err = Integrate(schemas, []Correspondence{
		{GlobalClass: "D1", Members: []Constituent{{Site: "DB1", Class: "Department"}}},
		{GlobalClass: "D2", Members: []Constituent{{Site: "DB1", Class: "Department"}}},
	})
	if err == nil {
		t.Error("constituent claimed twice accepted")
	}
}

func TestIntegrateKeyUnion(t *testing.T) {
	g := schoolGlobal(t)
	if got := g.Class("Student").Key; !reflect.DeepEqual(got, []string{"s-no"}) {
		t.Errorf("Student key = %v", got)
	}
	if got := g.Class("Address").Key; !reflect.DeepEqual(got, []string{"city", "street"}) {
		t.Errorf("Address key = %v", got)
	}
}
