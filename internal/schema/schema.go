// Package schema models component object schemas and their integration into
// a global object schema.
//
// A component schema is a set of classes, each with primitive attributes and
// complex attributes (whose domain is another class); together the complex
// attributes form the class composition hierarchy. Schema integration
// constructs each global class as the attribute union of its constituent
// classes (the classes in component databases carrying the same semantics).
// A global attribute absent from a constituent class is a missing attribute
// of that class: its data is missing at that site, which is the primary
// source of maybe results during query processing.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hetfed/hetfed/internal/object"
)

// Attribute describes one attribute of a class. An attribute is either
// primitive (Prim set, Domain empty) or complex (Domain names the class its
// values reference).
type Attribute struct {
	Name string
	// Domain is the referenced class name for complex attributes, empty for
	// primitive attributes.
	Domain string
	// Prim is the value kind of a primitive attribute (KindInt, KindFloat,
	// KindString or KindBool); it is zero for complex attributes.
	Prim object.Kind
	// MultiValued marks set-valued attributes (paper §5 extension).
	MultiValued bool
}

// IsComplex reports whether the attribute references another class.
func (a Attribute) IsComplex() bool { return a.Domain != "" }

// Prim returns a primitive attribute descriptor.
func Prim(name string, kind object.Kind) Attribute {
	return Attribute{Name: name, Prim: kind}
}

// Complex returns a complex attribute descriptor referencing domain class.
func Complex(name, domain string) Attribute {
	return Attribute{Name: name, Domain: domain}
}

// Class describes one class of a component schema: an ordered attribute list
// plus the entity key used to identify isomeric objects across databases.
type Class struct {
	Name  string
	Attrs []Attribute
	// Key lists the attributes whose values identify the real-world entity
	// an object represents; objects in different databases with equal key
	// values are isomeric. Empty means objects of this class are never
	// matched across sites.
	Key []string

	byName map[string]int
}

// NewClass builds a class from its attributes. Attribute names must be
// unique within the class.
func NewClass(name string, attrs []Attribute, key ...string) (*Class, error) {
	c := &Class{
		Name:   name,
		Attrs:  make([]Attribute, len(attrs)),
		Key:    append([]string(nil), key...),
		byName: make(map[string]int, len(attrs)),
	}
	copy(c.Attrs, attrs)
	for i, a := range c.Attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("class %s: attribute %d has empty name", name, i)
		}
		if _, dup := c.byName[a.Name]; dup {
			return nil, fmt.Errorf("class %s: duplicate attribute %q", name, a.Name)
		}
		if a.IsComplex() && a.Prim != 0 {
			return nil, fmt.Errorf("class %s: attribute %q is both primitive and complex", name, a.Name)
		}
		if !a.IsComplex() && a.Prim == 0 {
			return nil, fmt.Errorf("class %s: attribute %q has no type", name, a.Name)
		}
		c.byName[a.Name] = i
	}
	for _, k := range c.Key {
		if _, ok := c.byName[k]; !ok {
			return nil, fmt.Errorf("class %s: key attribute %q not defined", name, k)
		}
	}
	return c, nil
}

// MustClass is NewClass that panics on error; intended for fixtures.
func MustClass(name string, attrs []Attribute, key ...string) *Class {
	c, err := NewClass(name, attrs, key...)
	if err != nil {
		panic(err)
	}
	return c
}

// Attr returns the named attribute and whether it exists.
func (c *Class) Attr(name string) (Attribute, bool) {
	i, ok := c.byName[name]
	if !ok {
		return Attribute{}, false
	}
	return c.Attrs[i], true
}

// Has reports whether the class defines the named attribute.
func (c *Class) Has(name string) bool {
	_, ok := c.byName[name]
	return ok
}

// AttrNames returns the class's attribute names in declaration order.
func (c *Class) AttrNames() []string {
	names := make([]string, len(c.Attrs))
	for i, a := range c.Attrs {
		names[i] = a.Name
	}
	return names
}

// Schema is one component database's schema: its classes, indexed by name.
type Schema struct {
	Site    object.SiteID
	classes map[string]*Class
	order   []string
}

// NewSchema returns an empty schema for the given site.
func NewSchema(site object.SiteID) *Schema {
	return &Schema{Site: site, classes: make(map[string]*Class)}
}

// AddClass registers a class. Class names must be unique, and complex
// attribute domains are validated lazily by Validate.
func (s *Schema) AddClass(c *Class) error {
	if _, dup := s.classes[c.Name]; dup {
		return fmt.Errorf("schema %s: duplicate class %q", s.Site, c.Name)
	}
	s.classes[c.Name] = c
	s.order = append(s.order, c.Name)
	return nil
}

// MustAddClass is AddClass that panics on error; intended for fixtures.
func (s *Schema) MustAddClass(c *Class) {
	if err := s.AddClass(c); err != nil {
		panic(err)
	}
}

// Class returns the named class, or nil when absent.
func (s *Schema) Class(name string) *Class { return s.classes[name] }

// ClassNames returns the schema's class names in registration order.
func (s *Schema) ClassNames() []string {
	return append([]string(nil), s.order...)
}

// Validate checks that every complex attribute's domain class exists.
func (s *Schema) Validate() error {
	for _, name := range s.order {
		c := s.classes[name]
		for _, a := range c.Attrs {
			if a.IsComplex() && s.classes[a.Domain] == nil {
				return fmt.Errorf("schema %s: class %s attribute %s references unknown class %q",
					s.Site, c.Name, a.Name, a.Domain)
			}
		}
	}
	return nil
}

// ResolvePath walks a path expression (attribute names) starting at the
// given class and returns the attribute reached by the final step. Every
// step but the last must be a complex attribute.
func (s *Schema) ResolvePath(class string, path []string) (Attribute, error) {
	return resolvePath(class, path, func(name string) attrLooker {
		if c := s.classes[name]; c != nil {
			return c
		}
		return nil
	})
}

type attrLooker interface {
	Attr(name string) (Attribute, bool)
}

func resolvePath(class string, path []string, look func(string) attrLooker) (Attribute, error) {
	if len(path) == 0 {
		return Attribute{}, fmt.Errorf("empty path on class %s", class)
	}
	cur := class
	for i, step := range path {
		c := look(cur)
		if c == nil {
			return Attribute{}, fmt.Errorf("path %s: unknown class %q", strings.Join(path, "."), cur)
		}
		a, ok := c.Attr(step)
		if !ok {
			return Attribute{}, fmt.Errorf("path %s: class %s has no attribute %q",
				strings.Join(path, "."), cur, step)
		}
		if i == len(path)-1 {
			return a, nil
		}
		if !a.IsComplex() {
			return Attribute{}, fmt.Errorf("path %s: attribute %s.%s is primitive but is not the last step",
				strings.Join(path, "."), cur, step)
		}
		cur = a.Domain
	}
	panic("unreachable")
}

// Constituent identifies one constituent class of a global class.
type Constituent struct {
	Site  object.SiteID
	Class string
}

// GlobalClass is a class of the integrated global schema: the attribute
// union of its constituent classes, plus per-site missing-attribute sets.
type GlobalClass struct {
	Name  string
	Attrs []Attribute
	// Key is the entity key inherited from the constituent classes.
	Key []string
	// Constituents maps each site holding a constituent class to that
	// class's local name.
	Constituents map[object.SiteID]string

	byName  map[string]int
	missing map[object.SiteID]map[string]bool
}

// Attr returns the named global attribute and whether it exists.
func (g *GlobalClass) Attr(name string) (Attribute, bool) {
	i, ok := g.byName[name]
	if !ok {
		return Attribute{}, false
	}
	return g.Attrs[i], true
}

// Has reports whether the global class defines the named attribute.
func (g *GlobalClass) Has(name string) bool {
	_, ok := g.byName[name]
	return ok
}

// AttrNames returns the global attribute names in integration order.
func (g *GlobalClass) AttrNames() []string {
	names := make([]string, len(g.Attrs))
	for i, a := range g.Attrs {
		names[i] = a.Name
	}
	return names
}

// Holds reports whether the constituent class at the given site defines the
// named attribute. A false return for a site that has a constituent class
// means the attribute is a missing attribute of that class.
func (g *GlobalClass) Holds(site object.SiteID, attr string) bool {
	m, ok := g.missing[site]
	if !ok {
		return false
	}
	return !m[attr]
}

// MissingAttrs returns the missing attributes of the constituent class at
// the given site, sorted. It returns nil when the site has no constituent.
func (g *GlobalClass) MissingAttrs(site object.SiteID) []string {
	m, ok := g.missing[site]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Sites returns the sites holding a constituent class, sorted.
func (g *GlobalClass) Sites() []object.SiteID {
	out := make([]object.SiteID, 0, len(g.Constituents))
	for s := range g.Constituents {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Global is the integrated global schema.
type Global struct {
	classes map[string]*GlobalClass
	order   []string
	// byConstituent maps site/local-class to the owning global class.
	byConstituent map[Constituent]string
}

// Class returns the named global class, or nil.
func (g *Global) Class(name string) *GlobalClass { return g.classes[name] }

// ClassNames returns the global class names in integration order.
func (g *Global) ClassNames() []string { return append([]string(nil), g.order...) }

// GlobalFor returns the global class that the given constituent class was
// integrated into, or nil.
func (g *Global) GlobalFor(site object.SiteID, localClass string) *GlobalClass {
	name, ok := g.byConstituent[Constituent{Site: site, Class: localClass}]
	if !ok {
		return nil
	}
	return g.classes[name]
}

// ResolvePath walks a path expression through the global composition
// hierarchy, returning the attribute reached by the final step.
func (g *Global) ResolvePath(class string, path []string) (Attribute, error) {
	return resolvePath(class, path, func(name string) attrLooker {
		if c := g.classes[name]; c != nil {
			return c
		}
		return nil
	})
}

// PathClasses returns the classes visited by a path expression, starting
// with the range class itself; for a path ending in a primitive attribute
// the result has one entry per complex step plus the range class.
func (g *Global) PathClasses(class string, path []string) ([]string, error) {
	out := []string{class}
	cur := class
	for i, step := range path {
		c := g.classes[cur]
		if c == nil {
			return nil, fmt.Errorf("unknown global class %q", cur)
		}
		a, ok := c.Attr(step)
		if !ok {
			return nil, fmt.Errorf("class %s has no attribute %q", cur, step)
		}
		if i == len(path)-1 {
			if a.IsComplex() {
				out = append(out, a.Domain)
			}
			break
		}
		if !a.IsComplex() {
			return nil, fmt.Errorf("attribute %s.%s is primitive mid-path", cur, step)
		}
		cur = a.Domain
		out = append(out, cur)
	}
	return out, nil
}

// Correspondence declares that the listed constituent classes all represent
// the same global class.
type Correspondence struct {
	GlobalClass string
	Members     []Constituent
}

// Integrate constructs the global schema from component schemas and class
// correspondences, following the paper's integration rule: each global class
// is the set union of its constituent classes' attributes. Attributes with
// the same name in corresponding classes must agree on type; complex
// attribute domains are rewritten to the corresponding global class names.
func Integrate(schemas map[object.SiteID]*Schema, corrs []Correspondence) (*Global, error) {
	for site, s := range schemas {
		if s.Site != site {
			return nil, fmt.Errorf("schema registered under %s reports site %s", site, s.Site)
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}

	// globalOf maps (site, local class) -> global class name so complex
	// attribute domains can be rewritten.
	globalOf := make(map[Constituent]string)
	for _, corr := range corrs {
		for _, m := range corr.Members {
			key := m
			if prev, dup := globalOf[key]; dup {
				return nil, fmt.Errorf("constituent %s@%s claimed by both %s and %s",
					m.Class, m.Site, prev, corr.GlobalClass)
			}
			globalOf[key] = corr.GlobalClass
		}
	}

	g := &Global{
		classes:       make(map[string]*GlobalClass, len(corrs)),
		byConstituent: globalOf,
	}

	for _, corr := range corrs {
		if _, dup := g.classes[corr.GlobalClass]; dup {
			return nil, fmt.Errorf("duplicate global class %q", corr.GlobalClass)
		}
		if len(corr.Members) == 0 {
			return nil, fmt.Errorf("global class %q has no constituents", corr.GlobalClass)
		}
		gc := &GlobalClass{
			Name:         corr.GlobalClass,
			Constituents: make(map[object.SiteID]string, len(corr.Members)),
			byName:       make(map[string]int),
			missing:      make(map[object.SiteID]map[string]bool),
		}
		for _, m := range corr.Members {
			s := schemas[m.Site]
			if s == nil {
				return nil, fmt.Errorf("global class %s: no schema for site %s", corr.GlobalClass, m.Site)
			}
			lc := s.Class(m.Class)
			if lc == nil {
				return nil, fmt.Errorf("global class %s: site %s has no class %q",
					corr.GlobalClass, m.Site, m.Class)
			}
			if prev, dup := gc.Constituents[m.Site]; dup {
				return nil, fmt.Errorf("global class %s: site %s contributes both %s and %s",
					corr.GlobalClass, m.Site, prev, m.Class)
			}
			gc.Constituents[m.Site] = m.Class

			for _, a := range lc.Attrs {
				ga := a
				if a.IsComplex() {
					dom, ok := globalOf[Constituent{Site: m.Site, Class: a.Domain}]
					if !ok {
						return nil, fmt.Errorf("global class %s: domain class %s of %s.%s@%s is not integrated",
							corr.GlobalClass, a.Domain, m.Class, a.Name, m.Site)
					}
					ga.Domain = dom
				}
				if i, seen := gc.byName[a.Name]; seen {
					if err := compatibleAttr(gc.Attrs[i], ga); err != nil {
						return nil, fmt.Errorf("global class %s attribute %s: %w", corr.GlobalClass, a.Name, err)
					}
					continue
				}
				gc.byName[ga.Name] = len(gc.Attrs)
				gc.Attrs = append(gc.Attrs, ga)
			}
			// The entity key is the union of constituent keys (they must
			// agree where they overlap; first writer wins, later conflicts
			// are rejected).
			for _, k := range lc.Key {
				if !contains(gc.Key, k) {
					gc.Key = append(gc.Key, k)
				}
			}
		}

		// Compute missing attributes per constituent class: the global
		// attributes the local class does not define.
		for site, lname := range gc.Constituents {
			lc := schemas[site].Class(lname)
			miss := make(map[string]bool)
			for _, a := range gc.Attrs {
				if !lc.Has(a.Name) {
					miss[a.Name] = true
				}
			}
			gc.missing[site] = miss
		}

		g.classes[gc.Name] = gc
		g.order = append(g.order, gc.Name)
	}

	// Validate global composition hierarchy: all global domains exist.
	for _, name := range g.order {
		gc := g.classes[name]
		for _, a := range gc.Attrs {
			if a.IsComplex() && g.classes[a.Domain] == nil {
				return nil, fmt.Errorf("global class %s attribute %s references unintegrated class %q",
					name, a.Name, a.Domain)
			}
		}
	}
	return g, nil
}

func compatibleAttr(a, b Attribute) error {
	if a.IsComplex() != b.IsComplex() {
		return fmt.Errorf("primitive/complex conflict between constituents")
	}
	if a.IsComplex() {
		if a.Domain != b.Domain {
			return fmt.Errorf("domain conflict: %s vs %s", a.Domain, b.Domain)
		}
		return nil
	}
	if a.Prim != b.Prim {
		return fmt.Errorf("type conflict: %s vs %s", a.Prim, b.Prim)
	}
	return nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
