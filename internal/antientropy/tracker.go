package antientropy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
)

// Tracker maintains one replica's per-class digests plus its divergence
// state: which classes are currently suspect (digest disagreed with a
// quorum of peers in the last exchange) and the running repair totals the
// health surface reports. Safe for concurrent use; every update is O(1).
type Tracker struct {
	mu       sync.Mutex
	digests  map[string]*Digest
	suspect  map[string]string // class → reason
	round    uint64            // completed anti-entropy rounds
	repaired uint64            // bindings applied through repair
	bytes    uint64            // repair wire bytes (both directions)
	conflict uint64            // bindings repair could not apply
}

// NewTracker returns an empty tracker (the digest state of empty tables).
func NewTracker() *Tracker {
	return &Tracker{
		digests: make(map[string]*Digest),
		suspect: make(map[string]string),
	}
}

// Observe folds one applied binding into its class digest in O(1). Call
// it exactly once per binding actually applied to the replica — the
// server's bind path and the storage-engine hook (HookEngine) are the two
// canonical call sites; a deployment uses one or the other, never both.
func (t *Tracker) Observe(class string, goid object.GOid, site object.SiteID, loid object.LOid) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.digests[class]
	if d == nil {
		d = &Digest{}
		t.digests[class] = d
	}
	d.Add(goid, site, loid)
}

// Seed rebuilds the digests from a full replica snapshot (server start,
// after WAL recovery and fixture import). It resets previous digest state
// but keeps suspect marks and repair totals.
func (t *Tracker) Seed(tables *gmap.Tables) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.digests = make(map[string]*Digest)
	if tables == nil {
		return
	}
	for _, class := range tables.Classes() {
		tab := tables.Table(class)
		d := &Digest{}
		for _, goid := range tab.GOids() {
			for _, loc := range tab.Locations(goid) {
				d.Add(goid, loc.Site, loc.LOid)
			}
		}
		t.digests[class] = d
	}
}

// Snapshot returns a copy of the per-class digests, the unit one digest
// exchange ships.
func (t *Tracker) Snapshot() map[string]Digest {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]Digest, len(t.digests))
	for class, d := range t.digests {
		out[class] = *d
	}
	return out
}

// Digest returns one class's digest (the zero digest when the class was
// never observed).
func (t *Tracker) Digest(class string) Digest {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d := t.digests[class]; d != nil {
		return *d
	}
	return Digest{}
}

// MarkSuspect flags a class whose digest disagreed with the peer quorum.
func (t *Tracker) MarkSuspect(class, reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.suspect[class] = reason
}

// ClearSuspect removes a class's suspect mark (its digest agreed with
// every reached peer again).
func (t *Tracker) ClearSuspect(class string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.suspect, class)
}

// Suspects returns the currently suspect classes, sorted.
func (t *Tracker) Suspects() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.suspect))
	for class := range t.suspect {
		out = append(out, class)
	}
	sort.Strings(out)
	return out
}

// SuspectReasons returns the suspect classes with their recorded reasons
// (the health-surface detail view; empty map when converged).
func (t *Tracker) SuspectReasons() map[string]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]string, len(t.suspect))
	for class, reason := range t.suspect {
		out[class] = reason
	}
	return out
}

// SuspectOf intersects the given classes with the suspect set, sorted —
// the per-answer degradation hook: a query touching these classes cannot
// trust this replica's mappings until repair converges.
func (t *Tracker) SuspectOf(classes []string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.suspect) == 0 {
		return nil
	}
	var out []string
	for _, class := range classes {
		if _, ok := t.suspect[class]; ok {
			out = append(out, class)
		}
	}
	sort.Strings(out)
	return out
}

// EndRound records one completed anti-entropy round's repair totals.
func (t *Tracker) EndRound(repairedBindings int, repairedBytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.round++
	t.repaired += uint64(repairedBindings)
	if repairedBytes > 0 {
		t.bytes += uint64(repairedBytes)
	}
}

// NoteConflict counts a binding repair could not apply (a genuine mapping
// conflict, e.g. a GOid reassigned by an authority that restarted from
// stale state). Conflicted classes stay suspect until an operator
// intervenes; repair never overwrites a binding.
func (t *Tracker) NoteConflict() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.conflict++
}

// Stats is the tracker's counters snapshot.
type Stats struct {
	Round            uint64
	RepairedBindings uint64
	RepairedBytes    uint64
	Conflicts        uint64
	Suspects         []string
}

// Stats returns the current counters and suspect set.
func (t *Tracker) Stats() Stats {
	t.mu.Lock()
	round, repaired, bytes, conflicts := t.round, t.repaired, t.bytes, t.conflict
	t.mu.Unlock()
	return Stats{
		Round:            round,
		RepairedBindings: repaired,
		RepairedBytes:    bytes,
		Conflicts:        conflicts,
		Suspects:         t.Suspects(),
	}
}

// Health reports the tracker's divergence state for /healthz (namespace it
// with obs.PrefixHealth("antientropy", ...)): a single "state" entry that
// is "ok(round=N, repaired=B)" while no class is suspect and
// "suspect(C1,C2) round=N repaired=B" otherwise — unhealthy by
// obs.Healthy, so a diverged replica degrades its process's health the
// same way an open breaker does. The repaired figure is cumulative wire
// bytes spent on repair.
func (t *Tracker) Health() map[string]string {
	s := t.Stats()
	if len(s.Suspects) == 0 {
		return map[string]string{
			"state": fmt.Sprintf("ok(round=%d, repaired=%dB)", s.Round, s.RepairedBytes),
		}
	}
	return map[string]string{
		"state": fmt.Sprintf("suspect(%s) round=%d repaired=%dB",
			strings.Join(s.Suspects, ","), s.Round, s.RepairedBytes),
	}
}
