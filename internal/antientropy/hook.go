package antientropy

import (
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/store"
)

// hookEngine decorates a store.StorageEngine so every successfully logged
// bind also updates the tracker's digest — the O(1) per-BindDelta
// maintenance hook for durable replicas, where the engine's LogBind is
// already the single choke point every table mutation passes through.
type hookEngine struct {
	store.StorageEngine
	tr *Tracker
}

// HookEngine wraps an engine with digest maintenance: a bind the engine
// accepts is folded into tracker before the caller applies it in memory.
// The wrap preserves the engine's write-ahead contract (an engine error
// still vetoes the mutation, and the digest is only updated on success).
// Callers that mutate tables without an engine (in-memory replicas) call
// Tracker.Observe directly instead; never both, or bindings fold in twice
// and XOR-cancel.
func HookEngine(inner store.StorageEngine, tr *Tracker) store.StorageEngine {
	if inner == nil || tr == nil {
		return inner
	}
	return &hookEngine{StorageEngine: inner, tr: tr}
}

// LogBind implements store.StorageEngine.
func (h *hookEngine) LogBind(class string, goid object.GOid, site object.SiteID, loid object.LOid) error {
	if err := h.StorageEngine.LogBind(class, goid, site, loid); err != nil {
		return err
	}
	h.tr.Observe(class, goid, site, loid)
	return nil
}

// Unwrap exposes the decorated engine (the coordinator needs the concrete
// *wal.Engine behind its DeltaLog even when the serving path is hooked).
func (h *hookEngine) Unwrap() store.StorageEngine { return h.StorageEngine }
