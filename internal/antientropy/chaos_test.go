package antientropy_test

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/antientropy"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/remote"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store/wal"
	"github.com/hetfed/hetfed/internal/trace"
)

// The chaos suite: a WAL-durable school cluster over real TCP, driven by a
// seeded random schedule of partitions, heals, site kills, restarts,
// inserts, queries and repair rounds, asserting the two safety properties
// the anti-entropy subsystem owes the paper's semantics:
//
//	(a) no certain answer ever contradicts the ground truth — under any
//	    fault pattern, the certain rows are a subset of the fault-free
//	    certain answer (degradation moves rows to maybe, never invents
//	    certainty);
//	(b) once the network heals and every site is back, the replicas
//	    converge within a bounded number of repair rounds
//	    (maxConvergenceRounds) and the full answer returns.
//
// The schedule is deterministic (fixed seed) so a failure reproduces.

// maxConvergenceRounds bounds full-mesh convergence after the last heal.
// One round moves a binding one hop (site→coordinator or site→site), and
// the repair topology is a complete graph over four replicas, so two
// rounds suffice in principle; the bound leaves slack for bindings parked
// on a replica that was restarted mid-round.
const maxConvergenceRounds = 5

// chaosSite is one durable site: the server plus the WAL engine owning its
// on-disk state. A killed site keeps its directory; restart recovers it.
type chaosSite struct {
	srv *remote.Server
	eng *wal.Engine
}

func (s *chaosSite) close() {
	s.srv.Close()
	s.eng.Close()
}

// chaosCluster is the whole federation under test.
type chaosCluster struct {
	t     *testing.T
	root  string
	plan  *fabric.FaultPlan
	sites map[object.SiteID]*chaosSite // live sites only
	addrs map[object.SiteID]string     // live sites only
	coord *remote.Coordinator
}

// startSite boots (or restarts) one durable site from its directory.
func (c *chaosCluster) startSite(site object.SiteID) {
	c.t.Helper()
	fx := school.New()
	eng, db, tables, err := wal.Open(fx.Databases[site].Schema(), wal.Options{
		Dir:  filepath.Join(c.root, string(site)),
		Site: string(site),
	})
	if err != nil {
		c.t.Fatalf("wal.Open(%s): %v", site, err)
	}
	if err := eng.Import(fx.Databases[site], fx.Mapping); err != nil {
		eng.Close()
		c.t.Fatalf("Import(%s): %v", site, err)
	}
	srv, err := remote.NewServer(remote.ServerConfig{
		DB:         db,
		Global:     fx.Global,
		Tables:     tables,
		Engine:     eng,
		Signatures: signature.Build(fx.Databases),
		Tracer:     &trace.Tracer{},
		Metrics:    metrics.New(),
		Faults:     c.plan,
		Call: remote.CallConfig{
			Attempts:         1,
			DialTimeout:      time.Second,
			CallTimeout:      5 * time.Second,
			BreakerThreshold: 0,
		},
	})
	if err != nil {
		eng.Close()
		c.t.Fatalf("NewServer(%s): %v", site, err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		eng.Close()
		c.t.Fatalf("Listen(%s): %v", site, err)
	}
	c.sites[site] = &chaosSite{srv: srv, eng: eng}
	c.addrs[site] = srv.Addr()
	c.rewire()
}

// killSite shuts one site down, keeping its data directory for a restart.
func (c *chaosCluster) killSite(site object.SiteID) {
	c.sites[site].close()
	delete(c.sites, site)
	delete(c.addrs, site)
	c.rewire()
}

// rewire pushes the current live-address map to every server and the
// coordinator. The schedule is single-threaded, so swapping the
// coordinator's map between operations is safe.
func (c *chaosCluster) rewire() {
	addrs := make(map[object.SiteID]string, len(c.addrs))
	for site, addr := range c.addrs {
		addrs[site] = addr
	}
	for _, s := range c.sites {
		s.srv.SetPeers(addrs)
	}
	if c.coord != nil {
		c.coord.Sites = addrs
	}
}

// liveSiteIDs returns the live sites, sorted (deterministic rng draws).
func (c *chaosCluster) liveSiteIDs() []object.SiteID {
	out := make([]object.SiteID, 0, len(c.sites))
	for site := range c.sites {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapshots returns every live replica's digest snapshot, coordinator
// included.
func (c *chaosCluster) snapshots() []map[string]antientropy.Digest {
	out := []map[string]antientropy.Digest{c.coord.Tracker().Snapshot()}
	for _, site := range c.liveSiteIDs() {
		out = append(out, c.sites[site].srv.DigestSnapshot())
	}
	return out
}

// converged reports whether every live replica's digests agree.
func (c *chaosCluster) converged() bool {
	snaps := c.snapshots()
	for i := 1; i < len(snaps); i++ {
		if len(antientropy.DiffClasses(snaps[0], snaps[i])) != 0 {
			return false
		}
	}
	return true
}

// repairRound runs one anti-entropy round on every live replica.
func (c *chaosCluster) repairRound(ctx context.Context) {
	for _, site := range c.liveSiteIDs() {
		c.sites[site].srv.RunAntiEntropyRound(ctx)
	}
	c.coord.RunAntiEntropyRound(ctx)
}

// rowSet renders result rows as a set of canonical strings.
func rowSet(rows []federation.ResultRow) map[string]bool {
	out := make(map[string]bool, len(rows))
	for _, r := range rows {
		out[r.String()] = true
	}
	return out
}

func rowStrings(rows []federation.ResultRow) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// TestChaosPartitionKillRestart is the chaos acceptance scenario (see the
// file comment for the properties it pins).
func TestChaosPartitionKillRestart(t *testing.T) {
	baseline := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()

	c := &chaosCluster{
		t:     t,
		root:  t.TempDir(),
		plan:  fabric.NewFaultPlan(),
		sites: make(map[object.SiteID]*chaosSite),
		addrs: make(map[object.SiteID]string),
	}
	for _, site := range school.Sites {
		c.startSite(site)
	}
	t.Cleanup(func() {
		for _, s := range c.sites {
			s.close()
		}
	})

	fx := school.New()
	deltaLog, gtables, err := wal.OpenLog(wal.Options{Dir: filepath.Join(c.root, "G"), Site: "G"})
	if err != nil {
		t.Fatal(err)
	}
	defer deltaLog.Close()
	if err := deltaLog.Import(nil, fx.Mapping); err != nil {
		t.Fatal(err)
	}
	matcher := isomer.NewMatcher(fx.Global)
	if err := matcher.Adopt(fx.Databases, gtables); err != nil {
		t.Fatal(err)
	}
	c.coord = &remote.Coordinator{
		ID:       "G",
		Global:   fx.Global,
		Tables:   matcher.Tables(),
		Matcher:  matcher,
		Sites:    nil, // rewire fills it
		DeltaLog: deltaLog,
		Metrics:  metrics.New(),
		Call: remote.CallConfig{
			Attempts:         1,
			DialTimeout:      time.Second,
			CallTimeout:      5 * time.Second,
			BreakerThreshold: 0,
			Faults:           c.plan,
		},
	}
	defer c.coord.Close()
	c.rewire()

	// Ground truth: the fault-free answer to Q1.
	truth, _, err := c.coord.Query(school.Q1, exec.CA)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Degraded || len(truth.Certain) == 0 {
		t.Fatalf("fault-free baseline is already degraded: %+v", truth)
	}
	truthCertain := rowSet(truth.Certain)

	algs := []exec.Algorithm{exec.CA, exec.BL, exec.PL}
	splits := [][2][]object.SiteID{
		{{"G", "DB1"}, {"DB2", "DB3"}},
		{{"G", "DB1", "DB2"}, {"DB3"}},
		{{"G"}, {"DB1", "DB2", "DB3"}},
		{{"G", "DB3"}, {"DB1", "DB2"}},
	}
	var (
		partitioned bool
		dead        []object.SiteID
		inserted    int
	)

	const steps = 40
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 3: // query: certain rows must never contradict ground truth
			alg := algs[rng.Intn(len(algs))]
			ans, _, err := c.coord.Query(school.Q1, alg)
			if err != nil {
				// A fan-out config error cannot happen (addresses are
				// rewired); transport-level trouble degrades instead of
				// erroring, so any error here is a bug.
				t.Fatalf("step %d: query(%v) failed hard: %v", step, alg, err)
			}
			for row := range rowSet(ans.Certain) {
				if !truthCertain[row] {
					t.Fatalf("step %d: %v returned certain row %q not in ground truth", step, alg, row)
				}
			}
		case op < 5: // insert a new entity (never visible to Q1)
			site := c.liveSiteIDs()[rng.Intn(len(c.sites))]
			if site == "DB3" {
				// DB3's Teacher constituent has a different shape; keep the
				// chaos inserts uniform at DB1/DB2.
				site = "DB1"
			}
			inserted++
			o := object.New(object.LOid(fmt.Sprintf("tc%02d'", inserted)), "Teacher",
				map[string]object.Value{"name": object.Str(fmt.Sprintf("Chaos%02d", inserted))})
			// Partitioned or dead replicas make Insert report stale
			// replicas (or fail outright when the storing site is cut);
			// both are tolerated — repair owns convergence.
			_, _ = c.coord.Insert(site, o)
		case op < 7: // flip the partition state
			if partitioned {
				c.plan.HealPartitions()
				partitioned = false
			} else {
				split := splits[rng.Intn(len(splits))]
				c.plan.Partition(fabric.Partition{A: split[0], B: split[1]})
				partitioned = true
			}
		case op < 8: // kill a site, or restart one that is down
			if len(dead) > 0 {
				site := dead[0]
				dead = dead[1:]
				c.startSite(site)
			} else if len(c.sites) > 2 {
				site := c.liveSiteIDs()[rng.Intn(len(c.sites))]
				c.killSite(site)
				dead = append(dead, site)
			}
		case op < 9: // a repair round under whatever faults are active
			c.repairRound(ctx)
		default: // ping: drains pending resync toward reachable peers
			_ = c.coord.Ping()
		}
	}

	// Final phase: heal everything, restart the dead, and demand
	// convergence within the documented bound.
	c.plan.HealPartitions()
	for _, site := range dead {
		c.startSite(site)
	}
	_ = c.coord.Ping()

	// At least one post-heal round always runs: a clean quorum round is
	// what clears suspect marks left over from partition-era exchanges,
	// even when the digests already agree.
	c.repairRound(ctx)
	rounds := 1
	for ; rounds < maxConvergenceRounds && !c.converged(); rounds++ {
		c.repairRound(ctx)
	}
	if !c.converged() {
		t.Fatalf("replicas did not converge within %d repair rounds", maxConvergenceRounds)
	}
	t.Logf("converged after %d repair rounds (%d chaos inserts)", rounds, inserted)

	// With converged replicas and a healed network, the full paper answer
	// is back and nothing is suspect.
	final, _, err := c.coord.Query(school.Q1, exec.CA)
	if err != nil {
		t.Fatal(err)
	}
	if final.Degraded {
		t.Errorf("final answer still degraded: %v", final.Unavailable)
	}
	if got, want := fmt.Sprint(rowStrings(final.Certain)), fmt.Sprint(rowStrings(truth.Certain)); got != want {
		t.Errorf("final certain rows = %v, want %v", got, want)
	}
	if got, want := len(final.Maybe), len(truth.Maybe); got != want {
		t.Errorf("final maybe count = %d, want %d", got, want)
	}
	for site, s := range c.sites {
		if sus := s.srv.Tracker().Suspects(); len(sus) != 0 {
			t.Errorf("site %s still suspects %v after convergence", site, sus)
		}
	}
	if states := c.coord.DivergenceStates(); len(states) != 0 {
		t.Errorf("coordinator still suspects %v after convergence", states)
	}

	// Tear down and verify nothing leaked.
	for _, site := range c.liveSiteIDs() {
		c.killSite(site)
	}
	c.coord.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines did not settle: %d running, baseline %d", runtime.NumGoroutine(), baseline)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}
