// Package antientropy implements digest-based replica repair for the
// replicated GOid mapping tables: every federation process (each site
// server and the coordinator) maintains an incremental per-class digest of
// its replica, exchanges digests with its peers on a jittered background
// cadence, and streams only the divergent binding ranges to converge —
// symmetric peer repair that works after either end of a link was
// partitioned, killed, or restarted from stale durable state.
//
// The digest is a fixed-depth hash tree: each class's bindings are hashed
// into one of Buckets leaf buckets (by the top bits of the binding hash),
// and each bucket folds its members with XOR — an order-independent,
// incrementally maintainable summary updated in O(1) per BindDelta. Two
// replicas disagree exactly on the buckets whose folds differ, so repair
// ships only the bindings hashing into those buckets instead of the whole
// table.
//
// Soundness under divergence: a replica that knows its digest disagrees
// with a quorum of its peers marks the affected classes suspect. Answers
// touching a suspect class degrade (federation.Answer.Degraded) the same
// way answers touching a dead site do — divergence is a missingness
// mechanism, and the paper's partial-answer semantics already carry it.
package antientropy

import (
	"sort"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
)

// Buckets is the leaf fan-out of the digest hash tree. 64 buckets keep a
// digest at 520 bytes on the wire while dividing a divergent class's
// repair traffic by the same factor; the tree is one level deep because
// mapping tables are small relative to the objects they map (ROADMAP
// item 5's sharded tables can deepen it without changing the protocol).
const Buckets = 64

// bucketShift extracts the bucket index from the top bits of a binding
// hash (64 - log2(Buckets)).
const bucketShift = 58

// Digest summarizes one class's mapping-table replica: the number of
// bindings folded in, plus the XOR fold of each bucket's binding hashes.
// The zero value is the digest of an empty table, so a class absent on one
// replica compares equal to the same class empty on another. Digests are
// comparable with Equal and travel gob-encoded on the wire.
type Digest struct {
	Count uint64
	Sum   [Buckets]uint64
}

// Add folds one binding into the digest in O(1).
func (d *Digest) Add(goid object.GOid, site object.SiteID, loid object.LOid) {
	h := bindingHash(goid, site, loid)
	d.Sum[h>>bucketShift] ^= h
	d.Count++
}

// Equal reports whether two digests summarize identical binding sets
// (up to XOR collisions, which the Count guard makes vanishingly
// unlikely for real divergence: a dropped delta changes both).
func (d Digest) Equal(o Digest) bool {
	return d == o
}

// DiffBuckets returns the bucket indexes on which the two digests
// disagree, sorted. Equal digests yield nil.
func DiffBuckets(a, b Digest) []int {
	var out []int
	for i := range a.Sum {
		if a.Sum[i] != b.Sum[i] {
			out = append(out, i)
		}
	}
	if out == nil && a.Count != b.Count {
		// Same folds, different counts: an XOR-canceling double-apply.
		// Repair every bucket; idempotent application sorts it out.
		out = make([]int, Buckets)
		for i := range out {
			out[i] = i
		}
	}
	return out
}

// DiffClasses returns the classes on which two per-class digest maps
// disagree, sorted: classes present in either map whose digests are not
// Equal (a missing class is the zero digest, so an empty table and an
// absent one agree).
func DiffClasses(a, b map[string]Digest) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	check := func(class string) {
		if seen[class] {
			return
		}
		seen[class] = true
		if !a[class].Equal(b[class]) {
			out = append(out, class)
		}
	}
	for class := range a {
		check(class)
	}
	for class := range b {
		check(class)
	}
	sort.Strings(out)
	return out
}

// Binding is one mapping-table entry in repair traffic, class implied by
// the enclosing request.
type Binding struct {
	GOid object.GOid
	Site object.SiteID
	LOid object.LOid
}

// BucketBindings returns the table's bindings hashing into the given
// bucket set, sorted by (GOid, Site) — the divergent ranges a repair
// exchange ships. The caller must hold whatever lock guards the table
// against concurrent mutation.
func BucketBindings(t *gmap.Table, buckets []int) []Binding {
	if len(buckets) == 0 {
		return nil
	}
	want := make(map[int]bool, len(buckets))
	for _, b := range buckets {
		want[b] = true
	}
	var out []Binding
	for _, goid := range t.GOids() {
		for _, loc := range t.Locations(goid) {
			h := bindingHash(goid, loc.Site, loc.LOid)
			if want[int(h>>bucketShift)] {
				out = append(out, Binding{GOid: goid, Site: loc.Site, LOid: loc.LOid})
			}
		}
	}
	return out
}

// FNV-1a 64 parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// bindingHash hashes one binding (FNV-1a over its fields with
// separators). The class is NOT part of the hash: digests are per class
// already, and keeping it out lets one binding hash serve bucket routing
// for every class's tree.
func bindingHash(goid object.GOid, site object.SiteID, loid object.LOid) uint64 {
	h := uint64(fnvOffset)
	fold := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnvPrime
		}
		h ^= 0xff // separator: ("ab","c") must not collide with ("a","bc")
		h *= fnvPrime
	}
	fold(string(goid))
	fold(string(site))
	fold(string(loid))
	return h
}
