package antientropy

import (
	"fmt"
	"testing"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/store"
)

func bindN(t *gmap.Table, d *Digest, n int) {
	for i := 0; i < n; i++ {
		goid := object.GOid(fmt.Sprintf("g:%d", i))
		site := object.SiteID(fmt.Sprintf("DB%d", i%3+1))
		loid := object.LOid(fmt.Sprintf("o%d", i))
		t.MustBind(goid, site, loid)
		d.Add(goid, site, loid)
	}
}

func TestDigestOrderIndependence(t *testing.T) {
	var a, b Digest
	bindings := []Binding{
		{"g:1", "DB1", "o1"}, {"g:2", "DB2", "o2"}, {"g:3", "DB3", "o3"},
	}
	for _, x := range bindings {
		a.Add(x.GOid, x.Site, x.LOid)
	}
	for i := len(bindings) - 1; i >= 0; i-- {
		b.Add(bindings[i].GOid, bindings[i].Site, bindings[i].LOid)
	}
	if !a.Equal(b) {
		t.Fatalf("digest depends on binding order: %v vs %v", a, b)
	}
	if DiffBuckets(a, b) != nil {
		t.Fatalf("equal digests report divergent buckets")
	}
}

func TestDigestDetectsMissingBinding(t *testing.T) {
	var full, missing Digest
	tab := gmap.NewTable("Student")
	bindN(tab, &full, 50)
	for i, goid := range tab.GOids() {
		for _, loc := range tab.Locations(goid) {
			if i == 17 { // drop one binding from the second replica
				continue
			}
			missing.Add(goid, loc.Site, loc.LOid)
		}
	}
	if full.Equal(missing) {
		t.Fatalf("digest missed a dropped binding")
	}
	diff := DiffBuckets(full, missing)
	if len(diff) != 1 {
		t.Fatalf("one dropped binding should diverge exactly one bucket, got %v", diff)
	}
	// The divergent bucket's bindings must include the dropped one and be a
	// strict subset of the table.
	got := BucketBindings(tab, diff)
	if len(got) == 0 || len(got) >= tab.Bindings() {
		t.Fatalf("BucketBindings returned %d of %d bindings — no range narrowing", len(got), tab.Bindings())
	}
}

func TestDiffClasses(t *testing.T) {
	var d1, d2 Digest
	d1.Add("g:1", "DB1", "o1")
	d2.Add("g:1", "DB1", "o1")
	a := map[string]Digest{"Student": d1, "Course": {}}
	b := map[string]Digest{"Student": d2}
	if diff := DiffClasses(a, b); diff != nil {
		t.Fatalf("equal replicas (empty class vs absent class) diverged: %v", diff)
	}
	d1.Add("g:2", "DB2", "o2")
	a["Student"] = d1
	if diff := DiffClasses(a, b); len(diff) != 1 || diff[0] != "Student" {
		t.Fatalf("DiffClasses = %v, want [Student]", diff)
	}
}

func TestDiffBucketsXORCancellation(t *testing.T) {
	// A double-applied binding XOR-cancels out of its bucket but bumps
	// Count; the diff must fall back to repairing every bucket rather than
	// reporting convergence.
	var a, b Digest
	a.Add("g:1", "DB1", "o1")
	b.Add("g:1", "DB1", "o1")
	b.Add("g:2", "DB2", "o2")
	b.Add("g:2", "DB2", "o2")
	if a.Equal(b) {
		t.Fatalf("count mismatch compared equal")
	}
	if diff := DiffBuckets(a, b); len(diff) != Buckets {
		t.Fatalf("XOR-canceled divergence must repair all buckets, got %v", diff)
	}
}

func TestTrackerSeedMatchesIncremental(t *testing.T) {
	tables := gmap.NewTables()
	inc := NewTracker()
	tab := tables.Table("Student")
	for i := 0; i < 40; i++ {
		goid := object.GOid(fmt.Sprintf("g:%d", i))
		site := object.SiteID(fmt.Sprintf("DB%d", i%3+1))
		loid := object.LOid(fmt.Sprintf("o%d", i))
		tab.MustBind(goid, site, loid)
		inc.Observe("Student", goid, site, loid)
	}
	seeded := NewTracker()
	seeded.Seed(tables)
	if diff := DiffClasses(inc.Snapshot(), seeded.Snapshot()); diff != nil {
		t.Fatalf("seeded digest diverges from incrementally maintained one: %v", diff)
	}
}

func TestTrackerSuspects(t *testing.T) {
	tr := NewTracker()
	if got := tr.SuspectOf([]string{"Student"}); got != nil {
		t.Fatalf("fresh tracker has suspects: %v", got)
	}
	tr.MarkSuspect("Student", "quorum disagreement")
	tr.MarkSuspect("Course", "quorum disagreement")
	if got := tr.SuspectOf([]string{"Course", "Dept"}); len(got) != 1 || got[0] != "Course" {
		t.Fatalf("SuspectOf = %v, want [Course]", got)
	}
	h := tr.Health()
	if h["state"] == "" || h["state"][:7] != "suspect" {
		t.Fatalf("suspect tracker reports healthy: %q", h["state"])
	}
	tr.ClearSuspect("Student")
	tr.ClearSuspect("Course")
	tr.EndRound(3, 128)
	h = tr.Health()
	if h["state"] != "ok(round=1, repaired=128B)" {
		t.Fatalf("health = %q", h["state"])
	}
}

func TestHookEngineObserves(t *testing.T) {
	tr := NewTracker()
	eng := HookEngine(store.Mem{}, tr)
	if err := eng.LogBind("Student", "g:1", "DB1", "o1"); err != nil {
		t.Fatal(err)
	}
	if d := tr.Digest("Student"); d.Count != 1 {
		t.Fatalf("hook did not fold the logged bind: count=%d", d.Count)
	}
}
