package trace

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/object"
)

// buildQuerySpans records a small cross-site query tree on a fresh tracer:
// a root at G with an O child at DB1, a PO child at DB2, and an unrelated
// span from another query that must not leak into the profile.
func buildQuerySpans(t *testing.T) (*Tracer, []Span) {
	t.Helper()
	tr := &Tracer{}
	root := tr.StartSpan(0, "G", "PL").WithQuery("q1", "PL")
	c1 := tr.StartSpan(root.ID(), "DB1", "PL_C1").WithQuery("q1", "PL").WithPhases("O")
	c1.Add("rows", 10)
	time.Sleep(time.Millisecond)
	c1.End()
	c2 := tr.StartSpan(root.ID(), "DB2", "BL_C1+C2").WithQuery("q1", "PL").WithPhases("PO")
	c2.Add("rows", 5).Add("bytes_shipped", 400)
	time.Sleep(time.Millisecond)
	c2.End()
	root.End()
	other := tr.StartSpan(0, "DB3", "CA_C1").WithQuery("q2", "CA")
	other.End()
	return tr, tr.QuerySpans("q1")
}

func TestBuildProfile(t *testing.T) {
	if p := BuildProfile("q1", "PL", nil); p != nil {
		t.Fatalf("profile from no spans = %+v, want nil", p)
	}
	_, spans := buildQuerySpans(t)
	p := BuildProfile("q1", "PL", spans)
	if p == nil {
		t.Fatal("nil profile")
	}
	if p.ID != "q1" || p.Alg != "PL" || p.Status != StatusOK {
		t.Errorf("profile header = %s/%s/%s", p.ID, p.Alg, p.Status)
	}
	wantSites := []object.SiteID{"DB1", "DB2", "G"}
	if len(p.Sites) != len(wantSites) {
		t.Fatalf("sites = %v, want %v", p.Sites, wantSites)
	}
	for i, s := range wantSites {
		if p.Sites[i] != s {
			t.Fatalf("sites = %v, want %v", p.Sites, wantSites)
		}
	}
	// The root span carries the end-to-end timing.
	if p.WallMicros < 2000 {
		t.Errorf("wall = %.0fµs, want ≥ the 2ms the children slept", p.WallMicros)
	}
	if p.Start.IsZero() {
		t.Error("start not set from root span")
	}
	// Span counters aggregate across the tree.
	if p.Counters["rows"] != 15 || p.Counters["bytes_shipped"] != 400 {
		t.Errorf("counters = %v", p.Counters)
	}
	// Phase attribution: DB1 has an O row; DB2's "PO" span contributes its
	// full duration to both P and O (not separable at the site).
	if c := p.Phases.Get("DB1", "O"); c <= 0 {
		t.Errorf("DB1/O = %g", c)
	}
	pRow, oRow := p.Phases.Get("DB2", "P"), p.Phases.Get("DB2", "O")
	if pRow <= 0 || pRow != oRow {
		t.Errorf("DB2 multi-phase rows: P=%g O=%g, want equal and positive", pRow, oRow)
	}
	// The unrelated query's site must not appear.
	for _, s := range p.Sites {
		if s == "DB3" {
			t.Error("q2's span leaked into q1's profile")
		}
	}
}

func TestProfileOutcome(t *testing.T) {
	var nilP *Profile
	nilP.SetOutcome(1, 2, nil, nil) // must not panic
	nilP.AddCounter("x", 1)
	if nilP.Interesting() {
		t.Error("nil profile is interesting")
	}

	p := &Profile{Status: StatusOK}
	p.SetOutcome(3, 1, nil, nil)
	if p.Status != StatusOK || p.Certain != 3 || p.Maybe != 1 || p.Interesting() {
		t.Errorf("ok outcome = %+v", p)
	}
	p.SetOutcome(3, 1, []string{"DB2"}, nil)
	if p.Status != StatusDegraded || !p.Interesting() {
		t.Errorf("degraded outcome = %+v", p)
	}
	// An error wins over degradation.
	p.SetOutcome(0, 0, []string{"DB2"}, errTest)
	if p.Status != StatusError || p.Error == "" || !p.Interesting() {
		t.Errorf("error outcome = %+v", p)
	}

	p2 := &Profile{}
	p2.AddCounter("admission_wait_us", 40)
	p2.AddCounter("admission_wait_us", 2)
	p2.AddCounter("zero", 0) // zero values are not recorded
	if p2.Counters["admission_wait_us"] != 42 {
		t.Errorf("counters = %v", p2.Counters)
	}
	if _, ok := p2.Counters["zero"]; ok {
		t.Error("zero counter recorded")
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "site DB2 unreachable" }

func TestImportDedupes(t *testing.T) {
	site := &Tracer{}
	h := site.StartSpan(0, "DB1", "serve:retrieve").WithQuery("rq1-a", "CA")
	h.End()
	shipped := site.QuerySpans("rq1-a")
	if len(shipped) != 1 {
		t.Fatalf("shipped %d spans", len(shipped))
	}

	coord := &Tracer{}
	coord.Import(shipped)
	// The same span arriving again (retry, or a second reply path through a
	// peer) must not duplicate.
	coord.Import(shipped)
	if got := coord.QuerySpans("rq1-a"); len(got) != 1 {
		t.Errorf("after double import: %d spans, want 1", len(got))
	}
	// Zero-ID spans are skipped outright.
	coord.Import([]Span{{ID: 0, Query: "rq1-a"}})
	if got := coord.QuerySpans("rq1-a"); len(got) != 1 {
		t.Errorf("zero-ID span imported: %d spans", len(got))
	}
	// Imported spans keep their identity but get local sequence numbers, and
	// their counters are deep-copied.
	shipped[0].Counters = map[string]int64{"rows": 1}
	coord2 := &Tracer{}
	coord2.Import(shipped)
	shipped[0].Counters["rows"] = 99
	got := coord2.QuerySpans("rq1-a")
	if got[0].ID != shipped[0].ID {
		t.Error("import changed the span ID")
	}
	if got[0].Counters["rows"] != 1 {
		t.Error("imported counters share memory with the caller's slice")
	}
}

func TestChromeTrace(t *testing.T) {
	var nilP *Profile
	if _, err := nilP.ChromeTrace(); err == nil {
		t.Error("nil profile exported without error")
	}

	_, spans := buildQuerySpans(t)
	p := BuildProfile("q1", "PL", spans)
	data, err := p.ChromeTrace()
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// Every participating site appears as a named process, and every span as
	// a complete event with positive duration.
	named := make(map[string]bool)
	var xEvents int
	pidsSeen := make(map[int]bool)
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				named[e.Args["name"].(string)] = true
			}
		case "X":
			xEvents++
			pidsSeen[e.Pid] = true
			if e.Dur <= 0 {
				t.Errorf("event %q has dur %g", e.Name, e.Dur)
			}
		}
	}
	for _, site := range p.Sites {
		if !named[string(site)] {
			t.Errorf("site %s missing from process metadata", site)
		}
	}
	if xEvents != len(p.Spans) {
		t.Errorf("%d complete events, want %d", xEvents, len(p.Spans))
	}
	if len(pidsSeen) != len(p.Sites) {
		t.Errorf("events span %d pids, want one per site (%d)", len(pidsSeen), len(p.Sites))
	}
}
