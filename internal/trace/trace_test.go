package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestStepAndEvents(t *testing.T) {
	var tr Tracer
	tr.Step("G", "BL_G1", "send local queries")
	tr.Step("DB1", "BL_C1", "evaluate local predicates")
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Seq != 1 || events[0].Site != "G" || events[0].Step != "BL_G1" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Seq != 2 {
		t.Errorf("event 1 = %+v", events[1])
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	var tr Tracer
	tr.Step("G", "X", "")
	events := tr.Events()
	events[0].Step = "MUTATED"
	if tr.Events()[0].Step != "X" {
		t.Error("Events exposes internal state")
	}
}

func TestReset(t *testing.T) {
	var tr Tracer
	tr.Step("G", "X", "")
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestRenderGroupsBySite(t *testing.T) {
	var tr Tracer
	tr.Step("G", "BL_G1", "start")
	tr.Step("DB2", "BL_C1", "local")
	tr.Step("DB1", "BL_C1", "local")
	tr.Step("G", "BL_G2", "certify")
	out := tr.Render()

	// Sites appear sorted, each with its own steps.
	iDB1 := strings.Index(out, "DB1:")
	iDB2 := strings.Index(out, "DB2:")
	iG := strings.Index(out, "G:")
	if iDB1 < 0 || iDB2 < 0 || iG < 0 || !(iDB1 < iDB2 && iDB2 < iG) {
		t.Errorf("Render order wrong:\n%s", out)
	}
	if !strings.Contains(out, "BL_G2") || !strings.Contains(out, "certify") {
		t.Errorf("Render missing content:\n%s", out)
	}
}

func TestConcurrentSteps(t *testing.T) {
	var tr Tracer
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Step("DB1", "C3", "check")
		}()
	}
	wg.Wait()
	if len(tr.Events()) != 50 {
		t.Errorf("events = %d", len(tr.Events()))
	}
	// Sequence numbers are unique and contiguous.
	seen := map[int]bool{}
	for _, e := range tr.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
