package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestStepAndEvents(t *testing.T) {
	var tr Tracer
	tr.Step("G", "BL_G1", "send local queries")
	tr.Step("DB1", "BL_C1", "evaluate local predicates")
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Seq != 1 || events[0].Site != "G" || events[0].Step != "BL_G1" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Seq != 2 {
		t.Errorf("event 1 = %+v", events[1])
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	var tr Tracer
	tr.Step("G", "X", "")
	events := tr.Events()
	events[0].Step = "MUTATED"
	if tr.Events()[0].Step != "X" {
		t.Error("Events exposes internal state")
	}
}

func TestReset(t *testing.T) {
	var tr Tracer
	tr.Step("G", "X", "")
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestRenderGroupsBySite(t *testing.T) {
	var tr Tracer
	tr.Step("G", "BL_G1", "start")
	tr.Step("DB2", "BL_C1", "local")
	tr.Step("DB1", "BL_C1", "local")
	tr.Step("G", "BL_G2", "certify")
	out := tr.Render()

	// Sites appear sorted, each with its own steps.
	iDB1 := strings.Index(out, "DB1:")
	iDB2 := strings.Index(out, "DB2:")
	iG := strings.Index(out, "G:")
	if iDB1 < 0 || iDB2 < 0 || iG < 0 || !(iDB1 < iDB2 && iDB2 < iG) {
		t.Errorf("Render order wrong:\n%s", out)
	}
	if !strings.Contains(out, "BL_G2") || !strings.Contains(out, "certify") {
		t.Errorf("Render missing content:\n%s", out)
	}
}

func TestConcurrentSteps(t *testing.T) {
	var tr Tracer
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Step("DB1", "C3", "check")
		}()
	}
	wg.Wait()
	if len(tr.Events()) != 50 {
		t.Errorf("events = %d", len(tr.Events()))
	}
	// Sequence numbers are unique and contiguous.
	seen := map[int]bool{}
	for _, e := range tr.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestSpanTreeRecording(t *testing.T) {
	var tr Tracer
	root := tr.StartSpan(0, "G", "BL").WithQuery("q1", "BL")
	child := tr.StartSpan(root.ID(), "DB1", "BL_C1+C2").
		WithQuery("q1", "BL").WithPhases("PO").WithVStart(100)
	child.Add("rows", 3).Detailf("%d local rows", 3)
	child.EndV(250)
	root.Add("certain", 1).End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	r, c := spans[0], spans[1]
	if r.Parent != 0 || r.Site != "G" || r.Query != "q1" || r.Algorithm != "BL" {
		t.Errorf("root = %+v", r)
	}
	if c.Parent != r.ID || c.Phases != "PO" || c.Counters["rows"] != 3 {
		t.Errorf("child = %+v", c)
	}
	if !c.HasPhase('P') || !c.HasPhase('O') || c.HasPhase('I') {
		t.Errorf("child phases = %q", c.Phases)
	}
	if got := c.VDurationMicros(); got != 150 {
		t.Errorf("virtual duration = %g, want 150", got)
	}
	if c.End.IsZero() || c.DurationMicros() < 0 {
		t.Errorf("child wall times = %v..%v", c.Start, c.End)
	}
	if c.Detail != "3 local rows" {
		t.Errorf("child detail = %q", c.Detail)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	h := tr.StartSpan(0, "G", "X").WithQuery("q", "BL").WithPhases("O").Add("n", 1)
	h.End()
	if h.ID() != 0 {
		t.Errorf("nil tracer handle id = %d", h.ID())
	}
	tr.Step("G", "X", "")
	if tr.Spans() != nil || tr.Events() != nil {
		t.Error("nil tracer returned data")
	}
	tr.Reset()
	if tr.Render() != "" || tr.RenderTree() != "" || tr.RenderLastQuery() != "" {
		t.Error("nil tracer rendered output")
	}
}

func TestSpansReturnCopies(t *testing.T) {
	var tr Tracer
	tr.StartSpan(0, "G", "X").Add("n", 1).End()
	spans := tr.Spans()
	spans[0].Name = "MUTATED"
	spans[0].Counters["n"] = 99
	again := tr.Spans()
	if again[0].Name != "X" || again[0].Counters["n"] != 1 {
		t.Error("Spans exposes internal state")
	}
}

func TestSetLimitDropsOldest(t *testing.T) {
	var tr Tracer
	tr.SetLimit(10)
	for i := 0; i < 25; i++ {
		tr.StartSpan(0, "G", "s").End()
	}
	spans := tr.Spans()
	if len(spans) > 10 {
		t.Errorf("limit not enforced: %d spans", len(spans))
	}
	// The survivors are the most recent spans.
	last := spans[len(spans)-1]
	if last.Seq != 25 {
		t.Errorf("last surviving seq = %d, want 25", last.Seq)
	}
	// Handles for dropped spans are inert, not panics.
	h := tr.StartSpan(0, "G", "late")
	for i := 0; i < 20; i++ {
		tr.StartSpan(0, "G", "fill").End()
	}
	h.Add("n", 1).End() // may be dropped already; must not panic
}

func TestRenderPerSiteNumbering(t *testing.T) {
	var tr Tracer
	tr.Step("G", "BL_G1", "start")
	tr.Step("DB1", "BL_C1+C2", "local")
	tr.Step("DB2", "BL_C1+C2", "local")
	tr.Step("DB2", "C3", "check")
	tr.Step("G", "BL_G2", "certify")
	out := tr.Render()

	// Numbering restarts per site; the global order survives as [gN].
	for _, want := range []string{
		" 1. BL_G1", " 2. BL_G2", // G's own 1, 2
		" 1. BL_C1+C2", // DB1 restarts at 1
		" 2. C3",       // DB2's second step
		"[g1]", "[g4]", "[g5]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, " 3. ") {
		t.Errorf("no site ran three steps, yet Render shows a 3rd:\n%s", out)
	}
}

func TestRenderTreeNesting(t *testing.T) {
	var tr Tracer
	root := tr.StartSpan(0, "G", "BL").WithQuery("q1", "BL")
	c1 := tr.StartSpan(root.ID(), "DB1", "BL_C1+C2").WithPhases("PO")
	tr.StartSpan(c1.ID(), "DB2", "C3").WithPhases("O").End()
	c1.End()
	root.End()
	out := tr.RenderTree()

	iRoot := strings.Index(out, "BL @G")
	iC1 := strings.Index(out, "  BL_C1+C2 [PO] @DB1")
	iC3 := strings.Index(out, "    C3 [O] @DB2")
	if iRoot < 0 || iC1 < 0 || iC3 < 0 || !(iRoot < iC1 && iC1 < iC3) {
		t.Errorf("RenderTree nesting wrong:\n%s", out)
	}
	if !strings.Contains(out, "query=q1") || !strings.Contains(out, "alg=BL") {
		t.Errorf("RenderTree missing query scope:\n%s", out)
	}
}

func TestRenderLastQuery(t *testing.T) {
	var tr Tracer
	tr.StartSpan(0, "G", "BL").WithQuery("q1", "BL").End()
	tr.StartSpan(0, "G", "CA").WithQuery("q2", "CA").End()
	out := tr.RenderLastQuery()
	if !strings.Contains(out, "q2") || strings.Contains(out, "q1") {
		t.Errorf("RenderLastQuery should show only the latest query:\n%s", out)
	}
}

// TestRenderSurvivesForeignParentCollision: a span parented on a span ID
// propagated from another process may collide with a local ID — in the worst
// case its own. Rendering must not drop such spans (a self-parented span once
// made RenderLastQuery return nothing while Spans() held the whole query).
func TestRenderSurvivesForeignParentCollision(t *testing.T) {
	var tr Tracer
	ping := tr.StartSpan(0, "DB1", "serve:ping")
	ping.End()
	local := tr.StartSpan(0, "DB1", "serve:local").WithQuery("rq1", "BL")
	local.End()
	// Forge the pathological wire states directly on the recorded spans.
	tr.mu.Lock()
	tr.spans[1].Parent = tr.spans[1].ID // self-parent (foreign ID == own ID)
	tr.mu.Unlock()
	if out := tr.RenderLastQuery(); !strings.Contains(out, "serve:local") {
		t.Errorf("self-parented span dropped from RenderLastQuery:\n%q", out)
	}
	tr.mu.Lock()
	tr.spans[1].Parent = tr.spans[0].ID // foreign ID == unrelated local span
	tr.mu.Unlock()
	if out := tr.RenderTree(); !strings.Contains(out, "serve:local") {
		t.Errorf("collided span dropped from RenderTree:\n%q", out)
	}
}

// TestSpanIDsUniqueAcrossTracers: the coordinator's and a server's tracers
// live in different Tracer values, but their IDs must never collide — server
// spans are parented on coordinator span IDs that travel over the wire.
func TestSpanIDsUniqueAcrossTracers(t *testing.T) {
	var a, b Tracer
	seen := map[SpanID]bool{}
	for i := 0; i < 100; i++ {
		for _, tr := range []*Tracer{&a, &b} {
			h := tr.StartSpan(0, "X", "s")
			h.End()
			if seen[h.ID()] {
				t.Fatalf("span ID %d issued twice", h.ID())
			}
			seen[h.ID()] = true
		}
	}
}

func TestEventsDeriveFromSpans(t *testing.T) {
	var tr Tracer
	tr.StartSpan(0, "G", "BL_G1").Detailf("start").End()
	tr.Step("DB1", "C3", "check")
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Step != "BL_G1" || events[0].Seq != 1 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Step != "C3" || events[1].Seq != 2 {
		t.Errorf("event 1 = %+v", events[1])
	}
}

func TestConcurrentSpans(t *testing.T) {
	var tr Tracer
	root := tr.StartSpan(0, "G", "root")
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := tr.StartSpan(root.ID(), "DB1", "C3").Add("items", 1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	spans := tr.Spans()
	if len(spans) != 51 {
		t.Fatalf("spans = %d", len(spans))
	}
	ids := map[SpanID]bool{}
	for _, s := range spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
}
