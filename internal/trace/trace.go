// Package trace records the processing steps of a query execution — which
// site executed which algorithm step — and renders them as the executing
// flows of the paper's Figure 8.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/hetfed/hetfed/internal/object"
)

// Event is one recorded algorithm step.
type Event struct {
	Seq    int
	Site   object.SiteID
	Step   string
	Detail string
}

// Tracer collects events. It is safe for concurrent use (sites execute in
// parallel). The zero value is ready to use.
type Tracer struct {
	mu     sync.Mutex
	events []Event
}

// Step records one algorithm step at a site.
func (t *Tracer) Step(site object.SiteID, step, detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{
		Seq:    len(t.events) + 1,
		Site:   site,
		Step:   step,
		Detail: detail,
	})
}

// Events returns a copy of the recorded events in record order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Reset clears the tracer.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
}

// Render lays the events out per site, one column per site (the shape of
// the paper's Figure 8 executing flows).
func (t *Tracer) Render() string {
	events := t.Events()
	siteSet := make(map[object.SiteID]bool)
	for _, e := range events {
		siteSet[e.Site] = true
	}
	sites := make([]object.SiteID, 0, len(siteSet))
	for s := range siteSet {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	var b strings.Builder
	for _, site := range sites {
		fmt.Fprintf(&b, "%s:\n", site)
		for _, e := range events {
			if e.Site != site {
				continue
			}
			fmt.Fprintf(&b, "  %2d. %-10s %s\n", e.Seq, e.Step, e.Detail)
		}
	}
	return b.String()
}
