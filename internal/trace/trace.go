// Package trace records what a query execution did and where: hierarchical,
// query-scoped spans (which site ran which algorithm step of which phase,
// for how long) plus the flat per-site step flow of the paper's Figure 8.
//
// The span model maps onto the paper's three processing phases:
//
//   - O — object location: finding the objects a predicate needs (retrieve
//     and ship under CA, assistant lookup and checking under BL/PL).
//   - I — integration: outerjoin materialization under CA, certification of
//     maybe results under BL/PL.
//   - P — predicate processing: evaluating the (local) predicates.
//
// A span carries both wall-clock timestamps (real runtime) and the fabric
// runtime's own clock (virtual microseconds on the simulated runtime, run-
// relative microseconds on the real runtime), so the same renderers serve
// live clusters and simulation studies.
//
// The flat Step/Events/Render API is kept intact on top of the span store:
// Step records an instant span, Events derives the classic event list, and
// Render lays the steps out per site (Figure 8's executing flows).
package trace

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hetfed/hetfed/internal/object"
)

// Event is one recorded algorithm step (the flat Figure-8 view of a span).
type Event struct {
	// Seq is the global record order across all sites — the cross-site
	// ordering of the execution.
	Seq    int
	Site   object.SiteID
	Step   string
	Detail string
}

// SpanID identifies a span within (at least) one tracer. ID 0 means "no
// span" and is used as the parent of root spans.
type SpanID uint64

// spanIDs allocates span IDs for every tracer in the process from one
// counter, offset by a random per-process base. Span IDs travel across the
// wire (a served request's span is parented on the caller's span ID, which
// lives in a different tracer, possibly in a different process); a shared
// counter plus a random base keeps a propagated foreign ID from colliding
// with a locally assigned one, which would nest unrelated spans — or parent
// a span on itself — in the rendered tree.
var spanIDs atomic.Uint64

func init() {
	spanIDs.Store(rand.Uint64() >> 2) // headroom so the counter never wraps to 0
}

// Span is one recorded unit of work: an algorithm step executed at a site
// on behalf of a query, with its position in the span tree, its phase tags,
// its timing on both clocks, and any attached counters.
type Span struct {
	ID     SpanID
	Parent SpanID
	// Query scopes the span to one query execution; spans of the same query
	// share the value even across processes (it travels in remote requests).
	Query string
	// Algorithm is the executing strategy's name (CA, BL, PL, SBL, SPL).
	Algorithm string
	Site      object.SiteID
	// Name is the step name, e.g. "BL_C1+C2" or "serve:check".
	Name string
	// Phases tags the span with the paper's phases it performs, in order:
	// a subset of the letters O, I and P ("PO" = phase P then phase O).
	// Empty for control steps.
	Phases string
	Detail string
	// Seq is the global record order (shared with the derived Events).
	Seq int
	// Start and End are wall-clock timestamps; End is zero while the span
	// is open.
	Start time.Time
	End   time.Time
	// VStart and VEnd are the fabric runtime's clock in microseconds:
	// virtual time on the simulated runtime, time since the run started on
	// the real runtime, -1 when no runtime clock was attached.
	VStart float64
	VEnd   float64
	// Counters are named values attached to the span (rows, items, bytes).
	Counters map[string]int64
}

// DurationMicros is the span's wall-clock duration in microseconds, 0 while
// the span is open.
func (s Span) DurationMicros() float64 {
	if s.End.IsZero() {
		return 0
	}
	return float64(s.End.Sub(s.Start).Nanoseconds()) / 1e3
}

// VDurationMicros is the span's duration on the fabric runtime's clock, -1
// when no runtime clock was attached.
func (s Span) VDurationMicros() float64 {
	if s.VStart < 0 || s.VEnd < 0 {
		return -1
	}
	return s.VEnd - s.VStart
}

// HasPhase reports whether the span performs the given phase (one of 'O',
// 'I', 'P').
func (s Span) HasPhase(phase byte) bool {
	return strings.IndexByte(s.Phases, phase) >= 0
}

// Tracer collects spans. It is safe for concurrent use (sites execute in
// parallel). The zero value is ready to use; a nil *Tracer is a valid
// no-op recorder, so call sites need no nil checks.
type Tracer struct {
	mu    sync.Mutex
	seq   int
	spans []Span
	index map[SpanID]int
	limit int
}

// SetLimit bounds the number of retained spans (0 = unlimited, the
// default). When the limit is exceeded the oldest half of the spans is
// dropped, so a long-running server's tracer holds its most recent query
// trees. Spans whose parent was dropped render as roots.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.limit = n
}

// StartSpan opens a span under the given parent (0 for a root span) and
// returns a handle to finish it. The handle is safe to use from the
// spawning goroutine or the task that performs the work.
func (t *Tracer) StartSpan(parent SpanID, site object.SiteID, name string) Handle {
	if t == nil {
		return Handle{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && len(t.spans) >= t.limit {
		t.dropOldestLocked()
	}
	t.seq++
	id := SpanID(spanIDs.Add(1))
	t.spans = append(t.spans, Span{
		ID:     id,
		Parent: parent,
		Site:   site,
		Name:   name,
		Seq:    t.seq,
		Start:  time.Now(),
		VStart: -1,
		VEnd:   -1,
	})
	if t.index == nil {
		t.index = make(map[SpanID]int)
	}
	t.index[id] = len(t.spans) - 1
	return Handle{t: t, id: id}
}

// dropOldestLocked evicts the oldest half of the span store.
func (t *Tracer) dropOldestLocked() {
	keep := len(t.spans) / 2
	dropped := t.spans[:len(t.spans)-keep]
	for _, s := range dropped {
		delete(t.index, s.ID)
	}
	rest := make([]Span, keep)
	copy(rest, t.spans[len(t.spans)-keep:])
	t.spans = rest
	for i, s := range t.spans {
		t.index[s.ID] = i
	}
}

// Step records one instant algorithm step at a site — the classic flat
// Figure-8 entry, kept for existing call sites.
func (t *Tracer) Step(site object.SiteID, step, detail string) {
	h := t.StartSpan(0, site, step)
	h.Detailf("%s", detail)
	h.End()
}

// Spans returns a copy of the recorded spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		if out[i].Counters != nil {
			c := make(map[string]int64, len(out[i].Counters))
			for k, v := range out[i].Counters {
				c[k] = v
			}
			out[i].Counters = c
		}
	}
	return out
}

// QuerySpans returns a copy of the recorded spans scoped to one query ID,
// in record order.
func (t *Tracer) QuerySpans(qid string) []Span {
	if t == nil || qid == "" {
		return nil
	}
	spans := t.Spans()
	out := spans[:0:0]
	for _, s := range spans {
		if s.Query == qid {
			out = append(out, s)
		}
	}
	return out
}

// Import appends spans recorded by another tracer — typically a remote
// site's spans shipped back in an RPC response — keeping their IDs, parents
// and timings so they stitch into this tracer's trees (span IDs are
// process-unique by construction, see spanIDs). Spans whose ID is already
// present are skipped: the same remote span can arrive through two paths
// (a peer's check reply and the peer's own local reply) or twice on a
// retried call.
func (t *Tracer) Import(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range spans {
		if _, dup := t.index[s.ID]; dup || s.ID == 0 {
			continue
		}
		if t.limit > 0 && len(t.spans) >= t.limit {
			t.dropOldestLocked()
		}
		t.seq++
		s.Seq = t.seq
		if s.Counters != nil {
			c := make(map[string]int64, len(s.Counters))
			for k, v := range s.Counters {
				c[k] = v
			}
			s.Counters = c
		}
		t.spans = append(t.spans, s)
		if t.index == nil {
			t.index = make(map[SpanID]int)
		}
		t.index[s.ID] = len(t.spans) - 1
	}
}

// Events returns the flat event view of the recorded spans in record order.
func (t *Tracer) Events() []Event {
	spans := t.Spans()
	if len(spans) == 0 {
		return nil
	}
	events := make([]Event, len(spans))
	for i, s := range spans {
		events[i] = Event{Seq: s.Seq, Site: s.Site, Step: s.Name, Detail: s.Detail}
	}
	return events
}

// Reset clears the tracer.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = nil
	t.index = nil
	t.seq = 0
}

// Handle finishes and annotates an open span. The zero Handle (from a nil
// tracer) ignores every call, so instrumented code needs no guards.
type Handle struct {
	t  *Tracer
	id SpanID
}

// ID returns the span's identifier (0 for the no-op handle), used to parent
// child spans and to propagate span context across the wire.
func (h Handle) ID() SpanID { return h.id }

func (h Handle) mutate(fn func(*Span)) {
	if h.t == nil {
		return
	}
	h.t.mu.Lock()
	defer h.t.mu.Unlock()
	if i, ok := h.t.index[h.id]; ok {
		fn(&h.t.spans[i])
	}
}

// WithQuery scopes the span to a query execution and its algorithm.
func (h Handle) WithQuery(queryID, algorithm string) Handle {
	h.mutate(func(s *Span) { s.Query = queryID; s.Algorithm = algorithm })
	return h
}

// WithPhases tags the span with the paper's phases it performs ("O", "I",
// "P", or a sequence like "PO").
func (h Handle) WithPhases(phases string) Handle {
	h.mutate(func(s *Span) { s.Phases = phases })
	return h
}

// WithVStart records the fabric runtime's clock at the span's start.
func (h Handle) WithVStart(v float64) Handle {
	h.mutate(func(s *Span) { s.VStart = v })
	return h
}

// Detailf sets the span's human-readable detail.
func (h Handle) Detailf(format string, args ...any) Handle {
	if h.t == nil {
		return h
	}
	detail := fmt.Sprintf(format, args...)
	h.mutate(func(s *Span) { s.Detail = detail })
	return h
}

// Add attaches (or accumulates into) a named counter on the span.
func (h Handle) Add(name string, n int64) Handle {
	h.mutate(func(s *Span) {
		if s.Counters == nil {
			s.Counters = make(map[string]int64)
		}
		s.Counters[name] += n
	})
	return h
}

// End closes the span at the current wall-clock time.
func (h Handle) End() {
	h.mutate(func(s *Span) { s.End = time.Now() })
}

// EndV closes the span and records the fabric runtime's clock at the end.
func (h Handle) EndV(v float64) {
	h.mutate(func(s *Span) { s.End = time.Now(); s.VEnd = v })
}

// Render lays the recorded steps out per site, one column per site (the
// shape of the paper's Figure 8 executing flows). Steps are numbered per
// site; the bracketed g-number is the global sequence, which is what orders
// steps across sites (per-site numbering used to reuse the global sequence,
// which left gappy, racy-looking numbers in each column).
func (t *Tracer) Render() string {
	events := t.Events()
	siteSet := make(map[object.SiteID]bool)
	for _, e := range events {
		siteSet[e.Site] = true
	}
	sites := make([]object.SiteID, 0, len(siteSet))
	for s := range siteSet {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	var b strings.Builder
	for _, site := range sites {
		fmt.Fprintf(&b, "%s:\n", site)
		n := 0
		for _, e := range events {
			if e.Site != site {
				continue
			}
			n++
			fmt.Fprintf(&b, "  %2d. %-10s %s  [g%d]\n", n, e.Step, e.Detail, e.Seq)
		}
	}
	return b.String()
}

// RenderTree renders the span forest hierarchically: every root span (its
// parent is 0 or was recorded elsewhere) with its descendants indented,
// annotated with site, phases, durations on both clocks, counters and
// detail.
func (t *Tracer) RenderTree() string {
	return renderTree(t.Spans())
}

// RenderLastQuery renders the span tree of the most recently started query
// (the last root span carrying a query ID), or the whole forest when no
// span is query-scoped.
func (t *Tracer) RenderLastQuery() string {
	spans := t.Spans()
	last := ""
	for _, s := range spans {
		if s.Query != "" {
			last = s.Query
		}
	}
	if last == "" {
		return renderTree(spans)
	}
	scoped := spans[:0:0]
	for _, s := range spans {
		if s.Query == last {
			scoped = append(scoped, s)
		}
	}
	return renderTree(scoped)
}

func renderTree(spans []Span) string {
	present := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		present[s.ID] = true
	}
	children := make(map[SpanID][]int)
	var roots []int
	for i, s := range spans {
		if s.Parent != 0 && s.Parent != s.ID && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var b strings.Builder
	visited := make([]bool, len(spans))
	var walk func(i, depth int)
	walk = func(i, depth int) {
		if visited[i] {
			return
		}
		visited[i] = true
		writeSpan(&b, spans[i], depth)
		for _, c := range children[spans[i].ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	// A parent cycle (possible only with corrupt or colliding IDs) must not
	// silently drop spans: render whatever the root walk missed as roots.
	for i := range spans {
		if !visited[i] {
			walk(i, 0)
		}
	}
	return b.String()
}

func writeSpan(b *strings.Builder, s Span, depth int) {
	fmt.Fprintf(b, "%s%s", strings.Repeat("  ", depth), s.Name)
	if s.Phases != "" {
		fmt.Fprintf(b, " [%s]", s.Phases)
	}
	fmt.Fprintf(b, " @%s", s.Site)
	if s.Query != "" && depth == 0 {
		fmt.Fprintf(b, " query=%s", s.Query)
		if s.Algorithm != "" {
			fmt.Fprintf(b, " alg=%s", s.Algorithm)
		}
	}
	if s.End.IsZero() {
		b.WriteString(" (open)")
	} else {
		fmt.Fprintf(b, " %.0fµs", s.DurationMicros())
		if v := s.VDurationMicros(); v >= 0 {
			fmt.Fprintf(b, " v=%.1fµs", v)
		}
	}
	if len(s.Counters) > 0 {
		names := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, k := range names {
			parts[i] = fmt.Sprintf("%s=%d", k, s.Counters[k])
		}
		fmt.Fprintf(b, " {%s}", strings.Join(parts, " "))
	}
	if s.Detail != "" {
		fmt.Fprintf(b, " — %s", s.Detail)
	}
	b.WriteByte('\n')
}
