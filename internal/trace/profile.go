// Profile: the per-query cost record assembled at query end from the span
// tree. Where a Span answers "what did this step do", a Profile answers the
// paper's question for one whole query — how much time each site spent in
// each of the O/I/P phases, what travelled where, and whether the answer
// degraded — in a form a flight recorder can retain and an EXPLAIN ANALYZE
// table can lay against the planner's prediction.
package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/object"
)

// Profile statuses.
const (
	StatusOK       = "ok"
	StatusDegraded = "degraded"
	StatusError    = "error"
	// StatusCanceled and StatusDeadline mark queries cut short mid-flight:
	// the caller went away, or the per-query deadline expired. Both always
	// survive flight-recorder eviction — an interrupted query is precisely
	// the kind worth a post-mortem.
	StatusCanceled = "canceled"
	StatusDeadline = "deadline"
)

// Profile is one query execution's cost record.
type Profile struct {
	// ID is the query ID the spans share (q<N> in-process, rq<N>-<tag> over
	// the wire).
	ID string `json:"id"`
	// Alg is the executing strategy's name.
	Alg string `json:"alg"`
	// Start is the wall-clock start (the root span's).
	Start time.Time `json:"start"`
	// WallMicros is the end-to-end latency observed by the recording
	// process.
	WallMicros float64 `json:"wall_us"`
	// VMicros is the latency on the fabric runtime's clock (virtual time
	// under the DES), -1 when no runtime clock was attached.
	VMicros float64 `json:"v_us"`
	// Status is ok, degraded, or error.
	Status string `json:"status"`
	// Error holds the failure when Status is error.
	Error string `json:"error,omitempty"`
	// Certain and Maybe count the answer's rows.
	Certain int `json:"certain"`
	Maybe   int `json:"maybe"`
	// Unavailable lists the sites that could not serve the query.
	Unavailable []string `json:"unavailable,omitempty"`
	// Sites are the sites the query's spans touched, sorted.
	Sites []object.SiteID `json:"sites"`
	// Phases is the measured site × phase time attribution. A span tagged
	// with several phases ("PO") contributes its full duration to each — the
	// phases are not separable at the site (same rule as phase_time_us).
	Phases *cost.Breakdown `json:"phases"`
	// Counters aggregates the spans' named counters (rows, items,
	// bytes_shipped, sent/recv_bytes, …) plus recorder-added per-query
	// values (rpcs, admission_wait_us, fabric byte totals).
	Counters map[string]int64 `json:"counters,omitempty"`
	// IO attributes the query's measured event counts to the site that
	// performed them — the denominators the adaptive calibrator divides the
	// measured phase times by to observe each site's effective rates. Filled
	// from the runtime's per-site metrics in process, or from the disk_bytes/
	// cpu_ops counters the serving sites stamp on their spans over the wire.
	IO map[string]SiteIO `json:"io,omitempty"`
	// Spans is the query's span tree (every process's spans the recorder
	// saw, imported remote spans included).
	Spans []Span `json:"-"`
}

// SiteIO is one site's measured event counts within a query: the cost-model
// denominators (disk bytes read, CPU comparisons, net bytes shipped) whose
// measured-time-over-modeled-time ratio calibrates the site's rates.
type SiteIO struct {
	DiskBytes int64 `json:"disk_bytes,omitempty"`
	CPUOps    int64 `json:"cpu_ops,omitempty"`
	NetBytes  int64 `json:"net_bytes,omitempty"`
}

// AddIO accumulates measured event counts under a site (nil-safe).
func (p *Profile) AddIO(site string, io SiteIO) {
	if p == nil || (io.DiskBytes == 0 && io.CPUOps == 0 && io.NetBytes == 0) {
		return
	}
	if p.IO == nil {
		p.IO = make(map[string]SiteIO)
	}
	cur := p.IO[site]
	cur.DiskBytes += io.DiskBytes
	cur.CPUOps += io.CPUOps
	cur.NetBytes += io.NetBytes
	p.IO[site] = cur
}

// BuildProfile assembles a profile from one query's spans (as returned by
// Tracer.QuerySpans). Status, answer counts and counter extras are the
// caller's to fill in; the builder derives timing, sites, phase attribution
// and span-counter aggregates. Returns nil when no spans are given.
func BuildProfile(qid, alg string, spans []Span) *Profile {
	if len(spans) == 0 {
		return nil
	}
	p := &Profile{
		ID:      qid,
		Alg:     alg,
		Status:  StatusOK,
		VMicros: -1,
		Phases:  &cost.Breakdown{},
		Spans:   spans,
	}
	present := make(map[SpanID]bool, len(spans))
	siteSet := make(map[object.SiteID]bool)
	for _, s := range spans {
		present[s.ID] = true
		siteSet[s.Site] = true
	}
	for _, s := range spans {
		for k, v := range s.Counters {
			if p.Counters == nil {
				p.Counters = make(map[string]int64)
			}
			p.Counters[k] += v
		}
		// Spans stamped with measured event counts (the serving sites' spans
		// over the wire) feed the per-site IO attribution.
		p.AddIO(string(s.Site), SiteIO{
			DiskBytes: s.Counters["disk_bytes"],
			CPUOps:    s.Counters["cpu_ops"],
		})
		// Phase attribution: one histogram-equivalent observation per phase
		// letter, runtime clock preferred (the DES wall time is meaningless).
		if s.Phases != "" && !s.End.IsZero() {
			d := s.VDurationMicros()
			if d < 0 {
				d = s.DurationMicros()
			}
			for _, ph := range s.Phases {
				p.Phases.Add(string(s.Site), string(ph), d)
			}
		}
		// The root span (its parent was recorded elsewhere or is 0) carries
		// the query's end-to-end timing.
		if s.Parent == 0 || !present[s.Parent] {
			if p.Start.IsZero() || s.Start.Before(p.Start) {
				p.Start = s.Start
				p.WallMicros = s.DurationMicros()
				p.VMicros = s.VDurationMicros()
			}
		}
	}
	for site := range siteSet {
		p.Sites = append(p.Sites, site)
	}
	sort.Slice(p.Sites, func(i, j int) bool { return p.Sites[i] < p.Sites[j] })
	return p
}

// AddCounter accumulates a named per-query value (nil-safe).
func (p *Profile) AddCounter(name string, v int64) {
	if p == nil || v == 0 {
		return
	}
	if p.Counters == nil {
		p.Counters = make(map[string]int64)
	}
	p.Counters[name] += v
}

// SetOutcome records the answer shape: row counts, the unavailable sites,
// and the resulting status (a non-empty err wins over degradation; a
// context error classifies as canceled/deadline rather than error, since
// the interrupted query still produced a sound partial answer).
func (p *Profile) SetOutcome(certain, maybe int, unavailable []string, err error) {
	if p == nil {
		return
	}
	p.Certain, p.Maybe = certain, maybe
	p.Unavailable = unavailable
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		p.Status = StatusDeadline
		p.Error = err.Error()
	case errors.Is(err, context.Canceled):
		p.Status = StatusCanceled
		p.Error = err.Error()
	case err != nil:
		p.Status = StatusError
		p.Error = err.Error()
	case len(unavailable) > 0:
		p.Status = StatusDegraded
	default:
		p.Status = StatusOK
	}
}

// Interesting reports whether the profile must survive flight-recorder
// eviction regardless of age: it describes a degraded or failed query.
// (Slow-percentile retention is the recorder's call — it owns the latency
// distribution.)
func (p *Profile) Interesting() bool {
	return p != nil && p.Status != StatusOK
}

// RenderTree renders the profile's span forest (the same shape as
// Tracer.RenderTree, scoped to this query).
func (p *Profile) RenderTree() string {
	if p == nil {
		return ""
	}
	return renderTree(p.Spans)
}

// chromeEvent is one Chrome trace-event (the JSON Array / traceEvents
// format understood by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace exports the profile as Chrome trace-event JSON: one "process"
// per site, spans as complete ("X") events, greedily packed onto
// non-overlapping lanes per site. Load the output in chrome://tracing or
// https://ui.perfetto.dev.
func (p *Profile) ChromeTrace() ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("trace: nil profile")
	}
	pids := make(map[object.SiteID]int, len(p.Sites))
	for i, site := range p.Sites {
		pids[site] = i + 1
	}

	// Timestamps are microseconds relative to the profile start. Spans from
	// other processes share the wall clock (close enough for a debug
	// surface); an unfinished span gets a minimal visible duration.
	base := p.Start
	events := make([]chromeEvent, 0, len(p.Spans)+len(p.Sites))
	for site, pid := range pids {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": string(site)},
		})
	}

	// Greedy lane assignment per site so overlapping spans (parallel forks
	// at one site) never share a track.
	type lane struct{ end float64 }
	lanes := make(map[object.SiteID][]lane)
	spans := append([]Span(nil), p.Spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	for _, s := range spans {
		ts := float64(s.Start.Sub(base).Nanoseconds()) / 1e3
		dur := s.DurationMicros()
		if dur <= 0 {
			dur = 1
		}
		tid := -1
		for i := range lanes[s.Site] {
			if lanes[s.Site][i].end <= ts {
				lanes[s.Site][i].end = ts + dur
				tid = i
				break
			}
		}
		if tid < 0 {
			lanes[s.Site] = append(lanes[s.Site], lane{end: ts + dur})
			tid = len(lanes[s.Site]) - 1
		}
		args := map[string]any{"query": s.Query, "span": uint64(s.ID)}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		for k, v := range s.Counters {
			args[k] = v
		}
		cat := "step"
		if s.Phases != "" {
			cat = s.Phases
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: cat, Ph: "X",
			Ts: ts, Dur: dur, Pid: pids[s.Site], Tid: tid, Args: args,
		})
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	return json.MarshalIndent(doc, "", " ")
}
