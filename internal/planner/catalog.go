// Package planner chooses an execution strategy for a global query by
// estimating each strategy's cost from catalog statistics — the decision
// layer a federated system built on the paper's strategies needs, informed
// directly by the paper's findings: BL wins in general, CA is insensitive
// to selectivity, PL's overhead grows with the number of databases and the
// isomerism ratio.
//
// The catalog summarizes each constituent class (extent size, per-attribute
// value ranges, null fractions) and each global class's isomerism; the
// estimator mirrors the cost model of package fabric (Table 1 rates)
// analytically, without touching the data.
package planner

import (
	"math"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/store"
)

// AttrStats summarizes one attribute of one constituent class.
type AttrStats struct {
	// NonNull is the number of objects with a value for the attribute.
	NonNull int
	// Distinct approximates the number of distinct values.
	Distinct int
	// Min and Max bound numeric values (valid when Numeric).
	Min, Max float64
	Numeric  bool
}

// ExtentStats summarizes one constituent class at one site.
type ExtentStats struct {
	// Objects is the extent's cardinality.
	Objects int
	// Bytes is the total stored size under the cost model.
	Bytes int
	// Attrs holds per-attribute statistics.
	Attrs map[string]AttrStats
}

// AvgObjectBytes returns the average stored object size.
func (e ExtentStats) AvgObjectBytes() float64 {
	if e.Objects == 0 {
		return 0
	}
	return float64(e.Bytes) / float64(e.Objects)
}

// NullFraction returns the fraction of objects whose attribute is null
// (including class-level missing attributes, for which it is 1).
func (e ExtentStats) NullFraction(attr string) float64 {
	if e.Objects == 0 {
		return 0
	}
	s, ok := e.Attrs[attr]
	if !ok {
		return 1
	}
	return 1 - float64(s.NonNull)/float64(e.Objects)
}

// ClassStats summarizes one global class across the federation.
type ClassStats struct {
	// Entities is the number of distinct real-world entities.
	Entities int
	// AvgCopies is the average number of stored isomeric objects per
	// entity (the paper's N_iso).
	AvgCopies float64
	// IsomericRatio is the fraction of entities stored at more than one
	// site (the paper's R_iso).
	IsomericRatio float64
}

// Catalog is the statistics snapshot the estimator works from.
type Catalog struct {
	Global  *schema.Global
	Extents map[schema.Constituent]ExtentStats
	Classes map[string]ClassStats
}

// BuildCatalog scans the federation once and gathers the statistics.
func BuildCatalog(global *schema.Global, dbs map[object.SiteID]*store.Database, tables *gmap.Tables) *Catalog {
	cat := &Catalog{
		Global:  global,
		Extents: make(map[schema.Constituent]ExtentStats),
		Classes: make(map[string]ClassStats, len(global.ClassNames())),
	}
	for _, className := range global.ClassNames() {
		gc := global.Class(className)
		for site, localName := range gc.Constituents {
			db := dbs[site]
			if db == nil {
				continue
			}
			ext := db.Extent(localName)
			if ext == nil {
				continue
			}
			cat.Extents[schema.Constituent{Site: site, Class: className}] = scanExtent(ext)
		}
		table := tables.Table(className)
		cs := ClassStats{Entities: table.Len()}
		if cs.Entities > 0 {
			iso := 0
			for _, g := range table.GOids() {
				if len(table.Locations(g)) > 1 {
					iso++
				}
			}
			cs.AvgCopies = float64(table.Bindings()) / float64(cs.Entities)
			cs.IsomericRatio = float64(iso) / float64(cs.Entities)
		}
		cat.Classes[className] = cs
	}
	return cat
}

func scanExtent(ext *store.Extent) ExtentStats {
	stats := ExtentStats{Attrs: make(map[string]AttrStats)}
	distinct := make(map[string]map[string]bool)
	ext.Scan(func(o *object.Object) bool {
		stats.Objects++
		stats.Bytes += o.WireSize(nil)
		for name, v := range o.Attrs {
			s := stats.Attrs[name]
			s.NonNull++
			switch v.Kind() {
			case object.KindInt:
				updateNumeric(&s, float64(v.Int64()))
			case object.KindFloat:
				updateNumeric(&s, v.Float64())
			}
			d := distinct[name]
			if d == nil {
				d = make(map[string]bool)
				distinct[name] = d
			}
			if len(d) < 10_000 { // cap the sketch
				d[v.String()] = true
			}
			stats.Attrs[name] = s
		}
		return true
	})
	for name, d := range distinct {
		s := stats.Attrs[name]
		s.Distinct = len(d)
		stats.Attrs[name] = s
	}
	return stats
}

func updateNumeric(s *AttrStats, v float64) {
	if !s.Numeric {
		s.Numeric = true
		s.Min, s.Max = v, v
		return
	}
	s.Min = math.Min(s.Min, v)
	s.Max = math.Max(s.Max, v)
}
