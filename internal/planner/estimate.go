package planner

import (
	"sort"

	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
)

// CoordSite is the placeholder site name under which an Estimate's Details
// attribute coordinator-side work — the planner does not know which site will
// coordinate. Relabel it (cost.Breakdown.Relabel) once the coordinator is
// known.
const CoordSite = "coord"

// Wire-size constants mirroring package federation's message model.
const (
	requestOverhead = 64
	rowFixedBytes   = object.LOidWireSize + object.GOidWireSize
	verdictBytes    = 8
	unsolvedBytes   = object.GOidWireSize + object.AttrWireSize
	checkItemBytes  = object.LOidWireSize + object.GOidWireSize + object.AttrWireSize
	checkReplyBytes = object.GOidWireSize + verdictBytes
)

// RateModel supplies the cost-model parameters the estimator charges each
// site's work under. The static planner uses one Table 1 constant set for
// every site (Uniform); the adaptive selector substitutes per-site rates
// calibrated from measured profiles. Coordinator-side work is charged under
// the CoordSite placeholder.
type RateModel interface {
	SiteRates(site object.SiteID) fabric.Rates
}

// Uniform is the RateModel that charges every site the same rates — the
// paper's Table 1 world.
func Uniform(r fabric.Rates) RateModel { return uniform{r} }

type uniform struct{ r fabric.Rates }

func (u uniform) SiteRates(object.SiteID) fabric.Rates { return u.r }

// Estimate is the predicted cost of one strategy.
type Estimate struct {
	Alg exec.Algorithm
	// TotalMicros predicts the total execution time (summed work).
	TotalMicros float64
	// ResponseMicros predicts the response time (critical path).
	ResponseMicros float64
	// CheckMicros is the share of TotalMicros spent on assistant-object
	// checking at other sites (check shipping, assistant reads, verdict
	// evaluation). Zero for CA, which ships no checks; largest for PL, which
	// checks every object. The degradation-aware selector penalizes this
	// share when a check target's breaker is open.
	CheckMicros float64
	// Details attributes TotalMicros per site and phase (O object location,
	// I integration, P predicate processing); coordinator-side work is filed
	// under CoordSite. The attribution is the cost model's, so EXPLAIN
	// ANALYZE can lay it against a measured Breakdown row for row.
	Details *cost.Breakdown
}

// Estimates predicts the costs of CA, BL and PL for a bound query under one
// global rate set, ordered as exec.Algorithms().
func Estimates(cat *Catalog, b *query.Bound, rates fabric.Rates) []Estimate {
	return EstimatesWith(cat, b, Uniform(rates))
}

// EstimatesWith predicts the costs of CA, BL and PL under a per-site rate
// model, ordered as exec.Algorithms().
func EstimatesWith(cat *Catalog, b *query.Bound, model RateModel) []Estimate {
	e := estimator{cat: cat, b: b, model: model}
	return []Estimate{e.ca(), e.localized(exec.BL), e.localized(exec.PL)}
}

// Choose returns the strategy with the lowest predicted response time,
// breaking ties by total execution time.
func Choose(cat *Catalog, b *query.Bound, rates fabric.Rates) exec.Algorithm {
	return ChooseFrom(Estimates(cat, b, rates)).Alg
}

// ChooseFrom returns the estimate with the lowest predicted response time,
// breaking ties by total execution time. The input slice is not modified, so
// callers can keep their Estimates in exec.Algorithms() order.
func ChooseFrom(ests []Estimate) Estimate {
	sorted := append([]Estimate(nil), ests...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].ResponseMicros != sorted[j].ResponseMicros {
			return sorted[i].ResponseMicros < sorted[j].ResponseMicros
		}
		return sorted[i].TotalMicros < sorted[j].TotalMicros
	})
	return sorted[0]
}

type estimator struct {
	cat   *Catalog
	b     *query.Bound
	model RateModel
}

// rates returns the site's cost parameters under the model.
func (e *estimator) rates(site object.SiteID) fabric.Rates {
	return e.model.SiteRates(site)
}

// coordRates returns the coordinator placeholder's cost parameters.
func (e *estimator) coordRates() fabric.Rates {
	return e.model.SiteRates(object.SiteID(CoordSite))
}

func (e *estimator) extent(class string, site object.SiteID) ExtentStats {
	return e.cat.Extents[schema.Constituent{Site: site, Class: class}]
}

// selectivity estimates P(predicate true | value present) from the final
// attribute's statistics at the given site, falling back to 1/3 when no
// statistics apply.
func (e *estimator) selectivity(bp query.BoundPredicate, site object.SiteID) float64 {
	const fallback = 1.0 / 3
	finalClass := bp.Classes[len(bp.Classes)-1]
	ext := e.extent(finalClass, site)
	s, ok := ext.Attrs[bp.Path[len(bp.Path)-1]]
	if !ok || s.NonNull == 0 {
		return fallback
	}
	switch bp.Op {
	case query.OpEq:
		if s.Distinct > 0 {
			return clamp01(1 / float64(s.Distinct))
		}
		return fallback
	case query.OpNe:
		if s.Distinct > 0 {
			return clamp01(1 - 1/float64(s.Distinct))
		}
		// Complement of the = fallback: with no statistics, != keeps what =
		// would drop.
		return 1 - fallback
	case query.OpLt, query.OpLe, query.OpGt, query.OpGe:
		if !s.Numeric || s.Max <= s.Min {
			return fallback
		}
		var lit float64
		switch bp.Literal.Kind() {
		case object.KindInt:
			lit = float64(bp.Literal.Int64())
		case object.KindFloat:
			lit = bp.Literal.Float64()
		default:
			return fallback
		}
		frac := clamp01((lit - s.Min) / (s.Max - s.Min))
		if bp.Op == query.OpGt || bp.Op == query.OpGe {
			return 1 - frac
		}
		return frac
	default:
		return fallback
	}
}

// unknownProb estimates P(predicate unknown at site): one when some step is
// a missing attribute of the site's constituent classes, otherwise the
// union of the per-step null fractions.
func (e *estimator) unknownProb(bp query.BoundPredicate, site object.SiteID) float64 {
	known := 1.0
	for i, step := range bp.Path {
		gc := e.cat.Global.Class(bp.Classes[i])
		if !gc.Holds(site, step) {
			return 1
		}
		known *= 1 - e.extent(bp.Classes[i], site).NullFraction(step)
	}
	return clamp01(1 - known)
}

// surviveProb estimates P(object survives the predicate locally): unknown
// or true.
func (e *estimator) surviveProb(bp query.BoundPredicate, site object.SiteID) float64 {
	u := e.unknownProb(bp, site)
	return clamp01(u + (1-u)*e.selectivity(bp, site))
}

// branchDiskBytes estimates the disk bytes of dereferencing branch objects
// for a set of predicates: the buffer pool reads each distinct branch
// object at most once per local query, so every branch class on any
// predicate path is charged once, bounded by the root cardinality.
func (e *estimator) branchDiskBytes(preds []query.BoundPredicate, site object.SiteID, rootObjects int) float64 {
	touchedClasses := map[string]bool{}
	for _, bp := range preds {
		for i := 1; i < len(bp.Classes); i++ {
			// Only classes reachable before the first missing step are
			// actually dereferenced.
			if j, missing := e.firstMissing(bp, site); missing && i > j {
				break
			}
			touchedClasses[bp.Classes[i]] = true
		}
	}
	var bytes float64
	for class := range touchedClasses {
		branch := e.extent(class, site)
		touched := minf(float64(rootObjects), float64(branch.Objects))
		bytes += touched * branch.AvgObjectBytes()
	}
	return bytes
}

// firstMissing returns the first path step that is a missing attribute of
// the site's constituent classes.
func (e *estimator) firstMissing(bp query.BoundPredicate, site object.SiteID) (int, bool) {
	for i, step := range bp.Path {
		if !e.cat.Global.Class(bp.Classes[i]).Holds(site, step) {
			return i, true
		}
	}
	return 0, false
}

// assistantsPerItem estimates how many assistant objects one unsolved item
// of the class has (isomeric copies at other sites).
func (e *estimator) assistantsPerItem(class string) float64 {
	cs := e.cat.Classes[class]
	if cs.AvgCopies > 1 {
		return cs.AvgCopies - 1
	}
	return 0
}

// suffixHeldProb estimates the probability a random other site can evaluate
// the unsolved suffix of a predicate (every remaining step held there) —
// checks are only dispatched to such sites.
func (e *estimator) suffixHeldProb(bp query.BoundPredicate, site object.SiteID) float64 {
	j, missing := e.firstMissing(bp, site)
	if !missing {
		// Runtime null: the suffix starts at the final step.
		j = len(bp.Path) - 1
	}
	prob := 1.0
	for i := j; i < len(bp.Path); i++ {
		gc := e.cat.Global.Class(bp.Classes[i])
		sites := gc.Sites()
		if len(sites) == 0 {
			return 0
		}
		holding := 0
		for _, s := range sites {
			if gc.Holds(s, bp.Path[i]) {
				holding++
			}
		}
		prob *= float64(holding) / float64(len(sites))
	}
	return prob
}

// itemClassOf returns the class of the unsolved item a predicate produces
// at a site (the class at the first missing step, or the final class for
// runtime nulls).
func (e *estimator) itemClassOf(bp query.BoundPredicate, site object.SiteID) string {
	for i, step := range bp.Path {
		gc := e.cat.Global.Class(bp.Classes[i])
		if !gc.Holds(site, step) {
			return bp.Classes[i]
		}
	}
	return bp.Classes[len(bp.Classes)-1]
}

// ca estimates the centralized approach.
func (e *estimator) ca() Estimate {
	var (
		totalWork   float64 // µs across all resources
		maxSiteTime float64 // slowest site's local phase
		netMicros   float64 // serialized shared-medium time
		details     cost.Breakdown
	)
	involved := e.b.InvolvedAttrs()
	for _, site := range e.b.InvolvedSites() {
		rates := e.rates(site)
		var disk, cpu, net float64
		net += requestOverhead
		for class, attrs := range involved {
			ext := e.extent(class, site)
			if ext.Objects == 0 {
				continue
			}
			disk += float64(ext.Bytes)
			cpu += float64(ext.Objects)
			// Projected reply: LOid plus the involved attributes that are
			// present.
			per := float64(object.LOidWireSize)
			for _, a := range attrs {
				s := ext.Attrs[a]
				ga, _ := e.cat.Global.Class(class).Attr(a)
				size := float64(object.AttrWireSize)
				if ga.IsComplex() {
					size = object.LOidWireSize
				}
				if ext.Objects > 0 {
					per += size * float64(s.NonNull) / float64(ext.Objects)
				}
			}
			net += float64(ext.Objects) * per
		}
		siteTime := disk*rates.DiskPerByte + cpu*rates.CPUPerOp
		totalWork += siteTime
		maxSiteTime = maxf(maxSiteTime, siteTime)
		// Shipping is charged under the shipping site's network rate — a
		// site behind a slow link is slow to ship regardless of the peer.
		netMicros += net * rates.NetPerByte
		// Under CA a site's whole contribution is object retrieval — the O
		// phase — including shipping its projection to the coordinator.
		details.AddEstimate(string(site), "O", siteTime+net*rates.NetPerByte)
	}

	// Coordinator: materialization (a lookup plus per-attribute merges per
	// shipped object) and central evaluation.
	var materializeCPU, evalCPU float64
	for _, site := range e.b.InvolvedSites() {
		for class, attrs := range involved {
			ext := e.extent(class, site)
			materializeCPU += float64(ext.Objects) * float64(1+len(attrs))
		}
	}
	rootEntities := float64(e.cat.Classes[e.b.Query.Range].Entities)
	for _, bp := range e.b.Preds {
		evalCPU += rootEntities * (float64(len(bp.Path)) + 1)
	}
	coordMicros := (materializeCPU + evalCPU) * e.coordRates().CPUPerOp
	details.AddEstimate(CoordSite, "I", materializeCPU*e.coordRates().CPUPerOp)
	details.AddEstimate(CoordSite, "P", evalCPU*e.coordRates().CPUPerOp)

	return Estimate{
		Alg:            exec.CA,
		TotalMicros:    totalWork + netMicros + coordMicros,
		ResponseMicros: maxSiteTime + netMicros + coordMicros,
		Details:        &details,
	}
}

// localized estimates BL or PL; they differ in whose items are checked
// (survivors vs. every object) and in the check/evaluation overlap.
func (e *estimator) localized(alg exec.Algorithm) Estimate {
	var (
		totalWork   float64
		maxSiteTime float64
		netMicros   float64
		coordCPU    float64
		maxCheckRTT float64
		details     cost.Breakdown
		resultBytes float64
		checkTotal  float64
	)
	for _, site := range e.b.RootSites() {
		rates := e.rates(site)
		root := e.extent(e.b.Query.Range, site)
		n := float64(root.Objects)

		// Split the predicates as the site will: local (every step held)
		// versus removed (unsolved for every object).
		var local, removed []query.BoundPredicate
		for _, bp := range e.b.Preds {
			if _, missing := e.firstMissing(bp, site); missing {
				removed = append(removed, bp)
			} else {
				local = append(local, bp)
			}
		}

		// Local evaluation work. Under BL the conjunction short-circuits:
		// predicate j is evaluated only on objects that survived the
		// previous ones; under PL every path is navigated for every object
		// in phase O.
		disk := float64(root.Bytes)
		var cpu float64
		survive := 1.0
		var unsolvedPerRow float64 // expected unsolved entries per surviving row
		var checkItems float64     // expected check items per carrier object
		reach := 1.0
		for _, bp := range local {
			steps := float64(len(bp.Path)) + 1
			if alg == exec.BL {
				cpu += n * reach * steps
			} else {
				cpu += n * steps
			}
			u := e.unknownProb(bp, site)
			sp := e.surviveProb(bp, site)
			reach *= sp
			survive *= sp
			// Conditional on surviving, the predicate is unknown with
			// probability u / (u + (1-u)·sel).
			condU := u
			if sp > 0 {
				condU = u / sp
			}
			unsolvedPerRow += condU
			checkItems += condU * e.assistantsPerItem(e.itemClassOf(bp, site)) *
				e.suffixHeldProb(bp, site)
		}
		survivors := n * survive
		for _, bp := range removed {
			j, _ := e.firstMissing(bp, site)
			steps := float64(j) + 1
			if alg == exec.BL {
				cpu += survivors * steps // BL resolves items for survivors only
			} else {
				cpu += n * steps
			}
			unsolvedPerRow++
			checkItems += e.assistantsPerItem(e.itemClassOf(bp, site)) *
				e.suffixHeldProb(bp, site)
		}
		disk += e.branchDiskBytes(e.b.Preds, site, root.Objects)

		carriers := survivors // BL: checks only for surviving rows
		if alg == exec.PL {
			carriers = n // PL: checks for every object
		}
		checks := carriers * checkItems
		cpu += carriers * (unsolvedPerRow + 1) // item GOids + assistant lookups

		rowBytes := rowFixedBytes +
			len(e.b.Targets)*object.AttrWireSize +
			len(e.b.Preds)*verdictBytes
		resultNet := requestOverhead + survivors*(float64(rowBytes)+unsolvedPerRow*unsolvedBytes)

		// Check processing at the target sites (disk + eval) and verdict
		// transfer to the coordinator. The estimator cannot name the target
		// sites (the mapping tables decide per object), so check work is
		// charged under the average rates of the OTHER root sites — the pool
		// the assistants live in.
		checkNet := checks * (checkItemBytes + checkReplyBytes)
		avgAssistantBytes := root.AvgObjectBytes() // same order as the root class
		peer := e.peerRates(site)
		checkWork := checks * (avgAssistantBytes*peer.DiskPerByte + 3*peer.CPUPerOp)

		siteTime := disk*rates.DiskPerByte + cpu*rates.CPUPerOp
		totalWork += siteTime + checkWork
		netMicros += (resultNet + checkNet) * rates.NetPerByte
		resultBytes += resultNet

		// Attribution mirrors the executor's span phases. Under BL a site
		// runs one inseparable P+O step, so both phases carry its full local
		// time (the same double attribution the measured side applies to a
		// "PO" span); under PL navigation (O) and evaluation (P) are separate
		// steps, split here by resource. Check processing happens at
		// assistant sites the estimator cannot name, so it is filed under the
		// dispatching site's O.
		checkMicros := checkWork + checkNet*rates.NetPerByte
		checkTotal += checkMicros
		if alg == exec.BL {
			details.AddEstimate(string(site), "P", siteTime)
			details.AddEstimate(string(site), "O", siteTime+checkMicros)
		} else {
			details.AddEstimate(string(site), "P", cpu*rates.CPUPerOp)
			details.AddEstimate(string(site), "O", disk*rates.DiskPerByte+checkMicros)
		}

		switch alg {
		case exec.BL:
			// Checks happen after local evaluation.
			maxSiteTime = maxf(maxSiteTime, siteTime+checkWork)
		default:
			// PL overlaps checking with local evaluation.
			maxSiteTime = maxf(maxSiteTime, siteTime)
			maxCheckRTT = maxf(maxCheckRTT, checkWork)
		}

		coordCPU += survivors * float64(len(e.b.Preds)+1)
		coordCPU += checks
	}

	coord := e.coordRates()
	details.AddEstimate(CoordSite, "I", coordCPU*coord.CPUPerOp+resultBytes*coord.NetPerByte)
	resp := maxf(maxSiteTime, maxCheckRTT) + netMicros + coordCPU*coord.CPUPerOp
	return Estimate{
		Alg:            alg,
		TotalMicros:    totalWork + netMicros + coordCPU*coord.CPUPerOp,
		ResponseMicros: resp,
		CheckMicros:    checkTotal,
		Details:        &details,
	}
}

// peerRates averages the rates of the root sites other than the given one —
// the estimator's stand-in for unnamed check-target sites. With no other
// root site (or a uniform model) it degenerates to the site's own rates.
func (e *estimator) peerRates(site object.SiteID) fabric.Rates {
	var sum fabric.Rates
	n := 0
	for _, other := range e.b.RootSites() {
		if other == site {
			continue
		}
		r := e.rates(other)
		sum.DiskPerByte += r.DiskPerByte
		sum.NetPerByte += r.NetPerByte
		sum.CPUPerOp += r.CPUPerOp
		n++
	}
	if n == 0 {
		return e.rates(site)
	}
	return fabric.Rates{
		DiskPerByte: sum.DiskPerByte / float64(n),
		NetPerByte:  sum.NetPerByte / float64(n),
		CPUPerOp:    sum.CPUPerOp / float64(n),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
