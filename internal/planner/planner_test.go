package planner

import (
	"math/rand"
	"testing"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/workload"
)

func schoolCatalog(t *testing.T) (*school.Fixture, *Catalog, *query.Bound) {
	t.Helper()
	fx := school.New()
	cat := BuildCatalog(fx.Global, fx.Databases, fx.Mapping)
	b := query.MustBind(query.MustParse(school.Q1), fx.Global)
	return fx, cat, b
}

func TestBuildCatalogSchool(t *testing.T) {
	_, cat, _ := schoolCatalog(t)

	st := cat.Extents[schema.Constituent{Site: "DB1", Class: "Student"}]
	if st.Objects != 3 {
		t.Errorf("Student@DB1 objects = %d", st.Objects)
	}
	age := st.Attrs["age"]
	if !age.Numeric || age.Min != 24 || age.Max != 31 || age.NonNull != 3 || age.Distinct != 3 {
		t.Errorf("age stats = %+v", age)
	}
	// s1's sex is null: 2 of 3 students have it.
	if got := st.NullFraction("sex"); got < 0.3 || got > 0.34 {
		t.Errorf("sex null fraction = %g", got)
	}
	// address is a missing attribute at DB1: fraction 1.
	if got := st.NullFraction("address"); got != 1 {
		t.Errorf("address null fraction = %g", got)
	}

	teacher := cat.Classes["Teacher"]
	if teacher.Entities != 4 || teacher.IsomericRatio != 0.75 {
		t.Errorf("Teacher stats = %+v", teacher)
	}
	if teacher.AvgCopies != 1.75 {
		t.Errorf("Teacher AvgCopies = %g", teacher.AvgCopies)
	}
}

func TestSelectivityEstimates(t *testing.T) {
	fx, cat, _ := schoolCatalog(t)
	e := estimator{cat: cat, model: Uniform(fabric.DefaultRates())}

	// age < 30 on DB1's students: range [24,31], (30-24)/(31-24) ≈ 0.857.
	b := query.MustBind(query.MustParse(`select name from Student where age < 30`), fx.Global)
	sel := e.selectivity(b.Preds[0], "DB1")
	if sel < 0.8 || sel > 0.9 {
		t.Errorf("selectivity(age<30) = %g", sel)
	}
	// age > 30.
	b2 := query.MustBind(query.MustParse(`select name from Student where age > 30`), fx.Global)
	if s := e.selectivity(b2.Preds[0], "DB1"); s < 0.1 || s > 0.2 {
		t.Errorf("selectivity(age>30) = %g", s)
	}
	// Equality: 1/distinct.
	b3 := query.MustBind(query.MustParse(`select name from Student where name = "John"`), fx.Global)
	if s := e.selectivity(b3.Preds[0], "DB1"); s < 0.3 || s > 0.34 {
		t.Errorf("selectivity(name=John) = %g", s)
	}
	// No stats (missing attribute): fallback.
	b4 := query.MustBind(query.MustParse(`select name from Student where address.city = "x"`), fx.Global)
	if s := e.selectivity(b4.Preds[0], "DB1"); s != 1.0/3 {
		t.Errorf("fallback selectivity = %g", s)
	}
}

func TestUnknownProb(t *testing.T) {
	fx, cat, b := schoolCatalog(t)
	_ = fx
	e := estimator{cat: cat, b: b, model: Uniform(fabric.DefaultRates())}

	// address.city at DB1: missing attribute → 1.
	if u := e.unknownProb(b.Preds[0], "DB1"); u != 1 {
		t.Errorf("unknown(address.city@DB1) = %g", u)
	}
	// address.city at DB2: held, no nulls → 0.
	if u := e.unknownProb(b.Preds[0], "DB2"); u != 0 {
		t.Errorf("unknown(address.city@DB2) = %g", u)
	}
	// advisor.department.name at DB1: t2's null department → 1/3.
	if u := e.unknownProb(b.Preds[2], "DB1"); u < 0.3 || u > 0.35 {
		t.Errorf("unknown(department@DB1) = %g", u)
	}
}

func TestItemClassOf(t *testing.T) {
	_, cat, b := schoolCatalog(t)
	e := estimator{cat: cat, b: b}
	if got := e.itemClassOf(b.Preds[0], "DB1"); got != "Student" {
		t.Errorf("item class = %s", got)
	}
	if got := e.itemClassOf(b.Preds[1], "DB1"); got != "Teacher" {
		t.Errorf("item class = %s", got)
	}
	if got := e.itemClassOf(b.Preds[2], "DB2"); got != "Teacher" {
		t.Errorf("item class = %s", got)
	}
}

func TestEstimatesOrderingOnSchool(t *testing.T) {
	_, cat, b := schoolCatalog(t)
	ests := Estimates(cat, b, fabric.DefaultRates())
	if len(ests) != 3 || ests[0].Alg != exec.CA || ests[1].Alg != exec.BL || ests[2].Alg != exec.PL {
		t.Fatalf("estimates = %+v", ests)
	}
	for _, est := range ests {
		if est.TotalMicros <= 0 || est.ResponseMicros <= 0 {
			t.Errorf("%v: non-positive estimate %+v", est.Alg, est)
		}
		if est.ResponseMicros > est.TotalMicros {
			t.Errorf("%v: response exceeds total: %+v", est.Alg, est)
		}
	}
}

// TestChooseMatchesSimulation validates the planner against ground truth:
// across randomized federations, the chosen strategy's *actual* simulated
// response time must be close to the actual best — the planner may
// occasionally miss the winner, but never catastrophically.
func TestChooseMatchesSimulation(t *testing.T) {
	ranges := workload.DefaultRanges()
	ranges.NObjects = [2]int{150, 250}

	wins, total := 0, 0
	for seed := int64(500); seed < 515; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w, err := workload.Generate(ranges.Draw(rng), rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		engine, err := exec.New(exec.Config{
			Global: w.Global, Coordinator: "G", Databases: w.Databases, Tables: w.Tables,
		})
		if err != nil {
			t.Fatal(err)
		}

		actual := map[exec.Algorithm]float64{}
		best := exec.Algorithm(0)
		for _, alg := range exec.Algorithms() {
			_, m, err := engine.Run(fabric.NewSim(fabric.DefaultRates(), engine.Sites()), alg, w.Bound)
			if err != nil {
				t.Fatal(err)
			}
			actual[alg] = m.ResponseMicros
			if best == 0 || m.ResponseMicros < actual[best] {
				best = alg
			}
		}

		cat := BuildCatalog(w.Global, w.Databases, w.Tables)
		chosen := Choose(cat, w.Bound, fabric.DefaultRates())
		total++
		if chosen == best {
			wins++
		}
		if actual[chosen] > 2.5*actual[best] {
			t.Errorf("seed %d: chose %v (%.0f µs), %.1f× worse than best %v (%.0f µs)",
				seed, chosen, actual[chosen], actual[chosen]/actual[best], best, actual[best])
		}
	}
	if wins*2 < total {
		t.Errorf("planner picked the actual winner only %d/%d times", wins, total)
	}
}

func TestExtentStatsHelpers(t *testing.T) {
	var empty ExtentStats
	if empty.AvgObjectBytes() != 0 || empty.NullFraction("x") != 0 {
		t.Error("empty extent helpers wrong")
	}
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Error("clamp01 wrong")
	}
}

// TestEstimatesDisjunctiveQuery: the estimator treats disjunctive queries
// conservatively (its selectivity model is conjunctive) but must produce
// sane positive estimates for them.
func TestEstimatesDisjunctiveQuery(t *testing.T) {
	fx, cat, _ := schoolCatalog(t)
	b := query.MustBind(query.MustParse(
		`select name from Student where age < 25 or advisor.speciality = "database"`), fx.Global)
	for _, est := range Estimates(cat, b, fabric.DefaultRates()) {
		if est.TotalMicros <= 0 || est.ResponseMicros <= 0 {
			t.Errorf("%v: estimate %+v", est.Alg, est)
		}
		if est.ResponseMicros > est.TotalMicros {
			t.Errorf("%v: response > total", est.Alg)
		}
	}
}

// TestChooseDeterministic: the same catalog and query always pick the same
// strategy.
func TestChooseDeterministic(t *testing.T) {
	_, cat, b := schoolCatalog(t)
	first := Choose(cat, b, fabric.DefaultRates())
	for i := 0; i < 5; i++ {
		if got := Choose(cat, b, fabric.DefaultRates()); got != first {
			t.Fatalf("nondeterministic choice: %v vs %v", got, first)
		}
	}
}
