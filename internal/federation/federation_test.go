package federation

import (
	"reflect"
	"sort"
	"testing"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/tvl"
)

// run executes fn on the real fabric and fails the test on error.
func run(t *testing.T, fn func(fabric.Proc)) fabric.Metrics {
	t.Helper()
	m, err := fabric.NewReal(fabric.DefaultRates()).Run("test", fn)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func setup(t *testing.T) (*school.Fixture, *query.Bound, map[object.SiteID]*Site, *Coordinator) {
	t.Helper()
	fx := school.New()
	b := query.MustBind(query.MustParse(school.Q1), fx.Global)
	sites := make(map[object.SiteID]*Site, len(fx.Databases))
	for id, db := range fx.Databases {
		sites[id] = NewSite(db, fx.Global, fx.Mapping)
	}
	coord := NewCoordinator("G", fx.Global, fx.Mapping)
	return fx, b, sites, coord
}

// TestEvalLocalBasicDB1Figure7 reproduces the paper's Figure 7(a): DB1's
// local query returns three maybe results (s1, s2, s3) whose unsolved items
// are the roots themselves (address), their advisors (speciality), and —
// for s3 — advisor t2's null department.
func TestEvalLocalBasicDB1Figure7(t *testing.T) {
	_, b, sites, _ := setup(t)
	var res LocalResult
	var checks map[object.SiteID][]CheckItem
	run(t, func(p fabric.Proc) {
		res, checks = sites["DB1"].EvalLocalBasic(p, b, nil)
	})

	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	byLOid := map[object.LOid]LocalRow{}
	for _, r := range res.Rows {
		byLOid[r.LOid] = r
	}

	s1 := byLOid["s1"]
	if s1.GOid != "gs1" {
		t.Errorf("s1 GOid = %s", s1.GOid)
	}
	// s1: unsolved on address (self) and advisor.speciality (item gt1).
	if len(s1.Unsolved) != 2 {
		t.Fatalf("s1 unsolved = %+v", s1.Unsolved)
	}
	if !s1.Unsolved[0].SelfItem || s1.Unsolved[0].ItemGOid != "gs1" {
		t.Errorf("s1 unsolved[0] = %+v", s1.Unsolved[0])
	}
	if s1.Unsolved[1].SelfItem || s1.Unsolved[1].ItemGOid != "gt1" ||
		s1.Unsolved[1].ItemClass != "Teacher" {
		t.Errorf("s1 unsolved[1] = %+v", s1.Unsolved[1])
	}
	// s1's verdicts: department predicate (index 2) evaluated true locally.
	if s1.Verdicts[2] != tvl.True {
		t.Errorf("s1 verdicts = %v", s1.Verdicts)
	}

	// s3: t2's department is null, so the department predicate is unsolved
	// at item gt2.
	s3 := byLOid["s3"]
	found := false
	for _, u := range s3.Unsolved {
		if u.ItemGOid == "gt2" && u.SourceIdx == 2 &&
			u.Suffix.Path.Equal(query.Path{"department", "name"}) {
			found = true
		}
	}
	if !found {
		t.Errorf("s3 unsolved = %+v", s3.Unsolved)
	}

	// Checks: t2' to DB2 (speciality), t1'' to DB3 (department.name). No
	// check for gt3 (Haley): no isomeric object holds speciality.
	if len(checks["DB2"]) != 1 || checks["DB2"][0].Assistant != "t2'" {
		t.Errorf("DB2 checks = %+v", checks["DB2"])
	}
	wantDB3 := map[object.LOid]bool{"t1''": true}
	for _, c := range checks["DB3"] {
		if !wantDB3[c.Assistant] {
			t.Errorf("unexpected DB3 check %+v", c)
		}
	}
	if len(checks["DB3"]) != 1 {
		t.Errorf("DB3 checks = %+v", checks["DB3"])
	}
}

// TestEvalLocalBasicDB2Figure7 reproduces Figure 7(b): DB2 returns one
// maybe result (Hedy) with unsolved item t1' (Kelly) on the department
// predicate, checked against t2” at DB3.
func TestEvalLocalBasicDB2Figure7(t *testing.T) {
	_, b, sites, _ := setup(t)
	var res LocalResult
	var checks map[object.SiteID][]CheckItem
	run(t, func(p fabric.Proc) {
		res, checks = sites["DB2"].EvalLocalBasic(p, b, nil)
	})
	if len(res.Rows) != 1 || res.Rows[0].GOid != "gs4" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	row := res.Rows[0]
	if row.Verdicts[0] != tvl.True || row.Verdicts[1] != tvl.True || row.Verdicts[2] != tvl.Unknown {
		t.Errorf("verdicts = %v", row.Verdicts)
	}
	if len(checks["DB3"]) != 1 || checks["DB3"][0].Assistant != "t2''" {
		t.Errorf("DB3 checks = %+v", checks["DB3"])
	}
}

// TestCheckAssistants reproduces the paper's checking outcomes: Jeffery's
// DB2 record violates speciality=database; Kelly's DB3 record satisfies
// department.name=CS; Abel's DB3 record violates it (EE).
func TestCheckAssistants(t *testing.T) {
	_, _, sites, _ := setup(t)
	speciality := query.Predicate{
		Path: query.Path{"speciality"}, Op: query.OpEq, Literal: object.Str("database"),
	}
	deptName := query.Predicate{
		Path: query.Path{"department", "name"}, Op: query.OpEq, Literal: object.Str("CS"),
	}

	var reply CheckReply
	run(t, func(p fabric.Proc) {
		reply = sites["DB2"].CheckAssistants(p, []CheckItem{
			{Assistant: "t2'", ItemGOid: "gt1", ItemClass: "Teacher", Suffix: speciality, SourceIdx: 1},
		})
	})
	if len(reply.Verdicts) != 1 || reply.Verdicts[0].Verdict != tvl.False {
		t.Errorf("t2' check = %+v", reply.Verdicts)
	}

	run(t, func(p fabric.Proc) {
		reply = sites["DB3"].CheckAssistants(p, []CheckItem{
			{Assistant: "t2''", ItemGOid: "gt4", ItemClass: "Teacher", Suffix: deptName, SourceIdx: 2},
			{Assistant: "t1''", ItemGOid: "gt2", ItemClass: "Teacher", Suffix: deptName, SourceIdx: 2},
			{Assistant: "ghost", ItemGOid: "gX", ItemClass: "Teacher", Suffix: deptName, SourceIdx: 2},
		})
	})
	// The unfetchable "ghost" assistant produces no verdict at all (absent
	// and Unknown certify identically, and the reply's wire size must count
	// only verdicts actually produced), so only two verdicts come back.
	if len(reply.Verdicts) != 2 {
		t.Fatalf("Verdicts = %+v, want 2 (missing assistant dropped)", reply.Verdicts)
	}
	if reply.Verdicts[0].Verdict != tvl.True {
		t.Errorf("t2'' check = %+v", reply.Verdicts[0])
	}
	if reply.Verdicts[1].Verdict != tvl.False {
		t.Errorf("t1'' check = %+v", reply.Verdicts[1])
	}
}

// TestMaterializeFigure6 reproduces the paper's Figure 6: the materialized
// Student gs1 merges John's DB1 record (age 31) with his DB2 record (sex,
// address), and complex values are rewritten to GOids.
func TestMaterializeFigure6(t *testing.T) {
	_, b, sites, coord := setup(t)
	var view *View
	run(t, func(p fabric.Proc) {
		var replies []RetrieveReply
		for _, id := range []object.SiteID{"DB1", "DB2", "DB3"} {
			replies = append(replies, sites[id].Retrieve(p, b))
		}
		view = coord.Materialize(p, b, replies)
	})

	gs1, ok := view.Deref("gs1")
	if !ok {
		t.Fatal("gs1 not materialized")
	}
	if !gs1.Attr("name").Equal(object.Str("John")) {
		t.Errorf("gs1 name = %v", gs1.Attr("name"))
	}
	if gs1.Attr("advisor").RefLOid() != "gt1" {
		t.Errorf("gs1 advisor = %v", gs1.Attr("advisor"))
	}
	if gs1.Attr("address").RefLOid() != "ga2" {
		t.Errorf("gs1 address = %v", gs1.Attr("address"))
	}

	// gt4 (Kelly) merges DB2's speciality with DB3's department.
	gt4, ok := view.Deref("gt4")
	if !ok {
		t.Fatal("gt4 not materialized")
	}
	if !gt4.Attr("speciality").Equal(object.Str("database")) {
		t.Errorf("gt4 speciality = %v", gt4.Attr("speciality"))
	}
	if gt4.Attr("department").RefLOid() != "gd1" {
		t.Errorf("gt4 department = %v", gt4.Attr("department"))
	}

	// Five materialized students, sorted roots.
	if len(view.Roots()) != 5 {
		t.Errorf("roots = %d", len(view.Roots()))
	}
	var ids []string
	for _, r := range view.Roots() {
		ids = append(ids, string(r.LOid))
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("roots unsorted: %v", ids)
	}
}

// TestCertifyDirect drives Certify with hand-built inputs covering all
// three outcomes: solved (check true), eliminated (check false), and
// eliminated by a missing isomeric row.
func TestCertifyDirect(t *testing.T) {
	_, b, _, coord := setup(t)

	verdicts := func(v0, v1, v2 tvl.Truth) []tvl.Truth { return []tvl.Truth{v0, v1, v2} }
	targets := []object.Value{object.Str("X"), object.Null()}

	results := []LocalResult{{
		Site: "DB1",
		Rows: []LocalRow{
			// gs2 exists only at DB1 (mapping says so): stays maybe.
			{LOid: "s2", GOid: "gs2", Targets: targets,
				Verdicts: verdicts(tvl.Unknown, tvl.Unknown, tvl.True)},
			// gs1 exists at DB1 and DB2; DB2 returned no row: eliminated.
			{LOid: "s1", GOid: "gs1", Targets: targets,
				Verdicts: verdicts(tvl.Unknown, tvl.Unknown, tvl.True)},
			// gs3 has an unsolved item refuted by a check: eliminated.
			{LOid: "s3", GOid: "gs3", Targets: targets,
				Verdicts: verdicts(tvl.True, tvl.True, tvl.Unknown),
				Unsolved: []UnsolvedItem{{ItemGOid: "gt2", ItemClass: "Teacher",
					Suffix: query.Predicate{Path: query.Path{"department", "name"},
						Op: query.OpEq, Literal: object.Str("CS")}, SourceIdx: 2}},
			},
		},
	}, {
		Site: "DB2",
		Rows: []LocalRow{
			// gs4 unsolved on predicate 2, item certified by a check.
			{LOid: "s1'", GOid: "gs4", Targets: targets,
				Verdicts: verdicts(tvl.True, tvl.True, tvl.Unknown),
				Unsolved: []UnsolvedItem{{ItemGOid: "gt4", ItemClass: "Teacher",
					Suffix: query.Predicate{Path: query.Path{"department", "name"},
						Op: query.OpEq, Literal: object.Str("CS")}, SourceIdx: 2}},
			},
		},
	}}
	replies := []CheckReply{{
		Site: "DB3",
		Verdicts: []CheckVerdict{
			{ItemGOid: "gt4", SourceIdx: 2, SuffixLen: 2, Verdict: tvl.True},
			{ItemGOid: "gt2", SourceIdx: 2, SuffixLen: 2, Verdict: tvl.False},
		},
	}}

	var ans *Answer
	run(t, func(p fabric.Proc) {
		ans = coord.Certify(p, b, results, replies)
	})
	if got := ans.CertainGOids(); !reflect.DeepEqual(got, []object.GOid{"gs4"}) {
		t.Errorf("certain = %v", got)
	}
	if got := ans.MaybeGOids(); !reflect.DeepEqual(got, []object.GOid{"gs2"}) {
		t.Errorf("maybe = %v", got)
	}
	// Merged targets: first non-null wins.
	if !ans.Maybe[0].Targets[0].Equal(object.Str("X")) || !ans.Maybe[0].Targets[1].IsNull() {
		t.Errorf("targets = %v", ans.Maybe[0].Targets)
	}
}

// TestParallelFlowMatchesBasicRows: NavigateAll + EvalNavigated must return
// the same rows as EvalLocalBasic. The order of a row's unsolved entries
// may differ (BL discovers local-predicate unknowns before removed-predicate
// ones; PL walks the predicates in query order), so rows are normalized
// before comparison.
func TestParallelFlowMatchesBasicRows(t *testing.T) {
	_, b, sites, _ := setup(t)
	normalize := func(rows []LocalRow) []LocalRow {
		out := append([]LocalRow(nil), rows...)
		for i := range out {
			u := append([]UnsolvedItem(nil), out[i].Unsolved...)
			sort.Slice(u, func(a, b int) bool {
				if u[a].SourceIdx != u[b].SourceIdx {
					return u[a].SourceIdx < u[b].SourceIdx
				}
				return u[a].ItemGOid < u[b].ItemGOid
			})
			out[i].Unsolved = u
		}
		return out
	}
	for _, id := range []object.SiteID{"DB1", "DB2"} {
		var basic, parallel LocalResult
		run(t, func(p fabric.Proc) {
			basic, _ = sites[id].EvalLocalBasic(p, b, nil)
		})
		run(t, func(p fabric.Proc) {
			nav, _ := sites[id].NavigateAll(p, b, nil)
			parallel = sites[id].EvalNavigated(p, b, nav)
		})
		if !reflect.DeepEqual(normalize(basic.Rows), normalize(parallel.Rows)) {
			t.Errorf("%s: rows differ:\nbasic:    %+v\nparallel: %+v", id, basic.Rows, parallel.Rows)
		}
	}
}

// TestParallelChecksSuperset: PL's check set contains BL's.
func TestParallelChecksSuperset(t *testing.T) {
	_, b, sites, _ := setup(t)
	for _, id := range []object.SiteID{"DB1", "DB2"} {
		var blChecks, plChecks map[object.SiteID][]CheckItem
		run(t, func(p fabric.Proc) {
			_, blChecks = sites[id].EvalLocalBasic(p, b, nil)
		})
		run(t, func(p fabric.Proc) {
			_, plChecks = sites[id].NavigateAll(p, b, nil)
		})
		for target, items := range blChecks {
			plSet := map[object.LOid]bool{}
			for _, c := range plChecks[target] {
				plSet[c.Assistant] = true
			}
			for _, c := range items {
				if !plSet[c.Assistant] {
					t.Errorf("%s: BL check %v missing from PL", id, c.Assistant)
				}
			}
		}
	}
}

func TestRetrieveProjectsInvolvedAttrs(t *testing.T) {
	_, b, sites, _ := setup(t)
	var reply RetrieveReply
	run(t, func(p fabric.Proc) {
		reply = sites["DB1"].Retrieve(p, b)
	})
	// DB1 contributes Student, Teacher, Department (no Address).
	if len(reply.Classes) != 3 {
		t.Fatalf("classes = %+v", reply.Classes)
	}
	for _, co := range reply.Classes {
		if co.GlobalClass == "Student" {
			if len(co.Objects) != 3 {
				t.Errorf("students = %d", len(co.Objects))
			}
			for _, o := range co.Objects {
				// age and sex are not involved in Q1; they must be
				// projected away.
				if !o.Attr("age").IsNull() || !o.Attr("sex").IsNull() {
					t.Errorf("unprojected attributes on %v", o)
				}
			}
		}
	}
}

func TestWireSizes(t *testing.T) {
	row := LocalRow{
		LOid:     "s1",
		GOid:     "gs1",
		Targets:  []object.Value{object.Str("John"), object.GRef("gt1")},
		Verdicts: []tvl.Truth{tvl.True, tvl.Unknown},
		Unsolved: []UnsolvedItem{{ItemGOid: "gt1"}},
	}
	want := 16 + 16 + (32 + 16) + 2*8 + (16 + 32)
	if got := row.WireSize(); got != want {
		t.Errorf("LocalRow.WireSize = %d, want %d", got, want)
	}

	lr := LocalResult{Rows: []LocalRow{row}, SigVerdicts: []CheckVerdict{{}}}
	if got := lr.WireSize(); got != 64+want+(16+8) {
		t.Errorf("LocalResult.WireSize = %d", got)
	}

	cr := CheckRequest{Items: []CheckItem{{}, {}}}
	if got := cr.WireSize(); got != 64+2*(16+16+32) {
		t.Errorf("CheckRequest.WireSize = %d", got)
	}

	rep := CheckReply{Verdicts: []CheckVerdict{{}}}
	if got := rep.WireSize(); got != 64+16+8 {
		t.Errorf("CheckReply.WireSize = %d", got)
	}
}

func TestAnswerAccessors(t *testing.T) {
	a := Answer{
		Certain: []ResultRow{{GOid: "g1", Targets: []object.Value{object.Int(1)}}},
		Maybe:   []ResultRow{{GOid: "g2"}},
	}
	if !reflect.DeepEqual(a.CertainGOids(), []object.GOid{"g1"}) {
		t.Error("CertainGOids wrong")
	}
	if !reflect.DeepEqual(a.MaybeGOids(), []object.GOid{"g2"}) {
		t.Error("MaybeGOids wrong")
	}
	if a.Certain[0].String() != "g1(1)" {
		t.Errorf("ResultRow.String = %q", a.Certain[0].String())
	}
}

// TestCertifyDisjunctive drives Certify with a two-group query: an entity
// whose first disjunct is refuted but whose second is certified must come
// out certain; one with both groups undecided stays maybe.
func TestCertifyDisjunctive(t *testing.T) {
	fx, _, _, coord := setup(t)
	// (address.city = X and advisor.speciality = Y) or advisor.department.name = Z
	b := query.MustBind(query.MustParse(
		`select name from Student where address.city = "Taipei" and advisor.speciality = "database" `+
			`or advisor.department.name = "CS"`), fx.Global)

	deptPred := query.Predicate{Path: query.Path{"department", "name"},
		Op: query.OpEq, Literal: object.Str("CS")}
	results := []LocalResult{{
		Site: "DB1",
		Rows: []LocalRow{
			// gs2: group 1 fully unknown, group 2's predicate unsolved at
			// item gt3 — a check certifies it: entity certain via group 2.
			{LOid: "s2", GOid: "gs2", Targets: []object.Value{object.Str("Tony")},
				Verdicts: []tvl.Truth{tvl.Unknown, tvl.Unknown, tvl.Unknown},
				Unsolved: []UnsolvedItem{{ItemGOid: "gt3", ItemClass: "Teacher",
					Suffix: deptPred, SourceIdx: 2}},
			},
			// gs3: group 1 has a false predicate, group 2 unknown with a
			// refuting check — everything false: eliminated.
			{LOid: "s3", GOid: "gs3", Targets: []object.Value{object.Str("Mary")},
				Verdicts: []tvl.Truth{tvl.False, tvl.True, tvl.Unknown},
				Unsolved: []UnsolvedItem{{ItemGOid: "gt2", ItemClass: "Teacher",
					Suffix: deptPred, SourceIdx: 2}},
			},
		},
	}}
	replies := []CheckReply{{
		Site: "DB3",
		Verdicts: []CheckVerdict{
			{ItemGOid: "gt3", SourceIdx: 2, SuffixLen: 2, Verdict: tvl.True},
			{ItemGOid: "gt2", SourceIdx: 2, SuffixLen: 2, Verdict: tvl.False},
		},
	}}

	var ans *Answer
	run(t, func(p fabric.Proc) {
		ans = coord.Certify(p, b, results, replies)
	})
	if got := ans.CertainGOids(); !reflect.DeepEqual(got, []object.GOid{"gs2"}) {
		t.Errorf("certain = %v", got)
	}
	if len(ans.Maybe) != 0 {
		t.Errorf("maybe = %v", ans.Maybe)
	}
}

// TestCertifyMultiItemsOrCombination: a predicate whose row carries several
// Multi items follows ANY semantics — one satisfied item certifies, and
// elimination needs every item refuted.
func TestCertifyMultiItemsOrCombination(t *testing.T) {
	fx, b, _, coord := setup(t)
	_ = fx
	spec := query.Predicate{Path: query.Path{"speciality"},
		Op: query.OpEq, Literal: object.Str("database")}
	mkRow := func(goid object.GOid, items ...UnsolvedItem) LocalResult {
		return LocalResult{Site: "DB2", Rows: []LocalRow{{
			LOid: "s1'", GOid: goid, Targets: []object.Value{object.Str("X"), object.Null()},
			Verdicts: []tvl.Truth{tvl.True, tvl.Unknown, tvl.True},
			Unsolved: items,
		}}}
	}
	itemA := UnsolvedItem{ItemGOid: "gtA", ItemClass: "Teacher", Suffix: spec, SourceIdx: 1, Multi: true}
	itemB := UnsolvedItem{ItemGOid: "gtB", ItemClass: "Teacher", Suffix: spec, SourceIdx: 1, Multi: true}

	cases := []struct {
		name     string
		verdicts []CheckVerdict
		certain  int
		maybe    int
	}{
		{"one satisfied", []CheckVerdict{
			{ItemGOid: "gtA", SourceIdx: 1, SuffixLen: 1, Verdict: tvl.False},
			{ItemGOid: "gtB", SourceIdx: 1, SuffixLen: 1, Verdict: tvl.True},
		}, 1, 0},
		{"all refuted", []CheckVerdict{
			{ItemGOid: "gtA", SourceIdx: 1, SuffixLen: 1, Verdict: tvl.False},
			{ItemGOid: "gtB", SourceIdx: 1, SuffixLen: 1, Verdict: tvl.False},
		}, 0, 0},
		{"one refuted one silent", []CheckVerdict{
			{ItemGOid: "gtA", SourceIdx: 1, SuffixLen: 1, Verdict: tvl.False},
		}, 0, 1},
	}
	for _, c := range cases {
		var ans *Answer
		run(t, func(p fabric.Proc) {
			ans = coord.Certify(p, b,
				[]LocalResult{mkRow("gsX", itemA, itemB)},
				[]CheckReply{{Site: "DB3", Verdicts: c.verdicts}})
		})
		if len(ans.Certain) != c.certain || len(ans.Maybe) != c.maybe {
			t.Errorf("%s: certain=%d maybe=%d, want %d/%d",
				c.name, len(ans.Certain), len(ans.Maybe), c.certain, c.maybe)
		}
	}
}

// TestCertifyScalarItemStillEliminates: the paper's original rule is the
// single-item degenerate case — one refuted scalar item eliminates.
func TestCertifyScalarItemStillEliminates(t *testing.T) {
	_, b, _, coord := setup(t)
	spec := query.Predicate{Path: query.Path{"speciality"},
		Op: query.OpEq, Literal: object.Str("database")}
	results := []LocalResult{{Site: "DB2", Rows: []LocalRow{{
		LOid: "s1'", GOid: "gsY", Targets: []object.Value{object.Str("Y"), object.Null()},
		Verdicts: []tvl.Truth{tvl.True, tvl.Unknown, tvl.True},
		Unsolved: []UnsolvedItem{{ItemGOid: "gtC", ItemClass: "Teacher", Suffix: spec, SourceIdx: 1}},
	}}}}
	replies := []CheckReply{{Site: "DB3", Verdicts: []CheckVerdict{
		{ItemGOid: "gtC", SourceIdx: 1, SuffixLen: 1, Verdict: tvl.False},
	}}}
	var ans *Answer
	run(t, func(p fabric.Proc) {
		ans = coord.Certify(p, b, results, replies)
	})
	if len(ans.Certain) != 0 || len(ans.Maybe) != 0 {
		t.Errorf("refuted scalar item survived: %v / %v", ans.Certain, ans.Maybe)
	}
}
