package federation

import (
	"testing"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/tvl"
)

func cacheTable(t *testing.T) *gmap.Table {
	t.Helper()
	tbl := gmap.NewTable("GStudent")
	tbl.MustBind("gs1", "DB1", "s1")
	tbl.MustBind("gs1", "DB2", "s1'")
	tbl.MustBind("gs2", "DB1", "s2")
	return tbl
}

func TestLookupCacheGOidOf(t *testing.T) {
	reg := metrics.New()
	lc := NewLookupCache(reg, "DB1")
	tbl := cacheTable(t)

	g, ok := lc.GOidOf(tbl, "GStudent", "DB1", "s1")
	if !ok || g != "gs1" {
		t.Fatalf("GOidOf = %s,%v", g, ok)
	}
	// Second lookup hits.
	if g, ok = lc.GOidOf(tbl, "GStudent", "DB1", "s1"); !ok || g != "gs1" {
		t.Fatalf("cached GOidOf = %s,%v", g, ok)
	}
	lbl := metrics.Labels{Site: "DB1", Phase: "gmap"}
	snap := reg.Snapshot()
	if hits := snap.CounterValue("cache_hits_total", lbl); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
	if misses := snap.CounterValue("cache_misses_total", lbl); misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
}

// TestLookupCacheNegativeEntry: "not mapped" is cached too — the table is
// not re-consulted for a lookup known to miss.
func TestLookupCacheNegativeEntry(t *testing.T) {
	reg := metrics.New()
	lc := NewLookupCache(reg, "DB1")
	tbl := cacheTable(t)

	for i := 0; i < 2; i++ {
		if _, ok := lc.GOidOf(tbl, "GStudent", "DB1", "nope"); ok {
			t.Fatal("unmapped loid reported mapped")
		}
	}
	lbl := metrics.Labels{Site: "DB1", Phase: "gmap"}
	if hits := reg.Snapshot().CounterValue("cache_hits_total", lbl); hits != 1 {
		t.Errorf("negative entry hits = %d, want 1", hits)
	}
}

func TestLookupCacheLocations(t *testing.T) {
	lc := NewLookupCache(nil, "DB1")
	tbl := cacheTable(t)

	locs := lc.Locations(tbl, "GStudent", "gs1")
	if len(locs) != 2 {
		t.Fatalf("locations = %v", locs)
	}
	if got := lc.Locations(tbl, "GStudent", "gs1"); len(got) != 2 {
		t.Fatalf("cached locations = %v", got)
	}
	if lc.Len() == 0 {
		t.Error("Len = 0 after fills")
	}
}

func TestLookupCacheVerdicts(t *testing.T) {
	lc := NewLookupCache(nil, "DB1")
	if _, ok := lc.Verdict("GStudent", "t1", "speciality = database"); ok {
		t.Fatal("verdict hit on empty cache")
	}
	lc.PutVerdict("GStudent", "t1", "speciality = database", tvl.True)
	v, ok := lc.Verdict("GStudent", "t1", "speciality = database")
	if !ok || v != tvl.True {
		t.Fatalf("verdict = %v,%v", v, ok)
	}
	// A different suffix is a different entry.
	if _, ok := lc.Verdict("GStudent", "t1", "address = austin"); ok {
		t.Fatal("wrong-suffix verdict hit")
	}
}

func TestLookupCacheInvalidateClass(t *testing.T) {
	reg := metrics.New()
	lc := NewLookupCache(reg, "DB1")
	tbl := cacheTable(t)

	lc.GOidOf(tbl, "GStudent", "DB1", "s1")
	lc.Locations(tbl, "GStudent", "gs1")
	lc.PutVerdict("GStudent", "t1", "x = 1", tvl.False)
	lc.PutVerdict("GTeacher", "t2", "y = 2", tvl.True)
	if lc.Len() != 4 {
		t.Fatalf("Len = %d, want 4", lc.Len())
	}

	lc.InvalidateClass("GStudent")
	if lc.Len() != 1 {
		t.Errorf("Len after invalidate = %d, want 1 (other classes kept)", lc.Len())
	}
	if _, ok := lc.Verdict("GTeacher", "t2", "y = 2"); !ok {
		t.Error("other class's verdict evicted")
	}
	if _, ok := lc.Verdict("GStudent", "t1", "x = 1"); ok {
		t.Error("invalidated verdict still served")
	}
	snap := reg.Snapshot()
	if inv := snap.CounterValue("cache_invalidations_total", metrics.Labels{Site: "DB1"}); inv != 1 {
		t.Errorf("invalidations = %d, want 1", inv)
	}
	if ev := snap.CounterValue("cache_evicted_total", metrics.Labels{Site: "DB1"}); ev != 3 {
		t.Errorf("evicted = %d, want 3", ev)
	}
}

// TestLookupCacheNil: every method must be a safe pass-through on a nil
// receiver — sites without -cache run exactly this path.
func TestLookupCacheNil(t *testing.T) {
	var lc *LookupCache
	tbl := cacheTable(t)

	if g, ok := lc.GOidOf(tbl, "GStudent", "DB1", "s1"); !ok || g != "gs1" {
		t.Errorf("nil GOidOf = %s,%v", g, ok)
	}
	if locs := lc.Locations(tbl, "GStudent", "gs1"); len(locs) != 2 {
		t.Errorf("nil Locations = %v", locs)
	}
	if _, ok := lc.Verdict("GStudent", "t1", "x"); ok {
		t.Error("nil Verdict reported a hit")
	}
	lc.PutVerdict("GStudent", "t1", "x", tvl.True) // must not panic
	lc.InvalidateClass("GStudent")                 // must not panic
	if lc.Len() != 0 {
		t.Error("nil Len != 0")
	}
}
