// Package federation implements the distributed machinery of the paper's
// system: component-database sites that evaluate local queries and check
// assistant objects, and the global processing site (coordinator) that
// integrates constituent classes by outerjoin over GOids, merges local
// results from isomeric objects, and applies the certification rule to turn
// local maybe results into certain results or eliminate them.
//
// All operations charge their disk, CPU and network costs through package
// fabric, so the same code runs both for real and inside the discrete-event
// simulation.
package federation

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/tvl"
)

// requestOverhead is the modeled byte size of a small control message (a
// local query, a retrieve request).
const requestOverhead = 64

// predicateWireSize is the modeled byte size of one predicate shipped in a
// message.
const predicateWireSize = object.AttrWireSize

// verdictWireSize is the modeled byte size of one three-valued verdict plus
// its predicate index.
const verdictWireSize = 8

// QueryWireSize models the transfer size of a query or local-query message:
// a fixed envelope plus the predicates and the target list.
func QueryWireSize(b *query.Bound) int {
	return requestOverhead + predicateWireSize*len(b.Preds) + object.AttrWireSize*len(b.Targets)
}

// ResultRow is one entity in a query answer: its GOid and the merged target
// values. Complex target values are global references.
type ResultRow struct {
	GOid    object.GOid
	Targets []object.Value
	// Unknown lists the indexes of the query predicates whose truth could
	// not be established for this entity — the reason a maybe result is
	// maybe. Empty for certain results. The centralized and localized
	// strategies report identical sets (tested).
	Unknown []int
}

// String renders the row for examples and diagnostics.
func (r ResultRow) String() string {
	parts := make([]string, len(r.Targets))
	for i, v := range r.Targets {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s(%s)", r.GOid, strings.Join(parts, ", "))
}

// SiteFailure records one component site that could not contribute to an
// answer, and why. An unreachable site is a coarser missingness mechanism
// than a null attribute: everything it would have contributed becomes
// unknown, so dependent results are maybe results with the failure as the
// recorded reason.
type SiteFailure struct {
	Site   object.SiteID
	Reason string
}

// String renders the failure for logs and diagnostics.
func (f SiteFailure) String() string {
	return fmt.Sprintf("%s: %s", f.Site, f.Reason)
}

// DivergenceFailure records a replica whose mapping tables for the given
// classes are suspect (its digests disagreed with a quorum of peers at the
// last anti-entropy round). The site is up and answering — but its GOid
// mappings for those classes may be stale, so everything resting on them
// is maybe: the same missingness mechanism as an unreachable site, scoped
// to classes instead of a whole site.
func DivergenceFailure(site object.SiteID, classes []string) SiteFailure {
	return SiteFailure{
		Site:   site,
		Reason: fmt.Sprintf("mapping divergence: suspect classes %s", strings.Join(classes, ",")),
	}
}

// Answer is the result of a global query: the certain results and, because
// of missing data, the maybe results. Rows are sorted by GOid.
type Answer struct {
	Certain []ResultRow
	Maybe   []ResultRow
	// Degraded marks a partial answer: one or more component sites were
	// unavailable, so results depending on their data are reported as
	// maybe (or missing, for entities stored only there) instead of the
	// query failing. The paper's maybe semantics extend to site failure:
	// what cannot be read cannot certify or eliminate.
	Degraded bool
	// Unavailable lists the sites that could not contribute, with reasons,
	// sorted by site. Empty unless Degraded.
	Unavailable []SiteFailure
	// Outcome records how the execution ended: OutcomeOK for a run that
	// completed, OutcomeCanceled when the caller cancelled it mid-flight,
	// OutcomeDeadline when its deadline expired. An interrupted query still
	// returns a sound partial answer — whatever certified before the cut
	// stays certain, everything pending stays maybe — exactly the degraded
	// semantics with the interruption as one more missingness mechanism.
	Outcome string
	// Stats summarizes how the answer came to be (observability; not part
	// of the paper's answer model).
	Stats AnswerStats
}

// Answer outcomes.
const (
	OutcomeOK       = ""         // run to completion
	OutcomeCanceled = "canceled" // caller cancelled mid-flight
	OutcomeDeadline = "deadline" // per-query deadline expired
)

// Interrupted reports whether the execution was cut short (cancelled or
// over deadline) rather than run to completion.
func (a *Answer) Interrupted() bool { return a.Outcome != OutcomeOK }

// MarkDegraded records the given site failures on the answer, deduplicating
// by site (first reason wins) and keeping the list sorted. A no-op for an
// empty list.
func (a *Answer) MarkDegraded(failures []SiteFailure) {
	for _, f := range failures {
		dup := false
		for _, have := range a.Unavailable {
			if have.Site == f.Site {
				dup = true
				break
			}
		}
		if !dup {
			a.Unavailable = append(a.Unavailable, f)
		}
	}
	if len(a.Unavailable) > 0 {
		a.Degraded = true
		sort.Slice(a.Unavailable, func(i, j int) bool {
			return a.Unavailable[i].Site < a.Unavailable[j].Site
		})
	}
}

// AddMaybe appends maybe rows to the answer, keeping the maybe list sorted
// by GOid (used when degraded rows are synthesized after certification).
func (a *Answer) AddMaybe(rows ...ResultRow) {
	if len(rows) == 0 {
		return
	}
	a.Maybe = append(a.Maybe, rows...)
	sortRows(a.Maybe)
}

// AnswerStats is the certification breakdown of one query execution.
type AnswerStats struct {
	// LocalRows is the number of local result rows the coordinator
	// integrated (0 under the centralized approach, which integrates
	// objects, not rows).
	LocalRows int
	// Certified counts entities whose local evidence alone was inconclusive
	// but whom check verdicts certified into certain results.
	Certified int
	// Eliminated counts entities ruled out during integration: a root
	// object filtered by its own site's predicates, a violated check
	// verdict, or a false predicate fold.
	Eliminated int
	// CheckVerdicts is the number of assistant-check verdicts integrated
	// (remote replies plus local signature verdicts).
	CheckVerdicts int
}

// CertainGOids returns the certain entities' GOids.
func (a *Answer) CertainGOids() []object.GOid { return goids(a.Certain) }

// MaybeGOids returns the maybe entities' GOids.
func (a *Answer) MaybeGOids() []object.GOid { return goids(a.Maybe) }

func goids(rows []ResultRow) []object.GOid {
	out := make([]object.GOid, len(rows))
	for i, r := range rows {
		out[i] = r.GOid
	}
	return out
}

func sortRows(rows []ResultRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].GOid < rows[j].GOid })
}

// UnsolvedItem is an unsolved predicate of a local result row, attached to
// the global identity of the object lacking the data (the row's own entity
// or a nested item).
type UnsolvedItem struct {
	// ItemGOid identifies the unsolved item globally; check verdicts are
	// matched against it during certification.
	ItemGOid object.GOid
	// ItemClass is the item's global class.
	ItemClass string
	// SelfItem marks that the item is the row's root object itself; its
	// assistants are covered by the other sites' local queries, so no
	// explicit check requests are sent for it.
	SelfItem bool
	// Suffix is the unsolved predicate rooted at ItemClass.
	Suffix query.Predicate
	// SourceIdx is the index of the originating global predicate.
	SourceIdx int
	// Multi marks items reached through multi-valued attributes (ANY
	// semantics: one violating assistant does not falsify the predicate).
	Multi bool
}

// LocalRow is one local result of a local query: a root object that
// satisfied the site's local predicates certainly (no Unsolved entries) or
// possibly (with Unsolved entries).
type LocalRow struct {
	LOid object.LOid
	GOid object.GOid
	// Targets holds the locally evaluated target values aligned with the
	// query's target list; unavailable values are null, complex values are
	// global references.
	Targets []object.Value
	// Verdicts holds the site's per-predicate truth values aligned with
	// the bound query's predicates. Rows never carry False (such objects
	// are eliminated locally and not returned).
	Verdicts []tvl.Truth
	// Unsolved lists the unsolved predicates with their items.
	Unsolved []UnsolvedItem
}

// WireSize models the row's transfer size: the OIDs, the projected target
// values, one verdict per predicate, and each unsolved item's identity and
// predicate.
func (r LocalRow) WireSize() int {
	n := object.LOidWireSize + object.GOidWireSize
	for _, v := range r.Targets {
		n += v.WireSize()
	}
	n += verdictWireSize * len(r.Verdicts)
	for range r.Unsolved {
		n += object.GOidWireSize + predicateWireSize
	}
	return n
}

// LocalResult is a site's reply to a local query.
type LocalResult struct {
	Site object.SiteID
	Rows []LocalRow
	// SigVerdicts are check verdicts synthesized from signature probes at
	// this site (the signature-assisted variants); they travel with the
	// local result instead of through check requests.
	SigVerdicts []CheckVerdict
}

// WireSize models the reply's transfer size.
func (lr LocalResult) WireSize() int {
	n := requestOverhead
	for _, r := range lr.Rows {
		n += r.WireSize()
	}
	n += (object.GOidWireSize + verdictWireSize) * len(lr.SigVerdicts)
	return n
}

// CheckItem asks a site to evaluate an unsolved predicate on one assistant
// object it stores.
type CheckItem struct {
	// Assistant is the assistant object's LOid at the receiving site.
	Assistant object.LOid
	// ItemGOid is the global identity of the unsolved item being certified
	// (the assistant is one of its isomeric objects).
	ItemGOid object.GOid
	// ItemClass is the item's global class.
	ItemClass string
	// Suffix is the unsolved predicate rooted at ItemClass.
	Suffix query.Predicate
	// SourceIdx is the index of the originating global predicate.
	SourceIdx int
}

// checkItemWireSize models one check item's transfer size: assistant LOid,
// item GOid, and the predicate.
const checkItemWireSize = object.LOidWireSize + object.GOidWireSize + predicateWireSize

// CheckRequest is the batch of check items one site sends to another.
type CheckRequest struct {
	From  object.SiteID
	Items []CheckItem
}

// WireSize models the request's transfer size.
func (cr CheckRequest) WireSize() int {
	return requestOverhead + checkItemWireSize*len(cr.Items)
}

// CheckVerdict is the outcome of evaluating an unsolved predicate on one
// assistant object: True (the assistant satisfies it), False (the assistant
// violates it) or Unknown (the assistant also lacks the data).
//
// SuffixLen distinguishes unsolved points of the same predicate that stop
// at the same item through different path depths (possible in cyclic
// composition hierarchies), which evaluate different suffix predicates.
type CheckVerdict struct {
	ItemGOid  object.GOid
	SourceIdx int
	SuffixLen int
	Verdict   tvl.Truth
}

// CheckReply is a site's reply to a CheckRequest, routed to the global
// processing site for certification.
type CheckReply struct {
	Site     object.SiteID
	Verdicts []CheckVerdict
}

// WireSize models the reply's transfer size.
func (cr CheckReply) WireSize() int {
	return requestOverhead + (object.GOidWireSize+verdictWireSize)*len(cr.Verdicts)
}

// ClassObjects is one global class's projected constituent objects shipped
// by a site to the global processing site (the centralized approach).
type ClassObjects struct {
	GlobalClass string
	// Attrs is the projection the objects were restricted to.
	Attrs []string
	// Objects are the projected constituent objects.
	Objects []*object.Object
}

// RetrieveReply is a site's reply to the centralized approach's retrieve
// request.
type RetrieveReply struct {
	Site    object.SiteID
	Classes []ClassObjects
}

// WireSize models the reply's transfer size: each object ships its LOid and
// its projected attributes.
func (rr RetrieveReply) WireSize() int {
	n := requestOverhead
	for _, c := range rr.Classes {
		for _, o := range c.Objects {
			n += o.WireSize(nil) // objects are already projected
		}
	}
	return n
}
