package federation

import (
	"sort"

	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/eval"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/tvl"
)

// Coordinator is the global processing site: it materializes global classes
// for the centralized approach and certifies local results for the
// localized approaches.
type Coordinator struct {
	id     object.SiteID
	global *schema.Global
	tables *gmap.Tables
}

// NewCoordinator returns a coordinator with its replica of the GOid mapping
// tables.
func NewCoordinator(id object.SiteID, global *schema.Global, tables *gmap.Tables) *Coordinator {
	return &Coordinator{id: id, global: global, tables: tables}
}

// ID returns the global processing site's identifier.
func (co *Coordinator) ID() object.SiteID { return co.id }

func (co *Coordinator) charge(p fabric.Proc, c *cost.Counter) {
	sink := p.Sink(co.id)
	if b := c.DiskBytes(); b > 0 {
		sink.DiskRead(int(b))
	}
	if o := c.CPUOps(); o > 0 {
		sink.CPU(int(o))
	}
	c.Reset()
}

// View is the materialized global view built by the centralized approach:
// integrated objects keyed by their GOid (stored in the LOid slot, so the
// shared path-navigation evaluator works unchanged), with complex attribute
// values rewritten to global references.
type View struct {
	objects map[object.LOid]*object.Object
	roots   []*object.Object
}

var _ eval.Source = (*View)(nil)

// Fetch implements eval.Source over the materialized objects: the view is
// in memory at the global site, so an access costs one CPU operation.
func (v *View) Fetch(id object.LOid, sink cost.Sink) (*object.Object, bool) {
	o, ok := v.objects[id]
	if ok {
		sink.CPU(1)
	}
	return o, ok
}

// Deref resolves a materialized object without charging (diagnostics).
func (v *View) Deref(id object.LOid) (*object.Object, bool) {
	o, ok := v.objects[id]
	return o, ok
}

// Roots returns the materialized range-class objects sorted by GOid.
func (v *View) Roots() []*object.Object { return v.roots }

// Has reports whether the entity was materialized into the view (used as
// the presence test when synthesizing degraded rows under site failure).
func (v *View) Has(g object.GOid) bool {
	_, ok := v.objects[object.LOid(g)]
	return ok
}

// Len returns the number of materialized objects.
func (v *View) Len() int { return len(v.objects) }

// Materialize implements step CA_G2: integrate the constituent objects of
// each involved global class by outerjoin over their GOids. Missing
// attribute values are filled from isomeric objects (replies are merged in
// site order; isomeric objects are assumed consistent, so the first
// non-null value wins), and LOid-valued complex attributes are transformed
// to GOids.
func (co *Coordinator) Materialize(p fabric.Proc, b *query.Bound, replies []RetrieveReply) *View {
	var c cost.Counter
	v := &View{objects: make(map[object.LOid]*object.Object)}

	sorted := append([]RetrieveReply(nil), replies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Site < sorted[j].Site })

	for _, reply := range sorted {
		for _, cls := range reply.Classes {
			gc := co.global.Class(cls.GlobalClass)
			table := co.tables.Table(cls.GlobalClass)
			for _, o := range cls.Objects {
				c.CPU(1) // GOid lookup: the outerjoin's join-attribute probe
				goid, ok := table.GOidOf(reply.Site, o.LOid)
				if !ok {
					goid = object.GOid("!" + string(reply.Site) + ":" + string(o.LOid))
				}
				key := object.LOid(goid)
				m := v.objects[key]
				if m == nil {
					m = object.New(key, cls.GlobalClass, nil)
					v.objects[key] = m
				}
				co.mergeInto(m, gc, reply.Site, o, &c)
			}
		}
	}

	// Collect the materialized range-class objects, sorted by GOid.
	for _, o := range v.objects {
		if o.Class == b.Query.Range {
			v.roots = append(v.roots, o)
		}
	}
	sort.Slice(v.roots, func(i, j int) bool { return v.roots[i].LOid < v.roots[j].LOid })

	co.charge(p, &c)
	return v
}

// mergeInto merges one constituent object into a materialized object,
// translating local references to global ones.
func (co *Coordinator) mergeInto(m *object.Object, gc *schema.GlobalClass,
	site object.SiteID, o *object.Object, c *cost.Counter) {
	for _, name := range o.AttrNames() {
		val := o.Attrs[name]
		c.CPU(1) // merge step
		if !m.Attr(name).IsNull() {
			continue // first non-null value wins
		}
		switch val.Kind() {
		case object.KindRef:
			a, ok := gc.Attr(name)
			if !ok {
				continue
			}
			c.CPU(1) // reference translation lookup
			g, ok := co.tables.Table(a.Domain).GOidOf(site, val.RefLOid())
			if !ok {
				continue
			}
			val = object.Ref(object.LOid(g))
		case object.KindList:
			// Multi-valued complex attributes: translate every element.
			a, ok := gc.Attr(name)
			if ok && a.IsComplex() {
				elems := make([]object.Value, 0, len(val.Elems()))
				for _, e := range val.Elems() {
					c.CPU(1)
					if g, ok := co.tables.Table(a.Domain).GOidOf(site, e.RefLOid()); ok {
						elems = append(elems, object.Ref(object.LOid(g)))
					}
				}
				val = object.List(elems...)
			}
		}
		m.Set(name, val)
	}
}

// EvaluateView implements step CA_G3: evaluate the query predicates on the
// materialized global classes. In-memory navigation costs CPU rather than
// disk (the view was just built at the global site).
func (co *Coordinator) EvaluateView(p fabric.Proc, b *query.Bound, v *View) *Answer {
	var c cost.Counter
	ans := &Answer{}

	conjunctive := b.Conjunctive()
	for _, root := range v.roots {
		verdicts := make([]tvl.Truth, len(b.Preds))
		for i := range b.Preds {
			pv, _ := eval.EvalPredicate(v, b.Preds[i], root, i, &c)
			verdicts[i] = pv
			// Conjunctive queries short-circuit on the first false
			// predicate; disjunctive ones need every verdict.
			if conjunctive && pv == tvl.False {
				break
			}
		}
		verdict := b.Fold(verdicts)
		if verdict == tvl.False {
			ans.Stats.Eliminated++
			continue
		}
		row := ResultRow{GOid: object.GOid(root.LOid)}
		if verdict == tvl.Unknown {
			row.Unknown = unknownIdx(verdicts)
		}
		row.Targets = make([]object.Value, len(b.Targets))
		for i, tp := range b.Targets {
			tv := eval.EvalTarget(v, tp, root, &c)
			switch tv.Kind() {
			case object.KindRef:
				tv = object.GRef(object.GOid(tv.RefLOid()))
			case object.KindList:
				if tp.Attr.IsComplex() {
					elems := make([]object.Value, 0, len(tv.Elems()))
					for _, e := range tv.Elems() {
						elems = append(elems, object.GRef(object.GOid(e.RefLOid())))
					}
					tv = object.List(elems...)
				}
			}
			row.Targets[i] = tv
		}
		if verdict == tvl.True {
			ans.Certain = append(ans.Certain, row)
		} else {
			ans.Maybe = append(ans.Maybe, row)
		}
	}
	sortRows(ans.Certain)
	sortRows(ans.Maybe)
	co.charge(p, &c)
	return ans
}

// Certify implements step BL_G2 / PL_G2 (phase I): group the local rows of
// isomeric root objects by GOid, combine their per-predicate verdicts,
// apply the assistant-check verdicts under the certification rule, and
// classify every entity as a certain result, a maybe result, or eliminated.
//
// Elimination evidence is threefold: a root object of the entity was
// filtered out by its own site's local predicates (the entity appears in
// the mapping tables at a queried root site that returned no row for it), a
// check verdict reports an assistant violating an unsolved predicate, or —
// defensively, with inconsistent isomeric data — a row carries a false
// verdict.
func (co *Coordinator) Certify(p fabric.Proc, b *query.Bound, results []LocalResult, replies []CheckReply) *Answer {
	return co.CertifyDegraded(p, b, results, replies, nil)
}

// CertifyDegraded is Certify under partial site availability: the sites in
// dead never answered their local queries, so site failure is folded into
// the paper's maybe semantics instead of failing the query.
//
// Two rules change relative to Certify. First, an entity's absence from a
// dead queried root site is not elimination evidence — only a live site can
// eliminate by silence, because silence from a dead site says nothing about
// its local predicates. Second, range entities whose every queried root
// copy lives at a dead site are returned as all-unknown maybe rows: the
// entity may satisfy the query, and nothing can be read to decide.
// Check verdicts that never arrived (a dead assistant site) need no special
// handling — the unsolved predicates simply stay unknown and the dependent
// results stay maybe.
func (co *Coordinator) CertifyDegraded(p fabric.Proc, b *query.Bound, results []LocalResult,
	replies []CheckReply, dead map[object.SiteID]bool) *Answer {
	var c cost.Counter

	// Index check verdicts: any violation dominates, then satisfaction.
	type vkey struct {
		item      object.GOid
		idx       int
		suffixLen int
	}
	ans := &Answer{}
	checkEvidence := make(map[vkey]tvl.Truth)
	record := func(cv CheckVerdict) {
		c.CPU(1)
		ans.Stats.CheckVerdicts++
		k := vkey{item: cv.ItemGOid, idx: cv.SourceIdx, suffixLen: cv.SuffixLen}
		prev, seen := checkEvidence[k]
		switch {
		case cv.Verdict == tvl.False || prev == tvl.False:
			checkEvidence[k] = tvl.False
		case cv.Verdict == tvl.True || (seen && prev == tvl.True):
			checkEvidence[k] = tvl.True
		default:
			checkEvidence[k] = tvl.Unknown
		}
	}
	for _, reply := range replies {
		for _, cv := range reply.Verdicts {
			record(cv)
		}
	}
	for _, res := range results {
		for _, cv := range res.SigVerdicts {
			record(cv)
		}
	}

	// Group rows by entity and by site.
	sorted := append([]LocalResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Site < sorted[j].Site })
	type entity struct {
		rows  []LocalRow
		sites map[object.SiteID]bool
	}
	entities := make(map[object.GOid]*entity)
	var order []object.GOid
	for _, res := range sorted {
		ans.Stats.LocalRows += len(res.Rows)
		for _, row := range res.Rows {
			c.CPU(1)
			e := entities[row.GOid]
			if e == nil {
				e = &entity{sites: make(map[object.SiteID]bool)}
				entities[row.GOid] = e
				order = append(order, row.GOid)
			}
			e.rows = append(e.rows, row)
			e.sites[res.Site] = true
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	rootSites := make(map[object.SiteID]bool)
	for _, s := range b.RootSites() {
		rootSites[s] = true
	}
	rootTable := co.tables.Table(b.Query.Range)

	for _, goid := range order {
		e := entities[goid]

		// A queried isomeric root object that returned no row was
		// eliminated by its site's local predicates: the entity violates
		// some predicate definitively.
		eliminated := false
		for _, loc := range rootTable.Locations(goid) {
			c.CPU(1)
			if rootSites[loc.Site] && !dead[loc.Site] && !e.sites[loc.Site] {
				eliminated = true
				break
			}
		}
		if eliminated {
			ans.Stats.Eliminated++
			continue
		}

		// Combine per-predicate evidence across the entity's rows. A
		// definitive verdict (true or false) beats unknown; with
		// consistent isomeric data true and false never conflict, and a
		// violation dominates defensively if they do.
		evidence := make([]tvl.Truth, len(b.Preds))
		for i := range evidence {
			evidence[i] = tvl.Unknown
		}
		for _, row := range e.rows {
			for i, v := range row.Verdicts {
				c.CPU(1)
				switch v {
				case tvl.True:
					if evidence[i] != tvl.False {
						evidence[i] = tvl.True
					}
				case tvl.False:
					evidence[i] = tvl.False
				}
			}
		}

		// The fold of the local evidence alone, before check verdicts are
		// applied — a later upgrade to a certain result means the entity was
		// certified by assistant checks (Stats.Certified).
		localFold := b.Fold(evidence)

		// Apply the certification rule through the check verdicts of the
		// rows' unsolved items. A predicate's items within one row combine
		// under ANY semantics when they came through a multi-valued
		// attribute: some satisfied item proves the predicate, and only
		// all items violating disproves it. A scalar path has exactly one
		// item per predicate, for which the rule degenerates to the
		// paper's: satisfied solves, violated eliminates.
		for _, row := range e.rows {
			byPred := make(map[int][]UnsolvedItem)
			for _, u := range row.Unsolved {
				byPred[u.SourceIdx] = append(byPred[u.SourceIdx], u)
			}
			for idx, items := range byPred {
				anyTrue := false
				allFalse := true
				for _, u := range items {
					c.CPU(1)
					cv, ok := checkEvidence[vkey{item: u.ItemGOid, idx: u.SourceIdx, suffixLen: len(u.Suffix.Path)}]
					if !ok {
						allFalse = false
						continue
					}
					switch cv {
					case tvl.True:
						anyTrue = true
						allFalse = false
					case tvl.Unknown:
						allFalse = false
					}
				}
				switch {
				case anyTrue:
					if evidence[idx] != tvl.False {
						evidence[idx] = tvl.True
					}
				case allFalse:
					evidence[idx] = tvl.False
				}
			}
		}

		// Classify under the query's (possibly disjunctive) form.
		switch b.Fold(evidence) {
		case tvl.False:
			ans.Stats.Eliminated++
			continue
		case tvl.True:
			if localFold != tvl.True {
				ans.Stats.Certified++
			}
			ans.Certain = append(ans.Certain, ResultRow{
				GOid: goid, Targets: mergeTargets(e.rows, len(b.Targets), &c)})
		default:
			ans.Maybe = append(ans.Maybe, ResultRow{
				GOid:    goid,
				Targets: mergeTargets(e.rows, len(b.Targets), &c),
				Unknown: unknownIdx(evidence),
			})
		}
	}

	// Entities silenced entirely by dead sites come back as all-unknown
	// maybe rows rather than disappearing.
	if len(dead) > 0 {
		present := func(g object.GOid) bool { _, ok := entities[g]; return ok }
		rows := co.degradedRootRows(b, dead, present, &c)
		ans.Maybe = append(ans.Maybe, rows...)
	}

	sortRows(ans.Certain)
	sortRows(ans.Maybe)
	co.charge(p, &c)
	return ans
}

// DegradedRootRows synthesizes all-unknown maybe rows for range entities
// whose every queried root copy lives at an unavailable site. present
// reports whether the entity already contributed evidence (a materialized
// view object under CA, a local row under the localized strategies); an
// entity with a copy at a live queried site is skipped — if the live site
// stayed silent about it, that silence is elimination evidence.
func (co *Coordinator) DegradedRootRows(p fabric.Proc, b *query.Bound,
	dead map[object.SiteID]bool, present func(object.GOid) bool) []ResultRow {
	var c cost.Counter
	rows := co.degradedRootRows(b, dead, present, &c)
	co.charge(p, &c)
	return rows
}

func (co *Coordinator) degradedRootRows(b *query.Bound, dead map[object.SiteID]bool,
	present func(object.GOid) bool, c *cost.Counter) []ResultRow {
	if len(dead) == 0 {
		return nil
	}
	queried := make(map[object.SiteID]bool)
	for _, s := range b.RootSites() {
		queried[s] = true
	}
	rootTable := co.tables.Table(b.Query.Range)
	var out []ResultRow
	for _, goid := range rootTable.GOids() {
		c.CPU(1)
		if present(goid) {
			continue
		}
		liveRoot, deadRoot := false, false
		for _, loc := range rootTable.Locations(goid) {
			if !queried[loc.Site] {
				continue
			}
			if dead[loc.Site] {
				deadRoot = true
			} else {
				liveRoot = true
			}
		}
		if liveRoot || !deadRoot {
			continue
		}
		targets := make([]object.Value, len(b.Targets))
		for i := range targets {
			targets[i] = object.Null()
		}
		unknown := make([]int, len(b.Preds))
		for i := range unknown {
			unknown[i] = i
		}
		out = append(out, ResultRow{GOid: goid, Targets: targets, Unknown: unknown})
	}
	return out
}

// unknownIdx lists the predicate indexes whose truth value is unknown (or
// was never established).
func unknownIdx(verdicts []tvl.Truth) []int {
	var out []int
	for i, v := range verdicts {
		if v == tvl.Unknown || v == 0 {
			out = append(out, i)
		}
	}
	return out
}

// mergeTargets combines target values across the isomeric rows: the first
// non-null value in site order wins.
func mergeTargets(rows []LocalRow, n int, c *cost.Counter) []object.Value {
	out := make([]object.Value, n)
	for i := range out {
		out[i] = object.Null()
		for _, row := range rows {
			c.CPU(1)
			if i < len(row.Targets) && !row.Targets[i].IsNull() {
				out[i] = row.Targets[i]
				break
			}
		}
	}
	return out
}
