package federation

import (
	"fmt"
	"sort"

	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/eval"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/tvl"
)

// Site is one component database participating in the federation: its local
// object store, the integrated global schema (every site knows it), and a
// replica of the GOid mapping tables.
type Site struct {
	db         *store.Database
	global     *schema.Global
	tables     *gmap.Tables
	useIndexes bool
	cache      *LookupCache
}

// NewSite wraps a component database for federation duty. tables is the
// site's replica of the GOid mapping tables (it is used as-is; clone before
// passing if the caller mutates it later).
func NewSite(db *store.Database, global *schema.Global, tables *gmap.Tables) *Site {
	return &Site{db: db, global: global, tables: tables}
}

// EnableIndexes lets the basic localized flow probe the database's
// secondary indexes to select candidate objects instead of scanning the
// whole extent (conjunctive queries with a direct indexed predicate only).
// The rows produced are identical; only the disk cost drops.
func (s *Site) EnableIndexes() { s.useIndexes = true }

// WithCache installs a read-through lookup cache for the site's GOid
// mapping resolutions and checked assistant verdicts. Call before serving;
// the caller owns invalidation (see LookupCache.InvalidateClass).
func (s *Site) WithCache(c *LookupCache) *Site {
	s.cache = c
	return s
}

// Cache returns the installed lookup cache, or nil.
func (s *Site) Cache() *LookupCache { return s.cache }

// ID returns the site identifier.
func (s *Site) ID() object.SiteID { return s.db.Site() }

// DB returns the underlying component database.
func (s *Site) DB() *store.Database { return s.db }

// charge flushes accumulated cost events to the runtime, attributed to this
// site, then resets the counter. Costs are batched per processing step so
// the discrete-event runtime schedules one resource occupation per step.
func (s *Site) charge(p fabric.Proc, c *cost.Counter) {
	sink := p.Sink(s.ID())
	if b := c.DiskBytes(); b > 0 {
		sink.DiskRead(int(b))
	}
	if o := c.CPUOps(); o > 0 {
		sink.CPU(int(o))
	}
	c.Reset()
}

// goidOf resolves a stored object's GOid from the mapping-table replica,
// charging one lookup. Objects missing from the tables get a synthetic
// singleton GOid so they still carry a global identity.
func (s *Site) goidOf(class string, loid object.LOid, c *cost.Counter) object.GOid {
	c.CPU(1)
	if g, ok := s.cache.GOidOf(s.tables.Table(class), class, s.ID(), loid); ok {
		return g
	}
	return object.GOid(fmt.Sprintf("!%s:%s:%s", class, s.ID(), loid))
}

// Retrieve implements step CA_C1: read all objects of the local root and
// branch classes of the query and return them projected on their LOids and
// the attributes involved in the query.
func (s *Site) Retrieve(p fabric.Proc, b *query.Bound) RetrieveReply {
	var c cost.Counter
	involved := b.InvolvedAttrs()
	reply := RetrieveReply{Site: s.ID()}

	// Deterministic class order.
	classes := make([]string, 0, len(involved))
	for class := range involved {
		classes = append(classes, class)
	}
	sort.Strings(classes)

	for _, class := range classes {
		gc := s.global.Class(class)
		localName, ok := gc.Constituents[s.ID()]
		if !ok {
			continue
		}
		ext := s.db.Extent(localName)
		co := ClassObjects{GlobalClass: class, Attrs: involved[class]}
		ext.Scan(func(o *object.Object) bool {
			c.DiskRead(o.WireSize(nil)) // the disk reads the full object
			c.CPU(1)                    // scan step
			co.Objects = append(co.Objects, o.Project(involved[class]))
			return true
		})
		reply.Classes = append(reply.Classes, co)
	}
	s.charge(p, &c)
	return reply
}

// collector accumulates deduplicated check items grouped by target site,
// plus the check verdicts synthesized locally from signature probes.
type collector struct {
	bySite map[object.SiteID][]CheckItem
	seen   map[checkKey]bool
	synth  []CheckVerdict
}

type checkKey struct {
	site      object.SiteID
	assistant object.LOid
	item      object.GOid
	sourceIdx int
	suffixLen int
}

func newCollector() *collector {
	return &collector{
		bySite: make(map[object.SiteID][]CheckItem),
		seen:   make(map[checkKey]bool),
	}
}

func (cl *collector) add(site object.SiteID, item CheckItem) {
	k := checkKey{
		site:      site,
		assistant: item.Assistant,
		item:      item.ItemGOid,
		sourceIdx: item.SourceIdx,
		suffixLen: len(item.Suffix.Path),
	}
	if cl.seen[k] {
		return
	}
	cl.seen[k] = true
	cl.bySite[site] = append(cl.bySite[site], item)
}

// rootExtent returns the extent of the range class's constituent at this
// site.
func (s *Site) rootExtent(b *query.Bound) *store.Extent {
	gc := s.global.Class(b.Query.Range)
	return s.db.Extent(gc.Constituents[s.ID()])
}

// EvalLocalBasic runs steps BL_C1 + BL_C2 of the basic localized approach
// (phase P, then phase O): scan the local root class, evaluate the local
// predicates first (short-circuiting on the first false one), and only for
// the surviving results locate the unsolved items and their assistant
// objects. It returns the local rows plus the check items grouped by
// target site.
// sigs, when non-nil, enables the signature-assisted variant (the paper's
// Section 5 extension): assistants provably violating a single-step
// equality predicate are turned into local false verdicts instead of
// network checks.
func (s *Site) EvalLocalBasic(p fabric.Proc, b *query.Bound, sigs *signature.Index) (LocalResult, map[object.SiteID][]CheckItem) {
	localIdx, removedIdx := eval.SplitPredIdx(b, s.ID())
	res := LocalResult{Site: s.ID()}
	checks := newCollector()
	ext := s.rootExtent(b)
	src := eval.NewCached(eval.DiskSource{DB: s.db})
	var c cost.Counter

	// BL_C1 (phase P): evaluate the local predicates, short-circuiting on
	// the first false predicate.
	type survivor struct {
		obj      *object.Object
		verdicts []tvl.Truth
		unsolved []eval.Unsolved
	}
	conjunctive := b.Conjunctive()
	iterate := ext.Scan
	if s.useIndexes && conjunctive {
		if loids, probeBytes, ok := s.indexProbe(b, ext, localIdx); ok {
			c.DiskRead(probeBytes)
			c.CPU(1 + len(loids))
			iterate = func(fn func(*object.Object) bool) {
				for _, id := range loids {
					if o := ext.Get(id); o != nil && !fn(o) {
						return
					}
				}
			}
		}
	}
	var survivors []survivor
	iterate(func(o *object.Object) bool {
		c.DiskRead(o.WireSize(nil))
		src.Warm(o.LOid)
		verdicts := make([]tvl.Truth, len(b.Preds))
		var unsolved []eval.Unsolved
		alive := true
		for _, i := range localIdx {
			v, uns := eval.EvalPredicate(src, b.Preds[i], o, i, &c)
			verdicts[i] = v
			// Conjunctive queries short-circuit on the first false local
			// predicate; disjunctive ones need every local verdict before
			// folding.
			if conjunctive && v == tvl.False {
				alive = false
				break
			}
			unsolved = append(unsolved, uns...)
		}
		if !conjunctive {
			// Removed predicates are unknown; the verdict slice already
			// holds zero (= no information) for them.
			alive = b.Fold(verdicts) != tvl.False
		}
		if alive {
			survivors = append(survivors, survivor{obj: o, verdicts: verdicts, unsolved: unsolved})
		}
		return true
	})
	s.charge(p, &c)

	// BL_C2 (phase O): for the surviving results, locate the unsolved
	// items of the removed predicates and look up their assistant objects.
	for _, sv := range survivors {
		unsolved := sv.unsolved
		for _, i := range removedIdx {
			v, uns := eval.EvalPredicate(src, b.Preds[i], sv.obj, i, &c)
			sv.verdicts[i] = v
			unsolved = append(unsolved, uns...)
		}
		row := s.buildRow(src, b, sv.obj, sv.verdicts, unsolved, &c)
		s.collectChecks(b, sv.obj, row.Unsolved, checks, sigs, &c)
		res.Rows = append(res.Rows, row)
	}
	res.SigVerdicts = checks.synth
	s.charge(p, &c)
	return res, checks.bySite
}

// indexProbe selects candidate root objects through a secondary index when
// some local predicate is a direct comparison on an indexed attribute. The
// candidates are the value matches plus the objects whose attribute is null
// (unknown under three-valued logic, so still potential maybe results).
func (s *Site) indexProbe(b *query.Bound, ext *store.Extent, localIdx []int) ([]object.LOid, int, bool) {
	for _, i := range localIdx {
		bp := b.Preds[i]
		if len(bp.Path) != 1 {
			continue
		}
		ix := ext.Index(bp.Path[0])
		if ix == nil {
			continue
		}
		var matches []object.LOid
		switch bp.Op {
		case query.OpEq:
			matches = ix.EqualTo(bp.Literal)
		case query.OpNe:
			matches = ix.NotEqualTo(bp.Literal)
		case query.OpLt:
			matches = ix.Range(bp.Literal, true, false)
		case query.OpLe:
			matches = ix.Range(bp.Literal, true, true)
		case query.OpGt:
			matches = ix.Range(bp.Literal, false, false)
		case query.OpGe:
			matches = ix.Range(bp.Literal, false, true)
		default:
			continue
		}
		loids := make([]object.LOid, 0, len(matches)+len(ix.Nulls()))
		loids = append(loids, matches...)
		loids = append(loids, ix.Nulls()...)
		return loids, ix.ProbeCost(len(matches)), true
	}
	return nil, 0, false
}

// navigated is the phase-O state of one root object under the parallel
// localized approach.
type navigated struct {
	obj      *object.Object
	outcomes []eval.Outcome  // navigation outcome per predicate
	unsolved []eval.Unsolved // unsolved points found during navigation
}

// Navigation is the opaque phase-O state NavigateAll hands to
// EvalNavigated.
type Navigation struct {
	navs       []navigated
	localIdx   []int
	removedIdx []int
	src        *eval.Cached // the local query's buffer, shared by both phases
	synth      []CheckVerdict
}

// NavigateAll runs step PL_C1 of the parallel localized approach (phase O
// before phase P): navigate every predicate path on every root object —
// including objects the local predicates will later eliminate — and look up
// the assistant objects of every unsolved item found. The returned check
// items are dispatched immediately so remote checking overlaps the local
// predicate evaluation of EvalNavigated.
// sigs, when non-nil, enables the signature-assisted variant.
func (s *Site) NavigateAll(p fabric.Proc, b *query.Bound, sigs *signature.Index) (*Navigation, map[object.SiteID][]CheckItem) {
	localIdx, removedIdx := eval.SplitPredIdx(b, s.ID())
	nav := &Navigation{
		localIdx:   localIdx,
		removedIdx: removedIdx,
		src:        eval.NewCached(eval.DiskSource{DB: s.db}),
	}
	checks := newCollector()
	var c cost.Counter

	s.rootExtent(b).Scan(func(o *object.Object) bool {
		c.DiskRead(o.WireSize(nil))
		nav.src.Warm(o.LOid)
		nv := navigated{obj: o, outcomes: make([]eval.Outcome, len(b.Preds))}
		for i := range b.Preds {
			out := eval.Navigate(nav.src, b.Preds[i], o, i, &c)
			nv.outcomes[i] = out
			nv.unsolved = append(nv.unsolved, out.Unsolved...)
		}
		items := s.toUnsolvedItems(b, o, nv.unsolved, &c)
		s.collectChecks(b, o, items, checks, sigs, &c)
		nav.navs = append(nav.navs, nv)
		return true
	})
	nav.synth = checks.synth
	s.charge(p, &c)
	return nav, checks.bySite
}

// EvalNavigated runs step PL_C2 (phase P): evaluate the local predicates
// over the values navigated by NavigateAll; unsolved predicates are
// unknown. It returns the surviving local rows.
func (s *Site) EvalNavigated(p fabric.Proc, b *query.Bound, nav *Navigation) LocalResult {
	res := LocalResult{Site: s.ID()}
	var c cost.Counter
	conjunctive := b.Conjunctive()
	for _, nv := range nav.navs {
		verdicts := make([]tvl.Truth, len(b.Preds))
		alive := true
		for _, i := range nav.localIdx {
			if out := nv.outcomes[i]; out.Done {
				// The navigation already determined the verdict (missing
				// data, or a multi-valued attribute evaluated under ANY
				// semantics).
				verdicts[i] = out.Verdict
			} else {
				c.CPU(1)
				verdicts[i] = eval.Compare(b.Preds[i].Op, out.Value, b.Preds[i].Literal)
			}
			if conjunctive && verdicts[i] == tvl.False {
				alive = false
				break
			}
		}
		if !conjunctive {
			alive = b.Fold(verdicts) != tvl.False
		}
		if !alive {
			continue
		}
		for _, i := range nav.removedIdx {
			verdicts[i] = tvl.Unknown
		}
		row := s.buildRow(nav.src, b, nv.obj, verdicts, nv.unsolved, &c)
		res.Rows = append(res.Rows, row)
	}
	res.SigVerdicts = nav.synth
	s.charge(p, &c)
	return res
}

// buildRow assembles a local result row: target values (complex values
// translated to global references) and the unsolved items.
func (s *Site) buildRow(src eval.Source, b *query.Bound, o *object.Object, verdicts []tvl.Truth,
	unsolved []eval.Unsolved, c *cost.Counter) LocalRow {
	row := LocalRow{
		LOid:     o.LOid,
		GOid:     s.goidOf(b.Query.Range, o.LOid, c),
		Verdicts: verdicts,
		Unsolved: s.toUnsolvedItems(b, o, unsolved, c),
	}
	row.Targets = make([]object.Value, len(b.Targets))
	for i, tp := range b.Targets {
		v := eval.EvalTarget(src, tp, o, c)
		switch v.Kind() {
		case object.KindRef:
			v = object.GRef(s.goidOf(tp.Attr.Domain, v.RefLOid(), c))
		case object.KindList:
			if tp.Attr.IsComplex() {
				elems := make([]object.Value, 0, len(v.Elems()))
				for _, e := range v.Elems() {
					elems = append(elems, object.GRef(s.goidOf(tp.Attr.Domain, e.RefLOid(), c)))
				}
				v = object.List(elems...)
			}
		}
		row.Targets[i] = v
	}
	return row
}

// toUnsolvedItems attaches global identities to unsolved points.
func (s *Site) toUnsolvedItems(b *query.Bound, root *object.Object,
	unsolved []eval.Unsolved, c *cost.Counter) []UnsolvedItem {
	if len(unsolved) == 0 {
		return nil
	}
	items := make([]UnsolvedItem, len(unsolved))
	for i, u := range unsolved {
		items[i] = UnsolvedItem{
			ItemGOid:  s.goidOf(u.ItemClass, u.ItemLOid, c),
			ItemClass: u.ItemClass,
			SelfItem:  u.ItemLOid == root.LOid,
			Suffix:    u.Suffix,
			SourceIdx: u.SourceIdx,
			Multi:     u.Multi,
		}
	}
	return items
}

// collectChecks looks up the assistant objects for each unsolved item and
// queues check items toward the sites storing them. Items that are the root
// object itself are skipped: the root's isomeric objects are evaluated by
// their own sites' local queries. Assistants whose site cannot evaluate the
// suffix predicate (a step is a missing attribute there too) are skipped,
// as no data could be obtained from them.
func (s *Site) collectChecks(b *query.Bound, root *object.Object,
	items []UnsolvedItem, checks *collector, sigs *signature.Index, c *cost.Counter) {
	for _, it := range items {
		if it.SelfItem {
			continue
		}
		c.CPU(1) // mapping-table lookup for the item's isomeric objects
		locs := s.cache.Locations(s.tables.Table(it.ItemClass), it.ItemClass, it.ItemGOid)
		for _, loc := range locs {
			if loc.Site == s.ID() {
				continue
			}
			if !s.holdsSuffix(it.ItemClass, it.Suffix.Path, loc.Site) {
				continue
			}
			item := CheckItem{
				Assistant: loc.LOid,
				ItemGOid:  it.ItemGOid,
				ItemClass: it.ItemClass,
				Suffix:    it.Suffix,
				SourceIdx: it.SourceIdx,
			}
			if sigs != nil && s.probeSignature(sigs, loc, item, checks, c) {
				continue // verdict synthesized locally; no check dispatched
			}
			checks.add(loc.Site, item)
		}
	}
}

// probeSignature consults the replicated signature of an assistant for a
// single-step equality predicate. When the probe proves the assistant's
// value present and different from the literal, a false verdict is recorded
// locally and true is returned (the network check is unnecessary).
func (s *Site) probeSignature(sigs *signature.Index, loc gmap.Location,
	item CheckItem, checks *collector, c *cost.Counter) bool {
	if len(item.Suffix.Path) != 1 || item.Suffix.Op != query.OpEq {
		return false
	}
	sig, ok := sigs.Lookup(loc.Site, loc.LOid)
	if !ok {
		return false
	}
	c.CPU(1) // signature probe
	if !sig.RulesOutEquality(item.Suffix.Path[0], item.Suffix.Literal) {
		return false
	}
	k := checkKey{
		site:      loc.Site,
		assistant: item.Assistant,
		item:      item.ItemGOid,
		sourceIdx: item.SourceIdx,
		suffixLen: len(item.Suffix.Path),
	}
	if checks.seen[k] {
		return true
	}
	checks.seen[k] = true
	checks.synth = append(checks.synth, CheckVerdict{
		ItemGOid:  item.ItemGOid,
		SourceIdx: item.SourceIdx,
		SuffixLen: len(item.Suffix.Path),
		Verdict:   tvl.False,
	})
	return true
}

// holdsSuffix reports whether every step of a suffix path rooted at the
// given global class is held by the constituent classes at the site.
func (s *Site) holdsSuffix(class string, path query.Path, site object.SiteID) bool {
	cur := class
	for _, step := range path {
		gc := s.global.Class(cur)
		if gc == nil || !gc.Holds(site, step) {
			return false
		}
		a, _ := gc.Attr(step)
		if a.IsComplex() {
			cur = a.Domain
		}
	}
	return true
}

// CheckAssistants implements steps BL_C3 / PL_C3: evaluate the appended
// unsolved predicates on the listed assistant objects this site stores, and
// report a three-valued verdict per item (the paper's "checking the
// assistant objects").
//
// Items that produce no evidence — the assistant cannot be fetched, or the
// suffix predicate fails to bind at this site — yield NO verdict rather
// than a shipped Unknown: an absent verdict and an Unknown verdict are
// equivalent for certification, and dropping them keeps the reply's wire
// size (and the simulated transfer charged from it) at the bytes actually
// produced. A genuine evaluation Unknown (the assistant also lacks the
// data) is still reported.
func (s *Site) CheckAssistants(p fabric.Proc, items []CheckItem) CheckReply {
	var c cost.Counter
	src := eval.NewCached(eval.DiskSource{DB: s.db})
	reply := CheckReply{Site: s.ID()}
	for _, it := range items {
		suffix := it.Suffix.String()
		if v, ok := s.cache.Verdict(it.ItemClass, it.Assistant, suffix); ok {
			c.CPU(1) // cache probe; the fetch and evaluation are skipped
			reply.Verdicts = append(reply.Verdicts, CheckVerdict{
				ItemGOid:  it.ItemGOid,
				SourceIdx: it.SourceIdx,
				SuffixLen: len(it.Suffix.Path),
				Verdict:   v,
			})
			continue
		}
		o, ok := src.Fetch(it.Assistant, &c)
		if !ok {
			continue
		}
		bp, err := query.BindPredicateAt(s.global, it.ItemClass, it.Suffix)
		if err != nil {
			continue
		}
		verdict, _ := eval.EvalPredicate(src, bp, o, it.SourceIdx, &c)
		s.cache.PutVerdict(it.ItemClass, it.Assistant, suffix, verdict)
		reply.Verdicts = append(reply.Verdicts, CheckVerdict{
			ItemGOid:  it.ItemGOid,
			SourceIdx: it.SourceIdx,
			SuffixLen: len(it.Suffix.Path),
			Verdict:   verdict,
		})
	}
	s.charge(p, &c)
	return reply
}
