package federation

import (
	"sync"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/tvl"
)

// LookupCache is a per-site read-through cache over the two lookups a site
// repeats for every query it serves:
//
//   - GOid mapping-table resolutions (local object → GOid, and
//     entity → isomeric locations), which hit the replicated tables once
//     per object per query; and
//   - checked assistant verdicts — the three-valued outcome of evaluating
//     a suffix predicate on one stored assistant object. A verdict hit
//     skips the assistant's disk fetch and predicate evaluation entirely.
//
// Coherence: the cache is invalidated by the Insert replication path. An
// Insert stores one new object and broadcasts a BindDelta for its class to
// every replica site; InvalidateClass drops that class's mapping and
// verdict entries at each site the broadcast reaches. Stored objects are
// never mutated in place, so class-granular invalidation is sufficient —
// an entry can only go stale when its class gains a binding.
//
// All methods are safe for concurrent use and for a nil receiver (a nil
// cache is a pass-through miss).
type LookupCache struct {
	reg  *metrics.Registry
	site string

	mu       sync.RWMutex
	goids    map[goidKey]goidEntry
	locs     map[locKey][]gmap.Location
	verdicts map[verdictKey]tvl.Truth
}

type goidKey struct {
	class string
	site  object.SiteID
	loid  object.LOid
}

type goidEntry struct {
	goid object.GOid
	ok   bool // negative entries cache "not mapped" too
}

type locKey struct {
	class string
	goid  object.GOid
}

type verdictKey struct {
	class     string
	assistant object.LOid
	suffix    string // Predicate.String(): path, operator and literal
}

// NewLookupCache builds an empty cache reporting to the given registry
// (which may be nil) under the given site label.
func NewLookupCache(reg *metrics.Registry, site object.SiteID) *LookupCache {
	return &LookupCache{
		reg:      reg,
		site:     string(site),
		goids:    make(map[goidKey]goidEntry),
		locs:     make(map[locKey][]gmap.Location),
		verdicts: make(map[verdictKey]tvl.Truth),
	}
}

func (lc *LookupCache) hit(kind string) {
	lc.reg.Counter("cache_hits_total", metrics.Labels{Site: lc.site, Phase: kind}).Inc()
}

func (lc *LookupCache) miss(kind string) {
	lc.reg.Counter("cache_misses_total", metrics.Labels{Site: lc.site, Phase: kind}).Inc()
}

// GOidOf is the read-through form of gmap.Table.GOidOf: it serves the
// mapping from cache when present and fills it from the table otherwise.
func (lc *LookupCache) GOidOf(t *gmap.Table, class string, site object.SiteID, loid object.LOid) (object.GOid, bool) {
	if lc == nil {
		return t.GOidOf(site, loid)
	}
	k := goidKey{class: class, site: site, loid: loid}
	lc.mu.RLock()
	e, ok := lc.goids[k]
	lc.mu.RUnlock()
	if ok {
		lc.hit("gmap")
		return e.goid, e.ok
	}
	lc.miss("gmap")
	g, found := t.GOidOf(site, loid)
	lc.mu.Lock()
	lc.goids[k] = goidEntry{goid: g, ok: found}
	lc.mu.Unlock()
	return g, found
}

// Locations is the read-through form of gmap.Table.Locations.
func (lc *LookupCache) Locations(t *gmap.Table, class string, goid object.GOid) []gmap.Location {
	if lc == nil {
		return t.Locations(goid)
	}
	k := locKey{class: class, goid: goid}
	lc.mu.RLock()
	locs, ok := lc.locs[k]
	lc.mu.RUnlock()
	if ok {
		lc.hit("gmap")
		return locs
	}
	lc.miss("gmap")
	locs = t.Locations(goid)
	lc.mu.Lock()
	lc.locs[k] = locs
	lc.mu.Unlock()
	return locs
}

// Verdict returns the cached check verdict for an assistant/suffix pair.
func (lc *LookupCache) Verdict(class string, assistant object.LOid, suffix string) (tvl.Truth, bool) {
	if lc == nil {
		return tvl.Unknown, false
	}
	k := verdictKey{class: class, assistant: assistant, suffix: suffix}
	lc.mu.RLock()
	v, ok := lc.verdicts[k]
	lc.mu.RUnlock()
	if ok {
		lc.hit("verdict")
	} else {
		lc.miss("verdict")
	}
	return v, ok
}

// PutVerdict records a produced check verdict.
func (lc *LookupCache) PutVerdict(class string, assistant object.LOid, suffix string, v tvl.Truth) {
	if lc == nil {
		return
	}
	k := verdictKey{class: class, assistant: assistant, suffix: suffix}
	lc.mu.Lock()
	lc.verdicts[k] = v
	lc.mu.Unlock()
}

// InvalidateClass drops every entry of the named global class — called when
// the Insert replication path binds a new object of that class (the local
// store on the owning site, the BindDelta broadcast on every replica).
func (lc *LookupCache) InvalidateClass(class string) {
	if lc == nil {
		return
	}
	lc.mu.Lock()
	n := 0
	for k := range lc.goids {
		if k.class == class {
			delete(lc.goids, k)
			n++
		}
	}
	for k := range lc.locs {
		if k.class == class {
			delete(lc.locs, k)
			n++
		}
	}
	for k := range lc.verdicts {
		if k.class == class {
			delete(lc.verdicts, k)
			n++
		}
	}
	lc.mu.Unlock()
	lc.reg.Counter("cache_invalidations_total", metrics.Labels{Site: lc.site}).Inc()
	if n > 0 {
		lc.reg.Counter("cache_evicted_total", metrics.Labels{Site: lc.site}).Add(int64(n))
	}
}

// Len returns the number of live entries (for tests and debugging).
func (lc *LookupCache) Len() int {
	if lc == nil {
		return 0
	}
	lc.mu.RLock()
	defer lc.mu.RUnlock()
	return len(lc.goids) + len(lc.locs) + len(lc.verdicts)
}
