package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/hetfed/hetfed/internal/adapt"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/planner"
	"github.com/hetfed/hetfed/internal/remote"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/trace"
)

// liveCluster is one cell's serving deployment: every component site as a
// real TCP server with its own metrics registry and observability endpoint,
// plus an in-process coordinator. Built per cell and torn down after it, so
// no state (caches, breakers, batch queues, counters) leaks between cells.
type liveCluster struct {
	coord    *remote.Coordinator
	coordReg *metrics.Registry
	servers  []*remote.Server
	obsSrvs  []*obs.Server
	scrapes  []string // per-site /metrics URLs, index-aligned with servers
}

func (lc *liveCluster) close() {
	if lc.coord != nil {
		lc.coord.Close()
	}
	for _, o := range lc.obsSrvs {
		o.Close()
	}
	for _, s := range lc.servers {
		s.Close()
	}
}

// startLiveCluster deploys the bundle's federation for one cell. The cell's
// fault plan is installed into every server: each server consults the plan
// under its own site ID, so the one shared plan kills/delays exactly the
// site the spec names. Site metrics are served over HTTP (obs.Serve) and
// later scraped — the measurement exercises the real observability surface,
// not an in-process shortcut.
func startLiveCluster(spec MatrixSpec, cell Cell, bundle *Bundle) (*liveCluster, error) {
	faults, err := parseFault(cell.Fault)
	if err != nil {
		return nil, err
	}
	serving := servingByName(spec, cell.Serving)
	sigs := signature.Build(bundle.Databases)
	plan := faults()

	lc := &liveCluster{}
	sites := make([]object.SiteID, 0, len(bundle.Databases))
	for site := range bundle.Databases {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	addrs := make(map[object.SiteID]string, len(sites))
	for _, site := range sites {
		reg := metrics.New()
		srv, err := remote.NewServer(remote.ServerConfig{
			DB:         bundle.Databases[site],
			Global:     bundle.Global,
			Tables:     bundle.Tables,
			Signatures: sigs,
			Metrics:    reg,
			Batch:      remote.BatchConfig{Window: serving.BatchWindow},
			Cache:      serving.Cache,
			Faults:     plan,
		})
		if err != nil {
			lc.close()
			return nil, fmt.Errorf("server %s: %w", site, err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			lc.close()
			return nil, fmt.Errorf("listen %s: %w", site, err)
		}
		lc.servers = append(lc.servers, srv)
		addrs[site] = srv.Addr()

		o, err := obs.Serve("127.0.0.1:0", string(site), reg, nil, nil)
		if err != nil {
			lc.close()
			return nil, fmt.Errorf("obs %s: %w", site, err)
		}
		lc.obsSrvs = append(lc.obsSrvs, o)
		lc.scrapes = append(lc.scrapes, "http://"+o.Addr()+"/metrics")
	}
	for _, srv := range lc.servers {
		srv.SetPeers(addrs)
	}
	lc.coordReg = metrics.New()
	lc.coord = &remote.Coordinator{
		ID:            coordinatorID,
		Global:        bundle.Global,
		Tables:        bundle.Tables,
		Sites:         addrs,
		Metrics:       lc.coordReg,
		MaxConcurrent: spec.MaxConcurrent,
		Deadline:      spec.Deadline,
	}
	// Adaptive cells wire the coordinator's feedback loop: a span-capped
	// tracer supplies measured profiles, the calibrating selector consumes
	// them, and the live breaker states steer choices away from check-heavy
	// plans while a peer is suspect.
	if alg, err := algByName(cell.Strategy); err == nil && alg == exec.Adaptive {
		tr := &trace.Tracer{}
		tr.SetLimit(4096)
		lc.coord.Tracer = tr
		cat := planner.BuildCatalog(bundle.Global, bundle.Databases, bundle.Tables)
		lc.coord.Selector = adapt.NewSelector(cat,
			adapt.NewCalibrator(adapt.Config{Coordinator: coordinatorID}),
			lc.coord.BreakerStates)
	}
	return lc, nil
}

// scrapeAll snapshots every site's /metrics endpoint over HTTP.
func (lc *liveCluster) scrapeAll(ctx context.Context) ([]metrics.Snapshot, error) {
	out := make([]metrics.Snapshot, len(lc.scrapes))
	for i, url := range lc.scrapes {
		s, err := metrics.Scrape(ctx, url)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// runLiveCell executes the cell against a freshly spawned TCP cluster.
// Client stats come from the load generator's own clock; server stats come
// from /metrics deltas scraped around the run (pre-scrape to post-scrape),
// so warmup work (the reachability ping) never pollutes the window.
func runLiveCell(ctx context.Context, spec MatrixSpec, cell Cell, bundle *Bundle) (CellResult, error) {
	alg, err := algByName(cell.Strategy)
	if err != nil {
		return CellResult{}, err
	}
	lc, err := startLiveCluster(spec, cell, bundle)
	if err != nil {
		return CellResult{}, err
	}
	defer lc.close()
	// Reachability probe; against a faulted cell some sites are dead by
	// design, so a failed ping only means degraded answers, not a bad cell.
	_ = lc.coord.Ping()

	rng := rand.New(rand.NewSource(cell.Seed))
	variants := DrawVariants(zipfFor(rng, spec, bundle), spec.Queries)

	preSites, err := lc.scrapeAll(ctx)
	if err != nil {
		return CellResult{}, fmt.Errorf("pre-scrape: %w", err)
	}
	preCoord := lc.coordReg.Snapshot()

	fn := func(ctx context.Context, variant int) Result {
		ans, elapsed, err := lc.coord.QueryContext(ctx, bundle.Queries[variant], alg)
		if err != nil {
			return Result{Err: err, Shed: errors.Is(err, exec.ErrShed)}
		}
		return Result{
			Micros:      float64(elapsed.Nanoseconds()) / 1e3,
			Degraded:    ans.Degraded,
			Interrupted: ans.Interrupted(),
		}
	}
	start := time.Now()
	var results []Result
	if spec.RateQPS > 0 {
		offsets := arrivalSchedule(rng, spec.Queries, spec.RateQPS*float64(cell.Clients))
		results = RunOpen(ctx, offsets, variants, fn)
	} else {
		results = RunClosed(ctx, cell.Clients, variants, fn)
	}
	wallMicros := float64(time.Since(start).Nanoseconds()) / 1e3

	postSites, err := lc.scrapeAll(ctx)
	if err != nil {
		return CellResult{}, fmt.Errorf("post-scrape: %w", err)
	}
	siteDeltas := make([]metrics.Snapshot, len(postSites))
	for i := range postSites {
		siteDeltas[i] = postSites[i].Delta(preSites[i])
	}
	coordDelta := lc.coordReg.Delta(preCoord)

	return CellResult{
		Cell:   cell,
		Client: Summarize(results, wallMicros),
		Server: extractServerStats(coordDelta, siteDeltas),
	}, nil
}
