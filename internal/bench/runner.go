package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"github.com/hetfed/hetfed/internal/adapt"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/planner"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/trace"
	"github.com/hetfed/hetfed/internal/version"
	"github.com/hetfed/hetfed/internal/workload"
)

// coordinatorID is the global processing site in every benchmark topology
// (matches the school example and the sim package's convention).
const coordinatorID = "G"

// Run executes the matrix and assembles the report. Cells run sequentially
// — each cell owns the whole machine while it is measured, so cells never
// contend with each other. progress, when non-nil, receives one line per
// cell as it completes.
func Run(ctx context.Context, spec MatrixSpec, topic string, progress func(string)) (*Report, error) {
	if err := validate(&spec); err != nil {
		return nil, err
	}
	report := &Report{
		Schema:  SchemaVersion,
		Topic:   topic,
		Version: version.String(),
		Seed:    spec.Seed,
		Matrix:  spec,
	}
	// One bundle per workload name, shared by every cell that queries it:
	// comparisons across strategies and faults are over identical data.
	bundles := make(map[string]*Bundle, len(spec.Workloads))
	for _, name := range spec.Workloads {
		b, err := BuildBundle(name, spec.Variants, spec.Scale, spec.Seed)
		if err != nil {
			return nil, err
		}
		bundles[name] = b
	}
	for _, cell := range expand(spec) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := runCell(ctx, spec, cell, bundles[cell.Workload])
		if err != nil {
			return nil, fmt.Errorf("bench: cell %s: %w", cell.Key(), err)
		}
		report.Cells = append(report.Cells, res)
		if progress != nil {
			progress(fmt.Sprintf("%-44s p50 %8.0fµs  p99 %8.0fµs  %7.1f q/s  maybe %.2f  degraded %.2f",
				cell.Key(), res.Client.P50Micros, res.Client.P99Micros,
				res.Client.QPS, res.Server.MaybeFrac, res.Server.DegradedFrac))
		}
	}
	sortCells(report.Cells)
	return report, nil
}

// validate fills the spec's defaults and rejects nonsense before any cell
// spends time.
func validate(spec *MatrixSpec) error {
	if len(spec.Runtimes) == 0 {
		spec.Runtimes = []string{"sim"}
	}
	for _, rt := range spec.Runtimes {
		if rt != "sim" && rt != "live" {
			return fmt.Errorf("bench: unknown runtime %q (want sim or live)", rt)
		}
	}
	if len(spec.Strategies) == 0 {
		return errors.New("bench: no strategies")
	}
	for _, s := range spec.Strategies {
		if _, err := algByName(s); err != nil {
			return err
		}
	}
	if len(spec.Workloads) == 0 {
		return errors.New("bench: no workloads")
	}
	if len(spec.Clients) == 0 {
		spec.Clients = []int{1}
	}
	if len(spec.Faults) == 0 {
		spec.Faults = []string{"none"}
	}
	for _, f := range spec.Faults {
		if _, err := parseFault(f); err != nil {
			return err
		}
	}
	if len(spec.Serving) == 0 {
		spec.Serving = []ServingSpec{{Name: "plain"}}
	}
	if spec.Queries < 1 {
		spec.Queries = 1
	}
	if spec.Variants < 1 {
		spec.Variants = 1
	}
	return nil
}

// expand produces the cell cross product in canonical (sorted-key) order.
func expand(spec MatrixSpec) []Cell {
	var cells []Cell
	for _, rt := range spec.Runtimes {
		for _, strat := range spec.Strategies {
			for _, wl := range spec.Workloads {
				for _, cl := range spec.Clients {
					for _, fault := range spec.Faults {
						for _, srv := range spec.Serving {
							c := Cell{
								Runtime:  rt,
								Strategy: strat,
								Workload: wl,
								Clients:  cl,
								Fault:    fault,
								Serving:  srv.Name,
							}
							c.Seed = cellSeed(spec.Seed, c.Key())
							cells = append(cells, c)
						}
					}
				}
			}
		}
	}
	return cells
}

// servingByName resolves a cell's serving config from the spec.
func servingByName(spec MatrixSpec, name string) ServingSpec {
	for _, s := range spec.Serving {
		if s.Name == name {
			return s
		}
	}
	return ServingSpec{Name: name}
}

func runCell(ctx context.Context, spec MatrixSpec, cell Cell, bundle *Bundle) (CellResult, error) {
	switch cell.Runtime {
	case "sim":
		return runSimCell(ctx, spec, cell, bundle)
	case "live":
		return runLiveCell(ctx, spec, cell, bundle)
	default:
		return CellResult{}, fmt.Errorf("unknown runtime %q", cell.Runtime)
	}
}

// runSimCell executes the cell on the discrete-event fabric: queries run
// sequentially (the DES models intra-query parallelism; the clients
// dimension shapes live cells only), latencies are virtual micros, and
// every number derives from the cell seed — identical seeds reproduce
// byte-identical results. The per-query deadline is ignored here: a wall
// deadline against virtual time would couple results to host speed.
func runSimCell(ctx context.Context, spec MatrixSpec, cell Cell, bundle *Bundle) (CellResult, error) {
	alg, err := algByName(cell.Strategy)
	if err != nil {
		return CellResult{}, err
	}
	faults, err := parseFault(cell.Fault)
	if err != nil {
		return CellResult{}, err
	}
	serving := servingByName(spec, cell.Serving)
	reg := metrics.New()
	cfg := exec.Config{
		Global:        bundle.Global,
		Coordinator:   coordinatorID,
		Databases:     bundle.Databases,
		Tables:        bundle.Tables,
		Metrics:       reg,
		Signatures:    signature.Build(bundle.Databases),
		MaxConcurrent: spec.MaxConcurrent,
		Cache:         serving.Cache,
	}
	// Adaptive cells close the feedback loop: a tracer feeds each query's
	// measured profile into the calibrating selector. Queries run
	// sequentially here, so the selection sequence is as deterministic as
	// the DES itself.
	var tracer trace.Tracer
	var selector *adapt.Selector
	if alg == exec.Adaptive {
		cat := planner.BuildCatalog(bundle.Global, bundle.Databases, bundle.Tables)
		selector = adapt.NewSelector(cat,
			adapt.NewCalibrator(adapt.Config{Coordinator: coordinatorID}), nil)
		cfg.Tracer = &tracer
		cfg.Selector = selector
	}
	engine, err := exec.New(cfg)
	if err != nil {
		return CellResult{}, err
	}
	rng := rand.New(rand.NewSource(cell.Seed))
	variants := DrawVariants(zipfFor(rng, spec, bundle), spec.Queries)

	results := make([]Result, spec.Queries)
	var virtualMicros float64
	for i := 0; i < spec.Queries; i++ {
		if err := ctx.Err(); err != nil {
			return CellResult{}, err
		}
		if selector != nil {
			tracer.Reset()
		}
		// Each query gets a fresh fault plan: DropAfter budgets are
		// per-query (mid-query crash), matching the sim package's semantics.
		rt := fabric.NewSim(fabric.DefaultRates(), engine.Sites()).WithFaults(faults())
		ans, m, err := engine.Run(rt, alg, bundle.Bounds[variants[i]])
		if err != nil {
			results[i] = Result{Err: err, Shed: errors.Is(err, exec.ErrShed)}
			continue
		}
		virtualMicros += m.ResponseMicros
		results[i] = Result{
			Micros:      m.ResponseMicros,
			Degraded:    ans.Degraded,
			Interrupted: ans.Interrupted(),
		}
	}
	return CellResult{
		Cell:   cell,
		Client: Summarize(results, virtualMicros),
		Server: extractServerStats(reg.Snapshot(), nil),
	}, nil
}

// zipfFor builds the cell's variant sampler; nil when there is only one
// variant to choose from.
func zipfFor(rng *rand.Rand, spec MatrixSpec, bundle *Bundle) *workload.Zipf {
	if len(bundle.Queries) <= 1 {
		return nil
	}
	return workload.NewZipf(rng, len(bundle.Queries), spec.Zipf)
}

// algByName resolves a strategy name (case-insensitive) to its algorithm —
// the shared exec parser, so the matrix accepts "adaptive" cells too.
func algByName(name string) (exec.Algorithm, error) {
	return exec.ParseAlgorithm(name)
}

// parseFault compiles a fault spec into a plan factory. Each call of the
// factory yields a fresh plan, so drop-after budgets restart per consumer
// (per query on the sim runtime, per cell on the live runtime, where the
// plan is installed once into each server). Specs:
//
//	none              no faults
//	kill:SITE         SITE is dead for the whole run
//	drop:SITE:N       SITE serves N operations, then goes dark
//	delay:SITE:MICROS every operation at SITE stalls this many micros
func parseFault(spec string) (func() *fabric.FaultPlan, error) {
	if spec == "" || spec == "none" {
		return func() *fabric.FaultPlan { return nil }, nil
	}
	parts := strings.Split(spec, ":")
	bad := func() error {
		return fmt.Errorf("bench: bad fault %q (want none, kill:SITE, drop:SITE:N or delay:SITE:MICROS)", spec)
	}
	if len(parts) < 2 || parts[1] == "" {
		return nil, bad()
	}
	site := object.SiteID(parts[1])
	switch parts[0] {
	case "kill":
		if len(parts) != 2 {
			return nil, bad()
		}
		return func() *fabric.FaultPlan { return fabric.NewFaultPlan().Kill(site) }, nil
	case "drop":
		if len(parts) != 3 {
			return nil, bad()
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 0 {
			return nil, bad()
		}
		return func() *fabric.FaultPlan { return fabric.NewFaultPlan().DropAfter(site, n) }, nil
	case "delay":
		if len(parts) != 3 {
			return nil, bad()
		}
		us, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || us < 0 {
			return nil, bad()
		}
		return func() *fabric.FaultPlan { return fabric.NewFaultPlan().Delay(site, us) }, nil
	default:
		return nil, bad()
	}
}

// extractServerStats reduces metric snapshot deltas to the report's server
// truth. coord is the coordinator's delta; sites are the component sites'
// (empty on the sim runtime, where one registry holds everything).
//
// Network bytes need care: the coordinator records coordinator↔site traffic
// in both directions as it sees it, and each site additionally records its
// own outbound bytes — including responses to the coordinator, which the
// coordinator already counted. Site samples whose peer is the coordinator
// are therefore excluded; what remains from the sites is site↔site check
// traffic, which the coordinator never sees.
func extractServerStats(coord metrics.Snapshot, sites []metrics.Snapshot) ServerStats {
	all := append([]metrics.Snapshot{coord}, sites...)
	sumAll := func(name string) int64 {
		var t int64
		for _, s := range all {
			t += s.Sum(name)
		}
		return t
	}
	st := ServerStats{
		Queries:          coord.Sum("queries_total"),
		CertainRows:      coord.Sum("results_certain_total"),
		MaybeRows:        coord.Sum("results_maybe_total"),
		DegradedQueries:  coord.Sum("degraded_queries_total"),
		DiskBytes:        sumAll("disk_bytes_total"),
		CPUOps:           sumAll("cpu_ops_total"),
		ChecksDispatched: sumAll("checks_dispatched_total"),
		CacheHits:        sumAll("cache_hits_total"),
		CacheMisses:      sumAll("cache_misses_total"),
		Shed:             coord.Sum("queries_shed_total"),
		DeadlineExceeded: coord.Sum("deadline_exceeded_total"),
		Canceled:         coord.Sum("queries_canceled_total"),
		SiteUnavailable:  coord.Sum("site_unavailable_total"),
	}
	st.NetBytes = coord.Sum("net_bytes_total")
	for _, s := range sites {
		st.NetBytes += sumWhere(s, "net_bytes_total", func(l metrics.Labels) bool {
			return l.Peer != coordinatorID
		})
		n, groups := s.HistTotals("check_batch_groups")
		st.CheckBatches += n
		st.BatchedGroups += int64(groups)
	}
	if rows := st.CertainRows + st.MaybeRows; rows > 0 {
		st.CertainFrac = frac(st.CertainRows, rows)
		st.MaybeFrac = frac(st.MaybeRows, rows)
	}
	if st.Queries > 0 {
		st.DegradedFrac = frac(st.DegradedQueries, st.Queries)
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRate = frac(st.CacheHits, lookups)
	}
	if st.CheckBatches > 0 {
		st.BatchEfficiency = float64(st.BatchedGroups) / float64(st.CheckBatches)
	}
	return st
}

// frac rounds a ratio to 4 decimals so report floats stay diffable and free
// of representation noise.
func frac(num, den int64) float64 {
	return float64(int64(float64(num)/float64(den)*1e4+0.5)) / 1e4
}

// sumWhere totals a counter across the label sets keep admits.
func sumWhere(s metrics.Snapshot, name string, keep func(metrics.Labels) bool) int64 {
	var t int64
	for _, smp := range s.Samples {
		if smp.Name == name && smp.Hist == nil && (keep == nil || keep(smp.Labels)) {
			t += smp.Value
		}
	}
	return t
}
