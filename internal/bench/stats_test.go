package bench

import (
	"errors"
	"testing"
)

// TestPctlNearestRank pins the nearest-rank definition: rank ⌈p·n⌉, both
// when p·n is integral (the historical off-by-one: p50 of 100 samples must
// read the 50th element, not the 51st) and when it is not.
func TestPctlNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i + 1) // sorted 1..n: value == rank
		}
		return out
	}
	cases := []struct {
		name string
		n    int
		p    float64
		want float64
	}{
		{"empty", 0, 0.5, 0},
		{"single", 1, 0.99, 1},
		// Integral p·n: rank is exactly p·n.
		{"p50 of 100", 100, 0.50, 50},
		{"p95 of 100", 100, 0.95, 95},
		{"p99 of 100", 100, 0.99, 99},
		{"p50 of 2", 2, 0.50, 1},
		{"p25 of 4", 4, 0.25, 1},
		{"p75 of 4", 4, 0.75, 3},
		// Non-integral p·n: rank rounds up.
		{"p50 of 3", 3, 0.50, 2},
		{"p50 of 101", 101, 0.50, 51},
		{"p95 of 7", 7, 0.95, 7},
		{"p99 of 10", 10, 0.99, 10},
		{"p95 of 13", 13, 0.95, 13},
		// Extremes stay in range.
		{"p0 of 5", 5, 0, 1},
		{"p100 of 5", 5, 1, 5},
	}
	for _, tc := range cases {
		if got := pctl(seq(tc.n), tc.p); got != tc.want {
			t.Errorf("%s: pctl = %g, want %g", tc.name, got, tc.want)
		}
	}
}

// TestSummarizePercentiles runs the nearest-rank rule through Summarize with
// a latency distribution where the integral-p·n off-by-one is visible.
func TestSummarizePercentiles(t *testing.T) {
	results := make([]Result, 100)
	for i := range results {
		results[i] = Result{Micros: float64(i + 1)}
	}
	// Two non-completions must not shift the completed-sample percentiles.
	results = append(results,
		Result{Err: errors.New("boom")},
		Result{Shed: true})

	st := Summarize(results, 1e6)
	if st.Completed != 100 || st.Errors != 1 || st.Shed != 1 {
		t.Fatalf("counts = %+v", st)
	}
	if st.P50Micros != 50 {
		t.Errorf("p50 = %g, want 50", st.P50Micros)
	}
	if st.P95Micros != 95 {
		t.Errorf("p95 = %g, want 95", st.P95Micros)
	}
	if st.P99Micros != 99 {
		t.Errorf("p99 = %g, want 99", st.P99Micros)
	}
	if st.MaxMicros != 100 {
		t.Errorf("max = %g, want 100", st.MaxMicros)
	}
}
