package bench

import (
	"math"
	"sort"
)

// Result is one driven query as the load generator saw it. Micros is the
// client-observed latency (wall-clock on the live runtime, virtual time on
// the sim runtime); a Result with Err set contributes to the error counts
// and is excluded from the latency distribution.
type Result struct {
	Micros      float64
	Degraded    bool
	Interrupted bool
	Shed        bool
	Err         error
}

// Summarize reduces a run's results to the client-observed statistics.
// wallMicros is the run's span from first launch to last completion;
// throughput is completed queries over that span. Percentiles are exact
// (nearest-rank over the sorted completions), not histogram estimates —
// the generator holds every sample, so there is no reason to approximate.
func Summarize(results []Result, wallMicros float64) ClientStats {
	st := ClientStats{Queries: len(results), WallMillis: wallMicros / 1e3}
	lat := make([]float64, 0, len(results))
	var sum float64
	for _, r := range results {
		switch {
		case r.Shed:
			st.Shed++
		case r.Err != nil:
			st.Errors++
		default:
			st.Completed++
			lat = append(lat, r.Micros)
			sum += r.Micros
			if r.Degraded {
				st.Degraded++
			}
			if r.Interrupted {
				st.Interrupted++
			}
		}
	}
	if wallMicros > 0 {
		st.QPS = float64(st.Completed) / (wallMicros / 1e6)
	}
	if len(lat) == 0 {
		return st
	}
	sort.Float64s(lat)
	st.MeanMicros = sum / float64(len(lat))
	st.P50Micros = pctl(lat, 0.50)
	st.P95Micros = pctl(lat, 0.95)
	st.P99Micros = pctl(lat, 0.99)
	st.MaxMicros = lat[len(lat)-1]
	return st
}

// pctl is the nearest-rank percentile of a sorted sample: the smallest
// element with at least p·n of the sample at or below it, i.e. rank ⌈p·n⌉
// (index ⌈p·n⌉−1). Truncating p·n instead of taking its ceiling reads one
// rank too high whenever p·n is integral — p50 of 100 samples is the 50th
// element, not the 51st.
func pctl(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
