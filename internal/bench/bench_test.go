package bench

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"
)

// smokeSpec is a tiny sim matrix exercising strategy and fault dimensions.
func smokeSpec() MatrixSpec {
	return MatrixSpec{
		Runtimes:   []string{"sim"},
		Strategies: []string{"CA", "BL"},
		Workloads:  []string{"school"},
		Clients:    []int{1},
		Faults:     []string{"none", "kill:DB3"},
		Queries:    6,
		Zipf:       0.8,
		Variants:   3,
		Seed:       42,
	}
}

// TestSimDeterminism: identical seeds on the sim runtime reproduce
// byte-identical reports — the property the regression gate banks on.
func TestSimDeterminism(t *testing.T) {
	run := func() []byte {
		r, err := Run(context.Background(), smokeSpec(), "smoke", nil)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		data, err := r.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different reports:\n--- first\n%s\n--- second\n%s", a, b)
	}

	// A different seed must actually change the measurements (the seed
	// reaches the workload draws and variant sequences).
	spec := smokeSpec()
	spec.Seed = 43
	r2, err := Run(context.Background(), spec, "smoke", nil)
	if err != nil {
		t.Fatalf("Run(seed 43): %v", err)
	}
	d2, _ := r2.JSON()
	if bytes.Equal(a, d2) {
		t.Fatal("different seeds produced byte-identical reports")
	}
}

// TestSimCellContent: the measured cells carry both measurement sides with
// sane values, and the fault dimension shows up as degradation.
func TestSimCellContent(t *testing.T) {
	r, err := Run(context.Background(), smokeSpec(), "smoke", nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(r.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(r.Cells))
	}
	for _, c := range r.Cells {
		key := c.Cell.Key()
		if c.Client.Completed != 6 {
			t.Errorf("%s: completed %d, want 6", key, c.Client.Completed)
		}
		if c.Client.P50Micros <= 0 || c.Client.P99Micros < c.Client.P50Micros ||
			c.Client.MaxMicros < c.Client.P99Micros {
			t.Errorf("%s: broken latency ordering p50=%v p99=%v max=%v",
				key, c.Client.P50Micros, c.Client.P99Micros, c.Client.MaxMicros)
		}
		if c.Client.QPS <= 0 {
			t.Errorf("%s: qps %v", key, c.Client.QPS)
		}
		if c.Server.Queries != 6 {
			t.Errorf("%s: server saw %d queries, want 6", key, c.Server.Queries)
		}
		if c.Server.NetBytes <= 0 {
			t.Errorf("%s: no network bytes measured", key)
		}
		if c.Server.CertainRows > 0 || c.Server.MaybeRows > 0 {
			if sum := c.Server.CertainFrac + c.Server.MaybeFrac; sum < 0.99 || sum > 1.01 {
				t.Errorf("%s: fractions sum to %v", key, sum)
			}
		}
		switch c.Cell.Fault {
		case "kill:DB3":
			// Only queries whose variant involves DB3 degrade; the Zipf-hot
			// Q1 does, so some but not necessarily all queries are affected.
			if c.Server.DegradedFrac <= 0 {
				t.Errorf("%s: degraded frac %v with a dead site, want > 0", key, c.Server.DegradedFrac)
			}
			if c.Client.Degraded == 0 {
				t.Errorf("%s: no client-observed degraded answers", key)
			}
			if int64(c.Client.Degraded) != c.Server.DegradedQueries {
				t.Errorf("%s: client saw %d degraded, server recorded %d",
					key, c.Client.Degraded, c.Server.DegradedQueries)
			}
		case "none":
			if c.Server.DegradedFrac != 0 {
				t.Errorf("%s: degraded frac %v with no faults", key, c.Server.DegradedFrac)
			}
		}
	}
	// The dead-site cells must not report identical answer quality to the
	// healthy ones for the same strategy: killing DB3 moves rows to maybe.
	healthy, _ := r.Get("sim/BL/school/c1/none/plain")
	dead, _ := r.Get("sim/BL/school/c1/kill:DB3/plain")
	if dead.Server.MaybeFrac <= healthy.Server.MaybeFrac {
		t.Errorf("maybe frac with dead site %v, healthy %v — fault had no quality effect",
			dead.Server.MaybeFrac, healthy.Server.MaybeFrac)
	}
}

// TestReportRoundTrip: WriteFile → ReadReport is lossless and the schema
// gate refuses foreign versions.
func TestReportRoundTrip(t *testing.T) {
	r, err := Run(context.Background(), MatrixSpec{
		Runtimes: []string{"sim"}, Strategies: []string{"PL"},
		Workloads: []string{"school"}, Queries: 2, Seed: 7,
	}, "roundtrip", nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_roundtrip.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if len(back.Cells) != len(r.Cells) || back.Topic != "roundtrip" || back.Seed != 7 {
		t.Errorf("round trip mangled the report: %+v", back)
	}
	bad := *back
	bad.Schema = SchemaVersion + 1
	if err := bad.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Error("foreign schema version should refuse to load")
	}
}

// TestRunCanceled: a cancelled context stops the matrix run with its error.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, smokeSpec(), "smoke", nil); err == nil {
		t.Fatal("cancelled run should report the context error")
	}
}

// TestValidate: bad dimensions fail fast, before any cell runs.
func TestValidate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*MatrixSpec)
	}{
		{"strategy", func(s *MatrixSpec) { s.Strategies = []string{"XX"} }},
		{"runtime", func(s *MatrixSpec) { s.Runtimes = []string{"warp"} }},
		{"fault", func(s *MatrixSpec) { s.Faults = []string{"explode:DB1"} }},
		{"fault-arity", func(s *MatrixSpec) { s.Faults = []string{"drop:DB1"} }},
		{"workload", func(s *MatrixSpec) { s.Workloads = []string{"nope"} }},
	} {
		spec := smokeSpec()
		tc.mutate(&spec)
		if _, err := Run(context.Background(), spec, "bad", nil); err == nil {
			t.Errorf("%s: bad spec ran anyway", tc.name)
		}
	}
}

// TestBundleStability: the same workload name and seed always builds the
// same federation and variant queries (cells compare apples to apples).
func TestBundleStability(t *testing.T) {
	a, err := BuildBundle("table2", 3, 0.01, 11)
	if err != nil {
		t.Fatalf("BuildBundle: %v", err)
	}
	b, err := BuildBundle("table2", 3, 0.01, 11)
	if err != nil {
		t.Fatalf("BuildBundle: %v", err)
	}
	if len(a.Queries) != 3 || len(a.Bounds) != 3 {
		t.Fatalf("got %d queries, %d bounds", len(a.Queries), len(a.Bounds))
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Errorf("variant %d diverged:\n%s\n%s", i, a.Queries[i], b.Queries[i])
		}
	}
	// Variants differ from each other when the base query has a predicate.
	if len(a.Queries) > 1 && a.Queries[0] == a.Queries[1] {
		t.Logf("note: variants identical (base query may have no predicates): %s", a.Queries[0])
	}
	for _, name := range []string{"school", "table2eq"} {
		if _, err := BuildBundle(name, 4, 0.01, 5); err != nil {
			t.Errorf("BuildBundle(%s): %v", name, err)
		}
	}
}

// TestSummarize: the stats reduction counts outcomes and orders percentiles.
func TestSummarize(t *testing.T) {
	results := []Result{
		{Micros: 100}, {Micros: 300, Degraded: true}, {Micros: 200},
		{Err: context.Canceled}, {Shed: true, Err: context.DeadlineExceeded},
	}
	st := Summarize(results, 1e6) // 1s wall
	if st.Queries != 5 || st.Completed != 3 || st.Errors != 1 || st.Shed != 1 || st.Degraded != 1 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.QPS != 3 {
		t.Errorf("qps = %v, want 3", st.QPS)
	}
	if st.P50Micros != 200 || st.MaxMicros != 300 {
		t.Errorf("percentiles wrong: p50=%v max=%v", st.P50Micros, st.MaxMicros)
	}
	if st.MeanMicros != 200 {
		t.Errorf("mean = %v, want 200", st.MeanMicros)
	}
	empty := Summarize(nil, 0)
	if empty.QPS != 0 || empty.P99Micros != 0 {
		t.Errorf("empty summarize: %+v", empty)
	}
}

// TestParseFault covers the spec grammar's edges.
func TestParseFault(t *testing.T) {
	for _, good := range []string{"none", "", "kill:DB2", "drop:DB1:5", "delay:DB3:1500"} {
		if _, err := parseFault(good); err != nil {
			t.Errorf("parseFault(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"kill", "kill:", "drop:DB1:x", "drop:DB1:-1", "delay:DB1", "zap:DB1"} {
		if _, err := parseFault(bad); err == nil {
			t.Errorf("parseFault(%q) accepted", bad)
		}
	}
	// The factory yields independent plans: consuming one plan's drop
	// budget must not bleed into the next (per-query semantics).
	factory, _ := parseFault("drop:DB1:1")
	p1 := factory()
	p1.BeginOp("DB1")
	if p1.BeginOp("DB1") {
		t.Error("drop budget not consumed")
	}
	if p2 := factory(); !p2.BeginOp("DB1") {
		t.Error("fresh plan inherited a consumed budget")
	}
}

// TestDeadlineSimIgnored: a spec deadline must not perturb sim determinism
// (wall deadlines don't exist in virtual time).
func TestDeadlineSimIgnored(t *testing.T) {
	spec := smokeSpec()
	base, err := Run(context.Background(), spec, "smoke", nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	spec.Deadline = 1 * time.Nanosecond // would shred every query if applied
	tight, err := Run(context.Background(), spec, "smoke", nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range base.Cells {
		if base.Cells[i].Client.Completed != tight.Cells[i].Client.Completed {
			t.Errorf("%s: deadline leaked into the sim runtime", base.Cells[i].Cell.Key())
		}
	}
}
