package bench

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/workload"
)

// QueryFunc executes one query of a driven run: variant selects which query
// text the generator's Zipf drew for this arrival. Implementations must
// honor ctx (the drivers cancel stragglers through it) and classify their
// outcome in the returned Result.
type QueryFunc func(ctx context.Context, variant int) Result

// DrawVariants pre-draws the variant choice for n arrivals. Drawing happens
// single-threaded before any query launches, so the sequence depends only
// on the seed — never on goroutine interleaving. A nil sampler (one query,
// no skew) yields all zeros.
func DrawVariants(z *workload.Zipf, n int) []int {
	out := make([]int, n)
	if z == nil {
		return out
	}
	for i := range out {
		out[i] = z.Next()
	}
	return out
}

// RunClosed drives len(variants) queries through fn from a fixed pool of
// concurrent clients (closed loop: each client issues its next query only
// after its previous one completes — the hetserve -clients/-repeat shape).
// Queries are dealt to clients round-robin by index so the variant sequence
// partition is deterministic. A cancelled ctx stops every client at its
// next issue point and the call returns once all in-flight queries unwind;
// unissued slots come back as zero Results with Err = ctx.Err().
func RunClosed(ctx context.Context, clients int, variants []int, fn QueryFunc) []Result {
	if clients < 1 {
		clients = 1
	}
	if clients > len(variants) {
		clients = len(variants)
	}
	results := make([]Result, len(variants))
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(variants); i += clients {
				if err := ctx.Err(); err != nil {
					results[i] = Result{Err: err}
					continue
				}
				results[i] = fn(ctx, variants[i])
			}
		}(c)
	}
	wg.Wait()
	return results
}

// RunOpen drives one query per arrival offset (open loop: arrivals do not
// wait for completions, so queueing shows up as latency instead of reduced
// offered load). offsets[i] is query i's launch time relative to the run
// start — produce it with workload.Arrivals for a Poisson process. A
// cancelled ctx abandons unlaunched arrivals (their Results carry
// ctx.Err()) and the call returns once every launched query unwinds — no
// goroutine outlives RunOpen.
func RunOpen(ctx context.Context, offsets []time.Duration, variants []int, fn QueryFunc) []Result {
	n := len(offsets)
	if len(variants) < n {
		n = len(variants)
	}
	results := make([]Result, n)
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	var wg sync.WaitGroup
launch:
	for i := 0; i < n; i++ {
		if wait := offsets[i] - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
			}
		}
		if err := ctx.Err(); err != nil {
			for j := i; j < n; j++ {
				results[j] = Result{Err: err}
			}
			break launch
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = fn(ctx, variants[i])
		}(i)
	}
	wg.Wait()
	return results
}

// arrivalSchedule builds the open-loop launch offsets for a cell: a seeded
// Poisson process at rate qps, or an all-at-once burst when qps <= 0.
func arrivalSchedule(rng *rand.Rand, n int, qps float64) []time.Duration {
	return workload.Arrivals(rng, n, qps)
}
