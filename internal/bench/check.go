package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// latencySlackMicros absorbs sub-microsecond float wiggle when comparing
// latencies; a live baseline compared on noisy hardware needs the relative
// tolerance, not this.
const latencySlackMicros = 1.0

// Violation is one regression Check found.
type Violation struct {
	Cell   string  `json:"cell"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s regressed %.2f → %.2f", v.Cell, v.Metric, v.Old, v.New)
}

// Check compares a new report against a baseline under a relative tolerance
// (0.10 = 10%). For every baseline cell it flags:
//
//   - latency regressions: p50/p95/p99 above baseline by more than the
//     tolerance,
//   - throughput regressions: qps below baseline by more than the tolerance,
//   - answer-quality regressions: the maybe or degraded fraction up by more
//     than the tolerance in absolute terms, or client errors appearing where
//     the baseline had none,
//   - coverage regressions: a baseline cell missing from the new report.
//
// Cells only the new report has are fine (the matrix grew). An empty return
// means the new report is no worse than the baseline.
func Check(baseline, current *Report, tolerance float64) []Violation {
	var out []Violation
	for _, old := range baseline.Cells {
		key := old.Cell.Key()
		cur, ok := current.Get(key)
		if !ok {
			out = append(out, Violation{Cell: key, Metric: "missing"})
			continue
		}
		add := func(metric string, oldV, newV float64) {
			out = append(out, Violation{Cell: key, Metric: metric, Old: oldV, New: newV})
		}
		lat := func(metric string, oldV, newV float64) {
			if newV > oldV*(1+tolerance)+latencySlackMicros {
				add(metric, oldV, newV)
			}
		}
		lat("p50_us", old.Client.P50Micros, cur.Client.P50Micros)
		lat("p95_us", old.Client.P95Micros, cur.Client.P95Micros)
		lat("p99_us", old.Client.P99Micros, cur.Client.P99Micros)
		if cur.Client.QPS < old.Client.QPS*(1-tolerance) {
			add("qps", old.Client.QPS, cur.Client.QPS)
		}
		if cur.Server.MaybeFrac > old.Server.MaybeFrac+tolerance {
			add("maybe_frac", old.Server.MaybeFrac, cur.Server.MaybeFrac)
		}
		if cur.Server.DegradedFrac > old.Server.DegradedFrac+tolerance {
			add("degraded_frac", old.Server.DegradedFrac, cur.Server.DegradedFrac)
		}
		if old.Client.Errors == 0 && cur.Client.Errors > 0 {
			add("errors", float64(old.Client.Errors), float64(cur.Client.Errors))
		}
	}
	return out
}

// ParseTolerance reads a tolerance flag: "10%" or "0.10".
func ParseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bench: bad tolerance %q (want e.g. 10%% or 0.10)", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}
