package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/obs/agg"
	"github.com/hetfed/hetfed/internal/obs/slo"
	"github.com/hetfed/hetfed/internal/version"
)

// ObsSpec shapes an observability-overhead run: the same live school
// workload measured twice — once bare, once with the full cluster
// observability plane (scraper polling every site's /metrics + /healthz
// over HTTP, SLO engine evaluating on every pass) running against the
// serving processes. The pair quantifies what /cluster costs the queries
// it observes.
type ObsSpec struct {
	// Queries driven per cell (identical for both modes).
	Queries int `json:"queries"`
	// Clients is the closed-loop worker count.
	Clients int `json:"clients"`
	// Rounds is how many times each mode runs. The modes are interleaved
	// within each round (alternating which goes first, so neither mode
	// systematically collects warmup or frequency-scaling drift) and the
	// gate judges the best same-round wall-clock ratio: pairing cancels
	// machine drift between rounds, and taking the minimum makes the gate
	// robust to one-sided load spikes — a real regression in the plane
	// slows every round, a transient spike only one. 0 means 5.
	Rounds int `json:"rounds,omitempty"`
	// Seed roots the load generator, so both modes drive the identical
	// query sequence.
	Seed int64 `json:"seed"`
	// ScrapeInterval is the scraped mode's polling cadence (0 = 100ms —
	// deliberately 20× more aggressive than the production 2s default, so
	// the measured overhead upper-bounds the real deployment's).
	ScrapeInterval time.Duration `json:"scrape_interval,omitempty"`
	// MaxOverhead, when positive, gates the run: it fails if the scraped
	// mode's wall clock exceeds MaxOverhead × the baseline's.
	MaxOverhead float64 `json:"max_overhead,omitempty"`
}

// ObsCell is one mode's measured run.
type ObsCell struct {
	// Mode is "baseline" (no observability plane) or "scraped" (scraper +
	// SLO engine polling the cluster while it serves).
	Mode   string      `json:"mode"`
	Client ClientStats `json:"client"`
	// Overhead is the best same-round ratio of this cell's wall clock over
	// the baseline's (1.0 for the baseline itself) — the price of being
	// watched, with cross-round machine drift paired away.
	Overhead float64 `json:"overhead"`

	// Scraper-side truth, scraped mode only: completed scrape passes per
	// target, failures, and the federation rollup's final liveness.
	Scrapes        int64 `json:"scrapes,omitempty"`
	ScrapeFailures int64 `json:"scrape_failures,omitempty"`
	SitesLive      int   `json:"sites_live,omitempty"`
	SitesTotal     int   `json:"sites_total,omitempty"`
}

// ObsReport is an observability-overhead run's diffable record. Wall-clock
// fields are machine-dependent; regression gating uses the run's own
// invariant (the relative overhead), not cross-run diffs.
type ObsReport struct {
	Schema  int       `json:"schema"`
	Topic   string    `json:"topic"`
	Version string    `json:"version"`
	Spec    ObsSpec   `json:"spec"`
	Cells   []ObsCell `json:"cells"`
}

// JSON renders the report in its canonical indented form.
func (r *ObsReport) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encode obs report: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteFile writes the report to path in canonical form.
func (r *ObsReport) WriteFile(path string) error {
	data, err := r.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}

// obsModes are the two cells of every observability run.
var obsModes = []string{"baseline", "scraped"}

// RunObs measures the observability plane's cost: the identical live BL
// school workload with and without the scraper + SLO engine watching the
// cluster. Rounds are interleaved across modes (a transient load spike
// lands on both, not one mode's only sample) and the report keeps each
// mode's best round. The scraped cell verifies its own wiring — every
// scrape target must end the run live, and at least one full scrape pass
// must have completed — and the relative overhead is gated by
// spec.MaxOverhead, so the run doubles as a regression gate. progress,
// when non-nil, receives one line per cell.
func RunObs(ctx context.Context, spec ObsSpec, progress func(string)) (*ObsReport, error) {
	if spec.Queries < 1 {
		spec.Queries = 1
	}
	if spec.Clients < 1 {
		spec.Clients = 1
	}
	if spec.Rounds < 1 {
		spec.Rounds = 5
	}
	if spec.ScrapeInterval <= 0 {
		spec.ScrapeInterval = 100 * time.Millisecond
	}
	report := &ObsReport{
		Schema:  SchemaVersion,
		Topic:   "obs",
		Version: version.String(),
		Spec:    spec,
	}

	// One-variant school bundle: both modes drive the same Q1 stream, so
	// the delta between the cells is the observability plane alone.
	bundle, err := BuildBundle("school", 1, 1, spec.Seed)
	if err != nil {
		return nil, err
	}
	matrix := MatrixSpec{Queries: spec.Queries, Variants: 1, Seed: spec.Seed}
	cell := Cell{Runtime: "live", Strategy: "BL", Workload: "school",
		Clients: spec.Clients, Fault: "none", Serving: "plain", Seed: spec.Seed}

	cells := make(map[string]*ObsCell, len(obsModes))
	bestWall := make(map[string]float64, len(obsModes))
	for _, mode := range obsModes {
		cells[mode] = &ObsCell{Mode: mode}
	}

	bestRatio := 0.0
	for round := 0; round < spec.Rounds; round++ {
		order := obsModes
		if round%2 == 1 {
			order = []string{obsModes[1], obsModes[0]}
		}
		roundWall := make(map[string]float64, len(obsModes))
		for _, mode := range order {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			stats, scraped, err := runObsCell(ctx, spec, matrix, cell, bundle, mode == "scraped")
			if err != nil {
				return nil, fmt.Errorf("bench: obs %s round %d: %w", mode, round, err)
			}
			roundWall[mode] = stats.WallMillis
			if prev, seen := bestWall[mode]; !seen || stats.WallMillis < prev {
				bestWall[mode] = stats.WallMillis
				c := cells[mode]
				c.Client = stats
				c.Scrapes = scraped.scrapes
				c.ScrapeFailures = scraped.failures
				c.SitesLive = scraped.live
				c.SitesTotal = scraped.total
			}
		}
		if roundWall["baseline"] > 0 {
			ratio := roundWall["scraped"] / roundWall["baseline"]
			if round == 0 || ratio < bestRatio {
				bestRatio = ratio
			}
		}
	}

	for _, mode := range obsModes {
		c := cells[mode]
		if mode == "baseline" {
			c.Overhead = 1.0
		} else {
			c.Overhead = round2(bestRatio)
		}
		report.Cells = append(report.Cells, *c)
		if progress != nil {
			progress(fmt.Sprintf("%-9s wall %9.2f ms (%7.0f qps, p99 %8.2f us, %.2fx baseline)  scrapes %d (%d failed)",
				c.Mode, c.Client.WallMillis, c.Client.QPS, c.Client.P99Micros,
				c.Overhead, c.Scrapes, c.ScrapeFailures))
		}
	}

	// Invariant: being watched must not meaningfully slow the watched.
	if spec.MaxOverhead > 0 {
		for _, c := range report.Cells {
			if c.Mode == "scraped" && c.Overhead > spec.MaxOverhead {
				return report, fmt.Errorf("bench: scrape overhead %.2fx exceeds the %.2fx gate",
					c.Overhead, spec.MaxOverhead)
			}
		}
	}
	return report, nil
}

// obsScrapeStats is the scraper-side truth of one scraped-mode round.
type obsScrapeStats struct {
	scrapes  int64
	failures int64
	live     int
	total    int
}

// runObsCell runs one mode once: a fresh live cluster, optionally with the
// observability plane polling it, driven by the closed-loop generator.
func runObsCell(ctx context.Context, spec ObsSpec, matrix MatrixSpec, cell Cell,
	bundle *Bundle, watch bool) (ClientStats, obsScrapeStats, error) {
	lc, err := startLiveCluster(matrix, cell, bundle)
	if err != nil {
		return ClientStats{}, obsScrapeStats{}, err
	}
	defer lc.close()
	_ = lc.coord.Ping()

	var scraped obsScrapeStats
	var scraper *agg.Scraper
	aggReg := metrics.New()
	if watch {
		// The plane under test: the coordinator observing itself in
		// process plus every site over its real HTTP obs surface, with the
		// SLO engine evaluating on each pass — exactly the -cluster-scrape
		// deployment shape.
		targets := []agg.Target{{Site: coordinatorID, Local: lc.coordReg.Snapshot}}
		for i, srv := range lc.servers {
			base := lc.scrapes[i][:len(lc.scrapes[i])-len("/metrics")]
			targets = append(targets, agg.Target{Site: string(srv.Site()), URL: base})
		}
		scraper, err = agg.New(agg.Config{
			Site:     coordinatorID,
			Targets:  targets,
			Interval: spec.ScrapeInterval,
			Window:   time.Minute,
			Metrics:  aggReg,
		})
		if err != nil {
			return ClientStats{}, obsScrapeStats{}, err
		}
		rules, err := slo.ParseRules("availability >= 0.99; query_latency p99 < 10s over 1m")
		if err != nil {
			return ClientStats{}, obsScrapeStats{}, err
		}
		engine, err := slo.New(slo.Config{Site: coordinatorID, Source: scraper,
			Rules: rules, Metrics: aggReg})
		if err != nil {
			return ClientStats{}, obsScrapeStats{}, err
		}
		scraper.SetOnScrape(engine.Evaluate)
		scraper.Start()
		defer scraper.Stop()
	}

	rng := rand.New(rand.NewSource(cell.Seed))
	variants := DrawVariants(zipfFor(rng, matrix, bundle), spec.Queries)
	fn := func(ctx context.Context, variant int) Result {
		ans, elapsed, err := lc.coord.QueryContext(ctx, bundle.Queries[variant], exec.BL)
		if err != nil {
			return Result{Err: err}
		}
		return Result{
			Micros:      float64(elapsed.Nanoseconds()) / 1e3,
			Degraded:    ans.Degraded,
			Interrupted: ans.Interrupted(),
		}
	}
	start := time.Now()
	results := RunClosed(ctx, spec.Clients, variants, fn)
	wallMicros := float64(time.Since(start).Nanoseconds()) / 1e3

	if watch {
		// One final synchronous pass so short rounds still have complete
		// coverage, then verify the plane actually watched the cluster.
		scraper.ScrapeOnce(ctx)
		scraper.Stop()
		roll := scraper.Rollup()
		scraped.live, scraped.total = roll.Fed.SitesLive, roll.Fed.SitesTotal
		snap := aggReg.Snapshot()
		scraped.scrapes = snap.Sum("scrape_total")
		scraped.failures = snap.Sum("scrape_failures_total")
		if scraped.live != scraped.total {
			return ClientStats{}, scraped, fmt.Errorf("scraped cell ended with %d/%d sites live",
				scraped.live, scraped.total)
		}
		if scraped.scrapes == 0 {
			return ClientStats{}, scraped, fmt.Errorf("scraper completed no passes")
		}
	}
	return Summarize(results, wallMicros), scraped, nil
}
