package bench

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/workload"
)

// Bundle is one benchmark workload: a federation plus its query variants.
// Variant 0 is the hot query under Zipfian skew; every variant is carried
// both as parseable text (what the live coordinator's parser consumes) and
// in bound form (what the in-process engine consumes), guaranteed
// equivalent because the bound form is compiled from the same AST that
// rendered the text.
type Bundle struct {
	Name      string
	Global    *schema.Global
	Databases map[object.SiteID]*store.Database
	Tables    *gmap.Tables
	Queries   []string
	Bounds    []*query.Bound
}

// schoolVariantTexts are the query variants over the paper's school
// federation: Q1 plus progressively narrower relatives, so Zipfian skew has
// distinct shapes to concentrate on.
var schoolVariantTexts = []string{
	school.Q1,
	`select name from Student where age < 30 and address.city = "Taipei"`,
	`select name, advisor.name from Student where advisor.speciality = "database"`,
	`select name from Student where advisor.department.name = "CS" and sex = "F"`,
	`select name, address.city from Student where address.city = "Taipei"`,
}

// BuildBundle constructs a named workload. Supported names:
//
//   - "school": the paper's running example federation with the Q1 family
//     of query variants (scale/seed are ignored — the fixture is fixed).
//   - "table2": a federation drawn from the paper's Table 2 ranges with
//     range predicates; variants sweep the root predicate's literal, so
//     variants differ in selectivity.
//   - "table2eq": Table 2 with equality predicates (the shape the
//     signature-assisted strategies accelerate).
//
// scale multiplies the Table 2 extent sizes (0 or 1 = paper scale; use
// ~0.01 for smoke runs). The same name/variants/scale/seed always builds an
// identical bundle, so every cell of a matrix queries the same federation.
func BuildBundle(name string, variants int, scale float64, seed int64) (*Bundle, error) {
	if variants < 1 {
		variants = 1
	}
	switch name {
	case "school":
		return schoolBundle(variants)
	case "table2":
		return table2Bundle(name, variants, scale, seed, false)
	case "table2eq":
		return table2Bundle(name, variants, scale, seed, true)
	default:
		return nil, fmt.Errorf("bench: unknown workload %q (want school, table2 or table2eq)", name)
	}
}

func schoolBundle(variants int) (*Bundle, error) {
	fx := school.New()
	b := &Bundle{
		Name:      "school",
		Global:    fx.Global,
		Databases: fx.Databases,
		Tables:    fx.Mapping,
	}
	for v := 0; v < variants; v++ {
		text := schoolVariantTexts[v%len(schoolVariantTexts)]
		q, err := query.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("bench: school variant %d: %w", v, err)
		}
		bound, err := query.Bind(q, fx.Global)
		if err != nil {
			return nil, fmt.Errorf("bench: school variant %d: %w", v, err)
		}
		b.Queries = append(b.Queries, text)
		b.Bounds = append(b.Bounds, bound)
	}
	return b, nil
}

func table2Bundle(name string, variants int, scale float64, seed int64, equality bool) (*Bundle, error) {
	if scale <= 0 {
		scale = 1
	}
	ranges := workload.DefaultRanges()
	ranges.EqualityPreds = equality
	ranges.NObjects[0] = scaled(ranges.NObjects[0], scale)
	ranges.NObjects[1] = scaled(ranges.NObjects[1], scale)
	rng := rand.New(rand.NewSource(seed))
	w, err := workload.Generate(ranges.Draw(rng), rng)
	if err != nil {
		return nil, fmt.Errorf("bench: generate %s: %w", name, err)
	}
	b := &Bundle{
		Name:      name,
		Global:    w.Global,
		Databases: w.Databases,
		Tables:    w.Tables,
	}
	for v := 0; v < variants; v++ {
		q := variantQuery(w.Query, v, variants, equality)
		bound, err := query.Bind(q, w.Global)
		if err != nil {
			return nil, fmt.Errorf("bench: %s variant %d: %w", name, v, err)
		}
		b.Queries = append(b.Queries, q.String())
		b.Bounds = append(b.Bounds, bound)
	}
	return b, nil
}

// scaled shrinks a Table 2 extent bound, clamped so even tiny smoke scales
// keep a real extent.
func scaled(n int, scale float64) int {
	v := int(math.Round(float64(n) * scale))
	if v < 20 {
		v = 20
	}
	return v
}

// variantQuery derives variant v of a generated query by perturbing its
// first predicate's literal: range predicates sweep the literal (and with
// it the selectivity) across variants, equality predicates probe different
// domain values. Variant 0 is the generated query itself.
func variantQuery(base *query.Query, v, variants int, equality bool) *query.Query {
	q := &query.Query{
		Range:   base.Range,
		Targets: base.Targets,
		Preds:   append([]query.Predicate(nil), base.Preds...),
		Groups:  base.Groups,
	}
	if v == 0 || len(q.Preds) == 0 {
		return q
	}
	p := q.Preds[0]
	if p.Literal.Kind() == object.KindInt {
		if equality {
			p.Literal = object.Int(int64(v))
		} else {
			scaledLit := p.Literal.Int64() * int64(variants-v) / int64(variants)
			if scaledLit < 1 {
				scaledLit = 1
			}
			p.Literal = object.Int(scaledLit)
		}
		q.Preds[0] = p
	}
	return q
}
