// Package bench is the repository's scenario-matrix experiment runner: the
// measurement half of the paper's contribution, industrialized. A matrix
// sweeps strategy (CA/BL/PL/SBL/SPL) × workload shape (the school example
// and Table 2 draws) × concurrency × fault plan × serving config, drives
// each cell with a seeded load generator (closed-loop clients or an
// open-loop Poisson schedule with Zipfian query-variant skew), and measures
// each cell from two sides:
//
//   - client-observed: p50/p95/p99/max latency, throughput, error/shed
//     counts — what a caller experiences;
//   - server truth: /metrics snapshot deltas scraped from the serving
//     processes — bytes moved, cache hits, batch efficiency, and the
//     answer-quality fractions (certain vs maybe vs degraded) that
//     distinguish this system's SLOs from plain latency SLOs.
//
// Cells run on either runtime: "live" spawns real TCP site servers (plus
// their observability endpoints, scraped over HTTP) and tears them down per
// cell; "sim" executes on the discrete-event fabric, where identical seeds
// reproduce byte-identical cell results — the regression-gate currency.
//
// A run emits a schema-versioned, diffable BENCH_<topic>.json; Check
// compares two reports under a tolerance for regression gating, and
// Evaluate answers SLO questions ("can 5 sites sustain 2k qps at p99 <
// 50ms with ≤ 20% maybe answers?") with a pass/fail and the limiting
// metric.
package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"time"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump on breaking
// changes; Check refuses to compare across schema versions.
const SchemaVersion = 1

// ServingSpec is one cache/batch serving configuration of the sweep.
type ServingSpec struct {
	// Name labels the configuration in cell keys ("plain", "cached", …).
	Name string `json:"name"`
	// Cache enables the sites' read-through lookup cache.
	Cache bool `json:"cache,omitempty"`
	// BatchWindow coalesces outbound check RPCs per peer across this flush
	// window (live runtime only; 0 = no batching).
	BatchWindow time.Duration `json:"batch_window,omitempty"`
}

// MatrixSpec defines a benchmark matrix: the sweep dimensions and the load
// shape shared by every cell. The cell set is the cross product of
// Runtimes × Strategies × Workloads × Clients × Faults × Serving.
type MatrixSpec struct {
	// Runtimes are the execution substrates: "live" (real TCP servers,
	// wall-clock latency, scraped /metrics) and/or "sim" (discrete-event
	// fabric, virtual latency, deterministic from Seed).
	Runtimes []string `json:"runtimes"`
	// Strategies are execution strategy names: CA, BL, PL, SBL, SPL.
	Strategies []string `json:"strategies"`
	// Workloads name the federations queried: "school" (the paper's
	// running example) and/or "table2" (a seeded draw from the paper's
	// Table 2 ranges; "table2eq" uses equality predicates).
	Workloads []string `json:"workloads"`
	// Clients are the concurrency levels: closed-loop worker counts, or —
	// when RateQPS is set — multipliers on the open-loop arrival rate.
	Clients []int `json:"clients"`
	// Faults are fault-plan specs: "none", "kill:SITE",
	// "drop:SITE:N" (dark after N operations), "delay:SITE:MICROS".
	Faults []string `json:"faults"`
	// Serving are the cache/batch variants; empty means one plain config.
	Serving []ServingSpec `json:"serving,omitempty"`

	// Queries is the number of queries driven per cell.
	Queries int `json:"queries"`
	// RateQPS, when positive, switches the live driver to open loop:
	// arrivals follow a seeded Poisson schedule at RateQPS × cell clients
	// per second and do not wait for completions. 0 = closed loop.
	RateQPS float64 `json:"rate_qps,omitempty"`
	// Zipf is the query-variant popularity skew (0 = uniform).
	Zipf float64 `json:"zipf"`
	// Variants is the number of query variants Zipf picks between (≥ 1).
	Variants int `json:"variants"`
	// MaxConcurrent bounds coordinator admission (0 = unbounded).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// Deadline is the per-query end-to-end budget (live runtime only;
	// the sim runtime ignores it to stay wall-clock free). 0 = none.
	Deadline time.Duration `json:"deadline,omitempty"`
	// Scale multiplies the Table 2 extent sizes for the table2 workloads
	// (1.0 = paper scale; keep small for smoke runs). 0 = 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Seed roots every random choice: workload draws, arrival schedules,
	// Zipf key sequences. Identical seeds on the sim runtime reproduce
	// byte-identical cell results.
	Seed int64 `json:"seed"`
}

// Cell identifies one matrix cell.
type Cell struct {
	Runtime  string `json:"runtime"`
	Strategy string `json:"strategy"`
	Workload string `json:"workload"`
	Clients  int    `json:"clients"`
	Fault    string `json:"fault"`
	Serving  string `json:"serving"`
	// Seed is the cell's derived seed (stable under matrix reordering).
	Seed int64 `json:"seed"`
}

// Key renders the cell's identity — the join key for regression checks.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/%s/%s/c%d/%s/%s",
		c.Runtime, c.Strategy, c.Workload, c.Clients, c.Fault, c.Serving)
}

// ClientStats is the client-observed side of a cell: what the load
// generator measured. Latencies are microseconds — wall-clock on the live
// runtime, virtual time on the sim runtime.
type ClientStats struct {
	Queries     int     `json:"queries"`
	Completed   int     `json:"completed"`
	Errors      int     `json:"errors"`
	Shed        int     `json:"shed"`
	Degraded    int     `json:"degraded"`
	Interrupted int     `json:"interrupted"`
	WallMillis  float64 `json:"wall_ms"`
	QPS         float64 `json:"qps"`
	MeanMicros  float64 `json:"mean_us"`
	P50Micros   float64 `json:"p50_us"`
	P95Micros   float64 `json:"p95_us"`
	P99Micros   float64 `json:"p99_us"`
	MaxMicros   float64 `json:"max_us"`
}

// ServerStats is the server-truth side of a cell, extracted from /metrics
// snapshot deltas (scraped over HTTP on the live runtime, read from the
// engine's registry on the sim runtime). Fractions are the answer-quality
// axis: of everything the strategy returned, how much was certain, how
// much merely possible, and how many queries were degraded by failure.
type ServerStats struct {
	Queries          int64   `json:"queries"`
	CertainRows      int64   `json:"certain_rows"`
	MaybeRows        int64   `json:"maybe_rows"`
	CertainFrac      float64 `json:"certain_frac"`
	MaybeFrac        float64 `json:"maybe_frac"`
	DegradedQueries  int64   `json:"degraded_queries"`
	DegradedFrac     float64 `json:"degraded_frac"`
	NetBytes         int64   `json:"net_bytes"`
	DiskBytes        int64   `json:"disk_bytes,omitempty"`
	CPUOps           int64   `json:"cpu_ops,omitempty"`
	ChecksDispatched int64   `json:"checks_dispatched,omitempty"`
	CacheHits        int64   `json:"cache_hits,omitempty"`
	CacheMisses      int64   `json:"cache_misses,omitempty"`
	CacheHitRate     float64 `json:"cache_hit_rate,omitempty"`
	CheckBatches     int64   `json:"check_batches,omitempty"`
	BatchedGroups    int64   `json:"batched_groups,omitempty"`
	BatchEfficiency  float64 `json:"batch_efficiency,omitempty"`
	Shed             int64   `json:"shed,omitempty"`
	DeadlineExceeded int64   `json:"deadline_exceeded,omitempty"`
	Canceled         int64   `json:"canceled,omitempty"`
	SiteUnavailable  int64   `json:"site_unavailable,omitempty"`
}

// CellResult is one measured cell.
type CellResult struct {
	Cell   Cell        `json:"cell"`
	Client ClientStats `json:"client"`
	Server ServerStats `json:"server"`
}

// Report is one benchmark run: the matrix, its provenance, and every cell's
// results, ordered by cell key so the JSON form is diffable.
type Report struct {
	Schema  int          `json:"schema"`
	Topic   string       `json:"topic"`
	Version string       `json:"version"`
	Seed    int64        `json:"seed"`
	Matrix  MatrixSpec   `json:"matrix"`
	Cells   []CellResult `json:"cells"`
}

// sortCells orders results by cell key for stable, diffable output.
func sortCells(cells []CellResult) {
	sort.Slice(cells, func(i, j int) bool {
		return cells[i].Cell.Key() < cells[j].Cell.Key()
	})
}

// JSON renders the report in its canonical indented, cell-key-ordered form.
func (r *Report) JSON() ([]byte, error) {
	sortCells(r.Cells)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encode report: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteFile writes the report to path in canonical form.
func (r *Report) WriteFile(path string) error {
	data, err := r.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}

// Get returns the result for a cell key.
func (r *Report) Get(key string) (CellResult, bool) {
	for _, c := range r.Cells {
		if c.Cell.Key() == key {
			return c, true
		}
	}
	return CellResult{}, false
}

// ReadReport loads a report written by WriteFile and validates its schema
// version.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: read %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema %d, this build reads %d",
			path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// cellSeed derives a cell's seed from the matrix seed and the cell's
// identity, so a cell's randomness is stable when the matrix around it is
// reordered or extended.
func cellSeed(base int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return base ^ int64(h.Sum64())
}
