package bench

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRunObsSmoke: one observability-overhead run end to end — both modes
// over real TCP, the scraped mode with the full scraper + SLO plane
// polling at an aggressive cadence.
func TestRunObsSmoke(t *testing.T) {
	spec := ObsSpec{
		Queries:        12,
		Clients:        2,
		Rounds:         1,
		Seed:           7,
		ScrapeInterval: 20 * time.Millisecond,
	}
	var lines []string
	r, err := RunObs(context.Background(), spec, func(s string) { lines = append(lines, s) })
	if err != nil {
		t.Fatalf("RunObs: %v", err)
	}
	if len(r.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(r.Cells))
	}
	byMode := map[string]ObsCell{}
	for _, c := range r.Cells {
		byMode[c.Mode] = c
	}
	base, scraped := byMode["baseline"], byMode["scraped"]
	if base.Client.Completed != spec.Queries || scraped.Client.Completed != spec.Queries {
		t.Fatalf("completed %d/%d, want %d each",
			base.Client.Completed, scraped.Client.Completed, spec.Queries)
	}
	if base.Overhead != 1.0 {
		t.Errorf("baseline overhead = %v, want 1.0", base.Overhead)
	}
	if scraped.Overhead <= 0 {
		t.Errorf("scraped overhead = %v, want > 0", scraped.Overhead)
	}
	// The plane really watched: passes completed against every target
	// (coordinator + 3 school sites) and all ended live.
	if scraped.Scrapes == 0 {
		t.Errorf("scraped cell recorded no scrape passes")
	}
	if scraped.SitesLive != 4 || scraped.SitesTotal != 4 {
		t.Errorf("rollup liveness %d/%d, want 4/4", scraped.SitesLive, scraped.SitesTotal)
	}
	if base.Scrapes != 0 || base.SitesTotal != 0 {
		t.Errorf("baseline cell carries scraper stats: %+v", base)
	}
	if len(lines) != 2 || !strings.Contains(lines[1], "scraped") {
		t.Errorf("progress lines = %q", lines)
	}
}

// TestRunObsGate: an impossible gate must fail the run while still
// returning the measured report.
func TestRunObsGate(t *testing.T) {
	spec := ObsSpec{
		Queries:        4,
		Clients:        1,
		Rounds:         1,
		Seed:           7,
		ScrapeInterval: 20 * time.Millisecond,
		MaxOverhead:    0.01,
	}
	r, err := RunObs(context.Background(), spec, nil)
	if err == nil {
		t.Fatal("0.01x overhead gate passed")
	}
	if !strings.Contains(err.Error(), "gate") {
		t.Errorf("err = %v, want overhead gate failure", err)
	}
	if r == nil || len(r.Cells) != 2 {
		t.Errorf("gated run did not return the measured report: %+v", r)
	}
}
