package bench

import (
	"context"
	"testing"
	"time"
)

// baselineReport builds a deterministic sim report to gate against.
func baselineReport(t *testing.T) *Report {
	t.Helper()
	r, err := Run(context.Background(), smokeSpec(), "gate", nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

// TestCheckNoFalsePositives: a report checked against itself is clean, as
// is a rerun with the same seed (byte-identical on the sim runtime).
func TestCheckNoFalsePositives(t *testing.T) {
	base := baselineReport(t)
	if v := Check(base, base, 0.10); len(v) != 0 {
		t.Fatalf("self-check found %d violations: %v", len(v), v)
	}
	rerun := baselineReport(t)
	if v := Check(base, rerun, 0.10); len(v) != 0 {
		t.Fatalf("identical rerun flagged: %v", v)
	}
}

// TestCheckCatchesRegressions: injected regressions at/over tolerance fail,
// sub-tolerance drift passes.
func TestCheckCatchesRegressions(t *testing.T) {
	base := baselineReport(t)

	worse := baselineReport(t)
	worse.Cells[0].Client.P99Micros *= 1.5
	worse.Cells[1].Client.QPS *= 0.5
	worse.Cells[2].Server.MaybeFrac += 0.5
	worse.Cells[3].Client.Errors = 2
	v := Check(base, worse, 0.10)
	if len(v) != 4 {
		t.Fatalf("got %d violations, want 4: %v", len(v), v)
	}
	seen := map[string]bool{}
	for _, viol := range v {
		seen[viol.Metric] = true
		if viol.String() == "" {
			t.Error("empty violation rendering")
		}
	}
	for _, m := range []string{"p99_us", "qps", "maybe_frac", "errors"} {
		if !seen[m] {
			t.Errorf("metric %s not flagged (flagged: %v)", m, seen)
		}
	}

	// Drift inside the tolerance is not a regression.
	drift := baselineReport(t)
	for i := range drift.Cells {
		drift.Cells[i].Client.P99Micros *= 1.05
		drift.Cells[i].Client.QPS *= 0.95
	}
	if v := Check(base, drift, 0.10); len(v) != 0 {
		t.Fatalf("5%% drift flagged under 10%% tolerance: %v", v)
	}

	// A vanished cell is a coverage regression.
	shrunk := baselineReport(t)
	shrunk.Cells = shrunk.Cells[1:]
	v = Check(base, shrunk, 0.10)
	if len(v) != 1 || v[0].Metric != "missing" {
		t.Fatalf("missing cell not flagged: %v", v)
	}
	// A grown matrix is fine.
	if v := Check(shrunk, base, 0.10); len(v) != 0 {
		t.Fatalf("extra cells flagged: %v", v)
	}
}

func TestParseTolerance(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{{"10%", 0.10}, {"0.10", 0.10}, {" 25% ", 0.25}, {"0", 0}} {
		got, err := ParseTolerance(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseTolerance(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "x%", "-5%"} {
		if _, err := ParseTolerance(bad); err == nil {
			t.Errorf("ParseTolerance(%q) accepted", bad)
		}
	}
}

// TestSLOVerdicts: pass/fail with the limiting metric named.
func TestSLOVerdicts(t *testing.T) {
	res := CellResult{
		Cell:   Cell{Runtime: "sim", Strategy: "BL", Workload: "school", Clients: 4, Fault: "none", Serving: "plain"},
		Client: ClientStats{QPS: 2500, P99Micros: 40000, Completed: 100},
		Server: ServerStats{MaybeFrac: 0.15, DegradedFrac: 0},
	}
	pass := EvaluateSLO(res, SLO{
		MinQPS: 2000, P99: 50 * time.Millisecond,
		MaxMaybeFrac: 0.20, MaxDegradedFrac: -1, NoErrors: true,
	})
	if !pass.Pass {
		t.Fatalf("should pass: %+v", pass)
	}
	if pass.Limiting == "" {
		t.Error("passing verdict should still name the tightest metric")
	}
	if len(pass.Checks) != 4 {
		t.Errorf("got %d checks, want 4 (degraded bound unset)", len(pass.Checks))
	}

	fail := EvaluateSLO(res, SLO{MinQPS: 3000, P99: 50 * time.Millisecond, MaxMaybeFrac: 0.20, MaxDegradedFrac: -1})
	if fail.Pass || fail.Limiting != "qps" {
		t.Fatalf("want qps-limited failure, got %+v", fail)
	}

	// Two violations: the deeper one is limiting (maybe frac at 3× its
	// bound is deeper than qps at 1.2× below its floor).
	fail2 := EvaluateSLO(res, SLO{MinQPS: 3000, MaxMaybeFrac: 0.05, MaxDegradedFrac: -1})
	if fail2.Pass || fail2.Limiting != "maybe_frac" {
		t.Fatalf("want maybe_frac-limited failure, got limiting=%q", fail2.Limiting)
	}

	// Unset bounds evaluate nothing — trivially passing, no limiting metric.
	empty := EvaluateSLO(res, SLO{MaxMaybeFrac: -1, MaxDegradedFrac: -1})
	if !empty.Pass || len(empty.Checks) != 0 {
		t.Fatalf("unset SLO should be empty-pass: %+v", empty)
	}

	bad := EvaluateSLO(CellResult{Client: ClientStats{Errors: 3}}, SLO{MaxMaybeFrac: -1, MaxDegradedFrac: -1, NoErrors: true})
	if bad.Pass || bad.Limiting != "errors" {
		t.Fatalf("errors should fail NoErrors: %+v", bad)
	}
}
