package bench

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestLiveCellSmoke: one live-TCP cell end to end — real servers, scraped
// /metrics deltas, closed-loop concurrent clients.
func TestLiveCellSmoke(t *testing.T) {
	spec := MatrixSpec{
		Runtimes:   []string{"live"},
		Strategies: []string{"BL"},
		Workloads:  []string{"school"},
		Clients:    []int{2},
		Faults:     []string{"none"},
		Queries:    6,
		Zipf:       0.8,
		Variants:   2,
		Seed:       1,
	}
	r, err := Run(context.Background(), spec, "live-smoke", nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(r.Cells) != 1 {
		t.Fatalf("got %d cells", len(r.Cells))
	}
	c := r.Cells[0]
	if c.Client.Completed != 6 || c.Client.Errors != 0 {
		t.Fatalf("completed %d errors %d, want 6/0", c.Client.Completed, c.Client.Errors)
	}
	if c.Client.P50Micros <= 0 || c.Client.QPS <= 0 {
		t.Errorf("client stats empty: %+v", c.Client)
	}
	// Server truth scraped over HTTP: the coordinator's window saw exactly
	// the driven queries and real bytes moved.
	if c.Server.Queries != 6 {
		t.Errorf("scraped %d queries, want 6", c.Server.Queries)
	}
	if c.Server.NetBytes <= 0 {
		t.Errorf("scraped no network bytes")
	}
	if c.Server.DegradedFrac != 0 {
		t.Errorf("degraded frac %v on a healthy cluster", c.Server.DegradedFrac)
	}
}

// TestLiveCellDegraded: a live cell with a killed site returns degraded
// answers and the scrape window reports the quality drop.
func TestLiveCellDegraded(t *testing.T) {
	spec := MatrixSpec{
		Runtimes:   []string{"live"},
		Strategies: []string{"PL"},
		Workloads:  []string{"school"},
		Clients:    []int{1},
		Faults:     []string{"kill:DB3"},
		Queries:    3,
		Variants:   1,
		Seed:       2,
	}
	r, err := Run(context.Background(), spec, "live-degraded", nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := r.Cells[0]
	if c.Client.Degraded != c.Client.Completed || c.Client.Completed == 0 {
		t.Errorf("degraded %d of %d completed, want all", c.Client.Degraded, c.Client.Completed)
	}
	if c.Server.DegradedFrac != 1 {
		t.Errorf("scraped degraded frac %v, want 1", c.Server.DegradedFrac)
	}
}

// TestLiveServingDimensions: cache and batch serving configs reach the
// servers — the cached cell's scrape shows lookup-cache traffic.
func TestLiveServingDimensions(t *testing.T) {
	spec := MatrixSpec{
		Runtimes:   []string{"live"},
		Strategies: []string{"BL"},
		Workloads:  []string{"school"},
		Clients:    []int{2},
		Faults:     []string{"none"},
		Serving: []ServingSpec{
			{Name: "plain"},
			{Name: "cached", Cache: true, BatchWindow: 2 * time.Millisecond},
		},
		Queries:  6,
		Variants: 1,
		Seed:     3,
	}
	r, err := Run(context.Background(), spec, "live-serving", nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	plain, ok1 := r.Get("live/BL/school/c2/none/plain")
	cached, ok2 := r.Get("live/BL/school/c2/none/cached")
	if !ok1 || !ok2 {
		t.Fatalf("cells missing from report")
	}
	if plain.Server.CacheHits+plain.Server.CacheMisses != 0 {
		t.Errorf("plain cell has cache traffic: %+v", plain.Server)
	}
	if cached.Server.CacheHits+cached.Server.CacheMisses == 0 {
		t.Errorf("cached cell shows no cache traffic")
	}
	if cached.Server.CacheHits > 0 && cached.Server.CacheHitRate <= 0 {
		t.Errorf("hit rate not derived: %+v", cached.Server)
	}
}

// TestGeneratorsCancelCleanly: cancelling mid-run unwinds both drivers
// without leaking goroutines and reports the unissued work as errors.
func TestGeneratorsCancelCleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var issued atomic.Int32
	fn := func(ctx context.Context, variant int) Result {
		if issued.Add(1) == 3 {
			cancel() // trip mid-run
		}
		select {
		case <-ctx.Done():
			return Result{Err: ctx.Err()}
		case <-time.After(time.Millisecond):
			return Result{Micros: 1000}
		}
	}
	results := RunClosed(ctx, 2, make([]int, 50), fn)
	if len(results) != 50 {
		t.Fatalf("got %d results", len(results))
	}
	st := Summarize(results, 1000)
	if st.Errors == 0 {
		t.Error("cancellation produced no error results")
	}
	if st.Completed+st.Errors+st.Shed != 50 {
		t.Errorf("results unaccounted: %+v", st)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	offsets := make([]time.Duration, 40)
	for i := range offsets {
		offsets[i] = time.Duration(i) * 500 * time.Microsecond
	}
	var n atomic.Int32
	fn2 := func(ctx context.Context, variant int) Result {
		if n.Add(1) == 5 {
			cancel2()
		}
		<-ctx.Done()
		return Result{Err: ctx.Err()}
	}
	results2 := RunOpen(ctx2, offsets, make([]int, 40), fn2)
	if len(results2) != 40 {
		t.Fatalf("got %d open-loop results", len(results2))
	}
	for i, res := range results2 {
		if res.Err == nil && res.Micros == 0 {
			t.Errorf("open-loop result %d neither ran nor errored", i)
		}
	}
	cancel()
	cancel2()

	// Drain check: a few scheduler yields, then the goroutine count is back
	// near the baseline (no generator goroutine outlives its Run call).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
