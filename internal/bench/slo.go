package bench

import (
	"fmt"
	"time"
)

// SLO is a service-level objective over one cell's measurements. Zero/
// negative bounds are unset and not evaluated, except the fraction bounds
// where a genuine 0 is meaningful — those use negative for "unset".
type SLO struct {
	// MinQPS is the throughput floor (0 = unset).
	MinQPS float64
	// P99 caps the client-observed 99th-percentile latency (0 = unset).
	P99 time.Duration
	// MaxMaybeFrac caps the maybe share of returned rows (< 0 = unset).
	MaxMaybeFrac float64
	// MaxDegradedFrac caps the degraded share of queries (< 0 = unset).
	MaxDegradedFrac float64
	// NoErrors additionally requires zero client-observed errors and sheds.
	NoErrors bool
}

// SLOCheck is one evaluated bound.
type SLOCheck struct {
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Bound  float64 `json:"bound"`
	OK     bool    `json:"ok"`
	// margin is the relative distance to the bound: positive = headroom,
	// negative = violation depth. Used to pick the limiting metric.
	margin float64
}

func (c SLOCheck) String() string {
	verdict := "ok"
	if !c.OK {
		verdict = "VIOLATED"
	}
	return fmt.Sprintf("%-14s %10.2f  (bound %10.2f)  %s", c.Metric, c.Value, c.Bound, verdict)
}

// SLOVerdict is the pass/fail answer for one cell: the limiting metric is
// the violated bound that is deepest in violation, or — when everything
// passes — the bound with the least headroom (what would give way first if
// load or failure got worse).
type SLOVerdict struct {
	Cell     string     `json:"cell"`
	Pass     bool       `json:"pass"`
	Limiting string     `json:"limiting"`
	Checks   []SLOCheck `json:"checks"`
}

// EvaluateSLO checks one cell's results against the objective.
func EvaluateSLO(res CellResult, slo SLO) SLOVerdict {
	v := SLOVerdict{Cell: res.Cell.Key(), Pass: true}
	// floor: value must be >= bound; cap: value must be <= bound.
	floor := func(metric string, value, bound float64) {
		if bound <= 0 {
			return
		}
		v.Checks = append(v.Checks, SLOCheck{
			Metric: metric, Value: value, Bound: bound,
			OK: value >= bound, margin: (value - bound) / bound,
		})
	}
	ceil := func(metric string, value, bound float64, set bool) {
		if !set {
			return
		}
		c := SLOCheck{Metric: metric, Value: value, Bound: bound, OK: value <= bound}
		if bound > 0 {
			c.margin = (bound - value) / bound
		} else if value > 0 {
			c.margin = -1 // a zero bound with a nonzero value: fully violated
		}
		v.Checks = append(v.Checks, c)
	}
	floor("qps", res.Client.QPS, slo.MinQPS)
	ceil("p99_us", res.Client.P99Micros, float64(slo.P99.Microseconds()), slo.P99 > 0)
	ceil("maybe_frac", res.Server.MaybeFrac, slo.MaxMaybeFrac, slo.MaxMaybeFrac >= 0)
	ceil("degraded_frac", res.Server.DegradedFrac, slo.MaxDegradedFrac, slo.MaxDegradedFrac >= 0)
	if slo.NoErrors {
		ceil("errors", float64(res.Client.Errors+res.Client.Shed), 0, true)
	}
	// Pick the limiting metric: deepest violation when failing, least
	// headroom when passing.
	limiting, best := "", 0.0
	for _, c := range v.Checks {
		if !c.OK {
			v.Pass = false
		}
	}
	for _, c := range v.Checks {
		if v.Pass != c.OK {
			continue // when failing, only violated checks compete
		}
		if limiting == "" || c.margin < best {
			limiting, best = c.Metric, c.margin
		}
	}
	v.Limiting = limiting
	return v
}
