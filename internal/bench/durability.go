package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/store/wal"
	"github.com/hetfed/hetfed/internal/version"
)

// DurabilitySpec shapes a durability run: a school-style insert workload
// driven through each storage engine, followed by a cold-start recovery of
// the durable engines' directories.
type DurabilitySpec struct {
	// Objects is the number of objects inserted per cell.
	Objects int `json:"objects"`
	// SnapshotEvery is the WAL engines' snapshot cadence (0 = engine
	// default, negative = never — the recovery then replays the whole log).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// Seed roots the generated objects, so every engine inserts the
	// identical sequence.
	Seed int64 `json:"seed"`
	// Rounds is how many times each engine's insert phase runs; the report
	// keeps each engine's best round. Wall clocks this small (hundreds of
	// milliseconds) are dominated by transient machine load in a single
	// shot, so the gate compares minima, not one-shot samples. 0 means 3.
	Rounds int `json:"rounds,omitempty"`
	// MaxOverhead, when positive, gates the buffered WAL engine's
	// steady-state write overhead: Run fails if wal's insert wall-clock
	// exceeds MaxOverhead × mem's. The fsync engine is reported but not
	// gated — its cost is the disk's flush latency, not this code's.
	MaxOverhead float64 `json:"max_overhead,omitempty"`
}

// DurabilityCell is one engine's measured run: the steady-state insert side
// and, for the durable engines, the cold-start recovery side.
type DurabilityCell struct {
	// Engine is "mem" (baseline in-memory no-op engine), "wal" (buffered
	// write-ahead log) or "wal-fsync" (fsync per append).
	Engine string `json:"engine"`
	// Objects is the number of objects inserted (identical across cells).
	Objects int `json:"objects"`

	InsertWallMillis float64 `json:"insert_wall_ms"`
	InsertsPerSec    float64 `json:"inserts_per_sec"`
	MeanInsertMicros float64 `json:"mean_insert_us"`
	// WriteOverhead is this cell's insert wall-clock over the mem cell's —
	// the price of durability on the write path (1.0 for mem itself).
	WriteOverhead float64 `json:"write_overhead"`

	WALAppends int64 `json:"wal_appends,omitempty"`
	WALBytes   int64 `json:"wal_bytes,omitempty"`
	WALSyncs   int64 `json:"wal_syncs,omitempty"`
	Snapshots  int64 `json:"snapshots,omitempty"`

	// RecoverWallMillis is the cold-start time: a fresh engine opening the
	// cell's directory and rebuilding the full database state.
	RecoverWallMillis float64 `json:"recover_wall_ms,omitempty"`
	RecoveredObjects  int64   `json:"recovered_objects,omitempty"`
	ReplayedRecords   int64   `json:"replayed_records,omitempty"`
	SkippedRecords    int64   `json:"skipped_records,omitempty"`
}

// DurabilityReport is a durability run's diffable record. Wall-clock fields
// are machine-dependent; regression gating uses the run's own invariants
// (recovery completeness, relative write overhead), not cross-run diffs.
type DurabilityReport struct {
	Schema  int              `json:"schema"`
	Topic   string           `json:"topic"`
	Version string           `json:"version"`
	Spec    DurabilitySpec   `json:"spec"`
	Cells   []DurabilityCell `json:"cells"`
}

// JSON renders the report in its canonical indented form.
func (r *DurabilityReport) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encode durability report: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteFile writes the report to path in canonical form.
func (r *DurabilityReport) WriteFile(path string) error {
	data, err := r.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}

// durabilityObjects draws the insert sequence: school-shaped students with
// seeded attribute values, identical for every engine under the same seed.
func durabilityObjects(spec DurabilitySpec) []*object.Object {
	rng := rand.New(rand.NewSource(spec.Seed))
	names := []string{"John", "Tony", "Mary", "Hedy", "Fanny", "Kelly", "Haley"}
	objs := make([]*object.Object, spec.Objects)
	for i := range objs {
		attrs := map[string]object.Value{
			"s-no": object.Int(int64(100000 + i)),
			"name": object.Str(names[rng.Intn(len(names))]),
			"age":  object.Int(int64(20 + rng.Intn(40))),
		}
		if rng.Intn(4) == 0 { // some nulls, like the paper's extents
			delete(attrs, "age")
		}
		objs[i] = object.New(object.LOid(fmt.Sprintf("s%06d", i)), "Student", attrs)
	}
	return objs
}

// RunDurability measures the storage engines against each other: identical
// school-style insert streams through mem, wal and wal-fsync, then a timed
// cold-start recovery of each durable directory. Each engine's insert and
// recovery run spec.Rounds times with the rounds interleaved across engines
// (so a transient load spike lands on every engine, not one engine's only
// sample) and the report keeps each engine's best round. It verifies its
// own invariants — every durable cell must recover exactly the inserted
// state, and the buffered WAL's write overhead must stay within
// MaxOverhead — and fails loudly when one breaks, so the run doubles as a
// regression gate. progress, when non-nil, receives one line per cell.
func RunDurability(spec DurabilitySpec, dir string, progress func(string)) (*DurabilityReport, error) {
	if spec.Objects < 1 {
		spec.Objects = 1
	}
	if spec.Rounds < 1 {
		spec.Rounds = 3
	}
	report := &DurabilityReport{
		Schema:  SchemaVersion,
		Topic:   "durability",
		Version: version.String(),
		Spec:    spec,
	}
	objs := durabilityObjects(spec)
	schema := school.Schemas()["DB1"]
	labels := metrics.Labels{Site: "DB1"}

	insert := func(db *store.Database) (time.Duration, error) {
		if _, err := db.CreateIndex("Student", "age"); err != nil {
			return 0, err
		}
		runtime.GC() // don't bill one cell for another cell's garbage
		start := time.Now()
		for _, o := range objs {
			if err := db.Insert(o); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	engines := []string{"mem", "wal", "wal-fsync"}
	cells := make(map[string]*DurabilityCell, len(engines))
	bestInsert := make(map[string]time.Duration, len(engines))
	bestRecover := make(map[string]time.Duration, len(engines))
	for _, engine := range engines {
		cells[engine] = &DurabilityCell{Engine: engine, Objects: spec.Objects}
	}

	for round := 0; round < spec.Rounds; round++ {
		for _, engine := range engines {
			cell := cells[engine]
			switch engine {
			case "mem":
				db := store.MustNewDatabase(schema).WithEngine(store.Mem{})
				wall, err := insert(db)
				if err != nil {
					return nil, fmt.Errorf("bench: %s insert: %w", engine, err)
				}
				if round == 0 || wall < bestInsert[engine] {
					bestInsert[engine] = wall
				}
			case "wal", "wal-fsync":
				cellDir := filepath.Join(dir, engine, fmt.Sprintf("r%d", round))
				reg := metrics.New()
				opts := wal.Options{
					Dir:           cellDir,
					Fsync:         engine == "wal-fsync",
					SnapshotEvery: spec.SnapshotEvery,
					Site:          "DB1",
					Metrics:       reg,
				}
				eng, db, _, err := wal.Open(schema, opts)
				if err != nil {
					return nil, fmt.Errorf("bench: %s open: %w", engine, err)
				}
				wall, err := insert(db)
				if err != nil {
					eng.Close()
					return nil, fmt.Errorf("bench: %s insert: %w", engine, err)
				}
				if err := eng.Close(); err != nil {
					return nil, fmt.Errorf("bench: %s close: %w", engine, err)
				}
				if round == 0 || wall < bestInsert[engine] {
					bestInsert[engine] = wall
					snap := reg.Snapshot()
					cell.WALAppends = snap.CounterValue("wal_appends_total", labels)
					cell.WALBytes = snap.CounterValue("wal_bytes_total", labels)
					cell.WALSyncs = snap.CounterValue("wal_syncs_total", labels)
					cell.Snapshots = snap.CounterValue("snapshots_total", labels)
				}

				// Cold start: a fresh engine rebuilds the database from disk.
				rreg := metrics.New()
				opts.Metrics = rreg
				runtime.GC()
				start := time.Now()
				reng, rdb, _, err := wal.Open(schema, opts)
				if err != nil {
					return nil, fmt.Errorf("bench: %s recover: %w", engine, err)
				}
				recoverWall := time.Since(start)
				recovered := int64(rdb.Extent("Student").Len())
				reng.Close()
				if round == 0 || recoverWall < bestRecover[engine] {
					bestRecover[engine] = recoverWall
					rsnap := rreg.Snapshot()
					cell.RecoverWallMillis = millis(recoverWall)
					cell.RecoveredObjects = recovered
					cell.ReplayedRecords = rsnap.CounterValue("recovery_replayed_total", labels)
					cell.SkippedRecords = rsnap.CounterValue("recovery_skipped_total", labels)
				}

				// Invariant: recovery is complete — the durable engine holds
				// every acked insert.
				if recovered != int64(spec.Objects) {
					return nil, fmt.Errorf("bench: %s recovered %d objects, inserted %d",
						engine, recovered, spec.Objects)
				}
			}
		}
	}

	memWall := bestInsert["mem"]
	for _, engine := range engines {
		cell := cells[engine]
		cell.InsertWallMillis = millis(bestInsert[engine])
		cell.WriteOverhead = overhead(bestInsert[engine], memWall)
		cell.InsertsPerSec = persec(spec.Objects, cell.InsertWallMillis)
		cell.MeanInsertMicros = round2(cell.InsertWallMillis * 1e3 / float64(spec.Objects))
		report.Cells = append(report.Cells, *cell)
		if progress != nil {
			progress(fmt.Sprintf("%-10s insert %9.2f ms (%8.0f/s, %.1fx mem)  recover %8.2f ms (%d objects)",
				cell.Engine, cell.InsertWallMillis, cell.InsertsPerSec,
				cell.WriteOverhead, cell.RecoverWallMillis, cell.RecoveredObjects))
		}
	}

	// Invariant: durability must not make the write path pathologically
	// slow. Only the buffered engine is gated — the fsync engine's cost is
	// the device's flush latency.
	if spec.MaxOverhead > 0 {
		for _, cell := range report.Cells {
			if cell.Engine == "wal" && cell.WriteOverhead > spec.MaxOverhead {
				return report, fmt.Errorf("bench: wal write overhead %.2fx exceeds the %.2fx gate",
					cell.WriteOverhead, spec.MaxOverhead)
			}
		}
	}
	return report, nil
}

func millis(d time.Duration) float64 { return round2(float64(d.Nanoseconds()) / 1e6) }

func overhead(d, base time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return round2(float64(d) / float64(base))
}

func persec(n int, wallMillis float64) float64 {
	if wallMillis <= 0 {
		return 0
	}
	return round2(float64(n) / wallMillis * 1e3)
}

// round2 keeps report floats to 2 decimals so the JSON stays readable.
func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}
