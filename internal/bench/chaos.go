package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/hetfed/hetfed/internal/antientropy"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/remote"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store/wal"
	"github.com/hetfed/hetfed/internal/trace"
	"github.com/hetfed/hetfed/internal/version"
)

// ChaosSpec shapes a chaos run: a WAL-durable school cluster over real TCP
// driven by a seeded random schedule of partitions, heals, site kills,
// restarts, inserts and queries, with anti-entropy repair converging the
// replicas afterwards.
type ChaosSpec struct {
	// Steps is the schedule length (default 60).
	Steps int `json:"steps"`
	// Seed roots the schedule; the same seed replays the same chaos.
	Seed int64 `json:"seed"`
	// MaxConvergenceRounds gates the post-heal repair: the run fails if
	// the replicas have not converged within this many full-mesh rounds
	// (default 5; the repair topology is a complete graph over four
	// replicas, so two rounds suffice in principle).
	MaxConvergenceRounds int `json:"max_convergence_rounds"`
}

// ChaosReport is a chaos run's diffable record. The wall clock is
// machine-dependent; the gates are the run's own invariants — zero
// certain-answer violations and bounded convergence — so the report is
// CI-safe without a cross-run baseline.
type ChaosReport struct {
	Schema  int       `json:"schema"`
	Topic   string    `json:"topic"`
	Version string    `json:"version"`
	Spec    ChaosSpec `json:"spec"`

	// Schedule composition.
	Queries    int `json:"queries"`
	Inserts    int `json:"inserts"`
	Partitions int `json:"partitions"`
	Heals      int `json:"heals"`
	Kills      int `json:"kills"`
	Restarts   int `json:"restarts"`
	Repairs    int `json:"repairs"`

	// CertainViolations counts certain rows returned under faults that
	// contradict the fault-free ground truth. The gate: always 0.
	CertainViolations int `json:"certain_violations"`
	// ConvergenceRounds is how many post-heal repair rounds the replicas
	// needed to agree on every digest. Gated by MaxConvergenceRounds.
	ConvergenceRounds int `json:"convergence_rounds"`
	// RepairedBindings and RepairBytes total the anti-entropy repair work
	// across every replica (coordinator included) over the whole run.
	RepairedBindings int64 `json:"repaired_bindings"`
	RepairBytes      int64 `json:"repair_bytes"`

	WallMillis float64 `json:"wall_ms"`
}

// JSON renders the report in its canonical indented form.
func (r *ChaosReport) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encode chaos report: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteFile writes the report to path in canonical form.
func (r *ChaosReport) WriteFile(path string) error {
	data, err := r.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}

// chaosNode is one durable site of the chaos cluster.
type chaosNode struct {
	srv *remote.Server
	eng *wal.Engine
}

func (n *chaosNode) close() {
	n.srv.Close()
	n.eng.Close()
}

// chaosRig is the cluster under chaos: live sites, the shared fault plan,
// and the coordinator.
type chaosRig struct {
	root  string
	plan  *fabric.FaultPlan
	nodes map[object.SiteID]*chaosNode
	addrs map[object.SiteID]string
	coord *remote.Coordinator
}

// chaosCall is the rig's call policy: one attempt and tight timeouts, so a
// partitioned or dead peer degrades the operation promptly.
func chaosCall(plan *fabric.FaultPlan) remote.CallConfig {
	return remote.CallConfig{
		Attempts:         1,
		DialTimeout:      time.Second,
		CallTimeout:      5 * time.Second,
		BreakerThreshold: 0,
		Faults:           plan,
	}
}

func (rig *chaosRig) startSite(site object.SiteID) error {
	fx := school.New()
	eng, db, tables, err := wal.Open(fx.Databases[site].Schema(), wal.Options{
		Dir:  filepath.Join(rig.root, string(site)),
		Site: string(site),
	})
	if err != nil {
		return fmt.Errorf("bench: wal.Open(%s): %w", site, err)
	}
	if err := eng.Import(fx.Databases[site], fx.Mapping); err != nil {
		eng.Close()
		return fmt.Errorf("bench: import %s: %w", site, err)
	}
	srv, err := remote.NewServer(remote.ServerConfig{
		DB:         db,
		Global:     fx.Global,
		Tables:     tables,
		Engine:     eng,
		Signatures: signature.Build(fx.Databases),
		Tracer:     &trace.Tracer{},
		Metrics:    metrics.New(),
		Faults:     rig.plan,
		Call:       chaosCall(rig.plan),
	})
	if err != nil {
		eng.Close()
		return fmt.Errorf("bench: server %s: %w", site, err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		eng.Close()
		return fmt.Errorf("bench: listen %s: %w", site, err)
	}
	rig.nodes[site] = &chaosNode{srv: srv, eng: eng}
	rig.addrs[site] = srv.Addr()
	rig.rewire()
	return nil
}

func (rig *chaosRig) killSite(site object.SiteID) {
	rig.nodes[site].close()
	delete(rig.nodes, site)
	delete(rig.addrs, site)
	rig.rewire()
}

func (rig *chaosRig) rewire() {
	addrs := make(map[object.SiteID]string, len(rig.addrs))
	for site, addr := range rig.addrs {
		addrs[site] = addr
	}
	for _, n := range rig.nodes {
		n.srv.SetPeers(addrs)
	}
	if rig.coord != nil {
		rig.coord.Sites = addrs
	}
}

func (rig *chaosRig) liveSites() []object.SiteID {
	out := make([]object.SiteID, 0, len(rig.nodes))
	for site := range rig.nodes {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (rig *chaosRig) converged() bool {
	snaps := []map[string]antientropy.Digest{rig.coord.Tracker().Snapshot()}
	for _, site := range rig.liveSites() {
		snaps = append(snaps, rig.nodes[site].srv.DigestSnapshot())
	}
	for i := 1; i < len(snaps); i++ {
		if len(antientropy.DiffClasses(snaps[0], snaps[i])) != 0 {
			return false
		}
	}
	return true
}

func (rig *chaosRig) repairRound(ctx context.Context) {
	for _, site := range rig.liveSites() {
		rig.nodes[site].srv.RunAntiEntropyRound(ctx)
	}
	rig.coord.RunAntiEntropyRound(ctx)
}

// RunChaos executes the chaos schedule and gates itself on the run's own
// invariants: no certain row under faults may contradict the fault-free
// ground truth, and once everything heals the replicas must converge
// within spec.MaxConvergenceRounds full-mesh repair rounds. progress, when
// non-nil, receives one line per phase.
func RunChaos(spec ChaosSpec, dir string, progress func(string)) (*ChaosReport, error) {
	if spec.Steps < 1 {
		spec.Steps = 60
	}
	if spec.MaxConvergenceRounds < 1 {
		spec.MaxConvergenceRounds = 5
	}
	report := &ChaosReport{
		Schema:  SchemaVersion,
		Topic:   "chaos",
		Version: version.String(),
		Spec:    spec,
	}
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	ctx := context.Background()
	start := time.Now()

	rig := &chaosRig{
		root:  dir,
		plan:  fabric.NewFaultPlan(),
		nodes: make(map[object.SiteID]*chaosNode),
		addrs: make(map[object.SiteID]string),
	}
	defer func() {
		for _, n := range rig.nodes {
			n.close()
		}
		if rig.coord != nil {
			rig.coord.Close()
		}
	}()
	for _, site := range school.Sites {
		if err := rig.startSite(site); err != nil {
			return nil, err
		}
	}
	fx := school.New()
	deltaLog, gtables, err := wal.OpenLog(wal.Options{Dir: filepath.Join(dir, "G"), Site: "G"})
	if err != nil {
		return nil, err
	}
	defer deltaLog.Close()
	if err := deltaLog.Import(nil, fx.Mapping); err != nil {
		return nil, err
	}
	matcher := isomer.NewMatcher(fx.Global)
	if err := matcher.Adopt(fx.Databases, gtables); err != nil {
		return nil, err
	}
	rig.coord = &remote.Coordinator{
		ID:       "G",
		Global:   fx.Global,
		Tables:   matcher.Tables(),
		Matcher:  matcher,
		DeltaLog: deltaLog,
		Metrics:  metrics.New(),
		Call:     chaosCall(rig.plan),
	}
	rig.rewire()

	truth, _, err := rig.coord.Query(school.Q1, exec.CA)
	if err != nil {
		return nil, fmt.Errorf("bench: ground-truth query: %w", err)
	}
	if truth.Degraded {
		return nil, fmt.Errorf("bench: fault-free baseline degraded: %v", truth.Unavailable)
	}
	truthCertain := make(map[string]bool, len(truth.Certain))
	for _, row := range truth.Certain {
		truthCertain[row.String()] = true
	}
	say("ground truth: %d certain, %d maybe", len(truth.Certain), len(truth.Maybe))

	algs := []exec.Algorithm{exec.CA, exec.BL, exec.PL}
	splits := [][2][]object.SiteID{
		{{"G", "DB1"}, {"DB2", "DB3"}},
		{{"G", "DB1", "DB2"}, {"DB3"}},
		{{"G"}, {"DB1", "DB2", "DB3"}},
		{{"G", "DB3"}, {"DB1", "DB2"}},
	}
	var (
		partitioned bool
		dead        []object.SiteID
	)
	for step := 0; step < spec.Steps; step++ {
		switch op := rng.Intn(10); {
		case op < 3:
			alg := algs[rng.Intn(len(algs))]
			ans, _, err := rig.coord.Query(school.Q1, alg)
			if err != nil {
				return nil, fmt.Errorf("bench: step %d: query(%v) failed hard: %w", step, alg, err)
			}
			report.Queries++
			for _, row := range ans.Certain {
				if !truthCertain[row.String()] {
					report.CertainViolations++
					say("step %d: VIOLATION: %v certain row %q not in ground truth", step, alg, row)
				}
			}
		case op < 5:
			site := rig.liveSites()[rng.Intn(len(rig.nodes))]
			if site == "DB3" {
				site = "DB1" // keep chaos inserts on the uniform Teacher shape
			}
			report.Inserts++
			o := object.New(object.LOid(fmt.Sprintf("tc%03d'", report.Inserts)), "Teacher",
				map[string]object.Value{"name": object.Str(fmt.Sprintf("Chaos%03d", report.Inserts))})
			_, _ = rig.coord.Insert(site, o) // partial failure is repair's job
		case op < 7:
			if partitioned {
				rig.plan.HealPartitions()
				partitioned = false
				report.Heals++
			} else {
				split := splits[rng.Intn(len(splits))]
				rig.plan.Partition(fabric.Partition{A: split[0], B: split[1]})
				partitioned = true
				report.Partitions++
			}
		case op < 8:
			if len(dead) > 0 {
				site := dead[0]
				dead = dead[1:]
				if err := rig.startSite(site); err != nil {
					return nil, err
				}
				report.Restarts++
			} else if len(rig.nodes) > 2 {
				site := rig.liveSites()[rng.Intn(len(rig.nodes))]
				rig.killSite(site)
				dead = append(dead, site)
				report.Kills++
			}
		case op < 9:
			rig.repairRound(ctx)
			report.Repairs++
		default:
			_ = rig.coord.Ping()
		}
	}
	say("schedule done: %d queries, %d inserts, %d partitions, %d kills",
		report.Queries, report.Inserts, report.Partitions, report.Kills)

	// Heal, restart, converge.
	rig.plan.HealPartitions()
	for _, site := range dead {
		if err := rig.startSite(site); err != nil {
			return nil, err
		}
		report.Restarts++
	}
	_ = rig.coord.Ping()
	// At least one post-heal round always runs: a clean quorum round is
	// what clears suspect marks left over from partition-era exchanges,
	// even when the digests already agree.
	rounds := 0
	for {
		rig.repairRound(ctx)
		rounds++
		if rig.converged() {
			break
		}
		if rounds >= spec.MaxConvergenceRounds {
			return nil, fmt.Errorf("bench: replicas did not converge within %d repair rounds",
				spec.MaxConvergenceRounds)
		}
	}
	report.ConvergenceRounds = rounds
	say("converged after %d repair rounds", rounds)

	final, _, err := rig.coord.Query(school.Q1, exec.CA)
	if err != nil {
		return nil, fmt.Errorf("bench: final query: %w", err)
	}
	if final.Degraded {
		return nil, fmt.Errorf("bench: final answer degraded after convergence: %v", final.Unavailable)
	}
	if len(final.Certain) != len(truth.Certain) || len(final.Maybe) != len(truth.Maybe) {
		return nil, fmt.Errorf("bench: final answer (%d certain, %d maybe) differs from ground truth (%d, %d)",
			len(final.Certain), len(final.Maybe), len(truth.Certain), len(truth.Maybe))
	}
	if report.CertainViolations > 0 {
		return report, fmt.Errorf("bench: %d certain rows contradicted ground truth under faults",
			report.CertainViolations)
	}

	stats := rig.coord.Tracker().Stats()
	report.RepairedBindings = int64(stats.RepairedBindings)
	report.RepairBytes = int64(stats.RepairedBytes)
	for _, site := range rig.liveSites() {
		s := rig.nodes[site].srv.Tracker().Stats()
		report.RepairedBindings += int64(s.RepairedBindings)
		report.RepairBytes += int64(s.RepairedBytes)
	}
	report.WallMillis = float64(time.Since(start).Microseconds()) / 1e3
	return report, nil
}
