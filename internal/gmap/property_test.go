package gmap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hetfed/hetfed/internal/object"
)

// randomTable builds a table from a seeded random binding sequence,
// returning the successful bindings.
func randomTable(seed int64) (*Table, []struct {
	GOid object.GOid
	Loc  Location
}) {
	rng := rand.New(rand.NewSource(seed))
	t := NewTable("C")
	var bound []struct {
		GOid object.GOid
		Loc  Location
	}
	for i := 0; i < 60; i++ {
		goid := object.GOid(fmt.Sprintf("g%d", rng.Intn(20)))
		loc := Location{
			Site: object.SiteID(fmt.Sprintf("DB%d", rng.Intn(5))),
			LOid: object.LOid(fmt.Sprintf("o%d", rng.Intn(40))),
		}
		if err := t.Bind(goid, loc.Site, loc.LOid); err == nil {
			bound = append(bound, struct {
				GOid object.GOid
				Loc  Location
			}{goid, loc})
		}
	}
	return t, bound
}

// TestBindLookupInverseProperty: every successful binding is retrievable in
// both directions, and Locations partitions exactly the bound objects.
func TestBindLookupInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		table, bound := randomTable(seed)
		for _, b := range bound {
			g, ok := table.GOidOf(b.Loc.Site, b.Loc.LOid)
			if !ok || g != b.GOid {
				return false
			}
			l, ok := table.LOidAt(b.GOid, b.Loc.Site)
			if !ok || l != b.Loc.LOid {
				return false
			}
		}
		// The per-entity locations are disjoint and cover every binding.
		total := 0
		seen := map[Location]bool{}
		for _, g := range table.GOids() {
			for _, loc := range table.Locations(g) {
				if seen[loc] {
					return false
				}
				seen[loc] = true
				total++
			}
		}
		return total == table.Bindings() && total == len(bound)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCloneEquivalenceProperty: a clone answers every lookup identically.
func TestCloneEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		table, bound := randomTable(seed)
		cp := table.Clone()
		if cp.Len() != table.Len() || cp.Bindings() != table.Bindings() {
			return false
		}
		for _, b := range bound {
			g1, ok1 := table.GOidOf(b.Loc.Site, b.Loc.LOid)
			g2, ok2 := cp.GOidOf(b.Loc.Site, b.Loc.LOid)
			if ok1 != ok2 || g1 != g2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIsomericsExcludeSelfProperty: an object is never its own assistant.
func TestIsomericsExcludeSelfProperty(t *testing.T) {
	f := func(seed int64) bool {
		table, bound := randomTable(seed)
		for _, b := range bound {
			for _, iso := range table.IsomericsOf(b.Loc.Site, b.Loc.LOid) {
				if iso.Site == b.Loc.Site {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
