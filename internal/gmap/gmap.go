// Package gmap implements GOid mapping tables: for each global class, the
// mapping between global object identifiers and the (site, LOid) pairs of
// the isomeric objects representing the same real-world entity.
//
// In the paper's system the mapping tables are replicated at every site;
// Tables.Clone produces the replication snapshot a site works against.
package gmap

import (
	"fmt"
	"sort"
	"sync"

	"github.com/hetfed/hetfed/internal/object"
)

// Location identifies one stored object: a site plus its local identifier.
type Location struct {
	Site object.SiteID
	LOid object.LOid
}

// Table is the GOid mapping table of one global class.
type Table struct {
	class   string
	byGOid  map[object.GOid]map[object.SiteID]object.LOid
	byLocal map[Location]object.GOid
}

// NewTable returns an empty mapping table for the named global class.
func NewTable(class string) *Table {
	return &Table{
		class:   class,
		byGOid:  make(map[object.GOid]map[object.SiteID]object.LOid),
		byLocal: make(map[Location]object.GOid),
	}
}

// Class returns the global class this table maps.
func (t *Table) Class() string { return t.class }

// Bind records that the object loid at site is one of the isomeric objects
// identified by goid. A site contributes at most one object per entity, and
// a local object belongs to exactly one entity.
func (t *Table) Bind(goid object.GOid, site object.SiteID, loid object.LOid) error {
	loc := Location{Site: site, LOid: loid}
	if prev, dup := t.byLocal[loc]; dup {
		return fmt.Errorf("gmap %s: %s@%s already bound to %s", t.class, loid, site, prev)
	}
	sites := t.byGOid[goid]
	if sites == nil {
		sites = make(map[object.SiteID]object.LOid)
		t.byGOid[goid] = sites
	}
	if prev, dup := sites[site]; dup {
		return fmt.Errorf("gmap %s: %s already has %s at site %s", t.class, goid, prev, site)
	}
	sites[site] = loid
	t.byLocal[loc] = goid
	return nil
}

// MustBind is Bind that panics on error; intended for fixtures.
func (t *Table) MustBind(goid object.GOid, site object.SiteID, loid object.LOid) {
	if err := t.Bind(goid, site, loid); err != nil {
		panic(err)
	}
}

// Bound reports whether the exact binding (goid, site, loid) is already
// present. It is the idempotence check that replayed bind deltas (durable-
// log recovery, replica resync) rely on: an exact duplicate is a harmless
// re-delivery, while Bind's duplicate errors flag genuine conflicts.
func (t *Table) Bound(goid object.GOid, site object.SiteID, loid object.LOid) bool {
	g, ok := t.byLocal[Location{Site: site, LOid: loid}]
	return ok && g == goid
}

// GOidOf returns the global identifier of a stored object.
func (t *Table) GOidOf(site object.SiteID, loid object.LOid) (object.GOid, bool) {
	g, ok := t.byLocal[Location{Site: site, LOid: loid}]
	return g, ok
}

// LOidAt returns the LOid of the entity's isomeric object at the given
// site, if the entity is stored there.
func (t *Table) LOidAt(goid object.GOid, site object.SiteID) (object.LOid, bool) {
	l, ok := t.byGOid[goid][site]
	return l, ok
}

// Locations returns every stored isomeric object of the entity, sorted by
// site for determinism.
func (t *Table) Locations(goid object.GOid) []Location {
	sites := t.byGOid[goid]
	out := make([]Location, 0, len(sites))
	for s, l := range sites {
		out = append(out, Location{Site: s, LOid: l})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// IsomericsOf returns the isomeric objects of the given stored object at
// other sites (the candidates for assistant objects), sorted by site.
func (t *Table) IsomericsOf(site object.SiteID, loid object.LOid) []Location {
	goid, ok := t.GOidOf(site, loid)
	if !ok {
		return nil
	}
	all := t.Locations(goid)
	out := all[:0]
	for _, loc := range all {
		if loc.Site != site {
			out = append(out, loc)
		}
	}
	return out
}

// GOids returns every mapped global identifier, sorted.
func (t *Table) GOids() []object.GOid {
	out := make([]object.GOid, 0, len(t.byGOid))
	for g := range t.byGOid {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of entities in the table.
func (t *Table) Len() int { return len(t.byGOid) }

// Bindings returns the number of (site, LOid) bindings in the table; this is
// the table's row count for cost accounting.
func (t *Table) Bindings() int { return len(t.byLocal) }

// Clone returns a deep copy, used to replicate the table to a site.
func (t *Table) Clone() *Table {
	cp := NewTable(t.class)
	for g, sites := range t.byGOid {
		m := make(map[object.SiteID]object.LOid, len(sites))
		for s, l := range sites {
			m[s] = l
			cp.byLocal[Location{Site: s, LOid: l}] = g
		}
		cp.byGOid[g] = m
	}
	return cp
}

// Tables groups the mapping tables of all global classes.
//
// The class→table map itself is guarded by a mutex so concurrent queries
// that touch a class never seen before (lazy creation in Table) do not
// race. Individual Tables are NOT internally locked: mutation (Bind) is
// a setup/replication-time operation that callers must serialize against
// query reads (the TCP server does so with its state lock).
type Tables struct {
	mu      sync.RWMutex
	byClass map[string]*Table
}

// NewTables returns an empty table group.
func NewTables() *Tables {
	return &Tables{byClass: make(map[string]*Table)}
}

// Table returns the table of the named global class, creating it on first
// use. Safe for concurrent callers.
func (ts *Tables) Table(class string) *Table {
	ts.mu.RLock()
	t := ts.byClass[class]
	ts.mu.RUnlock()
	if t != nil {
		return t
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t = ts.byClass[class]; t == nil {
		t = NewTable(class)
		ts.byClass[class] = t
	}
	return t
}

// Has reports whether a table exists for the named global class.
func (ts *Tables) Has(class string) bool {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	_, ok := ts.byClass[class]
	return ok
}

// Classes returns the mapped global class names, sorted.
func (ts *Tables) Classes() []string {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([]string, 0, len(ts.byClass))
	for c := range ts.byClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies all tables (a full replication snapshot).
func (ts *Tables) Clone() *Tables {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	cp := NewTables()
	for c, t := range ts.byClass {
		cp.byClass[c] = t.Clone()
	}
	return cp
}
