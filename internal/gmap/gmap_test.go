package gmap

import (
	"reflect"
	"testing"

	"github.com/hetfed/hetfed/internal/object"
)

func figure5Student() *Table {
	t := NewTable("Student")
	t.MustBind("gs1", "DB1", "s1")
	t.MustBind("gs1", "DB2", "s2'")
	t.MustBind("gs2", "DB1", "s2")
	t.MustBind("gs3", "DB1", "s3")
	t.MustBind("gs4", "DB2", "s1'")
	t.MustBind("gs5", "DB2", "s3'")
	return t
}

func TestBindAndLookups(t *testing.T) {
	tab := figure5Student()
	if tab.Class() != "Student" {
		t.Error("Class wrong")
	}
	if g, ok := tab.GOidOf("DB2", "s2'"); !ok || g != "gs1" {
		t.Errorf("GOidOf = %v %v", g, ok)
	}
	if _, ok := tab.GOidOf("DB2", "nope"); ok {
		t.Error("GOidOf unknown succeeded")
	}
	if l, ok := tab.LOidAt("gs1", "DB1"); !ok || l != "s1" {
		t.Errorf("LOidAt = %v %v", l, ok)
	}
	if _, ok := tab.LOidAt("gs2", "DB2"); ok {
		t.Error("LOidAt for absent site succeeded")
	}
	if tab.Len() != 5 || tab.Bindings() != 6 {
		t.Errorf("Len/Bindings = %d/%d", tab.Len(), tab.Bindings())
	}
}

// TestBound pins the exact-duplicate probe replicas and WAL replay use to
// apply binds idempotently: true only for a binding that exists verbatim.
func TestBound(t *testing.T) {
	tab := figure5Student()
	if !tab.Bound("gs1", "DB2", "s2'") {
		t.Error("existing binding not Bound")
	}
	if tab.Bound("gs9", "DB2", "s2'") {
		t.Error("same location, different GOid reported Bound")
	}
	if tab.Bound("gs1", "DB2", "nope") {
		t.Error("unknown LOid reported Bound")
	}
	if tab.Bound("gs1", "DB3", "s2'") {
		t.Error("unknown site reported Bound")
	}
}

func TestBindErrors(t *testing.T) {
	tab := figure5Student()
	if err := tab.Bind("gs9", "DB1", "s1"); err == nil {
		t.Error("rebinding local object accepted")
	}
	if err := tab.Bind("gs1", "DB1", "s99"); err == nil {
		t.Error("second object per site per entity accepted")
	}
}

func TestLocationsSorted(t *testing.T) {
	tab := NewTable("T")
	tab.MustBind("g1", "DB3", "c")
	tab.MustBind("g1", "DB1", "a")
	tab.MustBind("g1", "DB2", "b")
	got := tab.Locations("g1")
	want := []Location{{"DB1", "a"}, {"DB2", "b"}, {"DB3", "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Locations = %v", got)
	}
	if tab.Locations("ghost") != nil && len(tab.Locations("ghost")) != 0 {
		t.Error("Locations of unknown GOid should be empty")
	}
}

func TestIsomericsOf(t *testing.T) {
	tab := figure5Student()
	got := tab.IsomericsOf("DB1", "s1")
	want := []Location{{"DB2", "s2'"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IsomericsOf = %v", got)
	}
	if got := tab.IsomericsOf("DB1", "s2"); len(got) != 0 {
		t.Errorf("singleton entity has isomerics: %v", got)
	}
	if got := tab.IsomericsOf("DB9", "x"); got != nil {
		t.Errorf("unknown object has isomerics: %v", got)
	}
}

func TestGOidsSorted(t *testing.T) {
	tab := figure5Student()
	got := tab.GOids()
	want := []object.GOid{"gs1", "gs2", "gs3", "gs4", "gs5"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GOids = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tab := figure5Student()
	cp := tab.Clone()
	cp.MustBind("gs9", "DB3", "x")
	if _, ok := tab.GOidOf("DB3", "x"); ok {
		t.Error("Clone shares state")
	}
	if g, ok := cp.GOidOf("DB1", "s1"); !ok || g != "gs1" {
		t.Error("Clone lost bindings")
	}
}

func TestTablesGroup(t *testing.T) {
	ts := NewTables()
	if ts.Has("Student") {
		t.Error("Has on empty group")
	}
	st := ts.Table("Student")
	st.MustBind("gs1", "DB1", "s1")
	if !ts.Has("Student") {
		t.Error("Has after Table")
	}
	if ts.Table("Student") != st {
		t.Error("Table not idempotent")
	}
	ts.Table("Teacher")
	if got := ts.Classes(); !reflect.DeepEqual(got, []string{"Student", "Teacher"}) {
		t.Errorf("Classes = %v", got)
	}
	cp := ts.Clone()
	cp.Table("Student").MustBind("gs2", "DB1", "s2")
	if _, ok := ts.Table("Student").GOidOf("DB1", "s2"); ok {
		t.Error("Tables.Clone shares state")
	}
}
