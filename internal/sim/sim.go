// Package sim is the experiment harness of the paper's performance study
// (Section 4): it sweeps one workload parameter at a time, generates
// randomized Table 2 samples per swept point, executes the three strategies
// inside the discrete-event fabric, and averages total execution time and
// response time — the series plotted in Figures 9, 10 and 11.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/planner"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/workload"
)

// CoordinatorSite is the global processing site's identifier in generated
// federations (the generator names component databases DB1, DB2, …).
const CoordinatorSite object.SiteID = "G"

// Config drives one experiment.
type Config struct {
	// Rates are the Table 1 cost parameters.
	Rates fabric.Rates
	// Samples is how many randomized parameter sets are generated and
	// averaged per swept point (the paper uses 500).
	Samples int
	// Seed makes the experiment reproducible.
	Seed int64
	// Ranges are the Table 2 base ranges; each sweep overrides one of
	// them.
	Ranges workload.Ranges
	// Algorithms to run; nil means CA, BL and PL.
	Algorithms []exec.Algorithm
	// Faults, when non-nil, builds a fresh fault plan for every simulated
	// run (plans are stateful — drop-after budgets count served
	// operations), so experiments can measure the strategies under
	// deterministic site failure.
	Faults func() *fabric.FaultPlan
}

// DefaultConfig returns the paper's setting with a tractable sample count.
func DefaultConfig() Config {
	return Config{
		Rates:   fabric.DefaultRates(),
		Samples: 25,
		Seed:    1,
		Ranges:  workload.DefaultRanges(),
	}
}

func (c Config) algorithms() []exec.Algorithm {
	if len(c.Algorithms) > 0 {
		return c.Algorithms
	}
	return exec.Algorithms()
}

// Avg is the averaged outcome of one algorithm at one swept point.
type Avg struct {
	// TotalMillis is the average total execution time (summed busy time of
	// every CPU, disk and the network), in milliseconds.
	TotalMillis float64
	// ResponseMillis is the average response time (virtual makespan).
	ResponseMillis float64
	// NetKB is the average network volume in kilobytes (diagnostic).
	NetKB float64
	// TotalStd and ResponseStd are the sample standard deviations across
	// the point's randomized workloads.
	TotalStd    float64
	ResponseStd float64
	// MaybeRows is the average number of maybe rows per answer and
	// DegradedShare the fraction of runs that returned a degraded (partial)
	// answer — both matter in the fault-injection experiments, where site
	// failure converts certain results into maybe results.
	MaybeRows     float64
	DegradedShare float64
}

// Point is one x-value of an experiment's series.
type Point struct {
	X       float64
	Label   string
	ByAlg   map[string]Avg
	Samples int
}

// Experiment is a reproduced figure: a series of points per algorithm.
type Experiment struct {
	Name   string
	Title  string
	XLabel string
	Points []Point
}

// runPoint generates cfg.Samples workloads from the given ranges and runs
// every algorithm on each inside the simulated fabric.
func runPoint(cfg Config, ranges workload.Ranges, x float64, label string) (Point, error) {
	pt := Point{
		X:       x,
		Label:   label,
		ByAlg:   make(map[string]Avg),
		Samples: cfg.Samples,
	}
	algs := cfg.algorithms()
	needSigs := false
	for _, a := range algs {
		if a == exec.SBL || a == exec.SPL {
			needSigs = true
		}
	}
	samples := make(map[string]*series, len(algs))
	for _, a := range algs {
		samples[a.String()] = &series{}
	}

	for s := 0; s < cfg.Samples; s++ {
		// One deterministic sub-seed per sample, shared across the swept
		// points (common random numbers): sample s draws the same base
		// parameters at every x, so the series differ only through the
		// swept parameter and the curves are comparable point to point.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(s)*1_000_003))
		params := ranges.Draw(rng)
		w, err := workload.Generate(params, rng)
		if err != nil {
			return pt, fmt.Errorf("sim: sample %d: %w", s, err)
		}
		engCfg := exec.Config{
			Global:      w.Global,
			Coordinator: CoordinatorSite,
			Databases:   w.Databases,
			Tables:      w.Tables,
		}
		if needSigs {
			engCfg.Signatures = signature.Build(w.Databases)
		}
		engine, err := exec.New(engCfg)
		if err != nil {
			return pt, fmt.Errorf("sim: sample %d: %w", s, err)
		}
		for _, alg := range algs {
			rt := fabric.NewSim(cfg.Rates, engine.Sites())
			if cfg.Faults != nil {
				rt = rt.WithFaults(cfg.Faults())
			}
			ans, m, err := engine.Run(rt, alg, w.Bound)
			if err != nil {
				return pt, fmt.Errorf("sim: sample %d %v: %w", s, alg, err)
			}
			acc := samples[alg.String()]
			acc.total = append(acc.total, m.TotalBusyMicros/1e3)
			acc.response = append(acc.response, m.ResponseMicros/1e3)
			acc.netKB += float64(m.NetBytes) / 1e3
			acc.maybe += float64(len(ans.Maybe))
			if ans.Degraded {
				acc.degraded++
			}
		}
	}
	for name, acc := range samples {
		pt.ByAlg[name] = acc.summarize(cfg.Samples)
	}
	return pt, nil
}

// series accumulates per-sample measurements for one algorithm.
type series struct {
	total    []float64
	response []float64
	netKB    float64
	maybe    float64
	degraded int
}

func (s *series) summarize(n int) Avg {
	return Avg{
		TotalMillis:    mean(s.total),
		ResponseMillis: mean(s.response),
		NetKB:          s.netKB / float64(n),
		TotalStd:       stddev(s.total),
		ResponseStd:    stddev(s.response),
		MaybeRows:      s.maybe / float64(n),
		DegradedShare:  float64(s.degraded) / float64(n),
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// stddev returns the sample standard deviation.
func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Figure9 reproduces Figures 9(a) and 9(b): total execution time and
// response time as the average number of objects in each constituent class
// grows.
func Figure9(cfg Config, objectCounts []int) (*Experiment, error) {
	if len(objectCounts) == 0 {
		objectCounts = []int{1000, 2000, 3000, 4000, 5000, 6000}
	}
	ex := &Experiment{
		Name:   "figure9",
		Title:  "Adjusting the average number of objects in each constituent class",
		XLabel: "objects per constituent class",
	}
	for _, n := range objectCounts {
		ranges := cfg.Ranges
		lo := n - n/10
		if lo < 1 {
			lo = 1
		}
		ranges.NObjects = [2]int{lo, n + n/10}
		pt, err := runPoint(cfg, ranges, float64(n), fmt.Sprintf("%d", n))
		if err != nil {
			return nil, err
		}
		ex.Points = append(ex.Points, pt)
	}
	return ex, nil
}

// Figure10 reproduces Figures 10(a) and 10(b): total execution time and
// response time as the number of component databases grows. The isomerism
// ratio R_iso = 1 − 0.9^(N_db−1) rises with it, so the localized strategies
// check ever more assistant objects.
func Figure10(cfg Config, dbCounts []int) (*Experiment, error) {
	if len(dbCounts) == 0 {
		dbCounts = []int{2, 3, 4, 5, 6, 7, 8}
	}
	ex := &Experiment{
		Name:   "figure10",
		Title:  "Adjusting the number of component databases",
		XLabel: "component databases",
	}
	for _, n := range dbCounts {
		ranges := cfg.Ranges
		ranges.NDB = n
		pt, err := runPoint(cfg, ranges, float64(n), fmt.Sprintf("%d", n))
		if err != nil {
			return nil, err
		}
		ex.Points = append(ex.Points, pt)
	}
	return ex, nil
}

// Figure11 reproduces Figures 11(a) and 11(b): total execution time and
// response time as the selectivity of the local predicates grows (higher
// selectivity keeps more objects, so the localized strategies transfer and
// certify more). Following the paper, N_o is reduced to 1000–2000 for this
// experiment.
func Figure11(cfg Config, selectivities []float64) (*Experiment, error) {
	if len(selectivities) == 0 {
		selectivities = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	ex := &Experiment{
		Name:   "figure11",
		Title:  "Adjusting the selectivity of the local predicates (N_o = 1000–2000)",
		XLabel: "predicate selectivity",
	}
	for _, sel := range selectivities {
		ranges := cfg.Ranges
		ranges.NObjects = [2]int{1000, 2000}
		ranges.Selectivity = sel
		pt, err := runPoint(cfg, ranges, sel, fmt.Sprintf("%.2f", sel))
		if err != nil {
			return nil, err
		}
		ex.Points = append(ex.Points, pt)
	}
	return ex, nil
}

// algNames returns the algorithm names present in the experiment, in paper
// order (CA, BL, PL) followed by any extras sorted.
func (ex *Experiment) algNames() []string {
	seen := map[string]bool{}
	for _, pt := range ex.Points {
		for name := range pt.ByAlg {
			seen[name] = true
		}
	}
	var out []string
	for _, name := range []string{"CA", "BL", "PL"} {
		if seen[name] {
			out = append(out, name)
			delete(seen, name)
		}
	}
	rest := make([]string, 0, len(seen))
	for name := range seen {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Table renders the experiment as two aligned text tables — (a) total
// execution time and (b) response time — mirroring the paper's figure
// pairs.
func (ex *Experiment) Table() string {
	var b strings.Builder
	names := ex.algNames()
	fmt.Fprintf(&b, "%s\n", ex.Title)

	render := func(caption string, get func(Avg) float64) {
		fmt.Fprintf(&b, "\n%s (ms)\n", caption)
		fmt.Fprintf(&b, "%-24s", ex.XLabel)
		for _, n := range names {
			fmt.Fprintf(&b, "%12s", n)
		}
		b.WriteByte('\n')
		for _, pt := range ex.Points {
			fmt.Fprintf(&b, "%-24s", pt.Label)
			for _, n := range names {
				fmt.Fprintf(&b, "%12.1f", get(pt.ByAlg[n]))
			}
			b.WriteByte('\n')
		}
	}
	render("(a) total execution time", func(a Avg) float64 { return a.TotalMillis })
	render("(b) response time", func(a Avg) float64 { return a.ResponseMillis })
	return b.String()
}

// CSV renders the experiment in long form: figure,x,algorithm,total_ms,
// response_ms,net_kb.
func (ex *Experiment) CSV() string {
	var b strings.Builder
	b.WriteString("figure,x,algorithm,total_ms,total_std,response_ms,response_std,net_kb\n")
	for _, pt := range ex.Points {
		for _, name := range ex.algNames() {
			a := pt.ByAlg[name]
			fmt.Fprintf(&b, "%s,%g,%s,%.3f,%.3f,%.3f,%.3f,%.3f\n",
				ex.Name, pt.X, name, a.TotalMillis, a.TotalStd,
				a.ResponseMillis, a.ResponseStd, a.NetKB)
		}
	}
	return b.String()
}

// SignatureAblation is experiment E7 (beyond the paper's figures, from its
// Section 5 outlook): equality-predicate workloads executed under the plain
// and the signature-assisted localized strategies, sweeping the extent
// size. Signatures synthesize violating check verdicts locally, cutting
// check traffic.
func SignatureAblation(cfg Config, objectCounts []int) (*Experiment, error) {
	if len(objectCounts) == 0 {
		objectCounts = []int{1000, 2000, 4000, 6000}
	}
	if len(cfg.Algorithms) == 0 {
		cfg.Algorithms = []exec.Algorithm{exec.BL, exec.SBL, exec.PL, exec.SPL}
	}
	ex := &Experiment{
		Name:   "signatures",
		Title:  "Signature-assisted localized strategies (equality predicates)",
		XLabel: "objects per constituent class",
	}
	for _, n := range objectCounts {
		ranges := cfg.Ranges
		ranges.EqualityPreds = true
		lo := n - n/10
		if lo < 1 {
			lo = 1
		}
		ranges.NObjects = [2]int{lo, n + n/10}
		pt, err := runPoint(cfg, ranges, float64(n), fmt.Sprintf("%d", n))
		if err != nil {
			return nil, err
		}
		ex.Points = append(ex.Points, pt)
	}
	return ex, nil
}

// FaultSweep is experiment E12: graceful degradation under site failure.
// It kills the first k component databases (k swept from deadSites) in
// every simulated run and measures how response time and answer quality
// shift: killed root sites convert certain results into maybe results (and
// synthesized all-unknown rows) rather than failing the queries, so the
// curves show the price of partial answers, not an error cliff.
func FaultSweep(cfg Config, deadSites []int) (*Experiment, error) {
	if len(deadSites) == 0 {
		deadSites = []int{0, 1, 2}
	}
	ex := &Experiment{
		Name:   "faults",
		Title:  "Killing component databases (graceful degradation)",
		XLabel: "dead component databases",
	}
	for _, k := range deadSites {
		c := cfg
		k := k
		if k > 0 {
			c.Faults = func() *fabric.FaultPlan {
				fp := fabric.NewFaultPlan()
				for i := 1; i <= k; i++ {
					fp.Kill(object.SiteID(fmt.Sprintf("DB%d", i)))
				}
				return fp
			}
		}
		pt, err := runPoint(c, c.Ranges, float64(k), fmt.Sprintf("%d", k))
		if err != nil {
			return nil, err
		}
		ex.Points = append(ex.Points, pt)
	}
	return ex, nil
}

// NetworkSweep is experiment E8: sensitivity of the strategy ranking to the
// network transfer rate (Table 1's T_net). Faster networks shrink CA's
// handicap; slower networks widen it.
func NetworkSweep(cfg Config, netRates []float64) (*Experiment, error) {
	if len(netRates) == 0 {
		netRates = []float64{1, 2, 4, 8, 16, 32}
	}
	ex := &Experiment{
		Name:   "network",
		Title:  "Adjusting the network transfer time (µs/byte)",
		XLabel: "network µs/byte",
	}
	for _, r := range netRates {
		c := cfg
		c.Rates.NetPerByte = r
		pt, err := runPoint(c, c.Ranges, r, fmt.Sprintf("%g", r))
		if err != nil {
			return nil, err
		}
		ex.Points = append(ex.Points, pt)
	}
	return ex, nil
}

// PlannerReport is experiment E9: how well the cost-based planner picks the
// actual fastest strategy across random workloads.
type PlannerReport struct {
	Samples int
	// Correct counts samples where the planner chose the strategy with the
	// lowest simulated response time.
	Correct int
	// AvgRegret and MaxRegret measure the response-time ratio between the
	// chosen and the best strategy minus one (0 = always optimal).
	AvgRegret float64
	MaxRegret float64
	// ByChoice counts how often each strategy was chosen.
	ByChoice map[string]int
	// BestByAlg counts how often each strategy actually won.
	BestByAlg map[string]int
}

// String renders the report.
func (r PlannerReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cost-based strategy selection (planner) over %d workloads\n", r.Samples)
	fmt.Fprintf(&b, "  picked the fastest strategy: %d/%d (%.0f%%)\n",
		r.Correct, r.Samples, 100*float64(r.Correct)/float64(r.Samples))
	fmt.Fprintf(&b, "  response-time regret: avg %.1f%%, worst %.1f%%\n",
		100*r.AvgRegret, 100*r.MaxRegret)
	fmt.Fprintf(&b, "  chosen:  ")
	for _, name := range []string{"CA", "BL", "PL"} {
		fmt.Fprintf(&b, "%s=%d  ", name, r.ByChoice[name])
	}
	fmt.Fprintf(&b, "\n  fastest: ")
	for _, name := range []string{"CA", "BL", "PL"} {
		fmt.Fprintf(&b, "%s=%d  ", name, r.BestByAlg[name])
	}
	b.WriteByte('\n')
	return b.String()
}

// PlannerAccuracy generates cfg.Samples random workloads, asks the planner
// to choose a strategy from catalog statistics alone, then measures every
// strategy in the simulator and scores the choice.
func PlannerAccuracy(cfg Config) (PlannerReport, error) {
	report := PlannerReport{
		Samples:   cfg.Samples,
		ByChoice:  make(map[string]int),
		BestByAlg: make(map[string]int),
	}
	for s := 0; s < cfg.Samples; s++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(s)*1_000_003))
		params := cfg.Ranges.Draw(rng)
		w, err := workload.Generate(params, rng)
		if err != nil {
			return report, fmt.Errorf("sim: planner sample %d: %w", s, err)
		}
		engine, err := exec.New(exec.Config{
			Global:      w.Global,
			Coordinator: CoordinatorSite,
			Databases:   w.Databases,
			Tables:      w.Tables,
		})
		if err != nil {
			return report, err
		}

		cat := planner.BuildCatalog(w.Global, w.Databases, w.Tables)
		chosen := planner.Choose(cat, w.Bound, cfg.Rates)
		report.ByChoice[chosen.String()]++

		actual := make(map[exec.Algorithm]float64, 3)
		best := exec.Algorithm(0)
		for _, alg := range exec.Algorithms() {
			rt := fabric.NewSim(cfg.Rates, engine.Sites())
			_, m, err := engine.Run(rt, alg, w.Bound)
			if err != nil {
				return report, err
			}
			actual[alg] = m.ResponseMicros
			if best == 0 || m.ResponseMicros < actual[best] {
				best = alg
			}
		}
		report.BestByAlg[best.String()]++
		if chosen == best {
			report.Correct++
		}
		regret := actual[chosen]/actual[best] - 1
		report.AvgRegret += regret / float64(cfg.Samples)
		if regret > report.MaxRegret {
			report.MaxRegret = regret
		}
	}
	return report, nil
}

// IndexAblation is experiment E10: the basic localized strategy with and
// without secondary indexes on the root class's predicate attributes,
// swept over the local-predicate selectivity (N_o = 1000–2000, as in
// Figure 11). Indexes let BL read only candidate objects instead of
// scanning the extent, so the win grows as selectivity drops; CA is shown
// for reference (it ships everything regardless).
func IndexAblation(cfg Config, selectivities []float64) (*Experiment, error) {
	if len(selectivities) == 0 {
		selectivities = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	ex := &Experiment{
		Name:   "indexes",
		Title:  "Secondary indexes for local evaluation (BL, N_o = 1000–2000)",
		XLabel: "predicate selectivity",
	}
	type variant struct {
		label      string
		alg        exec.Algorithm
		useIndexes bool
	}
	variants := []variant{
		{"CA", exec.CA, false},
		{"BL", exec.BL, false},
		{"BL+idx", exec.BL, true},
	}
	for _, sel := range selectivities {
		ranges := cfg.Ranges
		ranges.NObjects = [2]int{1000, 2000}
		ranges.Selectivity = sel
		pt := Point{
			X:       sel,
			Label:   fmt.Sprintf("%.2f", sel),
			ByAlg:   make(map[string]Avg),
			Samples: cfg.Samples,
		}
		sums := make(map[string]*series, len(variants))
		for _, v := range variants {
			sums[v.label] = &series{}
		}
		for s := 0; s < cfg.Samples; s++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(s)*1_000_003))
			w, err := workload.Generate(ranges.Draw(rng), rng)
			if err != nil {
				return nil, fmt.Errorf("sim: index sample %d: %w", s, err)
			}
			for _, db := range w.Databases {
				for _, a := range db.Schema().Class("C1").Attrs {
					if !a.IsComplex() && !a.MultiValued && a.Name[0] == 'p' {
						if _, err := db.CreateIndex("C1", a.Name); err != nil {
							return nil, err
						}
					}
				}
			}
			for _, v := range variants {
				engine, err := exec.New(exec.Config{
					Global:      w.Global,
					Coordinator: CoordinatorSite,
					Databases:   w.Databases,
					Tables:      w.Tables,
					UseIndexes:  v.useIndexes,
				})
				if err != nil {
					return nil, err
				}
				rt := fabric.NewSim(cfg.Rates, engine.Sites())
				_, m, err := engine.Run(rt, v.alg, w.Bound)
				if err != nil {
					return nil, err
				}
				acc := sums[v.label]
				acc.total = append(acc.total, m.TotalBusyMicros/1e3)
				acc.response = append(acc.response, m.ResponseMicros/1e3)
				acc.netKB += float64(m.NetBytes) / 1e3
			}
		}
		for label, acc := range sums {
			pt.ByAlg[label] = acc.summarize(cfg.Samples)
		}
		ex.Points = append(ex.Points, pt)
	}
	return ex, nil
}
