package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/workload"

	"math/rand"
)

// ConcurrencyPoint is one client count of the E13 sweep: PerClient queries
// issued by each of Clients goroutines through one shared engine.
type ConcurrencyPoint struct {
	Clients int
	// QPS is queries completed per wall-clock second.
	QPS float64
	// MeanMillis / P95Millis / MaxMillis summarize per-query wall latency.
	MeanMillis float64
	P95Millis  float64
	MaxMillis  float64
	// Queued counts admissions that waited for a slot at this point.
	Queued int64
	// Speedup is QPS relative to the 1-client point of the same report.
	Speedup float64
}

// ConcurrencyReport is experiment E13: throughput and latency of one
// strategy at increasing client counts over a shared engine on the Real
// (wall-clock) runtime. Unlike the simulated figures this measures actual
// elapsed time, so the numbers vary run to run with the host — which is
// why E13 is excluded from `hetsim -figure all` (that output is
// bit-for-bit deterministic).
type ConcurrencyReport struct {
	Alg           string
	PerClient     int
	MaxConcurrent int
	Points        []ConcurrencyPoint
}

// ConcurrencySweep measures query throughput at each client count over one
// shared engine (admission bound maxConcurrent, lookup caches on), each
// client running perClient queries of the strategy on its own Real
// runtime. The workload is one deterministic Table 2 draw from cfg.
func ConcurrencySweep(cfg Config, alg exec.Algorithm, clientCounts []int, perClient, maxConcurrent int) (*ConcurrencyReport, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 2, 4, 8, 16}
	}
	if perClient <= 0 {
		perClient = 10
	}
	if maxConcurrent <= 0 {
		maxConcurrent = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := cfg.Ranges.Draw(rng)
	w, err := workload.Generate(params, rng)
	if err != nil {
		return nil, fmt.Errorf("sim: concurrency workload: %w", err)
	}

	// Model per-operation site latency unless the config supplies its own
	// fault plan: on the Real runtime the school-scale queries are pure CPU
	// and a single core shows no overlap, but a coordinator's concurrency
	// win comes from overlapping its waits on remote sites. A flat 200µs
	// per site operation stands in for that network round trip.
	faults := cfg.Faults
	if faults == nil {
		faults = func() *fabric.FaultPlan {
			fp := fabric.NewFaultPlan()
			for site := range w.Databases {
				fp.Delay(site, 200)
			}
			return fp
		}
	}

	rep := &ConcurrencyReport{Alg: alg.String(), PerClient: perClient, MaxConcurrent: maxConcurrent}
	for _, clients := range clientCounts {
		// Fresh engine (and so fresh caches and metrics) per point, same
		// workload: the points differ only in offered concurrency.
		reg := metrics.New()
		engCfg := exec.Config{
			Global:        w.Global,
			Coordinator:   CoordinatorSite,
			Databases:     w.Databases,
			Tables:        w.Tables,
			Metrics:       reg,
			MaxConcurrent: maxConcurrent,
			Cache:         true,
		}
		if alg == exec.SBL || alg == exec.SPL {
			engCfg.Signatures = signature.Build(w.Databases)
		}
		engine, err := exec.New(engCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: concurrency engine: %w", err)
		}

		lat := make([]time.Duration, clients*perClient)
		var wg sync.WaitGroup
		var runErr error
		var errOnce sync.Once
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for q := 0; q < perClient; q++ {
					t0 := time.Now()
					rt := fabric.NewReal(cfg.Rates).WithFaults(faults())
					if _, _, err := engine.Run(rt, alg, w.Bound); err != nil {
						errOnce.Do(func() { runErr = err })
						return
					}
					lat[c*perClient+q] = time.Since(t0)
				}
			}(c)
		}
		wg.Wait()
		if runErr != nil {
			return nil, fmt.Errorf("sim: concurrency run (%d clients): %w", clients, runErr)
		}
		wall := time.Since(start)

		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		n := len(lat)
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		p95 := lat[min(n-1, n*95/100)]
		pt := ConcurrencyPoint{
			Clients:    clients,
			QPS:        float64(n) / wall.Seconds(),
			MeanMillis: float64(sum.Microseconds()) / float64(n) / 1e3,
			P95Millis:  float64(p95.Microseconds()) / 1e3,
			MaxMillis:  float64(lat[n-1].Microseconds()) / 1e3,
			Queued:     reg.Snapshot().CounterValue("queries_queued_total", metrics.Labels{Site: string(CoordinatorSite)}),
		}
		if len(rep.Points) > 0 && rep.Points[0].QPS > 0 {
			pt.Speedup = pt.QPS / rep.Points[0].QPS
		} else {
			pt.Speedup = 1
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// Table renders the report in the same plain style as Experiment.Table.
func (r *ConcurrencyReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E13: concurrent query throughput — %s, %d queries/client, admission %d (wall clock, not deterministic)\n",
		r.Alg, r.PerClient, r.MaxConcurrent)
	fmt.Fprintf(&b, "%8s %10s %9s %11s %11s %11s %7s\n",
		"clients", "qps", "speedup", "mean ms", "p95 ms", "max ms", "queued")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %10.1f %8.2fx %11.3f %11.3f %11.3f %7d\n",
			p.Clients, p.QPS, p.Speedup, p.MeanMillis, p.P95Millis, p.MaxMillis, p.Queued)
	}
	return b.String()
}

// CSV renders the report's series as CSV, mirroring Experiment.CSV.
func (r *ConcurrencyReport) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,alg,clients,qps,speedup,mean_ms,p95_ms,max_ms,queued\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "concurrency,%s,%d,%.2f,%.3f,%.4f,%.4f,%.4f,%d\n",
			r.Alg, p.Clients, p.QPS, p.Speedup, p.MeanMillis, p.P95Millis, p.MaxMillis, p.Queued)
	}
	return b.String()
}
