package sim

import (
	"strings"
	"testing"

	"github.com/hetfed/hetfed/internal/exec"
)

// TestConcurrencySweepSmoke runs E13 at a tiny scale: the report must carry
// one point per client count with positive throughput and sane latency
// ordering, and render both table and CSV.
func TestConcurrencySweepSmoke(t *testing.T) {
	cfg := tinyConfig()
	rep, err := ConcurrencySweep(cfg, exec.BL, []int{1, 2}, 2, 2)
	if err != nil {
		t.Fatalf("ConcurrencySweep: %v", err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.QPS <= 0 {
			t.Errorf("clients=%d: qps = %v, want > 0", p.Clients, p.QPS)
		}
		if p.MeanMillis <= 0 || p.MaxMillis < p.P95Millis || p.P95Millis < 0 {
			t.Errorf("clients=%d: latency stats inconsistent: %+v", p.Clients, p)
		}
	}
	if rep.Points[0].Speedup != 1 {
		t.Errorf("first point speedup = %v, want 1", rep.Points[0].Speedup)
	}
	if !strings.Contains(rep.Table(), "E13") {
		t.Error("Table missing E13 header")
	}
	if !strings.HasPrefix(rep.CSV(), "experiment,alg,clients") {
		t.Errorf("CSV header wrong: %q", rep.CSV())
	}
}
