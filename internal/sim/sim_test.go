package sim

import (
	"strings"
	"testing"

	"github.com/hetfed/hetfed/internal/workload"
)

// tinyConfig keeps experiment tests fast while preserving the qualitative
// shapes (the CLI and benchmarks run the full-scale versions).
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Samples = 3
	cfg.Ranges.NObjects = [2]int{150, 250}
	return cfg
}

func TestFigure9Shapes(t *testing.T) {
	cfg := tinyConfig()
	ex, err := Figure9(cfg, []int{100, 400})
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	if len(ex.Points) != 2 {
		t.Fatalf("points = %d", len(ex.Points))
	}
	last := ex.Points[len(ex.Points)-1].ByAlg

	// Paper, Figure 9(a): total(BL) < total(PL) < total(CA).
	if !(last["BL"].TotalMillis < last["PL"].TotalMillis) {
		t.Errorf("total BL (%g) should beat PL (%g)", last["BL"].TotalMillis, last["PL"].TotalMillis)
	}
	if !(last["PL"].TotalMillis < last["CA"].TotalMillis) {
		t.Errorf("total PL (%g) should beat CA (%g)", last["PL"].TotalMillis, last["CA"].TotalMillis)
	}
	// Paper, Figure 9(b): localized response times are much shorter.
	if !(last["BL"].ResponseMillis < last["CA"].ResponseMillis) ||
		!(last["PL"].ResponseMillis < last["CA"].ResponseMillis) {
		t.Errorf("localized response should beat CA: %+v", last)
	}
	// Times grow with the number of objects.
	first := ex.Points[0].ByAlg
	for _, alg := range []string{"CA", "BL", "PL"} {
		if !(first[alg].TotalMillis < last[alg].TotalMillis) {
			t.Errorf("%s total did not grow with N_o: %g → %g",
				alg, first[alg].TotalMillis, last[alg].TotalMillis)
		}
	}
}

func TestFigure10Shapes(t *testing.T) {
	cfg := tinyConfig()
	ex, err := Figure10(cfg, []int{2, 5})
	if err != nil {
		t.Fatalf("Figure10: %v", err)
	}
	first, last := ex.Points[0].ByAlg, ex.Points[1].ByAlg

	// Paper, Figure 10(a): the growing rate of PL's total execution time
	// exceeds CA's (more isomeric objects mean more assistant checks).
	plGrowth := last["PL"].TotalMillis / first["PL"].TotalMillis
	caGrowth := last["CA"].TotalMillis / first["CA"].TotalMillis
	if plGrowth <= caGrowth {
		t.Errorf("PL growth (%.2f×) should exceed CA growth (%.2f×)", plGrowth, caGrowth)
	}
	// Paper, Figure 10(b): localized response stays below CA even at many
	// databases.
	if !(last["BL"].ResponseMillis < last["CA"].ResponseMillis) {
		t.Errorf("BL response (%g) should beat CA (%g)", last["BL"].ResponseMillis, last["CA"].ResponseMillis)
	}
	if !(last["PL"].ResponseMillis < last["CA"].ResponseMillis) {
		t.Errorf("PL response (%g) should beat CA (%g)", last["PL"].ResponseMillis, last["CA"].ResponseMillis)
	}
}

func TestFigure11Shapes(t *testing.T) {
	cfg := tinyConfig()
	ex, err := Figure11(cfg, []float64{0.2, 0.8})
	if err != nil {
		t.Fatalf("Figure11: %v", err)
	}
	first, last := ex.Points[0].ByAlg, ex.Points[1].ByAlg

	// Paper, Figure 11: varying the selectivity does not influence CA.
	caRatio := last["CA"].TotalMillis / first["CA"].TotalMillis
	if caRatio > 1.02 || caRatio < 0.98 {
		t.Errorf("CA total should be flat in selectivity, ratio = %.3f", caRatio)
	}
	// BL and PL grow with selectivity (fewer objects eliminated locally).
	if !(last["BL"].TotalMillis > first["BL"].TotalMillis) {
		t.Errorf("BL total should grow with selectivity: %g → %g",
			first["BL"].TotalMillis, last["BL"].TotalMillis)
	}
	if !(last["PL"].TotalMillis > first["PL"].TotalMillis) {
		t.Errorf("PL total should grow with selectivity: %g → %g",
			first["PL"].TotalMillis, last["PL"].TotalMillis)
	}
	// BL's growth rate exceeds PL's (BL's assistant checking also scales
	// with the surviving objects; PL's does not).
	blSlope := last["BL"].TotalMillis - first["BL"].TotalMillis
	plSlope := last["PL"].TotalMillis - first["PL"].TotalMillis
	if blSlope <= plSlope {
		t.Errorf("BL slope (%g) should exceed PL slope (%g)", blSlope, plSlope)
	}
}

func TestExperimentDeterminism(t *testing.T) {
	cfg := tinyConfig()
	cfg.Samples = 2
	ex1, err := Figure9(cfg, []int{120})
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := Figure9(cfg, []int{120})
	if err != nil {
		t.Fatal(err)
	}
	for alg, a1 := range ex1.Points[0].ByAlg {
		a2 := ex2.Points[0].ByAlg[alg]
		if a1 != a2 {
			t.Errorf("%s: %+v vs %+v", alg, a1, a2)
		}
	}
}

func TestTableAndCSVRender(t *testing.T) {
	cfg := tinyConfig()
	cfg.Samples = 1
	ex, err := Figure11(cfg, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	tbl := ex.Table()
	for _, want := range []string{"total execution time", "response time", "CA", "BL", "PL", "0.50"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table missing %q:\n%s", want, tbl)
		}
	}
	csv := ex.CSV()
	if !strings.HasPrefix(csv, "figure,x,algorithm,") {
		t.Errorf("CSV header wrong: %q", csv[:40])
	}
	if got := strings.Count(csv, "\n"); got != 4 { // header + 3 algorithms
		t.Errorf("CSV lines = %d, want 4:\n%s", got, csv)
	}
}

func TestConfigAlgorithmsSubset(t *testing.T) {
	cfg := tinyConfig()
	cfg.Samples = 1
	cfg.Algorithms = cfg.Algorithms[:0]
	cfg.Ranges = workload.DefaultRanges()
	cfg.Ranges.NObjects = [2]int{50, 60}
	ex, err := Figure9(cfg, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Points[0].ByAlg) != 3 {
		t.Errorf("default algorithms = %v", ex.Points[0].ByAlg)
	}
}

func TestPlannerAccuracy(t *testing.T) {
	cfg := tinyConfig()
	cfg.Samples = 6
	report, err := PlannerAccuracy(cfg)
	if err != nil {
		t.Fatalf("PlannerAccuracy: %v", err)
	}
	if report.Samples != 6 {
		t.Errorf("samples = %d", report.Samples)
	}
	// The planner must pick the actual winner at least half the time at
	// this scale and never with catastrophic regret.
	if report.Correct*2 < report.Samples {
		t.Errorf("planner correct only %d/%d", report.Correct, report.Samples)
	}
	if report.MaxRegret > 1.5 {
		t.Errorf("max regret = %.2f", report.MaxRegret)
	}
	s := report.String()
	for _, want := range []string{"picked the fastest", "regret", "chosen"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestIndexAblationShapes(t *testing.T) {
	cfg := tinyConfig()
	ex, err := IndexAblation(cfg, []float64{0.1, 0.9})
	if err != nil {
		t.Fatalf("IndexAblation: %v", err)
	}
	low, high := ex.Points[0].ByAlg, ex.Points[1].ByAlg
	// At selective predicates the index saves substantially.
	if !(low["BL+idx"].TotalMillis < low["BL"].TotalMillis) {
		t.Errorf("BL+idx (%g) should beat BL (%g) at low selectivity",
			low["BL+idx"].TotalMillis, low["BL"].TotalMillis)
	}
	// The saving shrinks as selectivity rises (more candidates).
	lowGain := low["BL"].TotalMillis / low["BL+idx"].TotalMillis
	highGain := high["BL"].TotalMillis / high["BL+idx"].TotalMillis
	if lowGain <= highGain {
		t.Errorf("index gain should shrink with selectivity: %.2f vs %.2f", lowGain, highGain)
	}
}

func TestStdDevReported(t *testing.T) {
	cfg := tinyConfig()
	cfg.Samples = 3
	ex, err := Figure9(cfg, []int{150})
	if err != nil {
		t.Fatal(err)
	}
	for alg, a := range ex.Points[0].ByAlg {
		// Three randomized workloads never coincide exactly.
		if a.TotalStd <= 0 || a.ResponseStd <= 0 {
			t.Errorf("%s: zero spread %+v", alg, a)
		}
		if a.TotalStd > a.TotalMillis {
			t.Errorf("%s: implausible spread %+v", alg, a)
		}
	}
	csv := ex.CSV()
	if !strings.Contains(csv, "total_std") || !strings.Contains(csv, "response_std") {
		t.Errorf("CSV missing stddev columns: %q", csv[:80])
	}
}

func TestMeanStdDev(t *testing.T) {
	if m := mean([]float64{2, 4, 6}); m != 4 {
		t.Errorf("mean = %g", m)
	}
	if m := mean(nil); m != 0 {
		t.Errorf("mean(nil) = %g", m)
	}
	if s := stddev([]float64{2, 4, 6}); s < 1.99 || s > 2.01 {
		t.Errorf("stddev = %g", s)
	}
	if s := stddev([]float64{5}); s != 0 {
		t.Errorf("stddev single = %g", s)
	}
}

func TestFaultSweepShapes(t *testing.T) {
	cfg := tinyConfig()
	ex, err := FaultSweep(cfg, []int{0, 1})
	if err != nil {
		t.Fatalf("FaultSweep: %v", err)
	}
	if len(ex.Points) != 2 {
		t.Fatalf("points = %d", len(ex.Points))
	}
	healthy, degraded := ex.Points[0].ByAlg, ex.Points[1].ByAlg
	for _, alg := range []string{"CA", "BL", "PL"} {
		// No faults: nothing is degraded.
		if healthy[alg].DegradedShare != 0 {
			t.Errorf("%s: degraded share %g with no faults", alg, healthy[alg].DegradedShare)
		}
		// One dead database: every run degrades instead of failing, and the
		// lost certainty surfaces as extra maybe rows.
		if degraded[alg].DegradedShare != 1 {
			t.Errorf("%s: degraded share %g with DB1 dead, want 1", alg, degraded[alg].DegradedShare)
		}
		if !(degraded[alg].MaybeRows > healthy[alg].MaybeRows) {
			t.Errorf("%s: maybe rows %g with DB1 dead not above healthy %g",
				alg, degraded[alg].MaybeRows, healthy[alg].MaybeRows)
		}
	}
}
