package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/trace"
)

// okProfile is a healthy, fast profile — flight-recorder filler.
func okProfile(id string) *trace.Profile {
	return &trace.Profile{ID: id, Alg: "PL", Status: trace.StatusOK, WallMicros: 500}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(okProfile("q1"))
	if r.Profiles() != nil || r.Get("q1") != nil || r.Last() != nil || r.Recorded() != 0 {
		t.Error("nil recorder is not a no-op")
	}
	NewRecorder(RecorderConfig{}).Record(nil) // nil profile must not panic
}

func TestRecorderRetention(t *testing.T) {
	reg := metrics.New()
	r := NewRecorder(RecorderConfig{Site: "G", Size: 4, Metrics: reg})

	degraded := &trace.Profile{ID: "bad1", Alg: "BL", Status: trace.StatusDegraded,
		WallMicros: 600, Unavailable: []string{"DB2"}}
	errored := &trace.Profile{ID: "bad2", Alg: "CA", Status: trace.StatusError,
		WallMicros: 700, Error: "DB3 unreachable"}
	r.Record(degraded)
	r.Record(errored)
	// Flood with healthy queries, several ring-fulls past capacity.
	for i := 0; i < 20; i++ {
		r.Record(okProfile(fmt.Sprintf("ok%d", i)))
	}

	// The interesting profiles survive; healthy filler ages out oldest-first.
	if r.Get("bad1") != degraded {
		t.Error("degraded profile evicted")
	}
	if r.Get("bad2") != errored {
		t.Error("errored profile evicted")
	}
	if r.Get("ok0") != nil {
		t.Error("oldest healthy profile still present after 20 records into a ring of 4")
	}
	profiles := r.Profiles()
	if len(profiles) != 4 {
		t.Fatalf("ring holds %d profiles, want 4", len(profiles))
	}
	// Newest first: the latest healthy query leads the listing.
	if profiles[0].ID != "ok19" {
		t.Errorf("newest profile = %s, want ok19", profiles[0].ID)
	}
	if r.Last() != profiles[0] {
		t.Error("Last() disagrees with Profiles()[0]")
	}
	if r.Recorded() != 22 {
		t.Errorf("recorded = %d, want 22", r.Recorded())
	}
	snap := reg.Snapshot()
	if n := snap.CounterValue("profiles_recorded_total", metrics.Labels{Site: "G"}); n != 22 {
		t.Errorf("profiles_recorded_total = %d", n)
	}
	if n := snap.CounterValue("profiles_evicted_total", metrics.Labels{Site: "G"}); n != 18 {
		t.Errorf("profiles_evicted_total = %d, want 18", n)
	}
}

// TestRecorderSlowThreshold: crossing the absolute threshold marks the
// profile slow (retained, counted, logged).
func TestRecorderSlowThreshold(t *testing.T) {
	reg := metrics.New()
	var logBuf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&logBuf, nil))
	r := NewRecorder(RecorderConfig{Site: "G", Size: 3,
		SlowThreshold: time.Millisecond, Log: log, Metrics: reg})

	slow := &trace.Profile{ID: "slow1", Alg: "PL", Status: trace.StatusOK, WallMicros: 5000}
	r.Record(slow)
	for i := 0; i < 10; i++ {
		r.Record(okProfile(fmt.Sprintf("ok%d", i)))
	}
	if r.Get("slow1") != slow {
		t.Error("slow profile evicted")
	}
	if n := reg.Snapshot().CounterValue("slow_queries_total", metrics.Labels{Site: "G", Alg: "PL"}); n != 1 {
		t.Errorf("slow_queries_total = %d, want 1", n)
	}
	out := logBuf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "query=slow1") {
		t.Errorf("slow-query log missing: %q", out)
	}
	// The fast queries are neither counted nor logged.
	if strings.Count(out, "slow query") != 1 {
		t.Errorf("slow-query log fired %d times", strings.Count(out, "slow query"))
	}
}

// TestRecorderSlowQuantile: without an absolute threshold, a profile in the
// running latency tail is retained once enough samples back the estimate.
func TestRecorderSlowQuantile(t *testing.T) {
	r := NewRecorder(RecorderConfig{Site: "G", Size: 4})
	// Seed the distribution well past slowMinSamples with fast queries.
	for i := 0; i < 2*slowMinSamples; i++ {
		r.Record(okProfile(fmt.Sprintf("seed%d", i)))
	}
	tail := &trace.Profile{ID: "tail1", Alg: "PL", Status: trace.StatusOK, WallMicros: 900000}
	r.Record(tail)
	// Age the ring well past capacity with queries clearly below the
	// estimate; the tail profile must survive them.
	for i := 0; i < 10; i++ {
		r.Record(&trace.Profile{ID: fmt.Sprintf("after%d", i), Alg: "PL",
			Status: trace.StatusOK, WallMicros: 10})
	}
	if r.Get("tail1") != tail {
		t.Error("latency-tail profile evicted")
	}
}

// TestRecorderAllRetained: when every slot is retained, the oldest retained
// profile finally falls — the ring stays bounded.
func TestRecorderAllRetained(t *testing.T) {
	r := NewRecorder(RecorderConfig{Site: "G", Size: 3})
	for i := 0; i < 5; i++ {
		r.Record(&trace.Profile{ID: fmt.Sprintf("bad%d", i), Alg: "BL",
			Status: trace.StatusError, Error: "x", WallMicros: 100})
	}
	if got := len(r.Profiles()); got != 3 {
		t.Fatalf("ring holds %d, want 3", got)
	}
	if r.Get("bad0") != nil || r.Get("bad1") != nil {
		t.Error("oldest retained profiles not evicted under full-retained pressure")
	}
	if r.Get("bad4") == nil {
		t.Error("newest retained profile missing")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(RecorderConfig{Site: "G", Size: 8, Metrics: metrics.New()})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p := okProfile(fmt.Sprintf("q%d-%d", i, j))
				if j%10 == 0 {
					p.Status = trace.StatusDegraded
				}
				r.Record(p)
				if j%7 == 0 {
					r.Profiles()
					r.Last()
				}
			}
		}(i)
	}
	wg.Wait()
	if r.Recorded() != 800 {
		t.Errorf("recorded = %d, want 800", r.Recorded())
	}
	if got := len(r.Profiles()); got != 8 {
		t.Errorf("ring holds %d, want 8", got)
	}
}

// recordedQueryProfile builds a profile with real spans (so the trace
// endpoints have a tree to render/export) and records it.
func recordedQueryProfile(rec *Recorder, qid string) *trace.Profile {
	tr := &trace.Tracer{}
	root := tr.StartSpan(0, "G", "PL").WithQuery(qid, "PL")
	c := tr.StartSpan(root.ID(), "DB1", "PL_C1").WithQuery(qid, "PL").WithPhases("O")
	c.End()
	root.End()
	p := trace.BuildProfile(qid, "PL", tr.QuerySpans(qid))
	p.SetOutcome(2, 1, nil, nil)
	rec.Record(p)
	return p
}

func TestFlightRecorderEndpoints(t *testing.T) {
	reg := metrics.New()
	rec := NewRecorder(RecorderConfig{Site: "DB1", Metrics: reg})
	recordedQueryProfile(rec, "q1")
	tr := &trace.Tracer{}

	s, err := Serve("127.0.0.1:0", "DB1", reg, tr, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// /debug/queries: the text listing names the query and links its trace.
	code, body := get(t, s.Addr(), "/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("queries: status %d", code)
	}
	for _, want := range []string{"query", "wall(ms)", "q1", "PL", "ok", "/debug/trace/q1.json"} {
		if !strings.Contains(body, want) {
			t.Errorf("queries listing missing %q:\n%s", want, body)
		}
	}

	// ?format=json round-trips the profiles.
	code, body = get(t, s.Addr(), "/debug/queries?format=json")
	if code != http.StatusOK {
		t.Fatalf("queries json: status %d", code)
	}
	var profiles []*trace.Profile
	if err := json.Unmarshal([]byte(body), &profiles); err != nil {
		t.Fatalf("queries json: %v in %q", err, body)
	}
	if len(profiles) != 1 || profiles[0].ID != "q1" || profiles[0].Certain != 2 {
		t.Errorf("queries json = %+v", profiles)
	}

	// /debug/trace/q1: text header plus span tree.
	code, body = get(t, s.Addr(), "/debug/trace/q1")
	if code != http.StatusOK || !strings.Contains(body, "query q1 alg=PL") ||
		!strings.Contains(body, "PL_C1") {
		t.Errorf("trace text: %d %q", code, body)
	}

	// /debug/trace/q1.json: valid Chrome trace-event JSON covering the sites.
	code, body = get(t, s.Addr(), "/debug/trace/q1.json")
	if code != http.StatusOK {
		t.Fatalf("trace json: status %d", code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace json invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace json has no events")
	}
	for _, site := range []string{"DB1", "G"} {
		if !strings.Contains(body, site) {
			t.Errorf("trace json missing site %s", site)
		}
	}

	// Unknown (or aged-out) query IDs answer 404.
	code, body = get(t, s.Addr(), "/debug/trace/nope.json")
	if code != http.StatusNotFound || !strings.Contains(body, "aged out") {
		t.Errorf("missing profile: %d %q", code, body)
	}

	// /healthz carries the build version.
	code, body = get(t, s.Addr(), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"version":`) {
		t.Errorf("healthz version: %d %q", code, body)
	}

	// /metrics refreshes the runtime gauges on scrape.
	code, body = get(t, s.Addr(), "/metrics?format=text")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{"go_goroutines", "go_gomaxprocs", "go_heap_alloc_bytes",
		"profiles_recorded_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The pprof surface is mounted.
	code, body = get(t, s.Addr(), "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("pprof cmdline: %d %q", code, body)
	}
}

// TestQueriesEndpointNilRecorder: a process wired without a flight recorder
// still answers its listing endpoints (empty), not a panic.
func TestQueriesEndpointNilRecorder(t *testing.T) {
	s, err := Serve("127.0.0.1:0", "DB9", metrics.New(), &trace.Tracer{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, s.Addr(), "/debug/queries")
	if code != http.StatusOK || !strings.Contains(body, "no queries recorded") {
		t.Errorf("queries without recorder: %d %q", code, body)
	}
	code, _ = get(t, s.Addr(), "/debug/trace/q1.json")
	if code != http.StatusNotFound {
		t.Errorf("trace without recorder: %d", code)
	}
}
