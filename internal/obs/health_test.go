package obs

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/trace"
)

func TestHealthyStates(t *testing.T) {
	for state, want := range map[string]bool{
		"closed":        true,
		"ok":            true,
		"ok(seq=412)":   true,
		"open":          false,
		"half-open":     false,
		"pending(3)":    false,
		"needs-rebuild": false,
		"stopped":       false,
		"":              false,
	} {
		if got := Healthy(state); got != want {
			t.Errorf("Healthy(%q) = %v, want %v", state, got, want)
		}
	}
}

func TestPrefixHealth(t *testing.T) {
	src := Health(func() map[string]string {
		return map[string]string{"DB2": "pending(3)", "DB3": "closed"}
	})
	got := PrefixHealth("resync", src)()
	want := map[string]string{"resync:DB2": "pending(3)", "resync:DB3": "closed"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PrefixHealth = %v, want %v", got, want)
	}

	if got := PrefixHealth("x", nil)(); got != nil {
		t.Errorf("nil source yields %v, want nil", got)
	}
	empty := Health(func() map[string]string { return nil })
	if got := PrefixHealth("x", empty)(); got != nil {
		t.Errorf("empty source yields %v, want nil", got)
	}
}

// healthzBody fetches and decodes /healthz from a server composed of the
// given health sources.
func healthzBody(t *testing.T, health ...Health) struct {
	Status   string            `json:"status"`
	Breakers map[string]string `json:"breakers"`
	Degraded []string          `json:"degraded_peers"`
} {
	t.Helper()
	s, err := Serve("127.0.0.1:0", "G", metrics.New(), &trace.Tracer{}, nil, health...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, s.Addr(), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d: %s", code, body)
	}
	var got struct {
		Status   string            `json:"status"`
		Breakers map[string]string `json:"breakers"`
		Degraded []string          `json:"degraded_peers"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("healthz JSON: %v in %q", err, body)
	}
	return got
}

// One /healthz composes breaker, resync, and WAL sources; all healthy —
// including the WAL's annotated "ok(seq=N)" — keeps status "ok".
func TestHealthzMultiSourceAllHealthy(t *testing.T) {
	breakers := Health(func() map[string]string {
		return map[string]string{"DB2": "closed", "DB3": "closed"}
	})
	resync := Health(func() map[string]string { return nil })
	wal := Health(func() map[string]string {
		return map[string]string{"engine": "ok(seq=412)"}
	})

	got := healthzBody(t, breakers, PrefixHealth("resync", resync), PrefixHealth("wal", wal))
	if got.Status != "ok" {
		t.Errorf("status = %q, want ok; body %+v", got.Status, got)
	}
	if len(got.Degraded) != 0 {
		t.Errorf("degraded_peers = %v, want none", got.Degraded)
	}
	want := map[string]string{"DB2": "closed", "DB3": "closed", "wal:engine": "ok(seq=412)"}
	if !reflect.DeepEqual(got.Breakers, want) {
		t.Errorf("conditions = %v, want %v", got.Breakers, want)
	}
}

// Degraded-status precedence: a single unhealthy entry from any source —
// here the resync backlog, while every breaker is closed and the WAL is
// fine — flips the merged status, and the offending entries are listed
// sorted under degraded_peers.
func TestHealthzMultiSourcePrecedence(t *testing.T) {
	breakers := Health(func() map[string]string {
		return map[string]string{"DB2": "closed", "DB3": "half-open"}
	})
	resync := Health(func() map[string]string {
		return map[string]string{"DB3": "pending(2)"}
	})
	wal := Health(func() map[string]string {
		return map[string]string{"engine": "ok(seq=9)"}
	})

	got := healthzBody(t, breakers, PrefixHealth("resync", resync), PrefixHealth("wal", wal))
	if got.Status != "degraded" {
		t.Errorf("status = %q, want degraded; body %+v", got.Status, got)
	}
	wantDegraded := []string{"DB3", "resync:DB3"}
	if !reflect.DeepEqual(got.Degraded, wantDegraded) {
		t.Errorf("degraded_peers = %v, want %v (sorted, healthy entries excluded)",
			got.Degraded, wantDegraded)
	}
	if got.Breakers["wal:engine"] != "ok(seq=9)" {
		t.Errorf("wal entry = %q, lost in the merge", got.Breakers["wal:engine"])
	}

	// A stopped WAL alone degrades too: precedence is any-unhealthy-wins,
	// regardless of which source contributes the entry.
	got = healthzBody(t,
		Health(func() map[string]string { return map[string]string{"DB2": "closed"} }),
		PrefixHealth("wal", func() map[string]string {
			return map[string]string{"engine": "stopped"}
		}))
	if got.Status != "degraded" || len(got.Degraded) != 1 || got.Degraded[0] != "wal:engine" {
		t.Errorf("stopped WAL: %+v, want degraded with wal:engine listed", got)
	}
}
