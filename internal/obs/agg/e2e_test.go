package agg_test

// End-to-end acceptance for the observability plane, over real TCP: three
// school sites each serving queries (remote.Server) and an obs surface
// (/metrics, /healthz), a coordinator scraping all of them plus itself,
// and an SLO engine judging the rollup. One site is killed mid-run — the
// cluster view must mark it stale and the availability SLO must fire —
// then restarted on the same addresses — the alert must resolve and the
// scraper must count the counter reset instead of folding a negative delta
// into the rollup. The whole plane must tear down without leaking
// goroutines.

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/obs/agg"
	"github.com/hetfed/hetfed/internal/obs/slo"
	"github.com/hetfed/hetfed/internal/remote"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/trace"
)

const scrapeEvery = 50 * time.Millisecond

// observedSite is one component site plus its observability surface.
type observedSite struct {
	srv *remote.Server
	obs *obs.Server
	reg *metrics.Registry
}

func (s *observedSite) close() {
	if s.obs != nil {
		s.obs.Close()
	}
	s.srv.Close()
}

// startObservedSite boots a site server on listenAddr and its obs surface
// on obsAddr ("127.0.0.1:0" first boot, the recorded addresses on
// restart). When deferObs is true the obs surface is NOT started — the
// restart path serves queries first so the site's counters are non-zero
// (but smaller than before the crash) by the time the scraper reconnects,
// which is what makes the reset detectable.
func startObservedSite(t *testing.T, fx *school.Fixture, sigs *signature.Index,
	sid object.SiteID, db *store.Database, listenAddr, obsAddr string, deferObs bool) *observedSite {
	t.Helper()
	reg := metrics.New()
	tr := &trace.Tracer{}
	srv, err := remote.NewServer(remote.ServerConfig{
		DB:         db,
		Global:     fx.Global,
		Tables:     fx.Mapping,
		Signatures: sigs,
		Tracer:     tr,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatalf("NewServer(%s): %v", sid, err)
	}
	if err := srv.Listen(listenAddr); err != nil {
		t.Fatalf("Listen(%s, %s): %v", sid, listenAddr, err)
	}
	site := &observedSite{srv: srv, reg: reg}
	if !deferObs {
		site.serveObs(t, sid, obsAddr)
	}
	return site
}

func (s *observedSite) serveObs(t *testing.T, sid object.SiteID, addr string) {
	t.Helper()
	osrv, err := obs.Serve(addr, string(sid), s.reg, nil, nil)
	if err != nil {
		t.Fatalf("obs.Serve(%s, %s): %v", sid, addr, err)
	}
	s.obs = osrv
}

func waitFor(t *testing.T, desc string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %s waiting for %s", timeout, desc)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
	}
}

func siteRow(r agg.Rollup, name string) *agg.SiteStatus {
	for i := range r.Sites {
		if r.Sites[i].Site == name {
			return &r.Sites[i]
		}
	}
	return nil
}

func alertState(alerts []slo.Alert, metric string) string {
	for _, a := range alerts {
		if strings.Contains(a.Rule, metric) {
			return a.State
		}
	}
	return ""
}

func TestClusterObservabilityE2E(t *testing.T) {
	baseline := runtime.NumGoroutine()

	fx := school.New()
	sigs := signature.Build(fx.Databases)
	siteIDs := make([]object.SiteID, 0, len(fx.Databases))
	for sid := range fx.Databases {
		siteIDs = append(siteIDs, sid)
	}
	sort.Slice(siteIDs, func(i, j int) bool { return siteIDs[i] < siteIDs[j] })

	sites := make(map[object.SiteID]*observedSite, len(siteIDs))
	addrs := make(map[object.SiteID]string, len(siteIDs))
	obsAddrs := make(map[object.SiteID]string, len(siteIDs))
	for _, sid := range siteIDs {
		s := startObservedSite(t, fx, sigs, sid, fx.Databases[sid], "127.0.0.1:0", "127.0.0.1:0", false)
		sites[sid] = s
		addrs[sid] = s.srv.Addr()
		obsAddrs[sid] = s.obs.Addr()
	}
	defer func() {
		for _, s := range sites {
			s.close()
		}
	}()
	for _, s := range sites {
		s.srv.SetPeers(addrs)
	}

	// The coordinator: queries the sites over TCP, records profiles, and
	// hosts the aggregation plane (scraper + SLO engine + /cluster).
	coordReg := metrics.New()
	coordTracer := &trace.Tracer{}
	rec := obs.NewRecorder(obs.RecorderConfig{Site: "G", Metrics: coordReg})
	coord := &remote.Coordinator{
		ID:       "G",
		Global:   fx.Global,
		Tables:   fx.Mapping,
		Sites:    addrs,
		Tracer:   coordTracer,
		Metrics:  coordReg,
		Recorder: rec,
	}
	defer coord.Close()

	targets := []agg.Target{{
		Site:  "G",
		Local: coordReg.Snapshot,
		LocalQueries: func() []agg.QuerySummary {
			var out []agg.QuerySummary
			for _, p := range rec.Profiles() {
				out = append(out, agg.QuerySummary{
					ID: p.ID, Alg: p.Alg, Status: p.Status, WallMicros: p.WallMicros,
					Certain: p.Certain, Maybe: p.Maybe, Unavailable: p.Unavailable,
				})
			}
			return out
		},
	}}
	for _, sid := range siteIDs {
		targets = append(targets, agg.Target{Site: string(sid), URL: "http://" + obsAddrs[sid]})
	}
	scr, err := agg.New(agg.Config{
		Site:     "G",
		Targets:  targets,
		Interval: scrapeEvery,
		Window:   2 * time.Second,
		Metrics:  coordReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := slo.ParseRules("availability >= 0.99; query_latency p99 < 30s over 2s")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := slo.New(slo.Config{Site: "G", Source: scr, Rules: rules, Metrics: coordReg})
	if err != nil {
		t.Fatal(err)
	}
	scr.SetOnScrape(engine.Evaluate)

	mux := obs.NewMux("G", coordReg, coordTracer, time.Now(), rec)
	scr.Register(mux, engine.Handler())
	coordObs, err := obs.ServeHandler("127.0.0.1:0", "G", coordReg, mux)
	if err != nil {
		t.Fatal(err)
	}
	defer coordObs.Close()
	base := "http://" + coordObs.Addr()
	scr.Start()
	defer scr.Stop()

	// Phase 1: healthy cluster. Traffic flows, every target is scraped,
	// the rollup sees all four sites and both SLOs hold. The burst is
	// deliberately large: the restarted site's fresh counters must stay
	// below these pre-crash values long enough for the scraper to observe
	// the reset in phase 3.
	for i := 0; i < 30; i++ {
		if _, _, err := coord.Query(school.Q1, exec.BL); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	waitFor(t, "all sites live", 5*time.Second, func() bool {
		live, total := scr.Liveness()
		return total == len(siteIDs)+1 && live == total
	})
	waitFor(t, "federation window sees traffic and availability ok", 5*time.Second, func() bool {
		if _, _, err := coord.Query(school.Q1, exec.BL); err != nil {
			t.Fatalf("query: %v", err)
		}
		return scr.Rollup().Fed.Window.Queries > 0 &&
			alertState(engine.Alerts(), "availability") == "ok"
	})

	var roll agg.Rollup
	getJSON(t, base+"/cluster?format=json", &roll)
	if roll.Fed.SitesTotal != len(siteIDs)+1 || roll.Fed.SitesLive != roll.Fed.SitesTotal {
		t.Fatalf("rollup liveness = %d/%d, want %d/%d",
			roll.Fed.SitesLive, roll.Fed.SitesTotal, len(siteIDs)+1, len(siteIDs)+1)
	}
	if roll.Fed.Window.Queries == 0 {
		t.Errorf("federation window saw no queries: %+v", roll.Fed.Window)
	}

	// Phase 2: kill DB3 (server and obs surface). /cluster must mark it
	// stale and the availability SLO must fire — the instant rule flips on
	// the first evaluation that sees the site past its staleness bound.
	const victim = object.SiteID("DB3")
	sites[victim].close()
	killedAt := time.Now()
	waitFor(t, "DB3 stale and availability firing", 5*time.Second, func() bool {
		row := siteRow(scr.Rollup(), string(victim))
		if row == nil || row.Live {
			return false
		}
		return alertState(engine.Alerts(), "availability") == "firing"
	})
	detected := time.Since(killedAt)
	// StaleAfter defaults to 3×interval; one more scrape pass notices. A
	// generous CI bound still proves detection is interval-scale, not
	// minutes-scale.
	if limit := 20 * scrapeEvery; detected > limit {
		t.Errorf("staleness detected after %s, want <= %s", detected, limit)
	}
	row := siteRow(scr.Rollup(), string(victim))
	if row.Status != "unreachable" {
		t.Errorf("dead site status = %q, want unreachable", row.Status)
	}
	var alerts []slo.Alert
	getJSON(t, base+"/cluster/alerts?format=json", &alerts)
	if alertState(alerts, "availability") != "firing" {
		t.Errorf("/cluster/alerts does not show availability firing: %+v", alerts)
	}

	// Phase 3: restart DB3 on the same addresses with a fresh (zeroed)
	// registry — the durable-site crash+restart shape. Queries run before
	// the obs surface comes back, so the scraper's first post-restart
	// scrape sees counters smaller than its last pre-crash raw snapshot
	// and must count a reset instead of going negative.
	fx2 := school.New()
	reborn := startObservedSite(t, fx, sigs, victim, fx2.Databases[victim],
		addrs[victim], obsAddrs[victim], true)
	sites[victim] = reborn
	reborn.srv.SetPeers(addrs)

	waitFor(t, "restarted DB3 serving queries", 5*time.Second, func() bool {
		// Tolerate failures while the coordinator's pool and breaker
		// re-discover the site; traffic doubles as the breaker probe.
		_, _, _ = coord.Query(school.Q1, exec.BL)
		return reborn.reg.Snapshot().Sum("requests_total") > 0
	})
	reborn.serveObs(t, victim, obsAddrs[victim])

	// No traffic while waiting: the restarted site's counters must stay
	// below their pre-crash values until the scraper reconnects, or the
	// reset would be indistinguishable from ordinary growth.
	waitFor(t, "reset counted and availability resolved", 10*time.Second, func() bool {
		resets := coordReg.Snapshot().CounterValue("scrape_resets_total",
			metrics.Labels{Site: "G", Peer: string(victim)})
		if resets < 1 {
			return false
		}
		live, total := scr.Liveness()
		return live == total && alertState(engine.Alerts(), "availability") == "ok"
	})
	row = siteRow(scr.Rollup(), string(victim))
	if row.Resets < 1 {
		t.Errorf("rollup resets = %d, want >= 1", row.Resets)
	}
	if row.Window.Queries < 0 || row.Window.QPS < 0 {
		t.Errorf("post-restart window went negative: %+v", row.Window)
	}

	// The combined dashboard document round-trips: fetch the three
	// endpoints the way hetops -once -json does, re-marshal, re-parse —
	// identical structures.
	type snapshot struct {
		Cluster agg.Rollup         `json:"cluster"`
		Alerts  []slo.Alert        `json:"alerts"`
		Queries []agg.QuerySummary `json:"queries"`
	}
	var snap snapshot
	getJSON(t, base+"/cluster?format=json", &snap.Cluster)
	getJSON(t, base+"/cluster/alerts?format=json", &snap.Alerts)
	getJSON(t, base+"/cluster/queries?format=json&n=5", &snap.Queries)
	if len(snap.Queries) == 0 {
		t.Errorf("federation slow-query log is empty after %d+ queries", 5)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var again snapshot
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, again) {
		t.Errorf("dashboard document does not round-trip:\n got %+v\nwant %+v", again, snap)
	}

	// Teardown everything and verify the plane leaks no goroutines: the
	// scraper loop, obs servers, site accept loops and pooled connections
	// must all unwind.
	scr.Stop()
	coordObs.Close()
	coord.Close()
	for _, s := range sites {
		s.close()
	}
	settleGoroutines(t, baseline)
}

func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d running, baseline %d", n, baseline)
}
