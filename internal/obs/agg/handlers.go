package agg

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// defaultQueryLimit bounds /cluster/queries when the client doesn't pass
// ?n=; every site's full flight recorder merged is more than a terminal
// wants.
const defaultQueryLimit = 20

// Register mounts the cluster endpoints on a mux (the coordinator calls
// this on its obs.NewMux handler before obs.ServeHandler binds it):
//
//	/cluster          federation rollup: text by default, ?format=json
//	/cluster/queries  merged slow-query log: text, ?format=json, ?n=N
//	/cluster/alerts   delegated to alerts (the SLO engine's handler);
//	                  an empty JSON list when alerts is nil
func (s *Scraper) Register(mux *http.ServeMux, alerts http.Handler) {
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		roll := s.Rollup()
		if r.URL.Query().Get("format") == "json" {
			writeJSON(w, roll)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, roll.Text())
	})
	mux.HandleFunc("/cluster/queries", func(w http.ResponseWriter, r *http.Request) {
		limit := defaultQueryLimit
		if n := r.URL.Query().Get("n"); n != "" {
			v, err := strconv.Atoi(n)
			if err != nil || v < 0 {
				http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
				return
			}
			limit = v
		}
		qs := s.SlowQueries(r.Context(), limit)
		if r.URL.Query().Get("format") == "json" {
			if qs == nil {
				qs = []QuerySummary{}
			}
			writeJSON(w, qs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, queriesText(qs))
	})
	if alerts == nil {
		alerts = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, []struct{}{})
		})
	}
	mux.Handle("/cluster/alerts", alerts)
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
	fmt.Fprintln(w)
}
