package agg

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// QuerySummary is one row of the federation-wide slow-query log: the
// fields of a trace.Profile that matter for triage (the JSON tags match,
// so a site's /debug/queries listing decodes directly), plus Sources — the
// scraped sites whose flight recorders hold the profile. The full span
// tree stays one link away at /debug/trace/{id}.json on any source site.
type QuerySummary struct {
	ID          string   `json:"id"`
	Alg         string   `json:"alg"`
	Status      string   `json:"status"`
	WallMicros  float64  `json:"wall_us"`
	Certain     int      `json:"certain"`
	Maybe       int      `json:"maybe"`
	Unavailable []string `json:"unavailable,omitempty"`
	Sources     []string `json:"sources,omitempty"`
}

// SlowQueries merges every target's flight-recorder listing into one
// federation log: profiles deduped by trace ID (a query recorded by the
// coordinator and by the sites it touched is one row, keeping the longest
// wall clock — the end-to-end view), sorted slowest first, truncated to
// limit (0 = no limit). Unreachable sites are skipped; the log is
// best-effort by design.
func (s *Scraper) SlowQueries(ctx context.Context, limit int) []QuerySummary {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	targets := make([]Target, len(s.sites))
	for i, st := range s.sites {
		targets[i] = st.target
	}
	s.mu.Unlock()

	type listing struct {
		site    string
		queries []QuerySummary
	}
	results := make([]listing, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			if t.Local != nil {
				if t.LocalQueries != nil {
					results[i] = listing{t.Site, t.LocalQueries()}
				}
				return
			}
			qs, err := fetchQueries(ctx, s.client.Do, t.URL)
			if err != nil {
				return
			}
			results[i] = listing{t.Site, qs}
		}(i, t)
	}
	wg.Wait()

	byID := make(map[string]*QuerySummary)
	var order []string
	for _, l := range results {
		for _, q := range l.queries {
			if q.ID == "" {
				continue
			}
			cur, seen := byID[q.ID]
			if !seen {
				q.Sources = []string{l.site}
				cp := q
				byID[q.ID] = &cp
				order = append(order, q.ID)
				continue
			}
			cur.Sources = append(cur.Sources, l.site)
			if q.WallMicros > cur.WallMicros {
				src := cur.Sources
				*cur = q
				cur.Sources = src
			}
		}
	}
	merged := make([]QuerySummary, 0, len(order))
	for _, id := range order {
		merged = append(merged, *byID[id])
	}
	sort.SliceStable(merged, func(i, j int) bool {
		return merged[i].WallMicros > merged[j].WallMicros
	})
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged
}

func fetchQueries(ctx context.Context, do func(*http.Request) (*http.Response, error), base string) ([]QuerySummary, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/queries?format=json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("agg: %s/debug/queries: status %s", base, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	var qs []QuerySummary
	if err := json.Unmarshal(body, &qs); err != nil {
		return nil, fmt.Errorf("agg: %s/debug/queries: %w", base, err)
	}
	return qs, nil
}

// queriesText renders the merged log as the /cluster/queries text body.
func queriesText(qs []QuerySummary) string {
	var b strings.Builder
	if len(qs) == 0 {
		b.WriteString("(no queries recorded federation-wide)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s %-8s %-9s %10s %8s %6s  %-16s %s\n",
		"query", "alg", "status", "wall(ms)", "certain", "maybe", "sources", "trace")
	for _, q := range qs {
		fmt.Fprintf(&b, "%-14s %-8s %-9s %10.3f %8d %6d  %-16s /debug/trace/%s.json\n",
			q.ID, q.Alg, q.Status, q.WallMicros/1e3, q.Certain, q.Maybe,
			strings.Join(q.Sources, ","), q.ID)
	}
	return b.String()
}
