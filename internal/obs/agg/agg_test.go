package agg

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
)

// fakeSite serves a registry's snapshot as a minimal obs surface.
func fakeSite(t *testing.T, reg *metrics.Registry, health string, queries []QuerySummary) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/metrics":
			data, err := reg.Snapshot().JSON()
			if err != nil {
				http.Error(w, err.Error(), 500)
				return
			}
			w.Write(data)
		case "/healthz":
			io.WriteString(w, health)
		case "/debug/queries":
			json.NewEncoder(w).Encode(queries)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// newTestScraper builds a scraper over the targets with an injected clock;
// the returned advance func moves the clock and runs one scrape pass.
func newTestScraper(t *testing.T, cfg Config) (*Scraper, func(step time.Duration)) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_000_000, 0)
	s.nowFn = func() time.Time { return now }
	return s, func(step time.Duration) {
		now = now.Add(step)
		s.ScrapeOnce(context.Background())
	}
}

func TestRollupWindowStats(t *testing.T) {
	coord := metrics.New() // coordinator-style target: query metrics
	site := metrics.New()  // component-site-style target: request metrics
	srv := fakeSite(t, site, `{"status":"ok","uptime_seconds":42,"breakers":{"DB2":"closed"}}`, nil)

	s, advance := newTestScraper(t, Config{
		Site:     "G",
		Interval: time.Second,
		Window:   10 * time.Second,
		Metrics:  metrics.New(),
		Targets: []Target{
			{Site: "G", Local: coord.Snapshot},
			{Site: "DB1", URL: srv.URL},
		},
	})

	advance(0) // first pass: baselines only
	// 20 queries at 1ms each over the next 2 simulated seconds, half degraded.
	for i := 0; i < 20; i++ {
		coord.Counter("queries_total", metrics.Labels{Site: "G", Alg: "BL"}).Add(1)
		coord.Histogram("query_latency_us", metrics.Labels{Site: "G", Alg: "BL"}).Observe(1000)
	}
	coord.Counter("degraded_queries_total", metrics.Labels{Site: "G", Alg: "BL"}).Add(10)
	site.Counter("requests_total", metrics.Labels{Site: "DB1", Alg: "BL"}).Add(40)
	site.Histogram("request_latency_us", metrics.Labels{Site: "DB1", Alg: "BL"}).Observe(500)
	advance(2 * time.Second)

	roll := s.Rollup()
	if roll.Fed.SitesLive != 2 || roll.Fed.SitesTotal != 2 {
		t.Fatalf("liveness = %d/%d, want 2/2", roll.Fed.SitesLive, roll.Fed.SitesTotal)
	}
	var g, db1 SiteStatus
	for _, row := range roll.Sites {
		switch row.Site {
		case "G":
			g = row
		case "DB1":
			db1 = row
		}
	}
	if g.Window.Queries != 20 || g.Window.QPS != 10 {
		t.Errorf("G window = %+v, want 20 queries at 10 qps", g.Window)
	}
	if g.Window.DegradedPct != 50 {
		t.Errorf("G degraded%% = %.1f, want 50", g.Window.DegradedPct)
	}
	if g.Window.P99Ms <= 0 {
		t.Errorf("G p99 = %.3fms, want > 0", g.Window.P99Ms)
	}
	if db1.Window.Queries != 40 || db1.Window.QPS != 20 {
		t.Errorf("DB1 window (request fallback) = %+v, want 40 at 20 qps", db1.Window)
	}
	if db1.Status != "ok" || db1.UptimeS != 42 || db1.Conditions["DB2"] != "closed" {
		t.Errorf("DB1 health not folded in: %+v", db1)
	}
	// The federation window prefers the coordinator's end-to-end
	// queries_total over the sites' requests_total — adding the two
	// families would double-count every fanned-out query.
	if roll.Fed.Window.Queries != 20 {
		t.Errorf("fed queries = %d, want 20 (no request double-count)", roll.Fed.Window.Queries)
	}

	// Text rendering carries the rows.
	text := roll.Text()
	if !strings.Contains(text, "DB1") || !strings.Contains(text, "2/2 live") {
		t.Errorf("rollup text missing content:\n%s", text)
	}
}

// A restarting site must not corrupt windowed rates: the cumulative series
// stays monotone and the reset lands in scrape_resets_total.
func TestScrapeCounterReset(t *testing.T) {
	reg := metrics.New()
	reg.Counter("requests_total", metrics.Labels{Site: "DB1"}).Add(100)
	var current = reg // swapped to simulate restart
	srv := fakeSite(t, metrics.New(), "", nil)
	srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		data, _ := current.Snapshot().JSON()
		w.Write(data)
	})

	self := metrics.New()
	s, advance := newTestScraper(t, Config{
		Site: "G", Interval: time.Second, Window: time.Minute, Metrics: self,
		Targets: []Target{{Site: "DB1", URL: srv.URL}},
	})
	advance(0)
	current.Counter("requests_total", metrics.Labels{Site: "DB1"}).Add(20)
	advance(time.Second)

	// "Restart": fresh registry, counter back near zero.
	current = metrics.New()
	current.Counter("requests_total", metrics.Labels{Site: "DB1"}).Add(5)
	advance(time.Second)

	if d, ok := s.WindowDelta(time.Minute); !ok {
		t.Fatal("no window delta")
	} else if n := d.Sum("requests_total"); n != 25 {
		t.Errorf("windowed requests across restart = %d, want 25 (20 before + 5 after)", n)
	}
	resets := self.Snapshot().CounterValue("scrape_resets_total",
		metrics.Labels{Site: "G", Peer: "DB1"})
	if resets != 1 {
		t.Errorf("scrape_resets_total = %d, want 1", resets)
	}
	if roll := s.Rollup(); roll.Sites[0].Resets != 1 {
		t.Errorf("rollup resets = %d, want 1", roll.Sites[0].Resets)
	}
}

func TestStalenessAndFailures(t *testing.T) {
	srv := fakeSite(t, metrics.New(), `{"status":"ok"}`, nil)
	self := metrics.New()
	s, advance := newTestScraper(t, Config{
		Site: "G", Interval: time.Second, StaleAfter: 3 * time.Second, Metrics: self,
		Targets: []Target{{Site: "DB1", URL: srv.URL}},
	})
	advance(0)
	if live, total := s.Liveness(); live != 1 || total != 1 {
		t.Fatalf("liveness after scrape = %d/%d", live, total)
	}

	srv.Close() // site dies
	advance(time.Second)
	advance(time.Second)
	advance(2 * time.Second) // 4s since last success > StaleAfter

	if live, _ := s.Liveness(); live != 0 {
		t.Errorf("dead site still live")
	}
	roll := s.Rollup()
	row := roll.Sites[0]
	if row.Live || row.Status != "unreachable" || row.ConsecFails != 3 || row.LastError == "" {
		t.Errorf("dead site row = %+v", row)
	}
	if row.StaleS < 3.9 {
		t.Errorf("stale_s = %.1f, want ~4", row.StaleS)
	}
	fails := self.Snapshot().CounterValue("scrape_failures_total",
		metrics.Labels{Site: "G", Peer: "DB1"})
	if fails != 3 {
		t.Errorf("scrape_failures_total = %d, want 3", fails)
	}
}

func TestSlowQueriesMergeDedup(t *testing.T) {
	// The coordinator and DB1 both recorded rq1 (the coordinator saw the
	// longer end-to-end wall); DB1 alone recorded rq2.
	coordQ := []QuerySummary{
		{ID: "rq1-aaa", Alg: "BL", Status: "ok", WallMicros: 9000, Certain: 5},
		{ID: "rq3-ccc", Alg: "CA", Status: "ok", WallMicros: 500},
	}
	siteQ := []QuerySummary{
		{ID: "rq1-aaa", Alg: "BL", Status: "ok", WallMicros: 4000, Certain: 5},
		{ID: "rq2-bbb", Alg: "PL", Status: "degraded", WallMicros: 12000},
	}
	srv := fakeSite(t, metrics.New(), `{"status":"ok"}`, siteQ)

	s, _ := newTestScraper(t, Config{
		Site: "G", Interval: time.Second,
		Targets: []Target{
			{Site: "G", Local: metrics.New().Snapshot,
				LocalQueries: func() []QuerySummary { return coordQ }},
			{Site: "DB1", URL: srv.URL},
		},
	})
	qs := s.SlowQueries(context.Background(), 0)
	if len(qs) != 3 {
		t.Fatalf("merged %d queries, want 3: %+v", len(qs), qs)
	}
	if qs[0].ID != "rq2-bbb" || qs[1].ID != "rq1-aaa" || qs[2].ID != "rq3-ccc" {
		t.Errorf("order = %s %s %s, want slowest first", qs[0].ID, qs[1].ID, qs[2].ID)
	}
	if qs[1].WallMicros != 9000 {
		t.Errorf("deduped rq1 wall = %.0f, want the max 9000", qs[1].WallMicros)
	}
	if len(qs[1].Sources) != 2 {
		t.Errorf("rq1 sources = %v, want both G and DB1", qs[1].Sources)
	}
	if got := s.SlowQueries(context.Background(), 1); len(got) != 1 || got[0].ID != "rq2-bbb" {
		t.Errorf("limit 1 = %+v", got)
	}
}

func TestClusterHandlers(t *testing.T) {
	reg := metrics.New()
	s, advance := newTestScraper(t, Config{
		Site: "G", Interval: time.Second,
		Targets: []Target{{Site: "G", Local: reg.Snapshot,
			LocalQueries: func() []QuerySummary {
				return []QuerySummary{{ID: "rq9-fff", Alg: "BL", WallMicros: 777}}
			}}},
	})
	advance(0)
	mux := http.NewServeMux()
	s.Register(mux, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/cluster?format=json")
	var roll Rollup
	if code != 200 {
		t.Fatalf("/cluster: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &roll); err != nil {
		t.Fatalf("/cluster JSON: %v", err)
	}
	if roll.Fed.SitesTotal != 1 || roll.Sites[0].Site != "G" {
		t.Errorf("rollup = %+v", roll)
	}
	if code, body := get("/cluster"); code != 200 || !strings.Contains(body, "cluster @") {
		t.Errorf("/cluster text: %d %q", code, body)
	}

	code, body = get("/cluster/queries?format=json")
	var qs []QuerySummary
	if code != 200 {
		t.Fatalf("/cluster/queries: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &qs); err != nil || len(qs) != 1 || qs[0].ID != "rq9-fff" {
		t.Errorf("/cluster/queries = %v (err %v)", qs, err)
	}
	if code, _ := get("/cluster/queries?n=bogus"); code != 400 {
		t.Errorf("bad n accepted: %d", code)
	}

	code, body = get("/cluster/alerts")
	if code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Errorf("/cluster/alerts stub: %d %q", code, body)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{},
		{Targets: []Target{{Site: ""}}},
		{Targets: []Target{{Site: "A", URL: "x"}, {Site: "A", URL: "y"}}},
		{Targets: []Target{{Site: "A"}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

func TestStartStopIdempotent(t *testing.T) {
	reg := metrics.New()
	s, err := New(Config{
		Interval: 10 * time.Millisecond,
		Targets:  []Target{{Site: "G", Local: reg.Snapshot}},
	})
	if err != nil {
		t.Fatal(err)
	}
	passes := make(chan struct{}, 64)
	s.SetOnScrape(func() {
		select {
		case passes <- struct{}{}:
		default:
		}
	})
	s.Start()
	s.Start() // no-op
	select {
	case <-passes:
	case <-time.After(2 * time.Second):
		t.Fatal("no scrape pass within 2s")
	}
	s.Stop()
	s.Stop() // no-op
	if _, ok := s.WindowDelta(time.Minute); ok {
		_ = fmt.Sprint(ok) // one sample only: rates undefined, but must not panic
	}
}
