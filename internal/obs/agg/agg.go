// Package agg is the federation-wide observability aggregator: a Scraper
// that polls every site's /metrics and /healthz on an interval, folds the
// per-site snapshots into cluster rollups (windowed QPS/latency/degraded
// rates over merged histograms, per-site liveness and staleness, breaker /
// resync / WAL conditions), and serves them from the coordinator as
// /cluster and /cluster/queries (see handlers.go). The obs/slo package
// evaluates burn-rate alert rules against the same windowed deltas.
//
// Counter resets: a durable site that restarts (PR 8) comes back with a
// fresh registry, so its counters shrink between two scrapes. The scraper
// accumulates reset-aware deltas (metrics.Snapshot.DeltaWithResets) into a
// per-site cumulative snapshot that stays monotone across restarts —
// windowed rates never go negative — and counts each observation in
// scrape_resets_total{peer}.
package agg

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/obs"
)

// Target names one scrape target. Remote targets are polled over HTTP
// (URL is the base of an obs surface, e.g. "http://127.0.0.1:8101"); a
// local target short-circuits HTTP and reads in process — the coordinator
// observes itself this way, so its own rollup row needs no self-request
// and no bound-address bootstrapping order.
type Target struct {
	// Site names the target in rollups and the peer label of scrape metrics.
	Site string
	// URL is the base URL of a remote obs surface. Ignored when Local is set.
	URL string
	// Local, when non-nil, supplies the metrics snapshot in process.
	Local func() metrics.Snapshot
	// LocalHealth supplies /healthz-style conditions for a local target
	// (may be nil: no conditions). Status derives via obs.Healthy.
	LocalHealth func() map[string]string
	// LocalQueries supplies the flight-recorder listing for a local target
	// (may be nil). Remote targets are listed via /debug/queries.
	LocalQueries func() []QuerySummary
}

// Config parameterizes a Scraper.
type Config struct {
	// Site labels the aggregator's own scrape_*/cluster_* metrics
	// (default "G").
	Site string
	// Targets are the sites to scrape. At least one is required.
	Targets []Target
	// Interval between scrape passes (default 2s).
	Interval time.Duration
	// Window is the default rollup window (default 1m).
	Window time.Duration
	// StaleAfter marks a site stale when its last successful scrape is
	// older than this (default 3×Interval).
	StaleAfter time.Duration
	// Metrics receives the scraper's own instrumentation (may be nil).
	Metrics *metrics.Registry
	// Log receives scrape-failure and staleness events (may be nil).
	Log *slog.Logger
	// OnScrape, when non-nil, runs after every completed scrape pass —
	// the SLO engine evaluates its rules here, so alert state advances in
	// lockstep with the data it judges.
	OnScrape func()
}

// sample is one point of a site's cumulative (reset-adjusted) history.
type sample struct {
	t    time.Time
	snap metrics.Snapshot
}

// healthReport mirrors the /healthz JSON body.
type healthReport struct {
	Status   string            `json:"status"`
	Version  string            `json:"version"`
	UptimeS  float64           `json:"uptime_seconds"`
	Breakers map[string]string `json:"breakers"`
}

type siteState struct {
	target      Target
	haveRaw     bool
	lastRaw     metrics.Snapshot // as the site reported it (pre-reset-adjust)
	cum         metrics.Snapshot // monotone across restarts
	history     []sample         // ascending by time, trimmed to the window
	lastOK      time.Time
	lastErr     string
	consecFails int
	resets      int64
	health      healthReport
	haveHealth  bool
}

// Scraper polls the configured targets and maintains the federation
// rollup. Start launches the polling loop; ScrapeOnce drives it manually
// (tests, -once tooling). All accessors are safe for concurrent use.
type Scraper struct {
	cfg    Config
	client *http.Client
	nowFn  func() time.Time

	mu    sync.Mutex
	sites []*siteState // config order

	loopCtx    context.Context
	loopCancel context.CancelFunc
	done       chan struct{}
	started    bool
}

// New validates cfg, applies defaults, and builds a Scraper (not yet
// polling — call Start, or drive it with ScrapeOnce).
func New(cfg Config) (*Scraper, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("agg: no scrape targets")
	}
	seen := make(map[string]bool, len(cfg.Targets))
	for _, t := range cfg.Targets {
		if t.Site == "" {
			return nil, fmt.Errorf("agg: target with empty site name")
		}
		if seen[t.Site] {
			return nil, fmt.Errorf("agg: duplicate target site %q", t.Site)
		}
		seen[t.Site] = true
		if t.URL == "" && t.Local == nil {
			return nil, fmt.Errorf("agg: target %s: neither URL nor Local", t.Site)
		}
	}
	if cfg.Site == "" {
		cfg.Site = "G"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.Interval
	}
	s := &Scraper{
		cfg:    cfg,
		client: &http.Client{},
		nowFn:  time.Now,
	}
	for _, t := range cfg.Targets {
		s.sites = append(s.sites, &siteState{target: t})
	}
	return s, nil
}

// Start launches the polling loop: an immediate first pass, then one per
// interval until Stop.
func (s *Scraper) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.loopCtx, s.loopCancel = context.WithCancel(context.Background())
	s.done = make(chan struct{})
	s.mu.Unlock()
	go s.loop()
}

// Stop cancels in-flight scrapes and waits for the loop to exit.
// Idempotent; a never-started scraper stops trivially.
func (s *Scraper) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	cancel, done := s.loopCancel, s.done
	s.mu.Unlock()
	cancel()
	<-done
}

// SetOnScrape installs (or replaces) the per-pass hook after construction
// — the SLO engine consumes the scraper as its measurement Source, so it
// can only exist after New, yet must evaluate on every pass.
func (s *Scraper) SetOnScrape(fn func()) {
	s.mu.Lock()
	s.cfg.OnScrape = fn
	s.mu.Unlock()
}

func (s *Scraper) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		s.ScrapeOnce(s.loopCtx)
		s.mu.Lock()
		hook := s.cfg.OnScrape
		s.mu.Unlock()
		if hook != nil {
			hook()
		}
		select {
		case <-s.loopCtx.Done():
			return
		case <-ticker.C:
		}
	}
}

// ScrapeOnce runs one pass over every target, concurrently. Each target
// gets its own deadline of one interval (minimum 1s) so a wedged site
// cannot stall the pass past its tick.
func (s *Scraper) ScrapeOnce(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := s.cfg.Interval
	if timeout < time.Second {
		timeout = time.Second
	}
	start := s.nowFn()

	s.mu.Lock()
	sites := append([]*siteState(nil), s.sites...)
	s.mu.Unlock()

	var wg sync.WaitGroup
	for _, st := range sites {
		wg.Add(1)
		go func(st *siteState) {
			defer wg.Done()
			tctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			s.scrapeTarget(tctx, st)
		}(st)
	}
	wg.Wait()

	if reg := s.cfg.Metrics; reg != nil {
		self := metrics.Labels{Site: s.cfg.Site}
		reg.Histogram("scrape_duration_us", self).
			Observe(float64(s.nowFn().Sub(start).Microseconds()))
		live, total := s.Liveness()
		reg.Gauge("cluster_sites", self).Set(int64(total))
		reg.Gauge("cluster_sites_live", self).Set(int64(live))
	}
}

// scrapeTarget fetches one target's metrics + health and folds the result
// into its state.
func (s *Scraper) scrapeTarget(ctx context.Context, st *siteState) {
	labels := metrics.Labels{Site: s.cfg.Site, Peer: st.target.Site}
	if reg := s.cfg.Metrics; reg != nil {
		reg.Counter("scrape_total", labels).Add(1)
	}

	var (
		snap   metrics.Snapshot
		health healthReport
		haveH  bool
		err    error
	)
	if st.target.Local != nil {
		snap = st.target.Local()
		health.Status = "ok"
		if st.target.LocalHealth != nil {
			health.Breakers = st.target.LocalHealth()
			for _, state := range health.Breakers {
				if !obs.Healthy(state) {
					health.Status = "degraded"
					break
				}
			}
		}
		haveH = true
	} else {
		snap, err = metrics.Scrape(ctx, st.target.URL+"/metrics")
		if err == nil {
			// Health is best-effort: the scrape above already proved
			// liveness, so a failed /healthz only means stale conditions.
			health, haveH = s.fetchHealth(ctx, st.target.URL)
		}
	}

	now := s.nowFn()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		st.consecFails++
		st.lastErr = err.Error()
		if reg := s.cfg.Metrics; reg != nil {
			reg.Counter("scrape_failures_total", labels).Add(1)
		}
		if s.cfg.Log != nil && st.consecFails == 1 {
			s.cfg.Log.Warn("scrape failed", "peer", st.target.Site, "err", err)
		}
		return
	}
	if s.cfg.Log != nil && st.consecFails > 0 {
		s.cfg.Log.Info("scrape recovered", "peer", st.target.Site, "misses", st.consecFails)
	}
	st.consecFails = 0
	st.lastErr = ""
	st.lastOK = now
	if haveH {
		st.health = health
		st.haveHealth = true
	}

	if !st.haveRaw {
		st.cum = snap
	} else {
		delta, resets := snap.DeltaWithResets(st.lastRaw)
		if resets > 0 {
			st.resets += int64(resets)
			if reg := s.cfg.Metrics; reg != nil {
				reg.Counter("scrape_resets_total", labels).Add(int64(resets))
			}
			if s.cfg.Log != nil {
				s.cfg.Log.Info("counter reset observed (site restarted?)",
					"peer", st.target.Site, "series", resets)
			}
		}
		st.cum = st.cum.Merge(delta)
	}
	st.haveRaw = true
	st.lastRaw = snap
	st.history = append(st.history, sample{t: now, snap: st.cum})
	st.trimHistory(now.Add(-s.cfg.Window))
}

// trimHistory drops points older than cutoff, but keeps the newest such
// point: windowed deltas need one sample at or before the window's left
// edge to difference against.
func (st *siteState) trimHistory(cutoff time.Time) {
	idx := 0
	for i, p := range st.history {
		if !p.t.After(cutoff) {
			idx = i
		}
	}
	if idx > 0 {
		st.history = append(st.history[:0], st.history[idx:]...)
	}
}

func (s *Scraper) fetchHealth(ctx context.Context, base string) (healthReport, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return healthReport{}, false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return healthReport{}, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return healthReport{}, false
	}
	var h healthReport
	if err := json.Unmarshal(body, &h); err != nil {
		return healthReport{}, false
	}
	return h, true
}

// Liveness reports how many targets were scraped successfully within the
// staleness bound, and the total target count. The availability SLO
// consumes this.
func (s *Scraper) Liveness() (live, total int) {
	now := s.nowFn()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.sites {
		total++
		if !st.lastOK.IsZero() && now.Sub(st.lastOK) <= s.cfg.StaleAfter {
			live++
		}
	}
	return live, total
}

// WindowDelta returns the federation-wide metrics delta over the trailing
// window w: every live-or-stale site's cumulative history differenced over
// w and merged across sites (counters and histogram buckets summed). ok is
// false when no site has two samples yet — rates are then undefined and
// SLO rules skip the evaluation rather than judging zeros.
func (s *Scraper) WindowDelta(w time.Duration) (metrics.Snapshot, bool) {
	now := s.nowFn()
	s.mu.Lock()
	defer s.mu.Unlock()
	var merged metrics.Snapshot
	ok := false
	for _, st := range s.sites {
		d, _, have := windowDelta(st.history, now, w)
		if !have {
			continue
		}
		if !ok {
			merged, ok = d, true
		} else {
			merged = merged.Merge(d)
		}
	}
	return merged, ok
}

// windowDelta differences a site's cumulative history over the trailing
// window: newest sample minus the newest sample at or before now-w (or the
// oldest retained). Both ends are cumulative and monotone, so the delta
// needs no reset handling.
func windowDelta(history []sample, now time.Time, w time.Duration) (metrics.Snapshot, time.Duration, bool) {
	if len(history) < 2 {
		return metrics.Snapshot{}, 0, false
	}
	newest := history[len(history)-1]
	cutoff := now.Add(-w)
	base := history[0]
	for _, p := range history[1 : len(history)-1] {
		if p.t.After(cutoff) {
			break
		}
		base = p
	}
	span := newest.t.Sub(base.t)
	if span <= 0 {
		return metrics.Snapshot{}, 0, false
	}
	return newest.snap.Delta(base.snap), span, true
}
