package agg

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
)

// WindowStats are a site's (or the federation's) rates over a trailing
// window, computed from cumulative-snapshot deltas. A coordinator-style
// target reports query metrics (queries_total / query_latency_us /
// degraded_queries_total); a component site, which serves remote requests
// rather than executing queries, reports the request family instead — the
// Queries/QPS fields then count requests and Degraded counts errors.
type WindowStats struct {
	SpanS       float64 `json:"span_s"`
	Queries     int64   `json:"queries"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	DegradedPct float64 `json:"degraded_pct"`
}

// SiteStatus is one target's row in the rollup.
type SiteStatus struct {
	Site string `json:"site"`
	URL  string `json:"url,omitempty"`
	// Live: scraped successfully within the staleness bound.
	Live bool `json:"live"`
	// StaleS: seconds since the last successful scrape; -1 if never.
	StaleS      float64 `json:"stale_s"`
	ConsecFails int     `json:"consec_fails,omitempty"`
	LastError   string  `json:"last_error,omitempty"`
	// Status: "ok" or "degraded" from the site's own /healthz,
	// "unreachable" when stale, "unknown" before the first health fetch.
	Status     string            `json:"status"`
	Conditions map[string]string `json:"conditions,omitempty"`
	UptimeS    float64           `json:"uptime_s,omitempty"`
	// Resets: counter resets observed (restarts survived while scraped).
	Resets int64       `json:"resets,omitempty"`
	Window WindowStats `json:"window"`
}

// FedStats aggregate the whole federation.
type FedStats struct {
	SitesLive  int         `json:"sites_live"`
	SitesTotal int         `json:"sites_total"`
	Window     WindowStats `json:"window"`
}

// Rollup is the /cluster document: one snapshot of federation state.
type Rollup struct {
	Site      string       `json:"site"` // the aggregating coordinator
	Time      time.Time    `json:"time"`
	IntervalS float64      `json:"interval_s"`
	WindowS   float64      `json:"window_s"`
	Fed       FedStats     `json:"fed"`
	Sites     []SiteStatus `json:"sites"`
}

// statsFromDelta derives WindowStats from a windowed snapshot delta,
// preferring the coordinator's query metrics and falling back to the
// request family a component site records about itself.
func statsFromDelta(d metrics.Snapshot, span time.Duration) WindowStats {
	countName, histName, badName := "queries_total", "query_latency_us", "degraded_queries_total"
	if !hasMetric(d, countName) && hasMetric(d, "requests_total") {
		countName, histName, badName = "requests_total", "request_latency_us", "request_errors_total"
	}
	ws := WindowStats{SpanS: span.Seconds()}
	ws.Queries = d.Sum(countName)
	if span > 0 {
		ws.QPS = float64(ws.Queries) / span.Seconds()
	}
	if h := d.MergedHist(histName); h != nil && h.Count > 0 {
		ws.P50Ms = h.Quantile(0.50) / 1e3
		ws.P99Ms = h.Quantile(0.99) / 1e3
	}
	if ws.Queries > 0 {
		ws.DegradedPct = 100 * float64(d.Sum(badName)) / float64(ws.Queries)
	}
	return ws
}

func hasMetric(s metrics.Snapshot, name string) bool {
	for _, smp := range s.Samples {
		if smp.Name == name {
			return true
		}
	}
	return false
}

// Rollup computes the current federation rollup over the configured
// window.
func (s *Scraper) Rollup() Rollup {
	now := s.nowFn()
	s.mu.Lock()
	defer s.mu.Unlock()

	out := Rollup{
		Site:      s.cfg.Site,
		Time:      now,
		IntervalS: s.cfg.Interval.Seconds(),
		WindowS:   s.cfg.Window.Seconds(),
	}
	var fedDelta metrics.Snapshot
	var fedSpan time.Duration
	haveFed := false
	for _, st := range s.sites {
		row := SiteStatus{
			Site:        st.target.Site,
			URL:         st.target.URL,
			StaleS:      -1,
			ConsecFails: st.consecFails,
			LastError:   st.lastErr,
			Status:      "unknown",
			Resets:      st.resets,
		}
		if !st.lastOK.IsZero() {
			row.StaleS = now.Sub(st.lastOK).Seconds()
			row.Live = now.Sub(st.lastOK) <= s.cfg.StaleAfter
		}
		if st.haveHealth {
			row.Conditions = st.health.Breakers
			row.UptimeS = st.health.UptimeS
			row.Status = st.health.Status
		}
		if !row.Live {
			row.Status = "unreachable"
		}
		if d, span, ok := windowDelta(st.history, now, s.cfg.Window); ok {
			row.Window = statsFromDelta(d, span)
			if !haveFed {
				fedDelta, fedSpan, haveFed = d, span, true
			} else {
				fedDelta = fedDelta.Merge(d)
				if span > fedSpan {
					fedSpan = span
				}
			}
		}
		out.Sites = append(out.Sites, row)
		out.Fed.SitesTotal++
		if row.Live {
			out.Fed.SitesLive++
		}
	}
	if haveFed {
		out.Fed.Window = statsFromDelta(fedDelta, fedSpan)
	}
	return out
}

// Text renders the rollup as an aligned operator-readable table (the
// default /cluster body).
func (r Rollup) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster @ %s  window=%.0fs interval=%.1fs\n",
		r.Time.Format(time.RFC3339), r.WindowS, r.IntervalS)
	fw := r.Fed.Window
	fmt.Fprintf(&b, "fed: %d/%d live  qps=%.1f p50=%.2fms p99=%.2fms degraded=%.2f%% (%d queries / %.1fs)\n\n",
		r.Fed.SitesLive, r.Fed.SitesTotal, fw.QPS, fw.P50Ms, fw.P99Ms, fw.DegradedPct, fw.Queries, fw.SpanS)
	fmt.Fprintf(&b, "%-6s %-12s %-11s %8s %9s %9s %7s %8s  %s\n",
		"site", "state", "status", "qps", "p50(ms)", "p99(ms)", "degr%", "up(s)", "conditions")
	for _, s := range r.Sites {
		state := "live"
		if !s.Live {
			if s.StaleS < 0 {
				state = "never"
			} else {
				state = fmt.Sprintf("stale(%.0fs)", s.StaleS)
			}
		}
		fmt.Fprintf(&b, "%-6s %-12s %-11s %8.1f %9.2f %9.2f %7.2f %8.0f  %s\n",
			s.Site, state, s.Status, s.Window.QPS, s.Window.P50Ms, s.Window.P99Ms,
			s.Window.DegradedPct, s.UptimeS, conditionsText(s.Conditions))
	}
	return b.String()
}

// conditionsText compresses a conditions map for the table: healthy
// entries collapse into a count, unhealthy ones are spelled out.
func conditionsText(conds map[string]string) string {
	if len(conds) == 0 {
		return "-"
	}
	var bad []string
	okCount := 0
	for k, v := range conds {
		if v == "closed" || v == "ok" || strings.HasPrefix(v, "ok(") {
			okCount++
		} else {
			bad = append(bad, k+"="+v)
		}
	}
	if len(bad) == 0 {
		return fmt.Sprintf("%d ok", okCount)
	}
	sort.Strings(bad)
	out := strings.Join(bad, " ")
	if okCount > 0 {
		out += fmt.Sprintf(" (+%d ok)", okCount)
	}
	return out
}
