// Package obs is the live observability surface of a federation process: a
// small HTTP server exposing the site's metrics registry and recent query
// spans.
//
// Endpoints:
//
//	/healthz                liveness: 200 with a JSON status body; reports
//	                        version, uptime and per-source conditions
//	                        (breakers, resync backlog, WAL), and flips
//	                        status to "degraded" when any entry is not
//	                        Healthy
//
// The coordinator additionally mounts the cluster rollup surface from the
// obs/agg and obs/slo subpackages on the same mux (via ServeHandler):
// /cluster, /cluster/alerts, /cluster/queries.
//
//	/metrics                registry snapshot, JSON by default, ?format=text;
//	                        each scrape refreshes the go_* runtime gauges
//	/debug/queries          flight-recorder listing, newest first (text by
//	                        default, ?format=json)
//	/debug/trace/last       span tree of the most recent query at this site
//	/debug/trace/{id}       span tree of a recorded query profile
//	/debug/trace/{id}.json  the profile as Chrome trace-event JSON
//	                        (chrome://tracing, ui.perfetto.dev)
//	/debug/pprof/           standard net/http/pprof profiling surface
//	/debug/vars             standard expvar surface (includes the registry)
//
// The surface is read-only and unauthenticated; bind it to loopback or an
// operations network, not the query port.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/trace"
	"github.com/hetfed/hetfed/internal/version"
)

// Health contributes per-peer conditions to /healthz: entry name → state.
// The canonical source is circuit-breaker states (peer site name →
// "closed"/"half-open"/"open"); other sources report under a namespacing
// prefix (see PrefixHealth), e.g. the coordinator's replica-resync backlog
// as "resync:DB2" → "needs-rebuild", or a durable site's storage engine as
// "wal:engine" → "ok(seq=412)". Any entry whose state is not Healthy turns
// the reported status from "ok" to "degraded"; the endpoint still answers
// 200, because the process itself is alive — it is the federation around
// it that is partially down.
type Health func() map[string]string

// Healthy reports whether a health-entry state counts as healthy when
// /healthz folds its sources into one status. Healthy states are "closed"
// (a circuit breaker at rest), "ok", and "ok(...)" (a source annotating a
// healthy state with detail, like the WAL's "ok(seq=412)"). Everything
// else — "open", "half-open", "pending(3)", "needs-rebuild" — degrades.
// Precedence is strict: one unhealthy entry from any source outweighs any
// number of healthy ones.
func Healthy(state string) bool {
	return state == "closed" || state == "ok" || strings.HasPrefix(state, "ok(")
}

// PrefixHealth namespaces a health source: each key is reported as
// "<prefix>:<key>", so one /healthz can combine breaker states with other
// per-peer conditions without the entries colliding. A nil source yields
// no entries.
func PrefixHealth(prefix string, src Health) Health {
	return func() map[string]string {
		if src == nil {
			return nil
		}
		in := src()
		if len(in) == 0 {
			return nil
		}
		out := make(map[string]string, len(in))
		for k, v := range in {
			out[prefix+":"+k] = v
		}
		return out
	}
}

// expvar registration is global per process; a test (or a process hosting
// several sites) may start multiple servers for the same site name, so the
// published Func reads the current registry through this map instead of
// closing over a stale one.
var (
	expvarMu   sync.Mutex
	expvarRegs = make(map[string]*metrics.Registry)
)

func publishExpvar(site string, reg *metrics.Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	name := "hetfed." + site
	if _, seen := expvarRegs[name]; !seen && expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			r := expvarRegs[name]
			expvarMu.Unlock()
			return r.Snapshot()
		}))
	}
	expvarRegs[name] = reg
}

// Server is a running observability endpoint.
type Server struct {
	site  string
	ln    net.Listener
	http  *http.Server
	start time.Time
}

// refreshRuntimeGauges samples the Go runtime into the registry. Called on
// every /metrics scrape so the gauges are as fresh as the scrape itself.
func refreshRuntimeGauges(site string, reg *metrics.Registry) {
	labels := metrics.Labels{Site: site}
	reg.Gauge("go_goroutines", labels).Set(int64(runtime.NumGoroutine()))
	reg.Gauge("go_gomaxprocs", labels).Set(int64(runtime.GOMAXPROCS(0)))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("go_heap_alloc_bytes", labels).Set(int64(ms.HeapAlloc))
	reg.Gauge("go_gc_runs_total", labels).Set(int64(ms.NumGC))
}

// NewMux builds the observability handler for a site without binding a
// listener (embed it into an existing HTTP server if you have one). rec may
// be nil; the flight-recorder endpoints then answer 404.
func NewMux(site string, reg *metrics.Registry, tr *trace.Tracer, start time.Time, rec *Recorder, health ...Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		body := struct {
			Status   string            `json:"status"`
			Site     string            `json:"site"`
			Version  string            `json:"version"`
			UptimeS  float64           `json:"uptime_seconds"`
			Breakers map[string]string `json:"breakers,omitempty"`
			Degraded []string          `json:"degraded_peers,omitempty"`
		}{Status: "ok", Site: site, Version: version.String(), UptimeS: time.Since(start).Seconds()}
		for _, h := range health {
			for peer, state := range h() {
				if body.Breakers == nil {
					body.Breakers = make(map[string]string)
				}
				body.Breakers[peer] = state
				if !Healthy(state) {
					body.Degraded = append(body.Degraded, peer)
				}
			}
		}
		if len(body.Degraded) > 0 {
			sort.Strings(body.Degraded)
			body.Status = "degraded"
		}
		w.Header().Set("Content-Type", "application/json")
		data, err := json.Marshal(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
		fmt.Fprintln(w)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		refreshRuntimeGauges(site, reg)
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, snap.Text())
			return
		}
		data, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		fmt.Fprintln(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		profiles := rec.Profiles()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			data, err := json.MarshalIndent(profiles, "", " ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write(data)
			fmt.Fprintln(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if len(profiles) == 0 {
			fmt.Fprintln(w, "(no queries recorded)")
			return
		}
		fmt.Fprintf(w, "%-14s %-6s %-9s %10s %8s %6s  %s\n",
			"query", "alg", "status", "wall(ms)", "certain", "maybe", "trace")
		for _, p := range profiles {
			fmt.Fprintf(w, "%-14s %-6s %-9s %10.3f %8d %6d  /debug/trace/%s.json\n",
				p.ID, p.Alg, p.Status, p.WallMicros/1e3, p.Certain, p.Maybe, p.ID)
		}
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
		if id == "last" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			out := tr.RenderLastQuery()
			if out == "" {
				fmt.Fprintln(w, "(no spans recorded)")
				return
			}
			fmt.Fprint(w, out)
			return
		}
		asJSON := strings.HasSuffix(id, ".json")
		id = strings.TrimSuffix(id, ".json")
		p := rec.Get(id)
		if p == nil {
			http.Error(w, "no such query profile (aged out of the flight recorder?)", http.StatusNotFound)
			return
		}
		if asJSON {
			data, err := p.ChromeTrace()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
			fmt.Fprintln(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "query %s alg=%s status=%s wall=%.3fms certain=%d maybe=%d\n\n",
			p.ID, p.Alg, p.Status, p.WallMicros/1e3, p.Certain, p.Maybe)
		fmt.Fprint(w, p.RenderTree())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (use "127.0.0.1:0" for an ephemeral port) and serves the
// observability surface for the given site until Close. rec (the site's
// flight recorder) may be nil. Optional Health sources feed the /healthz
// breaker report.
func Serve(addr, site string, reg *metrics.Registry, tr *trace.Tracer, rec *Recorder, health ...Health) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	publishExpvar(site, reg)
	start := time.Now()
	s := &Server{
		site:  site,
		ln:    ln,
		http:  &http.Server{Handler: NewMux(site, reg, tr, start, rec, health...)},
		start: start,
	}
	go s.http.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return s, nil
}

// ServeHandler is Serve for a caller-composed handler: build the base
// surface with NewMux, register extra routes on it (the coordinator adds
// /cluster, /cluster/alerts, /cluster/queries), then bind and serve. The
// handler must be fully assembled before the call — http.ServeMux does not
// allow registration after requests start.
func ServeHandler(addr, site string, reg *metrics.Registry, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	publishExpvar(site, reg)
	s := &Server{
		site:  site,
		ln:    ln,
		http:  &http.Server{Handler: h},
		start: time.Now(),
	}
	go s.http.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Site returns the served site's name.
func (s *Server) Site() string { return s.site }

// Close stops the server immediately (in-flight responses are abandoned;
// the surface is diagnostic, not transactional).
func (s *Server) Close() error { return s.http.Close() }
