// Package obs is the live observability surface of a federation process: a
// small HTTP server exposing the site's metrics registry and recent query
// spans.
//
// Endpoints:
//
//	/healthz           liveness: 200 with a JSON status body; reports peer
//	                   circuit-breaker states and flips status to "degraded"
//	                   when any breaker is not closed
//	/metrics           registry snapshot, JSON by default, ?format=text
//	/debug/trace/last  span tree of the most recent query at this site
//	/debug/vars        standard expvar surface (includes the registry)
//
// The surface is read-only and unauthenticated; bind it to loopback or an
// operations network, not the query port.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/trace"
)

// Health contributes the process's peer circuit-breaker states to /healthz:
// peer site name → breaker state ("closed", "half-open", "open"). Any
// non-closed breaker turns the reported status from "ok" to "degraded"; the
// endpoint still answers 200, because the process itself is alive — it is
// the federation around it that is partially down.
type Health func() map[string]string

// expvar registration is global per process; a test (or a process hosting
// several sites) may start multiple servers for the same site name, so the
// published Func reads the current registry through this map instead of
// closing over a stale one.
var (
	expvarMu   sync.Mutex
	expvarRegs = make(map[string]*metrics.Registry)
)

func publishExpvar(site string, reg *metrics.Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	name := "hetfed." + site
	if _, seen := expvarRegs[name]; !seen && expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			r := expvarRegs[name]
			expvarMu.Unlock()
			return r.Snapshot()
		}))
	}
	expvarRegs[name] = reg
}

// Server is a running observability endpoint.
type Server struct {
	site  string
	ln    net.Listener
	http  *http.Server
	start time.Time
}

// NewMux builds the observability handler for a site without binding a
// listener (embed it into an existing HTTP server if you have one).
func NewMux(site string, reg *metrics.Registry, tr *trace.Tracer, start time.Time, health ...Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		body := struct {
			Status   string            `json:"status"`
			Site     string            `json:"site"`
			UptimeS  float64           `json:"uptime_seconds"`
			Breakers map[string]string `json:"breakers,omitempty"`
			Degraded []string          `json:"degraded_peers,omitempty"`
		}{Status: "ok", Site: site, UptimeS: time.Since(start).Seconds()}
		for _, h := range health {
			for peer, state := range h() {
				if body.Breakers == nil {
					body.Breakers = make(map[string]string)
				}
				body.Breakers[peer] = state
				if state != "closed" {
					body.Degraded = append(body.Degraded, peer)
				}
			}
		}
		if len(body.Degraded) > 0 {
			sort.Strings(body.Degraded)
			body.Status = "degraded"
		}
		w.Header().Set("Content-Type", "application/json")
		data, err := json.Marshal(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
		fmt.Fprintln(w)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, snap.Text())
			return
		}
		data, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		fmt.Fprintln(w)
	})
	mux.HandleFunc("/debug/trace/last", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		out := tr.RenderLastQuery()
		if out == "" {
			fmt.Fprintln(w, "(no spans recorded)")
			return
		}
		fmt.Fprint(w, out)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Serve binds addr (use "127.0.0.1:0" for an ephemeral port) and serves the
// observability surface for the given site until Close. Optional Health
// sources feed the /healthz breaker report.
func Serve(addr, site string, reg *metrics.Registry, tr *trace.Tracer, health ...Health) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	publishExpvar(site, reg)
	start := time.Now()
	s := &Server{
		site:  site,
		ln:    ln,
		http:  &http.Server{Handler: NewMux(site, reg, tr, start, health...)},
		start: start,
	}
	go s.http.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Site returns the served site's name.
func (s *Server) Site() string { return s.site }

// Close stops the server immediately (in-flight responses are abandoned;
// the surface is diagnostic, not transactional).
func (s *Server) Close() error { return s.http.Close() }
