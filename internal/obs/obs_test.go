package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/trace"
)

func get(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := metrics.New()
	reg.Counter("requests_total", metrics.Labels{Site: "DB1", Alg: "BL"}).Add(3)
	reg.Histogram("request_latency_us", metrics.Labels{Site: "DB1", Alg: "BL"}).Observe(120)
	tr := &trace.Tracer{}
	tr.StartSpan(0, "DB1", "serve:local").WithQuery("rq1", "BL").WithPhases("PO").End()

	s, err := Serve("127.0.0.1:0", "DB1", reg, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Site() != "DB1" {
		t.Errorf("Site() = %q", s.Site())
	}

	code, body := get(t, s.Addr(), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) ||
		!strings.Contains(body, `"site":"DB1"`) {
		t.Errorf("healthz: %d %q", code, body)
	}

	code, body = get(t, s.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics JSON: %v in %q", err, body)
	}
	if snap.CounterValue("requests_total", metrics.Labels{Site: "DB1", Alg: "BL"}) != 3 {
		t.Errorf("metrics JSON lost the counter: %s", body)
	}

	code, body = get(t, s.Addr(), "/metrics?format=text")
	if code != http.StatusOK || !strings.Contains(body, "requests_total") ||
		!strings.Contains(body, "request_latency_us") {
		t.Errorf("metrics text: %d %q", code, body)
	}

	code, body = get(t, s.Addr(), "/debug/trace/last")
	if code != http.StatusOK || !strings.Contains(body, "serve:local") {
		t.Errorf("trace/last: %d %q", code, body)
	}

	code, body = get(t, s.Addr(), "/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "hetfed.DB1") {
		t.Errorf("debug/vars: %d, body %d bytes", code, len(body))
	}
}

func TestTraceLastEmpty(t *testing.T) {
	s, err := Serve("127.0.0.1:0", "DB2", metrics.New(), &trace.Tracer{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, s.Addr(), "/debug/trace/last")
	if code != http.StatusOK || !strings.Contains(body, "no spans") {
		t.Errorf("empty trace/last: %d %q", code, body)
	}
}

// TestExpvarTracksLatestRegistry restarts a site's obs server with a fresh
// registry and checks the process-global expvar export follows the newest
// one instead of a stale closure.
func TestExpvarTracksLatestRegistry(t *testing.T) {
	first := metrics.New()
	first.Counter("n", metrics.Labels{}).Add(1)
	s1, err := Serve("127.0.0.1:0", "DB3", first, &trace.Tracer{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	second := metrics.New()
	second.Counter("n", metrics.Labels{}).Add(42)
	s2, err := Serve("127.0.0.1:0", "DB3", second, &trace.Tracer{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	code, body := get(t, s2.Addr(), "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("debug/vars: %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("debug/vars JSON: %v", err)
	}
	raw, ok := vars["hetfed.DB3"]
	if !ok {
		t.Fatal("hetfed.DB3 not exported")
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("exported snapshot: %v", err)
	}
	if snap.CounterValue("n", metrics.Labels{}) != 42 {
		t.Errorf("expvar serves the stale registry: %s", raw)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", "DBX", metrics.New(), nil, nil); err == nil {
		t.Error("bad address accepted")
	}
}

// TestHealthzBreakers: health sources feed the /healthz body; a non-closed
// breaker flips the status to degraded (still 200 — the process is alive).
func TestHealthzBreakers(t *testing.T) {
	states := map[string]string{"DB2": "closed", "DB3": "closed"}
	s, err := Serve("127.0.0.1:0", "DB1", metrics.New(), &trace.Tracer{}, nil,
		func() map[string]string { return states })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body := get(t, s.Addr(), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("healthy healthz: %d %q", code, body)
	}
	if !strings.Contains(body, `"DB3":"closed"`) {
		t.Errorf("healthz lacks breaker states: %q", body)
	}

	states["DB3"] = "open"
	code, body = get(t, s.Addr(), "/healthz")
	if code != http.StatusOK {
		t.Errorf("degraded healthz status code = %d, want 200", code)
	}
	var got struct {
		Status   string            `json:"status"`
		Breakers map[string]string `json:"breakers"`
		Degraded []string          `json:"degraded_peers"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("healthz JSON: %v in %q", err, body)
	}
	if got.Status != "degraded" || got.Breakers["DB3"] != "open" ||
		len(got.Degraded) != 1 || got.Degraded[0] != "DB3" {
		t.Errorf("degraded healthz = %+v", got)
	}
}
