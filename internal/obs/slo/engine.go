package slo

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
)

// minShortWindow floors the burn-rate short window: below a few seconds a
// single slow query dominates the measurement and the warn state flaps.
const minShortWindow = 5 * time.Second

// Config parameterizes an Engine.
type Config struct {
	// Site labels the alerts_* metrics (default "G").
	Site string
	// Source supplies measurements; required.
	Source Source
	// Rules to evaluate; required.
	Rules []Rule
	// Metrics receives the alerts_* family (may be nil).
	Metrics *metrics.Registry
	// Log receives firing/resolved events (may be nil).
	Log *slog.Logger
}

// Alert is one rule's current position, as served on /cluster/alerts.
type Alert struct {
	Rule      string    `json:"rule"`
	Raw       string    `json:"raw"`
	State     string    `json:"state"`
	Since     time.Time `json:"since"`     // when the current state was entered
	LastEval  time.Time `json:"last_eval"` // zero until the first Evaluate
	Value     float64   `json:"value"`     // long-window measurement
	Short     float64   `json:"short"`     // short-window measurement
	Threshold float64   `json:"threshold"`
	Unit      string    `json:"unit"`     // "us" | "ratio"
	WindowS   float64   `json:"window_s"` // 0 for instant rules
	ShortS    float64   `json:"short_s"`
	HaveData  bool      `json:"have_data"` // false: no traffic in the window, rule held vacuously
}

type ruleState struct {
	rule  Rule
	short time.Duration // derived burn-rate short window (== 0 when instant)
	state State
	since time.Time
	last  Alert
}

// Engine evaluates rules against a Source. Call Evaluate after every
// scrape pass (agg.Config.OnScrape) so alert state moves in lockstep with
// the data; Alerts and Handler read the latest state.
type Engine struct {
	cfg   Config
	nowFn func() time.Time

	mu    sync.Mutex
	rules []*ruleState
}

// New validates cfg and builds an Engine; the initial state of every rule
// is ok.
func New(cfg Config) (*Engine, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("slo: nil source")
	}
	if len(cfg.Rules) == 0 {
		return nil, fmt.Errorf("slo: no rules")
	}
	if cfg.Site == "" {
		cfg.Site = "G"
	}
	e := &Engine{cfg: cfg, nowFn: time.Now}
	now := e.nowFn()
	seen := make(map[string]bool, len(cfg.Rules))
	for _, r := range cfg.Rules {
		if seen[r.Name] {
			return nil, fmt.Errorf("slo: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		rs := &ruleState{rule: r, since: now}
		if !r.Instant {
			rs.short = r.Window / 12
			if rs.short < minShortWindow {
				rs.short = minShortWindow
			}
			if rs.short > r.Window {
				rs.short = r.Window
			}
		}
		e.rules = append(e.rules, rs)
	}
	return e, nil
}

// Evaluate measures every rule over its long and short windows and
// advances the state machines. Safe for concurrent use with Alerts.
func (e *Engine) Evaluate() {
	now := e.nowFn()
	firing := 0
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.rules {
		long, haveLong := e.measure(rs.rule, rs.rule.Window)
		short, haveShort := long, haveLong
		if !rs.rule.Instant && rs.short != rs.rule.Window {
			short, haveShort = e.measure(rs.rule, rs.short)
		}
		// No data (no traffic yet, or none in the window): the objective
		// holds vacuously — a silent federation is not in violation.
		longBad := haveLong && !rs.rule.holds(long)
		shortBad := haveShort && !rs.rule.holds(short)
		next := StateOK
		switch {
		case longBad && shortBad:
			next = StateFiring
		case longBad || shortBad:
			next = StateWarn
		}
		e.transitionLocked(rs, next, now)
		rs.last = Alert{
			Rule:      rs.rule.Name,
			Raw:       rs.rule.Raw,
			State:     rs.state.String(),
			Since:     rs.since,
			LastEval:  now,
			Value:     long,
			Short:     short,
			Threshold: rs.rule.Threshold,
			Unit:      rs.rule.Unit,
			WindowS:   rs.rule.Window.Seconds(),
			ShortS:    rs.short.Seconds(),
			HaveData:  haveLong,
		}
		if rs.state == StateFiring {
			firing++
		}
	}
	if reg := e.cfg.Metrics; reg != nil {
		reg.Gauge("alerts_firing", metrics.Labels{Site: e.cfg.Site}).Set(int64(firing))
	}
}

// measure evaluates one rule's metric over a window; ok=false means no
// underlying traffic to judge.
func (e *Engine) measure(r Rule, w time.Duration) (float64, bool) {
	if r.Instant {
		live, total := e.cfg.Source.Liveness()
		if total == 0 {
			return 0, false
		}
		return float64(live) / float64(total), true
	}
	d, ok := e.cfg.Source.WindowDelta(w)
	if !ok {
		return 0, false
	}
	switch r.Metric {
	case "query_latency":
		h := d.MergedHist("query_latency_us")
		if h == nil || h.Count == 0 {
			return 0, false
		}
		if r.Agg == "mean" {
			return h.Mean(), true
		}
		return h.Quantile(r.Q), true
	case "degraded_queries":
		den := d.Sum("queries_total")
		if den == 0 {
			return 0, false
		}
		return float64(d.Sum("degraded_queries_total")) / float64(den), true
	case "request_errors":
		den := d.Sum("requests_total")
		if den == 0 {
			return 0, false
		}
		return float64(d.Sum("request_errors_total")) / float64(den), true
	}
	return 0, false
}

// transitionLocked moves one rule's state machine, emitting log events
// and metrics on change.
func (e *Engine) transitionLocked(rs *ruleState, next State, now time.Time) {
	if next == rs.state {
		return
	}
	prev := rs.state
	rs.state = next
	rs.since = now
	labels := metrics.Labels{Site: e.cfg.Site, Phase: rs.rule.Name}
	if reg := e.cfg.Metrics; reg != nil {
		reg.Counter("alerts_transitions_total", labels).Add(1)
		reg.Gauge("alerts_state", labels).Set(int64(next))
	}
	if log := e.cfg.Log; log != nil {
		args := []any{"rule", rs.rule.Name, "from", prev.String(), "to", next.String()}
		switch {
		case next == StateFiring:
			log.Warn("slo alert firing", args...)
		case prev == StateFiring:
			log.Info("slo alert resolved", args...)
		default:
			log.Info("slo alert transition", args...)
		}
	}
}

// Alerts returns every rule's current position, in rule order.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.rules))
	for _, rs := range e.rules {
		a := rs.last
		if a.Rule == "" { // never evaluated yet
			a = Alert{
				Rule: rs.rule.Name, Raw: rs.rule.Raw, State: rs.state.String(),
				Since: rs.since, Threshold: rs.rule.Threshold, Unit: rs.rule.Unit,
				WindowS: rs.rule.Window.Seconds(), ShortS: rs.short.Seconds(),
			}
		}
		out = append(out, a)
	}
	return out
}

// Handler serves the alert list (the coordinator mounts it at
// /cluster/alerts): text by default, ?format=json.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		alerts := e.Alerts()
		if r.URL.Query().Get("format") == "json" {
			data, err := json.MarshalIndent(alerts, "", " ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
			fmt.Fprintln(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, alertsText(alerts))
	})
}

func alertsText(alerts []Alert) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-32s %12s %12s %12s  %s\n",
		"state", "rule", "value", "short", "threshold", "since")
	for _, a := range alerts {
		fmt.Fprintf(&b, "%-8s %-32s %12s %12s %12s  %s\n",
			strings.ToUpper(a.State), a.Rule,
			formatValue(a.Value, a.Unit), formatValue(a.Short, a.Unit),
			formatValue(a.Threshold, a.Unit), a.Since.Format(time.RFC3339))
	}
	return b.String()
}

func formatValue(v float64, unit string) string {
	if unit == "us" {
		return fmt.Sprintf("%.2fms", v/1e3)
	}
	return fmt.Sprintf("%.2f%%", v*100)
}
