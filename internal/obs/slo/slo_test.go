package slo

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
)

func TestParseRule(t *testing.T) {
	cases := []struct {
		in   string
		want Rule
	}{
		{"query_latency p99 < 50ms over 1m",
			Rule{Metric: "query_latency", Agg: "p99", Q: 0.99, Op: "<",
				Threshold: 50_000, Unit: "us", Window: time.Minute}},
		{"query_latency < 10ms",
			Rule{Metric: "query_latency", Agg: "p99", Q: 0.99, Op: "<",
				Threshold: 10_000, Unit: "us", Window: time.Minute}},
		{"query_latency p50 <= 2ms over 30s",
			Rule{Metric: "query_latency", Agg: "p50", Q: 0.50, Op: "<=",
				Threshold: 2_000, Unit: "us", Window: 30 * time.Second}},
		{"slow: query_latency mean < 5ms over 2m",
			Rule{Name: "slow", Metric: "query_latency", Agg: "mean", Op: "<",
				Threshold: 5_000, Unit: "us", Window: 2 * time.Minute}},
		{"degraded_queries ratio < 1% over 1m",
			Rule{Metric: "degraded_queries", Agg: "ratio", Op: "<",
				Threshold: 0.01, Unit: "ratio", Window: time.Minute}},
		{"degraded < 0.05",
			Rule{Metric: "degraded_queries", Agg: "ratio", Op: "<",
				Threshold: 0.05, Unit: "ratio", Window: time.Minute}},
		{"errors ratio < 0.5% over 30s",
			Rule{Metric: "request_errors", Agg: "ratio", Op: "<",
				Threshold: 0.005, Unit: "ratio", Window: 30 * time.Second}},
		{"availability >= 0.99",
			Rule{Metric: "availability", Agg: "ratio", Op: ">=",
				Threshold: 0.99, Unit: "ratio", Instant: true}},
		{"availability >= 99%",
			Rule{Metric: "availability", Agg: "ratio", Op: ">=",
				Threshold: 0.99, Unit: "ratio", Instant: true}},
	}
	for _, c := range cases {
		got, err := ParseRule(c.in)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", c.in, err)
			continue
		}
		c.want.Raw = c.in
		if c.want.Name == "" {
			c.want.Name = c.in
		}
		if got != c.want {
			t.Errorf("ParseRule(%q)\n got %+v\nwant %+v", c.in, got, c.want)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"latency p99 < 50ms",                  // unknown metric
		"query_latency p99 50ms",              // no operator
		"query_latency p99 < banana",          // bad threshold
		"query_latency p0 < 50ms",             // bad quantile
		"query_latency ratio < 1%",            // agg/metric mismatch
		"degraded_queries p99 < 1%",           // agg/metric mismatch
		"availability >= 0.99 over 1m",        // instant metric with window
		"query_latency p99 < 50ms over x",     // bad window
		"query_latency p99 < 50ms trailing q", // trailing junk
	} {
		if r, err := ParseRule(in); err == nil {
			t.Errorf("ParseRule(%q) accepted: %+v", in, r)
		}
	}
}

func TestParseRulesList(t *testing.T) {
	rules, err := ParseRules("query_latency p99 < 50ms; availability >= 0.99 ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Metric != "query_latency" || rules[1].Metric != "availability" {
		t.Errorf("rules = %+v", rules)
	}
	if _, err := ParseRules(" ; "); err == nil {
		t.Error("empty list accepted")
	}
}

// fakeSource scripts the measurements the engine sees.
type fakeSource struct {
	reg   *metrics.Registry // served as every window's delta
	live  int
	total int
	empty bool
}

func (f *fakeSource) WindowDelta(time.Duration) (metrics.Snapshot, bool) {
	if f.empty {
		return metrics.Snapshot{}, false
	}
	return f.reg.Snapshot(), true
}
func (f *fakeSource) Liveness() (int, int) { return f.live, f.total }

func TestAvailabilityStateMachine(t *testing.T) {
	src := &fakeSource{reg: metrics.New(), live: 3, total: 3}
	reg := metrics.New()
	rules, err := ParseRules("availability >= 0.99")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Site: "G", Source: src, Rules: rules, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	e.Evaluate()
	if a := e.Alerts()[0]; a.State != "ok" || a.Value != 1 {
		t.Fatalf("healthy: %+v", a)
	}

	// One site dies: an instant rule fires in a single evaluation (both
	// burn windows are the same instant measurement).
	src.live = 2
	e.Evaluate()
	a := e.Alerts()[0]
	if a.State != "firing" {
		t.Fatalf("degraded availability: %+v", a)
	}
	if a.Value < 0.66 || a.Value > 0.67 {
		t.Errorf("value = %f, want 2/3", a.Value)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Get("alerts_firing", metrics.Labels{Site: "G"}); v.Value != 1 {
		t.Errorf("alerts_firing = %d", v.Value)
	}
	labels := metrics.Labels{Site: "G", Phase: rules[0].Name}
	if v, _ := snap.Get("alerts_state", labels); v.Value != int64(StateFiring) {
		t.Errorf("alerts_state = %d", v.Value)
	}

	// Site returns: resolved.
	src.live = 3
	e.Evaluate()
	if a := e.Alerts()[0]; a.State != "ok" {
		t.Fatalf("recovered: %+v", a)
	}
	if n := reg.Snapshot().CounterValue("alerts_transitions_total", labels); n != 2 {
		t.Errorf("transitions = %d, want 2 (ok→firing→ok)", n)
	}
}

func TestBurnRateWarnThenFire(t *testing.T) {
	// Script long vs short measurements separately: the short window is
	// 5s (floored), the long 1m.
	longReg, shortReg := metrics.New(), metrics.New()
	src := &windowedSource{long: longReg, short: shortReg}
	rules, err := ParseRules("degraded_queries ratio < 1% over 1m")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Source: src, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}

	record := func(reg *metrics.Registry, total, degraded int64) {
		reg.Counter("queries_total", metrics.Labels{Site: "G"}).Add(total)
		reg.Counter("degraded_queries_total", metrics.Labels{Site: "G"}).Add(degraded)
	}

	// Burn begins: the short window violates, the long window still fine.
	record(longReg, 1000, 0)
	record(shortReg, 100, 50)
	e.Evaluate()
	if a := e.Alerts()[0]; a.State != "warn" {
		t.Fatalf("short-only violation: %+v", a)
	}

	// Burn sustained: both windows violate → firing.
	record(longReg, 0, 500)
	e.Evaluate()
	if a := e.Alerts()[0]; a.State != "firing" {
		t.Fatalf("sustained violation: %+v", a)
	}

	// Short window recovers while the long still remembers the burn:
	// draining → warn, then both clean → ok.
	src.short = metrics.New()
	record(src.short, 100, 0)
	e.Evaluate()
	if a := e.Alerts()[0]; a.State != "warn" {
		t.Fatalf("draining: %+v", a)
	}
	src.long = metrics.New()
	record(src.long, 1000, 0)
	e.Evaluate()
	if a := e.Alerts()[0]; a.State != "ok" {
		t.Fatalf("recovered: %+v", a)
	}
}

// windowedSource serves different snapshots for the long and short burn
// windows (anything ≤ 10s is "short").
type windowedSource struct {
	long, short *metrics.Registry
}

func (w *windowedSource) WindowDelta(d time.Duration) (metrics.Snapshot, bool) {
	if d <= 10*time.Second {
		return w.short.Snapshot(), true
	}
	return w.long.Snapshot(), true
}
func (w *windowedSource) Liveness() (int, int) { return 1, 1 }

// No traffic in the window: rules hold vacuously and never flap.
func TestNoDataHolds(t *testing.T) {
	src := &fakeSource{empty: true, live: 0, total: 0}
	rules, _ := ParseRules("query_latency p99 < 1ms; availability >= 0.99")
	e, err := New(Config{Source: src, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	e.Evaluate()
	for _, a := range e.Alerts() {
		if a.State != "ok" || a.HaveData {
			t.Errorf("no-data alert = %+v, want vacuous ok", a)
		}
	}
}

func TestHandler(t *testing.T) {
	src := &fakeSource{reg: metrics.New(), live: 1, total: 2}
	rules, _ := ParseRules("avail: availability >= 0.99")
	e, err := New(Config{Source: src, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	e.Evaluate()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var alerts []Alert
	if err := json.Unmarshal(body, &alerts); err != nil {
		t.Fatalf("alerts JSON: %v in %q", err, body)
	}
	if len(alerts) != 1 || alerts[0].State != "firing" || alerts[0].Rule != "avail" {
		t.Errorf("alerts = %+v", alerts)
	}

	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "FIRING") || !strings.Contains(string(body), "avail") {
		t.Errorf("text body = %q", body)
	}
}

func TestNewValidation(t *testing.T) {
	src := &fakeSource{reg: metrics.New()}
	r, _ := ParseRule("availability >= 0.5")
	if _, err := New(Config{Rules: []Rule{r}}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(Config{Source: src}); err == nil {
		t.Error("no rules accepted")
	}
	if _, err := New(Config{Source: src, Rules: []Rule{r, r}}); err == nil {
		t.Error("duplicate rule names accepted")
	}
}
