// Package slo evaluates declarative service-level objectives against the
// cluster aggregator's windowed metrics and runs a burn-rate alert state
// machine per rule.
//
// Rule grammar (one rule; hetserve's -slo flag takes a semicolon-
// separated list):
//
//	[name:] metric [agg] op value [over window]
//
//	query_latency p99 < 50ms over 1m
//	degraded_queries ratio < 1% over 1m
//	request_errors ratio < 0.5% over 30s
//	slow: query_latency mean < 5ms over 2m
//	availability >= 0.99
//
// Metrics: query_latency (federation-merged query_latency_us histogram;
// agg pNN or mean, default p99; value is a duration), degraded_queries
// (degraded_queries_total over queries_total; value a percent or
// fraction), request_errors (request_errors_total over requests_total),
// and availability (sites live over sites tracked — instant, no window).
//
// Burn-rate evaluation: each windowed rule is measured twice per pass,
// over its stated long window and over a short window of long/12 (floored
// at 5s) — the multiwindow burn-rate shape from the SRE literature. Both
// windows violating means the error budget is burning now: firing.
// Exactly one violating means the burn is starting or draining: warn.
// Neither: ok. Transitions land in the slog stream (firing at Warn,
// resolution at Info) and in the alerts_* metrics family; /cluster/alerts
// serves the current state.
package slo

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
)

// Source supplies the measurements rules are judged against. *agg.Scraper
// implements it.
type Source interface {
	// WindowDelta returns the federation-merged metrics delta over the
	// trailing window; ok=false when no data exists yet.
	WindowDelta(w time.Duration) (metrics.Snapshot, bool)
	// Liveness returns how many scrape targets are live, out of how many.
	Liveness() (live, total int)
}

// State is an alert's position in the ok → warn → firing machine.
type State int

const (
	StateOK State = iota
	StateWarn
	StateFiring
)

func (s State) String() string {
	switch s {
	case StateWarn:
		return "warn"
	case StateFiring:
		return "firing"
	default:
		return "ok"
	}
}

// Rule is one parsed SLO rule.
type Rule struct {
	Name      string        // display name; defaults to the rule text
	Raw       string        // the text it was parsed from
	Metric    string        // query_latency | degraded_queries | request_errors | availability
	Agg       string        // p50..p99.9 | mean | ratio
	Q         float64       // quantile for pNN aggs
	Op        string        // < <= > >=
	Threshold float64       // µs for latency, fraction for ratios
	Unit      string        // "us" | "ratio"
	Window    time.Duration // long window; 0 for instant rules
	Instant   bool          // availability: judged on liveness, not a window
}

// ParseRules parses a semicolon-separated rule list, skipping empty
// segments.
func ParseRules(s string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := ParseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("slo: no rules in %q", s)
	}
	return rules, nil
}

// ParseRule parses one rule; see the package comment for the grammar.
func ParseRule(s string) (Rule, error) {
	r := Rule{Raw: strings.TrimSpace(s), Window: time.Minute}
	fields := strings.Fields(r.Raw)
	fail := func(format string, args ...any) (Rule, error) {
		return Rule{}, fmt.Errorf("slo: rule %q: %s", r.Raw, fmt.Sprintf(format, args...))
	}
	if len(fields) > 0 && strings.HasSuffix(fields[0], ":") {
		r.Name = strings.TrimSuffix(fields[0], ":")
		fields = fields[1:]
	}
	if len(fields) < 3 {
		return fail("want `metric [agg] op value [over window]`")
	}
	r.Metric = fields[0]
	fields = fields[1:]
	switch r.Metric {
	case "query_latency":
		r.Agg, r.Unit = "p99", "us"
	case "degraded", "degraded_queries":
		r.Metric, r.Agg, r.Unit = "degraded_queries", "ratio", "ratio"
	case "errors", "request_errors":
		r.Metric, r.Agg, r.Unit = "request_errors", "ratio", "ratio"
	case "availability":
		r.Agg, r.Unit, r.Instant, r.Window = "ratio", "ratio", true, 0
	default:
		return fail("unknown metric (want query_latency, degraded_queries, request_errors, or availability)")
	}
	if !isOp(fields[0]) { // optional agg token before the operator
		agg := fields[0]
		fields = fields[1:]
		switch {
		case agg == "mean" && r.Metric == "query_latency":
			r.Agg = "mean"
		case strings.HasPrefix(agg, "p") && r.Metric == "query_latency":
			pct, err := strconv.ParseFloat(agg[1:], 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return fail("bad quantile %q (want p50..p99.9)", agg)
			}
			r.Agg, r.Q = agg, pct/100
		case agg == "ratio" && r.Unit == "ratio":
			// the default, stated explicitly
		default:
			return fail("aggregation %q does not apply to %s", agg, r.Metric)
		}
	}
	if r.Agg == "p99" && r.Q == 0 {
		r.Q = 0.99
	}
	if len(fields) < 2 || !isOp(fields[0]) {
		return fail("want a comparison operator (<, <=, >, >=)")
	}
	r.Op = fields[0]
	val := fields[1]
	fields = fields[2:]
	switch r.Unit {
	case "us":
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fail("bad latency threshold %q (want a duration like 50ms)", val)
		}
		r.Threshold = float64(d.Microseconds())
	case "ratio":
		pct := strings.HasSuffix(val, "%")
		f, err := strconv.ParseFloat(strings.TrimSuffix(val, "%"), 64)
		if err != nil || f < 0 {
			return fail("bad threshold %q (want a fraction like 0.01 or a percent like 1%%)", val)
		}
		if pct {
			f /= 100
		}
		r.Threshold = f
	}
	switch {
	case len(fields) == 0:
	case len(fields) == 2 && fields[0] == "over":
		if r.Instant {
			return fail("availability is instant; it takes no window")
		}
		w, err := time.ParseDuration(fields[1])
		if err != nil || w <= 0 {
			return fail("bad window %q", fields[1])
		}
		r.Window = w
	default:
		return fail("trailing tokens %v", fields)
	}
	if r.Name == "" {
		r.Name = r.Raw
	}
	return r, nil
}

func isOp(s string) bool {
	return s == "<" || s == "<=" || s == ">" || s == ">="
}

// holds reports whether a measured value satisfies the rule's objective.
func (r Rule) holds(v float64) bool {
	switch r.Op {
	case "<":
		return v < r.Threshold
	case "<=":
		return v <= r.Threshold
	case ">":
		return v > r.Threshold
	default:
		return v >= r.Threshold
	}
}
