// The flight recorder: a bounded ring of recent query profiles with
// tail-based retention. Under concurrent serving the query worth debugging
// — slow, degraded, or failed — is almost never the most recent one, so the
// recorder keeps every *interesting* profile as long as it possibly can and
// lets the healthy majority age out first:
//
//   - degraded and errored profiles always survive eviction while any
//     ordinary profile remains to evict;
//   - profiles in the latency tail (at or above the recorder's running
//     slow-percentile estimate, or an absolute slow threshold) are retained
//     the same way;
//   - everything else is the ring's recency sample: newest N, evicted
//     oldest-first under pressure.
//
// Only when the whole ring is interesting does the oldest interesting
// profile fall off — the recorder is a diagnostic buffer, not a log.
package obs

import (
	"log/slog"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/trace"
)

// DefaultRecorderSize is the profile ring capacity when RecorderConfig
// leaves Size zero.
const DefaultRecorderSize = 128

// slowMinSamples is how many latencies the recorder wants before trusting
// its percentile estimate — below it only the absolute threshold marks
// profiles slow.
const slowMinSamples = 32

// RecorderConfig assembles a flight recorder.
type RecorderConfig struct {
	// Site names the recording process in logs and metrics.
	Site string
	// Size bounds the profile ring (0 = DefaultRecorderSize).
	Size int
	// SlowQuantile is the latency quantile at/above which a profile counts
	// as slow (0 = 0.95). The estimate comes from the recorder's own
	// latency histogram over everything it has seen.
	SlowQuantile float64
	// SlowThreshold, when positive, marks any profile at/over this absolute
	// latency as slow and logs it through Log — the slow-query log.
	SlowThreshold time.Duration
	// Log receives the slow-query log entries (nil = no log).
	Log *slog.Logger
	// Metrics, when non-nil, receives profiles_recorded_total,
	// profiles_evicted_total and slow_queries_total.
	Metrics *metrics.Registry
}

// Recorder is a flight recorder of query profiles. Safe for concurrent use.
// A nil *Recorder ignores every call, so instrumented paths need no guards.
type Recorder struct {
	cfg RecorderConfig

	mu       sync.Mutex
	ring     []entry // record order, oldest first
	latency  *metrics.Histogram
	recorded int64
}

type entry struct {
	p *trace.Profile
	// retained marks the profile as surviving ordinary eviction: degraded,
	// errored, or in the latency tail at record time.
	retained bool
}

// NewRecorder builds a flight recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Size <= 0 {
		cfg.Size = DefaultRecorderSize
	}
	if cfg.SlowQuantile <= 0 || cfg.SlowQuantile >= 1 {
		cfg.SlowQuantile = 0.95
	}
	return &Recorder{cfg: cfg, latency: metrics.NewHistogram()}
}

// Record admits one finished query profile. Nil-safe on both sides.
func (r *Recorder) Record(p *trace.Profile) {
	if r == nil || p == nil {
		return
	}
	r.mu.Lock()
	slow := r.isSlowLocked(p)
	r.latency.Observe(p.WallMicros)
	ent := entry{p: p, retained: slow || p.Interesting()}
	if len(r.ring) >= r.cfg.Size {
		r.evictLocked()
	}
	r.ring = append(r.ring, ent)
	r.recorded++
	r.mu.Unlock()

	reg := r.cfg.Metrics
	reg.Counter("profiles_recorded_total", metrics.Labels{Site: r.cfg.Site}).Inc()
	if slow {
		reg.Counter("slow_queries_total", metrics.Labels{Site: r.cfg.Site, Alg: p.Alg}).Inc()
		if r.cfg.Log != nil {
			r.cfg.Log.Warn("slow query",
				slog.String("query", p.ID),
				slog.String("alg", p.Alg),
				slog.Float64("ms", p.WallMicros/1e3),
				slog.String("status", p.Status),
				slog.Int("certain", p.Certain),
				slog.Int("maybe", p.Maybe),
			)
		}
	}
}

// isSlowLocked decides tail membership at record time: the absolute
// threshold when configured, else the running percentile estimate once
// enough samples back it.
func (r *Recorder) isSlowLocked(p *trace.Profile) bool {
	if t := r.cfg.SlowThreshold; t > 0 && p.WallMicros >= float64(t.Microseconds()) {
		return true
	}
	snap := r.latency.Snapshot()
	if snap.Count < slowMinSamples {
		return false
	}
	return p.WallMicros >= snap.Quantile(r.cfg.SlowQuantile)
}

// evictLocked drops one profile to make room: the oldest non-retained one,
// or — when the whole ring is retained — the oldest outright.
func (r *Recorder) evictLocked() {
	victim := 0
	for i, e := range r.ring {
		if !e.retained {
			victim = i
			break
		}
	}
	r.ring = append(r.ring[:victim], r.ring[victim+1:]...)
	r.cfg.Metrics.Counter("profiles_evicted_total", metrics.Labels{Site: r.cfg.Site}).Inc()
}

// Profiles returns the recorded profiles, newest first.
func (r *Recorder) Profiles() []*trace.Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*trace.Profile, 0, len(r.ring))
	for i := len(r.ring) - 1; i >= 0; i-- {
		out = append(out, r.ring[i].p)
	}
	return out
}

// Get returns the recorded profile with the given query ID, nil when it has
// aged out (the newest when several share the ID — a site sees one profile
// per request of a query).
func (r *Recorder) Get(id string) *trace.Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.ring) - 1; i >= 0; i-- {
		if r.ring[i].p.ID == id {
			return r.ring[i].p
		}
	}
	return nil
}

// Last returns the most recently recorded profile, nil when empty.
func (r *Recorder) Last() *trace.Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return nil
	}
	return r.ring[len(r.ring)-1].p
}

// Recorded returns how many profiles were ever admitted (eviction does not
// decrease it).
func (r *Recorder) Recorded() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}
