package exec

import (
	"context"
	"errors"
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
)

// gate is the engine's admission control: a counting semaphore bounding how
// many queries execute at once over the shared site state. Queries beyond
// the bound queue FIFO-ish on the channel; a nil gate (bound <= 0) admits
// everything immediately.
//
// The gate observes four instruments on the registry:
//
//	queries_inflight{site}       gauge   queries currently admitted
//	queries_queued_total{site}   counter admissions that had to wait
//	queries_shed_total{site}     counter admissions turned away (deadline
//	                                     expired or caller gone pre-slot)
//	admission_wait_us{site,alg}  histogram wall-clock wait for a slot
type gate struct {
	slots chan struct{}
	reg   *metrics.Registry
	site  string
}

// newGate builds a gate admitting at most max queries at once; max <= 0
// returns nil, which enter treats as an unbounded pass-through (only the
// inflight gauge is maintained in that case via the registry argument —
// callers get a cheap always-admit path).
func newGate(max int, reg *metrics.Registry, site string) *gate {
	if max <= 0 {
		return nil
	}
	return &gate{slots: make(chan struct{}, max), reg: reg, site: site}
}

// enter blocks until the query is admitted, the context expires, or the
// caller goes away. On admission it returns the release function together
// with the microseconds this admission waited (0 when admitted immediately)
// — the per-query profile records the wait. On a done context it sheds: the
// query never gets a slot and the typed error says why (ErrShed for an
// expired deadline, ErrCanceled for a vanished caller). Safe on a nil gate,
// which admits everything — an unbounded engine has nothing to shed; the
// run itself unwinds at its first checkpoint.
func (g *gate) enter(ctx context.Context, alg string) (func(), int64, error) {
	if g == nil {
		return func() {}, 0, nil
	}
	// Fail fast: a query that arrives already out of budget must not consume
	// a slot, not even instantaneously.
	if err := ctx.Err(); err != nil {
		return nil, 0, g.shed(err)
	}
	var waited int64
	select {
	case g.slots <- struct{}{}:
	default:
		// Full: this admission waits. Record the queuing and the wait —
		// including a wait that ends in shedding, so admission_wait_us shows
		// how long shed queries held out.
		g.reg.Counter("queries_queued_total", metrics.Labels{Site: g.site}).Inc()
		start := time.Now()
		select {
		case g.slots <- struct{}{}:
		case <-ctx.Done():
			waited = time.Since(start).Microseconds()
			g.reg.Histogram("admission_wait_us", metrics.Labels{Site: g.site, Alg: alg}).
				Observe(float64(waited))
			return nil, waited, g.shed(ctx.Err())
		}
		waited = time.Since(start).Microseconds()
		g.reg.Histogram("admission_wait_us", metrics.Labels{Site: g.site, Alg: alg}).
			Observe(float64(waited))
	}
	g.reg.Gauge("queries_inflight", metrics.Labels{Site: g.site}).Add(1)
	return func() {
		g.reg.Gauge("queries_inflight", metrics.Labels{Site: g.site}).Add(-1)
		<-g.slots
	}, waited, nil
}

// shed counts the turn-away and types the cause.
func (g *gate) shed(cause error) error {
	g.reg.Counter("queries_shed_total", metrics.Labels{Site: g.site}).Inc()
	if errors.Is(cause, context.DeadlineExceeded) {
		return ErrShed
	}
	return ErrCanceled
}
