package exec

import (
	"time"

	"github.com/hetfed/hetfed/internal/metrics"
)

// gate is the engine's admission control: a counting semaphore bounding how
// many queries execute at once over the shared site state. Queries beyond
// the bound queue FIFO-ish on the channel; a nil gate (bound <= 0) admits
// everything immediately.
//
// The gate observes three instruments on the registry:
//
//	queries_inflight{site}       gauge   queries currently admitted
//	queries_queued_total{site}   counter admissions that had to wait
//	admission_wait_us{site,alg}  histogram wall-clock wait for a slot
type gate struct {
	slots chan struct{}
	reg   *metrics.Registry
	site  string
}

// newGate builds a gate admitting at most max queries at once; max <= 0
// returns nil, which enter treats as an unbounded pass-through (only the
// inflight gauge is maintained in that case via the registry argument —
// callers get a cheap always-admit path).
func newGate(max int, reg *metrics.Registry, site string) *gate {
	if max <= 0 {
		return nil
	}
	return &gate{slots: make(chan struct{}, max), reg: reg, site: site}
}

// enter blocks until the query is admitted and returns the release function
// together with the microseconds this admission waited (0 when admitted
// immediately) — the per-query profile records the wait. Safe on a nil gate.
func (g *gate) enter(alg string) (func(), int64) {
	if g == nil {
		return func() {}, 0
	}
	var waited int64
	select {
	case g.slots <- struct{}{}:
	default:
		// Full: this admission waits. Record the queuing and the wait.
		g.reg.Counter("queries_queued_total", metrics.Labels{Site: g.site}).Inc()
		start := time.Now()
		g.slots <- struct{}{}
		waited = time.Since(start).Microseconds()
		g.reg.Histogram("admission_wait_us", metrics.Labels{Site: g.site, Alg: alg}).
			Observe(float64(waited))
	}
	g.reg.Gauge("queries_inflight", metrics.Labels{Site: g.site}).Add(1)
	return func() {
		g.reg.Gauge("queries_inflight", metrics.Labels{Site: g.site}).Add(-1)
		<-g.slots
	}, waited
}
