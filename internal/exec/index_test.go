package exec

import (
	"math/rand"
	"testing"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/workload"
)

// indexWorkload generates a workload and builds secondary indexes on every
// held predicate attribute of the root class.
func indexWorkload(t *testing.T, seed int64, mutate func(*workload.Ranges)) *workload.Workload {
	t.Helper()
	r := smallRanges()
	if mutate != nil {
		mutate(&r)
	}
	rng := rand.New(rand.NewSource(seed))
	w, err := workload.Generate(r.Draw(rng), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range w.Databases {
		cls := db.Schema().Class("C1")
		for _, a := range cls.Attrs {
			if !a.IsComplex() && !a.MultiValued && a.Name[0] == 'p' {
				if _, err := db.CreateIndex("C1", a.Name); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return w
}

func runIndexed(t *testing.T, w *workload.Workload, alg Algorithm, useIndexes bool) (*federation.Answer, fabric.Metrics) {
	t.Helper()
	e, err := New(Config{
		Global:      w.Global,
		Coordinator: "G",
		Databases:   w.Databases,
		Tables:      w.Tables,
		Signatures:  signature.Build(w.Databases),
		UseIndexes:  useIndexes,
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, m, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, w.Bound)
	if err != nil {
		t.Fatalf("%v: %v", alg, err)
	}
	return ans, m
}

// TestIndexedEvaluationPreservesAnswers: index-assisted BL returns exactly
// the answers of scan-based BL across random workloads (and so do the
// other strategies, which the index path does not touch).
func TestIndexedEvaluationPreservesAnswers(t *testing.T) {
	for seed := int64(800); seed < 815; seed++ {
		w := indexWorkload(t, seed, nil)
		for _, alg := range Algorithms() {
			plain, _ := runIndexed(t, w, alg, false)
			indexed, _ := runIndexed(t, w, alg, true)
			if answerSummary(plain) != answerSummary(indexed) {
				t.Errorf("seed %d %v: indexed answer differs:\n plain:   %s\n indexed: %s",
					seed, alg, answerSummary(plain), answerSummary(indexed))
			}
		}
	}
}

// TestIndexedEvaluationCutsDisk: at selective predicates the index probe
// reads far fewer bytes than the extent scan.
func TestIndexedEvaluationCutsDisk(t *testing.T) {
	w := indexWorkload(t, 900, func(r *workload.Ranges) {
		r.Selectivity = 0.05
		r.NClasses = [2]int{1, 1}
		r.NPredsPerClass = [2]int{2, 2}
		r.NObjects = [2]int{400, 500}
		r.NullRatio = [2]float64{0, 0.05}
	})
	_, plain := runIndexed(t, w, BL, false)
	_, indexed := runIndexed(t, w, BL, true)
	if indexed.DiskBytes >= plain.DiskBytes {
		t.Errorf("indexed disk %d >= plain disk %d", indexed.DiskBytes, plain.DiskBytes)
	}
	// At 5 % selectivity the scan should cost several times the probe.
	if ratio := float64(plain.DiskBytes) / float64(indexed.DiskBytes); ratio < 2 {
		t.Errorf("index saved only %.1f× disk", ratio)
	}
}

// TestIndexedDisjunctiveFallsBack: disjunctive queries cannot filter
// through a single-predicate index; the engine must fall back to scanning
// and still answer correctly.
func TestIndexedDisjunctiveFallsBack(t *testing.T) {
	w := indexWorkload(t, 901, func(r *workload.Ranges) { r.Disjunctive = true })
	plain, mPlain := runIndexed(t, w, BL, false)
	indexed, mIndexed := runIndexed(t, w, BL, true)
	if answerSummary(plain) != answerSummary(indexed) {
		t.Error("disjunctive indexed answer differs")
	}
	if mPlain.DiskBytes != mIndexed.DiskBytes {
		t.Errorf("disjunctive query used the index: %d vs %d", mIndexed.DiskBytes, mPlain.DiskBytes)
	}
}

// TestIndexedSchoolQ1: the school example with indexes on the locally
// evaluable predicate attributes still answers per the paper.
func TestIndexedSchoolQ1(t *testing.T) {
	fx := schoolFixture(t)
	if _, err := fx.Databases["DB2"].CreateIndex("Address", "city"); err != nil {
		t.Fatal(err)
	}
	// An index on a branch class is never probed (only direct root
	// predicates are); index the root-reachable attribute too.
	if _, err := fx.Databases["DB1"].CreateIndex("Student", "name"); err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Global:      fx.Global,
		Coordinator: "G",
		Databases:   fx.Databases,
		Tables:      fx.Mapping,
		UseIndexes:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := schoolBound(t, fx)
	ans, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), BL, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := answerSummary(ans); got != "certain: gs4(Hedy, Kelly) maybe: gs2(Tony, Haley)" {
		t.Errorf("answer = %q", got)
	}
}
