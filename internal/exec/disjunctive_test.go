package exec

import (
	"math/rand"
	"testing"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/workload"
)

// TestDisjunctiveSchool pins hand-computed answers for a disjunctive query
// on the school federation under every strategy:
//
//	select name from Student where age < 25 or advisor.speciality = "database"
//
//	John (31, Jeffery/network)  -> false or false            -> out
//	Tony (28, Haley/null spec)  -> false or unknown          -> maybe
//	Mary (24, Abel/no spec anywhere) -> TRUE or unknown      -> certain
//	Hedy (no age, Kelly/database)    -> unknown or TRUE      -> certain
//	Fanny (no age, Jeffery/network)  -> unknown or false     -> maybe
func TestDisjunctiveSchool(t *testing.T) {
	e, _ := schoolEngine(t, nil)
	fx := schoolFixture(t)
	b := query.MustBind(query.MustParse(
		`select name from Student where age < 25 or advisor.speciality = "database"`),
		fx.Global)

	const want = "certain: gs3(Mary) gs4(Hedy) maybe: gs2(Tony) gs5(Fanny)"
	for _, alg := range Algorithms() {
		ans, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := answerSummary(ans); got != want {
			t.Errorf("%v = %q, want %q", alg, got, want)
		}
		// And on the simulated runtime.
		ans, _, err = e.Run(fabric.NewSim(fabric.DefaultRates(), e.Sites()), alg, b)
		if err != nil {
			t.Fatalf("%v sim: %v", alg, err)
		}
		if got := answerSummary(ans); got != want {
			t.Errorf("%v sim = %q, want %q", alg, got, want)
		}
	}
}

// TestDisjunctiveCertificationUpgrade: a disjunct solved through an
// assistant check certifies the whole entity even when the other disjunct
// stays unknown.
func TestDisjunctiveCertificationUpgrade(t *testing.T) {
	e, _ := schoolEngine(t, nil)
	fx := schoolFixture(t)
	// Hedy: address.city = "Nowhere" is FALSE at DB2; advisor.department
	// is missing at DB2 but Kelly's DB3 record resolves it to CS -> the
	// second disjunct certifies.
	b := query.MustBind(query.MustParse(
		`select name from Student where address.city = "Nowhere" or advisor.department.name = "CS"`),
		fx.Global)
	for _, alg := range Algorithms() {
		ans, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		certain := goidSet(ans.Certain)
		if !certain["gs4"] {
			t.Errorf("%v: Hedy not certified: %s", alg, answerSummary(ans))
		}
	}
}

// TestDisjunctiveAgreementProperty extends the central agreement property
// to disjunctive queries over random federations.
func TestDisjunctiveAgreementProperty(t *testing.T) {
	r := smallRanges()
	r.Disjunctive = true
	for seed := int64(600); seed < 625; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := r.Draw(rng)
		w, err := workload.Generate(p, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		ca, _ := runWorkload(t, w, CA)
		bl, _ := runWorkload(t, w, BL)
		pl, _ := runWorkload(t, w, PL)

		if answerSummary(pl) != answerSummary(bl) {
			t.Errorf("seed %d: PL != BL\n PL: %s\n BL: %s", seed, answerSummary(pl), answerSummary(bl))
		}
		caCertain, caMaybe := goidSet(ca.Certain), goidSet(ca.Maybe)
		blCertain, blMaybe := goidSet(bl.Certain), goidSet(bl.Maybe)
		for g := range blCertain {
			if !caCertain[g] {
				t.Errorf("seed %d: %s certain under BL but not CA", seed, g)
			}
		}
		for g := range caCertain {
			if !blCertain[g] && !blMaybe[g] {
				t.Errorf("seed %d: %s lost by BL", seed, g)
			}
		}
		for g := range caMaybe {
			if !blCertain[g] && !blMaybe[g] {
				t.Errorf("seed %d: %s (CA maybe) eliminated by BL", seed, g)
			}
		}
		for g := range blMaybe {
			if !caCertain[g] && !caMaybe[g] {
				t.Errorf("seed %d: %s kept by BL but eliminated by CA", seed, g)
			}
		}
	}
}
