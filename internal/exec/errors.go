package exec

import (
	"context"
	"fmt"
)

// Typed execution errors. All wrap the corresponding context error, so
// callers classify with errors.Is against either the exec sentinel or
// context.Canceled / context.DeadlineExceeded — whichever layer they think
// in. Note that an *admitted* query that runs out of budget mid-flight does
// NOT return an error: it returns its sound partial Answer with
// Answer.Outcome set. These errors surface only where no answer exists at
// all — above all at the admission gate.
var (
	// ErrDeadlineExceeded marks a query whose deadline expired before any
	// execution happened.
	ErrDeadlineExceeded = fmt.Errorf("exec: query deadline exceeded: %w", context.DeadlineExceeded)
	// ErrCanceled marks a query whose caller went away before any execution
	// happened.
	ErrCanceled = fmt.Errorf("exec: query canceled: %w", context.Canceled)
	// ErrShed marks a query turned away by admission control: it queued for
	// an execution slot and its deadline expired before one freed up.
	// Shedding the doomed query at the gate is the overload valve — the slot
	// goes to a query that can still meet its deadline. Wraps
	// ErrDeadlineExceeded (and therefore context.DeadlineExceeded).
	ErrShed = fmt.Errorf("exec: query shed at admission: %w", ErrDeadlineExceeded)
)
