package exec

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/trace"
)

// cancelEngine builds a fully instrumented engine (metrics + recorder) for
// the interruption tests.
func cancelEngine(t testing.TB, deadline time.Duration, maxConcurrent int) (*Engine, *query.Bound, *metrics.Registry, *obs.Recorder) {
	t.Helper()
	fx := school.New()
	reg := metrics.New()
	rec := obs.NewRecorder(obs.RecorderConfig{Site: "G", Metrics: reg})
	e, err := New(Config{
		Global:        fx.Global,
		Coordinator:   "G",
		Databases:     fx.Databases,
		Tables:        fx.Mapping,
		Tracer:        &trace.Tracer{},
		Metrics:       reg,
		Signatures:    signature.Build(fx.Databases),
		Recorder:      rec,
		Deadline:      deadline,
		MaxConcurrent: maxConcurrent,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, query.MustBind(query.MustParse(school.Q1), fx.Global), reg, rec
}

// assertNoGoroutineLeak fails the test if the goroutine count has not
// settled back to (about) the baseline within a generous window. The slack
// absorbs runtime-internal goroutines; a leaked per-site worker per
// cancelled query grows far beyond it.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d running, baseline %d", n, baseline)
}

// TestDeadlineInterruptsDelayedSites is the acceptance scenario at the
// engine level: a 50ms-deadline query against sites wedged by a 5s Delay
// fault must come back well within the fault's delay (≈ the deadline, with
// generous slack for slow CI), as a sound partial answer — outcome
// deadline, every wedged site reported unavailable, certain rows empty —
// and must not leak the per-site worker goroutines.
func TestDeadlineInterruptsDelayedSites(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e, b, reg, rec := cancelEngine(t, 50*time.Millisecond, 0)
	for _, alg := range []Algorithm{CA, BL, PL} {
		rt := fabric.NewReal(fabric.DefaultRates()).WithFaults(
			fabric.NewFaultPlan().
				Delay("DB1", 5e6).Delay("DB2", 5e6).Delay("DB3", 5e6))
		start := time.Now()
		ans, _, err := e.Run(rt, alg, b)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("%v: interrupted query failed instead of degrading: %v", alg, err)
		}
		if elapsed > 2*time.Second {
			t.Errorf("%v: returned after %v — the deadline did not cut the 5s delay", alg, elapsed)
		}
		if ans.Outcome != federation.OutcomeDeadline {
			t.Errorf("%v: outcome = %q, want %q", alg, ans.Outcome, federation.OutcomeDeadline)
		}
		if !ans.Interrupted() || !ans.Degraded {
			t.Errorf("%v: Interrupted=%v Degraded=%v, want both", alg, ans.Interrupted(), ans.Degraded)
		}
		if len(ans.Certain) != 0 {
			t.Errorf("%v: certain = %v, want none (no site answered in budget)", alg, ans.Certain)
		}
		if len(ans.Unavailable) == 0 {
			t.Errorf("%v: no sites reported unavailable", alg)
		}
		if p := rec.Last(); p == nil || p.Status != trace.StatusDeadline {
			t.Errorf("%v: recorded profile status = %v, want %q", alg, p, trace.StatusDeadline)
		}
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("deadline_exceeded_total", metrics.Labels{Site: "G", Alg: "PL"}); got != 1 {
		t.Errorf("deadline_exceeded_total{PL} = %d, want 1", got)
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestCancelMidQuery cancels the context while the sites are wedged: the
// strategies must unwind at their next checkpoint with outcome canceled.
func TestCancelMidQuery(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e, b, reg, _ := cancelEngine(t, 0, 0)
	for _, alg := range []Algorithm{CA, BL, PL} {
		rt := fabric.NewReal(fabric.DefaultRates()).WithFaults(
			fabric.NewFaultPlan().
				Delay("DB1", 5e6).Delay("DB2", 5e6).Delay("DB3", 5e6))
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		ans, _, err := e.RunContext(ctx, rt, alg, b)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			t.Fatalf("%v: cancelled query failed instead of degrading: %v", alg, err)
		}
		if elapsed > 2*time.Second {
			t.Errorf("%v: returned after %v — cancellation did not cut the 5s delay", alg, elapsed)
		}
		if ans.Outcome != federation.OutcomeCanceled {
			t.Errorf("%v: outcome = %q, want %q", alg, ans.Outcome, federation.OutcomeCanceled)
		}
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("queries_canceled_total", metrics.Labels{Site: "G", Alg: "CA"}); got != 1 {
		t.Errorf("queries_canceled_total{CA} = %d, want 1", got)
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestCancelSimRuntime covers the virtual-time fabric: a pre-cancelled
// context must still yield a sound partial answer (every site interrupted)
// rather than an error, on the same code path the CLI's ctrl-C takes.
func TestCancelSimRuntime(t *testing.T) {
	e, b, _, _ := cancelEngine(t, 0, 0)
	for _, alg := range []Algorithm{CA, BL, PL} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		rt := fabric.NewSim(fabric.DefaultRates(), e.Sites())
		ans, _, err := e.RunContext(ctx, rt, alg, b)
		if err != nil {
			t.Fatalf("%v/sim: %v", alg, err)
		}
		if ans.Outcome != federation.OutcomeCanceled {
			t.Errorf("%v/sim: outcome = %q, want canceled", alg, ans.Outcome)
		}
		if len(ans.Certain) != 0 {
			t.Errorf("%v/sim: certain = %v, want none", alg, ans.Certain)
		}
	}
}

// TestShedAtAdmission wedges the single admission slot with a slow query
// and then offers queries whose budget cannot survive the queue: they must
// fail fast with the typed sentinels (ErrShed for an expired deadline,
// ErrCanceled for a cancelled wait) and count queries_shed_total — and the
// slot must come back once the slow query finishes.
func TestShedAtAdmission(t *testing.T) {
	e, b, reg, _ := cancelEngine(t, 0, 1)

	slowStarted := make(chan struct{})
	slowDone := make(chan error, 1)
	go func() {
		rt := fabric.NewReal(fabric.DefaultRates()).WithFaults(
			fabric.NewFaultPlan().Delay("DB1", 3e5).Delay("DB2", 3e5).Delay("DB3", 3e5))
		close(slowStarted)
		_, _, err := e.Run(rt, CA, b)
		slowDone <- err
	}()
	<-slowStarted
	time.Sleep(20 * time.Millisecond) // let the slow query take the slot

	// Deadline dies while queued → ErrShed (wraps context.DeadlineExceeded).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	_, _, err := e.RunContext(ctx, fabric.NewReal(fabric.DefaultRates()), BL, b)
	cancel()
	if !errors.Is(err, ErrShed) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued-past-deadline error = %v, want ErrShed", err)
	}

	// Caller leaves while queued → ErrCanceled.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel2()
	}()
	_, _, err = e.RunContext(ctx2, fabric.NewReal(fabric.DefaultRates()), BL, b)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled-while-queued error = %v, want ErrCanceled", err)
	}

	if err := <-slowDone; err != nil {
		t.Fatalf("slow query: %v", err)
	}
	// The released slot admits a fresh query immediately.
	ans, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), BL, b)
	if err != nil || ans.Interrupted() {
		t.Fatalf("post-shed query: ans=%v err=%v", ans, err)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("queries_shed_total", metrics.Labels{Site: "G"}); got != 2 {
		t.Errorf("queries_shed_total = %d, want 2", got)
	}
}
