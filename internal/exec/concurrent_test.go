package exec

import (
	"sync"
	"testing"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/trace"
)

// concurrentEngine builds one shared Engine with admission control, caches,
// a tracer and a metrics registry — every piece of cross-query shared state
// the engine owns — so the race detector sees the full surface.
func concurrentEngine(t testing.TB, maxConcurrent int) (*Engine, *query.Bound, *metrics.Registry) {
	t.Helper()
	fx := school.New()
	reg := metrics.New()
	tracer := &trace.Tracer{}
	tracer.SetLimit(4096) // keep memory flat across benchmark iterations
	e, err := New(Config{
		Global:        fx.Global,
		Coordinator:   "G",
		Databases:     fx.Databases,
		Tables:        fx.Mapping,
		Tracer:        tracer,
		Metrics:       reg,
		MaxConcurrent: maxConcurrent,
		Cache:         true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, query.MustBind(query.MustParse(school.Q1), fx.Global), reg
}

func inflight(snap metrics.Snapshot) int64 {
	s, _ := snap.Get("queries_inflight", metrics.Labels{Site: "G"})
	return s.Value
}

// TestConcurrentQueries drives 24 simultaneous queries through one shared
// Engine — mixed CA/BL/PL, both runtimes, and half the queries running
// against a fault plan that kills DB3 mid-flight. Every clean query must
// still produce the paper's exact answer and every faulted query must
// degrade exactly as the serial fault tests demand; run under -race this
// is the shared-state audit for the whole engine.
func TestConcurrentQueries(t *testing.T) {
	e, b, reg := concurrentEngine(t, 4)
	const wantClean = "certain: gs4(Hedy, Kelly) maybe: gs2(Tony, Haley)"

	const perAlg = 4 // × 3 algs × 2 runtimes = 24 goroutines, half faulted
	var wg sync.WaitGroup
	errs := make(chan error, 3*perAlg*2)
	check := func(alg Algorithm, rt fabric.Runtime, faulted bool) {
		defer wg.Done()
		ans, _, err := e.Run(rt, alg, b)
		if err != nil {
			errs <- err
			return
		}
		if faulted {
			if !ans.Degraded {
				t.Errorf("%v faulted: answer not degraded", alg)
			}
			if len(ans.Certain) != 0 {
				t.Errorf("%v faulted: certain = %v, want none", alg, ans.Certain)
			}
			return
		}
		if got := answerSummary(ans); got != wantClean {
			t.Errorf("%v clean: answer = %q, want %q", alg, got, wantClean)
		}
	}

	for _, alg := range Algorithms() {
		for i := 0; i < perAlg; i++ {
			faulted := i%2 == 1
			// Real runtime: wall-clock goroutine fabric.
			rt := fabric.NewReal(fabric.DefaultRates())
			if faulted {
				rt = rt.WithFaults(fabric.NewFaultPlan().Kill("DB3"))
			}
			wg.Add(1)
			go check(alg, rt, faulted)
			// Sim runtime: single-use, one per query, over the same Engine.
			srt := fabric.NewSim(fabric.DefaultRates(), e.Sites())
			if faulted {
				srt = srt.WithFaults(fabric.NewFaultPlan().Kill("DB3"))
			}
			wg.Add(1)
			go check(alg, srt, faulted)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("query failed: %v", err)
	}
	if got := inflight(reg.Snapshot()); got != 0 {
		t.Errorf("queries_inflight after drain = %d, want 0", got)
	}
}

// TestConcurrentQueriesSharedReal runs queries over one shared Real runtime
// value concurrently: per-run state (clocks, sinks, process sets) must be
// isolated per Run call even when the fabric value itself is shared — and
// the unbounded (nil-gate) admission path must work too.
func TestConcurrentQueriesSharedReal(t *testing.T) {
	e, b, _ := concurrentEngine(t, 0)
	rt := fabric.NewReal(fabric.DefaultRates())
	const wantClean = "certain: gs4(Hedy, Kelly) maybe: gs2(Tony, Haley)"

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		alg := Algorithms()[i%len(Algorithms())]
		wg.Add(1)
		go func(alg Algorithm) {
			defer wg.Done()
			ans, _, err := e.Run(rt, alg, b)
			if err != nil {
				t.Errorf("%v: %v", alg, err)
				return
			}
			if got := answerSummary(ans); got != wantClean {
				t.Errorf("%v: answer = %q, want %q", alg, got, wantClean)
			}
		}(alg)
	}
	wg.Wait()
}

// TestAdmissionGate checks the gate really bounds concurrency: with
// MaxConcurrent=1 and several queries in flight, the queued counter must
// record the admissions that waited, and the inflight gauge must return to
// zero once the queries drain.
func TestAdmissionGate(t *testing.T) {
	e, b, reg := concurrentEngine(t, 1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), CA, b); err != nil {
				t.Errorf("run: %v", err)
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if queued := snap.CounterValue("queries_queued_total", metrics.Labels{Site: "G"}); queued == 0 {
		t.Errorf("queries_queued_total = 0, want > 0 with MaxConcurrent=1 and 4 clients")
	}
	if got := inflight(snap); got != 0 {
		t.Errorf("queries_inflight after drain = %d, want 0", got)
	}
}

// TestConcurrentInvalidation interleaves queries with cache invalidation:
// the per-site lookup caches must never serve a stale answer across an
// invalidation, and invalidating concurrently with query traffic must be
// race-free.
func TestConcurrentInvalidation(t *testing.T) {
	e, b, _ := concurrentEngine(t, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if _, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), BL, b); err != nil {
					t.Errorf("run: %v", err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 10; j++ {
			for _, site := range e.sites {
				site.Cache().InvalidateClass("GStudent")
			}
		}
	}()
	wg.Wait()

	ans, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), BL, b)
	if err != nil {
		t.Fatalf("final run: %v", err)
	}
	const want = "certain: gs4(Hedy, Kelly) maybe: gs2(Tony, Haley)"
	if got := answerSummary(ans); got != want {
		t.Errorf("answer after invalidation churn = %q, want %q", got, want)
	}
}

// BenchmarkConcurrentQueries measures query throughput through one shared
// Engine at 1 versus 8 client goroutines. Each site operation carries a
// flat injected latency standing in for the remote round trip, so the
// benchmark measures what admission control exists to exploit — a
// coordinator overlapping its waits on remote sites — rather than raw
// single-machine CPU. The acceptance bar is ≥2× throughput at 8 clients
// over serial (compare the sub-benchmarks' ns/op).
func BenchmarkConcurrentQueries(b *testing.B) {
	siteLatency := func() *fabric.FaultPlan {
		fp := fabric.NewFaultPlan()
		for _, s := range []object.SiteID{"DB1", "DB2", "DB3"} {
			fp.Delay(s, 200)
		}
		return fp
	}
	run := func(b *testing.B, clients int) {
		e, bound, _ := concurrentEngine(b, clients)
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		per := (b.N + clients - 1) / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					rt := fabric.NewReal(fabric.DefaultRates()).WithFaults(siteLatency())
					if _, _, err := e.Run(rt, BL, bound); err != nil {
						b.Errorf("run: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("clients-8", func(b *testing.B) { run(b, 8) })
}
