package exec

import (
	"math/rand"
	"testing"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/workload"
)

func runWithSigs(t *testing.T, w *workload.Workload, alg Algorithm) (*federation.Answer, fabric.Metrics) {
	t.Helper()
	e, err := New(Config{
		Global:      w.Global,
		Coordinator: "G",
		Databases:   w.Databases,
		Tables:      w.Tables,
		Signatures:  signature.Build(w.Databases),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ans, m, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, w.Bound)
	if err != nil {
		t.Fatalf("%v: %v", alg, err)
	}
	return ans, m
}

// TestSignatureVariantsPreserveAnswers: SBL and SPL must return exactly the
// answers of BL and PL — signatures shift verdicts from network checks to
// local probes, never change them.
func TestSignatureVariantsPreserveAnswers(t *testing.T) {
	r := smallRanges()
	r.EqualityPreds = true
	for seed := int64(300); seed < 320; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := r.Draw(rng)
		w, err := workload.Generate(p, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bl, _ := runWithSigs(t, w, BL)
		sbl, _ := runWithSigs(t, w, SBL)
		if answerSummary(bl) != answerSummary(sbl) {
			t.Errorf("seed %d: SBL differs from BL:\n BL:  %s\n SBL: %s",
				seed, answerSummary(bl), answerSummary(sbl))
		}
		pl, _ := runWithSigs(t, w, PL)
		spl, _ := runWithSigs(t, w, SPL)
		if answerSummary(pl) != answerSummary(spl) {
			t.Errorf("seed %d: SPL differs from PL:\n PL:  %s\n SPL: %s",
				seed, answerSummary(pl), answerSummary(spl))
		}
	}
}

// TestSignatureVariantsReduceNetwork: on equality-predicate workloads the
// signature probes must never increase — and should usually decrease — the
// network volume of the localized strategies.
func TestSignatureVariantsReduceNetwork(t *testing.T) {
	r := smallRanges()
	r.EqualityPreds = true
	reducedSomewhere := false
	for seed := int64(400); seed < 412; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := r.Draw(rng)
		w, err := workload.Generate(p, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, mBL := runWithSigs(t, w, BL)
		_, mSBL := runWithSigs(t, w, SBL)
		if mSBL.NetBytes > mBL.NetBytes {
			t.Errorf("seed %d: SBL net %d > BL net %d", seed, mSBL.NetBytes, mBL.NetBytes)
		}
		if mSBL.NetBytes < mBL.NetBytes {
			reducedSomewhere = true
		}
		_, mPL := runWithSigs(t, w, PL)
		_, mSPL := runWithSigs(t, w, SPL)
		if mSPL.NetBytes > mPL.NetBytes {
			t.Errorf("seed %d: SPL net %d > PL net %d", seed, mSPL.NetBytes, mPL.NetBytes)
		}
	}
	if !reducedSomewhere {
		t.Error("signatures never reduced network volume on any seed")
	}
}

// TestSignatureAlgorithmsRequireIndex: SBL/SPL without a configured index
// fail loudly rather than silently degrading to BL/PL.
func TestSignatureAlgorithmsRequireIndex(t *testing.T) {
	e, b := schoolEngine(t, nil)
	for _, alg := range []Algorithm{SBL, SPL} {
		if _, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b); err == nil {
			t.Errorf("%v without signatures accepted", alg)
		}
	}
}

// TestSignatureVariantsOnSchool: the school fixture's Q1 uses equality
// predicates, so the signature variants apply and must reproduce the
// paper's answer.
func TestSignatureVariantsOnSchool(t *testing.T) {
	fx := schoolFixture(t)
	e, err := New(Config{
		Global:      fx.Global,
		Coordinator: "G",
		Databases:   fx.Databases,
		Tables:      fx.Mapping,
		Signatures:  signature.Build(fx.Databases),
	})
	if err != nil {
		t.Fatal(err)
	}
	b := schoolBound(t, fx)
	const want = "certain: gs4(Hedy, Kelly) maybe: gs2(Tony, Haley)"
	for _, alg := range []Algorithm{SBL, SPL} {
		ans, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := answerSummary(ans); got != want {
			t.Errorf("%v = %q, want %q", alg, got, want)
		}
	}
}
