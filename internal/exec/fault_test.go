package exec

import (
	"testing"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/trace"
)

// faultEngine is schoolEngine with signatures wired, so SBL/SPL run too.
func faultEngine(t *testing.T) (*Engine, *query.Bound) {
	t.Helper()
	fx := school.New()
	e, err := New(Config{
		Global:      fx.Global,
		Coordinator: "G",
		Databases:   fx.Databases,
		Tables:      fx.Mapping,
		Tracer:      &trace.Tracer{},
		Signatures:  signature.Build(fx.Databases),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, query.MustBind(query.MustParse(school.Q1), fx.Global)
}

// runtimes returns both fabrics with the same fault plan installed; the
// degraded answer must not depend on which runtime executes the strategy.
func runtimes(e *Engine, fp func() *fabric.FaultPlan) map[string]fabric.Runtime {
	return map[string]fabric.Runtime{
		"real": fabric.NewReal(fabric.DefaultRates()).WithFaults(fp()),
		"sim":  fabric.NewSim(fabric.DefaultRates(), e.Sites()).WithFaults(fp()),
	}
}

func maybeGOids(a *federation.Answer) []object.GOid {
	out := make([]object.GOid, len(a.Maybe))
	for i, r := range a.Maybe {
		out[i] = r.GOid
	}
	return out
}

func equalGOids(got, want []object.GOid) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestFaultKillAssistantSite kills DB3 under every strategy on both
// runtimes: the query degrades to no certain rows and gs2, gs3, gs4 maybe
// (nothing DB3 would certify or eliminate resolves).
func TestFaultKillAssistantSite(t *testing.T) {
	e, b := faultEngine(t)
	for _, alg := range AllAlgorithms() {
		for name, rt := range runtimes(e, func() *fabric.FaultPlan {
			return fabric.NewFaultPlan().Kill("DB3")
		}) {
			ans, _, err := e.Run(rt, alg, b)
			if err != nil {
				t.Fatalf("%v/%s: query failed instead of degrading: %v", alg, name, err)
			}
			if !ans.Degraded {
				t.Fatalf("%v/%s: answer not marked degraded", alg, name)
			}
			if len(ans.Unavailable) != 1 || ans.Unavailable[0].Site != "DB3" {
				t.Errorf("%v/%s: unavailable = %v", alg, name, ans.Unavailable)
			}
			if len(ans.Certain) != 0 {
				t.Errorf("%v/%s: certain = %v, want none", alg, name, ans.Certain)
			}
			if got := maybeGOids(ans); !equalGOids(got, []object.GOid{"gs2", "gs3", "gs4"}) {
				t.Errorf("%v/%s: maybe = %v, want [gs2 gs3 gs4]", alg, name, got)
			}
			for _, r := range ans.Maybe {
				if r.GOid == "gs4" && (len(r.Unknown) != 1 || r.Unknown[0] != 2) {
					t.Errorf("%v/%s: gs4 unknown = %v, want [2]", alg, name, r.Unknown)
				}
			}
		}
	}
}

// TestFaultKillRootSite kills DB2: the students stored only there (gs4,
// gs5) resurface as synthesized all-unknown maybe rows — unreadable is the
// coarsest missingness, not an excuse to drop results silently.
func TestFaultKillRootSite(t *testing.T) {
	e, b := faultEngine(t)
	for _, alg := range AllAlgorithms() {
		for name, rt := range runtimes(e, func() *fabric.FaultPlan {
			return fabric.NewFaultPlan().Kill("DB2")
		}) {
			ans, _, err := e.Run(rt, alg, b)
			if err != nil {
				t.Fatalf("%v/%s: query failed instead of degrading: %v", alg, name, err)
			}
			if !ans.Degraded {
				t.Fatalf("%v/%s: answer not marked degraded", alg, name)
			}
			if len(ans.Certain) != 0 {
				t.Errorf("%v/%s: certain = %v, want none", alg, name, ans.Certain)
			}
			// The signature strategies still eliminate gs1: DB2's signature
			// is derived data held outside DB2, and it says definitively that
			// John's address fails the city predicate — a dead site's
			// signature remains readable evidence.
			want := []object.GOid{"gs1", "gs2", "gs4", "gs5"}
			if alg == SBL || alg == SPL {
				want = []object.GOid{"gs2", "gs4", "gs5"}
			}
			if got := maybeGOids(ans); !equalGOids(got, want) {
				t.Errorf("%v/%s: maybe = %v, want %v", alg, name, got, want)
			}
			for _, r := range ans.Maybe {
				if r.GOid != "gs4" && r.GOid != "gs5" {
					continue
				}
				if len(r.Unknown) != len(b.Preds) {
					t.Errorf("%v/%s: %s unknown = %v, want all %d predicates",
						alg, name, r.GOid, r.Unknown, len(b.Preds))
				}
			}
		}
	}
}

// TestFaultDropAfter: a site that dies mid-query (after serving a few
// operations) must still degrade cleanly rather than corrupt the answer.
func TestFaultDropAfter(t *testing.T) {
	e, b := faultEngine(t)
	for _, alg := range AllAlgorithms() {
		rt := fabric.NewReal(fabric.DefaultRates()).
			WithFaults(fabric.NewFaultPlan().DropAfter("DB3", 1))
		ans, _, err := e.Run(rt, alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		healthy, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Degraded {
			// The site may have died only after the strategy was done with
			// it (CA needs a single retrieve); then the answer is exact.
			if answerSummary(ans) != answerSummary(healthy) {
				t.Errorf("%v: undegraded answer differs from healthy run:\n  got  %s\n  want %s",
					alg, answerSummary(ans), answerSummary(healthy))
			}
			continue
		}
		// The site died mid-query. Whatever it served before dropping can
		// only have helped: no certain row may appear that the healthy run
		// lacks.
		certain := make(map[object.GOid]bool)
		for _, r := range healthy.Certain {
			certain[r.GOid] = true
		}
		for _, r := range ans.Certain {
			if !certain[r.GOid] {
				t.Errorf("%v: degraded run certified %s, healthy run did not", alg, r.GOid)
			}
		}
	}
}

// TestFaultDelayIsNotFailure: a slow site is not a dead site — the answer
// stays exact and undegraded, only slower.
func TestFaultDelayIsNotFailure(t *testing.T) {
	e, b := faultEngine(t)
	// 50ms of injected latency per DB3 operation dwarfs the ~25ms healthy
	// response, so the slowdown is visible whatever the critical path.
	rt := fabric.NewSim(fabric.DefaultRates(), e.Sites()).
		WithFaults(fabric.NewFaultPlan().Delay("DB3", 50_000))
	ans, m, err := e.Run(rt, BL, b)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded || len(ans.Unavailable) != 0 {
		t.Errorf("delayed site degraded the answer: %+v", ans.Unavailable)
	}
	if len(ans.Certain) != 1 || ans.Certain[0].GOid != "gs4" {
		t.Errorf("certain = %v", ans.Certain)
	}
	_, base, err := e.Run(fabric.NewSim(fabric.DefaultRates(), e.Sites()), BL, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.ResponseMicros <= base.ResponseMicros {
		t.Errorf("delayed response %.0fµs not above baseline %.0fµs",
			m.ResponseMicros, base.ResponseMicros)
	}
}
