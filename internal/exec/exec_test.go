package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/trace"
	"github.com/hetfed/hetfed/internal/workload"
)

func schoolFixture(t *testing.T) *school.Fixture {
	t.Helper()
	return school.New()
}

func schoolBound(t *testing.T, fx *school.Fixture) *query.Bound {
	t.Helper()
	return query.MustBind(query.MustParse(school.Q1), fx.Global)
}

func schoolEngine(t *testing.T, tracer *trace.Tracer) (*Engine, *query.Bound) {
	t.Helper()
	fx := school.New()
	e, err := New(Config{
		Global:      fx.Global,
		Coordinator: "G",
		Databases:   fx.Databases,
		Tables:      fx.Mapping,
		Tracer:      tracer,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, query.MustBind(query.MustParse(school.Q1), fx.Global)
}

// answerSummary renders an answer compactly for comparison.
func answerSummary(a *federation.Answer) string {
	var b strings.Builder
	b.WriteString("certain:")
	for _, r := range a.Certain {
		fmt.Fprintf(&b, " %s", r)
	}
	b.WriteString(" maybe:")
	for _, r := range a.Maybe {
		fmt.Fprintf(&b, " %s", r)
	}
	return b.String()
}

// TestQ1PaperAnswer is experiment E0: all three strategies on the paper's
// school federation must produce the paper's answer — the certain result
// (Hedy, Kelly) identified by gs4 and the maybe result (Tony, Haley)
// identified by gs2.
func TestQ1PaperAnswer(t *testing.T) {
	e, b := schoolEngine(t, nil)
	const want = "certain: gs4(Hedy, Kelly) maybe: gs2(Tony, Haley)"

	for _, alg := range Algorithms() {
		// Real runtime.
		ans, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v real: %v", alg, err)
		}
		if got := answerSummary(ans); got != want {
			t.Errorf("%v real answer = %q, want %q", alg, got, want)
		}
		// Simulated runtime.
		ans, m, err := e.Run(fabric.NewSim(fabric.DefaultRates(), e.Sites()), alg, b)
		if err != nil {
			t.Fatalf("%v sim: %v", alg, err)
		}
		if got := answerSummary(ans); got != want {
			t.Errorf("%v sim answer = %q, want %q", alg, got, want)
		}
		if m.ResponseMicros <= 0 || m.TotalBusyMicros <= 0 {
			t.Errorf("%v sim metrics = %+v", alg, m)
		}
	}
}

// TestWorkIdenticalAcrossRuntimes checks the fabric invariant: a strategy
// performs exactly the same work (bytes, operations) whether executed for
// real or inside the simulation.
func TestWorkIdenticalAcrossRuntimes(t *testing.T) {
	e, b := schoolEngine(t, nil)
	for _, alg := range Algorithms() {
		_, mReal, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v real: %v", alg, err)
		}
		_, mSim, err := e.Run(fabric.NewSim(fabric.DefaultRates(), e.Sites()), alg, b)
		if err != nil {
			t.Fatalf("%v sim: %v", alg, err)
		}
		if mReal.DiskBytes != mSim.DiskBytes || mReal.CPUOps != mSim.CPUOps || mReal.NetBytes != mSim.NetBytes {
			t.Errorf("%v work differs: real(%d,%d,%d) sim(%d,%d,%d)", alg,
				mReal.DiskBytes, mReal.CPUOps, mReal.NetBytes,
				mSim.DiskBytes, mSim.CPUOps, mSim.NetBytes)
		}
		if mReal.TotalBusyMicros != mSim.TotalBusyMicros {
			t.Errorf("%v modeled work differs: %g vs %g", alg, mReal.TotalBusyMicros, mSim.TotalBusyMicros)
		}
	}
}

// TestSimDeterminism runs the same simulated execution twice and requires
// identical metrics.
func TestSimDeterminism(t *testing.T) {
	e, b := schoolEngine(t, nil)
	for _, alg := range Algorithms() {
		_, m1, err := e.Run(fabric.NewSim(fabric.DefaultRates(), e.Sites()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		_, m2, err := e.Run(fabric.NewSim(fabric.DefaultRates(), e.Sites()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if m1.ResponseMicros != m2.ResponseMicros || m1.TotalBusyMicros != m2.TotalBusyMicros ||
			m1.DiskBytes != m2.DiskBytes || m1.CPUOps != m2.CPUOps || m1.NetBytes != m2.NetBytes ||
			!reflect.DeepEqual(m1.PerSite, m2.PerSite) || !reflect.DeepEqual(m1.NetPairs, m2.NetPairs) {
			t.Errorf("%v nondeterministic: %+v vs %+v", alg, m1, m2)
		}
	}
}

// The paper's headline timing claim — localized response time beats the
// centralized approach — only holds at realistic extent sizes (the paper
// uses 5000–6000 objects per constituent class); on the 13-object school
// example CA legitimately wins because almost nothing travels. The claim is
// therefore asserted by the Figure 9/10/11 reproduction tests in package
// sim, not here.

// TestTraceRecordsFigure8Flows checks the executed step flows match the
// paper's Figure 8 step inventory per algorithm.
func TestTraceRecordsFigure8Flows(t *testing.T) {
	var tr trace.Tracer
	e, b := schoolEngine(t, &tr)

	wantSteps := map[Algorithm][]string{
		CA: {"CA_G1", "CA_C1", "CA_G2", "CA_G3"},
		BL: {"BL_G1", "BL_C1+C2", "C3", "BL_G2"},
		PL: {"PL_G1", "PL_C1", "PL_C2", "C3", "PL_G2"},
	}
	for alg, want := range wantSteps {
		tr.Reset()
		if _, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		seen := map[string]bool{}
		for _, ev := range tr.Events() {
			seen[ev.Step] = true
		}
		for _, step := range want {
			if !seen[step] {
				t.Errorf("%v: step %s missing from trace %v", alg, step, seen)
			}
		}
	}
}

// TestPLChecksMoreThanBL verifies the paper's explanation for PL's
// overhead: checking before filtering means more assistant objects are
// looked up and transferred than under BL.
func TestPLChecksMoreThanBL(t *testing.T) {
	e, b := schoolEngine(t, nil)
	_, mBL, err := e.Run(fabric.NewReal(fabric.DefaultRates()), BL, b)
	if err != nil {
		t.Fatal(err)
	}
	_, mPL, err := e.Run(fabric.NewReal(fabric.DefaultRates()), PL, b)
	if err != nil {
		t.Fatal(err)
	}
	if mPL.NetBytes < mBL.NetBytes {
		t.Errorf("PL net bytes (%d) should be at least BL's (%d)", mPL.NetBytes, mBL.NetBytes)
	}
}

// TestCATransfersMost: the centralized approach ships every object, so its
// network volume dominates the localized approaches on this workload.
func TestCATransfersMost(t *testing.T) {
	e, b := schoolEngine(t, nil)
	net := map[Algorithm]int64{}
	for _, alg := range Algorithms() {
		_, m, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatal(err)
		}
		net[alg] = m.NetBytes
	}
	if net[CA] <= net[BL] {
		t.Errorf("CA net (%d) should exceed BL net (%d)", net[CA], net[BL])
	}
}

func TestEngineConfigErrors(t *testing.T) {
	fx := school.New()
	if _, err := New(Config{Coordinator: "G", Databases: fx.Databases, Tables: fx.Mapping}); err == nil {
		t.Error("nil global accepted")
	}
	if _, err := New(Config{Global: fx.Global, Databases: fx.Databases, Tables: fx.Mapping}); err == nil {
		t.Error("empty coordinator accepted")
	}
	if _, err := New(Config{Global: fx.Global, Coordinator: "DB1", Databases: fx.Databases, Tables: fx.Mapping}); err == nil {
		t.Error("coordinator clashing with site accepted")
	}
	// A database registered under the wrong site key is rejected.
	mis := map[object.SiteID]*store.Database{"WRONG": fx.Databases["DB1"]}
	if _, err := New(Config{Global: fx.Global, Coordinator: "G", Databases: mis, Tables: fx.Mapping}); err == nil {
		t.Error("mis-registered database accepted")
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	e, b := schoolEngine(t, nil)
	if _, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), Algorithm(42), b); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestEngineSitesSorted(t *testing.T) {
	e, _ := schoolEngine(t, nil)
	sites := e.Sites()
	want := []object.SiteID{"DB1", "DB2", "DB3", "G"}
	if len(sites) != len(want) {
		t.Fatalf("Sites = %v", sites)
	}
	for i := range want {
		if sites[i] != want[i] {
			t.Errorf("Sites = %v, want %v", sites, want)
		}
	}
	if e.Coordinator() != "G" {
		t.Errorf("Coordinator = %v", e.Coordinator())
	}
}

func TestAlgorithmString(t *testing.T) {
	if CA.String() != "CA" || BL.String() != "BL" || PL.String() != "PL" {
		t.Error("algorithm names wrong")
	}
	if !strings.Contains(Algorithm(9).String(), "9") {
		t.Error("unknown algorithm name wrong")
	}
}

// TestMaybeExplanations: maybe results carry the indexes of the predicates
// that remain unknown; the strategies agree on them for the paper's Q1
// (Tony's address and his advisor's speciality are unknowable, the
// department predicate is established).
func TestMaybeExplanations(t *testing.T) {
	e, b := schoolEngine(t, nil)
	for _, alg := range Algorithms() {
		ans, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(ans.Maybe) != 1 {
			t.Fatalf("%v: maybe = %v", alg, ans.Maybe)
		}
		got := ans.Maybe[0].Unknown
		if len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Errorf("%v: unknown predicates = %v, want [0 1]", alg, got)
		}
		for _, r := range ans.Certain {
			if len(r.Unknown) != 0 {
				t.Errorf("%v: certain row carries unknown predicates %v", alg, r.Unknown)
			}
		}
	}
}

// TestMaybeExplanationLattice: on random workloads, a maybe entity's
// unknown set under the localized strategies contains CA's (CA integrates
// everything, so it can only resolve more predicates, never fewer).
func TestMaybeExplanationLattice(t *testing.T) {
	for seed := int64(700); seed < 712; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := smallRanges().Draw(rng)
		w, err := workload.Generate(p, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ca, _ := runWorkload(t, w, CA)
		bl, _ := runWorkload(t, w, BL)

		caUnknown := map[object.GOid]map[int]bool{}
		for _, r := range ca.Maybe {
			set := map[int]bool{}
			for _, i := range r.Unknown {
				set[i] = true
			}
			caUnknown[r.GOid] = set
		}
		for _, r := range bl.Maybe {
			caSet, ok := caUnknown[r.GOid]
			if !ok {
				continue // CA decided the entity; nothing to compare
			}
			blSet := map[int]bool{}
			for _, i := range r.Unknown {
				blSet[i] = true
			}
			for i := range caSet {
				if !blSet[i] {
					t.Errorf("seed %d: %s: CA unknown pred %d missing from BL's %v",
						seed, r.GOid, i, r.Unknown)
				}
			}
		}
	}
}

// TestBusyAttribution inspects the simulated per-site busy times: every
// involved site and the network do work under both strategies, and the
// global site works much harder under CA (it materializes and evaluates
// everything) than under BL (it only certifies).
func TestBusyAttribution(t *testing.T) {
	e, b := schoolEngine(t, nil)

	busyFor := func(alg Algorithm) map[string]float64 {
		rt := fabric.NewSim(fabric.DefaultRates(), e.Sites())
		if _, _, err := e.Run(rt, alg, b); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		return rt.BusyBySite()
	}

	ca := busyFor(CA)
	bl := busyFor(BL)
	for _, site := range []string{"DB1", "DB2", "DB3", "G", "net"} {
		if ca[site] <= 0 {
			t.Errorf("CA: site %s did no work", site)
		}
	}
	if bl["G"] >= ca["G"] {
		t.Errorf("coordinator busy under BL (%g) should be far below CA (%g)", bl["G"], ca["G"])
	}
	if bl["DB1"] <= 0 || bl["DB2"] <= 0 || bl["DB3"] <= 0 {
		t.Errorf("BL left a site idle: %v", bl)
	}
}
