package exec

import (
	"testing"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/store"
)

// multiFixture builds a two-site federation exercising multi-valued
// attributes (the paper's Section 5 open problem): teams with set-valued
// member references and set-valued primitive tags. Site S1 stores the
// teams; employee skills are split across the sites.
func multiFixture(t *testing.T) (*Engine, *schema.Global) {
	t.Helper()

	s1 := schema.NewSchema("S1")
	s1.MustAddClass(schema.MustClass("Employee", []schema.Attribute{
		schema.Prim("name", object.KindString),
		schema.Prim("skill", object.KindString),
	}, "name"))
	s1.MustAddClass(schema.MustClass("Team", []schema.Attribute{
		schema.Prim("name", object.KindString),
		{Name: "members", Domain: "Employee", MultiValued: true},
		{Name: "tags", Prim: object.KindString, MultiValued: true},
	}, "name"))

	s2 := schema.NewSchema("S2")
	s2.MustAddClass(schema.MustClass("Employee", []schema.Attribute{
		schema.Prim("name", object.KindString),
		schema.Prim("skill", object.KindString),
	}, "name"))

	schemas := map[object.SiteID]*schema.Schema{"S1": s1, "S2": s2}
	global, err := schema.Integrate(schemas, []schema.Correspondence{
		{GlobalClass: "Team", Members: []schema.Constituent{{Site: "S1", Class: "Team"}}},
		{GlobalClass: "Employee", Members: []schema.Constituent{
			{Site: "S1", Class: "Employee"}, {Site: "S2", Class: "Employee"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	db1 := store.MustNewDatabase(s1)
	db1.MustInsert(object.New("e1", "Employee", map[string]object.Value{
		"name": object.Str("Ada"), // skill unknown at S1
	}))
	db1.MustInsert(object.New("e2", "Employee", map[string]object.Value{
		"name": object.Str("Ben"), "skill": object.Str("go"),
	}))
	db1.MustInsert(object.New("e3", "Employee", map[string]object.Value{
		"name": object.Str("Cem"), // skill unknown everywhere
	}))
	db1.MustInsert(object.New("t1", "Team", map[string]object.Value{
		"name":    object.Str("Core"),
		"members": object.List(object.Ref("e1"), object.Ref("e2")),
		"tags":    object.List(object.Str("infra"), object.Str("db")),
	}))
	db1.MustInsert(object.New("t2", "Team", map[string]object.Value{
		"name":    object.Str("Edge"),
		"members": object.List(object.Ref("e2"), object.Ref("e3")),
		"tags":    object.List(object.Str("web")),
	}))

	db2 := store.MustNewDatabase(s2)
	db2.MustInsert(object.New("e1'", "Employee", map[string]object.Value{
		"name": object.Str("Ada"), "skill": object.Str("rust"),
	}))

	dbs := map[object.SiteID]*store.Database{"S1": db1, "S2": db2}
	tables, err := isomer.Identify(global, dbs)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := New(Config{Global: global, Coordinator: "G", Databases: dbs, Tables: tables})
	if err != nil {
		t.Fatal(err)
	}
	return engine, global
}

func runMulti(t *testing.T, e *Engine, g *schema.Global, src string) map[Algorithm]string {
	t.Helper()
	b := query.MustBind(query.MustParse(src), g)
	out := make(map[Algorithm]string, 3)
	for _, alg := range Algorithms() {
		ans, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		out[alg] = answerSummary(ans)
	}
	return out
}

// TestMultiValuedAnySemantics: a predicate through a multi-valued reference
// holds when ANY element satisfies it.
func TestMultiValuedAnySemantics(t *testing.T) {
	e, g := multiFixture(t)

	// Ben (go) is on both teams: both certain everywhere.
	got := runMulti(t, e, g, `select name from Team where members.skill = "go"`)
	for alg, s := range got {
		if s != `certain: gTeam:1(Core) gTeam:2(Edge) maybe:` {
			t.Errorf("%v: %s", alg, s)
		}
	}

	// Rust: Ada's skill is missing at S1 but her S2 record says rust — the
	// assistant check certifies team Core. Team Edge's unknown member Cem
	// has no record elsewhere: stays maybe.
	got = runMulti(t, e, g, `select name from Team where members.skill = "rust"`)
	for alg, s := range got {
		if s != `certain: gTeam:1(Core) maybe: gTeam:2(Edge)` {
			t.Errorf("%v: %s", alg, s)
		}
	}

	// Cobol: Ada's assistant refutes her element, Ben is go — all elements
	// of Core are definitively non-cobol, so Core is eliminated under the
	// localized strategies too. Edge keeps the unknown Cem: maybe.
	got = runMulti(t, e, g, `select name from Team where members.skill = "cobol"`)
	for alg, s := range got {
		if s != `certain: maybe: gTeam:2(Edge)` {
			t.Errorf("%v: %s", alg, s)
		}
	}
}

// TestMultiValuedPrimitive: set-valued primitive attributes compare under
// ANY semantics locally.
func TestMultiValuedPrimitive(t *testing.T) {
	e, g := multiFixture(t)
	got := runMulti(t, e, g, `select name from Team where tags = "db"`)
	for alg, s := range got {
		if s != `certain: gTeam:1(Core) maybe:` {
			t.Errorf("%v: %s", alg, s)
		}
	}
	got = runMulti(t, e, g, `select name from Team where tags = "nope"`)
	for alg, s := range got {
		if s != `certain: maybe:` {
			t.Errorf("%v: %s", alg, s)
		}
	}
}

// TestMultiValuedWithConjunction mixes a multi-valued predicate with a
// scalar one.
func TestMultiValuedWithConjunction(t *testing.T) {
	e, g := multiFixture(t)
	got := runMulti(t, e, g,
		`select name from Team where members.skill = "rust" and tags = "infra"`)
	for alg, s := range got {
		if s != `certain: gTeam:1(Core) maybe:` {
			t.Errorf("%v: %s", alg, s)
		}
	}
}

// TestMultiValuedTargetProjection: a set-valued complex target projects as
// global references under every strategy.
func TestMultiValuedTargetProjection(t *testing.T) {
	e, g := multiFixture(t)
	b := query.MustBind(query.MustParse(`select members from Team where tags = "db"`), g)
	for _, alg := range Algorithms() {
		ans, _, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(ans.Certain) != 1 {
			t.Fatalf("%v: %v", alg, ans.Certain)
		}
		members := ans.Certain[0].Targets[0]
		if members.Kind() != object.KindList || len(members.Elems()) != 2 {
			t.Fatalf("%v: members = %v", alg, members)
		}
		for _, m := range members.Elems() {
			if m.Kind() != object.KindGRef {
				t.Errorf("%v: member %v is not a global reference", alg, m)
			}
		}
	}
}
