// Package exec implements the paper's three query execution strategies for
// global queries involving missing data:
//
//   - CA, the centralized approach (phase order O → I → P): every involved
//     site ships its projected local root and branch class objects to the
//     global processing site, which materializes the global classes by
//     outerjoin over GOids and evaluates the predicates centrally.
//   - BL, the basic localized approach (P → O → I): each site evaluates its
//     local predicates first, then looks up and dispatches assistant-object
//     checks for the surviving maybe results; the coordinator certifies.
//   - PL, the parallel localized approach (O → P → I): each site dispatches
//     assistant-object checks for every object holding missing data first,
//     then evaluates its local predicates while the checks proceed in
//     parallel at the other sites.
//
// All three run over package fabric, so one implementation serves both real
// executions and the discrete-event timing simulation, and all three return
// the same answers (certain results plus maybe results) — the localized
// strategies trade extra coordination for inter-site parallelism, not for
// answer quality.
package exec

import (
	"fmt"
	"sort"
	"sync"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/trace"
)

// Algorithm identifies an execution strategy.
type Algorithm int

// The execution strategies. SBL and SPL are the signature-assisted
// variants of BL and PL (the paper's Section 5 extension); they require
// Config.Signatures.
const (
	CA  Algorithm = iota + 1 // centralized approach
	BL                       // basic localized approach
	PL                       // parallel localized approach
	SBL                      // signature-assisted basic localized
	SPL                      // signature-assisted parallel localized
)

// String returns the paper's abbreviation for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case CA:
		return "CA"
	case BL:
		return "BL"
	case PL:
		return "PL"
	case SBL:
		return "SBL"
	case SPL:
		return "SPL"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists the paper's strategies in paper order.
func Algorithms() []Algorithm { return []Algorithm{CA, BL, PL} }

// AllAlgorithms additionally includes the signature-assisted variants.
func AllAlgorithms() []Algorithm { return []Algorithm{CA, BL, PL, SBL, SPL} }

// Engine executes global queries against a federation.
type Engine struct {
	global *schema.Global
	coord  *federation.Coordinator
	sites  map[object.SiteID]*federation.Site
	tracer *trace.Tracer
	sigs   *signature.Index
}

// Config assembles an engine.
type Config struct {
	// Global is the integrated global schema.
	Global *schema.Global
	// Coordinator names the global processing site.
	Coordinator object.SiteID
	// Databases are the component databases, keyed by site.
	Databases map[object.SiteID]*store.Database
	// Tables are the GOid mapping tables; each site works against this
	// replica (the tables are read-only during query processing).
	Tables *gmap.Tables
	// Tracer, when non-nil, records the executed steps (Figure 8 flows).
	Tracer *trace.Tracer
	// Signatures, when non-nil, is the replicated object-signature index
	// required by the SBL and SPL strategies.
	Signatures *signature.Index
	// UseIndexes lets the localized strategies probe the databases'
	// secondary indexes (store.Database.CreateIndex) to select candidate
	// objects for conjunctive queries.
	UseIndexes bool
}

// New builds an engine from a federation configuration.
func New(cfg Config) (*Engine, error) {
	if cfg.Global == nil {
		return nil, fmt.Errorf("exec: nil global schema")
	}
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("exec: empty coordinator site")
	}
	if _, clash := cfg.Databases[cfg.Coordinator]; clash {
		return nil, fmt.Errorf("exec: coordinator %s clashes with a component site", cfg.Coordinator)
	}
	e := &Engine{
		global: cfg.Global,
		coord:  federation.NewCoordinator(cfg.Coordinator, cfg.Global, cfg.Tables),
		sites:  make(map[object.SiteID]*federation.Site, len(cfg.Databases)),
		tracer: cfg.Tracer,
		sigs:   cfg.Signatures,
	}
	for id, db := range cfg.Databases {
		if db.Site() != id {
			return nil, fmt.Errorf("exec: database registered under %s reports site %s", id, db.Site())
		}
		site := federation.NewSite(db, cfg.Global, cfg.Tables)
		if cfg.UseIndexes {
			site.EnableIndexes()
		}
		e.sites[id] = site
	}
	return e, nil
}

// Sites returns every site identifier including the coordinator, sorted —
// the site set a simulated runtime must register.
func (e *Engine) Sites() []object.SiteID {
	out := make([]object.SiteID, 0, len(e.sites)+1)
	for id := range e.sites {
		out = append(out, id)
	}
	out = append(out, e.coord.ID())
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Coordinator returns the global processing site's identifier.
func (e *Engine) Coordinator() object.SiteID { return e.coord.ID() }

// Run executes the query under the given strategy on the given runtime and
// returns the answer with the runtime's metrics.
func (e *Engine) Run(rt fabric.Runtime, alg Algorithm, b *query.Bound) (*federation.Answer, fabric.Metrics, error) {
	var (
		ans *federation.Answer
		err error
	)
	if (alg == SBL || alg == SPL) && e.sigs == nil {
		return nil, fabric.Metrics{}, fmt.Errorf("exec: %v requires a signature index (Config.Signatures)", alg)
	}
	m, runErr := rt.Run(alg.String(), func(p fabric.Proc) {
		switch alg {
		case CA:
			ans = e.runCA(p, b)
		case BL:
			ans = e.runBL(p, b, nil)
		case PL:
			ans = e.runPL(p, b, nil)
		case SBL:
			ans = e.runBL(p, b, e.sigs)
		case SPL:
			ans = e.runPL(p, b, e.sigs)
		default:
			err = fmt.Errorf("exec: unknown algorithm %v", alg)
		}
	})
	if runErr != nil {
		return nil, m, runErr
	}
	if err != nil {
		return nil, m, err
	}
	return ans, m, nil
}

func (e *Engine) step(site object.SiteID, name, detail string) {
	if e.tracer != nil {
		e.tracer.Step(site, name, detail)
	}
}

// runCA is the centralized approach: O → I → P.
func (e *Engine) runCA(p fabric.Proc, b *query.Bound) *federation.Answer {
	coord := e.coord.ID()
	sites := b.InvolvedSites()
	replies := make([]federation.RetrieveReply, len(sites))

	// CA_G1 ∥ CA_C1: every involved site retrieves and ships its objects.
	fns := make([]func(fabric.Proc), len(sites))
	for i, siteID := range sites {
		i, siteID := i, siteID
		fns[i] = func(p fabric.Proc) {
			site := e.sites[siteID]
			p.Transfer(coord, siteID, federation.QueryWireSize(b))
			reply := site.Retrieve(p, b)
			e.step(siteID, "CA_C1", fmt.Sprintf("retrieve %d classes", len(reply.Classes)))
			p.Transfer(siteID, coord, reply.WireSize())
			replies[i] = reply
		}
	}
	e.step(coord, "CA_G1", fmt.Sprintf("request objects from %d sites", len(sites)))
	p.Fork(fns...)

	// CA_G2: outerjoin integration over GOids (phases O and I).
	view := e.coord.Materialize(p, b, replies)
	e.step(coord, "CA_G2", fmt.Sprintf("materialized %d objects", view.Len()))

	// CA_G3: evaluate the predicates (phase P).
	ans := e.coord.EvaluateView(p, b, view)
	e.step(coord, "CA_G3", fmt.Sprintf("%d certain, %d maybe", len(ans.Certain), len(ans.Maybe)))
	return ans
}

// dispatchChecks ships check requests to their target sites, has the
// targets check the assistant objects, and routes the verdicts to the
// coordinator. It returns one task function per target site.
func (e *Engine) dispatchChecks(origin object.SiteID, checks map[object.SiteID][]federation.CheckItem,
	sink func(federation.CheckReply)) []func(fabric.Proc) {
	targets := make([]object.SiteID, 0, len(checks))
	for t := range checks {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	coord := e.coord.ID()
	fns := make([]func(fabric.Proc), 0, len(targets))
	for _, target := range targets {
		target := target
		items := checks[target]
		fns = append(fns, func(p fabric.Proc) {
			req := federation.CheckRequest{From: origin, Items: items}
			p.Transfer(origin, target, req.WireSize())
			reply := e.sites[target].CheckAssistants(p, items)
			e.step(target, "C3", fmt.Sprintf("checked %d assistants from %s", len(items), origin))
			p.Transfer(target, coord, reply.WireSize())
			sink(reply)
		})
	}
	return fns
}

// runBL is the basic localized approach: P → O → I. A non-nil sigs runs
// the signature-assisted variant.
func (e *Engine) runBL(p fabric.Proc, b *query.Bound, sigs *signature.Index) *federation.Answer {
	coord := e.coord.ID()
	rootSites := b.RootSites()
	results := make([]federation.LocalResult, len(rootSites))

	var mu sync.Mutex
	var replies []federation.CheckReply
	addReply := func(r federation.CheckReply) {
		mu.Lock()
		defer mu.Unlock()
		replies = append(replies, r)
	}

	// BL_G1 ∥ per-site BL_C1/BL_C2, with BL_C3 at the check targets.
	fns := make([]func(fabric.Proc), len(rootSites))
	for i, siteID := range rootSites {
		i, siteID := i, siteID
		fns[i] = func(p fabric.Proc) {
			site := e.sites[siteID]
			p.Transfer(coord, siteID, federation.QueryWireSize(b))
			res, checks := site.EvalLocalBasic(p, b, sigs)
			e.step(siteID, "BL_C1+C2", fmt.Sprintf("%d local rows, %d check targets", len(res.Rows), len(checks)))
			results[i] = res

			// The local results travel to the coordinator while the check
			// requests are processed at the other sites.
			sub := []func(fabric.Proc){func(p fabric.Proc) {
				p.Transfer(siteID, coord, res.WireSize())
			}}
			sub = append(sub, e.dispatchChecks(siteID, checks, addReply)...)
			p.Fork(sub...)
		}
	}
	e.step(coord, "BL_G1", fmt.Sprintf("local queries to %d sites", len(rootSites)))
	p.Fork(fns...)

	// BL_G2: certification (phase I).
	ans := e.coord.Certify(p, b, results, replies)
	e.step(coord, "BL_G2", fmt.Sprintf("%d certain, %d maybe", len(ans.Certain), len(ans.Maybe)))
	return ans
}

// runPL is the parallel localized approach: O → P → I. The difference from
// BL is the order of the component-site steps: assistant lookups and check
// dispatch happen before local predicate evaluation, so checking at other
// sites (PL_C3) runs in parallel with the local evaluation (PL_C2).
// A non-nil sigs runs the signature-assisted variant.
func (e *Engine) runPL(p fabric.Proc, b *query.Bound, sigs *signature.Index) *federation.Answer {
	coord := e.coord.ID()
	rootSites := b.RootSites()
	results := make([]federation.LocalResult, len(rootSites))

	var mu sync.Mutex
	var replies []federation.CheckReply
	addReply := func(r federation.CheckReply) {
		mu.Lock()
		defer mu.Unlock()
		replies = append(replies, r)
	}

	fns := make([]func(fabric.Proc), len(rootSites))
	for i, siteID := range rootSites {
		i, siteID := i, siteID
		fns[i] = func(p fabric.Proc) {
			site := e.sites[siteID]
			p.Transfer(coord, siteID, federation.QueryWireSize(b))

			// PL_C1 (phase O): locate unsolved items for every object and
			// dispatch the checks immediately.
			nav, checks := site.NavigateAll(p, b, sigs)
			e.step(siteID, "PL_C1", fmt.Sprintf("%d check targets", len(checks)))
			checkH := make([]fabric.Handle, 0, len(checks))
			for j, fn := range e.dispatchChecks(siteID, checks, addReply) {
				checkH = append(checkH, p.Go(fmt.Sprintf("%s-check-%d", siteID, j), fn))
			}

			// PL_C2 (phase P) runs while the checks are in flight.
			res := site.EvalNavigated(p, b, nav)
			e.step(siteID, "PL_C2", fmt.Sprintf("%d local rows", len(res.Rows)))
			results[i] = res
			p.Transfer(siteID, coord, res.WireSize())
			p.Wait(checkH...)
		}
	}
	e.step(coord, "PL_G1", fmt.Sprintf("local queries to %d sites", len(rootSites)))
	p.Fork(fns...)

	// PL_G2: certification (phase I).
	ans := e.coord.Certify(p, b, results, replies)
	e.step(coord, "PL_G2", fmt.Sprintf("%d certain, %d maybe", len(ans.Certain), len(ans.Maybe)))
	return ans
}
