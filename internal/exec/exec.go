// Package exec implements the paper's three query execution strategies for
// global queries involving missing data:
//
//   - CA, the centralized approach (phase order O → I → P): every involved
//     site ships its projected local root and branch class objects to the
//     global processing site, which materializes the global classes by
//     outerjoin over GOids and evaluates the predicates centrally.
//   - BL, the basic localized approach (P → O → I): each site evaluates its
//     local predicates first, then looks up and dispatches assistant-object
//     checks for the surviving maybe results; the coordinator certifies.
//   - PL, the parallel localized approach (O → P → I): each site dispatches
//     assistant-object checks for every object holding missing data first,
//     then evaluates its local predicates while the checks proceed in
//     parallel at the other sites.
//
// All three run over package fabric, so one implementation serves both real
// executions and the discrete-event timing simulation, and all three return
// the same answers (certain results plus maybe results) — the localized
// strategies trade extra coordination for inter-site parallelism, not for
// answer quality.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/trace"
)

// Algorithm identifies an execution strategy.
type Algorithm int

// The execution strategies. SBL and SPL are the signature-assisted
// variants of BL and PL (the paper's Section 5 extension); they require
// Config.Signatures.
const (
	CA  Algorithm = iota + 1 // centralized approach
	BL                       // basic localized approach
	PL                       // parallel localized approach
	SBL                      // signature-assisted basic localized
	SPL                      // signature-assisted parallel localized
	// Adaptive is not a strategy of its own: it asks Config.Selector to pick
	// one of the paper's strategies per query from the calibrated cost model,
	// so the executed algorithm (spans, metrics, profiles) is always one of
	// CA/BL/PL.
	Adaptive
)

// String returns the paper's abbreviation for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case CA:
		return "CA"
	case BL:
		return "BL"
	case PL:
		return "PL"
	case SBL:
		return "SBL"
	case SPL:
		return "SPL"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists the paper's strategies in paper order.
func Algorithms() []Algorithm { return []Algorithm{CA, BL, PL} }

// AllAlgorithms additionally includes the signature-assisted variants (but
// not Adaptive, which is a selection policy over these, not a strategy).
func AllAlgorithms() []Algorithm { return []Algorithm{CA, BL, PL, SBL, SPL} }

// ParseAlgorithm resolves a strategy name (case-insensitive), including the
// "adaptive" selection policy — the one parser every CLI and the benchmark
// runner share.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range AllAlgorithms() {
		if strings.EqualFold(a.String(), name) {
			return a, nil
		}
	}
	if strings.EqualFold(name, Adaptive.String()) {
		return Adaptive, nil
	}
	return 0, fmt.Errorf("exec: unknown algorithm %q (want CA, BL, PL, SBL, SPL or adaptive)", name)
}

// Selector picks a concrete strategy per query and learns from finished
// ones. The adapt package provides the calibrating implementation; the
// interface lives here so the engine need not import it.
type Selector interface {
	// Select picks the strategy to execute a bound query with.
	Select(b *query.Bound) Algorithm
	// Observe feeds one finished query's measured profile back into the
	// selector's cost model. Implementations must be safe for concurrent use.
	Observe(p *trace.Profile)
}

// Engine executes global queries against a federation.
type Engine struct {
	global   *schema.Global
	coord    *federation.Coordinator
	sites    map[object.SiteID]*federation.Site
	tracer   *trace.Tracer
	reg      *metrics.Registry
	sigs     *signature.Index
	rec      *obs.Recorder
	selector Selector
	gate     *gate
	deadline time.Duration
	qseq     atomic.Uint64
}

// Config assembles an engine.
type Config struct {
	// Global is the integrated global schema.
	Global *schema.Global
	// Coordinator names the global processing site.
	Coordinator object.SiteID
	// Databases are the component databases, keyed by site.
	Databases map[object.SiteID]*store.Database
	// Tables are the GOid mapping tables; each site works against this
	// replica (the tables are read-only during query processing).
	Tables *gmap.Tables
	// Tracer, when non-nil, records the executed steps (Figure 8 flows) as
	// query-scoped spans carrying phase tags and runtime timings.
	Tracer *trace.Tracer
	// Metrics, when non-nil, receives per-query counters and histograms:
	// latency, per-phase span times, per-site disk/CPU work, per-site-pair
	// network bytes, and certification outcomes.
	Metrics *metrics.Registry
	// Signatures, when non-nil, is the replicated object-signature index
	// required by the SBL and SPL strategies.
	Signatures *signature.Index
	// Recorder, when non-nil, receives a per-query trace.Profile at the end
	// of every Run — the flight recorder behind /debug/queries. Requires
	// Tracer (profiles are assembled from the query's spans).
	Recorder *obs.Recorder
	// Selector, when non-nil, resolves Alg == Adaptive to a concrete strategy
	// per query and is fed every finished query's profile (requires Tracer,
	// like Recorder — the feedback loop runs on measured spans).
	Selector Selector
	// UseIndexes lets the localized strategies probe the databases'
	// secondary indexes (store.Database.CreateIndex) to select candidate
	// objects for conjunctive queries.
	UseIndexes bool
	// MaxConcurrent bounds the number of queries executing at once; Run
	// calls beyond the bound wait for a slot (admission control). Zero or
	// negative means unbounded.
	MaxConcurrent int
	// Deadline, when positive, caps every query's end-to-end execution time.
	// RunContext applies it only when the caller's context carries no
	// deadline of its own (the caller's tighter budget always wins). An
	// over-deadline query returns a sound partial answer with
	// Answer.Outcome = OutcomeDeadline rather than an error.
	Deadline time.Duration
	// Cache enables a per-site read-through lookup cache for GOid
	// mapping-table resolutions and checked assistant verdicts. The engine
	// operates over immutable fixtures, so the caches never need
	// invalidation here; the TCP deployment invalidates on Insert.
	Cache bool
}

// New builds an engine from a federation configuration.
func New(cfg Config) (*Engine, error) {
	if cfg.Global == nil {
		return nil, fmt.Errorf("exec: nil global schema")
	}
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("exec: empty coordinator site")
	}
	if _, clash := cfg.Databases[cfg.Coordinator]; clash {
		return nil, fmt.Errorf("exec: coordinator %s clashes with a component site", cfg.Coordinator)
	}
	e := &Engine{
		global:   cfg.Global,
		coord:    federation.NewCoordinator(cfg.Coordinator, cfg.Global, cfg.Tables),
		sites:    make(map[object.SiteID]*federation.Site, len(cfg.Databases)),
		tracer:   cfg.Tracer,
		reg:      cfg.Metrics,
		sigs:     cfg.Signatures,
		rec:      cfg.Recorder,
		selector: cfg.Selector,
		gate:     newGate(cfg.MaxConcurrent, cfg.Metrics, string(cfg.Coordinator)),
		deadline: cfg.Deadline,
	}
	for id, db := range cfg.Databases {
		if db.Site() != id {
			return nil, fmt.Errorf("exec: database registered under %s reports site %s", id, db.Site())
		}
		site := federation.NewSite(db, cfg.Global, cfg.Tables)
		if cfg.UseIndexes {
			site.EnableIndexes()
		}
		if cfg.Cache {
			site.WithCache(federation.NewLookupCache(cfg.Metrics, id))
		}
		e.sites[id] = site
	}
	return e, nil
}

// Sites returns every site identifier including the coordinator, sorted —
// the site set a simulated runtime must register.
func (e *Engine) Sites() []object.SiteID {
	out := make([]object.SiteID, 0, len(e.sites)+1)
	for id := range e.sites {
		out = append(out, id)
	}
	out = append(out, e.coord.ID())
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Coordinator returns the global processing site's identifier.
func (e *Engine) Coordinator() object.SiteID { return e.coord.ID() }

// Run executes the query under the given strategy on the given runtime and
// returns the answer with the runtime's metrics. Each run gets a fresh
// query ID scoping its span tree and metric samples. Equivalent to
// RunContext with context.Background().
func (e *Engine) Run(rt fabric.Runtime, alg Algorithm, b *query.Bound) (*federation.Answer, fabric.Metrics, error) {
	return e.RunContext(context.Background(), rt, alg, b)
}

// RunContext is Run under a caller context: cancellation and deadline
// propagate into the execution. The context gates admission (a query whose
// budget expires while queued is shed with ErrShed / ErrCanceled and never
// takes a slot) and, when the runtime supports it (fabric.ContextRuntime —
// both Real and Sim do), is consulted by the strategies at every site-bound
// step, so an interrupted query unwinds mid-phase instead of running to
// completion. An admitted query that is interrupted does NOT return an
// error: it returns its sound partial answer — whatever certified before
// the cut stays certain, the rest stays maybe — with Answer.Outcome set to
// OutcomeCanceled or OutcomeDeadline. When Config.Deadline is set and ctx
// carries no deadline, the engine's default applies.
func (e *Engine) RunContext(ctx context.Context, rt fabric.Runtime, alg Algorithm, b *query.Bound) (*federation.Answer, fabric.Metrics, error) {
	var (
		ans *federation.Answer
		err error
	)
	if alg == Adaptive {
		if e.selector == nil {
			return nil, fabric.Metrics{}, fmt.Errorf("exec: Adaptive requires a selector (Config.Selector)")
		}
		alg = e.selector.Select(b)
		if e.reg != nil {
			e.reg.Counter("adaptive_choice_total",
				metrics.Labels{Site: string(e.coord.ID()), Alg: alg.String()}).Inc()
		}
	}
	if (alg == SBL || alg == SPL) && e.sigs == nil {
		return nil, fabric.Metrics{}, fmt.Errorf("exec: %v requires a signature index (Config.Signatures)", alg)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if e.deadline > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, e.deadline)
			defer cancel()
		}
	}
	release, waitMicros, admitErr := e.gate.enter(ctx, alg.String())
	if admitErr != nil {
		return nil, fabric.Metrics{}, admitErr
	}
	defer release()
	if cr, ok := rt.(fabric.ContextRuntime); ok {
		rt = cr.BindContext(ctx)
	}
	q := &runCtx{qid: fmt.Sprintf("q%d", e.qseq.Add(1)), alg: alg.String()}
	m, runErr := rt.Run(alg.String(), func(p fabric.Proc) {
		root := e.begin(q, p, 0, e.coord.ID(), alg.String(), "")
		q.root = root.ID()
		switch alg {
		case CA:
			ans = e.runCA(q, p, b)
		case BL:
			ans = e.runBL(q, p, b, nil)
		case PL:
			ans = e.runPL(q, p, b, nil)
		case SBL:
			ans = e.runBL(q, p, b, e.sigs)
		case SPL:
			ans = e.runPL(q, p, b, e.sigs)
		default:
			err = fmt.Errorf("exec: unknown algorithm %v", alg)
		}
		if ans != nil {
			ans.MarkDegraded(q.failures)
			root.Add("certain", int64(len(ans.Certain))).Add("maybe", int64(len(ans.Maybe)))
			if ans.Degraded {
				root.Add("degraded", 1)
				for _, f := range ans.Unavailable {
					root.Detailf("unavailable %s", f)
				}
			}
		}
		root.EndV(p.Now())
	})
	if runErr != nil {
		return nil, m, runErr
	}
	if err != nil {
		return nil, m, err
	}
	if ans != nil {
		ans.Outcome = outcomeOf(ctx.Err())
	}
	e.record(q, ans, m)
	e.profile(q, ans, m, waitMicros, ctx.Err())
	return ans, m, nil
}

// outcomeOf maps a context error onto the answer's Outcome field.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return federation.OutcomeOK
	case errors.Is(err, context.DeadlineExceeded):
		return federation.OutcomeDeadline
	default:
		return federation.OutcomeCanceled
	}
}

// profile assembles the query's trace.Profile from its spans and hands it to
// the flight recorder and the adaptive selector. The latency recorded is the
// runtime's response time — wall clock under the real runtime, virtual time
// under the DES — matching what query_latency_us observes.
func (e *Engine) profile(q *runCtx, ans *federation.Answer, m fabric.Metrics, waitMicros int64, ctxErr error) {
	if (e.rec == nil && e.selector == nil) || e.tracer == nil {
		return
	}
	p := trace.BuildProfile(q.qid, q.alg, e.tracer.QuerySpans(q.qid))
	if p == nil {
		return
	}
	if m.ResponseMicros > 0 {
		p.WallMicros = m.ResponseMicros
	}
	if ans != nil {
		var unavailable []string
		for _, f := range ans.Unavailable {
			unavailable = append(unavailable, string(f.Site))
		}
		// A context error classifies the profile canceled/deadline — always
		// retained by the flight recorder, like degraded and failed queries.
		p.SetOutcome(len(ans.Certain), len(ans.Maybe), unavailable, ctxErr)
	}
	p.AddCounter("admission_wait_us", waitMicros)
	for site, sc := range m.PerSite {
		p.AddCounter("disk_bytes", sc.DiskBytes)
		p.AddCounter("cpu_ops", sc.CPUOps)
		p.AddIO(string(site), trace.SiteIO{DiskBytes: sc.DiskBytes, CPUOps: sc.CPUOps})
	}
	for pair, bytes := range m.NetPairs {
		p.AddCounter("net_bytes", bytes)
		// Outbound bytes charge the shipping site.
		p.AddIO(string(pair.From), trace.SiteIO{NetBytes: bytes})
	}
	if e.rec != nil {
		e.rec.Record(p)
	}
	if e.selector != nil {
		e.selector.Observe(p)
	}
}

// runCtx scopes one query execution: its ID, strategy name, and root span.
type runCtx struct {
	qid  string
	alg  string
	root trace.SpanID

	// failures collects the sites the runtime's fault plan took down during
	// this query; the answer degrades instead of failing.
	mu       sync.Mutex
	failures []federation.SiteFailure
}

// siteFailed records one unavailable site. One dead site is typically
// observed several times per query (its O, P and C3 steps all fail), so
// repeat observations are deduplicated by site — the first reason wins —
// keeping Answer.Unavailable and site_unavailable_total one-per-site.
func (q *runCtx) siteFailed(site object.SiteID, reason string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, f := range q.failures {
		if f.Site == site {
			return
		}
	}
	q.failures = append(q.failures, federation.SiteFailure{Site: site, Reason: reason})
}

// interrupted is the strategies' cancellation checkpoint before a
// site-bound step. A done context records the site as unavailable — the
// step's contribution becomes unknown, so dependent results degrade to
// maybe under exactly the site-failure semantics — and the step is skipped.
// Deduplication in siteFailed keeps a site that is both faulted and
// interrupt-skipped at one entry.
func (q *runCtx) interrupted(p fabric.Proc, site object.SiteID) bool {
	err := p.Context().Err()
	if err == nil {
		return false
	}
	q.siteFailed(site, ctxReason(err))
	return true
}

// ctxReason renders a context error as a SiteFailure reason.
func ctxReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline exceeded"
	}
	return "query canceled"
}

// dead returns the failed-site membership map for certification (nil when
// every site served).
func (q *runCtx) dead() map[object.SiteID]bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.failures) == 0 {
		return nil
	}
	m := make(map[object.SiteID]bool, len(q.failures))
	for _, f := range q.failures {
		m[f.Site] = true
	}
	return m
}

// siteDown consults the runtime's fault plan before a site-bound operation
// sent over the from→site edge: it injects the site's configured delay,
// checks the link (a partition or dropped link makes the site unreachable
// for this caller even though the process is alive), counts the operation
// against a drop-after budget, and reports whether the site is down for
// it. With no fault plan every site serves.
func siteDown(p fabric.Proc, from, site object.SiteID) (string, bool) {
	fp := p.Faults()
	if fp == nil {
		return "", false
	}
	if d := fp.DelayMicros(site); d > 0 {
		p.Sleep(d)
	}
	if !fp.BeginLinkOp(from, site) {
		return fp.LinkReason(from, site), true
	}
	if fp.BeginOp(site) {
		return "", false
	}
	return fp.Reason(site), true
}

// begin opens a query-scoped span at a site, stamped with the runtime's
// clock. With no tracer configured it returns the no-op handle without
// touching the runtime clock.
func (e *Engine) begin(q *runCtx, p fabric.Proc, parent trace.SpanID, site object.SiteID, name, phases string) trace.Handle {
	if e.tracer == nil {
		return trace.Handle{}
	}
	return e.tracer.StartSpan(parent, site, name).
		WithQuery(q.qid, q.alg).WithPhases(phases).WithVStart(p.Now())
}

// record feeds the registry from the finished run: runtime metrics broken
// down per site and site pair, answer/certification breakdowns, and the
// per-phase time histograms derived from the query's spans.
func (e *Engine) record(q *runCtx, ans *federation.Answer, m fabric.Metrics) {
	if e.reg == nil {
		return
	}
	coord := string(e.coord.ID())
	e.reg.Counter("queries_total", metrics.Labels{Site: coord, Alg: q.alg}).Inc()
	e.reg.Histogram("query_latency_us", metrics.Labels{Site: coord, Alg: q.alg}).
		ObserveWithExemplar(m.ResponseMicros, q.qid)
	if ans != nil {
		algOnly := metrics.Labels{Alg: q.alg}
		e.reg.Counter("results_certain_total", algOnly).Add(int64(len(ans.Certain)))
		e.reg.Counter("results_maybe_total", algOnly).Add(int64(len(ans.Maybe)))
		e.reg.Counter("maybe_certified_total", algOnly).Add(int64(ans.Stats.Certified))
		e.reg.Counter("maybe_eliminated_total", algOnly).Add(int64(ans.Stats.Eliminated))
		if ans.Degraded {
			e.reg.Counter("degraded_queries_total",
				metrics.Labels{Site: coord, Alg: q.alg}).Inc()
			for _, f := range ans.Unavailable {
				e.reg.Counter("site_unavailable_total",
					metrics.Labels{Site: coord, Peer: string(f.Site), Alg: q.alg}).Inc()
			}
		}
		switch ans.Outcome {
		case federation.OutcomeCanceled:
			e.reg.Counter("queries_canceled_total", metrics.Labels{Site: coord, Alg: q.alg}).Inc()
		case federation.OutcomeDeadline:
			e.reg.Counter("deadline_exceeded_total", metrics.Labels{Site: coord, Alg: q.alg}).Inc()
		}
	}
	for site, sc := range m.PerSite {
		l := metrics.Labels{Site: string(site), Alg: q.alg}
		e.reg.Counter("disk_bytes_total", l).Add(sc.DiskBytes)
		e.reg.Counter("cpu_ops_total", l).Add(sc.CPUOps)
	}
	for pair, bytes := range m.NetPairs {
		e.reg.Counter("net_bytes_total",
			metrics.Labels{Site: string(pair.From), Peer: string(pair.To), Alg: q.alg}).Add(bytes)
	}
	if e.tracer == nil {
		return
	}
	for _, s := range e.tracer.Spans() {
		if s.Query != q.qid || s.Phases == "" || s.End.IsZero() {
			continue
		}
		// A multi-phase span ("PO") observes its full duration under each
		// phase it performs; the phases are not separable at the site.
		d := s.VDurationMicros()
		if d < 0 {
			d = s.DurationMicros()
		}
		for _, ph := range s.Phases {
			e.reg.Histogram("phase_time_us",
				metrics.Labels{Site: string(s.Site), Alg: q.alg, Phase: string(ph)}).Observe(d)
		}
	}
}

// runCA is the centralized approach: O → I → P.
func (e *Engine) runCA(q *runCtx, p fabric.Proc, b *query.Bound) *federation.Answer {
	coord := e.coord.ID()
	sites := b.InvolvedSites()
	replies := make([]federation.RetrieveReply, len(sites))

	// CA_G1 ∥ CA_C1: every involved site retrieves and ships its objects
	// (phase O).
	g1 := e.begin(q, p, q.root, coord, "CA_G1", "O").
		Detailf("request objects from %d sites", len(sites))
	fns := make([]func(fabric.Proc), len(sites))
	for i, siteID := range sites {
		i, siteID := i, siteID
		fns[i] = func(p fabric.Proc) {
			c1 := e.begin(q, p, g1.ID(), siteID, "CA_C1", "O")
			if reason, down := siteDown(p, coord, siteID); down {
				q.siteFailed(siteID, reason)
				c1.Detailf("unavailable: %s", reason).EndV(p.Now())
				return
			}
			// Checkpoint after the fault delay: a Delay-faulted site whose
			// sleep the context cut short must not ship anything.
			if q.interrupted(p, siteID) {
				c1.Detailf("skipped: %s", ctxReason(p.Context().Err())).EndV(p.Now())
				return
			}
			site := e.sites[siteID]
			p.Transfer(coord, siteID, federation.QueryWireSize(b))
			reply := site.Retrieve(p, b)
			c1.Detailf("retrieve %d classes", len(reply.Classes)).
				Add("classes", int64(len(reply.Classes))).
				Add("bytes_shipped", int64(reply.WireSize()))
			p.Transfer(siteID, coord, reply.WireSize())
			replies[i] = reply
			c1.EndV(p.Now())
		}
	}
	p.Fork(fns...)
	g1.EndV(p.Now())

	// CA_G2: outerjoin integration over GOids (phase I).
	g2 := e.begin(q, p, q.root, coord, "CA_G2", "I")
	view := e.coord.Materialize(p, b, replies)
	g2.Detailf("materialized %d objects", view.Len()).Add("objects", int64(view.Len()))
	g2.EndV(p.Now())

	// CA_G3: evaluate the predicates (phase P).
	g3 := e.begin(q, p, q.root, coord, "CA_G3", "P")
	ans := e.coord.EvaluateView(p, b, view)
	// A dead site's attributes never reached the view, so its predicates
	// already read unknown; entities stored only at dead queried root sites
	// come back as synthesized all-unknown maybe rows.
	if dead := q.dead(); dead != nil {
		ans.AddMaybe(e.coord.DegradedRootRows(p, b, dead, view.Has)...)
	}
	g3.Detailf("%d certain, %d maybe", len(ans.Certain), len(ans.Maybe))
	g3.EndV(p.Now())
	return ans
}

// dispatchChecks ships check requests to their target sites, has the
// targets check the assistant objects, and routes the verdicts to the
// coordinator. It returns one task function per target site; each runs as
// a child span of parent (the origin site's local step).
func (e *Engine) dispatchChecks(q *runCtx, parent trace.SpanID, origin object.SiteID,
	checks map[object.SiteID][]federation.CheckItem, sink func(federation.CheckReply)) []func(fabric.Proc) {
	targets := make([]object.SiteID, 0, len(checks))
	for t := range checks {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	coord := e.coord.ID()
	fns := make([]func(fabric.Proc), 0, len(targets))
	for _, target := range targets {
		target := target
		items := checks[target]
		e.reg.Counter("checks_dispatched_total",
			metrics.Labels{Site: string(origin), Alg: q.alg}).Add(int64(len(items)))
		fns = append(fns, func(p fabric.Proc) {
			c3 := e.begin(q, p, parent, target, "C3", "O")
			// A dead check target fails no query: its verdicts simply never
			// arrive, the unsolved predicates stay unknown, and the
			// dependent results stay maybe.
			if reason, down := siteDown(p, origin, target); down {
				q.siteFailed(target, reason)
				c3.Detailf("unavailable: %s", reason).EndV(p.Now())
				return
			}
			// An interrupted query stops dispatching checks; the unsolved
			// predicates stay unknown, same as a dead target.
			if q.interrupted(p, target) {
				c3.Detailf("skipped: %s", ctxReason(p.Context().Err())).EndV(p.Now())
				return
			}
			req := federation.CheckRequest{From: origin, Items: items}
			p.Transfer(origin, target, req.WireSize())
			reply := e.sites[target].CheckAssistants(p, items)
			c3.Detailf("checked %d assistants from %s", len(items), origin).
				Add("items", int64(len(items)))
			p.Transfer(target, coord, reply.WireSize())
			sink(reply)
			c3.EndV(p.Now())
		})
	}
	return fns
}

// runBL is the basic localized approach: P → O → I. A non-nil sigs runs
// the signature-assisted variant.
func (e *Engine) runBL(q *runCtx, p fabric.Proc, b *query.Bound, sigs *signature.Index) *federation.Answer {
	coord := e.coord.ID()
	rootSites := b.RootSites()
	results := make([]federation.LocalResult, len(rootSites))

	var mu sync.Mutex
	var replies []federation.CheckReply
	deadRoots := make(map[object.SiteID]bool)
	addReply := func(r federation.CheckReply) {
		mu.Lock()
		defer mu.Unlock()
		replies = append(replies, r)
	}
	// Only root sites that never answered their local query feed the
	// certification's dead map: a live site's silence about an entity is
	// still elimination evidence, and a dead check target merely leaves
	// verdicts missing.
	markDeadRoot := func(site object.SiteID) {
		mu.Lock()
		defer mu.Unlock()
		deadRoots[site] = true
	}

	// BL_G1 ∥ per-site BL_C1/BL_C2, with BL_C3 at the check targets.
	g1 := e.begin(q, p, q.root, coord, "BL_G1", "").
		Detailf("local queries to %d sites", len(rootSites))
	fns := make([]func(fabric.Proc), len(rootSites))
	for i, siteID := range rootSites {
		i, siteID := i, siteID
		fns[i] = func(p fabric.Proc) {
			// Phase P (local predicates) then phase O (assistant lookup) at
			// the site — the paper's P → O ordering in one local step.
			c12 := e.begin(q, p, g1.ID(), siteID, "BL_C1+C2", "PO")
			if reason, down := siteDown(p, coord, siteID); down {
				q.siteFailed(siteID, reason)
				markDeadRoot(siteID)
				c12.Detailf("unavailable: %s", reason).EndV(p.Now())
				return
			}
			if q.interrupted(p, siteID) {
				markDeadRoot(siteID)
				c12.Detailf("skipped: %s", ctxReason(p.Context().Err())).EndV(p.Now())
				return
			}
			site := e.sites[siteID]
			p.Transfer(coord, siteID, federation.QueryWireSize(b))
			res, checks := site.EvalLocalBasic(p, b, sigs)
			c12.Detailf("%d local rows, %d check targets", len(res.Rows), len(checks)).
				Add("rows", int64(len(res.Rows))).
				Add("check_targets", int64(len(checks)))
			results[i] = res
			c12.EndV(p.Now())

			// The local results travel to the coordinator while the check
			// requests are processed at the other sites.
			sub := []func(fabric.Proc){func(p fabric.Proc) {
				p.Transfer(siteID, coord, res.WireSize())
			}}
			sub = append(sub, e.dispatchChecks(q, c12.ID(), siteID, checks, addReply)...)
			p.Fork(sub...)
		}
	}
	p.Fork(fns...)
	g1.EndV(p.Now())

	// BL_G2: certification (phase I).
	g2 := e.begin(q, p, q.root, coord, "BL_G2", "I")
	if len(deadRoots) == 0 {
		deadRoots = nil
	}
	ans := e.coord.CertifyDegraded(p, b, results, replies, deadRoots)
	g2.Detailf("%d certain, %d maybe", len(ans.Certain), len(ans.Maybe)).
		Add("certified", int64(ans.Stats.Certified)).
		Add("eliminated", int64(ans.Stats.Eliminated))
	g2.EndV(p.Now())
	return ans
}

// runPL is the parallel localized approach: O → P → I. The difference from
// BL is the order of the component-site steps: assistant lookups and check
// dispatch happen before local predicate evaluation, so checking at other
// sites (PL_C3) runs in parallel with the local evaluation (PL_C2).
// A non-nil sigs runs the signature-assisted variant.
func (e *Engine) runPL(q *runCtx, p fabric.Proc, b *query.Bound, sigs *signature.Index) *federation.Answer {
	coord := e.coord.ID()
	rootSites := b.RootSites()
	results := make([]federation.LocalResult, len(rootSites))

	var mu sync.Mutex
	var replies []federation.CheckReply
	deadRoots := make(map[object.SiteID]bool)
	addReply := func(r federation.CheckReply) {
		mu.Lock()
		defer mu.Unlock()
		replies = append(replies, r)
	}
	markDeadRoot := func(site object.SiteID) {
		mu.Lock()
		defer mu.Unlock()
		deadRoots[site] = true
	}

	g1 := e.begin(q, p, q.root, coord, "PL_G1", "").
		Detailf("local queries to %d sites", len(rootSites))
	fns := make([]func(fabric.Proc), len(rootSites))
	for i, siteID := range rootSites {
		i, siteID := i, siteID
		fns[i] = func(p fabric.Proc) {
			site := e.sites[siteID]
			if reason, down := siteDown(p, coord, siteID); down {
				q.siteFailed(siteID, reason)
				markDeadRoot(siteID)
				return
			}
			if q.interrupted(p, siteID) {
				markDeadRoot(siteID)
				return
			}
			p.Transfer(coord, siteID, federation.QueryWireSize(b))

			// PL_C1 (phase O): locate unsolved items for every object and
			// dispatch the checks immediately.
			c1 := e.begin(q, p, g1.ID(), siteID, "PL_C1", "O")
			nav, checks := site.NavigateAll(p, b, sigs)
			c1.Detailf("%d check targets", len(checks)).
				Add("check_targets", int64(len(checks)))
			c1.EndV(p.Now())
			checkH := make([]fabric.Handle, 0, len(checks))
			for j, fn := range e.dispatchChecks(q, c1.ID(), siteID, checks, addReply) {
				checkH = append(checkH, p.Go(fmt.Sprintf("%s-check-%d", siteID, j), fn))
			}

			// Mid-phase checkpoint: a query interrupted between dispatch (O)
			// and local evaluation (P) skips the evaluation but still joins
			// its in-flight checks, keeping the spawn/wait discipline intact.
			if q.interrupted(p, siteID) {
				markDeadRoot(siteID)
				p.Wait(checkH...)
				return
			}

			// PL_C2 (phase P) runs while the checks are in flight.
			c2 := e.begin(q, p, g1.ID(), siteID, "PL_C2", "P")
			res := site.EvalNavigated(p, b, nav)
			c2.Detailf("%d local rows", len(res.Rows)).Add("rows", int64(len(res.Rows)))
			results[i] = res
			p.Transfer(siteID, coord, res.WireSize())
			c2.EndV(p.Now())
			p.Wait(checkH...)
		}
	}
	p.Fork(fns...)
	g1.EndV(p.Now())

	// PL_G2: certification (phase I).
	g2 := e.begin(q, p, q.root, coord, "PL_G2", "I")
	if len(deadRoots) == 0 {
		deadRoots = nil
	}
	ans := e.coord.CertifyDegraded(p, b, results, replies, deadRoots)
	g2.Detailf("%d certain, %d maybe", len(ans.Certain), len(ans.Maybe)).
		Add("certified", int64(ans.Stats.Certified)).
		Add("eliminated", int64(ans.Stats.Eliminated))
	g2.EndV(p.Now())
	return ans
}
