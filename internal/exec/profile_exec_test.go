package exec

import (
	"testing"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/trace"
)

// TestRunRecordsProfile: the engine hands the flight recorder a complete
// profile at query end, and the query_latency_us exemplar resolves back to
// exactly that profile — the metrics → recorder debugging loop.
func TestRunRecordsProfile(t *testing.T) {
	fx := school.New()
	reg := metrics.New()
	rec := obs.NewRecorder(obs.RecorderConfig{Site: "G", Metrics: reg})
	e, err := New(Config{
		Global:      fx.Global,
		Coordinator: "G",
		Databases:   fx.Databases,
		Tables:      fx.Mapping,
		Tracer:      &trace.Tracer{},
		Metrics:     reg,
		Recorder:    rec,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b := schoolBound(t, fx)

	ans, m, err := e.Run(fabric.NewSim(fabric.DefaultRates(), e.Sites()), PL, b)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if rec.Recorded() != 1 {
		t.Fatalf("recorded = %d, want 1", rec.Recorded())
	}
	p := rec.Last()
	if p == nil {
		t.Fatal("no profile recorded")
	}
	if p.Alg != "PL" || p.Status != trace.StatusOK {
		t.Errorf("profile = %s/%s", p.Alg, p.Status)
	}
	if p.Certain != len(ans.Certain) || p.Maybe != len(ans.Maybe) {
		t.Errorf("profile rows = %d/%d, answer = %d/%d",
			p.Certain, p.Maybe, len(ans.Certain), len(ans.Maybe))
	}
	// The profile's latency is the runtime's response time (virtual under
	// the DES), matching what query_latency_us observed.
	if p.WallMicros != m.ResponseMicros {
		t.Errorf("profile wall = %g, runtime response = %g", p.WallMicros, m.ResponseMicros)
	}
	// All participating sites appear with phase attribution.
	for _, site := range []string{"DB1", "DB2", "DB3", "G"} {
		found := false
		for _, s := range p.Sites {
			if string(s) == site {
				found = true
			}
		}
		if !found {
			t.Errorf("profile sites %v missing %s", p.Sites, site)
		}
	}
	if p.Phases.Total() <= 0 {
		t.Error("profile has no phase attribution")
	}
	if p.Counters["disk_bytes"] <= 0 || p.Counters["cpu_ops"] <= 0 {
		t.Errorf("runtime counters missing: %v", p.Counters)
	}

	// The histogram's exemplar points at the recorded profile.
	s, ok := reg.Snapshot().Get("query_latency_us", metrics.Labels{Site: "G", Alg: "PL"})
	if !ok || s.Hist == nil {
		t.Fatal("query_latency_us missing")
	}
	ex := s.Hist.ExemplarFor(m.ResponseMicros)
	if ex == nil {
		t.Fatal("no exemplar on query_latency_us")
	}
	if got := rec.Get(ex.TraceID); got != p {
		t.Errorf("exemplar %q resolves to %v, want the recorded profile %s", ex.TraceID, got, p.ID)
	}

	// A second run records a second, distinct profile.
	if _, _, err := e.Run(fabric.NewSim(fabric.DefaultRates(), e.Sites()), BL, b); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if rec.Recorded() != 2 {
		t.Errorf("recorded = %d, want 2", rec.Recorded())
	}
	if rec.Last() == p {
		t.Error("second run did not record a new profile")
	}
}

// TestProfileDegradedRetained: a query degraded by a site failure produces a
// degraded profile that the recorder pins past ring-size evictions.
func TestProfileDegradedRetained(t *testing.T) {
	fx := school.New()
	reg := metrics.New()
	rec := obs.NewRecorder(obs.RecorderConfig{Site: "G", Size: 4, Metrics: reg})
	e, err := New(Config{
		Global:      fx.Global,
		Coordinator: "G",
		Databases:   fx.Databases,
		Tables:      fx.Mapping,
		Tracer:      &trace.Tracer{},
		Metrics:     reg,
		Recorder:    rec,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b := schoolBound(t, fx)

	// One query with DB2 down: the answer degrades, the profile records it.
	fp := fabric.NewFaultPlan().Kill("DB2")
	ans, _, err := e.Run(fabric.NewSim(fabric.DefaultRates(), e.Sites()).WithFaults(fp), PL, b)
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if !ans.Degraded {
		t.Fatal("answer not degraded with DB2 down")
	}
	degradedID := rec.Last().ID
	if got := rec.Last().Status; got != trace.StatusDegraded {
		t.Fatalf("degraded profile status = %s", got)
	}

	// Flood with healthy queries past the ring size; the degraded profile
	// must still be resolvable.
	for i := 0; i < 3*4; i++ {
		if _, _, err := e.Run(fabric.NewSim(fabric.DefaultRates(), e.Sites()), PL, b); err != nil {
			t.Fatalf("healthy run %d: %v", i, err)
		}
	}
	p := rec.Get(degradedID)
	if p == nil {
		t.Fatal("degraded profile evicted by healthy traffic")
	}
	if len(p.Unavailable) != 1 || p.Unavailable[0] != "DB2" {
		t.Errorf("degraded profile unavailable = %v", p.Unavailable)
	}
}
