package exec

import (
	"math/rand"
	"testing"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/workload"
)

// smallRanges shrinks the Table 2 federations for fast property testing
// while keeping every structural feature (missing attributes, nulls,
// isomerism, multi-class chains).
func smallRanges() workload.Ranges {
	r := workload.DefaultRanges()
	r.NObjects = [2]int{25, 45}
	return r
}

func runWorkload(t *testing.T, w *workload.Workload, alg Algorithm) (*federation.Answer, fabric.Metrics) {
	t.Helper()
	e, err := New(Config{
		Global:      w.Global,
		Coordinator: "G",
		Databases:   w.Databases,
		Tables:      w.Tables,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ans, m, err := e.Run(fabric.NewReal(fabric.DefaultRates()), alg, w.Bound)
	if err != nil {
		t.Fatalf("%v: %v", alg, err)
	}
	return ans, m
}

func goidSet(rows []federation.ResultRow) map[object.GOid]bool {
	out := make(map[object.GOid]bool, len(rows))
	for _, r := range rows {
		out[r.GOid] = true
	}
	return out
}

// TestAlgorithmAgreementProperty is the central correctness property over
// random Table 2 workloads:
//
//  1. BL and PL return exactly the same answer (PL differs only in cost and
//     parallel structure, never in information).
//  2. The localized strategies are sound with respect to the fully
//     integrated view (CA): every certain result they report is certain
//     under CA, and they never eliminate an entity CA keeps. They may
//     report as maybe an entity CA can decide, because certification uses
//     one level of assistance while CA merges transitively.
func TestAlgorithmAgreementProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := smallRanges().Draw(rng)
		w, err := workload.Generate(p, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		ca, _ := runWorkload(t, w, CA)
		bl, _ := runWorkload(t, w, BL)
		pl, _ := runWorkload(t, w, PL)

		// (1) BL == PL exactly.
		if got, want := answerSummary(pl), answerSummary(bl); got != want {
			t.Errorf("seed %d: PL answer differs from BL:\n PL: %s\n BL: %s", seed, got, want)
		}

		caCertain, caMaybe := goidSet(ca.Certain), goidSet(ca.Maybe)
		blCertain, blMaybe := goidSet(bl.Certain), goidSet(bl.Maybe)

		// (2a) BL-certain ⊆ CA-certain: no false certification.
		for g := range blCertain {
			if !caCertain[g] {
				t.Errorf("seed %d: %s certain under BL but not under CA", seed, g)
			}
		}
		// (2b) CA results ⊆ BL results: no false elimination.
		for g := range caCertain {
			if !blCertain[g] && !blMaybe[g] {
				t.Errorf("seed %d: %s certain under CA but eliminated by BL", seed, g)
			}
		}
		for g := range caMaybe {
			if !blCertain[g] && !blMaybe[g] {
				t.Errorf("seed %d: %s maybe under CA but eliminated by BL", seed, g)
			}
		}
		// (2c) BL never keeps an entity CA eliminates.
		for g := range blCertain {
			if !caCertain[g] && !caMaybe[g] {
				t.Errorf("seed %d: %s certain under BL but eliminated by CA", seed, g)
			}
		}
		for g := range blMaybe {
			if !caCertain[g] && !caMaybe[g] {
				t.Errorf("seed %d: %s maybe under BL but eliminated by CA", seed, g)
			}
		}
	}
}

// TestCertainSoundnessNoNulls: with no original nulls and every predicate
// attribute held somewhere, the only missing data is schema-level. The
// answers must still agree per the lattice, and with no missing data at all
// (every site holds everything) all three classifications must be exactly
// equal with an empty maybe set.
func TestNoMissingDataExactAgreement(t *testing.T) {
	r := smallRanges()
	r.NullRatio = [2]float64{0, 0}
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := r.Draw(rng)
		// Force every site to hold every predicate attribute.
		for k := range p.Classes {
			all := make([]int, p.Classes[k].NPreds)
			for j := range all {
				all[j] = j
			}
			for i := range p.Classes[k].HeldPreds {
				p.Classes[k].HeldPreds[i] = all
			}
		}
		w, err := workload.Generate(p, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ca, _ := runWorkload(t, w, CA)
		bl, _ := runWorkload(t, w, BL)
		pl, _ := runWorkload(t, w, PL)
		if len(ca.Maybe) != 0 || len(bl.Maybe) != 0 || len(pl.Maybe) != 0 {
			t.Errorf("seed %d: maybe results without missing data: CA=%d BL=%d PL=%d",
				seed, len(ca.Maybe), len(bl.Maybe), len(pl.Maybe))
		}
		if answerSummary(ca) != answerSummary(bl) || answerSummary(bl) != answerSummary(pl) {
			t.Errorf("seed %d: answers disagree without missing data", seed)
		}
	}
}

// TestPLNeverCheaperOnNetwork: the parallel localized approach dispatches
// checks before filtering, so across random workloads its network volume is
// never below BL's.
func TestPLNeverCheaperOnNetwork(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := smallRanges().Draw(rng)
		w, err := workload.Generate(p, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, mBL := runWorkload(t, w, BL)
		_, mPL := runWorkload(t, w, PL)
		if mPL.NetBytes < mBL.NetBytes {
			t.Errorf("seed %d: PL net %d < BL net %d", seed, mPL.NetBytes, mBL.NetBytes)
		}
	}
}
