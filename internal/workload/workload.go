// Package workload generates the randomized federations and global queries
// of the paper's performance study (Table 2): a chain of global classes,
// constituent classes at every component database with randomly missing
// predicate attributes, objects with controlled predicate selectivities and
// null ratios, isomeric objects across sites, and the GOid mapping tables.
//
// Every sample is generated from an explicit *rand.Rand, so experiments are
// reproducible from their seeds.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/store"
)

// valueDomain is the exclusive upper bound of generated attribute values;
// predicate literals are chosen inside it to hit target selectivities.
const valueDomain = 1000

// Ranges are the Table 2 parameter ranges a sample is drawn from.
type Ranges struct {
	// NDB is the number of component databases (N_db).
	NDB int
	// NClasses bounds the number of global classes involved in the query
	// (N_c, paper default 1–4).
	NClasses [2]int
	// NPredsPerClass bounds the number of predicates per involved class
	// (N_p^k, paper default 0–3).
	NPredsPerClass [2]int
	// NObjects bounds the number of home objects per constituent class per
	// database (N_o^{i,k}, paper default 5000–6000).
	NObjects [2]int
	// NullRatio bounds the ratio of objects with an original null value in
	// a held predicate attribute (R_m when no attribute is missing, paper
	// default 0–0.2).
	NullRatio [2]float64
	// Selectivity overrides the per-predicate selectivity when positive;
	// zero applies the paper's formula R_ps = 0.45^sqrt(N_p) per class.
	Selectivity float64
	// ReplicaProb is the probability that an entity is replicated to each
	// additional site; 0.1 yields the paper's isomerism ratio
	// R_iso = 1 − 0.9^(N_db−1).
	ReplicaProb float64
	// PadAttrs is the number of uninvolved attributes per class, modeling
	// the full object size read from disk.
	PadAttrs int
	// EqualityPreds switches predicates from range form (p < v) to
	// equality form (p = v) with the same selectivity, the workload class
	// the signature-assisted strategies accelerate.
	EqualityPreds bool
	// Disjunctive splits the query's predicates into two or-connected
	// conjunction groups (the disjunctive extension of the paper's
	// Section 5).
	Disjunctive bool
}

// DefaultRanges returns the Table 2 default setting.
func DefaultRanges() Ranges {
	return Ranges{
		NDB:            3,
		NClasses:       [2]int{1, 4},
		NPredsPerClass: [2]int{0, 3},
		NObjects:       [2]int{5000, 6000},
		NullRatio:      [2]float64{0, 0.2},
		ReplicaProb:    0.1,
		PadAttrs:       2,
	}
}

// ClassParams are the drawn parameters of one involved global class.
type ClassParams struct {
	// NPreds is N_p^k, the number of predicates on the class.
	NPreds int
	// NObjects[i] is N_o^{i,k}, the home objects at site i.
	NObjects []int
	// NullRatio[i] is the site's original-null ratio for held predicate
	// attributes.
	NullRatio []float64
	// HeldPreds[i] lists the predicate-attribute indexes the constituent
	// class at site i defines (N_pa^{i,k} = len(HeldPreds[i])); the rest
	// are missing attributes there.
	HeldPreds [][]int
}

// Params is one concrete sample drawn from Ranges.
type Params struct {
	NDB           int
	Classes       []ClassParams
	Selectivity   float64
	ReplicaProb   float64
	PadAttrs      int
	EqualityPreds bool
	Disjunctive   bool
}

// Draw samples concrete parameters from the ranges.
func (r Ranges) Draw(rng *rand.Rand) Params {
	p := Params{
		NDB:           r.NDB,
		Selectivity:   r.Selectivity,
		ReplicaProb:   r.ReplicaProb,
		PadAttrs:      r.PadAttrs,
		EqualityPreds: r.EqualityPreds,
		Disjunctive:   r.Disjunctive,
	}
	nc := intBetween(rng, r.NClasses)
	totalPreds := 0
	for k := 0; k < nc; k++ {
		cp := ClassParams{
			NPreds:    intBetween(rng, r.NPredsPerClass),
			NObjects:  make([]int, r.NDB),
			NullRatio: make([]float64, r.NDB),
			HeldPreds: make([][]int, r.NDB),
		}
		totalPreds += cp.NPreds
		for i := 0; i < r.NDB; i++ {
			cp.NObjects[i] = intBetween(rng, r.NObjects)
			cp.NullRatio[i] = floatBetween(rng, r.NullRatio)
			cp.HeldPreds[i] = drawHeld(rng, cp.NPreds)
		}
		ensureCovered(rng, &cp)
		p.Classes = append(p.Classes, cp)
	}
	// A query with no predicates exercises nothing; force one.
	if totalPreds == 0 {
		p.Classes[0].NPreds = 1
		for i := 0; i < r.NDB; i++ {
			p.Classes[0].HeldPreds[i] = drawHeld(rng, 1)
		}
		ensureCovered(rng, &p.Classes[0])
	}
	return p
}

// ensureCovered guarantees every predicate attribute is held by at least
// one constituent class: an attribute held nowhere would not exist in the
// global schema (the attribute union) and could not be queried.
func ensureCovered(rng *rand.Rand, cp *ClassParams) {
	for j := 0; j < cp.NPreds; j++ {
		covered := false
		for _, held := range cp.HeldPreds {
			for _, h := range held {
				if h == j {
					covered = true
					break
				}
			}
			if covered {
				break
			}
		}
		if covered {
			continue
		}
		i := rng.Intn(len(cp.HeldPreds))
		cp.HeldPreds[i] = insertSorted(cp.HeldPreds[i], j)
	}
}

func insertSorted(list []int, v int) []int {
	list = append(list, v)
	for i := len(list) - 1; i > 0 && list[i] < list[i-1]; i-- {
		list[i], list[i-1] = list[i-1], list[i]
	}
	return list
}

func intBetween(rng *rand.Rand, b [2]int) int {
	if b[1] <= b[0] {
		return b[0]
	}
	return b[0] + rng.Intn(b[1]-b[0]+1)
}

func floatBetween(rng *rand.Rand, b [2]float64) float64 {
	if b[1] <= b[0] {
		return b[0]
	}
	return b[0] + rng.Float64()*(b[1]-b[0])
}

// drawHeld picks N_pa ∈ [0, nPreds] held predicate attributes uniformly.
func drawHeld(rng *rand.Rand, nPreds int) []int {
	if nPreds == 0 {
		return nil
	}
	nHeld := rng.Intn(nPreds + 1)
	perm := rng.Perm(nPreds)
	held := append([]int(nil), perm[:nHeld]...)
	// Keep deterministic ascending order for schema construction.
	for i := 1; i < len(held); i++ {
		for j := i; j > 0 && held[j] < held[j-1]; j-- {
			held[j], held[j-1] = held[j-1], held[j]
		}
	}
	return held
}

// Stats summarizes a generated workload.
type Stats struct {
	// Entities is the number of real-world entities per class.
	Entities []int
	// Objects is the number of stored objects across all databases.
	Objects int
	// IsomericEntities counts entities stored at more than one site.
	IsomericEntities int
	// Preds is the total number of query predicates.
	Preds int
}

// Workload is one generated federation plus its global query.
type Workload struct {
	Global    *schema.Global
	Schemas   map[object.SiteID]*schema.Schema
	Databases map[object.SiteID]*store.Database
	Tables    *gmap.Tables
	Query     *query.Query
	Bound     *query.Bound
	Stats     Stats
}

// classSelectivity returns the per-predicate selectivity of class k: the
// override when set, otherwise the paper's R_ps = 0.45^sqrt(N_p) split
// evenly across the class's predicates.
func classSelectivity(p Params, k int) float64 {
	if p.Selectivity > 0 {
		return p.Selectivity
	}
	n := p.Classes[k].NPreds
	if n == 0 {
		return 1
	}
	return math.Pow(0.45, math.Sqrt(float64(n))/float64(n))
}

// eqDomain returns the value domain giving an equality predicate "p = 0"
// the class's target selectivity (P = 1/domain).
func eqDomain(p Params, k int) int {
	d := int(math.Round(1 / classSelectivity(p, k)))
	if d < 2 {
		d = 2
	}
	return d
}

// entity is one real-world entity during generation.
type entity struct {
	id     int
	sites  []bool // placement per site index
	values []int  // canonical predicate-attribute values
	target int
	pads   []int
	next   int // index into the next class's entities, -1 for the last class
}

// Generate builds a workload from drawn parameters. The generated federation
// is consistent: isomeric objects agree on every attribute value they both
// store (missing data hides values, it never contradicts them), and complex
// references are only stored at sites where the referenced entity is also
// stored (elsewhere the reference is an original null).
func Generate(p Params, rng *rand.Rand) (*Workload, error) {
	if p.NDB < 1 {
		return nil, fmt.Errorf("workload: NDB = %d", p.NDB)
	}
	if len(p.Classes) == 0 {
		return nil, fmt.Errorf("workload: no classes")
	}
	nextID := 0

	// 1. Generate entities class by class; expand branch placements so a
	// referenced entity exists wherever its referrer does.
	classes := make([][]*entity, len(p.Classes))
	for k := range p.Classes {
		cp := p.Classes[k]
		var ents []*entity
		// Table 2 fixes N_o^{i,k}, the object count of the constituent
		// class at each site. Entities homed at a site are replicated to
		// each other site with probability ReplicaProb, so the home count
		// is deflated to keep the expected extent size at N_o while the
		// isomerism ratio R_iso = 1 − (1−ReplicaProb)^(N_db−1) still grows
		// with the number of databases.
		inflation := 1 + p.ReplicaProb*float64(p.NDB-1)
		for site := 0; site < p.NDB; site++ {
			homes := int(math.Round(float64(cp.NObjects[site]) / inflation))
			if homes < 1 {
				homes = 1
			}
			for n := 0; n < homes; n++ {
				e := &entity{
					id:     nextID,
					sites:  make([]bool, p.NDB),
					values: make([]int, cp.NPreds),
					target: rng.Intn(valueDomain),
					pads:   make([]int, p.PadAttrs),
					next:   -1,
				}
				nextID++
				e.sites[site] = true
				for other := 0; other < p.NDB; other++ {
					if other != site && rng.Float64() < p.ReplicaProb {
						e.sites[other] = true
					}
				}
				dom := valueDomain
				if p.EqualityPreds {
					dom = eqDomain(p, k)
				}
				for j := range e.values {
					e.values[j] = rng.Intn(dom)
				}
				for j := range e.pads {
					e.pads[j] = rng.Intn(valueDomain)
				}
				ents = append(ents, e)
			}
		}
		classes[k] = ents

		// Link the previous class to this one and expand placements.
		if k > 0 {
			for _, prev := range classes[k-1] {
				f := rng.Intn(len(ents))
				prev.next = f
				for site, present := range prev.sites {
					if present {
						ents[f].sites[site] = true
					}
				}
			}
		}
	}

	// 2. Build component schemas.
	sites := make([]object.SiteID, p.NDB)
	schemas := make(map[object.SiteID]*schema.Schema, p.NDB)
	for i := range sites {
		sites[i] = object.SiteID(fmt.Sprintf("DB%d", i+1))
		schemas[sites[i]] = schema.NewSchema(sites[i])
	}
	corrs := make([]schema.Correspondence, len(p.Classes))
	for k := range p.Classes {
		cp := p.Classes[k]
		className := fmt.Sprintf("C%d", k+1)
		corrs[k] = schema.Correspondence{GlobalClass: className}
		for i, site := range sites {
			attrs := []schema.Attribute{schema.Prim("key", object.KindInt)}
			for _, j := range cp.HeldPreds[i] {
				attrs = append(attrs, schema.Prim(fmt.Sprintf("p%d", j), object.KindInt))
			}
			attrs = append(attrs, schema.Prim("t0", object.KindInt))
			if k < len(p.Classes)-1 {
				attrs = append(attrs, schema.Complex("next", fmt.Sprintf("C%d", k+2)))
			}
			for j := 0; j < p.PadAttrs; j++ {
				attrs = append(attrs, schema.Prim(fmt.Sprintf("pad%d", j), object.KindInt))
			}
			cls, err := schema.NewClass(className, attrs, "key")
			if err != nil {
				return nil, fmt.Errorf("workload: %w", err)
			}
			if err := schemas[site].AddClass(cls); err != nil {
				return nil, fmt.Errorf("workload: %w", err)
			}
			corrs[k].Members = append(corrs[k].Members,
				schema.Constituent{Site: site, Class: className})
		}
	}
	global, err := schema.Integrate(schemas, corrs)
	if err != nil {
		return nil, fmt.Errorf("workload: integrate: %w", err)
	}

	// 3. Store the objects and bind the mapping tables.
	dbs := make(map[object.SiteID]*store.Database, p.NDB)
	for _, site := range sites {
		db, err := store.NewDatabase(schemas[site])
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		dbs[site] = db
	}
	tables := gmap.NewTables()
	stats := Stats{Entities: make([]int, len(p.Classes))}

	for k := range p.Classes {
		cp := p.Classes[k]
		className := fmt.Sprintf("C%d", k+1)
		table := tables.Table(className)
		stats.Entities[k] = len(classes[k])
		for _, e := range classes[k] {
			goid := object.GOid(fmt.Sprintf("g%d", e.id))
			placed := 0
			for i, present := range e.sites {
				if !present {
					continue
				}
				placed++
				site := sites[i]
				loid := object.LOid(fmt.Sprintf("o%d", e.id))
				attrs := map[string]object.Value{
					"key": object.Int(int64(e.id)),
					"t0":  object.Int(int64(e.target)),
				}
				held := cp.HeldPreds[i]
				for _, j := range held {
					attrs[fmt.Sprintf("p%d", j)] = object.Int(int64(e.values[j]))
				}
				// Original null values: with probability R_m, one held
				// predicate attribute of the object is null.
				if len(held) > 0 && rng.Float64() < cp.NullRatio[i] {
					victim := held[rng.Intn(len(held))]
					delete(attrs, fmt.Sprintf("p%d", victim))
				}
				if e.next >= 0 {
					// Branch placements were expanded to cover referrers,
					// so the reference always resolves locally.
					attrs["next"] = object.Ref(object.LOid(fmt.Sprintf("o%d", classes[k+1][e.next].id)))
				}
				for j := 0; j < p.PadAttrs; j++ {
					attrs[fmt.Sprintf("pad%d", j)] = object.Int(int64(e.pads[j]))
				}
				if err := dbs[site].Insert(object.New(loid, className, attrs)); err != nil {
					return nil, fmt.Errorf("workload: %w", err)
				}
				if err := table.Bind(goid, site, loid); err != nil {
					return nil, fmt.Errorf("workload: %w", err)
				}
				stats.Objects++
			}
			if placed > 1 {
				stats.IsomericEntities++
			}
		}
	}

	// 4. Build the query: predicates p_j < literal on every class, reached
	// through the "next" chain; targets are the root's and the deepest
	// class's t0.
	q := &query.Query{Range: "C1"}
	q.Targets = []query.Path{{"t0"}}
	if len(p.Classes) > 1 {
		deep := query.Path{}
		for k := 1; k < len(p.Classes); k++ {
			deep = append(deep, "next")
		}
		q.Targets = append(q.Targets, append(deep, "t0"))
	}
	for k := range p.Classes {
		cp := p.Classes[k]
		if cp.NPreds == 0 {
			continue
		}
		op := query.OpLt
		var lit int64
		if p.EqualityPreds {
			// p = 0 over a domain of 1/selectivity values.
			op = query.OpEq
			lit = 0
		} else {
			lit = int64(math.Round(classSelectivity(p, k) * valueDomain))
			if lit < 1 {
				lit = 1
			}
		}
		prefix := query.Path{}
		for i := 0; i < k; i++ {
			prefix = append(prefix, "next")
		}
		for j := 0; j < cp.NPreds; j++ {
			path := append(append(query.Path{}, prefix...), fmt.Sprintf("p%d", j))
			q.Preds = append(q.Preds, query.Predicate{
				Path: path, Op: op, Literal: object.Int(lit),
			})
			stats.Preds++
		}
	}

	// The disjunctive extension: split the predicates into two
	// or-connected conjunctions (alternating assignment).
	if p.Disjunctive && len(q.Preds) >= 2 {
		groups := make([][]int, 2)
		for i := range q.Preds {
			groups[i%2] = append(groups[i%2], i)
		}
		q.Groups = groups
	}

	b, err := query.Bind(q, global)
	if err != nil {
		return nil, fmt.Errorf("workload: bind: %w", err)
	}
	return &Workload{
		Global:    global,
		Schemas:   schemas,
		Databases: dbs,
		Tables:    tables,
		Query:     q,
		Bound:     b,
		Stats:     stats,
	}, nil
}
