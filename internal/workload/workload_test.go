package workload

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
)

// smallRanges keeps generated federations small enough for fast tests.
func smallRanges() Ranges {
	r := DefaultRanges()
	r.NObjects = [2]int{30, 40}
	return r
}

func TestDrawWithinRanges(t *testing.T) {
	r := DefaultRanges()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := r.Draw(rng)
		if p.NDB != 3 {
			t.Fatalf("NDB = %d", p.NDB)
		}
		if len(p.Classes) < 1 || len(p.Classes) > 4 {
			t.Fatalf("NClasses = %d", len(p.Classes))
		}
		total := 0
		for _, cp := range p.Classes {
			if cp.NPreds < 0 || cp.NPreds > 3 {
				t.Fatalf("NPreds = %d", cp.NPreds)
			}
			total += cp.NPreds
			for i := 0; i < p.NDB; i++ {
				if cp.NObjects[i] < 5000 || cp.NObjects[i] > 6000 {
					t.Fatalf("NObjects = %d", cp.NObjects[i])
				}
				if cp.NullRatio[i] < 0 || cp.NullRatio[i] > 0.2 {
					t.Fatalf("NullRatio = %g", cp.NullRatio[i])
				}
				if len(cp.HeldPreds[i]) > cp.NPreds {
					t.Fatalf("HeldPreds = %v with NPreds = %d", cp.HeldPreds[i], cp.NPreds)
				}
			}
		}
		if total == 0 {
			t.Fatal("drew a query with no predicates")
		}
	}
}

func TestDrawDeterministic(t *testing.T) {
	r := DefaultRanges()
	p1 := r.Draw(rand.New(rand.NewSource(7)))
	p2 := r.Draw(rand.New(rand.NewSource(7)))
	if !reflect.DeepEqual(p1, p2) {
		t.Error("Draw is nondeterministic for a fixed seed")
	}
}

func generate(t *testing.T, seed int64) *Workload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := smallRanges().Draw(rng)
	w, err := Generate(p, rng)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := generate(t, 11)
	w2 := generate(t, 11)
	if w1.Query.String() != w2.Query.String() {
		t.Error("queries differ across identical seeds")
	}
	if !reflect.DeepEqual(w1.Stats, w2.Stats) {
		t.Errorf("stats differ: %+v vs %+v", w1.Stats, w2.Stats)
	}
	for site, db1 := range w1.Databases {
		db2 := w2.Databases[site]
		if db1.Len() != db2.Len() {
			t.Errorf("site %s: %d vs %d objects", site, db1.Len(), db2.Len())
		}
	}
}

func TestGenerateConsistency(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		w := generate(t, seed)
		for site, db := range w.Databases {
			if err := db.CheckRefs(); err != nil {
				t.Errorf("seed %d site %s: %v", seed, site, err)
			}
		}
		if err := isomer.Validate(w.Global, w.Databases, w.Tables); err != nil {
			t.Errorf("seed %d: mapping tables invalid: %v", seed, err)
		}
	}
}

// TestGenerateIsomericConsistentValues verifies the core soundness
// precondition: isomeric objects never contradict each other — attributes
// stored at several sites have equal values.
func TestGenerateIsomericConsistentValues(t *testing.T) {
	w := generate(t, 3)
	for _, class := range w.Tables.Classes() {
		table := w.Tables.Table(class)
		for _, goid := range table.GOids() {
			locs := table.Locations(goid)
			if len(locs) < 2 {
				continue
			}
			base, _ := w.Databases[locs[0].Site].Deref(locs[0].LOid)
			for _, loc := range locs[1:] {
				o, _ := w.Databases[loc.Site].Deref(loc.LOid)
				for name, v := range o.Attrs {
					bv := base.Attr(name)
					if bv.IsNull() {
						continue
					}
					if v.Kind() == object.KindRef {
						// References at different sites use the same
						// entity-derived LOid by construction.
						if v.RefLOid() != bv.RefLOid() {
							t.Fatalf("%s: ref mismatch %v vs %v", goid, v, bv)
						}
						continue
					}
					if !v.Equal(bv) {
						t.Fatalf("%s.%s: %v at %s vs %v at %s",
							goid, name, v, loc.Site, bv, locs[0].Site)
					}
				}
			}
		}
	}
}

// TestIsomerismRatio checks the placement model approximates the paper's
// R_iso = 1 − 0.9^(N_db−1) for the root class.
func TestIsomerismRatio(t *testing.T) {
	r := smallRanges()
	r.NObjects = [2]int{400, 400}
	r.NClasses = [2]int{1, 1}
	rng := rand.New(rand.NewSource(5))
	p := r.Draw(rng)
	w, err := Generate(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(w.Stats.IsomericEntities) / float64(w.Stats.Entities[0])
	want := 1 - math.Pow(0.9, float64(p.NDB-1))
	if math.Abs(got-want) > 0.05 {
		t.Errorf("isomerism ratio = %.3f, want about %.3f", got, want)
	}
}

// TestSelectivityControl checks that predicate literals hit the requested
// selectivity on the generated value distribution.
func TestSelectivityControl(t *testing.T) {
	r := smallRanges()
	r.NObjects = [2]int{500, 500}
	r.NClasses = [2]int{1, 1}
	r.NPredsPerClass = [2]int{1, 1}
	r.Selectivity = 0.3
	r.NullRatio = [2]float64{0, 0}
	rng := rand.New(rand.NewSource(9))
	p := r.Draw(rng)
	// Force the predicate attribute to be held everywhere so selectivity
	// is observable.
	for i := range p.Classes[0].HeldPreds {
		p.Classes[0].HeldPreds[i] = []int{0}
	}
	w, err := Generate(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	matched, total := 0, 0
	for _, db := range w.Databases {
		db.Extent("C1").Scan(func(o *object.Object) bool {
			total++
			if v := o.Attr("p0"); !v.IsNull() && v.Int64() < 300 {
				matched++
			}
			return true
		})
	}
	got := float64(matched) / float64(total)
	if math.Abs(got-0.3) > 0.05 {
		t.Errorf("observed selectivity %.3f, want about 0.3", got)
	}
}

func TestGenerateMissingAttributesMatchParams(t *testing.T) {
	w := generate(t, 21)
	for k := 0; k < len(w.Global.ClassNames()); k++ {
		class := fmt.Sprintf("C%d", k+1)
		gc := w.Global.Class(class)
		for site := range w.Databases {
			for _, miss := range gc.MissingAttrs(site) {
				// Only predicate attributes may be missing.
				if miss[0] != 'p' {
					t.Errorf("%s@%s: unexpected missing attribute %q", class, site, miss)
				}
			}
		}
	}
}

func TestGenerateQueryBinds(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		w := generate(t, seed)
		if w.Bound == nil || w.Bound.Query.Range != "C1" {
			t.Fatalf("seed %d: bad bound query", seed)
		}
		if w.Stats.Preds != len(w.Bound.Preds) {
			t.Errorf("seed %d: stats preds %d vs bound %d", seed, w.Stats.Preds, len(w.Bound.Preds))
		}
		if w.Stats.Objects == 0 {
			t.Errorf("seed %d: no objects", seed)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Params{NDB: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("NDB=0 accepted")
	}
	if _, err := Generate(Params{NDB: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("no classes accepted")
	}
}

func TestGenerateSingleDatabase(t *testing.T) {
	r := smallRanges()
	r.NDB = 1
	rng := rand.New(rand.NewSource(2))
	p := r.Draw(rng)
	w, err := Generate(p, rng)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if w.Stats.IsomericEntities != 0 {
		t.Error("single database cannot have isomeric entities")
	}
}

func TestEqualityPredsSelectivity(t *testing.T) {
	r := smallRanges()
	r.NObjects = [2]int{500, 500}
	r.NClasses = [2]int{1, 1}
	r.NPredsPerClass = [2]int{1, 1}
	r.EqualityPreds = true
	r.Selectivity = 0.2
	r.NullRatio = [2]float64{0, 0}
	rng := rand.New(rand.NewSource(4))
	p := r.Draw(rng)
	for i := range p.Classes[0].HeldPreds {
		p.Classes[0].HeldPreds[i] = []int{0}
	}
	w, err := Generate(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if w.Query.Preds[0].Op != query.OpEq {
		t.Fatalf("op = %v", w.Query.Preds[0].Op)
	}
	matched, total := 0, 0
	for _, db := range w.Databases {
		db.Extent("C1").Scan(func(o *object.Object) bool {
			total++
			if v := o.Attr("p0"); !v.IsNull() && v.Int64() == 0 {
				matched++
			}
			return true
		})
	}
	got := float64(matched) / float64(total)
	if math.Abs(got-0.2) > 0.06 {
		t.Errorf("equality selectivity = %.3f, want about 0.2", got)
	}
}

func TestDisjunctiveGroups(t *testing.T) {
	r := smallRanges()
	r.Disjunctive = true
	r.NClasses = [2]int{2, 2}
	r.NPredsPerClass = [2]int{2, 2}
	rng := rand.New(rand.NewSource(6))
	w, err := Generate(r.Draw(rng), rng)
	if err != nil {
		t.Fatal(err)
	}
	groups := w.Query.GroupIdx()
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	// Every predicate appears in exactly one group.
	seen := map[int]bool{}
	for _, g := range groups {
		for _, i := range g {
			if seen[i] {
				t.Fatalf("predicate %d in two groups", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(w.Query.Preds) {
		t.Errorf("groups cover %d of %d predicates", len(seen), len(w.Query.Preds))
	}
}

func TestSinglePredicateStaysConjunctive(t *testing.T) {
	r := smallRanges()
	r.Disjunctive = true
	r.NClasses = [2]int{1, 1}
	r.NPredsPerClass = [2]int{1, 1}
	rng := rand.New(rand.NewSource(8))
	w, err := Generate(r.Draw(rng), rng)
	if err != nil {
		t.Fatal(err)
	}
	if w.Query.Groups != nil {
		t.Errorf("single-predicate query got groups %v", w.Query.Groups)
	}
}
