package workload

import (
	"math/rand"
	"testing"
	"time"
)

// TestZipfDeterministic: the same seed yields the same sequence, a
// different seed a different one.
func TestZipfDeterministic(t *testing.T) {
	draw := func(seed int64) []int {
		z := NewZipf(rand.New(rand.NewSource(seed)), 64, 0.99)
		out := make([]int, 200)
		for i := range out {
			out[i] = z.Next()
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 200-draw sequence")
	}
}

// TestZipfSkew: a chi-square goodness-of-fit sanity bound against the
// sampler's own rank probabilities, plus a monotonicity check that the skew
// parameter actually concentrates mass on low ranks.
func TestZipfSkew(t *testing.T) {
	const n, draws = 16, 20000
	for _, theta := range []float64{0, 0.8, 1.5} {
		z := NewZipf(rand.New(rand.NewSource(42)), n, theta)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		chi2 := 0.0
		for k := 0; k < n; k++ {
			exp := z.Prob(k) * draws
			if exp == 0 {
				continue
			}
			d := float64(counts[k]) - exp
			chi2 += d * d / exp
		}
		// 15 degrees of freedom: the 99.9th percentile of chi-square is
		// ~37.7; a correct sampler stays far under at 20k draws.
		if chi2 > 37.7 {
			t.Errorf("theta=%.1f: chi-square %.1f exceeds the 99.9%% bound", theta, chi2)
		}
		if theta > 0 {
			// Skew honored: rank 0 strictly more popular than a mid rank,
			// and its sample share near the sampler's stated probability.
			if counts[0] <= counts[n/2] {
				t.Errorf("theta=%.1f: rank 0 (%d) not hotter than rank %d (%d)",
					theta, counts[0], n/2, counts[n/2])
			}
			share := float64(counts[0]) / draws
			if want := z.Prob(0); share < want*0.9 || share > want*1.1 {
				t.Errorf("theta=%.1f: rank-0 share %.3f, want within 10%% of %.3f",
					theta, share, want)
			}
		}
	}
	// Uniform check for theta = 0.
	z := NewZipf(rand.New(rand.NewSource(1)), 4, 0)
	for k := 0; k < 4; k++ {
		if p := z.Prob(k); p < 0.249 || p > 0.251 {
			t.Errorf("theta=0: Prob(%d) = %.4f, want 0.25", k, p)
		}
	}
}

func TestZipfEdgeCases(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 0, -3) // clamped to n=1, theta=0
	if z.N() != 1 {
		t.Fatalf("N() = %d, want 1", z.N())
	}
	for i := 0; i < 10; i++ {
		if got := z.Next(); got != 0 {
			t.Fatalf("single-rank sampler drew %d", got)
		}
	}
	if z.Prob(-1) != 0 || z.Prob(1) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

// TestArrivals: deterministic from seed, monotone non-decreasing, and the
// realized mean rate is close to the requested one.
func TestArrivals(t *testing.T) {
	const n, rate = 5000, 250.0
	a := Arrivals(rand.New(rand.NewSource(3)), n, rate)
	b := Arrivals(rand.New(rand.NewSource(3)), n, rate)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d", i)
		}
	}
	for i := 1; i < n; i++ {
		if a[i] < a[i-1] {
			t.Fatalf("offsets not monotone at %d: %v < %v", i, a[i], a[i-1])
		}
	}
	span := a[n-1].Seconds()
	realized := float64(n) / span
	if realized < rate*0.9 || realized > rate*1.1 {
		t.Errorf("realized rate %.1f/s, want within 10%% of %.1f/s", realized, rate)
	}

	burst := Arrivals(rand.New(rand.NewSource(3)), 4, 0)
	for i, off := range burst {
		if off != time.Duration(0) {
			t.Errorf("rate 0: offset[%d] = %v, want 0", i, off)
		}
	}
}
