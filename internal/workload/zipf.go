package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^theta — the popularity skew of real query traffic (a few hot
// keys, a long cold tail). Unlike math/rand's Zipf it accepts any skew
// theta ≥ 0: theta = 0 is uniform, theta ≈ 1 the classic Zipf law, larger
// values sharper. Sampling is inverse-CDF over a precomputed cumulative
// table, so a Zipf driven by a seeded *rand.Rand is fully deterministic.
//
// The sampler itself is not safe for concurrent use (it shares the caller's
// rng); load generators sample the whole key sequence up front, which also
// keeps the sequence independent of goroutine interleaving.
type Zipf struct {
	cum []float64 // cum[k] = P(rank <= k), ascending, cum[n-1] == 1
	rng *rand.Rand
}

// NewZipf builds a sampler over n ranks with skew theta ≥ 0, drawing from
// rng. n must be ≥ 1; theta < 0 is clamped to 0 (uniform).
func NewZipf(rng *rand.Rand, n int, theta float64) *Zipf {
	if n < 1 {
		n = 1
	}
	if theta < 0 {
		theta = 0
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), theta)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Next draws one rank in [0, N).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}

// Prob returns the sampler's probability of rank k (diagnostics and
// goodness-of-fit tests).
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cum) {
		return 0
	}
	if k == 0 {
		return z.cum[0]
	}
	return z.cum[k] - z.cum[k-1]
}

// Arrivals returns n open-loop arrival offsets from time zero at a mean
// rate of ratePerSec arrivals per second, with exponentially distributed
// inter-arrival times (a Poisson process) — the open-loop load shape where
// arrivals do not wait for completions, so queueing delay shows up in the
// measured latency instead of silently throttling the offered load.
//
// The schedule is deterministic from rng. ratePerSec ≤ 0 degenerates to an
// all-at-zero burst (every arrival due immediately).
func Arrivals(rng *rand.Rand, n int, ratePerSec float64) []time.Duration {
	offsets := make([]time.Duration, n)
	if ratePerSec <= 0 {
		return offsets
	}
	t := 0.0 // seconds
	for i := range offsets {
		t += rng.ExpFloat64() / ratePerSec
		offsets[i] = time.Duration(t * float64(time.Second))
	}
	return offsets
}
