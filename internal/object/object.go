// Package object defines the value and object model shared by every layer of
// hetfed: typed attribute values (including null and object references),
// local and global object identifiers, and the objects stored in component
// databases.
//
// The model follows the paper's object data model: an object is a set of
// attribute values identified by a local object identifier (LOid) that is
// unique within its component database. The same real-world entity may be
// stored in several component databases under incompatible LOids; such
// objects are called isomeric and share a global object identifier (GOid).
package object

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LOid is a local object identifier, unique within one component database.
type LOid string

// GOid is a global object identifier. All isomeric objects (objects in
// different component databases representing the same real-world entity)
// share a single GOid.
type GOid string

// SiteID names a component database site (for example "DB1"). The global
// processing site is a SiteID as well.
type SiteID string

// Wire sizes in bytes, following Table 1 of the paper. They drive the byte
// accounting used by both the real and the simulated fabric, so that disk
// and network costs are comparable across execution strategies.
const (
	// AttrWireSize is the average size of one attribute value (S_a).
	AttrWireSize = 32
	// GOidWireSize is the size of a GOid (S_GOid).
	GOidWireSize = 16
	// LOidWireSize is the size of an LOid (S_LOid).
	LOidWireSize = 16
	// SignatureWireSize is the size of one object signature (S_s).
	SignatureWireSize = 32
)

// Kind enumerates the kinds of attribute values.
type Kind int

// Value kinds. KindNull marks missing data: either an original null value in
// a component database or the value of a missing attribute.
const (
	KindNull Kind = iota + 1
	KindInt
	KindFloat
	KindString
	KindBool
	KindRef  // reference to a local object (complex attribute, component view)
	KindGRef // reference to a global object (complex attribute, integrated view)
	KindList // multi-valued attribute
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindRef:
		return "ref"
	case KindGRef:
		return "gref"
	case KindList:
		return "list"
	default:
		return "invalid"
	}
}

// Value is an immutable attribute value. The zero Value is invalid; use the
// constructors (Null, Int, Float, Str, Bool, Ref, GRef, List).
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	list []Value
}

// Null returns the null value, representing missing data.
func Null() Value { return Value{kind: KindNull} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Ref returns a reference to a local object, i.e. the value of a complex
// attribute in a component database.
func Ref(id LOid) Value { return Value{kind: KindRef, s: string(id)} }

// GRef returns a reference to a global object, i.e. the value of a complex
// attribute after LOids have been transformed to GOids during integration.
func GRef(id GOid) Value { return Value{kind: KindGRef, s: string(id)} }

// List returns a multi-valued attribute value. The elements are copied.
func List(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{kind: KindList, list: cp}
}

// Kind reports the kind of the value. The zero Value reports 0.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsRef reports whether the value is a local or global object reference.
func (v Value) IsRef() bool { return v.kind == KindRef || v.kind == KindGRef }

// Int64 returns the integer payload. It is valid only for KindInt.
func (v Value) Int64() int64 { return v.i }

// Float64 returns the float payload. It is valid only for KindFloat.
func (v Value) Float64() float64 { return v.f }

// Text returns the string payload. It is valid only for KindString.
func (v Value) Text() string { return v.s }

// BoolVal returns the boolean payload. It is valid only for KindBool.
func (v Value) BoolVal() bool { return v.i != 0 }

// RefLOid returns the referenced LOid. It is valid only for KindRef.
func (v Value) RefLOid() LOid { return LOid(v.s) }

// RefGOid returns the referenced GOid. It is valid only for KindGRef.
func (v Value) RefGOid() GOid { return GOid(v.s) }

// Elems returns the elements of a list value. The returned slice must not be
// modified. It is valid only for KindList.
func (v Value) Elems() []Value { return v.list }

// Equal reports whether two values are identical (same kind and payload).
// Null equals null under this relation; three-valued comparison semantics
// belong to package eval, not here.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		// Numeric cross-kind equality: 3 == 3.0.
		if bothNumeric(v, w) {
			return v.asFloat() == w.asFloat()
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt, KindBool:
		return v.i == w.i
	case KindFloat:
		return v.f == w.f
	case KindString, KindRef, KindGRef:
		return v.s == w.s
	case KindList:
		if len(v.list) != len(w.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(w.list[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func bothNumeric(v, w Value) bool {
	return (v.kind == KindInt || v.kind == KindFloat) &&
		(w.kind == KindInt || w.kind == KindFloat)
}

func (v Value) asFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Compare orders two values. It returns a negative, zero, or positive integer
// when v sorts before, equal to, or after w, and ok=false when the values are
// not comparable (different non-numeric kinds, nulls, refs or lists).
func (v Value) Compare(w Value) (cmp int, ok bool) {
	if v.kind == KindNull || w.kind == KindNull {
		return 0, false
	}
	if bothNumeric(v, w) {
		a, b := v.asFloat(), w.asFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind != w.kind {
		return 0, false
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, w.s), true
	case KindBool:
		switch {
		case v.i < w.i:
			return -1, true
		case v.i > w.i:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// WireSize returns the number of bytes this value contributes to a message
// or disk page under the paper's cost model: references cost an OID,
// everything else costs one average attribute.
func (v Value) WireSize() int {
	switch v.kind {
	case KindRef:
		return LOidWireSize
	case KindGRef:
		return GOidWireSize
	case KindList:
		n := 0
		for _, e := range v.list {
			n += e.WireSize()
		}
		return n
	case KindNull:
		return 0
	default:
		return AttrWireSize
	}
}

// String renders the value for diagnostics and example output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "-"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		return strconv.FormatBool(v.i != 0)
	case KindRef:
		return "@" + v.s
	case KindGRef:
		return "@@" + v.s
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return "<invalid>"
	}
}

// Object is a stored object: an identifier plus named attribute values.
// Attributes that are missing for the object's class, or null in the source
// database, are simply absent from Attrs (Attr returns Null for them).
type Object struct {
	LOid  LOid
	Class string
	Attrs map[string]Value
}

// New returns an object with a copy of the supplied attribute map. Null
// values are normalized away: a null attribute and an absent attribute are
// indistinguishable, both representing missing data.
func New(id LOid, class string, attrs map[string]Value) *Object {
	cp := make(map[string]Value, len(attrs))
	for k, v := range attrs {
		if v.Kind() == 0 || v.IsNull() {
			continue
		}
		cp[k] = v
	}
	return &Object{LOid: id, Class: class, Attrs: cp}
}

// Attr returns the value of the named attribute, or Null when the attribute
// is missing (missing attribute of the class, or a null value).
func (o *Object) Attr(name string) Value {
	if v, ok := o.Attrs[name]; ok {
		return v
	}
	return Null()
}

// Set stores an attribute value, or deletes the attribute when v is null.
func (o *Object) Set(name string, v Value) {
	if o.Attrs == nil {
		o.Attrs = make(map[string]Value)
	}
	if v.Kind() == 0 || v.IsNull() {
		delete(o.Attrs, name)
		return
	}
	o.Attrs[name] = v
}

// Clone returns a deep-enough copy: the attribute map is copied (values are
// immutable, so they are shared).
func (o *Object) Clone() *Object {
	cp := make(map[string]Value, len(o.Attrs))
	for k, v := range o.Attrs {
		cp[k] = v
	}
	return &Object{LOid: o.LOid, Class: o.Class, Attrs: cp}
}

// Project returns a copy of the object restricted to the named attributes.
func (o *Object) Project(attrs []string) *Object {
	cp := make(map[string]Value, len(attrs))
	for _, a := range attrs {
		if v, ok := o.Attrs[a]; ok {
			cp[a] = v
		}
	}
	return &Object{LOid: o.LOid, Class: o.Class, Attrs: cp}
}

// WireSize returns the bytes needed to ship the object projected on the
// given attributes (pass nil for all attributes), including its LOid.
func (o *Object) WireSize(attrs []string) int {
	n := LOidWireSize
	if attrs == nil {
		for _, v := range o.Attrs {
			n += v.WireSize()
		}
		return n
	}
	for _, a := range attrs {
		if v, ok := o.Attrs[a]; ok {
			n += v.WireSize()
		}
	}
	return n
}

// AttrNames returns the object's attribute names in sorted order.
func (o *Object) AttrNames() []string {
	names := make([]string, 0, len(o.Attrs))
	for k := range o.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the object for diagnostics.
func (o *Object) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]{", o.Class, o.LOid)
	for i, name := range o.AttrNames() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", name, o.Attrs[name])
	}
	b.WriteByte('}')
	return b.String()
}

// MarshalBinary implements encoding.BinaryMarshaler so values (and the
// objects and messages containing them) can travel over gob-encoded
// connections in the TCP deployment.
func (v Value) MarshalBinary() ([]byte, error) {
	return v.AppendBinary(nil)
}

// AppendBinary appends the value's binary encoding to dst and returns the
// extended slice: MarshalBinary without the per-value allocation, for hot
// encode paths (the storage engine logs every inserted attribute).
func (v Value) AppendBinary(dst []byte) ([]byte, error) {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case 0, KindNull:
	case KindInt, KindBool:
		dst = appendInt64(dst, v.i)
	case KindFloat:
		dst = appendInt64(dst, int64(math.Float64bits(v.f)))
	case KindString, KindRef, KindGRef:
		dst = append(dst, v.s...)
	case KindList:
		for _, e := range v.list {
			// The element length prefix is fixed-width, so it can be
			// reserved up front and backfilled once the element is encoded.
			at := len(dst)
			dst = appendInt64(dst, 0)
			var err error
			dst, err = e.AppendBinary(dst)
			if err != nil {
				return nil, err
			}
			putInt64(dst[at:], int64(len(dst)-at-8))
		}
	default:
		return nil, fmt.Errorf("object: marshal of invalid kind %d", v.kind)
	}
	return dst, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (v *Value) UnmarshalBinary(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("object: empty value encoding")
	}
	kind := Kind(data[0])
	payload := data[1:]
	switch kind {
	case 0:
		*v = Value{}
	case KindNull:
		*v = Null()
	case KindInt, KindBool:
		i, _, err := readInt64(payload)
		if err != nil {
			return err
		}
		*v = Value{kind: kind, i: i}
	case KindFloat:
		i, _, err := readInt64(payload)
		if err != nil {
			return err
		}
		*v = Float(math.Float64frombits(uint64(i)))
	case KindString, KindRef, KindGRef:
		*v = Value{kind: kind, s: string(payload)}
	case KindList:
		var elems []Value
		for len(payload) > 0 {
			n, rest, err := readInt64(payload)
			if err != nil {
				return err
			}
			if n < 0 || int(n) > len(rest) {
				return fmt.Errorf("object: corrupt list encoding")
			}
			var e Value
			if err := e.UnmarshalBinary(rest[:n]); err != nil {
				return err
			}
			elems = append(elems, e)
			payload = rest[n:]
		}
		*v = Value{kind: KindList, list: elems}
	default:
		return fmt.Errorf("object: unmarshal of invalid kind %d", kind)
	}
	return nil
}

func appendInt64(b []byte, v int64) []byte {
	u := uint64(v)
	return append(b,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// putInt64 overwrites the 8 bytes at the start of b with v's encoding.
func putInt64(b []byte, v int64) {
	u := uint64(v)
	b[0], b[1], b[2], b[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
	b[4], b[5], b[6], b[7] = byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56)
}

func readInt64(b []byte) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("object: truncated value encoding")
	}
	u := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	return int64(u), b[8:], nil
}
